// Package analysis implements amrlint, a repo-specific static-analysis
// suite enforcing the unchecked conventions the pooled message path rests
// on. The hybrid task+MPI design moved correctness from types into
// protocol: every arena lease must reach a Put, Release or ownership
// transfer; every non-blocking request must be completed; task dependency
// declarations must match the closure's accesses; collectives must not
// hide inside rank-conditional branches. Each of those conventions is a
// deadlock or a leak when violated, and none of them is visible to go vet.
//
// The core analyzers cover them:
//
//   - leaselint: membuf leases and pooled buffers reach Release/Put or an
//     ownership-transfer send on every path; flags double release and
//     use after release.
//   - reqlint: every Isend/Irecv request flows into Wait/Test/Waitall/
//     WaitSet; flags dropped, shadowed and error-path-leaked requests.
//   - deplint: task.Spawn dependency keys are unique and consistent with
//     the closure body; flags writes to regions declared in and taskwait
//     calls inside task bodies.
//   - collectivelint: collective operations (Barrier, Bcast, Allreduce,
//     Allgatherv, ...) must be unconditional with respect to the rank;
//     flags the classic collective-mismatch deadlock.
//
// Four whole-program verifiers ride on the same loader: graphlint
// (task-graph and communication-topology invariants), perflint (the
// static cost model), conclint (lock order, blocking-under-lock, channel
// lifecycle) and determlint (nondeterminism sources must not reach
// checksum, output or protocol sinks).
//
// The suite is stdlib-only: a go/parser+go/types loader over the module
// tree (no go/packages, no external dependencies). Analysis is
// intentionally conservative — escape of a tracked value into a struct,
// slice, channel, closure or unknown call ends tracking rather than
// guessing — so a finding is very likely a real defect.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	// Rule is the stable machine-readable rule slug within the analyzer
	// (e.g. "perf-needless-barrier"). Analyzers with a single rule leave
	// it equal to their name.
	Rule string
	// Severity is "error" or "warning"; errors gate the build, warnings
	// pin drift.
	Severity string
	Message  string
}

// ID is the stable finding identifier shared by amrlint, graphlint and
// perflint JSON output: the analyzer name, qualified by the rule when
// the analyzer distinguishes several.
func (f Finding) ID() string {
	if f.Rule == "" || f.Rule == f.Analyzer {
		return f.Analyzer
	}
	return f.Analyzer + "/" + f.Rule
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.ID(), f.Message)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	Name string
	Doc  string
	run  func(*Pass)
}

// All returns the full amrlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{LeaseLint, ReqLint, DepLint, CollectiveLint, GraphLint, PerfLint, ConcLint, DetermLint}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records an error-severity finding at pos under the analyzer's
// default rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportRulef(pos, p.analyzer.Name, "error", format, args...)
}

// ReportRulef records a finding at pos under an explicit rule slug and
// severity ("error" or "warning").
func (p *Pass) ReportRulef(pos token.Pos, rule, severity, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Rule:     rule,
		Severity: severity,
		Message:  fmt.Sprintf(format, args...),
	})
}

// objOf resolves an identifier to its object, whether the identifier
// defines it or uses it. It returns nil for unresolved identifiers (the
// tolerant type-check leaves cross-package references unresolved).
func (p *Pass) objOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Uses[id]
}

// Run applies the analyzers to every package and returns the combined
// findings, deduplicated and in (file, line, column, analyzer, message)
// order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, analyzer: a, findings: &findings}
			a.run(pass)
		}
	}
	return dedupeFindings(findings)
}

// dedupeFindings sorts findings into reporting order and drops exact
// duplicates. The builtin classification and the interprocedural
// summary layer can legitimately diagnose the same site — the user
// should see one finding, not the analysis architecture.
func dedupeFindings(findings []Finding) []Finding {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := findings[:0]
	for _, f := range findings {
		if n := len(out); n > 0 {
			prev := out[n-1]
			if f.Pos == prev.Pos && f.Analyzer == prev.Analyzer && f.Message == prev.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// funcBodies visits every function body in the package's files: named
// declarations here, function literals through the visitors themselves.
func funcBodies(pkg *Package, visit func(decl *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}
