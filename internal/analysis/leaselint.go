package analysis

import (
	"go/ast"
)

// LeaseLint enforces the membuf ownership protocol: every arena lease and
// pooled buffer obtained from Lease*/Get* must reach a Release, a Put*, or
// an ownership-transfer send (SendOwned/IsendOwned) on every path. It also
// flags double release and use after release.
var LeaseLint = &Analyzer{
	Name: "leaselint",
	Doc: "membuf leases and pooled buffers must be released, put back or " +
		"ownership-transferred on every path",
	run: func(p *Pass) { runFlow(p, leaseTracker{}) },
}

type leaseTracker struct{}

// leaseCreators maps creator method names to the kind they produce. All of
// them are 1-argument methods returning the resource alone.
var leaseCreators = map[string]string{
	"LeaseFloat64": "arena lease",
	"LeaseInt":     "arena lease",
	"LeaseByte":    "arena lease",
	"GetFloat64":   "pooled buffer",
	"GetInt":       "pooled buffer",
	"GetByte":      "pooled buffer",
}

func (leaseTracker) creator(call *ast.CallExpr) (resIdx, errIdx int, nilOnErr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel || len(call.Args) != 1 {
		return 0, 0, false, false
	}
	if _, isCreator := leaseCreators[sel.Sel.Name]; !isCreator {
		return 0, 0, false, false
	}
	return 0, -1, false, true
}

func (leaseTracker) kindOf(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if kind, ok := leaseCreators[sel.Sel.Name]; ok {
			return kind
		}
	}
	return "arena lease"
}

func (leaseTracker) methodEffect(name string) effect {
	switch name {
	case "Release":
		return effFree
	case "Float64", "Int", "Byte", "Len", "Kind", "String":
		return effNone
	default:
		// Retain and anything unrecognised hands out another reference.
		return effEscape
	}
}

func (leaseTracker) argEffect(call *ast.CallExpr, idx int) (effect, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return effEscape, -1
	}
	switch sel.Sel.Name {
	case "PutFloat64", "PutInt", "PutByte":
		return effFree, -1
	case "SendOwned":
		// mpi and tampi forms both return only an error.
		return effCondConsume, 0
	case "IsendOwned":
		// mpi form (pay, dest, tag) returns (req, err); the tampi form
		// (t, pay, dest, tag) returns only an error.
		if len(call.Args) == 4 {
			return effCondConsume, 0
		}
		return effCondConsume, 1
	default:
		return effEscape, -1
	}
}

func (leaseTracker) consumeVerb() string {
	return "released, put back or ownership-transferred"
}
func (leaseTracker) freeVerb() string     { return "released" }
func (leaseTracker) freeFromHeldOK() bool { return true }

// paramType admits *Lease / *membuf.Lease parameters to interprocedural
// summaries. Pooled buffers stay out: a bare []float64 parameter carries
// no signal that it came from a pool.
func (leaseTracker) paramType(expr ast.Expr) bool {
	return pointerToNamed(expr, "Lease")
}
