package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and tolerantly type-checked directory of Go files.
//
// The loader does not build a full-module type graph: each package is
// checked in isolation with an importer that fails every import, and the
// type errors are swallowed. That still resolves every function-local
// identifier to a distinct types.Object — which is what the flow analyses
// need to track values across shadowing — while keeping the loader free of
// go/packages, GOPATH and build-cache dependencies. API classification in
// the analyzers is name- and shape-based for the same reason.
type Package struct {
	// Dir is the directory the files came from.
	Dir string
	// Name is the package clause name shared by Files.
	Name string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed sources in file-name order.
	Files []*ast.File
	// Info carries the tolerant type-check's Defs, Uses and Types maps.
	Info *types.Info
}

// Load resolves patterns to directories and parses each into Packages.
// A pattern is either a directory or a `dir/...` tree; `./...` walks the
// enclosing module. The walk skips testdata, vendor and hidden or
// underscore-prefixed directories; _test.go files are skipped unless
// includeTests is set, and files whose //go:build line evaluates false
// with no build tags set (`//go:build ignore` and friends) are skipped
// like the build skips them. Directories given literally (no `...`) are loaded
// even where a walk would skip them, which is how the analyzer corpora
// under testdata/ load themselves.
func Load(fset *token.FileSet, patterns []string, includeTests bool) ([]*Package, error) {
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(rest)
			if root == "" || root == "." {
				var err error
				if root, err = moduleRoot(); err != nil {
					return nil, err
				}
			}
			if err := walkTree(root, add); err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("amrlint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("amrlint: %s is not a directory (patterns are dirs or dir/... trees)", pat)
		}
		add(filepath.Clean(pat))
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		ps, err := parseDir(fset, dir, includeTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("amrlint: no go.mod above the working directory")
		}
		dir = parent
	}
}

// walkTree adds every Go-bearing directory under root, skipping the
// directories the go tool itself skips.
func walkTree(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				add(path)
				break
			}
		}
		return nil
	})
}

// parseDir parses one directory into one Package per package clause (a
// directory holds at most the package and its external _test package).
func parseDir(fset *token.FileSet, dir string, includeTests bool) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*Package)
	var order []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("amrlint: %w", err)
		}
		if excludedByConstraint(file) {
			continue
		}
		pkgName := file.Name.Name
		pkg := byName[pkgName]
		if pkg == nil {
			pkg = &Package{Dir: dir, Name: pkgName, Fset: fset}
			byName[pkgName] = pkg
			order = append(order, pkgName)
		}
		pkg.Files = append(pkg.Files, file)
	}
	sort.Strings(order)
	var pkgs []*Package
	for _, name := range order {
		pkg := byName[name]
		pkg.Info = checkTolerant(fset, pkg.Files)
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// excludedByConstraint reports whether a parsed file's //go:build line
// (anything before the package clause) evaluates false under the
// loader's empty tag set. That is how `//go:build ignore` helper files
// and platform-gated stubs stay out of the analysis, mirroring what the
// build does to them. The legacy `// +build` syntax is not consulted;
// gofmt rewrites it to the //go:build form.
func excludedByConstraint(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false // malformed lines do not gate the build either
			}
			return !expr.Eval(func(string) bool { return false })
		}
	}
	return false
}

// checkTolerant type-checks files for name resolution only: imports fail,
// errors are swallowed, and the resulting Defs/Uses maps are returned.
func checkTolerant(fset *token.FileSet, files []*ast.File) *types.Info {
	info := &types.Info{
		Defs: make(map[*ast.Ident]types.Object),
		Uses: make(map[*ast.Ident]types.Object),
		// Types lets analyzers classify locally-resolvable expressions
		// (map-typed range operands, float accumulators) without a full
		// module type graph; cross-package expressions stay untyped and
		// the analyzers fall back to declaration syntax.
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{
		Error:    func(error) {}, // incomplete programs are expected
		Importer: noImporter{},
	}
	// The returned error restates what Error already swallowed.
	conf.Check("lint", fset, files, info) //nolint:errcheck
	return info
}

// noImporter fails every import; see the Package doc for why.
type noImporter struct{}

func (noImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("amrlint checks packages in isolation; no import %q", path)
}
