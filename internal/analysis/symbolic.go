package analysis

import (
	"go/ast"
	"strings"
)

// This file defines the symbolic term domain graphlint's extractor
// evaluates driver code into. A symval is an abstract value: concrete
// enough that two sites computing the same dependency key or message tag
// render to the same canonical string, abstract enough that loop indices
// and rank-local data collapse to stable placeholders. Matching is
// structural over renders; there is no solver.
//
// The abstraction rules that make real driver code converge:
//
//   - the method receiver is the empty atom, so d.s.recvPlans and
//     s.recvPlans render identically as s.recvPlans;
//   - indexing drops the index expression (x[i] -> x[]): one iteration
//     stands for all of them;
//   - loop variables become $-atoms named after the ranged source, so
//     the same loop shape produces the same term at every site;
//   - uniformly built slices keep one element term; indexing returns it
//     and append joins into it.

// symval is one abstract value. All implementations are pointers.
type symval interface {
	render(b *strings.Builder)
}

// symAtom is a free name: an unbound identifier, a package name, a
// function parameter, or the ground receiver (empty name).
type symAtom struct{ name string }

// symField is a field or selector projection x.name.
type symField struct {
	x    symval
	name string
}

// symIndex is an element of x with the index abstracted away.
type symIndex struct{ x symval }

// symCall is an uninterpreted (or multi-statement inlined) call.
type symCall struct {
	name string
	args []symval
}

// symLit is a literal or an otherwise-opaque expression rendered as
// written.
type symLit struct{ text string }

// symBin is a binary operation over two terms.
type symBin struct {
	op   string
	x, y symval
}

// symStruct is a composite literal of a struct type known to the
// extractor (dependency keys, helper records). Missing fields are
// implicit zeroes of their declared type.
type symStruct struct {
	info   *structInfo
	fields map[string]symval
}

// symSlice abstracts a uniformly built slice by its single element term.
// elem is nil for an empty slice.
type symSlice struct{ elem symval }

func (v *symAtom) render(b *strings.Builder) { b.WriteString(v.name) }

func (v *symField) render(b *strings.Builder) {
	var inner strings.Builder
	v.x.render(&inner)
	if inner.Len() > 0 {
		b.WriteString(inner.String())
		b.WriteByte('.')
	}
	b.WriteString(v.name)
}

func (v *symIndex) render(b *strings.Builder) {
	v.x.render(b)
	b.WriteString("[]")
}

func (v *symCall) render(b *strings.Builder) {
	b.WriteString(v.name)
	b.WriteByte('(')
	for i, a := range v.args {
		if i > 0 {
			b.WriteByte(',')
		}
		a.render(b)
	}
	b.WriteByte(')')
}

func (v *symLit) render(b *strings.Builder) { b.WriteString(v.text) }

func (v *symBin) render(b *strings.Builder) {
	v.x.render(b)
	b.WriteString(v.op)
	v.y.render(b)
}

func (v *symStruct) render(b *strings.Builder) {
	b.WriteString(v.info.name)
	b.WriteByte('{')
	for i, f := range v.info.fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.name)
		b.WriteByte(':')
		if fv, ok := v.fields[f.name]; ok {
			fv.render(b)
		} else {
			b.WriteString(f.zero)
		}
	}
	b.WriteByte('}')
}

func (v *symSlice) render(b *strings.Builder) {
	b.WriteString("[]")
	if v.elem != nil {
		v.elem.render(b)
	}
}

// renderVal is the canonical string form used for matching and output.
func renderVal(v symval) string {
	if v == nil {
		return "?"
	}
	var b strings.Builder
	v.render(&b)
	return b.String()
}

// structField is one declared field of a registered struct type.
type structField struct {
	name string
	zero string // rendered zero value of the declared type
}

// structInfo is the extractor's view of a struct type declaration,
// carrying field order (for canonical rendering), zero literals (for
// filling unset composite-literal fields) and the //amr:region spec.
type structInfo struct {
	name   string
	fields []structField
	region *regionSpec
}

// regionSpec is a parsed //amr:region directive: whether keys of the
// type name persistent state (no producer/consumer obligations) or an
// ephemeral stage region, and which fields participate in region
// identity. An empty match list means pure type-class matching.
type regionSpec struct {
	kind  string // "state" or "stage"
	match []string
}

// zeroFor renders the zero value of a declared field type, shape-based
// like the rest of the suite.
func zeroFor(t ast.Expr) string {
	if id, ok := ast.Unparen(t).(*ast.Ident); ok {
		switch id.Name {
		case "bool":
			return "false"
		case "string":
			return `""`
		case "int", "int8", "int16", "int32", "int64",
			"uint", "uint8", "uint16", "uint32", "uint64", "uintptr",
			"float32", "float64", "byte", "rune", "complex64", "complex128":
			return "0"
		}
	}
	return "{}"
}

// matchRender renders one match field of a struct term, substituting the
// declared zero when the literal leaves the field unset.
func (v *symStruct) matchRender(field string) string {
	if fv, ok := v.fields[field]; ok {
		return renderVal(fv)
	}
	for _, f := range v.info.fields {
		if f.name == field {
			return f.zero
		}
	}
	return "{}"
}

// regionsMatch reports whether two key terms name the same region. Terms
// of the same //amr:region-annotated struct type compare only their
// declared match fields (all fields equal when the list is empty, i.e.
// pure class matching); everything else falls back to exact render
// equality.
func regionsMatch(a, b symval) bool {
	sa, aok := a.(*symStruct)
	sb, bok := b.(*symStruct)
	if aok && bok && sa.info == sb.info && sa.info.region != nil {
		for _, f := range sa.info.region.match {
			if sa.matchRender(f) != sb.matchRender(f) {
				return false
			}
		}
		return true
	}
	return renderVal(a) == renderVal(b)
}

// regionKind classifies a key term: "state" and "stage" from the
// directive on its type, "unknown" otherwise. Only stage regions carry
// read-before-write and dead-write obligations.
func regionKind(v symval) string {
	if s, ok := v.(*symStruct); ok && s.info.region != nil {
		return s.info.region.kind
	}
	return "unknown"
}

// regionLabel is the short name used on graph edges: the type class for
// annotated keys, the full term otherwise.
func regionLabel(v symval) string {
	if s, ok := v.(*symStruct); ok && s.info.region != nil {
		return s.info.name
	}
	return renderVal(v)
}

// mirrorNames is the send/recv reflection: applying it to a send's peer
// and tag terms must yield the matching receive's terms. It covers the
// repo's naming conventions for plan tables (sendPlans/recvPlans and the
// driver skeleton's exported SendPlans/RecvPlans), mover parameters
// (to/from) and move records (To/From).
var mirrorNames = map[string]string{
	"sendPlans": "recvPlans",
	"recvPlans": "sendPlans",
	"SendPlans": "RecvPlans",
	"RecvPlans": "SendPlans",
	"to":        "from",
	"from":      "to",
	"To":        "From",
	"From":      "To",
}

func mirrorName(n string) string {
	if m, ok := mirrorNames[n]; ok {
		return m
	}
	return n
}

// mirror produces the term's image under the send/recv reflection.
func mirror(v symval) symval {
	switch v := v.(type) {
	case *symAtom:
		return &symAtom{name: mirrorName(v.name)}
	case *symField:
		return &symField{x: mirror(v.x), name: mirrorName(v.name)}
	case *symIndex:
		return &symIndex{x: mirror(v.x)}
	case *symCall:
		args := make([]symval, len(v.args))
		for i, a := range v.args {
			args[i] = mirror(a)
		}
		return &symCall{name: v.name, args: args}
	case *symBin:
		return &symBin{op: v.op, x: mirror(v.x), y: mirror(v.y)}
	case *symStruct:
		fields := make(map[string]symval, len(v.fields))
		for k, fv := range v.fields {
			fields[k] = mirror(fv)
		}
		return &symStruct{info: v.info, fields: fields}
	case *symSlice:
		if v.elem == nil {
			return v
		}
		return &symSlice{elem: mirror(v.elem)}
	default:
		return v
	}
}

// joinVals folds a new element into a slice's element abstraction:
// equal renders keep the term, disagreement goes opaque rather than
// wrong.
func joinVals(a, b symval) symval {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if renderVal(a) == renderVal(b) {
		return a
	}
	return &symLit{text: "?"}
}
