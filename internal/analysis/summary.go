package analysis

import (
	"go/ast"
	"go/types"
)

// This file adds the interprocedural layer to the resource-flow engine:
// per-function summaries of what a callee does to tracked-typed
// parameters, computed bottom-up over the package and consulted by
// walkCall when the builtin classification would otherwise end tracking.
//
// A summary exists for a parameter only when every function exit agrees
// on the parameter's final state: all paths release it (effFree), all
// hand ownership off (effConsume), all observe completion (effComplete),
// or all leave it untouched (effNone). Mixed exits, conditional
// consumption and any escape produce no summary, and the call site falls
// back to the engine's conservative default — tracking ends, nothing is
// reported. Summaries therefore never silence a finding the
// intraprocedural engine would have produced; they only extend tracking
// through helpers whose behavior is unambiguous.

// maxSummaryIters bounds the fixpoint over delegation chains (helper A
// summarizes only after helper B it calls has). Real chains are short;
// anything deeper just leaves the tail on the conservative default.
const maxSummaryIters = 8

// paramEffects maps flat argument positions to a callee's summarized
// effect on the resource passed there.
type paramEffects map[int]effect

// summaryParam is one tracked-typed parameter position of a candidate
// function. obj is nil for blank parameters, which the body provably
// cannot touch.
type summaryParam struct {
	idx int
	obj types.Object
}

// computeSummaries builds parameter summaries for one tracker over one
// package, iterating so helpers that delegate to other helpers summarize
// too.
func computeSummaries(pass *Pass, tr tracker) map[types.Object]paramEffects {
	type candidate struct {
		fn     types.Object
		body   *ast.BlockStmt
		params []summaryParam
	}
	var cands []candidate
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		params := summaryParams(pass, tr, fd.Type)
		if len(params) == 0 {
			return
		}
		fn := pass.Pkg.Info.Defs[fd.Name]
		if fn == nil {
			return
		}
		cands = append(cands, candidate{fn: fn, body: fd.Body, params: params})
	})
	if len(cands) == 0 {
		return nil
	}
	sums := make(map[types.Object]paramEffects)
	for iter := 0; iter < maxSummaryIters; iter++ {
		changed := false
		for _, c := range cands {
			next := summarizeFunc(pass, tr, sums, c.body, c.params)
			if !effectsEqual(sums[c.fn], next) {
				changed = true
				if next == nil {
					delete(sums, c.fn)
				} else {
					sums[c.fn] = next
				}
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// summaryParams collects the tracked-typed, non-variadic parameters of a
// function type as flat argument positions. Variadic and slice-typed
// parameters stay unsummarized: their builtin classification (Waitall,
// Iwait, ...) already covers the real APIs.
func summaryParams(pass *Pass, tr tracker, ft *ast.FuncType) []summaryParam {
	if ft.Params == nil {
		return nil
	}
	var out []summaryParam
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a position
		}
		_, variadic := field.Type.(*ast.Ellipsis)
		if !variadic && tr.paramType(field.Type) {
			for i := 0; i < n; i++ {
				sp := summaryParam{idx: idx + i}
				if i < len(field.Names) && field.Names[i].Name != "_" {
					sp.obj = pass.Pkg.Info.Defs[field.Names[i]]
					if sp.obj == nil {
						continue // unresolved: leave this position conservative
					}
				}
				out = append(out, sp)
			}
		}
		idx += n
	}
	return out
}

// summarizeFunc runs one silent flow pass over body with every tracked
// parameter seeded as held and folds the per-exit states into effects.
// Findings from the pass go to a discarded sink: the reporting pass over
// the same body runs separately, and a seeded parameter left held at exit
// is a summary fact, not a leak.
func summarizeFunc(pass *Pass, tr tracker, sums map[types.Object]paramEffects, body *ast.BlockStmt, params []summaryParam) paramEffects {
	var sink []Finding
	silent := &Pass{Fset: pass.Fset, Pkg: pass.Pkg, analyzer: pass.analyzer, findings: &sink}
	seed := make(map[types.Object]track)
	for _, p := range params {
		if p.obj != nil {
			seed[p.obj] = track{
				res: &resource{kind: "parameter", pos: body.Pos(), depth: 0},
				st:  stHeld,
			}
		}
	}
	var exits []map[types.Object]status
	f := &funcFlow{
		pass:      silent,
		tr:        tr,
		summaries: sums,
		seed:      seed,
		summaryHook: func(st *pstate) {
			snap := make(map[types.Object]status, len(seed))
			for obj := range seed {
				if t, ok := st.vars[obj]; ok {
					snap[obj] = t.st
				} else {
					snap[obj] = stUnknown // overwritten or dropped: no summary
				}
			}
			exits = append(exits, snap)
		},
	}
	f.runBody(body)

	var out paramEffects
	for _, p := range params {
		eff, ok := exitEffect(p, exits)
		if !ok {
			continue
		}
		if out == nil {
			out = make(paramEffects)
		}
		out[p.idx] = eff
	}
	return out
}

// exitEffect folds one parameter's exit states into a single effect, or
// reports that no sound summary exists.
func exitEffect(p summaryParam, exits []map[types.Object]status) (effect, bool) {
	if p.obj == nil {
		// Blank parameter: the body cannot touch it, so the caller still
		// holds the resource after the call.
		return effNone, true
	}
	if len(exits) == 0 {
		return 0, false // no normal exit (panics, infinite loop)
	}
	var st status
	first := true
	for _, snap := range exits {
		s := snap[p.obj]
		if s == stNil {
			continue // nothing was owed on that path
		}
		if first {
			st, first = s, false
		} else if s != st {
			return 0, false // exits disagree
		}
	}
	if first {
		return 0, false
	}
	switch st {
	case stHeld:
		return effNone, true
	case stConsumed:
		return effConsume, true
	case stCompleted:
		return effComplete, true
	case stFreed:
		return effFree, true
	}
	return 0, false // escaped, unknown or still conditional
}

func effectsEqual(a, b paramEffects) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// summaryEffect looks up the summarized effect for argument idx of call.
// walkCall consults it only after the tracker's builtin argEffect returned
// effEscape, so explicit API classifications always win over summaries.
func (f *funcFlow) summaryEffect(call *ast.CallExpr, idx int) (effect, bool) {
	if f.summaries == nil {
		return 0, false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return 0, false
	}
	obj := f.pass.objOf(id)
	if obj == nil {
		return 0, false
	}
	sum, ok := f.summaries[obj]
	if !ok {
		return 0, false
	}
	eff, ok := sum[idx]
	return eff, ok
}

// pointerToNamed reports whether expr is `*Name` or `*pkg.Name`. The
// loader type-checks packages in isolation, so parameter classification
// is shape-based like the rest of the suite.
func pointerToNamed(expr ast.Expr, name string) bool {
	star, ok := ast.Unparen(expr).(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := ast.Unparen(star.X).(type) {
	case *ast.Ident:
		return x.Name == name
	case *ast.SelectorExpr:
		return x.Sel.Name == name
	}
	return false
}
