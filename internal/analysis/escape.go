package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is perflint's hot-path allocation lint. Functions on the
// send–receive fast path carry an //amr:hot directive declaring their
// heap-escape budget:
//
//	//amr:hot allocs=N
//
// The budget counts the *escape sites* the compiler proves in the
// function body — the `escapes to heap` / `moved to heap` diagnostics of
// `go build -gcflags=-m` — not runtime allocations per call (a pooled
// buffer's escape site executes only on pool miss). Pinning sites
// statically is what lets the PingPong ≤4 / GhostExchange ≤8 allocs/op
// benchmark baselines be enforced before a benchmark ever runs: a new
// escape site on the hot path is exactly a new allocs/op term.
//
// CheckEscapes reports over-budget sites as errors and under-budget
// counts as warnings, so an optimization that removes a site fails the
// gate too until the pin is lowered — the "measure, fix, pin" loop.

// HotFunc is one //amr:hot annotated function: its declared escape
// budget and the source range the budget covers.
type HotFunc struct {
	Name   string         // package-qualified display name
	File   string         // file path as the loader resolved it
	Budget int            // declared escape-site budget
	Start  int            // first line of the declaration
	End    int            // last line of the body
	Pos    token.Position // report position (the func keyword)
}

// CollectHotFuncs gathers every //amr:hot directive in pkgs, in (file,
// line) order. Malformed directives surface as findings.
func CollectHotFuncs(pkgs []*Package) ([]HotFunc, []Finding) {
	var hots []HotFunc
	var findings []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				dir, ok := directiveLine(fd.Doc, "amr:hot")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(fd.Pos())
				budget := -1
				for _, f := range strings.Fields(dir) {
					if v, ok := strings.CutPrefix(f, "allocs="); ok {
						if n, err := strconv.Atoi(v); err == nil && n >= 0 {
							budget = n
						}
					}
				}
				if budget < 0 {
					findings = append(findings, Finding{
						Pos: pos, Analyzer: PerfLint.Name,
						Rule: "perf-hot-alloc", Severity: "error",
						Message: "malformed //amr:hot directive: need allocs=<n>",
					})
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					if t := baseTypeName(fd.Recv.List[0].Type); t != "" {
						name = t + "." + name
					}
				}
				hots = append(hots, HotFunc{
					Name:   pkg.Name + "." + name,
					File:   pos.Filename,
					Budget: budget,
					Start:  pos.Line,
					End:    pkg.Fset.Position(fd.End()).Line,
					Pos:    pos,
				})
			}
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].File != hots[j].File {
			return hots[i].File < hots[j].File
		}
		return hots[i].Start < hots[j].Start
	})
	return hots, findings
}

// EscapeSite is one compiler-proved heap escape.
type EscapeSite struct {
	File string
	Line int
	Col  int
	Msg  string
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// ParseEscapes extracts the heap-escape sites from `go build
// -gcflags=-m` diagnostic output. Only `escapes to heap` and `moved to
// heap` lines count ("does not escape" and "leaking param" are
// negations and annotations, not allocations); sites are deduplicated
// by position because generic instantiations repeat per shape.
func ParseEscapes(output string) []EscapeSite {
	var sites []EscapeSite
	seen := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(output))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "does not escape") {
			continue
		}
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		key := m[1] + ":" + m[2] + ":" + m[3]
		if seen[key] {
			continue
		}
		seen[key] = true
		l, _ := strconv.Atoi(m[2])
		c, _ := strconv.Atoi(m[3])
		sites = append(sites, EscapeSite{File: m[1], Line: l, Col: c, Msg: m[4]})
	}
	return sites
}

// sameFile reports whether a compiler-printed path and a loader-resolved
// path name the same file: equal, or one is a component-aligned suffix
// of the other (builds print package-relative paths, loaders absolute
// ones).
func sameFile(a, b string) bool {
	if a == b {
		return true
	}
	if strings.HasSuffix(a, "/"+b) || strings.HasSuffix(b, "/"+a) {
		return true
	}
	return false
}

// CheckEscapes audits every hot function's escape sites against its
// declared budget. Over budget is an error — a new allocation on the
// fast path; under budget is a warning — the pin has drifted and should
// be tightened.
func CheckEscapes(hots []HotFunc, sites []EscapeSite) []Finding {
	var findings []Finding
	for _, h := range hots {
		n := 0
		var msgs []string
		for _, s := range sites {
			if s.Line >= h.Start && s.Line <= h.End && sameFile(s.File, h.File) {
				n++
				msgs = append(msgs, fmt.Sprintf("%d:%d %s", s.Line, s.Col, s.Msg))
			}
		}
		switch {
		case n > h.Budget:
			findings = append(findings, Finding{
				Pos: h.Pos, Analyzer: PerfLint.Name,
				Rule: "perf-hot-alloc", Severity: "error",
				Message: fmt.Sprintf("%s has %d heap-escape sites, over its //amr:hot budget of %d: %s",
					h.Name, n, h.Budget, strings.Join(msgs, "; ")),
			})
		case n < h.Budget:
			findings = append(findings, Finding{
				Pos: h.Pos, Analyzer: PerfLint.Name,
				Rule: "perf-hot-alloc", Severity: "warning",
				Message: fmt.Sprintf("%s has %d heap-escape sites, under its //amr:hot budget of %d: lower the pin",
					h.Name, n, h.Budget),
			})
		}
	}
	return dedupeFindings(findings)
}
