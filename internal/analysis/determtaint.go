package analysis

// This file is determlint's taint engine: the lattice (detKind/dtaint),
// the declaration scan that classifies map-, sync.Map- and float-typed
// names, the branch-insensitive flow walker (detFlow) that propagates
// taint from sources to sinks, and the interprocedural summary fixpoint
// (detSummary) that extends the walker through package-local helpers.
// determ.go holds the analyzer shell: rules, directives, waivers and
// reporting.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---- taint lattice ---------------------------------------------------------

// detKind classifies why a value is nondeterministic.
type detKind int

const (
	detNone     detKind = iota
	detMapOrder         // produced under map/sync.Map iteration order
	detRand             // drawn from the shared package-level rand stream
	detTime             // read from the wall clock
	detSelect           // chosen by a multi-case select
	detWaitany          // chosen by request/goroutine completion order
)

func (k detKind) String() string {
	switch k {
	case detMapOrder:
		return "map-iteration-order"
	case detRand:
		return "unseeded-rand"
	case detTime:
		return "wall-clock"
	case detSelect:
		return "select-choice"
	case detWaitany:
		return "completion-order"
	}
	return "none"
}

// rule maps a source kind to the rule its sink findings report under.
func (k detKind) rule() string {
	switch k {
	case detMapOrder:
		return ruleMapOrder
	case detRand:
		return ruleUnseededRand
	case detTime:
		return ruleTimeSink
	case detSelect, detWaitany:
		return ruleSelectSink
	}
	return ""
}

// dtaint is one value's taint: a source kind, plus (during summary
// computation only) the index of the parameter the value flowed from.
type dtaint struct {
	kind  detKind
	param int
}

var noTaint = dtaint{param: -1}

func (t dtaint) tainted() bool { return t.kind != detNone }

// mergeTaint joins two taints: the first source kind wins, parameter
// provenance is kept if either side has it.
func mergeTaint(a, b dtaint) dtaint {
	if a.kind == detNone {
		a.kind = b.kind
	}
	if a.param < 0 {
		a.param = b.param
	}
	return a
}

// ---- name tables -----------------------------------------------------------

// randTopFuncs are the math/rand (v1 and v2) package-level draws that use
// the shared global stream. Constructors (New, NewPCG, NewSource,
// NewChaCha8) are absent on purpose: an explicitly seeded *rand.Rand is
// the deterministic replacement.
var randTopFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "N": true,
}

// sortKillFuncs are the sort/slices calls that pin an iteration order in
// place, killing order taint on their first argument.
var sortKillFuncs = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Stable": true,
	"Slice": true, "SliceStable": true, "Strings": true, "Ints": true,
	"Float64s": true,
}

// sortedValueFuncs are the slices calls that return a freshly sorted
// sequence: their result is order-clean whatever went in.
var sortedValueFuncs = map[string]bool{
	"Sorted": true, "SortedFunc": true, "SortedStableFunc": true,
}

// outputSinks are byte-emitting calls, matched by name: once
// nondeterministic bytes are written, every downstream diff/golden/log
// comparison breaks. Record is the trace-event sink; it is special-cased
// as timing-exempt (see sinkOf).
var outputSinks = map[string]bool{
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Record": true, "Report": true, "report": true, "Log": true, "Logf": true,
}

// checksumSink reports whether a callee name is checksum/oracle
// accumulation, where argument order and value must be reproducible.
func checksumSink(name string) bool {
	return name == "CombineSums" || name == "Accept" ||
		strings.Contains(strings.ToLower(name), "checksum")
}

// tagSeqName reports whether a store target names a message tag or
// sequence number, whose values must be reproducible for matching.
func tagSeqName(name string) bool {
	switch name {
	case "tag", "Tag", "seq", "Seq":
		return true
	}
	return false
}

// ---- pass state and declaration scan --------------------------------------

// detPass is the shared state of one determlint run over one package.
type detPass struct {
	pass *Pass

	mapObjs     map[types.Object]bool // declared with map[...]T syntax
	syncMapObjs map[types.Object]bool // declared sync.Map
	floatObjs   map[types.Object]bool // declared float32/float64
	floatElems  map[types.Object]bool // declared []float or map[...]float
	funcDecls   map[types.Object]*ast.FuncDecl

	detFuncs map[*ast.FuncDecl]bool // //amr:det-annotated declarations
	detObjs  map[types.Object]bool  // their objects, for call-site lookup

	waivers []*detWaiver
	sums    map[types.Object]*detSummary

	raw      []detFinding
	reported map[reportKey]bool
}

func isSyncMapTypeExpr(expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && base.Name == "sync" && sel.Sel.Name == "Map"
}

func isFloatTypeExpr(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && (id.Name == "float64" || id.Name == "float32")
}

// isFloatContainerExpr matches []floatN and map[...]floatN declarations,
// so indexed accumulators classify as float even when the tolerant
// type-check could not resolve the container.
func isFloatContainerExpr(expr ast.Expr) bool {
	switch t := ast.Unparen(expr).(type) {
	case *ast.ArrayType:
		return isFloatTypeExpr(t.Elt)
	case *ast.MapType:
		return isFloatTypeExpr(t.Value)
	}
	return false
}

// scanDecls indexes declared names whose type syntax identifies them as
// maps, sync.Maps or floats, plus function declarations for summaries.
// The Types map covers locally-inferred expressions; this scan is the
// fallback for declared struct fields and cross-package shapes.
func (d *detPass) scanDecls() {
	d.mapObjs = make(map[types.Object]bool)
	d.syncMapObjs = make(map[types.Object]bool)
	d.floatObjs = make(map[types.Object]bool)
	d.floatElems = make(map[types.Object]bool)
	d.funcDecls = make(map[types.Object]*ast.FuncDecl)
	info := d.pass.Pkg.Info

	classify := func(names []*ast.Ident, typ ast.Expr) {
		if typ == nil {
			return
		}
		for _, name := range names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case isSyncMapTypeExpr(typ):
				d.syncMapObjs[obj] = true
			case isFloatTypeExpr(typ):
				d.floatObjs[obj] = true
			case isFloatContainerExpr(typ):
				d.floatElems[obj] = true
			default:
				if _, ok := ast.Unparen(typ).(*ast.MapType); ok {
					d.mapObjs[obj] = true
				}
			}
		}
	}

	for _, file := range d.pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := info.Defs[fd.Name]; obj != nil {
					d.funcDecls[obj] = fd
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.ValueSpec:
				classify(t.Names, t.Type)
			case *ast.StructType:
				for _, field := range t.Fields.List {
					classify(field.Names, field.Type)
				}
			case *ast.FuncType:
				if t.Params != nil {
					for _, field := range t.Params.List {
						classify(field.Names, field.Type)
					}
				}
			}
			return true
		})
	}
}

// ---- type queries ----------------------------------------------------------

// typeOf returns the locally-inferred type of expr, or nil when the
// tolerant check left it unresolved or invalid.
func (d *detPass) typeOf(expr ast.Expr) types.Type {
	if tv, ok := d.pass.Pkg.Info.Types[expr]; ok && tv.Type != nil {
		if basic, ok := tv.Type.(*types.Basic); ok && basic.Kind() == types.Invalid {
			return nil
		}
		return tv.Type
	}
	return nil
}

func (d *detPass) exprIsMap(expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if t := d.typeOf(expr); t != nil {
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	if obj := exprObj(d.pass, expr); obj != nil {
		return d.mapObjs[obj]
	}
	return false
}

func (d *detPass) exprIsFloat(expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if t := d.typeOf(expr); t != nil {
		basic, ok := t.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsFloat != 0
	}
	switch x := expr.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if obj := exprObj(d.pass, expr); obj != nil {
			return d.floatObjs[obj]
		}
	case *ast.IndexExpr:
		if obj := exprObj(d.pass, x.X); obj != nil {
			return d.floatElems[obj]
		}
	}
	return false
}

func (d *detPass) exprIsString(expr ast.Expr) bool {
	if t := d.typeOf(ast.Unparen(expr)); t != nil {
		basic, ok := t.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsString != 0
	}
	return false
}

// exprObj resolves an identifier or selector tail to its object.
func exprObj(pass *Pass, expr ast.Expr) types.Object {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.objOf(x)
	case *ast.SelectorExpr:
		return pass.objOf(x.Sel)
	}
	return nil
}

// pkgSelector reports whether call.Fun is pkg.Name for an imported
// package identifier. Even with the failing importer, go/types records a
// *types.PkgName for the base identifier, which distinguishes `rand.Int`
// the package call from a method on a local variable named rand (whose
// object is a *types.Var).
func pkgSelector(pass *Pass, call *ast.CallExpr, pkg string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != pkg {
		return false
	}
	obj := pass.objOf(base)
	if obj == nil {
		return true // unresolved: no local shadows the name
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}

func calleeObj(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.objOf(fun)
	case *ast.SelectorExpr:
		return pass.objOf(fun.Sel)
	}
	return nil
}

// ---- interprocedural summaries ---------------------------------------------

// detSummary is what call sites know about a package-local callee.
type detSummary struct {
	// retKind is non-none when every return hands back a value tainted
	// with the same source kind (a time.Now wrapper, a maps.Keys helper).
	retKind detKind
	// sinkParams maps parameter positions the body forwards into a sink
	// to that sink's description.
	sinkParams map[int]string
	// sortParams marks parameter positions the body sorts — calling such
	// a helper pins the argument's order just like a direct sort call.
	sortParams map[int]bool
}

func (a *detSummary) equal(b *detSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.retKind != b.retKind || len(a.sinkParams) != len(b.sinkParams) || len(a.sortParams) != len(b.sortParams) {
		return false
	}
	for k, v := range a.sinkParams {
		if b.sinkParams[k] != v {
			return false
		}
	}
	for k := range a.sortParams {
		if !b.sortParams[k] {
			return false
		}
	}
	return true
}

// computeDetSummaries runs the silent summary pass over every function
// until the summaries stop changing, so helpers that delegate to other
// helpers (emit → report, sortRoutes → sort.Slice) summarize too.
func (d *detPass) computeDetSummaries() map[types.Object]*detSummary {
	sums := make(map[types.Object]*detSummary)
	for iter := 0; iter < maxSummaryIters; iter++ {
		changed := false
		for obj, fd := range d.funcDecls {
			next := d.summarizeDetFunc(fd, sums)
			if !sums[obj].equal(next) {
				changed = true
				if next == nil {
					delete(sums, obj)
				} else {
					sums[obj] = next
				}
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// summarizeDetFunc walks one body silently with every parameter seeded
// as parameter-tainted and folds what reached sinks, sorts and returns.
func (d *detPass) summarizeDetFunc(fd *ast.FuncDecl, sums map[types.Object]*detSummary) *detSummary {
	env := make(map[types.Object]dtaint)
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					if obj := d.pass.Pkg.Info.Defs[name]; obj != nil {
						env[obj] = dtaint{kind: detNone, param: idx}
					}
				}
				idx++
			}
		}
	}
	f := &detFlow{
		d: d, env: env, sums: sums, silent: true,
		sinkHits: make(map[int]string),
		sortHits: make(map[int]bool),
	}
	f.walkBody(fd.Body)

	sum := &detSummary{retKind: f.retFold()}
	if len(f.sinkHits) > 0 {
		sum.sinkParams = f.sinkHits
	}
	if len(f.sortHits) > 0 {
		sum.sortParams = f.sortHits
	}
	if sum.retKind == detNone && sum.sinkParams == nil && sum.sortParams == nil {
		return nil
	}
	return sum
}

// retFold folds the kinds seen at return statements: a summary exists
// only when every return was tainted and all agree.
func (f *detFlow) retFold() detKind {
	if len(f.retKinds) == 0 {
		return detNone
	}
	k := f.retKinds[0]
	for _, rk := range f.retKinds[1:] {
		if rk != k {
			return detNone
		}
	}
	return k
}

// ---- flow walker -----------------------------------------------------------

// detFlow walks one function body, branch-insensitively and in source
// order: taint and kills apply on any path (a finding needs only one
// schedule to break reproducibility, and a sort on any path was written
// to pin the order).
type detFlow struct {
	d    *detPass
	env  map[types.Object]dtaint
	sums map[types.Object]*detSummary

	// orderCtx counts enclosing unordered-iteration scopes (map range,
	// range over order-tainted sequence, sync.Map.Range callback).
	orderCtx int
	// loopDepth counts enclosing loops of any kind, for the
	// completion-order float-accumulation rule.
	loopDepth int

	// silent is set during summary computation: record flows, report
	// nothing.
	silent   bool
	sinkHits map[int]string
	sortHits map[int]bool
	retKinds []detKind

	// detFn is set when walking the body of an //amr:det function, whose
	// returns must be deterministic.
	detFn bool
}

// analyzeFunc runs the reporting walk over one declaration. Parameters
// start untainted — the caller's arguments are the caller's findings,
// via summaries and the //amr:det sink rule.
func (d *detPass) analyzeFunc(fd *ast.FuncDecl) {
	f := &detFlow{
		d: d, env: make(map[types.Object]dtaint), sums: d.sums,
		detFn: d.detFuncs[fd],
	}
	f.walkBody(fd.Body)
}

func (f *detFlow) report(pos token.Pos, rule, format string, args ...any) {
	if f.silent {
		return
	}
	f.d.report(pos, rule, format, args...)
}

func (f *detFlow) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	for _, stmt := range body.List {
		f.walkStmt(stmt)
	}
}

func (f *detFlow) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		f.walkBody(s)
	case *ast.ExprStmt:
		f.walkExpr(s.X)
	case *ast.AssignStmt:
		f.walkAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						f.walkExpr(vs.Values[i])
						f.bind(name, f.taintOf(vs.Values[i]))
					}
				}
			}
		}
	case *ast.IfStmt:
		f.walkStmtOpt(s.Init)
		f.walkExpr(s.Cond)
		f.walkBody(s.Body)
		f.walkStmtOpt(s.Else)
	case *ast.ForStmt:
		f.walkStmtOpt(s.Init)
		if s.Cond != nil {
			f.walkExpr(s.Cond)
		}
		f.loopDepth++
		f.walkBody(s.Body)
		f.walkStmtOpt(s.Post)
		f.loopDepth--
	case *ast.RangeStmt:
		f.walkRange(s)
	case *ast.SelectStmt:
		f.walkSelect(s)
	case *ast.SwitchStmt:
		f.walkStmtOpt(s.Init)
		if s.Tag != nil {
			f.walkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					f.walkExpr(e)
				}
				for _, st := range cc.Body {
					f.walkStmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		f.walkStmtOpt(s.Init)
		f.walkStmtOpt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					f.walkStmt(st)
				}
			}
		}
	case *ast.ReturnStmt:
		ret := dtaint{param: -1}
		for _, res := range s.Results {
			f.walkExpr(res)
			ret = mergeTaint(ret, f.taintOf(res))
		}
		if f.silent {
			f.retKinds = append(f.retKinds, ret.kind)
		} else if f.detFn && ret.tainted() {
			f.report(s.Pos(), ret.kind.rule(),
				"//amr:det function returns a %s-dependent value", ret.kind)
		}
	case *ast.GoStmt:
		f.walkCall(s.Call)
	case *ast.DeferStmt:
		f.walkCall(s.Call)
	case *ast.SendStmt:
		// A tainted value entering a channel escapes tracking; the
		// receiver side re-derives taint only from select choice.
		f.walkExpr(s.Chan)
		f.walkExpr(s.Value)
	case *ast.IncDecStmt:
		f.walkExpr(s.X)
	case *ast.LabeledStmt:
		f.walkStmt(s.Stmt)
	}
}

func (f *detFlow) walkStmtOpt(stmt ast.Stmt) {
	if stmt != nil {
		f.walkStmt(stmt)
	}
}

func (f *detFlow) walkAssign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		f.walkExpr(rhs)
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// Tuple assignment: Waitany-style completion picks taint all
			// results (the index selects which request finished).
			t := f.taintOf(s.Rhs[0])
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && calleeName(call) == "Waitany" {
				t = mergeTaint(dtaint{kind: detWaitany, param: -1}, t)
			}
			for _, lhs := range s.Lhs {
				f.bind(lhs, t)
			}
			return
		}
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) {
				f.bind(lhs, f.taintOf(s.Rhs[i]))
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := s.Lhs[0]
		rhs := f.taintOf(s.Rhs[0])
		if f.d.exprIsFloat(lhs) {
			// Float arithmetic is not reassociation-safe: the fold order
			// must be pinned for the result to be bit-reproducible.
			if f.orderCtx > 0 {
				f.report(s.Pos(), ruleFloatOrder,
					"float accumulation under unpinned iteration order; collect keys and sort before folding")
			} else if f.loopDepth > 0 && (rhs.kind == detWaitany || rhs.kind == detSelect) {
				f.report(s.Pos(), ruleFloatOrder,
					"float accumulation in %s; buffer per slot and fold in index order", rhs.kind)
			}
		}
		if f.orderCtx > 0 && s.Tok == token.ADD_ASSIGN && f.d.exprIsString(lhs) {
			// Sequence building: string concatenation under map order
			// bakes the order into the bytes.
			f.bindMerge(lhs, dtaint{kind: detMapOrder, param: -1})
		}
		f.bindMerge(lhs, rhs)
	default:
		// Other op= forms (&=, |=, ...) are order-insensitive folds;
		// still propagate value taint.
		f.bindMerge(s.Lhs[0], f.taintOf(s.Rhs[0]))
	}
}

// bind records taint for an assignment target. Stores into fields and
// elements escape tracking, except the message tag/seq store, which is a
// sink of its own: nondeterministic tags break matching reproducibility.
func (f *detFlow) bind(lhs ast.Expr, t dtaint) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if obj := f.d.pass.objOf(x); obj != nil {
			f.env[obj] = t
		}
	case *ast.SelectorExpr:
		if t.tainted() && tagSeqName(x.Sel.Name) {
			f.report(x.Pos(), t.kind.rule(),
				"%s value stored into message %s field", t.kind, x.Sel.Name)
		}
	}
}

// bindMerge joins new taint into an existing binding (compound assigns).
func (f *detFlow) bindMerge(lhs ast.Expr, t dtaint) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		if obj := f.d.pass.objOf(id); obj != nil {
			f.bind(lhs, mergeTaint(f.env[obj], t))
			return
		}
	}
	f.bind(lhs, t)
}

// kill clears order taint from a sorted value and records the sort when
// the value carried parameter provenance (the sortParams summary).
func (f *detFlow) kill(arg ast.Expr) {
	obj := exprObj(f.d.pass, arg)
	if obj == nil {
		return
	}
	if t, ok := f.env[obj]; ok && t.param >= 0 && f.sortHits != nil {
		f.sortHits[t.param] = true
	}
	f.env[obj] = noTaint
}

func (f *detFlow) walkRange(s *ast.RangeStmt) {
	f.walkExpr(s.X)
	t := f.taintOf(s.X)
	unordered := f.d.exprIsMap(s.X) || t.kind == detMapOrder
	if unordered {
		f.orderCtx++
		f.bindRangeVars(s, dtaint{kind: detMapOrder, param: -1})
	} else {
		// Ordered sequence: elements inherit the sequence's remaining
		// taint (and parameter provenance during summarization).
		f.bindRangeVars(s, t)
	}
	f.loopDepth++
	f.walkBody(s.Body)
	f.loopDepth--
	if unordered {
		f.orderCtx--
	}
}

func (f *detFlow) bindRangeVars(s *ast.RangeStmt, t dtaint) {
	if s.Key != nil {
		f.bind(s.Key, t)
	}
	if s.Value != nil {
		f.bind(s.Value, t)
	}
}

// walkSelect taints values bound by multi-case selects: which case ran
// is a scheduling decision, so the received values are
// nondeterministically chosen even though each channel is FIFO.
func (f *detFlow) walkSelect(s *ast.SelectStmt) {
	comm := 0
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm != nil {
			if as, ok := cc.Comm.(*ast.AssignStmt); ok && comm >= 2 {
				for _, lhs := range as.Lhs {
					f.bind(lhs, dtaint{kind: detSelect, param: -1})
				}
			} else {
				f.walkStmtOpt(cc.Comm)
			}
		}
		for _, st := range cc.Body {
			f.walkStmt(st)
		}
	}
}

// ---- expression walk and call classification -------------------------------

// walkExpr visits an expression tree for its side effects on the
// analysis: call sites (sources, sinks, kills) and function literals.
func (f *detFlow) walkExpr(expr ast.Expr) {
	switch x := expr.(type) {
	case *ast.CallExpr:
		f.walkCall(x)
	case *ast.FuncLit:
		f.walkFuncLit(x)
	case *ast.ParenExpr:
		f.walkExpr(x.X)
	case *ast.BinaryExpr:
		f.walkExpr(x.X)
		f.walkExpr(x.Y)
	case *ast.UnaryExpr:
		f.walkExpr(x.X)
	case *ast.StarExpr:
		f.walkExpr(x.X)
	case *ast.IndexExpr:
		f.walkExpr(x.X)
		f.walkExpr(x.Index)
	case *ast.IndexListExpr:
		f.walkExpr(x.X)
	case *ast.SliceExpr:
		f.walkExpr(x.X)
	case *ast.SelectorExpr:
		f.walkExpr(x.X)
	case *ast.TypeAssertExpr:
		f.walkExpr(x.X)
	case *ast.KeyValueExpr:
		f.walkExpr(x.Value)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			f.walkExpr(elt)
		}
	}
}

// walkFuncLit walks a literal's body with the lexical order context
// reset: the closure may run later (goroutine, callback), so "inside a
// map range" does not hold for it, while captured-variable taint still
// flows through the shared environment.
func (f *detFlow) walkFuncLit(lit *ast.FuncLit) {
	savedOrder, savedLoop := f.orderCtx, f.loopDepth
	f.orderCtx, f.loopDepth = 0, 0
	f.walkBody(lit.Body)
	f.orderCtx, f.loopDepth = savedOrder, savedLoop
}

func (f *detFlow) walkCall(call *ast.CallExpr) {
	name := calleeName(call)

	// sync.Map.Range(func(k, v) bool {...}): the callback body runs once
	// per entry in map order.
	if name == "Range" && len(call.Args) == 1 {
		if lit, ok := call.Args[0].(*ast.FuncLit); ok && f.recvIsSyncMap(call) {
			f.orderCtx++
			for _, field := range lit.Type.Params.List {
				for _, p := range field.Names {
					f.bind(p, dtaint{kind: detMapOrder, param: -1})
				}
			}
			f.walkBody(lit.Body)
			f.orderCtx--
			return
		}
	}

	for _, arg := range call.Args {
		f.walkExpr(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		f.walkExpr(sel.X)
	}

	// Source report: package-level math/rand draws share one racy,
	// unseedable-v2 stream — a finding wherever they appear.
	if pkgSelector(f.d.pass, call, "rand") && randTopFuncs[name] {
		f.report(call.Pos(), ruleUnseededRand,
			"package-level rand.%s draws from the shared stream; use a seeded rand.New(rand.NewPCG(...))", name)
	}

	// Kills: direct sorts and helpers summarized as sorting a parameter.
	if (pkgSelector(f.d.pass, call, "sort") || pkgSelector(f.d.pass, call, "slices")) &&
		sortKillFuncs[name] && len(call.Args) >= 1 {
		f.kill(call.Args[0])
		return
	}
	obj := calleeObj(f.d.pass, call)
	var sum *detSummary
	if obj != nil {
		sum = f.sums[obj]
	}
	if sum != nil {
		for i, arg := range call.Args {
			if sum.sortParams[i] {
				f.kill(arg)
			}
		}
	}

	// Sinks: builtin classification, then summarized parameter flows,
	// then //amr:det annotations.
	if sinkName, timing, ok := f.sinkOf(call, name); ok {
		if f.orderCtx > 0 {
			f.report(call.Pos(), ruleMapOrder,
				"%s sink called under map iteration; emitted bytes depend on map order — collect, sort, then emit", sinkName)
		}
		f.sinkArgs(call.Args, sinkName, timing)
	}
	if sum != nil {
		for i, arg := range call.Args {
			if sn, ok := sum.sinkParams[i]; ok {
				f.sinkArgs([]ast.Expr{arg}, sn+" (via "+name+")", false)
			}
		}
	}
	if obj != nil && f.d.detObjs[obj] {
		f.sinkArgs(call.Args, "//amr:det function "+name, false)
	}
}

// sinkArgs reports source-tainted arguments reaching a sink and records
// parameter provenance during summarization. Timing sinks drop
// wall-clock taint: a trace Record's timestamps are telemetry, not
// oracle bytes.
func (f *detFlow) sinkArgs(args []ast.Expr, sinkName string, timing bool) {
	for _, arg := range args {
		t := f.taintOf(arg)
		if t.tainted() && !(timing && t.kind == detTime) {
			f.report(arg.Pos(), t.kind.rule(),
				"%s value reaches %s sink", t.kind, sinkName)
		}
		if t.param >= 0 && f.sinkHits != nil && !timing {
			f.sinkHits[t.param] = sinkName
		}
	}
}

// sinkOf classifies a call as a determinism sink by callee name.
func (f *detFlow) sinkOf(call *ast.CallExpr, name string) (string, bool, bool) {
	if checksumSink(name) {
		return "checksum " + name, false, true
	}
	if outputSinks[name] {
		return "output " + name, name == "Record", true
	}
	return "", false, false
}

// recvIsSyncMap reports whether the receiver of a .Range call resolves
// to a declared sync.Map variable or field.
func (f *detFlow) recvIsSyncMap(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if obj := exprObj(f.d.pass, sel.X); obj != nil {
		return f.d.syncMapObjs[obj]
	}
	return false
}

// ---- taint propagation -----------------------------------------------------

// taintOf computes an expression's taint from the environment and the
// source/propagator tables. Unknown calls and composite literals return
// clean: the engine under-taints rather than guessing (conservative for
// false positives, like the rest of the suite).
func (f *detFlow) taintOf(expr ast.Expr) dtaint {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := f.d.pass.objOf(x); obj != nil {
			if t, ok := f.env[obj]; ok {
				return t
			}
		}
	case *ast.BinaryExpr:
		return mergeTaint(f.taintOf(x.X), f.taintOf(x.Y))
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			// Single-channel receive: FIFO order, no choice involved.
			return noTaint
		}
		return f.taintOf(x.X)
	case *ast.StarExpr:
		return f.taintOf(x.X)
	case *ast.IndexExpr:
		return mergeTaint(f.taintOf(x.X), f.taintOf(x.Index))
	case *ast.SliceExpr:
		return f.taintOf(x.X)
	case *ast.SelectorExpr:
		if obj := f.d.pass.objOf(x.Sel); obj != nil {
			if t, ok := f.env[obj]; ok {
				return t
			}
		}
		return f.taintOf(x.X)
	case *ast.TypeAssertExpr:
		return f.taintOf(x.X)
	case *ast.CallExpr:
		return f.callTaint(x)
	}
	return noTaint
}

// callTaint classifies a call's result: sources, order-clean sorted
// values, propagators, conversions and summarized returns.
func (f *detFlow) callTaint(call *ast.CallExpr) dtaint {
	name := calleeName(call)
	pass := f.d.pass

	switch {
	case pkgSelector(pass, call, "time") && name == "Now":
		return dtaint{kind: detTime, param: -1}
	case pkgSelector(pass, call, "maps") && (name == "Keys" || name == "Values"):
		return dtaint{kind: detMapOrder, param: -1}
	case pkgSelector(pass, call, "slices") && sortedValueFuncs[name]:
		return noTaint // freshly sorted: order pinned whatever went in
	case name == "Waitany":
		return dtaint{kind: detWaitany, param: -1}
	}

	// Propagators: formatting, joining and building carry taint through.
	propagate := func() dtaint {
		t := noTaint
		for _, arg := range call.Args {
			t = mergeTaint(t, f.taintOf(arg))
		}
		return t
	}
	if pkgSelector(pass, call, "fmt") && (name == "Sprintf" || name == "Sprint" || name == "Sprintln") {
		return propagate()
	}
	if pkgSelector(pass, call, "strings") {
		return propagate()
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if fun.Name == "append" || fun.Name == "min" || fun.Name == "max" {
			return propagate()
		}
		// Conversions: T(x) keeps x's taint.
		if obj := pass.objOf(fun); obj != nil {
			if _, isType := obj.(*types.TypeName); isType && len(call.Args) == 1 {
				return f.taintOf(call.Args[0])
			}
		}
	}

	// Summarized returns: a package-local wrapper whose every return is
	// tainted the same way taints its call sites.
	if obj := calleeObj(pass, call); obj != nil {
		if sum := f.sums[obj]; sum != nil && sum.retKind != detNone {
			return dtaint{kind: sum.retKind, param: -1}
		}
	}
	// Method call on a tainted receiver: derived accessors
	// (time.Now().UnixNano(), builder.String()) keep the receiver's
	// taint.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := f.taintOf(sel.X); t.tainted() {
			return t
		}
	}
	return noTaint
}
