package analysis

// The channel-lifecycle half of conclint (conc-chan-close): a small
// per-function flow over locally-created channels — open, closed, or
// maybe-closed after a merge — that reports double close, close of a
// possibly-closed channel, and sends that can panic on a closed channel.
// Tracking is conservative: a channel that escapes (passed to a call,
// stored into a structure, captured by a literal, returned) is dropped
// rather than guessed at.
//
// Channels held in struct fields or package variables get the ownership
// check instead: an `//amr:chan owner=a,b` annotation on the declaration
// names the only functions allowed to close that channel, and any other
// close site is reported. Unannotated shared channels are not checked.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type chanStatus int

const (
	chOpen chanStatus = iota
	chClosed
	chMaybeClosed
)

// chanState is the per-path map of tracked local channels.
type chanState struct {
	vars map[types.Object]chanStatus
	dead bool
}

func newChanState() *chanState {
	return &chanState{vars: make(map[types.Object]chanStatus)}
}

func (s *chanState) clone() *chanState {
	c := newChanState()
	c.dead = s.dead
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

func mergeChanStates(a, b *chanState) *chanState {
	if a == nil || a.dead {
		return b
	}
	if b == nil || b.dead {
		return a
	}
	out := newChanState()
	for k, av := range a.vars {
		bv, ok := b.vars[k]
		switch {
		case !ok:
			// Tracked on one path only (declared in a branch): keep it.
			out.vars[k] = av
		case av == bv:
			out.vars[k] = av
		default:
			out.vars[k] = chMaybeClosed
		}
	}
	for k, bv := range b.vars {
		if _, ok := a.vars[k]; !ok {
			out.vars[k] = bv
		}
	}
	return out
}

// chanFlow walks one function for channel lifecycle violations. silent
// runs evolve the state without reporting (loop probes).
type chanFlow struct {
	c      *concPass
	fname  string
	silent bool
}

// checkChanFlow runs the channel pass over a declared function and every
// literal inside it (literals are separate execution contexts: channels
// they create are theirs, channels they capture are dropped).
func (c *concPass) checkChanFlow(fd *ast.FuncDecl) {
	f := &chanFlow{c: c, fname: fd.Name.Name}
	f.run(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lf := &chanFlow{c: c, fname: fd.Name.Name}
			lf.run(lit.Body)
		}
		return true
	})
}

func (f *chanFlow) run(body *ast.BlockStmt) {
	st := newChanState()
	f.walkStmts(body.List, st)
}

func (f *chanFlow) walkStmts(list []ast.Stmt, st *chanState) {
	for _, s := range list {
		if st.dead {
			return
		}
		f.walkStmt(s, st)
	}
}

func (f *chanFlow) walkStmt(s ast.Stmt, st *chanState) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		f.walkExpr(t.X, st)
	case *ast.SendStmt:
		f.walkExpr(t.Value, st)
		f.checkSend(t, st)
		f.escape(t.Value, st) // a channel sent over a channel escapes
	case *ast.AssignStmt:
		f.walkAssign(t, st)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						f.walkExpr(vs.Values[i], st)
						f.trackIfMake(name, vs.Values[i], st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range t.Results {
			f.walkExpr(res, st)
			f.escape(res, st) // returned channels leave our scope
		}
		st.dead = true
	case *ast.IncDecStmt:
		f.walkExpr(t.X, st)
	case *ast.DeferStmt:
		f.walkCall(t.Call, st)
	case *ast.GoStmt:
		f.walkCall(t.Call, st)
	case *ast.BlockStmt:
		f.walkStmts(t.List, st)
	case *ast.IfStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		f.walkExpr(t.Cond, st)
		then := st.clone()
		f.walkStmts(t.Body.List, then)
		els := st.clone()
		if t.Else != nil {
			f.walkStmt(t.Else, els)
		}
		*st = *mergeChanStates(then, els)
	case *ast.ForStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		f.walkExpr(t.Cond, st)
		f.walkChanLoop(t.Body, st)
	case *ast.RangeStmt:
		f.walkExpr(t.X, st)
		f.walkChanLoop(t.Body, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		f.walkBranches(s, st)
	case *ast.LabeledStmt:
		f.walkStmt(t.Stmt, st)
	}
}

// walkChanLoop analyzes a loop body with the merged entry state of "never
// ran" and "ran once", so a close inside the loop is diagnosed as a
// possible double close on the second iteration.
func (f *chanFlow) walkChanLoop(body *ast.BlockStmt, st *chanState) {
	probe := st.clone()
	silent := &chanFlow{c: f.c, fname: f.fname, silent: true}
	silent.walkStmts(body.List, probe)
	entry := mergeChanStates(st.clone(), probe)
	f.walkStmts(body.List, entry)
	*st = *mergeChanStates(st, entry)
}

// walkBranches merges switch/select arms from a shared entry state.
func (f *chanFlow) walkBranches(s ast.Stmt, st *chanState) {
	var body *ast.BlockStmt
	switch t := s.(type) {
	case *ast.SwitchStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		if t.Tag != nil {
			f.walkExpr(t.Tag, st)
		}
		body = t.Body
	case *ast.TypeSwitchStmt:
		body = t.Body
	case *ast.SelectStmt:
		body = t.Body
	}
	merged := st.clone()
	for _, cs := range body.List {
		branch := st.clone()
		switch cc := cs.(type) {
		case *ast.CaseClause:
			f.walkStmts(cc.Body, branch)
		case *ast.CommClause:
			if cc.Comm != nil {
				f.walkStmt(cc.Comm, branch)
			}
			f.walkStmts(cc.Body, branch)
		}
		merged = mergeChanStates(merged, branch)
	}
	*st = *merged
}

func (f *chanFlow) walkAssign(a *ast.AssignStmt, st *chanState) {
	for _, rhs := range a.Rhs {
		f.walkExpr(rhs, st)
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				f.trackIfMake(id, a.Rhs[i], st)
				continue
			}
			// Storing a tracked channel into a field/slice ends tracking.
			f.escape(a.Rhs[i], st)
		}
		return
	}
	for _, rhs := range a.Rhs {
		f.escape(rhs, st)
	}
}

// trackIfMake starts (or restarts) tracking name when the value is a
// make(chan ...) expression; any other assignment drops tracking.
func (f *chanFlow) trackIfMake(name *ast.Ident, value ast.Expr, st *chanState) {
	obj := f.c.pass.objOf(name)
	if obj == nil || name.Name == "_" {
		return
	}
	if call, ok := ast.Unparen(value).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
			if _, isChan := ast.Unparen(call.Args[0]).(*ast.ChanType); isChan {
				st.vars[obj] = chOpen
				return
			}
		}
	}
	delete(st.vars, obj)
}

func (f *chanFlow) walkExpr(e ast.Expr, st *chanState) {
	if e == nil {
		return
	}
	switch t := e.(type) {
	case *ast.CallExpr:
		f.walkCall(t, st)
	case *ast.UnaryExpr:
		if t.Op != token.ARROW { // receiving does not affect close state
			f.walkExpr(t.X, st)
		}
	case *ast.BinaryExpr:
		f.walkExpr(t.X, st)
		f.walkExpr(t.Y, st)
	case *ast.ParenExpr:
		f.walkExpr(t.X, st)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			f.escape(el, st)
		}
	case *ast.FuncLit:
		// Captured channels may be closed concurrently; stop tracking
		// every local the literal mentions.
		ast.Inspect(t.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := f.c.pass.objOf(id); obj != nil {
					delete(st.vars, obj)
				}
			}
			return true
		})
	}
}

// walkCall handles close(...) specially and treats any other call as an
// escape point for channel arguments.
func (f *chanFlow) walkCall(call *ast.CallExpr, st *chanState) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		f.checkClose(call, st)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
		return
	}
	for _, arg := range call.Args {
		f.walkExpr(arg, st)
		f.escape(arg, st)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		_ = lit // inner literals handled by checkChanFlow's Inspect
	}
}

// escape drops tracking for a local channel whose value leaves the
// function's hands.
func (f *chanFlow) escape(e ast.Expr, st *chanState) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := f.c.pass.objOf(id); obj != nil {
			delete(st.vars, obj)
		}
	}
}

// checkClose reports double closes on tracked locals and ownership
// violations on annotated shared channels.
func (f *chanFlow) checkClose(call *ast.CallExpr, st *chanState) {
	arg := ast.Unparen(call.Args[0])
	switch x := arg.(type) {
	case *ast.Ident:
		obj := f.c.pass.objOf(x)
		if obj == nil {
			return
		}
		if status, ok := st.vars[obj]; ok {
			if !f.silent {
				switch status {
				case chClosed:
					f.c.report(call.Pos(), ruleChanClose, "error", x.Name,
						"close of closed channel %s", x.Name)
				case chMaybeClosed:
					f.c.report(call.Pos(), ruleChanClose, "error", x.Name,
						"channel %s may already be closed on this path", x.Name)
				}
			}
			st.vars[obj] = chClosed
			return
		}
		f.checkOwner(call.Pos(), obj, x.Name)
	case *ast.SelectorExpr:
		if obj := f.c.pass.objOf(x.Sel); obj != nil {
			f.checkOwner(call.Pos(), obj, x.Sel.Name)
		}
	}
}

// checkOwner enforces //amr:chan owner= annotations for shared channels.
func (f *chanFlow) checkOwner(pos token.Pos, obj types.Object, name string) {
	if f.silent || !f.c.chanObjs[obj] {
		return
	}
	class := f.c.classOfObj(obj, name)
	owners, ok := f.c.owners[class]
	if !ok {
		return
	}
	for _, o := range owners {
		if o == f.fname {
			return
		}
	}
	f.c.report(pos, ruleChanClose, "error", class,
		"close of %s outside its declared owner(s) %v", class, owners)
}

// checkSend reports sends on channels some path has closed.
func (f *chanFlow) checkSend(s *ast.SendStmt, st *chanState) {
	id, ok := ast.Unparen(s.Chan).(*ast.Ident)
	if !ok {
		return
	}
	obj := f.c.pass.objOf(id)
	if obj == nil || f.silent {
		return
	}
	switch st.vars[obj] {
	case chClosed:
		f.c.report(s.Arrow, ruleChanClose, "error", id.Name,
			"send on closed channel %s", id.Name)
	case chMaybeClosed:
		f.c.report(s.Arrow, ruleChanClose, "error", id.Name,
			"send on possibly-closed channel %s", id.Name)
	}
}
