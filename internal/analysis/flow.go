package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the shared intraprocedural resource-flow engine
// behind leaselint and reqlint. A tracker defines which calls create a
// resource (an arena lease, a pooled buffer, an MPI request) and what each
// later occurrence of it does; the engine walks every function body,
// follows each resource across branches, loops and error checks, and
// reports resources that a path abandons while still held, consumes twice,
// or uses after their final release.
//
// The analysis is deliberately conservative. A resource that escapes — is
// stored, captured by a closure, returned, sent on a channel, aliased or
// passed to an unclassified call — stops being tracked, and a merge of
// paths that disagree silences further reports. A finding therefore means
// every occurrence of the value was understood and some path still drops
// it: very likely a real defect.

// status of one tracked resource along one control-flow path.
type status uint8

const (
	// stHeld: created and not yet consumed; a leak if a path ends here.
	stHeld status = iota
	// stCondPend: consumption succeeded iff the paired error is nil
	// (a lease handed to SendOwned/IsendOwned before the error check).
	stCondPend
	// stCompleted: completion observed (request Wait/Test); use and a
	// final Free remain legal.
	stCompleted
	// stConsumed: ownership handed off (transfer send, WaitSet.Add);
	// a later final release is a double release.
	stConsumed
	// stFreed: finally released; any further use is a bug.
	stFreed
	// stNil: known nil on this path (creator's result on its error path).
	stNil
	// stEscaped: aliased/stored/captured; tracking ends, nothing reported.
	stEscaped
	// stUnknown: merged paths disagree; tracking ends, nothing reported.
	stUnknown
)

// effect is what one occurrence of a tracked resource does to it.
type effect uint8

const (
	// effNone: benign read (still reported when the resource is freed).
	effNone effect = iota
	// effConsume: unconditional ownership handoff.
	effConsume
	// effCondConsume: ownership handoff unless the call errors.
	effCondConsume
	// effComplete: completion observed; the resource stays usable.
	effComplete
	// effFree: final release.
	effFree
	// effEscape: stop tracking.
	effEscape
)

// tracker is an analyzer's definition of one resource family.
type tracker interface {
	// creator reports whether call creates a resource: the result index
	// holding it, the result index of the paired error (-1 if none), and
	// whether the resource is nil when that error is non-nil.
	creator(call *ast.CallExpr) (resIdx, errIdx int, nilOnErr bool, ok bool)
	// kindOf names the resource a creator call produces, for messages.
	kindOf(call *ast.CallExpr) string
	// methodEffect classifies a method call on the resource.
	methodEffect(name string) effect
	// argEffect classifies passing the resource as argument idx of call,
	// returning the call's error-result index for effCondConsume (-1 if
	// the effect is unconditional).
	argEffect(call *ast.CallExpr, idx int) (effect, int)
	// verbs for messages: past-participle forms of consumption and of the
	// final release ("released, put back or ownership-transferred" /
	// "released"; "completed" / "freed").
	consumeVerb() string
	freeVerb() string
	// freeFromHeldOK reports whether a final release of a held resource
	// is the normal protocol (leases: yes; requests: completion must be
	// observed first).
	freeFromHeldOK() bool
	// paramType reports whether a parameter declared with this type
	// expression can carry the tracked resource into a callee, making
	// the parameter eligible for an interprocedural summary.
	paramType(expr ast.Expr) bool
}

// resource is one tracked creation, shared by all paths.
type resource struct {
	kind     string
	pos      token.Pos // creation site
	depth    int       // block depth of the binding's scope
	reported bool      // one finding per resource
}

// track is a resource's per-path state.
type track struct {
	res      *resource
	st       status
	errObj   types.Object // pairs stCondPend / nilOnErr-held with its error
	nilOnErr bool
}

// pstate is the abstract state of one control-flow path.
type pstate struct {
	vars        map[types.Object]track
	unreachable bool
}

func newPstate() *pstate { return &pstate{vars: make(map[types.Object]track)} }

func (st *pstate) clone() *pstate {
	out := &pstate{vars: make(map[types.Object]track, len(st.vars)), unreachable: st.unreachable}
	for k, v := range st.vars {
		out.vars[k] = v
	}
	return out
}

// mergeWith folds another path into st. Paths that disagree about a
// resource merge to stUnknown (silence) except that escape dominates.
func (st *pstate) mergeWith(other *pstate) {
	if other.unreachable {
		return
	}
	if st.unreachable {
		st.vars, st.unreachable = other.vars, false
		return
	}
	for obj, a := range st.vars {
		b, ok := other.vars[obj]
		switch {
		case !ok:
			a.st = stUnknown
		case a.st == b.st && a.errObj == b.errObj:
			// identical; keep
		case a.st == stEscaped || b.st == stEscaped:
			a.st = stEscaped
		default:
			a.st = stUnknown
		}
		a.errObj = nil
		if ok && a.st == st.vars[obj].st {
			a.errObj = st.vars[obj].errObj
		}
		st.vars[obj] = a
	}
	for obj, b := range other.vars {
		if _, ok := st.vars[obj]; !ok {
			b.st = stUnknown
			b.errObj = nil
			st.vars[obj] = b
		}
	}
}

// funcFlow analyzes one function body.
type funcFlow struct {
	pass       *Pass
	tr         tracker
	depth      int
	loops      []int // block depths of enclosing loop bodies (continue targets)
	breakables []int // block depths of enclosing loop/switch/select bodies

	// summaries holds the package's interprocedural parameter summaries
	// (summary.go); walkCall consults them after the builtin argEffect
	// returns effEscape.
	summaries map[types.Object]paramEffects
	// seed pre-populates the entry state (summary passes seed the
	// function's tracked parameters as held).
	seed map[types.Object]track
	// summaryHook, when non-nil, observes the path state at every normal
	// function exit (returns and the fall-through); panic paths owe
	// nothing, matching exitCheck.
	summaryHook func(st *pstate)
}

// runFlow applies a tracker to every function in the package, first
// computing the package's interprocedural parameter summaries.
func runFlow(pass *Pass, tr tracker) {
	sums := computeSummaries(pass, tr)
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		f := &funcFlow{pass: pass, tr: tr, summaries: sums}
		f.runBody(fd.Body)
	})
}

func (f *funcFlow) runBody(body *ast.BlockStmt) {
	st := newPstate()
	for obj, t := range f.seed {
		st.vars[obj] = t
	}
	f.walkStmts(body.List, st)
	if !st.unreachable {
		f.exitCheck(st, 0)
		if f.summaryHook != nil {
			f.summaryHook(st)
		}
	}
}

// exitCheck reports resources still held at a path exit whose binding
// lives at depth >= minDepth.
func (f *funcFlow) exitCheck(st *pstate, minDepth int) {
	for _, t := range st.vars {
		if t.st == stHeld && t.res.depth >= minDepth && !t.res.reported {
			t.res.reported = true
			f.pass.Reportf(t.res.pos, "%s is not %s on every path", t.res.kind, f.tr.consumeVerb())
		}
	}
}

func (f *funcFlow) walkStmts(list []ast.Stmt, st *pstate) {
	for _, s := range list {
		if st.unreachable {
			return
		}
		f.walkStmt(s, st)
	}
}

// walkBlock processes a nested scope: resources bound inside it die at its
// end, so any still held there leak.
func (f *funcFlow) walkBlock(list []ast.Stmt, st *pstate) {
	f.depth++
	f.walkStmts(list, st)
	if !st.unreachable {
		f.exitCheck(st, f.depth)
	}
	for obj, t := range st.vars {
		if t.res.depth >= f.depth {
			delete(st.vars, obj)
		}
	}
	f.depth--
}

func (f *funcFlow) walkStmt(s ast.Stmt, st *pstate) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		f.walkAssign(s, st)
	case *ast.DeclStmt:
		f.walkDecl(s, st)
	case *ast.ExprStmt:
		f.walkExpr(s.X, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if _, _, _, isCreator := f.tr.creator(call); isCreator {
				f.pass.Reportf(call.Pos(), "result of this call is discarded: the %s it creates is never %s",
					f.tr.kindOf(call), f.tr.consumeVerb())
			}
			if isTerminalCall(call) {
				st.unreachable = true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.walkExpr(r, st)
		}
		f.exitCheck(st, 0)
		if f.summaryHook != nil {
			f.summaryHook(st)
		}
		st.unreachable = true
	case *ast.IfStmt:
		f.walkIf(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			f.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			f.walkExpr(s.Cond, st)
		}
		f.walkLoopBody(s.Body, s.Post, st)
	case *ast.RangeStmt:
		f.walkExpr(s.X, st)
		f.walkLoopBody(s.Body, nil, st)
	case *ast.SwitchStmt:
		if s.Init != nil {
			f.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			f.walkExpr(s.Tag, st)
		}
		f.walkClauses(s.Body.List, st, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			f.walkStmt(s.Init, st)
		}
		f.walkClauses(s.Body.List, st, false)
	case *ast.SelectStmt:
		f.walkClauses(s.Body.List, st, true)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if n := len(f.breakables); n > 0 {
				f.exitCheck(st, f.breakables[n-1])
			}
			st.unreachable = true
		case token.CONTINUE:
			if n := len(f.loops); n > 0 {
				f.exitCheck(st, f.loops[n-1])
			}
			st.unreachable = true
		case token.GOTO:
			st.unreachable = true // give up on goto paths
		}
	case *ast.BlockStmt:
		f.walkBlock(s.List, st)
	case *ast.DeferStmt:
		f.walkDeferred(s.Call, st)
	case *ast.GoStmt:
		f.escapeReferenced(s.Call, st)
	case *ast.SendStmt:
		f.walkExpr(s.Chan, st)
		f.walkExpr(s.Value, st) // a sent resource escapes (bare ident rule)
	case *ast.IncDecStmt:
		f.walkBenign(s.X, st)
	case *ast.LabeledStmt:
		f.walkStmt(s.Stmt, st)
	case *ast.EmptyStmt:
	}
}

// walkLoopBody analyzes a loop body once against a clone and merges the
// zero-iteration path back in.
func (f *funcFlow) walkLoopBody(body *ast.BlockStmt, post ast.Stmt, st *pstate) {
	bodySt := st.clone()
	f.loops = append(f.loops, f.depth+1)
	f.breakables = append(f.breakables, f.depth+1)
	f.walkBlock(body.List, bodySt)
	f.loops = f.loops[:len(f.loops)-1]
	f.breakables = f.breakables[:len(f.breakables)-1]
	if post != nil && !bodySt.unreachable {
		f.walkStmt(post, bodySt)
	}
	bodySt.unreachable = false // the loop as a whole falls through
	st.mergeWith(bodySt)
}

// walkClauses analyzes switch/select clause bodies independently and
// merges them; a switch without default also keeps the no-case path.
func (f *funcFlow) walkClauses(clauses []ast.Stmt, st *pstate, isSelect bool) {
	f.breakables = append(f.breakables, f.depth+1)
	var out *pstate
	hasDefault := false
	for _, c := range clauses {
		cs := st.clone()
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				f.walkExpr(e, cs)
			}
			hasDefault = hasDefault || c.List == nil
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				f.walkStmt(c.Comm, cs)
			}
			hasDefault = hasDefault || c.Comm == nil
			body = c.Body
		}
		f.walkBlock(body, cs)
		if out == nil {
			out = cs
		} else {
			out.mergeWith(cs)
		}
	}
	f.breakables = f.breakables[:len(f.breakables)-1]
	if out == nil {
		return
	}
	if !hasDefault && !isSelect {
		out.mergeWith(st)
	}
	*st = *out
}

// walkIf splits the state, applies error-branch semantics for `err != nil`
// style conditions, and merges.
func (f *funcFlow) walkIf(s *ast.IfStmt, st *pstate) {
	if s.Init != nil {
		f.walkStmt(s.Init, st)
	}
	errObj, nonNilInThen := f.errCond(s.Cond)
	f.walkExpr(s.Cond, st)
	thenSt := st.clone()
	elseSt := st.clone()
	if errObj != nil {
		applyErrOutcome(thenSt, errObj, nonNilInThen)
		applyErrOutcome(elseSt, errObj, !nonNilInThen)
	}
	f.walkBlock(s.Body.List, thenSt)
	if s.Else != nil {
		f.depth++
		f.walkStmt(s.Else, elseSt)
		f.depth--
	}
	thenSt.mergeWith(elseSt)
	*st = *thenSt
}

// errCond matches `x != nil` / `x == nil` over a plain identifier.
func (f *funcFlow) errCond(cond ast.Expr) (obj types.Object, nonNilInThen bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	return f.pass.objOf(id), be.Op == token.NEQ
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// applyErrOutcome resolves conditional states once a path has decided
// whether the paired error was non-nil.
func applyErrOutcome(st *pstate, errObj types.Object, errNonNil bool) {
	for obj, t := range st.vars {
		if t.errObj != errObj {
			continue
		}
		switch t.st {
		case stCondPend: // lease semantics: retained on error
			if errNonNil {
				t.st = stHeld
			} else {
				t.st = stConsumed
			}
		case stHeld: // request semantics: nil on error
			if t.nilOnErr && errNonNil {
				t.st = stNil
			}
		}
		t.errObj = nil
		st.vars[obj] = t
	}
}

// walkDecl handles `var x = creator(...)` forms and records benign specs.
func (f *funcFlow) walkDecl(s *ast.DeclStmt, st *pstate) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
				var lhs []ast.Expr
				for _, n := range vs.Names {
					lhs = append(lhs, n)
				}
				if f.bindCreation(call, lhs, st) {
					continue
				}
			}
		}
		for _, v := range vs.Values {
			f.walkExpr(v, st)
		}
	}
}

func (f *funcFlow) walkAssign(a *ast.AssignStmt, st *pstate) {
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if !f.bindCreation(call, a.Lhs, st) {
				// Clear overwritten bindings first so an error pairing
				// established by this call survives the assignment.
				for _, l := range a.Lhs {
					f.noteOverwrite(l, st)
				}
				f.walkCall(call, st, a.Lhs)
			}
			for _, l := range a.Lhs {
				f.walkLHS(l, st)
			}
			return
		}
	}
	for _, r := range a.Rhs {
		f.walkExpr(r, st)
	}
	for _, l := range a.Lhs {
		f.noteOverwrite(l, st)
	}
	for _, l := range a.Lhs {
		f.walkLHS(l, st)
	}
}

// bindCreation classifies a creator call on the RHS of an assignment,
// binding the new resource and its paired error variable. It returns
// false when the call is not a creator.
func (f *funcFlow) bindCreation(call *ast.CallExpr, lhs []ast.Expr, st *pstate) bool {
	resIdx, errIdx, nilOnErr, ok := f.tr.creator(call)
	if !ok || resIdx >= len(lhs) || errIdx >= len(lhs) {
		return false // wrong assignment shape for this creator
	}
	for _, l := range lhs {
		f.noteOverwrite(l, st)
	}
	f.walkCall(call, st, nil) // arguments may consume other resources
	resID, _ := ast.Unparen(lhs[resIdx]).(*ast.Ident)
	if resID == nil {
		return true // stored into a field or element: escapes, untracked
	}
	if resID.Name == "_" {
		f.pass.Reportf(call.Pos(), "%s is discarded at creation: it is never %s",
			f.tr.kindOf(call), f.tr.consumeVerb())
		return true
	}
	obj := f.pass.objOf(resID)
	if obj == nil {
		return true // unresolved; cannot track
	}
	var errObj types.Object
	if errIdx >= 0 && errIdx < len(lhs) {
		if eid, ok := ast.Unparen(lhs[errIdx]).(*ast.Ident); ok && eid.Name != "_" {
			errObj = f.pass.objOf(eid)
		}
	}
	st.vars[obj] = track{
		res:      &resource{kind: f.tr.kindOf(call), pos: call.Pos(), depth: f.depth},
		st:       stHeld,
		errObj:   errObj,
		nilOnErr: nilOnErr,
	}
	return true
}

// noteOverwrite reports assigning over a still-held resource and clears
// pairings through a reassigned error variable.
func (f *funcFlow) noteOverwrite(lhsExpr ast.Expr, st *pstate) {
	id, ok := ast.Unparen(lhsExpr).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := f.pass.objOf(id)
	if obj == nil {
		return
	}
	if t, ok := st.vars[obj]; ok {
		if t.st == stHeld && !t.res.reported {
			t.res.reported = true
			f.pass.Reportf(id.Pos(), "%s overwritten while still held: the previous one is never %s",
				t.res.kind, f.tr.consumeVerb())
		}
		delete(st.vars, obj)
	}
	// A reassigned error variable no longer witnesses earlier calls.
	for vobj, t := range st.vars {
		if t.errObj == obj {
			if t.st == stCondPend {
				t.st = stConsumed // assume the transfer succeeded
			}
			t.errObj = nil
			st.vars[vobj] = t
		}
	}
}

// walkLHS visits assignment targets: writes into a tracked buffer are
// benign uses; anything else recurses normally.
func (f *funcFlow) walkLHS(l ast.Expr, st *pstate) {
	switch l := l.(type) {
	case *ast.Ident:
		// binding/overwrite handled by callers
	case *ast.IndexExpr:
		f.walkBenign(l.X, st)
		f.walkExpr(l.Index, st)
	case *ast.StarExpr:
		f.walkBenign(l.X, st)
	case *ast.SelectorExpr:
		f.walkBenign(l.X, st)
	default:
		f.walkExpr(l, st)
	}
}

// walkBenign visits an expression treating a bare tracked identifier as a
// plain read instead of an escape.
func (f *funcFlow) walkBenign(e ast.Expr, st *pstate) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		f.apply(id, st, effNone, nil)
		return
	}
	f.walkExpr(e, st)
}

// walkExpr classifies every occurrence of tracked resources in e. The
// default for a bare tracked identifier in an unclassified position is
// escape: stored, aliased or otherwise out of reach.
func (f *funcFlow) walkExpr(e ast.Expr, st *pstate) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		f.apply(e, st, effEscape, nil)
	case *ast.CallExpr:
		f.walkCall(e, st, nil)
	case *ast.ParenExpr:
		f.walkExpr(e.X, st)
	case *ast.SelectorExpr:
		f.walkBenign(e.X, st)
	case *ast.IndexExpr:
		f.walkBenign(e.X, st)
		f.walkExpr(e.Index, st)
	case *ast.IndexListExpr:
		f.walkBenign(e.X, st)
		for _, ix := range e.Indices {
			f.walkExpr(ix, st)
		}
	case *ast.SliceExpr:
		f.walkExpr(e.X, st) // a subslice aliases the buffer: escape
		f.walkExpr(e.Low, st)
		f.walkExpr(e.High, st)
		f.walkExpr(e.Max, st)
	case *ast.StarExpr:
		f.walkBenign(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			f.walkExpr(e.X, st) // address taken: escape
		} else {
			f.walkBenign(e.X, st)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			f.walkBenign(e.X, st)
			f.walkBenign(e.Y, st)
		default:
			f.walkExpr(e.X, st)
			f.walkExpr(e.Y, st)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			f.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		f.walkExpr(e.Value, st)
	case *ast.TypeAssertExpr:
		f.walkExpr(e.X, st)
	case *ast.FuncLit:
		f.escapeReferenced(e, st)
		nested := &funcFlow{pass: f.pass, tr: f.tr, summaries: f.summaries}
		nested.runBody(e.Body)
	}
}

// walkCall classifies the callee's receiver and arguments. assign, when
// non-nil, is the enclosing assignment whose LHS supplies the error
// variable paired with an effCondConsume argument.
func (f *funcFlow) walkCall(call *ast.CallExpr, st *pstate, assign []ast.Expr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok && f.isTracked(id, st) {
			f.apply(id, st, f.tr.methodEffect(fun.Sel.Name), nil)
		} else {
			f.walkBenign(fun.X, st)
		}
	case *ast.Ident:
		switch fun.Name {
		case "len", "cap", "copy", "clear", "min", "max", "print", "println":
			for _, a := range call.Args {
				f.walkBenign(a, st)
			}
			return
		}
	case *ast.FuncLit:
		f.walkExpr(fun, st)
	}
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || !f.isTracked(id, st) {
			f.walkExpr(arg, st)
			continue
		}
		eff, errResIdx := f.tr.argEffect(call, i)
		if eff == effEscape {
			// The builtin classification gives up here; an interprocedural
			// summary of the callee may still know what happens.
			if se, known := f.summaryEffect(call, i); known {
				eff, errResIdx = se, -1
			}
		}
		var errObj types.Object
		if eff == effCondConsume {
			if errResIdx >= 0 && errResIdx < len(assign) {
				if eid, ok := ast.Unparen(assign[errResIdx]).(*ast.Ident); ok && eid.Name != "_" {
					errObj = f.pass.objOf(eid)
				}
			}
			if errObj == nil {
				eff = effConsume // error unobserved: assume the transfer happened
			}
		}
		f.apply(id, st, eff, errObj)
	}
}

// walkDeferred handles `defer call(...)`: effects fire at function exit,
// so a deferred release keeps the resource usable until then.
func (f *funcFlow) walkDeferred(call *ast.CallExpr, st *pstate) {
	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok && f.isTracked(id, st) {
			if eff := f.tr.methodEffect(fun.Sel.Name); eff == effFree || eff == effConsume || eff == effComplete {
				f.markDeferredConsume(id, st)
				return
			}
		}
	}
	for i, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && f.isTracked(id, st) {
			if eff, _ := f.tr.argEffect(call, i); eff == effFree || eff == effConsume || eff == effCondConsume {
				f.markDeferredConsume(id, st)
				continue
			}
		}
	}
	f.escapeReferenced(call, st)
}

// markDeferredConsume records that a deferred call settles the resource:
// it cannot leak, stays usable until return, and tracking for double
// release would need to model defer ordering, so it simply ends.
func (f *funcFlow) markDeferredConsume(id *ast.Ident, st *pstate) {
	if obj := f.pass.objOf(id); obj != nil {
		if t, ok := st.vars[obj]; ok {
			t.st = stEscaped
			st.vars[obj] = t
		}
	}
}

// escapeReferenced marks every tracked identifier under n as escaped —
// closures and go statements move consumption out of this function's
// control flow.
func (f *funcFlow) escapeReferenced(n ast.Node, st *pstate) {
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := f.pass.objOf(id); obj != nil {
				if t, ok := st.vars[obj]; ok {
					t.st = stEscaped
					st.vars[obj] = t
				}
			}
		}
		return true
	})
}

func (f *funcFlow) isTracked(id *ast.Ident, st *pstate) bool {
	obj := f.pass.objOf(id)
	if obj == nil {
		return false
	}
	_, ok := st.vars[obj]
	return ok
}

// apply transitions one resource under one occurrence's effect.
func (f *funcFlow) apply(id *ast.Ident, st *pstate, eff effect, errObj types.Object) {
	obj := f.pass.objOf(id)
	if obj == nil {
		return
	}
	t, ok := st.vars[obj]
	if !ok {
		return
	}
	report := func(format string, args ...any) {
		if !t.res.reported {
			t.res.reported = true
			f.pass.Reportf(id.Pos(), format, args...)
		}
	}
	switch t.st {
	case stEscaped, stUnknown, stNil:
		return
	}
	switch eff {
	case effNone:
		if t.st == stFreed {
			report("use of %s after it was %s", t.res.kind, f.tr.freeVerb())
		}
		return
	case effEscape:
		t.st = stEscaped
	case effComplete:
		switch t.st {
		case stFreed:
			report("use of %s after it was %s", t.res.kind, f.tr.freeVerb())
		case stHeld, stCondPend:
			t.st = stCompleted
		}
	case effConsume, effCondConsume:
		switch t.st {
		case stFreed:
			report("use of %s after it was %s", t.res.kind, f.tr.freeVerb())
		case stConsumed:
			report("%s handed off twice (double transfer)", t.res.kind)
		case stHeld, stCompleted, stCondPend:
			if eff == effCondConsume {
				t.st = stCondPend
				t.errObj = errObj
			} else {
				t.st = stConsumed
				t.errObj = nil
			}
		}
	case effFree:
		switch t.st {
		case stFreed:
			report("%s %s twice (double %s)", t.res.kind, f.tr.freeVerb(), f.tr.freeVerb())
		case stConsumed, stCondPend:
			report("%s %s after its ownership was already handed off", t.res.kind, f.tr.freeVerb())
		case stHeld:
			if !f.tr.freeFromHeldOK() {
				report("%s %s before its completion was observed", t.res.kind, f.tr.freeVerb())
			}
			t.st = stFreed
		case stCompleted:
			t.st = stFreed
		}
	}
	st.vars[obj] = t
}

// isTerminalCall reports calls after which control does not continue.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
			return true
		}
	}
	return false
}
