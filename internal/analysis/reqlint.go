package analysis

import (
	"go/ast"
)

// ReqLint enforces request completion: every request returned by
// Isend/Irecv/IsendOwned must flow into Wait, Test, Waitall, Waitany, a
// WaitSet, or a task binding (Iwait) on every path — including error
// paths, where the request is nil and needs nothing. It also flags
// requests that are dropped at the call site, overwritten while in
// flight, or freed before completion was observed. Free after completion
// is optional (the pool reclaims completed requests), so it is not
// required here.
var ReqLint = &Analyzer{
	Name: "reqlint",
	Doc: "every Isend/Irecv request must be completed (Wait/Test/Waitall/" +
		"Waitany/WaitSet/Iwait) on every path",
	run: func(p *Pass) { runFlow(p, reqTracker{}) },
}

type reqTracker struct{}

// reqCreators are the 3-argument (buf/lease, peer, tag) methods returning
// (*Request, error). The tampi wrappers of the same names take a leading
// *task.Task (4 arguments) and return only an error, so the argument
// count distinguishes the two.
var reqCreators = map[string]bool{
	"Isend":      true,
	"Irecv":      true,
	"IsendOwned": true,
	"isend":      true,
	"irecv":      true,
}

func (reqTracker) creator(call *ast.CallExpr) (resIdx, errIdx int, nilOnErr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel || len(call.Args) != 3 || !reqCreators[sel.Sel.Name] {
		return 0, 0, false, false
	}
	return 0, 1, true, true
}

func (reqTracker) kindOf(*ast.CallExpr) string { return "request" }

func (reqTracker) methodEffect(name string) effect {
	switch name {
	case "Wait", "Test":
		return effComplete
	case "Free":
		return effFree
	case "Done", "String":
		return effNone
	default:
		// OnComplete and anything unrecognised moves completion out of
		// this function's control flow.
		return effEscape
	}
}

func (reqTracker) argEffect(call *ast.CallExpr, idx int) (effect, int) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Waitall", "Waitany", "Iwait", "Add":
			return effConsume, -1
		}
	case *ast.Ident:
		switch fun.Name {
		case "Waitall", "Waitany":
			return effConsume, -1
		}
	}
	return effEscape, -1
}

func (reqTracker) consumeVerb() string {
	return "completed (Wait, Test, Waitall, Waitany, WaitSet or Iwait)"
}
func (reqTracker) freeVerb() string     { return "freed" }
func (reqTracker) freeFromHeldOK() bool { return false }

// paramType admits *Request / *mpi.Request parameters to interprocedural
// summaries; request slices and variadics are already classified by
// argEffect (Waitall, Waitany, Iwait).
func (reqTracker) paramType(expr ast.Expr) bool {
	return pointerToNamed(expr, "Request")
}
