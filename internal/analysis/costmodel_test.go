package analysis

import (
	"strings"
	"testing"
)

// dagGraph builds a small task-bearing diamond:
//
//	recv(msgs, recv-comm) -> unpack(segs) -> stencil(blocks) ;  pack(segs) -> send(msgs, send-comm)
//
// with pack independent of the recv chain, so the antichain can combine
// both branches.
func dagGraph() *Graph {
	mk := func(id, label, kind string, comm ...CommEvent) *Node {
		return &Node{ID: id, Phase: "communicate", Kind: kind, Label: label, Comm: comm}
	}
	g := &Graph{
		Driver: "toy-dataflow",
		Phases: []Phase{{Name: "communicate", Seq: 1}},
		Nodes: []*Node{
			mk("communicate/recv", "recv", "task", CommEvent{Kind: "recv", Op: "Irecv"}),
			mk("communicate/pack", "pack", "task"),
			mk("communicate/send", "send", "task", CommEvent{Kind: "send", Op: "IsendOwned"}),
			mk("communicate/unpack", "unpack", "task"),
			mk("communicate/stencil", "stencil", "task"),
		},
		Edges: []Edge{
			{From: "communicate/pack", To: "communicate/send", Kind: "flow"},
			{From: "communicate/recv", To: "communicate/unpack", Kind: "flow"},
			{From: "communicate/unpack", To: "communicate/stencil", Kind: "flow"},
		},
	}
	g.pars = []parSpec{
		{Phase: "communicate", Label: "recv", Axis: "msgs"},
		{Phase: "communicate", Label: "pack", Axis: "segs"},
		{Phase: "communicate", Label: "send", Axis: "msgs"},
		{Phase: "communicate", Label: "unpack", Axis: "segs"},
		{Phase: "communicate", Label: "stencil", Axis: "blocks"},
	}
	return g
}

func TestProfileDataflowDAG(t *testing.T) {
	cfg := CostConfig{
		Workers:         16,
		Axes:            map[string]int{"msgs": 4, "segs": 8, "blocks": 10},
		Bytes:           map[string]int{"msgs": 1024},
		CollectiveBytes: 8,
	}
	p := ProfileGraph(dagGraph(), cfg)
	if p.Mode != "dataflow" {
		t.Fatalf("mode = %q, want dataflow", p.Mode)
	}
	// Work: 4 + 8 + 4 + 8 + 10.
	if p.Work != 34 {
		t.Errorf("work = %d, want 34", p.Work)
	}
	// Span: every region is parallel, the longest chain is
	// recv -> unpack -> stencil = 3 steps.
	if p.Span != 3 {
		t.Errorf("span = %d, want 3", p.Span)
	}
	// Width: {pack, recv, unpack?...} — pack(8) and send(4) are comparable,
	// recv/unpack/stencil pairwise comparable. Best antichain picks the
	// heaviest of each chain: pack(8) + stencil(10) + recv? recv is
	// incomparable with pack and stencil? recv reaches unpack reaches
	// stencil, so recv~stencil comparable. Antichain: pack(8)+stencil(10)=18,
	// or pack(8)+recv(4)=12, or send(4)+stencil(10)=14. Want 18.
	if p.MaxWidth != 18 {
		t.Errorf("max width = %d, want 18", p.MaxWidth)
	}
	if want := 34.0 / 3.0; p.AvgWidth < want-1e-9 || p.AvgWidth > want+1e-9 {
		t.Errorf("avg width = %v, want %v", p.AvgWidth, want)
	}
	// SpeedupBound = min(16, 34/3) = 34/3.
	if p.SpeedupBound != p.AvgWidth {
		t.Errorf("speedup bound = %v, want avg width %v", p.SpeedupBound, p.AvgWidth)
	}
	// Comm: the recv node receives 4 messages, the send node sends 4,
	// each scaled by Bytes[msgs].
	if p.Sends != 4 || p.SendBytes != 4096 || p.Recvs != 4 || p.RecvBytes != 4096 {
		t.Errorf("comm = sends %d/%dB recvs %d/%dB, want 4/4096B each",
			p.Sends, p.SendBytes, p.Recvs, p.RecvBytes)
	}
	if len(p.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", p.Warnings)
	}
}

func TestProfileSerialRegionsLengthenSpan(t *testing.T) {
	g := dagGraph()
	// Make the sends serial (master-thread MPI): the span gains the full
	// message count in place of one step.
	for i := range g.pars {
		if g.pars[i].Label == "send" {
			g.pars[i].Serial = true
		}
	}
	cfg := CostConfig{Workers: 16, Axes: map[string]int{"msgs": 4, "segs": 8, "blocks": 10}}
	p := ProfileGraph(g, cfg)
	// Longest chain is now pack -> send = 1 + 4 = 5.
	if p.Span != 5 {
		t.Errorf("span = %d, want 5", p.Span)
	}
	// The serial send weighs 1 in the antichain; pack+stencil still wins.
	if p.MaxWidth != 18 {
		t.Errorf("max width = %d, want 18", p.MaxWidth)
	}
}

// barrierGraph is a fork-join shape: no task nodes, two phases, the MPI
// operations serial on the master and the compute regions parallel via
// unmatched //amr:par labels (synthetic region nodes).
func barrierGraph() *Graph {
	g := &Graph{
		Driver: "toy-forkjoin",
		Phases: []Phase{{Name: "communicate", Seq: 1}, {Name: "stencil", Seq: 2}},
		Nodes: []*Node{
			{ID: "communicate/Irecv", Phase: "communicate", Kind: "recv", Label: "Irecv",
				Comm: []CommEvent{{Kind: "recv", Op: "Irecv"}}},
			{ID: "communicate/IsendOwned", Phase: "communicate", Kind: "send", Label: "IsendOwned",
				Comm: []CommEvent{{Kind: "send", Op: "IsendOwned"}}},
		},
		Edges: []Edge{
			{From: "communicate/Irecv", To: "communicate/IsendOwned", Kind: "seq"},
		},
	}
	g.pars = []parSpec{
		{Phase: "communicate", Label: "Irecv", Axis: "msgs", Serial: true},
		{Phase: "communicate", Label: "IsendOwned", Axis: "msgs", Serial: true},
		{Phase: "communicate", Label: "pack", Axis: "segs"},
		{Phase: "stencil", Label: "stencil", Axis: "blocks"},
	}
	return g
}

func TestProfileBarrierComposition(t *testing.T) {
	cfg := CostConfig{
		Workers: 8,
		Axes:    map[string]int{"msgs": 4, "segs": 6, "blocks": 24},
		Bytes:   map[string]int{"msgs": 512},
	}
	p := ProfileGraph(barrierGraph(), cfg)
	if p.Mode != "barrier" {
		t.Fatalf("mode = %q, want barrier", p.Mode)
	}
	// Work: 4 + 4 + 6 + 24.
	if p.Work != 38 {
		t.Errorf("work = %d, want 38", p.Work)
	}
	// Spans add across phases: communicate = 4 + 4 serial steps + 1 for
	// the pack region = 9; stencil = 1. Total 10.
	if p.Span != 10 {
		t.Errorf("span = %d, want 10", p.Span)
	}
	// Widths max across phases: widest single region is stencil's 24.
	if p.MaxWidth != 24 {
		t.Errorf("max width = %d, want 24", p.MaxWidth)
	}
	if p.Sends != 4 || p.SendBytes != 2048 || p.Recvs != 4 || p.RecvBytes != 2048 {
		t.Errorf("comm = sends %d/%dB recvs %d/%dB, want 4/2048B each",
			p.Sends, p.SendBytes, p.Recvs, p.RecvBytes)
	}
	// The synthetic regions appear as nodes so the golden pins them.
	var sawPack, sawStencil bool
	for _, c := range p.Nodes {
		switch c.ID {
		case "communicate/pack":
			sawPack = c.Kind == "par" && c.Count == 6
		case "stencil/stencil":
			sawStencil = c.Kind == "par" && c.Count == 24
		}
	}
	if !sawPack || !sawStencil {
		t.Errorf("synthetic par regions missing (pack=%v stencil=%v): %+v",
			sawPack, sawStencil, p.Nodes)
	}
}

// TestProfileCommVolumeScales pins the surface-to-volume accounting: the
// byte volume is linear in both the message count and the per-message
// payload, which is exactly what a golden diff catches when a config
// change regresses the communication volume.
func TestProfileCommVolumeScales(t *testing.T) {
	base := CostConfig{Workers: 4, Axes: map[string]int{"msgs": 4, "segs": 8, "blocks": 10},
		Bytes: map[string]int{"msgs": 1024}}
	doubledMsgs := CostConfig{Workers: 4, Axes: map[string]int{"msgs": 8, "segs": 8, "blocks": 10},
		Bytes: map[string]int{"msgs": 1024}}
	fatterMsgs := CostConfig{Workers: 4, Axes: map[string]int{"msgs": 4, "segs": 8, "blocks": 10},
		Bytes: map[string]int{"msgs": 4096}}

	b := ProfileGraph(dagGraph(), base)
	d := ProfileGraph(dagGraph(), doubledMsgs)
	f := ProfileGraph(dagGraph(), fatterMsgs)
	if d.SendBytes != 2*b.SendBytes || d.Recvs != 2*b.Recvs {
		t.Errorf("doubling msgs: sends %d -> %dB, recvs %d -> %d", b.SendBytes, d.SendBytes, b.Recvs, d.Recvs)
	}
	if f.SendBytes != 4*b.SendBytes || f.Sends != b.Sends {
		t.Errorf("quadrupling payload: bytes %d -> %d, sends %d -> %d",
			b.SendBytes, f.SendBytes, b.Sends, f.Sends)
	}
}

func TestProfileWarnings(t *testing.T) {
	g := dagGraph()
	g.pars = append(g.pars, parSpec{Phase: "communicate", Label: "recv", Axis: "other"})
	cfg := CostConfig{Workers: 4, Axes: map[string]int{"msgs": 4, "segs": 8}} // blocks missing
	p := ProfileGraph(g, cfg)
	var dup, missing bool
	for _, w := range p.Warnings {
		if strings.Contains(w, "duplicate //amr:par label recv") {
			dup = true
		}
		if strings.Contains(w, "axis blocks has no count") {
			missing = true
		}
	}
	if !dup || !missing {
		t.Errorf("warnings missing (dup=%v missing=%v): %v", dup, missing, p.Warnings)
	}
	// Warned nodes fall back to count 1 and the profile stays usable.
	if p.Work != 4+8+4+8+1 {
		t.Errorf("work = %d, want 25", p.Work)
	}
}

func TestMaxWeightAntichain(t *testing.T) {
	// Chain 0->1->2 with weights 5,1,4 plus isolated 3 (weight 2):
	// best is {0,3} = 7 vs {2,3} = 6.
	comparable := func(i, j int) bool {
		return (i < 3 && j < 3) && i != j
	}
	if got := maxWeightAntichain([]int{5, 1, 4, 2}, comparable); got != 7 {
		t.Errorf("antichain weight = %d, want 7", got)
	}
	if got := maxWeightAntichain(nil, nil); got != 0 {
		t.Errorf("empty antichain = %d, want 0", got)
	}
}

func TestProfileTextGoldenForm(t *testing.T) {
	cfg := CostConfig{Workers: 4, Axes: map[string]int{"msgs": 2, "segs": 3, "blocks": 4},
		Bytes: map[string]int{"msgs": 100}}
	p := ProfileGraph(dagGraph(), cfg)
	txt := p.Text()
	for _, want := range []string{
		"driver toy-dataflow\n",
		"mode dataflow\n",
		"workers 4\n",
		"axes blocks=4 msgs=2 segs=3\n",
		"comm sends=2/200B recvs=2/200B collectives=0/0B\n",
		"  communicate/recv task axis=msgs count=2\n",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("golden text missing %q:\n%s", want, txt)
		}
	}
	// JSON round-trips the same numbers.
	js := p.JSON()
	if !strings.Contains(js, `"driver": "toy-dataflow"`) || !strings.Contains(js, `"send_bytes": 200`) {
		t.Errorf("JSON form missing fields:\n%s", js)
	}
}
