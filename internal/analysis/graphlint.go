package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GraphLint is the whole-program layer of the suite: over the task DAG
// and communication topology extracted from //amr:graph anchored driver
// functions it verifies acyclicity, producer/consumer completeness of
// stage regions (read-before-write and dead writes), send/recv
// peer-and-tag symmetry under the mirror relation, and collective
// call-sequence agreement across statically-reachable rank paths.
var GraphLint = &Analyzer{
	Name: "graphlint",
	Doc: "whole-program task-graph and communication-topology invariants " +
		"over //amr:graph anchored drivers",
	run: runGraphLint,
}

func runGraphLint(p *Pass) {
	ex := newExtractor(p)
	if len(ex.anchors) == 0 {
		return
	}
	ex.graphs() // extraction + graph invariants report through the pass
	ex.checkCollectiveSeqs()
}

// ExtractGraphs builds the driver graphs declared by //amr:graph anchors
// in pkgs. The returned findings are the graph-invariant violations the
// extraction surfaced, in the same order Run would report them.
func ExtractGraphs(pkgs []*Package) ([]*Graph, []Finding) {
	var findings []Finding
	var graphs []*Graph
	for _, pkg := range pkgs {
		pass := &Pass{Fset: pkg.Fset, Pkg: pkg, analyzer: GraphLint, findings: &findings}
		ex := newExtractor(pass)
		if len(ex.anchors) == 0 {
			continue
		}
		graphs = append(graphs, ex.graphs()...)
	}
	sort.Slice(graphs, func(i, j int) bool { return graphs[i].Driver < graphs[j].Driver })
	return graphs, dedupeFindings(findings)
}

// maxSeqSteps bounds the collective-sequence exploration; anchored
// pipelines are small, so hitting the bound means a pathological input,
// and the checker simply stops rather than misreports.
const maxSeqSteps = 50000

// checkCollectiveSeqs verifies that every rank path through each
// anchored function (helpers inlined) issues the same collective
// sequence. A rank-dependent branch where one path reaches a collective
// the other skips — `if rank == 0 { return }` before an Allreduce — is
// the loop-agnostic half of the collective-mismatch deadlock that
// collectivelint's nesting rule cannot see.
func (ex *extractor) checkCollectiveSeqs() {
	c := &seqChecker{ex: ex, reported: make(map[token.Pos]bool)}
	done := make(map[*ast.FuncDecl]bool)
	for _, a := range ex.anchors {
		if done[a.fd] {
			continue
		}
		done[a.fd] = true
		c.fnSeq(a.fd)
	}
}

type seqChecker struct {
	ex       *extractor
	stack    []*ast.FuncDecl
	steps    int
	reported map[token.Pos]bool // helpers reachable from several anchors report once
}

// fnSeq computes a function's collective sequence, reporting divergences
// found along the way.
func (c *seqChecker) fnSeq(fd *ast.FuncDecl) []string {
	cw := &collectiveWalker{pass: c.ex.pass, rankObjs: make(map[types.Object]bool)}
	cw.prescan(fd.Body)
	c.stack = append(c.stack, fd)
	seq, _ := c.seqStmts(fd.Body.List, cw)
	c.stack = c.stack[:len(c.stack)-1]
	return seq
}

// seqStmts folds a statement list into the collective sequence it
// issues, continuation-style: an if statement is analyzed together with
// the statements that follow it, so early returns that skip a later
// collective surface as diverging rank paths.
func (c *seqChecker) seqStmts(list []ast.Stmt, cw *collectiveWalker) (seq []string, terminated bool) {
	for i, s := range list {
		if c.steps++; c.steps > maxSeqSteps {
			return seq, true
		}
		switch s := s.(type) {
		case *ast.IfStmt:
			if s.Init != nil {
				seq = append(seq, c.stmtSeq(s.Init, cw)...)
			}
			seq = append(seq, c.exprSeq(s.Cond, cw)...)
			thenSeq, thenTerm := c.seqStmts(s.Body.List, cw)
			var elseSeq []string
			elseTerm := false
			if s.Else != nil {
				elseSeq, elseTerm = c.seqStmts([]ast.Stmt{s.Else}, cw)
			}
			tailSeq, tailTerm := c.seqStmts(list[i+1:], cw)
			a := thenSeq
			aTerm := thenTerm
			if !thenTerm {
				a = concat(thenSeq, tailSeq)
				aTerm = tailTerm
			}
			b := elseSeq
			bTerm := elseTerm
			if !elseTerm {
				b = concat(elseSeq, tailSeq)
				bTerm = tailTerm
			}
			if cw.rankDependent(s.Cond) && !equalSeq(a, b) && !c.reported[s.Pos()] {
				c.reported[s.Pos()] = true
				c.ex.pass.Reportf(s.Pos(),
					"collective sequence diverges across rank paths: one side of this rank-dependent branch issues [%s], the other [%s] (collective-mismatch deadlock)",
					strings.Join(a, " "), strings.Join(b, " "))
			}
			// Continue along a non-terminating path; the branches agreed
			// (or were already reported), so either serves as the suffix.
			switch {
			case !thenTerm:
				return concat(seq, a), aTerm
			case s.Else != nil && !elseTerm:
				return concat(seq, b), bTerm
			default:
				return concat(seq, a), aTerm && bTerm
			}
		case *ast.ForStmt:
			if s.Init != nil {
				seq = append(seq, c.stmtSeq(s.Init, cw)...)
			}
			if s.Cond != nil {
				seq = append(seq, c.exprSeq(s.Cond, cw)...)
			}
			body, _ := c.seqStmts(s.Body.List, cw) // one abstract iteration
			seq = append(seq, body...)
		case *ast.RangeStmt:
			seq = append(seq, c.exprSeq(s.X, cw)...)
			body, _ := c.seqStmts(s.Body.List, cw)
			seq = append(seq, body...)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				seq = append(seq, c.exprSeq(r, cw)...)
			}
			return seq, true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.CONTINUE {
				return seq, true // ends this path within the enclosing context
			}
		case *ast.BlockStmt:
			inner, term := c.seqStmts(s.List, cw)
			seq = append(seq, inner...)
			if term {
				return seq, true
			}
		default:
			seq = append(seq, c.stmtSeq(s, cw)...)
			if isTerminalStmt(s) {
				return seq, true
			}
		}
	}
	return seq, false
}

// stmtSeq collects the collectives a non-branching statement issues.
func (c *seqChecker) stmtSeq(s ast.Stmt, cw *collectiveWalker) []string {
	var seq []string
	switch s := s.(type) {
	case *ast.ExprStmt:
		seq = c.exprSeq(s.X, cw)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			seq = append(seq, c.exprSeq(r, cw)...)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				seq = append(seq, c.callSeq(call, cw)...)
				return false
			}
			return true
		})
	case *ast.DeferStmt:
		seq = c.exprSeq(s.Call, cw)
	case *ast.GoStmt:
		seq = c.exprSeq(s.Call, cw)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Branch bodies contribute conservatively in source order; the
		// divergence rule stays focused on if statements, where the
		// driver code concentrates its rank tests.
		ast.Inspect(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				seq = append(seq, c.callSeq(call, cw)...)
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		seq = c.stmtSeq(s.Stmt, cw)
	}
	return seq
}

// exprSeq collects the collectives an expression issues, inlining
// resolved in-package callees and descending into function literals
// (their bodies execute in place for every wrapper the drivers use).
func (c *seqChecker) exprSeq(e ast.Expr, cw *collectiveWalker) []string {
	if e == nil {
		return nil
	}
	var seq []string
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			seq = append(seq, c.callSeq(n, cw)...)
			return false
		case *ast.FuncLit:
			inner, _ := c.seqStmts(n.Body.List, cw)
			seq = append(seq, inner...)
			return false
		}
		return true
	})
	return seq
}

func (c *seqChecker) callSeq(call *ast.CallExpr, cw *collectiveWalker) []string {
	var seq []string
	for _, a := range call.Args {
		seq = append(seq, c.exprSeq(a, cw)...)
	}
	name := calleeName(call)
	if _, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel && isCollectiveName(name) {
		return append(seq, name)
	}
	if fd := c.resolveSeq(call); fd != nil {
		return append(seq, c.fnSeq(fd)...)
	}
	return seq
}

func (c *seqChecker) resolveSeq(call *ast.CallExpr) *ast.FuncDecl {
	if len(c.stack) >= maxInlineDepth {
		return nil
	}
	w := &gwalker{ex: c.ex}
	fd := w.resolve(call)
	if fd == nil {
		return nil
	}
	for _, f := range c.stack {
		if f == fd {
			return nil
		}
	}
	return fd
}

// isTerminalStmt recognises statements that end the enclosing path.
func isTerminalStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch calleeName(call) {
	case "panic", "Fatal", "Fatalf", "Exit":
		return true
	}
	return false
}

func concat(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
