package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is graphlint's symbolic extractor. Driver code opts in
// through comment directives:
//
//	//amr:graph driver=<name> [phase=<label>] seq=<int>
//
// on a function declaration makes the function one pipeline stage of the
// named driver's per-timestep graph, and
//
//	//amr:region <state|stage> [match=f1,f2]
//
// on a dependency-key struct type declares how keys of that type name
// regions (see regionSpec). The extractor walks each anchored function
// abstractly — one pass per loop body, a single mutable environment —
// evaluating expressions into symval terms, and materialises task.Spawn
// calls, point-to-point sends/receives, collectives and WaitKeys sinks
// as graph nodes. In-package callees resolve through the type-check
// (with a unique-bare-name fallback, since the tolerant loader cannot
// always resolve method references) and are walked inline, so helpers
// like flushChecksum or reduceAndValidate contribute their events to
// the anchored phase that reaches them.

const maxInlineDepth = 8

// graphAnchor is one parsed //amr:graph directive.
type graphAnchor struct {
	driver string
	phase  string
	seq    int
	fd     *ast.FuncDecl
	pars   []parSpec
}

// parSpec is one parsed //amr:par directive: the declared multiplicity of
// a parallel (or deliberately serial) work region inside an anchored
// phase. label names the work — a spawned task label in the data-flow
// drivers, a parallel-for or master-serial loop in the others — and axis
// names the instance-count knob the cost model scales it by (blocks,
// segs, msgs, ...). Regions whose label matches no extracted node become
// synthetic parallel-region nodes of the phase, which is how the
// fork-join and MPI-only drivers (whose loops the extractor does not
// materialise) declare their width.
type parSpec struct {
	Phase  string `json:"phase"`
	Label  string `json:"label"`
	Axis   string `json:"axis"`
	Serial bool   `json:"serial,omitempty"`

	pos token.Pos
}

// extractor indexes one package's directives, types and functions.
type extractor struct {
	pass    *Pass
	structs map[string]*structInfo
	byObj   map[types.Object]*ast.FuncDecl
	byName  map[string]*ast.FuncDecl // nil value: name is ambiguous
	anchors []graphAnchor
}

func newExtractor(pass *Pass) *extractor {
	ex := &extractor{
		pass:    pass,
		structs: make(map[string]*structInfo),
		byObj:   make(map[types.Object]*ast.FuncDecl),
		byName:  make(map[string]*ast.FuncDecl),
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				ex.indexFunc(n)
			case *ast.GenDecl:
				if n.Tok == token.TYPE {
					for _, spec := range n.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						doc := ts.Doc
						if doc == nil && len(n.Specs) == 1 {
							doc = n.Doc
						}
						ex.indexType(ts, doc)
					}
				}
			}
			return true
		})
	}
	return ex
}

func (ex *extractor) indexFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	if obj := ex.pass.Pkg.Info.Defs[fd.Name]; obj != nil {
		ex.byObj[obj] = fd
	}
	if prev, ok := ex.byName[fd.Name.Name]; ok && prev != fd {
		ex.byName[fd.Name.Name] = nil // ambiguous
	} else {
		ex.byName[fd.Name.Name] = fd
	}
	pars := ex.parsePars(fd)
	if dir, ok := directiveLine(fd.Doc, "amr:graph"); ok {
		a := graphAnchor{phase: fd.Name.Name, seq: -1, fd: fd}
		for _, f := range strings.Fields(dir) {
			switch {
			case strings.HasPrefix(f, "driver="):
				a.driver = strings.TrimPrefix(f, "driver=")
			case strings.HasPrefix(f, "phase="):
				a.phase = strings.TrimPrefix(f, "phase=")
			case strings.HasPrefix(f, "seq="):
				n, err := strconv.Atoi(strings.TrimPrefix(f, "seq="))
				if err == nil {
					a.seq = n
				}
			}
		}
		if a.driver == "" || a.seq < 0 {
			ex.pass.Reportf(fd.Pos(), "malformed //amr:graph directive: need driver=<name> and seq=<int>")
			return
		}
		a.pars = pars
		ex.anchors = append(ex.anchors, a)
	} else if len(pars) > 0 {
		ex.pass.Reportf(fd.Pos(), "//amr:par requires an //amr:graph anchor on the same function")
	}
}

// parsePars reads every //amr:par directive of a function's doc comment.
func (ex *extractor) parsePars(fd *ast.FuncDecl) []parSpec {
	var pars []parSpec
	for _, dir := range directiveLines(fd.Doc, "amr:par") {
		p := parSpec{pos: fd.Pos()}
		for _, f := range strings.Fields(dir) {
			switch {
			case strings.HasPrefix(f, "label="):
				p.Label = strings.TrimPrefix(f, "label=")
			case strings.HasPrefix(f, "axis="):
				p.Axis = strings.TrimPrefix(f, "axis=")
			case f == "serial":
				p.Serial = true
			}
		}
		if p.Label == "" || p.Axis == "" {
			ex.pass.Reportf(fd.Pos(), "malformed //amr:par directive: need label=<name> and axis=<name>")
			continue
		}
		pars = append(pars, p)
	}
	return pars
}

func (ex *extractor) indexType(ts *ast.TypeSpec, doc *ast.CommentGroup) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	info := &structInfo{name: ts.Name.Name}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: promoted selectors render as TypeName.Field.
			if name := baseTypeName(field.Type); name != "" {
				info.fields = append(info.fields, structField{name: name, zero: "{}"})
			}
			continue
		}
		zero := zeroFor(field.Type)
		for _, name := range field.Names {
			info.fields = append(info.fields, structField{name: name.Name, zero: zero})
		}
	}
	if dir, ok := directiveLine(doc, "amr:region"); ok {
		spec := &regionSpec{}
		for _, f := range strings.Fields(dir) {
			switch {
			case f == "state" || f == "stage":
				spec.kind = f
			case strings.HasPrefix(f, "match="):
				for _, m := range strings.Split(strings.TrimPrefix(f, "match="), ",") {
					if m != "" {
						spec.match = append(spec.match, m)
					}
				}
			}
		}
		if spec.kind == "" {
			ex.pass.Reportf(ts.Pos(), "malformed //amr:region directive: need state or stage")
		} else {
			info.region = spec
		}
	}
	ex.structs[info.name] = info
}

// directiveLine finds `//<prefix> rest` in a comment group.
func directiveLine(doc *ast.CommentGroup, prefix string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// directiveLines finds every `//<prefix> rest` in a comment group, in
// source order; directives like //amr:par may repeat.
func directiveLines(doc *ast.CommentGroup, prefix string) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, prefix); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

// baseTypeName strips pointers and package qualifiers from a type
// expression, returning the bare type name.
func baseTypeName(t ast.Expr) string {
	switch t := ast.Unparen(t).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	case *ast.StarExpr:
		return baseTypeName(t.X)
	}
	return ""
}

// graphs extracts one Graph per driver anchored in the package,
// reporting directive conflicts through the pass.
func (ex *extractor) graphs() []*Graph {
	byDriver := make(map[string][]graphAnchor)
	var drivers []string
	for _, a := range ex.anchors {
		if _, ok := byDriver[a.driver]; !ok {
			drivers = append(drivers, a.driver)
		}
		byDriver[a.driver] = append(byDriver[a.driver], a)
	}
	sort.Strings(drivers)

	var out []*Graph
	for _, driver := range drivers {
		anchors := byDriver[driver]
		sort.SliceStable(anchors, func(i, j int) bool { return anchors[i].seq < anchors[j].seq })
		for i := 1; i < len(anchors); i++ {
			if anchors[i].seq == anchors[i-1].seq {
				ex.pass.Reportf(anchors[i].fd.Pos(),
					"duplicate //amr:graph seq=%d for driver %s (phases %s and %s): pipeline order is ambiguous",
					anchors[i].seq, driver, anchors[i-1].phase, anchors[i].phase)
			}
		}
		g := newGraph(driver)
		for _, a := range anchors {
			g.Phases = append(g.Phases, Phase{Name: a.phase, Seq: a.seq})
			for _, p := range a.pars {
				p.Phase = a.phase
				g.pars = append(g.pars, p)
			}
			w := &gwalker{
				ex: ex, g: g, phase: a.phase,
				env:   make(map[types.Object]symval),
				chain: &chainState{seen: make(map[string]bool)},
			}
			w.bindSignature(a.fd, nil, nil)
			w.walkBody(a.fd.Body.List)
		}
		g.finalize(ex.pass)
		out = append(out, g)
	}
	return out
}

// sendOps and recvOps are the point-to-point entry points across the
// mpi, tampi and comm layers; peer and tag are the last two arguments
// of every one of them.
var sendOps = map[string]bool{"Send": true, "SendOwned": true, "Isend": true, "IsendOwned": true}
var recvOps = map[string]bool{"Recv": true, "Irecv": true}

// builtin conversions and the slice builtins the walker interprets.
var passthroughConvs = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true, "byte": true, "rune": true,
	"string": true, "any": true,
}

// chainState threads standalone-node ordering and dedup through inline
// walks of one anchored function.
type chainState struct {
	last *Node           // previous standalone node, for seq chaining
	seen map[string]bool // standalone-node dedup within the phase
}

// gwalker walks one anchored function (and its inlined callees) with a
// single mutable environment, attaching events to the graph.
type gwalker struct {
	ex    *extractor
	g     *Graph
	phase string
	env   map[types.Object]symval
	cur   *Node // task node under construction, nil outside Spawn closures

	stack []*ast.FuncDecl // inline cycle guard
	chain *chainState
}

// bindSignature binds a function's receiver and parameters. With nil
// vals the parameters become free atoms named after themselves (anchored
// entry); with vals they bind to the caller's evaluated arguments
// (inline walk).
func (w *gwalker) bindSignature(fd *ast.FuncDecl, recvVal symval, vals []symval) {
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if recvVal == nil {
			recvVal = &symAtom{name: ""}
		}
		if obj := w.ex.pass.objOf(fd.Recv.List[0].Names[0]); obj != nil {
			w.env[obj] = recvVal
		}
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			idx++
			continue
		}
		for _, name := range names {
			var v symval
			if vals != nil && idx < len(vals) {
				v = vals[idx]
			} else {
				v = &symAtom{name: name.Name}
			}
			if obj := w.ex.pass.objOf(name); obj != nil && name.Name != "_" {
				w.env[obj] = v
			}
			idx++
		}
	}
}

func (w *gwalker) walkBody(list []ast.Stmt) {
	for _, s := range list {
		w.walkStmt(s)
	}
}

func (w *gwalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		vals := make([]symval, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = w.eval(r)
		}
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			return // op-assign: keep the old binding rather than grow terms
		}
		for i, l := range s.Lhs {
			v := vals[0]
			if len(s.Lhs) == len(s.Rhs) {
				v = vals[i]
			}
			w.assign(l, v)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			vals := make([]symval, len(vs.Values))
			for i, v := range vs.Values {
				vals[i] = w.eval(v)
			}
			for i, name := range vs.Names {
				var v symval
				switch {
				case i < len(vals):
					v = vals[i]
				case isSliceType(vs.Type):
					v = &symSlice{}
				default:
					v = &symAtom{name: name.Name}
				}
				w.assign(name, v)
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.eval(s.Cond)
		w.walkBody(s.Body.List)
		if s.Else != nil {
			w.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			if a, ok := s.Init.(*ast.AssignStmt); ok && a.Tok == token.DEFINE {
				for _, l := range a.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						w.assign(id, &symAtom{name: "$" + id.Name})
					}
				}
			} else {
				w.walkStmt(s.Init)
			}
		}
		if s.Cond != nil {
			w.eval(s.Cond)
		}
		if s.Post != nil {
			w.walkStmt(s.Post)
		}
		w.walkBody(s.Body.List)
	case *ast.RangeStmt:
		src := w.eval(s.X)
		if s.Key != nil {
			w.assign(s.Key, &symAtom{name: "$" + headName(s.X)})
		}
		if s.Value != nil {
			w.assign(s.Value, elemOf(src))
		}
		w.walkBody(s.Body.List)
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.eval(r)
		}
	case *ast.BlockStmt:
		w.walkBody(s.List)
	case *ast.DeferStmt:
		w.eval(s.Call)
	case *ast.GoStmt:
		w.eval(s.Call)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.eval(s.Tag)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.eval(e)
				}
				w.walkBody(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.walkBody(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm)
				}
				w.walkBody(cc.Body)
			}
		}
	case *ast.IncDecStmt:
		w.eval(s.X)
	case *ast.SendStmt:
		w.eval(s.Chan)
		w.eval(s.Value)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// assign binds one assignment target. Index assignment into a tracked
// slice joins the value into the slice's element abstraction.
func (w *gwalker) assign(lhs ast.Expr, v symval) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		if obj := w.ex.pass.objOf(lhs); obj != nil {
			w.env[obj] = v
		}
	case *ast.IndexExpr:
		id, ok := ast.Unparen(lhs.X).(*ast.Ident)
		if !ok {
			return
		}
		obj := w.ex.pass.objOf(id)
		if obj == nil {
			return
		}
		if sl, ok := w.env[obj].(*symSlice); ok {
			w.env[obj] = &symSlice{elem: joinVals(sl.elem, v)}
		}
	}
}

func isSliceType(t ast.Expr) bool {
	_, ok := ast.Unparen(t).(*ast.ArrayType)
	return ok
}

// headName names a range source for loop-variable atoms: the trailing
// identifier of the expression.
func headName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return headName(e.X)
	case *ast.CallExpr:
		return calleeName(e)
	}
	return "range"
}

// elemOf is the term for one element of a collection term.
func elemOf(v symval) symval {
	if sl, ok := v.(*symSlice); ok && sl.elem != nil {
		return sl.elem
	}
	return &symIndex{x: v}
}

// eval reduces an expression to its symbolic value, emitting graph
// events for any calls it contains.
func (w *gwalker) eval(e ast.Expr) symval {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		switch e.Name {
		case "true", "false", "nil":
			return &symLit{text: e.Name}
		}
		if obj := w.ex.pass.objOf(e); obj != nil {
			if v, ok := w.env[obj]; ok {
				return v
			}
		}
		return &symAtom{name: e.Name}
	case *ast.SelectorExpr:
		x := w.eval(e.X)
		if st, ok := x.(*symStruct); ok {
			if v, ok := st.fields[e.Sel.Name]; ok {
				return v
			}
			// A promoted field of an embedded struct: render it through
			// the type class so both protocol sides converge.
			return &symField{x: &symAtom{name: st.info.name}, name: e.Sel.Name}
		}
		return &symField{x: x, name: e.Sel.Name}
	case *ast.IndexExpr:
		w.eval(e.Index)
		return elemOf(w.eval(e.X))
	case *ast.SliceExpr:
		if e.Low != nil {
			w.eval(e.Low)
		}
		if e.High != nil {
			w.eval(e.High)
		}
		return w.eval(e.X)
	case *ast.StarExpr:
		return w.eval(e.X)
	case *ast.UnaryExpr:
		x := w.eval(e.X)
		if e.Op == token.AND || e.Op == token.MUL {
			return x
		}
		return &symBin{op: e.Op.String(), x: &symLit{}, y: x}
	case *ast.BinaryExpr:
		return &symBin{op: e.Op.String(), x: w.eval(e.X), y: w.eval(e.Y)}
	case *ast.BasicLit:
		return &symLit{text: e.Value}
	case *ast.CompositeLit:
		return w.evalComposite(e)
	case *ast.CallExpr:
		return w.walkCall(e)
	case *ast.TypeAssertExpr:
		return w.eval(e.X)
	case *ast.FuncLit:
		return &symLit{text: "func"}
	case nil:
		return &symLit{text: "?"}
	default:
		return &symLit{text: render(w.ex.pass.Fset, e)}
	}
}

func (w *gwalker) evalComposite(e *ast.CompositeLit) symval {
	if _, ok := ast.Unparen(e.Type).(*ast.ArrayType); ok || e.Type == nil {
		sl := &symSlice{}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			sl.elem = joinVals(sl.elem, w.eval(elt))
		}
		return sl
	}
	if info, ok := w.ex.structs[baseTypeName(e.Type)]; ok {
		st := &symStruct{info: info, fields: make(map[string]symval)}
		for i, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					st.fields[id.Name] = w.eval(kv.Value)
				}
				continue
			}
			if i < len(info.fields) {
				st.fields[info.fields[i].name] = w.eval(elt)
			}
		}
		return st
	}
	for _, elt := range e.Elts { // events inside an opaque literal still count
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			elt = kv.Value
		}
		w.eval(elt)
	}
	return &symLit{text: render(w.ex.pass.Fset, e)}
}

// walkCall classifies one call: graph events by name first, then
// in-package inlining, then the uninterpreted default.
func (w *gwalker) walkCall(call *ast.CallExpr) symval {
	name := calleeName(call)
	_, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)

	switch {
	case name == "Spawn" && isSel && len(call.Args) >= 2:
		if fl, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
			w.handleSpawn(call, fl)
			return &symLit{text: "task"}
		}
	case (sendOps[name] || recvOps[name]) && isSel && len(call.Args) >= 2:
		kind := "send"
		if recvOps[name] {
			kind = "recv"
		}
		vals := w.evalArgs(call)
		w.emitComm(kind, name, call, vals[len(vals)-2], vals[len(vals)-1])
		return &symCall{name: name, args: vals}
	case isCollectiveName(name) && isSel:
		vals := w.evalArgs(call)
		w.emitStandalone(name, "collective", call.Pos(), key("collective", name, renderArgs(vals)))
		return &symCall{name: name, args: vals}
	case name == "WaitKeys" && isSel:
		accs := w.waitAccesses(call)
		var renders []string
		for _, a := range accs {
			renders = append(renders, a.Region)
		}
		if n := w.emitStandalone("WaitKeys", "wait", call.Pos(), key("wait", "WaitKeys", strings.Join(renders, ","))); n != nil {
			n.Accesses = accs
		}
		return &symCall{name: name}
	case name == "make":
		if len(call.Args) > 0 && isSliceType(call.Args[0]) {
			return &symSlice{}
		}
		return &symCall{name: name}
	case name == "append" && len(call.Args) >= 1:
		base := w.eval(call.Args[0])
		sl, ok := base.(*symSlice)
		if !ok {
			sl = &symSlice{}
		}
		elem := sl.elem
		for _, a := range call.Args[1:] {
			v := w.eval(a)
			if call.Ellipsis.IsValid() && a == call.Args[len(call.Args)-1] {
				v = elemOf(v)
			}
			elem = joinVals(elem, v)
		}
		return &symSlice{elem: elem}
	case passthroughConvs[name] && len(call.Args) == 1 && !isSel:
		return w.eval(call.Args[0])
	}

	if fd := w.resolve(call); fd != nil && len(w.stack) < maxInlineDepth && !w.inStack(fd) {
		return w.inline(call, fd)
	}

	// Uninterpreted call: evaluate the arguments for events, and walk
	// closure arguments in the current environment — rec.Span-style
	// wrappers execute their body in place.
	var vals []symval
	for _, a := range call.Args {
		if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			w.walkBody(fl.Body.List)
			vals = append(vals, &symLit{text: "func"})
			continue
		}
		vals = append(vals, w.eval(a))
	}
	return &symCall{name: name, args: vals}
}

func (w *gwalker) evalArgs(call *ast.CallExpr) []symval {
	vals := make([]symval, len(call.Args))
	for i, a := range call.Args {
		vals[i] = w.eval(a)
	}
	return vals
}

func renderArgs(vals []symval) string {
	var parts []string
	for _, v := range vals {
		parts = append(parts, renderVal(v))
	}
	return strings.Join(parts, ",")
}

func key(parts ...string) string { return strings.Join(parts, "\x00") }

// resolve finds the in-package FuncDecl a call targets: through the
// type-check when it resolved the callee, by unique bare name otherwise
// (the tolerant loader cannot resolve method selectors on fields whose
// types failed to import).
func (w *gwalker) resolve(call *ast.CallExpr) *ast.FuncDecl {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if obj := w.ex.pass.objOf(id); obj != nil {
		if fd, ok := w.ex.byObj[obj]; ok {
			return fd
		}
		return nil // resolved to something that is not an in-package func
	}
	if fd, ok := w.ex.byName[id.Name]; ok {
		return fd // nil when ambiguous, which callers treat as unresolved
	}
	return nil
}

func (w *gwalker) inStack(fd *ast.FuncDecl) bool {
	for _, f := range w.stack {
		if f == fd {
			return true
		}
	}
	return false
}

// inline walks a resolved callee with the caller's evaluated arguments.
// Single-expression accessors reduce to their returned term; everything
// else is walked for events and summarised as an uninterpreted call.
func (w *gwalker) inline(call *ast.CallExpr, fd *ast.FuncDecl) symval {
	var recvVal symval
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fd.Recv != nil {
		recvVal = w.eval(sel.X)
	}
	vals := w.evalArgs(call)

	sub := &gwalker{
		ex: w.ex, g: w.g, phase: w.phase, cur: w.cur,
		env:   make(map[types.Object]symval),
		stack: append(w.stack, fd),
		chain: w.chain,
	}
	sub.bindSignature(fd, recvVal, vals)

	// A one-statement accessor (func f(...) T { return expr }) reduces
	// to its return value so key helpers stay transparent.
	if len(fd.Body.List) == 1 {
		if ret, ok := fd.Body.List[0].(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			return sub.eval(ret.Results[0])
		}
	}
	sub.walkBody(fd.Body.List)
	return &symCall{name: fd.Name.Name, args: vals}
}

// handleSpawn materialises one task node from a task.Spawn call.
func (w *gwalker) handleSpawn(call *ast.CallExpr, body *ast.FuncLit) {
	label := "task"
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			s = strings.TrimSpace(s)
			if s != "" {
				label = s
			}
		}
	}
	node := w.g.addNode(w.phase, label, "task", call.Pos())
	w.parseDeps(node, call.Args[2:])

	prev := w.cur
	w.cur = node
	w.walkBody(body.Body.List)
	w.cur = prev
}

// parseDeps interprets the access-list arguments of a Spawn call —
// task.In/Out/InOut key lists, task.Merge combinations — into region
// accesses, symbolically where deplint's collectAccesses gives up:
// spread slices contribute their element term with the Many flag.
func (w *gwalker) parseDeps(node *Node, args []ast.Expr) {
	for _, arg := range args {
		call, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			node.Unknown = true // a bare []Access value; keys unknown
			continue
		}
		name := calleeName(call)
		switch name {
		case "In", "Out", "InOut":
			mode := map[string]string{"In": "in", "Out": "out", "InOut": "inout"}[name]
			if call.Ellipsis.IsValid() {
				v := w.eval(call.Args[len(call.Args)-1])
				elem := elemOf(v)
				node.Accesses = append(node.Accesses, RegAccess{
					Mode: mode, Region: renderVal(elem), Many: true,
					val: elem, pos: call.Pos(),
				})
				continue
			}
			for _, keyExpr := range call.Args {
				v := w.eval(keyExpr)
				node.Accesses = append(node.Accesses, RegAccess{
					Mode: mode, Region: renderVal(v),
					val: v, pos: keyExpr.Pos(),
				})
			}
		case "Merge":
			w.parseDeps(node, call.Args)
		default:
			node.Unknown = true
		}
	}
}

// waitAccesses interprets WaitKeys arguments as read accesses.
func (w *gwalker) waitAccesses(call *ast.CallExpr) []RegAccess {
	var accs []RegAccess
	for i, arg := range call.Args {
		v := w.eval(arg)
		many := false
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			v = elemOf(v)
			many = true
		}
		accs = append(accs, RegAccess{
			Mode: "in", Region: renderVal(v), Many: many,
			val: v, pos: arg.Pos(),
		})
	}
	return accs
}

// emitComm records a point-to-point event: on the task under
// construction when inside a Spawn closure, as a standalone chained
// node otherwise.
func (w *gwalker) emitComm(kind, op string, call *ast.CallExpr, peer, tag symval) {
	ev := CommEvent{
		Kind: kind, Op: op,
		Peer: renderVal(peer), Tag: renderVal(tag),
		peerVal: peer, tagVal: tag, pos: call.Pos(),
	}
	if w.cur != nil {
		for _, have := range w.cur.Comm {
			if have.Kind == ev.Kind && have.Op == ev.Op && have.Peer == ev.Peer && have.Tag == ev.Tag {
				return
			}
		}
		w.cur.Comm = append(w.cur.Comm, ev)
		return
	}
	if n := w.emitStandalone(op, kind, call.Pos(), key(kind, op, ev.Peer, ev.Tag)); n != nil {
		n.Comm = append(n.Comm, ev)
	}
}

// emitStandalone adds one deduplicated non-task node and chains it to
// the previous standalone node of the phase in program order.
func (w *gwalker) emitStandalone(label, kind string, pos token.Pos, dedup string) *Node {
	full := w.phase + "\x00" + dedup
	if w.chain.seen[full] {
		return nil
	}
	w.chain.seen[full] = true
	n := w.g.addNode(w.phase, label, kind, pos)
	if w.chain.last != nil && w.chain.last.Phase == w.phase {
		w.g.Edges = append(w.g.Edges, Edge{From: w.chain.last.ID, To: n.ID, Kind: "seq"})
	}
	w.chain.last = n
	return n
}
