package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Each analyzer's testdata corpus marks every line that must produce a
// finding with a `// want "substring"` comment. The test asserts an exact
// bidirectional match: every want is hit by a finding whose message
// contains the substring, and every finding lands on a wanted line.

func TestAnalyzersOnCorpora(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			runCorpus(t, a)
		})
	}
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

func runCorpus(t *testing.T, a *Analyzer) {
	dir := filepath.Join("testdata", a.Name)
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{dir}, false)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	findings := Run(pkgs, []*Analyzer{a})

	// file:line -> expected message substrings
	wants := make(map[string][]string)
	wantCount := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				wants[key] = append(wants[key], m[1])
				wantCount++
			}
		}
	}
	if wantCount == 0 {
		t.Fatalf("corpus %s has no // want comments", dir)
	}

	matched := make(map[string][]bool) // parallel to wants
	for key, subs := range wants {
		matched[key] = make([]bool, len(subs))
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		subs, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		hit := false
		for i, sub := range subs {
			if !matched[key][i] && strings.Contains(f.Message, sub) {
				matched[key][i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("finding at %s does not match any want %q: %s", key, subs, f.Message)
		}
	}
	for key, subs := range wants {
		for i, sub := range subs {
			if !matched[key][i] {
				t.Errorf("missed expected finding at %s: want message containing %q", key, sub)
			}
		}
	}
}

// TestRepoIsClean locks in the acceptance criterion: the amrlint suite
// reports zero findings on the repository's own tree.
func TestRepoIsClean(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{"./..."}, false)
	if err != nil {
		t.Fatalf("load module tree: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded (%d): loader broken?", len(pkgs))
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("finding on the real tree: %s", f)
	}
}

// TestLoadSkipsTestdata ensures the module walk does not descend into the
// corpora (which seed violations on purpose).
func TestLoadSkipsTestdata(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{"./..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("walk descended into %s", p.Dir)
		}
	}
}
