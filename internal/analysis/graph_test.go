package analysis

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appGraphs extracts the driver graphs from the real application
// package, failing the test on extraction findings: the committed tree
// must satisfy every graph invariant.
func appGraphs(t *testing.T) []*Graph {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("..", "amr", "app")}, false)
	if err != nil {
		t.Fatal(err)
	}
	graphs, findings := ExtractGraphs(pkgs)
	for _, f := range findings {
		t.Errorf("graph finding on the real tree: %s", f)
	}
	return graphs
}

// TestGoldenGraphs locks the extracted task DAGs and communication
// topologies against the committed goldens. Refresh with:
//
//	go run ./cmd/amrgraph -update internal/analysis/testdata/golden ./internal/amr/app
func TestGoldenGraphs(t *testing.T) {
	graphs := appGraphs(t)
	want := []string{"dataflow", "exchange", "forkjoin", "mpionly"}
	var got []string
	for _, g := range graphs {
		got = append(got, g.Driver)
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("extracted drivers %v, want %v", got, want)
	}
	for _, g := range graphs {
		path := filepath.Join("testdata", "golden", g.Driver+".txt")
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (refresh with cmd/amrgraph -update): %v", err)
		}
		if text := g.Text(); text != string(golden) {
			t.Errorf("driver %s diverges from %s:\n--- got ---\n%s--- want ---\n%s",
				g.Driver, path, text, golden)
		}
	}
}

// TestGraphStructure asserts the load-bearing dataflow edges the paper's
// task-graph figure promises, independent of golden churn.
func TestGraphStructure(t *testing.T) {
	graphs := appGraphs(t)
	byDriver := make(map[string]*Graph)
	for _, g := range graphs {
		byDriver[g.Driver] = g
	}
	df := byDriver["dataflow"]
	if df == nil {
		t.Fatal("no dataflow graph extracted")
	}
	edges := make(map[string]string)
	for _, e := range df.Edges {
		edges[e.From+" -> "+e.To] = e.Kind
	}
	wantFlow := []string{
		"communicate/pack -> communicate/send",
		"communicate/recv -> communicate/unpack",
		"communicate/unpack -> stencil/stencil",
		"stencil/stencil -> checksum/cksum-local",
	}
	for _, w := range wantFlow {
		if edges[w] != "flow" {
			t.Errorf("edge %q: got kind %q, want flow", w, edges[w])
		}
	}
	for _, g := range graphs {
		for _, n := range g.Nodes {
			if n.Unknown {
				t.Errorf("driver %s node %s has unknown dependencies", g.Driver, n.ID)
			}
		}
	}
}

// TestGraphEmitters smoke-tests the DOT and JSON renderings.
func TestGraphEmitters(t *testing.T) {
	graphs := appGraphs(t)
	for _, g := range graphs {
		var decoded Graph
		if err := json.Unmarshal([]byte(g.JSON()), &decoded); err != nil {
			t.Fatalf("driver %s JSON does not round-trip: %v", g.Driver, err)
		}
		if decoded.Driver != g.Driver || len(decoded.Nodes) != len(g.Nodes) || len(decoded.Edges) != len(g.Edges) {
			t.Errorf("driver %s JSON dropped content", g.Driver)
		}
		dot := g.DOT()
		if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "subgraph cluster_0") {
			t.Errorf("driver %s DOT lacks digraph/cluster structure:\n%s", g.Driver, dot)
		}
		for _, n := range g.Nodes {
			if !strings.Contains(dot, "\""+n.ID+"\"") {
				t.Errorf("driver %s DOT misses node %s", g.Driver, n.ID)
			}
		}
	}
}
