package analysis

// PerfLint is the needless-serialization layer of the suite: over the
// same extracted driver graphs graphlint verifies, it flags constructs
// that narrow the task DAG without buying correctness — dependence
// structure whose removal would widen the graph. Extraction and
// graph-invariant diagnostics stay graphlint's; perflint reports only
// its own rules:
//
//   - perf-needless-barrier: a dependency wait in a task-bearing graph
//     that does not feed (or drain) a collective. Waits exist to funnel
//     task results into a rank-wide operation; one with no adjacent
//     collective is a pure barrier, serializing every predecessor
//     against every successor.
//   - perf-serial-funnel: a single-instance task wedged between
//     parallel-annotated stages on both sides. All upstream instances
//     must finish before it runs and all downstream instances wait for
//     it, collapsing the graph to width 1 at that point.
//   - perf-wide-key: a task-to-task dependence through a stage region
//     whose //amr:region directive has no match fields. Every key of
//     such a class conflicts with every other, so one logical
//     dependence serializes all instance pairs — almost always an
//     over-wide key that needs match= narrowed to its identifying
//     fields.
var PerfLint = &Analyzer{
	Name: "perflint",
	Doc: "needless-serialization findings over //amr:graph extracted " +
		"driver graphs: barriers without collectives, serial funnels " +
		"between parallel stages, and over-wide stage-region keys",
	run: runPerfLint,
}

func runPerfLint(p *Pass) {
	// Extract through a throwaway pass: malformed directives and graph
	// invariants are graphlint findings, not perflint's.
	var discard []Finding
	sub := &Pass{Fset: p.Fset, Pkg: p.Pkg, analyzer: p.analyzer, findings: &discard}
	ex := newExtractor(sub)
	if len(ex.anchors) == 0 {
		return
	}
	for _, g := range ex.graphs() {
		lintGraph(p, ex, g)
	}
}

func lintGraph(p *Pass, ex *extractor, g *Graph) {
	if !hasTaskNodes(g) {
		// Fork-join and MPI-only drivers serialize by construction;
		// perflint measures them (amrperf) but does not lint them.
		return
	}
	nodeByID := make(map[string]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		nodeByID[n.ID] = n
	}
	// wide marks nodes whose label carries a parallel //amr:par axis.
	wide := make(map[string]bool)
	annotated := make(map[string]bool)
	for _, ps := range g.pars {
		annotated[ps.Phase+"\x00"+ps.Label] = true
		if !ps.Serial {
			wide[ps.Phase+"\x00"+ps.Label] = true
		}
	}

	checkNeedlessBarriers(p, g, nodeByID)
	checkSerialFunnels(p, g, nodeByID, wide, annotated)
	checkWideKeys(p, ex, g, nodeByID)
}

// checkNeedlessBarriers flags wait nodes with no collective adjacent in
// program order. A wait followed by (or finishing off) a collective is
// the graph's reduction funnel; any other wait is a barrier whose
// predecessors and successors could overlap if the dependence were
// expressed per instance instead.
func checkNeedlessBarriers(p *Pass, g *Graph, nodeByID map[string]*Node) {
	for _, n := range g.Nodes {
		if n.Kind != "wait" {
			continue
		}
		funnels := false
		for _, e := range g.Edges {
			if e.Kind != "seq" {
				continue
			}
			var peer *Node
			switch n.ID {
			case e.From:
				peer = nodeByID[e.To]
			case e.To:
				peer = nodeByID[e.From]
			}
			if peer != nil && peer.Kind == "collective" {
				funnels = true
				break
			}
		}
		if !funnels {
			p.ReportRulef(n.pos, "perf-needless-barrier", "error",
				"wait %s in phase %s reaches no collective: a pure barrier that serializes its predecessors against its successors",
				n.Label, n.Phase)
		}
	}
}

// checkSerialFunnels flags single-instance tasks with parallel stages on
// both sides. The dependence edges are real; the finding is that the
// middle task runs once, so the whole graph narrows to width 1 there —
// usually a reduction that wants an //amr:par axis (or a wait +
// collective) instead.
func checkSerialFunnels(p *Pass, g *Graph, nodeByID map[string]*Node, wide, annotated map[string]bool) {
	depIn := make(map[string]bool)  // node <- wide predecessor
	depOut := make(map[string]bool) // node -> wide successor
	for _, e := range g.Edges {
		if e.Kind == "seq" {
			continue
		}
		from, to := nodeByID[e.From], nodeByID[e.To]
		if from == nil || to == nil {
			continue
		}
		if from.Kind == "task" && wide[from.Phase+"\x00"+from.Label] {
			depIn[e.To] = true
		}
		if to.Kind == "task" && wide[to.Phase+"\x00"+to.Label] {
			depOut[e.From] = true
		}
	}
	for _, n := range g.Nodes {
		if n.Kind != "task" || wide[n.Phase+"\x00"+n.Label] || annotated[n.Phase+"\x00"+n.Label] {
			continue
		}
		if depIn[n.ID] && depOut[n.ID] {
			p.ReportRulef(n.pos, "perf-serial-funnel", "warning",
				"single-instance task %s in phase %s funnels parallel stages on both sides: the graph narrows to width 1 here",
				n.Label, n.Phase)
		}
	}
}

// checkWideKeys flags task-to-task dependences through matchless stage
// regions. With no match= fields every key of the class is the same
// region, so any two tasks touching the class serialize pairwise.
func checkWideKeys(p *Pass, ex *extractor, g *Graph, nodeByID map[string]*Node) {
	reported := make(map[string]bool) // region class -> reported once per graph
	for _, e := range g.Edges {
		if e.Kind == "seq" || e.Region == "" || reported[e.Region] {
			continue
		}
		info := ex.structs[e.Region]
		if info == nil || info.region == nil || info.region.kind != "stage" || len(info.region.match) > 0 {
			continue
		}
		from, to := nodeByID[e.From], nodeByID[e.To]
		if from == nil || to == nil || from.Kind != "task" || to.Kind != "task" {
			continue
		}
		reported[e.Region] = true
		p.ReportRulef(to.pos, "perf-wide-key", "error",
			"%s dependence %s -> %s through matchless stage region %s: every key of the class conflicts, serializing all instance pairs; narrow it with match=",
			e.Kind, from.Label, to.Label, e.Region)
	}
}
