package analysis

import (
	"go/token"
	"testing"
)

// TestConcLintRuleIDs locks in the stable finding ids and severities of
// every conclint rule: the seeded corpus must trip all seven, each under
// its documented conclint/<rule> id, with conc-waiver-stale as the only
// warning. Dashboards and waivers key on these ids.
func TestConcLintRuleIDs(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{"testdata/conclint"}, false)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, []*Analyzer{ConcLint})

	wantSeverity := map[string]string{
		"conclint/" + ruleLockCycle:    "error",
		"conclint/" + ruleBlockLock:    "error",
		"conclint/" + ruleLockLeak:     "error",
		"conclint/" + ruleChanClose:    "error",
		"conclint/" + ruleGoLeak:       "error",
		"conclint/" + ruleWaiverReason: "error",
		"conclint/" + ruleWaiverStale:  "warning",
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		sev, ok := wantSeverity[f.ID()]
		if !ok {
			t.Errorf("finding with unknown id %q: %s", f.ID(), f)
			continue
		}
		if f.Severity != sev {
			t.Errorf("id %s has severity %q, want %q", f.ID(), f.Severity, sev)
		}
		seen[f.ID()] = true
	}
	for id := range wantSeverity {
		if !seen[id] {
			t.Errorf("rule %s produced no finding on the seeded corpus", id)
		}
	}
}

// TestConcLintRuntimePackagesClean pins the tentpole acceptance criterion
// directly: the concurrency substrate packages are clean under conclint
// (real findings fixed, intentional designs waived with reasons, and no
// stale waivers — a stale waiver is itself a finding).
func TestConcLintRuntimePackagesClean(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{
		"../mpi", "../task", "../tampi", "../membuf", "../simnet", "../driver",
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 6 {
		t.Fatalf("loaded %d packages, want 6", len(pkgs))
	}
	for _, f := range Run(pkgs, []*Analyzer{ConcLint}) {
		t.Errorf("conclint finding in runtime package: %s", f)
	}
}
