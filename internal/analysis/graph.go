package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"strings"
)

// This file holds graphlint's graph model: the per-driver task DAG and
// rank-symbolic communication topology the extractor materialises, the
// dataflow-edge construction over it, and the invariant checks the
// ISSUE names — acyclicity, read-before-write, dead writes, send/recv
// mirror symmetry. Emission (Text for goldens, DOT, JSON) lives here
// too so cmd/amrgraph stays a thin wrapper.

// RegAccess is one declared region access of a node.
type RegAccess struct {
	Mode   string `json:"mode"` // "in", "out" or "inout"
	Region string `json:"region"`
	Many   bool   `json:"many,omitempty"` // a spread slice of keys: one term stands for all

	val symval
	pos token.Pos
}

// CommEvent is one point-to-point operation a node performs, with its
// peer and tag as rank-symbolic terms.
type CommEvent struct {
	Kind string `json:"kind"` // "send" or "recv"
	Op   string `json:"op"`
	Peer string `json:"peer"`
	Tag  string `json:"tag"`

	peerVal, tagVal symval
	pos             token.Pos
}

// Node is one vertex of a driver graph: a spawned task, a standalone
// communication operation, a collective, or a dependency wait.
type Node struct {
	ID       string      `json:"id"`
	Phase    string      `json:"phase"`
	Kind     string      `json:"kind"` // "task", "send", "recv", "collective", "wait"
	Label    string      `json:"label"`
	Accesses []RegAccess `json:"accesses,omitempty"`
	Comm     []CommEvent `json:"comm,omitempty"`
	Unknown  bool        `json:"unknown,omitempty"` // has dependencies the source does not spell out

	pos token.Pos
}

// Edge is one dependence between nodes. Kind "flow" is a true
// read-after-write, "anti" a write-after-read, "waw" a write-after-write
// and "seq" the program order of non-task operations within a phase.
type Edge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Kind   string `json:"kind"`
	Region string `json:"region,omitempty"`
}

// Phase is one anchored pipeline stage of a driver.
type Phase struct {
	Name string `json:"name"`
	Seq  int    `json:"seq"`
}

// Graph is the extracted per-timestep task DAG and communication
// topology of one driver.
type Graph struct {
	Driver string  `json:"driver"`
	Phases []Phase `json:"phases"`
	Nodes  []*Node `json:"nodes"`
	Edges  []Edge  `json:"edges"`

	ids  map[string]int // id -> count of labels used, for disambiguation
	idx  map[string]int // id -> node index
	pars []parSpec      // //amr:par multiplicity declarations, in anchor order
}

// Pars returns the //amr:par multiplicity declarations of the graph's
// anchors, in pipeline order. The cost model consumes them; they are
// deliberately not part of the graph's golden Text form.
func (g *Graph) Pars() []parSpec { return g.pars }

func newGraph(driver string) *Graph {
	return &Graph{Driver: driver, ids: make(map[string]int), idx: make(map[string]int)}
}

// addNode appends a node, disambiguating repeated phase/label ids.
func (g *Graph) addNode(phase, label, kind string, pos token.Pos) *Node {
	id := phase + "/" + label
	g.ids[id]++
	if n := g.ids[id]; n > 1 {
		id = fmt.Sprintf("%s#%d", id, n)
	}
	node := &Node{ID: id, Phase: phase, Kind: kind, Label: label, pos: pos}
	g.idx[id] = len(g.Nodes)
	g.Nodes = append(g.Nodes, node)
	return node
}

// finalize derives the dependence edges from the nodes' region accesses
// and verifies the graph invariants, reporting violations through pass.
func (g *Graph) finalize(pass *Pass) {
	g.buildEdges(pass)
	g.checkSymmetry(pass)
	g.checkAcyclic(pass)
}

type writeRec struct {
	node     *Node
	val      symval
	mode     string
	pos      token.Pos
	seq      int // global event order
	consumed bool
}

type readRec struct {
	node *Node
	val  symval
	seq  int
}

// buildEdges replays the nodes in extraction order against a write/read
// history, exactly like the task runtime resolves dependencies at spawn
// time: a read depends on the latest matching write (flow), a write
// follows the readers since the last matching write (anti) or that
// write itself (waw). Stage regions read before any write or written
// but never read are the dropped-edge defects graphlint exists to
// catch; state regions persist across timesteps and carry no such
// obligations.
func (g *Graph) buildEdges(pass *Pass) {
	// A node with dependencies the source does not spell out (accs...)
	// makes producer/consumer obligations unverifiable.
	verifiable := true
	for _, n := range g.Nodes {
		if n.Unknown {
			verifiable = false
		}
	}

	var writes []*writeRec
	var reads []readRec
	seq := 0
	edgeSeen := make(map[string]bool)
	for _, e := range g.Edges { // extraction already added the seq chain
		edgeSeen[e.From+"\x00"+e.To] = true
	}
	addEdge := func(from, to *Node, kind string, region string) {
		if from == to {
			return
		}
		key := from.ID + "\x00" + to.ID
		if edgeSeen[key] {
			return
		}
		edgeSeen[key] = true
		g.Edges = append(g.Edges, Edge{From: from.ID, To: to.ID, Kind: kind, Region: region})
	}
	lastWrite := func(val symval, not *Node) *writeRec {
		for i := len(writes) - 1; i >= 0; i-- {
			if writes[i].node != not && regionsMatch(writes[i].val, val) {
				return writes[i]
			}
		}
		return nil
	}

	for _, n := range g.Nodes {
		// Reads first: an inout access observes the previous producer
		// before overwriting the region.
		for i := range n.Accesses {
			acc := &n.Accesses[i]
			if acc.Mode == "out" || acc.val == nil {
				continue
			}
			if w := lastWrite(acc.val, n); w != nil {
				addEdge(w.node, n, "flow", regionLabel(acc.val))
				w.consumed = true
				// Earlier writes of the same region were already chained
				// to this one through waw/anti edges; reading the head of
				// the chain consumes them all.
				for _, pw := range writes {
					if pw.node != n && regionsMatch(pw.val, acc.val) {
						pw.consumed = true
					}
				}
			} else if verifiable && regionKind(acc.val) == "stage" {
				pass.Reportf(acc.pos,
					"task %s reads stage region %s that no earlier task writes (read-before-write: a dependency edge is missing or the producer was dropped)",
					n.Label, renderVal(acc.val))
			}
			reads = append(reads, readRec{node: n, val: acc.val, seq: seq})
			seq++
		}
		for i := range n.Accesses {
			acc := &n.Accesses[i]
			if acc.Mode == "in" || acc.val == nil {
				continue
			}
			w := lastWrite(acc.val, n)
			anti := false
			since := -1
			if w != nil {
				since = w.seq
			}
			for _, r := range reads {
				if r.node != n && r.seq > since && regionsMatch(r.val, acc.val) {
					addEdge(r.node, n, "anti", regionLabel(acc.val))
					anti = true
				}
			}
			if !anti && w != nil {
				addEdge(w.node, n, "waw", regionLabel(acc.val))
			}
			writes = append(writes, &writeRec{node: n, val: acc.val, mode: acc.Mode, pos: acc.pos, seq: seq})
			seq++
		}
	}

	if verifiable {
		for _, w := range writes {
			if !w.consumed && w.mode == "out" && regionKind(w.val) == "stage" {
				pass.Reportf(w.pos,
					"task %s writes stage region %s that no later task reads (dead write: the consumer edge was dropped or the out declaration is stale)",
					w.node.Label, renderVal(w.val))
			}
		}
	}
}

// checkSymmetry verifies ghost-exchange peer-and-tag symmetry: every
// send's (peer, tag) term must equal some receive's under the
// send/recv mirror relation, and vice versa. A one-sided operation is
// the static shadow of an unmatched message — a hang at runtime.
func (g *Graph) checkSymmetry(pass *Pass) {
	var sends, recvs []*CommEvent
	for _, n := range g.Nodes {
		for i := range n.Comm {
			ev := &n.Comm[i]
			switch ev.Kind {
			case "send":
				sends = append(sends, ev)
			case "recv":
				recvs = append(recvs, ev)
			}
		}
	}
	if len(sends) == 0 && len(recvs) == 0 {
		return
	}
	matches := func(a *CommEvent, others []*CommEvent) bool {
		peer, tag := renderVal(mirror(a.peerVal)), renderVal(mirror(a.tagVal))
		for _, o := range others {
			if o.Peer == peer && o.Tag == tag {
				return true
			}
		}
		return false
	}
	for _, s := range sends {
		if !matches(s, recvs) {
			pass.Reportf(s.pos,
				"%s to peer %s tag %s has no matching receive under the send/recv mirror relation (peer-and-tag symmetry broken: unmatched message)",
				s.Op, s.Peer, s.Tag)
		}
	}
	for _, r := range recvs {
		if !matches(r, sends) {
			pass.Reportf(r.pos,
				"%s from peer %s tag %s has no matching send under the send/recv mirror relation (peer-and-tag symmetry broken: unmatched message)",
				r.Op, r.Peer, r.Tag)
		}
	}
}

// checkAcyclic guards DAG-ness. Edges are forward in extraction order by
// construction, so a cycle means the builder itself regressed — but the
// invariant is cheap to state and the goldens rest on it.
func (g *Graph) checkAcyclic(pass *Pass) {
	adj := make(map[string][]string)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(id string) bool
	visit = func(id string) bool {
		switch color[id] {
		case grey:
			return false
		case black:
			return true
		}
		color[id] = grey
		for _, next := range adj[id] {
			if !visit(next) {
				return false
			}
		}
		color[id] = black
		return true
	}
	for _, n := range g.Nodes {
		if !visit(n.ID) {
			pass.Reportf(n.pos, "driver %s task graph has a dependency cycle through %s", g.Driver, n.ID)
			return
		}
	}
}

// Text renders the canonical golden form: phases in pipeline order,
// nodes in extraction order, then the edge list. It carries no file
// positions, so unrelated edits never churn the goldens.
func (g *Graph) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "driver %s\n", g.Driver)
	byPhase := make(map[string][]*Node)
	for _, n := range g.Nodes {
		byPhase[n.Phase] = append(byPhase[n.Phase], n)
	}
	for _, ph := range g.Phases {
		fmt.Fprintf(&b, "phase %s seq=%d\n", ph.Name, ph.Seq)
		for _, n := range byPhase[ph.Name] {
			fmt.Fprintf(&b, "  %s %s\n", n.Kind, n.ID)
			if n.Unknown {
				fmt.Fprintf(&b, "    deps unknown\n")
			}
			for _, a := range n.Accesses {
				many := ""
				if a.Many {
					many = " many"
				}
				fmt.Fprintf(&b, "    %-5s %s%s\n", a.Mode, a.Region, many)
			}
			for _, c := range n.Comm {
				fmt.Fprintf(&b, "    %s %s peer=%s tag=%s\n", c.Kind, c.Op, c.Peer, c.Tag)
			}
		}
	}
	fmt.Fprintf(&b, "edges\n")
	for _, e := range g.Edges {
		region := ""
		if e.Region != "" {
			region = " " + e.Region
		}
		fmt.Fprintf(&b, "  %s -> %s %s%s\n", e.From, e.To, e.Kind, region)
	}
	return b.String()
}

// DOT renders the graph for graphviz, one cluster per phase.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Driver)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	byPhase := make(map[string][]*Node)
	for _, n := range g.Nodes {
		byPhase[n.Phase] = append(byPhase[n.Phase], n)
	}
	for pi, ph := range g.Phases {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", pi, ph.Name)
		for _, n := range byPhase[ph.Name] {
			shape := ""
			switch n.Kind {
			case "collective":
				shape = ", shape=hexagon"
			case "send", "recv":
				shape = ", shape=cds"
			case "wait":
				shape = ", shape=octagon"
			}
			fmt.Fprintf(&b, "    %q [label=%q%s];\n", n.ID, n.Label, shape)
		}
		b.WriteString("  }\n")
	}
	for _, e := range g.Edges {
		attr := ""
		switch e.Kind {
		case "anti":
			attr = ", style=dashed"
		case "waw":
			attr = ", style=dotted"
		case "seq":
			attr = ", color=gray"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", e.From, e.To, e.Region, attr)
	}
	b.WriteString("}\n")
	return b.String()
}

// JSON renders the graph as one indented JSON object.
func (g *Graph) JSON() string {
	out, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return "{}" // the model contains no unmarshalable values
	}
	return string(out) + "\n"
}
