package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CollectiveLint flags collective operations (Barrier, Bcast, Allreduce,
// Allgatherv, ...) issued inside rank-conditional control flow. A
// collective must be entered by every rank of the communicator, the same
// number of times; guarding one behind `if rank == 0` is the classic
// collective-mismatch deadlock, and issuing one inside a loop whose trip
// count depends on the rank (`for i := 0; i < rank; i++`, `range
// owned(rank)`) desynchronises the ranks just as surely. Rank-dependence
// is tracked through Rank() calls, rank fields, and local variables
// assigned from either.
var CollectiveLint = &Analyzer{
	Name: "collectivelint",
	Doc: "collective operations must not be nested inside rank-conditional " +
		"branches or rank-counted loops",
	run: runCollectiveLint,
}

// condReason classifies why control flow is rank-conditional: nested in a
// rank-dependent branch, or inside a loop whose trip count depends on the
// rank. The outermost reason wins — it names the construct that first
// desynchronises the ranks.
type condReason int

const (
	condNone condReason = iota
	condBranch
	condLoop
)

// escalate keeps an outer reason or establishes a new one.
func escalate(outer condReason, dep bool, kind condReason) condReason {
	if outer != condNone {
		return outer
	}
	if dep {
		return kind
	}
	return condNone
}

// collectivePrefixes match the exported collective families; typed
// variants (AllreduceFloat64, AllgathervInt, ...) share the prefix. The
// lowercase point-to-point helpers collectives are built from are
// deliberately not matched: inside the implementation, rank-conditional
// sends are the algorithm.
var collectivePrefixes = []string{
	"Bcast", "Allreduce", "Allgather", "Alltoall", "Reduce", "Gather", "Scatter",
}

func isCollectiveName(name string) bool {
	if name == "Barrier" {
		return true
	}
	for _, p := range collectivePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runCollectiveLint(p *Pass) {
	funcBodies(p.Pkg, func(fd *ast.FuncDecl) {
		c := &collectiveWalker{pass: p, rankObjs: make(map[types.Object]bool)}
		c.prescan(fd.Body)
		c.walkBody(fd.Body)
	})
}

type collectiveWalker struct {
	pass     *Pass
	rankObjs map[types.Object]bool
}

// prescan records local variables assigned from rank-dependent
// expressions, so `rank := c.Rank()` taints later `if rank == 0`.
func (c *collectiveWalker) prescan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				// Parallel assignment pairs LHS and RHS by index; a
				// single multi-value RHS taints every LHS.
				if !c.rankDependent(r) {
					continue
				}
				if len(n.Lhs) == len(n.Rhs) {
					c.taint(n.Lhs[i])
				} else {
					for _, l := range n.Lhs {
						c.taint(l)
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if c.rankDependent(v) && i < len(n.Names) {
					c.taint(n.Names[i])
				}
			}
		}
		return true
	})
}

func (c *collectiveWalker) taint(e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
		if obj := c.pass.objOf(id); obj != nil {
			c.rankObjs[obj] = true
		}
	}
}

// rankDependent reports whether e's value depends on the caller's rank:
// a Rank() call, a rank/Rank field or variable, or a tainted local.
func (c *collectiveWalker) rankDependent(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Rank" {
				found = true
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "rank" || n.Sel.Name == "Rank" {
				found = true
			}
		case *ast.Ident:
			if n.Name == "rank" {
				found = true
			} else if obj := c.pass.objOf(n); obj != nil && c.rankObjs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkBody walks statements with the rank-conditional reason in effect.
func (c *collectiveWalker) walkBody(body *ast.BlockStmt) {
	c.walkStmts(body.List, condNone)
}

func (c *collectiveWalker) walkStmts(list []ast.Stmt, inCond condReason) {
	for _, s := range list {
		c.walkStmt(s, inCond)
	}
}

func (c *collectiveWalker) walkStmt(s ast.Stmt, inCond condReason) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, inCond)
		}
		c.scanExpr(s.Cond, inCond)
		branchCond := escalate(inCond, c.rankDependent(s.Cond), condBranch)
		c.walkStmts(s.Body.List, branchCond)
		if s.Else != nil {
			c.walkStmt(s.Else, branchCond)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, inCond)
		}
		branchCond := inCond
		if s.Tag != nil {
			c.scanExpr(s.Tag, inCond)
			branchCond = escalate(branchCond, c.rankDependent(s.Tag), condBranch)
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			caseCond := branchCond
			for _, e := range cc.List {
				c.scanExpr(e, inCond)
				caseCond = escalate(caseCond, c.rankDependent(e), condBranch)
			}
			c.walkStmts(cc.Body, caseCond)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, inCond)
		}
		for _, cl := range s.Body.List {
			c.walkStmts(cl.(*ast.CaseClause).Body, inCond)
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm != nil {
				c.walkStmt(cc.Comm, inCond)
			}
			c.walkStmts(cc.Body, inCond)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, inCond)
		}
		bodyCond := inCond
		if s.Cond != nil {
			c.scanExpr(s.Cond, inCond)
			bodyCond = escalate(bodyCond, c.rankDependent(s.Cond), condLoop)
		}
		if s.Post != nil {
			c.walkStmt(s.Post, bodyCond)
		}
		c.walkStmts(s.Body.List, bodyCond)
	case *ast.RangeStmt:
		c.scanExpr(s.X, inCond)
		// Ranging over a rank-dependent collection runs the body a
		// rank-dependent number of times.
		c.walkStmts(s.Body.List, escalate(inCond, c.rankDependent(s.X), condLoop))
	case *ast.BlockStmt:
		c.walkStmts(s.List, inCond)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, inCond)
	case *ast.ExprStmt:
		c.scanExpr(s.X, inCond)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanExpr(e, inCond)
		}
		for _, e := range s.Lhs {
			c.scanExpr(e, inCond)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanExpr(e, inCond)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.scanExpr(e, inCond)
				return false
			}
			return true
		})
	case *ast.GoStmt:
		c.scanExpr(s.Call, inCond)
	case *ast.DeferStmt:
		c.scanExpr(s.Call, inCond)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, inCond)
		c.scanExpr(s.Value, inCond)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, inCond)
	}
}

// scanExpr reports collective calls in e when inside rank-conditional
// flow, and analyzes function literals as fresh bodies: a closure's
// execution context is not the branch it is defined in.
func (c *collectiveWalker) scanExpr(e ast.Expr, inCond condReason) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested := &collectiveWalker{pass: c.pass, rankObjs: c.rankObjs}
			nested.prescan(n.Body)
			nested.walkBody(n.Body)
			return false
		case *ast.CallExpr:
			if inCond == condNone {
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isCollectiveName(sel.Sel.Name) {
				c.report(n, sel.Sel.Name, inCond)
			}
		}
		return true
	})
}

func (c *collectiveWalker) report(call *ast.CallExpr, name string, reason condReason) {
	if reason == condLoop {
		c.pass.Reportf(call.Pos(),
			"collective %s runs inside a loop that executes a rank-dependent number of times: ranks issue different collective counts (loop-count-mismatch deadlock)",
			name)
		return
	}
	c.pass.Reportf(call.Pos(),
		"collective %s is nested in a rank-conditional branch: every rank must reach a collective or none may (collective-mismatch deadlock)",
		name)
}
