package analysis

// determlint is the whole-program determinism and reproducibility
// verifier: every oracle in this repo — cross-variant bit-identical
// checksums, golden DAGs, byte-identical seeded fault logs — silently
// assumes the code is deterministic, and determlint makes that property
// statically checkable. It runs a taint-flow analysis from
// nondeterminism sources to determinism sinks:
//
// Sources:
//   - map (and sync.Map) iteration order
//   - unseeded math/rand package-level calls
//   - time.Now wall-clock reads
//   - multi-case select choice
//   - Waitany / WaitSet completion order
//
// Sinks:
//   - checksum and oracle accumulation (CombineSums, Oracle.Accept,
//     anything with "checksum" in its name)
//   - event/audit/log byte output (Fprintf and friends, Write*,
//     report/Report, trace Record)
//   - message tag/sequence assignment (stores to tag/seq fields)
//   - every parameter of, and everything computed inside, a function
//     annotated //amr:det
//
// Rules (stable ids, waivable with //amr:nolint det-rule -- reason):
//
//	det-map-order      sink bytes or sink-bound sequences produced under
//	                   map iteration order
//	det-float-order    float += in a loop with unpinned iteration order
//	                   (map range, unsorted key slice, Waitany loop) —
//	                   float addition is not reassociation-safe
//	det-unseeded-rand  package-level math/rand call (randomness must come
//	                   from an explicitly seeded stream, e.g. rand.NewPCG)
//	det-time-sink      wall-clock value reaching a non-timing sink
//	det-select-sink    value selected by multi-case select or completion
//	                   order reaching a sink
//	det-waiver-reason  //amr:nolint det-* waiver without a "-- reason"
//	det-waiver-stale   waiver matching no finding (warning)
//
// Order-taint kills: sorting pins an iteration order, so sort.*,
// slices.Sort* and helpers whose summary says they sort a parameter
// (sortRoutes-style) clear the taint; values drawn from a seeded
// rand.New(rand.NewPCG(...)) stream are never sources. Trace-span
// timestamps are exempt from det-time-sink by design: a Record sink's
// purpose is wall-clock telemetry and the rendered timelines are
// display-only (the lattice drops time taint at timing sinks instead of
// demanding a waiver per measured phase).
//
// The machinery mirrors conclint: per-function facts extended by an
// interprocedural summary fixpoint (functions that return tainted
// values, forward parameters into sinks, or sort parameter slices), and
// reasoned waivers with a staleness audit. Like the rest of the suite
// the analysis is conservative — escape into a struct field, channel or
// closure ends tracking — so a finding is very likely a real
// reproducibility hazard.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DetermLint statically verifies that nondeterminism sources cannot
// reach checksum, output and decision sinks.
var DetermLint = &Analyzer{
	Name: "determlint",
	Doc:  "verify determinism: no map-order, unseeded-rand, wall-clock or select-choice flow into checksums, logs or decisions",
	run:  runDetermLint,
}

// Rule slugs. Stable: they are the JSON ids (determlint/<rule>)
// dashboards and waivers key on.
const (
	ruleMapOrder        = "det-map-order"
	ruleFloatOrder      = "det-float-order"
	ruleUnseededRand    = "det-unseeded-rand"
	ruleTimeSink        = "det-time-sink"
	ruleSelectSink      = "det-select-sink"
	ruleDetWaiverReason = "det-waiver-reason"
	ruleDetWaiverStale  = "det-waiver-stale"
)

// detFinding is one pre-waiver finding.
type detFinding struct {
	pos  token.Pos
	rule string
	msg  string
}

// detWaiver is one parsed //amr:nolint directive carrying det-* rules.
// A waiver written on (or directly above) a function declaration waives
// its rules across the whole body, which is how an intentionally
// nondeterministic helper is recorded once instead of per line.
type detWaiver struct {
	*concWaiver
	// bodyFile/bodyStart/bodyEnd delimit the annotated function's body
	// when the waiver is declaration-scoped (bodyFile == "" otherwise).
	bodyFile           string
	bodyStart, bodyEnd int
}

func runDetermLint(pass *Pass) {
	d := &detPass{pass: pass}
	d.scanDecls()
	d.scanDirectives()
	d.sums = d.computeDetSummaries()
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		d.analyzeFunc(fd)
	})
	d.emit()
}

// report records a raw finding, deduplicating on (pos, rule): the
// order-context rule and the value-taint rule can legitimately diagnose
// the same call site.
func (d *detPass) report(pos token.Pos, rule, format string, args ...any) {
	key := reportKey{pos: pos, rule: rule}
	if d.reported == nil {
		d.reported = make(map[reportKey]bool)
	}
	if d.reported[key] {
		return
	}
	d.reported[key] = true
	d.raw = append(d.raw, detFinding{pos: pos, rule: rule, msg: fmt.Sprintf(format, args...)})
}

type reportKey struct {
	pos  token.Pos
	rule string
}

// scanDirectives parses //amr:nolint waivers carrying det-* rules and
// //amr:det sink annotations, binding declaration-scoped ones to the
// function they sit on (same line as the declaration, or the line
// immediately above it).
func (d *detPass) scanDirectives() {
	type fnSite struct {
		fd   *ast.FuncDecl
		file string
		line int
	}
	var fns []fnSite
	for _, file := range d.pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				pos := d.pass.Fset.Position(fd.Pos())
				fns = append(fns, fnSite{fd: fd, file: pos.Filename, line: pos.Line})
			}
		}
	}
	for _, file := range d.pass.Pkg.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				text := cm.Text
				pos := d.pass.Fset.Position(cm.Pos())
				if rest, ok := strings.CutPrefix(text, "//amr:nolint"); ok {
					cw := parseWaiver(rest, "det-", cm.Pos(), pos)
					if cw == nil {
						continue
					}
					w := &detWaiver{concWaiver: cw}
					for _, fn := range fns {
						if fn.file == pos.Filename && (fn.line == pos.Line || fn.line == pos.Line+1) {
							w.bodyFile = fn.file
							w.bodyStart = fn.line
							w.bodyEnd = d.pass.Fset.Position(fn.fd.Body.Rbrace).Line
						}
					}
					d.waivers = append(d.waivers, w)
				}
				if strings.HasPrefix(text, "//amr:det") {
					rest := strings.TrimPrefix(text, "//amr:det")
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // a different directive family (amr:detXYZ)
					}
					for _, fn := range fns {
						if fn.file == pos.Filename && (fn.line == pos.Line || fn.line == pos.Line+1) {
							if d.detFuncs == nil {
								d.detFuncs = make(map[*ast.FuncDecl]bool)
								d.detObjs = make(map[types.Object]bool)
							}
							d.detFuncs[fn.fd] = true
							if obj := d.pass.Pkg.Info.Defs[fn.fd.Name]; obj != nil {
								d.detObjs[obj] = true
							}
						}
					}
				}
			}
		}
	}
}

// waived reports whether f is suppressed, marking every matching waiver
// used. Line waivers match the finding's line or the line above it;
// declaration-scoped waivers match anywhere in the annotated body.
func (d *detPass) waived(f detFinding) bool {
	pos := d.pass.Fset.Position(f.pos)
	hit := false
	for _, w := range d.waivers {
		if !w.rules[f.rule] {
			continue
		}
		lineScoped := w.file == pos.Filename && (w.line == pos.Line || w.line+1 == pos.Line)
		bodyScoped := w.bodyFile == pos.Filename && w.bodyStart <= pos.Line && pos.Line <= w.bodyEnd
		if lineScoped || bodyScoped {
			w.used = true
			hit = true
		}
	}
	return hit
}

// emit applies waivers and reports the surviving findings plus the
// waiver audit: reason-less waivers are errors, unused waivers warnings.
func (d *detPass) emit() {
	for _, f := range d.raw {
		if d.waived(f) {
			continue
		}
		d.pass.ReportRulef(f.pos, f.rule, "error", "%s", f.msg)
	}
	for _, w := range d.waivers {
		if w.reason == "" {
			d.pass.ReportRulef(w.pos, ruleDetWaiverReason, "error",
				"amr:nolint waiver missing a '-- reason' justification")
		}
		if !w.used {
			var rules []string
			for r := range w.rules {
				rules = append(rules, r)
			}
			sort.Strings(rules)
			d.pass.ReportRulef(w.pos, ruleDetWaiverStale, "warning",
				"stale waiver: no %s finding matches it", strings.Join(rules, ","))
		}
	}
}
