package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fileNames lists the base names of a package's parsed files.
func fileNames(fset *token.FileSet, pkg *Package) []string {
	var names []string
	for _, f := range pkg.Files {
		names = append(names, filepath.Base(fset.Position(f.Package).Filename))
	}
	return names
}

// TestLoadBuildConstraints locks in the loader's file selection over the
// committed fixture: //go:build-excluded files and _test.go files stay
// out by default, and -tests admits the latter but never the former.
func TestLoadBuildConstraints(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("testdata", "load")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if got := fileNames(fset, pkgs[0]); len(got) != 1 || got[0] != "plain.go" {
		t.Errorf("default load parsed %v, want [plain.go]", got)
	}

	pkgs, err = Load(fset, []string{filepath.Join("testdata", "load")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages with tests, want 1", len(pkgs))
	}
	got := fileNames(fset, pkgs[0])
	if len(got) != 2 || got[0] != "extra_test.go" || got[1] != "plain.go" {
		t.Errorf("load with tests parsed %v, want [extra_test.go plain.go]", got)
	}
	for _, name := range got {
		if name == "tagged.go" {
			t.Errorf("//go:build ignore file loaded: %v", got)
		}
	}
}

// TestLoadSyntaxError verifies a broken source file surfaces as a
// wrapped load error rather than a panic or a silent skip. The fixture
// is generated, not committed: a committed syntax error would trip
// gofmt over the tree.
func TestLoadSyntaxError(t *testing.T) {
	dir := t.TempDir()
	src := "package broken\n\nfunc Unclosed() {\n"
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, err := Load(fset, []string{dir}, false)
	if err == nil {
		t.Fatal("loading a syntactically broken file did not error")
	}
	if !strings.HasPrefix(err.Error(), "amrlint: ") {
		t.Errorf("load error %q is not wrapped with the amrlint prefix", err)
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("load error %q does not name the broken file", err)
	}
}

// TestRunDeduplicatesFindings is the regression test for the dedupe
// layer: running the same analyzer twice over a corpus that seeds
// findings must report each site exactly once, in sorted order.
func TestRunDeduplicatesFindings(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("testdata", "collectivelint")}, false)
	if err != nil {
		t.Fatal(err)
	}
	once := Run(pkgs, []*Analyzer{CollectiveLint})
	if len(once) == 0 {
		t.Fatal("corpus produced no findings; dedupe test is vacuous")
	}
	twice := Run(pkgs, []*Analyzer{CollectiveLint, CollectiveLint})
	if len(twice) != len(once) {
		t.Fatalf("duplicate analyzer pass changed finding count: %d vs %d", len(twice), len(once))
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Errorf("finding %d differs after duplicate pass: %v vs %v", i, once[i], twice[i])
		}
	}
	for i := 1; i < len(twice); i++ {
		a, b := twice[i-1], twice[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}

// TestLoadGenerics locks in the loader's generics coverage: the shapes
// the runtime leans on (CombineSums[K]-style generic reductions and
// Plans[S]-style generic containers with pointer-receiver methods) must
// load, type-check tolerantly, and come out clean under the full
// analyzer suite — no crashes and no spurious findings on instantiation
// syntax.
func TestLoadGenerics(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("testdata", "generics")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("spurious finding on generic fixture: %s", f)
	}
}
