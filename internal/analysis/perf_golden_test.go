package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// allProfiles extracts every driver graph from both applications and
// evaluates it at its committed default configuration.
func allProfiles(t *testing.T) map[string]*Profile {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{
		filepath.Join("..", "amr", "app"),
		filepath.Join("..", "hydro"),
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	graphs, findings := ExtractGraphs(pkgs)
	for _, f := range findings {
		t.Errorf("graph finding on the real tree: %s", f)
	}
	profiles := make(map[string]*Profile, len(graphs))
	for _, g := range graphs {
		cfg, ok := DefaultCostConfig(g.Driver)
		if !ok {
			t.Errorf("driver %s has no default cost configuration", g.Driver)
		}
		p := ProfileGraph(g, cfg)
		for _, w := range p.Warnings {
			t.Errorf("driver %s: %s", g.Driver, w)
		}
		profiles[g.Driver] = p
	}
	return profiles
}

// TestGoldenPerfProfiles locks the static performance profiles of every
// driver against the committed goldens, so any change to the task
// structure, the //amr:par multiplicities or the cost presets shows up
// as a reviewable perf diff. Refresh with:
//
//	go run ./cmd/amrperf -update internal/analysis/testdata/golden/perf ./internal/amr/app ./internal/hydro
func TestGoldenPerfProfiles(t *testing.T) {
	profiles := allProfiles(t)
	want := []string{"dataflow", "exchange", "forkjoin", "mpionly",
		"hydro-dataflow", "hydro-forkjoin", "hydro-mpionly"}
	if len(profiles) != len(want) {
		t.Errorf("profiled %d drivers, want %d", len(profiles), len(want))
	}
	for _, driver := range want {
		p := profiles[driver]
		if p == nil {
			t.Errorf("driver %s not profiled", driver)
			continue
		}
		path := filepath.Join("testdata", "golden", "perf", driver+".txt")
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing perf golden (refresh with cmd/amrperf -update): %v", err)
		}
		if text := p.Text(); text != string(golden) {
			t.Errorf("driver %s diverges from %s:\n--- got ---\n%s--- want ---\n%s",
				driver, path, text, golden)
		}
	}
}

// TestDataflowWidthBeatsForkJoin pins the paper's core claim in the
// static model: on the same configuration, whole-DAG data-flow execution
// exposes strictly more concurrency than fork-join's barrier-composed
// regions, which in turn beat the serial MPI-only rank — for both
// applications.
func TestDataflowWidthBeatsForkJoin(t *testing.T) {
	profiles := allProfiles(t)
	for _, app := range []struct{ df, fj, serial string }{
		{"dataflow", "forkjoin", "mpionly"},
		{"hydro-dataflow", "hydro-forkjoin", "hydro-mpionly"},
	} {
		df, fj, serial := profiles[app.df], profiles[app.fj], profiles[app.serial]
		if df == nil || fj == nil || serial == nil {
			t.Fatalf("missing profiles for %v", app)
		}
		if df.Mode != "dataflow" || fj.Mode != "barrier" || serial.Mode != "barrier" {
			t.Errorf("modes: %s=%s %s=%s %s=%s", app.df, df.Mode, app.fj, fj.Mode, app.serial, serial.Mode)
		}
		if df.MaxWidth <= fj.MaxWidth {
			t.Errorf("%s max width %d does not exceed %s max width %d",
				app.df, df.MaxWidth, app.fj, fj.MaxWidth)
		}
		if df.Span >= fj.Span {
			t.Errorf("%s span %d is not shorter than %s span %d",
				app.df, df.Span, app.fj, fj.Span)
		}
		if df.SpeedupBound <= fj.SpeedupBound {
			t.Errorf("%s speedup bound %v does not exceed %s bound %v",
				app.df, df.SpeedupBound, app.fj, fj.SpeedupBound)
		}
		if serial.MaxWidth != 1 || serial.SpeedupBound != 1 {
			t.Errorf("%s width %d / bound %v, want the serial rank's 1/1",
				app.serial, serial.MaxWidth, serial.SpeedupBound)
		}
		// Same configuration, same per-rank traffic: the variants differ
		// in scheduling, not in what they communicate.
		if df.SendBytes != fj.SendBytes || fj.SendBytes != serial.SendBytes {
			t.Errorf("send volumes diverge across variants: %d / %d / %d",
				df.SendBytes, fj.SendBytes, serial.SendBytes)
		}
	}
}
