// Corpus: det-time-sink. Wall-clock values reaching oracle bytes or
// protocol state break reproducibility. Trace Record timestamps are the
// deliberate exemption: span timings are telemetry, rendered for humans,
// never compared against goldens.
package determ

import (
	"fmt"
	"io"
	"time"
)

func logWallClock(w io.Writer) {
	fmt.Fprintf(w, "finished at %v\n", time.Now()) // want "wall-clock value reaches output Fprintf"
}

func traceSpan(rec *recorder, label string) {
	start := time.Now()
	rec.Record(0, 0, label, start, time.Now()) // clean: Record is timing-exempt
}

func stampSeq(msg *message) {
	msg.seq = int(time.Now().UnixNano()) // want "stored into message seq field"
}

func stampFixed(msg *message, epoch int) {
	msg.seq = epoch // clean: derived from protocol state
}
