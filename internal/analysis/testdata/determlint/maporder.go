// Corpus: det-map-order. Emitting bytes while iterating a map (or a
// sequence derived from one) bakes the run's iteration order into the
// output; collecting, sorting, then emitting is the deterministic form.
package determ

import (
	"fmt"
	"io"
	"maps"
	"slices"
	"sort"
	"sync"
)

func printInMapOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "called under map iteration" // want "value reaches output Fprintf" // want "value reaches output Fprintf"
	}
}

func printSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k]) // clean: order pinned by sort
	}
}

func printViaKeysIter(w io.Writer, m map[string]int) {
	for k := range maps.Keys(m) {
		fmt.Fprintln(w, k) // want "called under map iteration" // want "value reaches output Fprintln"
	}
}

func printSortedKeys(w io.Writer, m map[string]int) {
	for _, k := range slices.Sorted(maps.Keys(m)) {
		fmt.Fprintln(w, k, m[k]) // clean: slices.Sorted pins the order
	}
}

// joinInMapOrder builds a sequence under map order; its summary marks
// every return as order-tainted, so the caller's print is the finding.
func joinInMapOrder(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func printJoined(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, joinInMapOrder(m)) // want "map-iteration-order value reaches output Fprintln"
}

type syncRegistry struct {
	entries sync.Map
}

func (r *syncRegistry) dump(w io.Writer) {
	r.entries.Range(func(k, v any) bool {
		fmt.Fprintln(w, k, v) // want "called under map iteration" // want "value reaches output Fprintln" // want "value reaches output Fprintln"
		return true
	})
}
