// Corpus: interprocedural summaries. Helpers that forward a parameter
// into a sink (sinkParams), return a tainted value from every exit
// (retKind), or sort a parameter in place (sortParams) extend the flow
// analysis through one level of delegation — the same fixpoint machinery
// conclint uses for lock summaries.
package determ

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// emit forwards line into the output stream, so a tainted argument at
// any emit call site is a finding there.
func emit(w io.Writer, line string) {
	fmt.Fprintln(w, line)
}

func emitMapOrder(w io.Writer, m map[string]int) {
	for k := range m {
		emit(w, k) // want "via emit"
	}
}

// nowStamp wraps time.Now: every return is wall-clock tainted, so call
// sites inherit the taint.
func nowStamp() time.Time {
	return time.Now()
}

func logStamp(w io.Writer) {
	fmt.Fprintf(w, "at %v\n", nowStamp()) // want "wall-clock value reaches output Fprintf"
}

// sortKeys pins the order of its argument; its summary kills order
// taint at call sites exactly like a direct sort.Strings call.
func sortKeys(keys []string) {
	sort.Strings(keys)
}

func emitSortedByHelper(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k) // clean: the helper pinned the order
	}
}
