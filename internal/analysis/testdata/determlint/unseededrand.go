// Corpus: det-unseeded-rand. Package-level math/rand draws come from the
// shared process-global stream: unseedable in v2, racy under concurrency,
// and different every run. Randomness on any decision or data path must
// come from an explicitly seeded stream so a seed reproduces the run.
package determ

import "math/rand/v2"

func pickGlobal(n int) int {
	return rand.IntN(n) // want "package-level rand.IntN"
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "package-level rand.Shuffle"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func pickSeeded(seed uint64, n int) int {
	r := rand.New(rand.NewPCG(seed, 7))
	return r.IntN(n) // clean: seeded stream reproduces from the seed
}
