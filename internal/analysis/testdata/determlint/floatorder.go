// Corpus: det-float-order. Float addition is not reassociation-safe, so
// a float accumulator folded in map-iteration or completion order gives
// bit-different results run to run even though the multiset of addends
// is identical. Pinning the fold order (sorted keys, per-slot buffers)
// is the deterministic form.
package determ

import "sort"

func sumInMapOrder(per map[string]float64) float64 {
	total := 0.0
	for _, v := range per {
		total += v // want "float accumulation under unpinned iteration order"
	}
	return total
}

func sumSorted(per map[string]float64) float64 {
	keys := make([]string, 0, len(per))
	for k := range per {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += per[k] // clean: fold order pinned
	}
	return total
}

func countInMapOrder(per map[string]float64) int {
	n := 0
	for range per {
		n++ // clean: integer counting is order-insensitive
	}
	return n
}

func sumCompletionOrder(reqs []*request, vals []float64) float64 {
	total := 0.0
	for range reqs {
		idx, _, _ := Waitany(reqs)
		total += vals[idx] // want "float accumulation in completion-order"
	}
	return total
}

func sumIndexOrder(reqs []*request, vals []float64) float64 {
	done := make([]float64, len(reqs))
	for range reqs {
		idx, _, _ := Waitany(reqs)
		done[idx] = vals[idx] // clean: buffered per slot
	}
	total := 0.0
	for _, v := range done {
		total += v // clean: folded in index order
	}
	return total
}
