// Corpus: the det waiver machinery. A reasoned //amr:nolint on (or
// above) the finding line suppresses it; a waiver without a "-- reason"
// is itself an error; a waiver matching nothing is reported stale; and a
// waiver on a function declaration suppresses its rules across the body.
package determ

import (
	"fmt"
	"io"
)

func waivedDump(w io.Writer, m map[string]int) {
	for k := range m {
		//amr:nolint det-map-order -- debug helper: output order is cosmetic and never diffed
		fmt.Fprintln(w, k)
	}
}

func reasonlessWaived(w io.Writer, m map[string]int) {
	for k := range m {
		//amr:nolint det-map-order // want "missing a '-- reason'"
		fmt.Fprintln(w, k)
	}
}

func staleWaived(w io.Writer) {
	//amr:nolint det-unseeded-rand -- left over from a refactor // want "stale waiver"
	fmt.Fprintln(w, "static")
}

//amr:nolint det-map-order -- whole function renders a debug view; order is cosmetic
func declWaivedDump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintln(w, k, v)
	}
}
