// Corpus: //amr:det annotations. Marking a function det makes every
// argument a determinism sink (callers may not pass nondeterministic
// values in) and requires the function's own returns to be reproducible.
package determ

import "time"

// combine folds per-key sums in the caller's key order: deterministic
// exactly when the caller pins that order.
//
//amr:det
func combine(keys []string, per map[string][]float64) []float64 {
	out := make([]float64, 4)
	for _, k := range keys {
		for v, x := range per[k] {
			out[v] += x
		}
	}
	return out
}

func combineUnsorted(per map[string][]float64) []float64 {
	var keys []string
	for k := range per {
		keys = append(keys, k)
	}
	return combine(keys, per) // want "reaches //amr:det function combine"
}

//amr:det
func badStamp() int64 {
	return time.Now().UnixNano() // want "returns a wall-clock-dependent value"
}
