// Corpus: det-select-sink. A multi-case select (and a Waitany loop) is a
// scheduling race by construction: which case ran, and therefore which
// value was bound, differs run to run. Such values must not reach output
// or checksum sinks.
package determ

import (
	"fmt"
	"io"
)

func logFirstArrival(w io.Writer, a, b chan string) {
	select {
	case v := <-a:
		fmt.Fprintln(w, v) // want "select-choice value reaches output Fprintln"
	case v := <-b:
		fmt.Fprintln(w, v) // want "select-choice value reaches output Fprintln"
	}
}

func logOnlyChannel(w io.Writer, a chan string) {
	for v := range a {
		fmt.Fprintln(w, v) // clean: single FIFO channel, no choice
	}
}

func acceptCompletionOrder(o *oracle, reqs []*request, vals [][]float64) {
	for range reqs {
		idx, _, _ := Waitany(reqs)
		o.Accept(vals[idx]) // want "completion-order value reaches checksum Accept"
	}
}
