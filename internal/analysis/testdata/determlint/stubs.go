// Corpus support: local stand-ins shaped like the runtime APIs the
// determlint corpus exercises. The analyzer classifies sinks and
// completion sources by name, so these stubs trip the same rules the
// real mpi/driver/trace APIs do.
package determ

import "time"

type request struct{ done bool }

type status struct{ src, tag int }

// Waitany mimics mpi.Waitany's shape: which request completes first is a
// scheduling decision, so its results carry completion-order taint.
func Waitany(reqs []*request) (int, status, error) { return 0, status{}, nil }

// oracle mimics driver.Oracle: Accept is a checksum sink by name.
type oracle struct{ history [][]float64 }

func (o *oracle) Accept(sums []float64) { o.history = append(o.history, sums) }

// recorder mimics trace.Recorder: Record is the timing-exempt event sink.
type recorder struct{}

func (r *recorder) Record(src, dst int, label string, start, end time.Time) {}

// message mimics a wire message whose tag and seq drive matching.
type message struct {
	tag int
	seq int
}
