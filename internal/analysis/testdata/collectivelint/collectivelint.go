// Package collcorpus seeds collectivelint violations next to clean
// exemplars. The stubs mirror the mpi collective API shapes; the corpus is
// analyzed, not compiled.
package collcorpus

// --- stubs mirroring the mpi package ---

type Op int

type Comm struct {
	rank int
}

func (c *Comm) Rank() int { return c.rank }
func (c *Comm) Size() int { return 0 }

func (c *Comm) Barrier() error                                     { return nil }
func (c *Comm) Bcast(buf any, root int) error                      { return nil }
func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) { return 0, nil }
func (c *Comm) AllgathervInt(local []int) ([]int, []int, error)    { return nil, nil, nil }
func (c *Comm) send(buf any, dest, tag int) error                  { return nil }
func (c *Comm) recv(buf any, source, tag int) error                { return nil }

// --- violations ---

func barrierOnRoot(c *Comm) error {
	if c.Rank() == 0 {
		return c.Barrier() // want "collective Barrier is nested in a rank-conditional branch"
	}
	return nil
}

func taintedRankVariable(c *Comm, v float64) (float64, error) {
	rank := c.Rank()
	if rank == 0 {
		return c.AllreduceFloat64(v, 0) // want "collective AllreduceFloat64"
	}
	return v, nil
}

func collectiveInElse(c *Comm, buf []int) error {
	if c.Rank() == 0 {
		_ = buf
	} else {
		return c.Bcast(buf, 0) // want "collective Bcast"
	}
	return nil
}

func switchOnRank(c *Comm, local []int) error {
	switch c.Rank() {
	case 0:
		_, _, err := c.AllgathervInt(local) // want "collective AllgathervInt"
		return err
	default:
		return nil
	}
}

func rankField(c *Comm, s struct{ rank int }) error {
	if s.rank > 0 {
		return c.Barrier() // want "collective Barrier"
	}
	return nil
}

func nestedCondition(c *Comm, n int) error {
	if n > 3 {
		if c.Rank()%2 == 0 {
			for i := 0; i < n; i++ {
				if err := c.Barrier(); err != nil { // want "collective Barrier"
					return err
				}
			}
		}
	}
	return nil
}

func collectiveInRankBoundedLoop(c *Comm, v float64) error {
	for i := 0; i < c.Rank(); i++ {
		if _, err := c.AllreduceFloat64(v, 0); err != nil { // want "rank-dependent number of times"
			return err
		}
	}
	return nil
}

func collectiveInRankSlicedRange(c *Comm, parts []int) error {
	for range parts[:c.Rank()] {
		if err := c.Barrier(); err != nil { // want "rank-dependent number of times"
			return err
		}
	}
	return nil
}

func branchReasonWinsOverInnerLoop(c *Comm, n int) error {
	if c.Rank() > 0 {
		for i := 0; i < c.Rank(); i++ {
			if err := c.Barrier(); err != nil { // want "rank-conditional branch"
				return err
			}
		}
	}
	return nil
}

// --- clean exemplars ---

func cleanUnconditional(c *Comm, v float64) (float64, error) {
	if err := c.Barrier(); err != nil {
		return 0, err
	}
	return c.AllreduceFloat64(v, 0)
}

func cleanRankIndependentBranch(c *Comm, n int) error {
	if n > 3 { // every rank computes the same n
		return c.Barrier()
	}
	return nil
}

func cleanRankConditionalPointToPoint(c *Comm, buf []int) error {
	if c.Rank() == 0 {
		return c.send(buf, 1, 0) // point-to-point may be rank-conditional
	}
	return c.recv(buf, 0, 0)
}

func cleanRankIndependentLoop(c *Comm, parts []int) error {
	for range parts { // same length on every rank
		if err := c.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

func cleanCollectiveAfterRankBranch(c *Comm, buf []int) error {
	if c.Rank() == 0 {
		buf[0] = 1
	}
	return c.Bcast(buf, 0) // back on the unconditional path
}
