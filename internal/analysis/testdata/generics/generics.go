// Fixture for the loader's generics coverage: the shapes the runtime
// actually uses — a type-parameterised reduction (driver.CombineSums[K])
// and a generic struct with pointer-receiver methods (driver.Plans[S]) —
// must type-check under the tolerant loader well enough for every
// analyzer to walk them without spurious findings.
package generics

import "sort"

// combineSums mirrors driver.CombineSums[K comparable]: a fold over an
// explicit key slice, so the map is only indexed, never ranged.
func combineSums[K comparable](vars int, blocks []K, perBlock map[K][]float64) []float64 {
	out := make([]float64, vars)
	for _, k := range blocks {
		sums := perBlock[k]
		for v := range sums {
			out[v] += sums[v]
		}
	}
	return out
}

// plan and plans mirror driver.Plan[S]/driver.Plans[S]: a generic
// container with pointer-receiver methods.
type plan[S any] struct {
	peer  int
	stage S
}

type plans[S any] struct {
	send []plan[S]
	recv []plan[S]
}

func (p *plans[S]) reset() {
	p.send = p.send[:0]
	p.recv = p.recv[:0]
}

func (p *plans[S]) add(peer int, stage S) {
	p.send = append(p.send, plan[S]{peer: peer, stage: stage})
}

// sortedKeys instantiates a generic helper over an ordered constraint.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// use ties the instantiations together so the fixture exercises generic
// instantiation, not just declaration.
func use() ([]float64, []string) {
	per := map[int][]float64{0: {1, 2}, 1: {3, 4}}
	var p plans[string]
	p.add(1, "ghost")
	p.reset()
	return combineSums(2, []int{0, 1}, per), sortedKeys(map[string]int{"a": 1})
}
