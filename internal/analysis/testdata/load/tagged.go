//go:build ignore

// This file is parked out of the build; the loader must skip it the
// same way the go tool does.

package loadcorpus

func Tagged() int { return 2 }
