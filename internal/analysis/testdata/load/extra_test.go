package loadcorpus

func ExtraTestOnly() int { return 3 }
