// Package loadcorpus exercises the loader: this file always loads.
package loadcorpus

func Plain() int { return 1 }
