// Package escapecorpus seeds //amr:hot violations for the escape lint's
// real-compile test. Unlike the analyzer corpora this package must
// compile: the test runs `go build -gcflags=-m` over it and checks the
// compiler's escape diagnostics against the declared budgets.
package escapecorpus

// leak escapes its boxed argument: one site over its zero budget.
//
//amr:hot allocs=0
func leak(n int) *int {
	v := n
	return &v
}

// pinned stays allocation-free and matches its budget exactly.
//
//amr:hot allocs=0
func pinned(a, b int) int {
	return a + b
}

// drifted declares more sites than it has: the pin should be lowered.
//
//amr:hot allocs=3
func drifted(n int) []int {
	return make([]int, n)
}

var sink any

func use() {
	sink = leak(1)
	sink = pinned(1, 2)
	sink = drifted(3)
}
