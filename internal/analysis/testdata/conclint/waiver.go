// Corpus: the waiver machinery. A line waiver with a reason suppresses
// the finding on the next line; a waiver without a "-- reason" string is
// itself an error; a waiver that suppresses nothing is reported stale;
// and a waiver on a mutex declaration suppresses by lock class across
// the package.
package conclint

import "sync"

type wbox struct {
	mu sync.Mutex
	ch chan int
}

type declWaived struct {
	//amr:nolint conc-block-under-lock -- handshake sends under this lock are bounded: the peer posts its receive first
	mu sync.Mutex
	ch chan int
}

func waivedSend(w *wbox) {
	w.mu.Lock()
	//amr:nolint conc-block-under-lock -- the buffer is sized for one message, the send cannot park
	w.ch <- 1
	w.mu.Unlock()
}

func reasonlessWaiver(w *wbox) {
	w.mu.Lock()
	//amr:nolint conc-block-under-lock // want "waiver missing a '-- reason' justification"
	w.ch <- 2
	w.mu.Unlock()
}

func staleWaiver(w *wbox) {
	//amr:nolint conc-lock-leak -- left over from a refactor // want "stale waiver: no conc-lock-leak finding matches it"
	w.ch <- 3
}

func declWaivedSends(d *declWaived) {
	d.mu.Lock()
	d.ch <- 1
	d.mu.Unlock()
}

func declWaivedMore(d *declWaived) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ch <- 2
}
