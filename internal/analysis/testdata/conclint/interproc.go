// Corpus: interprocedural summaries. bump's summary records that it
// acquires guard.mu, so calling it with the lock held is a self-deadlock;
// waitCh's summary records that it blocks on a channel receive, so
// calling it under the lock is a block-under-lock even though the receive
// is a function away.
package conclint

import "sync"

type guard struct {
	mu sync.Mutex
	n  int
}

func bump(g *guard) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func bumpTwice(g *guard) {
	g.mu.Lock()
	bump(g) // want "call to bump acquires guard.mu while it is already held"
	g.mu.Unlock()
}

func waitCh(ch chan int) int {
	return <-ch
}

func waitUnderLock(g *guard, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return waitCh(ch) // want "blocking call to waitCh (channel receive) while holding guard.mu"
}

// bumpClean takes the lock only after the helper returned: no findings.
func bumpClean(g *guard, ch chan int) int {
	v := waitCh(ch)
	bump(g)
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n + v
}
