// Corpus: conc-lock-leak. Double lock, unlock without a matching lock,
// and a return path that leaves the mutex held. The begin/release pair
// shows the one legal way to exit holding a lock: returning its Unlock
// method value for the caller to defer.
package conclint

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want "counter.mu locked again while already held"
	c.n++
	c.mu.Unlock()
}

func unlockNotHeld(c *counter) {
	c.n++
	c.mu.Unlock() // want "counter.mu unlocked but not held"
}

func leakOnEarlyReturn(c *counter, fail bool) int {
	c.mu.Lock()
	if fail {
		return -1 // want "counter.mu may still be held when leakOnEarlyReturn returns"
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// begin exits holding counter.mu legally: it returns the unlocker.
func (c *counter) begin() (int, func()) {
	c.mu.Lock()
	c.n++
	return c.n, c.mu.Unlock
}

// useBegin continues the tracking across the call: the lock acquired by
// begin is released by the deferred unlocker, so nothing is reported.
func useBegin(c *counter) int {
	n, release := c.begin()
	defer release()
	return n
}
