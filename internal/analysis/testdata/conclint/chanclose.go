// Corpus: conc-chan-close. Double close, send after close, maybe-closed
// merges, and the //amr:chan owner= ownership rule for shared channels.
package conclint

type owned struct {
	//amr:chan owner=shutdown
	done chan struct{}
	data chan int // unannotated: closes are not ownership-checked
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "close of closed channel ch"
}

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on closed channel ch"
}

func sendMaybeClosed(flush bool) {
	ch := make(chan int, 1)
	if flush {
		close(ch)
	}
	ch <- 1 // want "send on possibly-closed channel ch"
}

func closeInLoop(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		close(ch) // want "channel ch may already be closed"
	}
}

func (o *owned) shutdown() {
	close(o.done)
}

func rogueClose(o *owned) {
	close(o.done) // want "close of owned.done outside its declared owner(s) [shutdown]"
	close(o.data)
}

func cleanLifecycle() chan int {
	ch := make(chan int, 4)
	ch <- 1
	close(ch)
	return ch
}
