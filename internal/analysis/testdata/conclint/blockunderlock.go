// Corpus: conc-block-under-lock. Blocking operations — channel send and
// receive, select without default, time.Sleep — reached while a mutex is
// held. A select with a default branch polls and is fine, as is blocking
// after the lock is released.
package conclint

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func sendUnderLock(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want "blocking channel send while holding box.mu"
	b.mu.Unlock()
}

func recvUnderDeferredLock(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want "blocking channel receive while holding box.mu"
}

func selectUnderLock(b *box) {
	b.mu.Lock()
	select { // want "blocking select without default while holding box.mu"
	case v := <-b.ch:
		_ = v
	}
	b.mu.Unlock()
}

func pollUnderLock(b *box) {
	b.mu.Lock()
	select {
	case v := <-b.ch:
		_ = v
	default:
	}
	b.mu.Unlock()
}

func sleepUnderLock(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking call to Sleep while holding box.mu"
	b.mu.Unlock()
}

func blockAfterUnlock(b *box) int {
	b.mu.Lock()
	b.mu.Unlock()
	return <-b.ch
}
