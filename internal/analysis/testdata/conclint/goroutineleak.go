// Corpus: conc-goroutine-leak. Goroutines whose body spins in a `for {}`
// loop with no return, break or channel receive can never be shut down.
// Workers that range over a channel, select on a stop channel, or simply
// terminate are fine.
package conclint

func spinForever(n *int) {
	for {
		*n++
	}
}

func leakNamed() {
	n := 0
	go spinForever(&n) // want "goroutine has no shutdown edge"
}

func leakLiteral() {
	n := 0
	go func() { // want "goroutine has no shutdown edge"
		for {
			n++
		}
	}()
}

func cleanWorkers(work chan func(), stop chan struct{}) {
	go func() {
		for {
			select {
			case fn := <-work:
				fn()
			case <-stop:
				return
			}
		}
	}()
	go func() {
		for fn := range work {
			fn()
		}
	}()
	go func() {
		for i := 0; i < 8; i++ {
			work <- nil
		}
	}()
}
