// Corpus: conc-lock-cycle. lockAB acquires a then b, lockBA acquires b
// then a; together they form a cycle in the package lock-order graph,
// reported once at the earliest edge.
package conclint

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want "lock-order cycle: pair.a -> pair.b -> pair.a"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// nestedConsistent holds a then b everywhere else too — consistent with
// lockAB, so only the lockBA inversion creates the cycle.
func nestedConsistent(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.n++
}
