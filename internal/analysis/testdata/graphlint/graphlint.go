// Package graphcorpus seeds graphlint violations next to a clean
// exemplar pipeline. The stubs mirror the task-runtime and comm API
// shapes the extractor interprets by name; the corpus is analyzed, not
// compiled.
package graphcorpus

// --- stubs mirroring the task runtime and comm layer ---

type access struct{}

func In(keys ...any) access       { return access{} }
func Out(keys ...any) access      { return access{} }
func InOut(keys ...any) access    { return access{} }
func Merge(accs ...access) access { return access{} }

type runtime struct{}

func (r *runtime) Spawn(label string, fn func(), deps ...access) {}
func (r *runtime) WaitKeys(keys ...any)                          {}

type Op int

type Comm struct{ rank int }

func (c *Comm) Rank() int { return c.rank }

func (c *Comm) Isend(buf any, dest, tag int) error                 { return nil }
func (c *Comm) Irecv(buf any, source, tag int) error               { return nil }
func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) { return 0, nil }

type plan struct {
	peer int
	tag  int
}

// stageKey names a per-timestep staging buffer: every write must be
// read and every read must have a producer within the timestep.
//
//amr:region stage match=idx
type stageKey struct {
	idx int
}

// gridKey names persistent block state carried across timesteps, so it
// carries no producer/consumer obligations.
//
//amr:region state
type gridKey struct {
	c int
}

// --- clean exemplar: a produce/consume pipeline and a symmetric halo ---

//amr:graph driver=clean phase=pipeline seq=1
func cleanPipeline(rt *runtime) {
	for i := 0; i < 4; i++ {
		rt.Spawn("produce", func() {}, InOut(gridKey{c: i}), Out(stageKey{idx: i}))
		rt.Spawn("consume", func() {}, In(stageKey{idx: i}))
	}
}

//amr:graph driver=clean phase=halo seq=2
func cleanHalo(c *Comm, sendPlans, recvPlans []plan) {
	for _, p := range recvPlans {
		_ = c.Irecv(nil, p.peer, p.tag)
	}
	for _, p := range sendPlans {
		_ = c.Isend(nil, p.peer, p.tag)
	}
}

// --- dropped consumer edge: a staged section nobody reads ---

//amr:graph driver=dropedge phase=pipeline seq=1
func droppedEdge(rt *runtime) {
	rt.Spawn("pack", func() {},
		Out(stageKey{idx: 0}),
		Out(stageKey{idx: 1})) // want "dead write"
	rt.Spawn("send", func() {}, In(stageKey{idx: 0}))
}

// --- orphan in: a staged section read before anything writes it ---

//amr:graph driver=rbw phase=pipeline seq=1
func readBeforeWrite(rt *runtime) {
	rt.Spawn("unpack", func() {},
		In(stageKey{idx: 2})) // want "read-before-write"
}

// --- broken halo symmetry: the send tags are shifted off the recvs ---

//amr:graph driver=symmetry phase=halo seq=1
func brokenSymmetry(c *Comm, sendPlans, recvPlans []plan) {
	for _, p := range recvPlans {
		_ = c.Irecv(nil, p.peer, p.tag) // want "no matching send"
	}
	for _, p := range sendPlans {
		_ = c.Isend(nil, p.peer, p.tag+1) // want "no matching receive"
	}
}

// --- rank-dependent collective path: rank 0 returns before the reduce ---

//amr:graph driver=collseq phase=reduce seq=1
func collseqDiverges(c *Comm, v float64) (float64, error) {
	if c.Rank() == 0 { // want "collective sequence diverges across rank paths"
		return v, nil
	}
	return c.AllreduceFloat64(v, 0)
}

// --- directive misuse ---

//amr:graph driver=dupseq phase=alpha seq=1
func dupSeqAlpha(rt *runtime) {
	rt.Spawn("alpha", func() {}, InOut(gridKey{c: 0}))
}

//amr:graph driver=dupseq phase=beta seq=1
func dupSeqBeta(rt *runtime) { // want "duplicate //amr:graph seq=1"
	rt.Spawn("beta", func() {}, InOut(gridKey{c: 0}))
}

//amr:graph phase=orphan
func malformedAnchor(rt *runtime) { // want "malformed //amr:graph directive"
	rt.Spawn("orphan", func() {}, InOut(gridKey{c: 0}))
}

// badKey is missing the region kind.
//
//amr:region bogus
type badKey struct { // want "malformed //amr:region directive"
	v int
}
