// Package depcorpus seeds deplint violations next to clean exemplars. The
// stubs mirror the task API shapes; the corpus is analyzed, not compiled.
package depcorpus

// --- stubs mirroring the task package ---

type Task struct{}

type Access struct{}

func In(keys ...any) []Access          { return nil }
func Out(keys ...any) []Access         { return nil }
func InOut(keys ...any) []Access       { return nil }
func Merge(lists ...[]Access) []Access { return nil }

type Runtime struct{}

func (rt *Runtime) Spawn(label string, body func(t *Task), accs ...Access) {}
func (rt *Runtime) Wait()                                                  {}
func (rt *Runtime) WaitAccess(accs ...Access)                              {}
func (rt *Runtime) WaitKeys(keys ...any)                                   {}
func (rt *Runtime) Shutdown()                                              {}

type blockKey struct{ c, g int }

// --- violations ---

func duplicateKey(rt *Runtime) {
	rt.Spawn("t", func(*Task) {}, Merge(In("x"), Out("x"))...) // want "declared twice"
}

func duplicateStructKey(rt *Runtime, c int) {
	rt.Spawn("t", func(*Task) {}, Merge(
		In(blockKey{c: c, g: 0}),
		InOut(blockKey{c: c, g: 0}), // want "declared twice"
	)...)
}

func writeToInRegion(rt *Runtime, buf []float64) {
	rt.Spawn("t", func(*Task) {
		buf[0] = 1 // want "read-only"
	}, In(buf)...)
}

func incToInRegion(rt *Runtime, counter *int) {
	rt.Spawn("t", func(*Task) {
		*counter++ // want "read-only"
	}, In(counter)...)
}

func taskwaitInBody(rt *Runtime) {
	rt.Spawn("t", func(*Task) {
		rt.Wait() // want "deadlocks"
	}, Out("k")...)
}

func shutdownInBody(rt *Runtime) {
	rt.Spawn("t", func(*Task) {
		rt.Shutdown() // want "deadlocks"
	})
}

// --- clean exemplars ---

func cleanDistinctKeys(rt *Runtime, c int) {
	rt.Spawn("t", func(*Task) {}, Merge(
		In(blockKey{c: c, g: 0}),
		InOut(blockKey{c: c, g: 1}), // same struct, different field: distinct
	)...)
}

func cleanInOutWrite(rt *Runtime, buf []float64) {
	rt.Spawn("t", func(*Task) {
		buf[0] = 1 // declared inout: writing is the point
	}, InOut(buf)...)
}

func cleanSymbolicKeys(rt *Runtime, buf []float64) {
	rt.Spawn("pack", func(*Task) {
		buf[0] = 1 // key "stage" is symbolic, not the variable written
	}, Merge(In("prev"), Out("stage"))...)
}

func cleanNestedSpawn(rt *Runtime) {
	rt.Spawn("outer", func(*Task) {
		rt.Spawn("inner", func(*Task) {}) // spawning from a task is fine
	})
}

func cleanSpreadAccesses(rt *Runtime, accs []Access, keys []any) {
	rt.Spawn("t", func(*Task) {}, accs...)         // keys unknown: nothing to check
	rt.Spawn("t", func(*Task) {}, Out(keys...)...) // spread key list: unknown
}
