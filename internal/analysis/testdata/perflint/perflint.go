// Package perfcorpus seeds perflint violations next to a clean exemplar
// pipeline. The stubs mirror the task-runtime and comm API shapes the
// extractor interprets by name; the corpus is analyzed, not compiled.
package perfcorpus

// --- stubs mirroring the task runtime and comm layer ---

type access struct{}

func In(keys ...any) access       { return access{} }
func Out(keys ...any) access      { return access{} }
func InOut(keys ...any) access    { return access{} }
func Merge(accs ...access) access { return access{} }

type runtime struct{}

func (r *runtime) Spawn(label string, fn func(), deps ...access) {}
func (r *runtime) WaitKeys(keys ...any)                          {}

type Op int

type Comm struct{ rank int }

func (c *Comm) AllreduceFloat64(v float64, op Op) (float64, error) { return 0, nil }

// stageKey names a per-timestep staging buffer, narrowed to its index.
//
//amr:region stage match=idx
type stageKey struct {
	idx int
}

// wideKey is the seeded violation for perf-wide-key: a stage class with
// no match fields, so every key of the class is the same region.
//
//amr:region stage
type wideKey struct {
	n int
}

// gridKey names persistent block state carried across timesteps.
//
//amr:region state
type gridKey struct {
	c int
}

// --- clean exemplar: parallel stages funneled into a collective ---

//amr:graph driver=clean phase=checksum seq=1
//amr:par label=partial axis=blocks
func cleanChecksum(rt *runtime, c *Comm) {
	for i := 0; i < 4; i++ {
		rt.Spawn("partial", func() {}, In(gridKey{c: i}), Out(stageKey{idx: i}))
	}
	rt.WaitKeys(stageKey{idx: 0})
	_, _ = c.AllreduceFloat64(0, 0)
}

// --- needless barrier: a wait that reaches no collective ---

//amr:graph driver=barrier phase=step seq=1
//amr:par label=work axis=blocks
func needlessBarrier(rt *runtime) {
	for i := 0; i < 4; i++ {
		rt.Spawn("work", func() {}, InOut(gridKey{c: i}), Out(stageKey{idx: i}))
	}
	rt.WaitKeys(stageKey{idx: 0}) // want "pure barrier"
}

// --- serial funnel: one reduce task wedged between parallel stages ---

//amr:graph driver=funnel phase=step seq=1
//amr:par label=scatter axis=blocks
//amr:par label=gather axis=blocks
func serialFunnel(rt *runtime) {
	rt.Spawn("scatter", func() {}, Out(stageKey{idx: 0}))
	rt.Spawn("scatter", func() {}, Out(stageKey{idx: 1}))
	rt.Spawn("reduce", func() {}, // want "the graph narrows to width 1 here"
		In(stageKey{idx: 0}), In(stageKey{idx: 1}), Out(gridKey{c: 0}))
	rt.Spawn("gather", func() {}, In(gridKey{c: 0}))
	rt.Spawn("gather", func() {}, InOut(gridKey{c: 0}))
}

// --- wide key: a task-to-task dependence through a matchless class ---

//amr:graph driver=widekey phase=step seq=1
//amr:par label=produce axis=blocks
//amr:par label=consume axis=blocks
func overWideKey(rt *runtime) {
	rt.Spawn("produce", func() {}, Out(wideKey{n: 0}))
	rt.Spawn("consume", func() {}, In(wideKey{n: 1})) // want "serializing all instance pairs"
}
