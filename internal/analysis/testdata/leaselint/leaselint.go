// Package leasecorpus seeds leaselint violations next to clean exemplars.
// The stubs mirror the membuf/mpi API shapes; the corpus is analyzed, not
// compiled.
package leasecorpus

// --- stubs mirroring membuf and mpi shapes ---

type Lease struct{}

func (l *Lease) Release()           {}
func (l *Lease) Retain() *Lease     { return l }
func (l *Lease) Float64() []float64 { return nil }
func (l *Lease) Len() int           { return 0 }

type Arena struct{}

func (a *Arena) LeaseFloat64(n int) *Lease  { return nil }
func (a *Arena) LeaseInt(n int) *Lease      { return nil }
func (a *Arena) GetFloat64(n int) []float64 { return nil }
func (a *Arena) PutFloat64(b []float64)     {}

type Request struct{}

func (r *Request) Wait() (int, error) { return 0, nil }

type Comm struct{}

func (c *Comm) SendOwned(l *Lease, dest, tag int) error              { return nil }
func (c *Comm) IsendOwned(l *Lease, dest, tag int) (*Request, error) { return nil, nil }

// --- violations ---

func leakOnEarlyReturn(a *Arena, n int) error {
	l := a.LeaseFloat64(n) // want "not released, put back or ownership-transferred on every path"
	if n > 8 {
		return nil // leaks l
	}
	l.Release()
	return nil
}

func doubleRelease(a *Arena) {
	l := a.LeaseFloat64(4)
	l.Release()
	l.Release() // want "released twice"
}

func useAfterRelease(a *Arena) float64 {
	l := a.LeaseFloat64(4)
	l.Release()
	return l.Float64()[0] // want "use of arena lease after it was released"
}

func releaseAfterTransfer(a *Arena, c *Comm) {
	l := a.LeaseFloat64(4)
	c.SendOwned(l, 1, 0) // error unobserved: ownership assumed transferred
	l.Release()          // want "released after its ownership was already handed off"
}

func discardedAtCreation(a *Arena) {
	_ = a.LeaseFloat64(4) // want "discarded at creation"
}

func errPathLeak(a *Arena, c *Comm) error {
	l := a.LeaseFloat64(8) // want "not released, put back or ownership-transferred on every path"
	if err := c.SendOwned(l, 1, 0); err != nil {
		return err // on error the lease is retained; it must be released here
	}
	return nil
}

func overwrittenWhileHeld(a *Arena) {
	l := a.LeaseFloat64(4)
	l = a.LeaseFloat64(8) // want "overwritten while still held"
	l.Release()
}

func bufferLeak(a *Arena, n int) []float64 {
	buf := a.GetFloat64(n) // want "pooled buffer is not released"
	if n == 0 {
		return nil // leaks buf
	}
	out := make([]float64, n)
	copy(out, buf)
	a.PutFloat64(buf)
	return out
}

// --- clean exemplars ---

func cleanRelease(a *Arena, n int) float64 {
	l := a.LeaseFloat64(n)
	v := l.Float64()[0]
	l.Release()
	return v
}

func cleanDeferPut(a *Arena, n int) float64 {
	buf := a.GetFloat64(n)
	defer a.PutFloat64(buf)
	buf[0] = 1
	return buf[0]
}

func cleanTransferWithErrPath(a *Arena, c *Comm) error {
	l := a.LeaseFloat64(8)
	if err := c.SendOwned(l, 1, 0); err != nil {
		l.Release()
		return err
	}
	return nil
}

func cleanIsendOwned(a *Arena, c *Comm) (*Request, error) {
	l := a.LeaseFloat64(8)
	req, err := c.IsendOwned(l, 1, 0)
	if err != nil {
		l.Release()
		return nil, err
	}
	return req, nil
}

type holder struct{ l *Lease }

func cleanEscapeIntoStruct(a *Arena) *holder {
	l := a.LeaseFloat64(4)
	return &holder{l: l} // ownership moves to the holder; tracking ends
}

func cleanLoopPerIteration(a *Arena, peers []int, c *Comm) error {
	for _, p := range peers {
		l := a.LeaseFloat64(16)
		if err := c.SendOwned(l, p, 0); err != nil {
			l.Release()
			return err
		}
	}
	return nil
}
