// interproc.go exercises the interprocedural summaries: helpers that
// release, transfer or merely read their lease parameter on every exit
// are summarized, and the summarized effect applies at the call site.
// Helpers with mixed exits get no summary and the call site stays on the
// conservative default (tracking ends, nothing reported).
package leasecorpus

// --- helpers the engine summarizes ---

func releaseHelper(l *Lease) { l.Release() }

func releaseViaChain(l *Lease) { releaseHelper(l) }

func readHelper(l *Lease) float64 { return l.Float64()[0] }

func transferHelper(c *Comm, l *Lease) {
	c.SendOwned(l, 1, 0) // error unobserved: ownership assumed transferred
}

func dropHelper(_ *Lease) {} // ignores its lease: callers still hold it

func maybeRelease(l *Lease, n int) { // mixed exits: no summary
	if n > 0 {
		l.Release()
	}
}

// --- violations the summaries expose ---

func doubleReleaseThroughHelper(a *Arena) {
	l := a.LeaseFloat64(4)
	releaseHelper(l)
	l.Release() // want "released twice"
}

func doubleReleaseThroughChain(a *Arena) {
	l := a.LeaseFloat64(4)
	releaseViaChain(l)
	l.Release() // want "released twice"
}

func useAfterHelperRelease(a *Arena) float64 {
	l := a.LeaseFloat64(4)
	releaseHelper(l)
	return l.Float64()[0] // want "use of arena lease after it was released"
}

func leakPastReadHelper(a *Arena, n int) float64 {
	l := a.LeaseFloat64(n) // want "not released, put back or ownership-transferred on every path"
	v := readHelper(l)
	if n > 8 {
		return v // readHelper only reads: the lease is still held here
	}
	l.Release()
	return v
}

func releaseAfterHelperTransfer(a *Arena, c *Comm) {
	l := a.LeaseFloat64(4)
	transferHelper(c, l)
	l.Release() // want "released after its ownership was already handed off"
}

func leakThroughDropHelper(a *Arena) {
	l := a.LeaseFloat64(4) // want "not released, put back or ownership-transferred on every path"
	dropHelper(l)          // the blank parameter cannot release it
}

// --- clean exemplars ---

func cleanHelperRelease(a *Arena, n int) float64 {
	l := a.LeaseFloat64(n)
	v := readHelper(l)
	releaseHelper(l)
	return v
}

func cleanHelperTransfer(a *Arena, c *Comm) {
	l := a.LeaseFloat64(8)
	transferHelper(c, l)
}

func cleanMaybeRelease(a *Arena, n int) {
	l := a.LeaseFloat64(n)
	maybeRelease(l, n) // no summary: tracking ends, stays silent
}
