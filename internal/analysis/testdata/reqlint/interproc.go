// interproc.go exercises the interprocedural summaries: helpers that
// wait on, free or merely poll their request parameter on every exit are
// summarized, and the summarized effect applies at the call site.
// Helpers with mixed exits get no summary and the call site stays on the
// conservative default (tracking ends, nothing reported).
package reqcorpus

// --- helpers the engine summarizes ---

func waitHelper(r *Request) error {
	_, err := r.Wait()
	return err
}

func settleViaChain(r *Request) error { return waitHelper(r) }

func freeHelper(r *Request) { r.Free() }

func peekHelper(r *Request) bool { return r.Done() != nil }

func maybeWait(r *Request, n int) { // mixed exits: no summary
	if n > 0 {
		r.Wait()
	}
}

// --- violations the summaries expose ---

func useAfterFreeViaHelpers(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	if werr := waitHelper(req); werr != nil {
		return werr
	}
	req.Free()
	req.Wait() // want "use of request after it was freed"
	return nil
}

func freedEarlyViaHelper(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	freeHelper(req) // want "freed before its completion was observed"
	return nil
}

func leakPastPeekHelper(c *Comm, buf []float64) error {
	req, err := c.Irecv(buf, 1, 0) // want "request is not completed"
	if err != nil {
		return err
	}
	_ = peekHelper(req) // peek is benign: the request is still in flight
	return nil
}

// --- clean exemplars ---

func cleanWaitViaHelper(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	return waitHelper(req)
}

func cleanWaitViaChain(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	return settleViaChain(req)
}

func cleanDeferredHelperWait(c *Comm, buf []float64) error {
	req, err := c.Irecv(buf, 1, 0)
	if err != nil {
		return err
	}
	defer waitHelper(req)
	buf[0] = 1
	return nil
}

func cleanMaybeWait(c *Comm, buf []float64, n int) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	maybeWait(req, n) // no summary: tracking ends, stays silent
	return nil
}
