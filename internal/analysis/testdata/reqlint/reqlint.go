// Package reqcorpus seeds reqlint violations next to clean exemplars. The
// stubs mirror the mpi/tampi API shapes; the corpus is analyzed, not
// compiled.
package reqcorpus

// --- stubs mirroring mpi and tampi shapes ---

type Request struct{}

func (r *Request) Wait() (int, error)    { return 0, nil }
func (r *Request) Test() (bool, error)   { return true, nil }
func (r *Request) Free()                 {}
func (r *Request) Done() <-chan struct{} { return nil }
func (r *Request) OnComplete(f func())   {}

type Lease struct{}

type Comm struct{}

func (c *Comm) Isend(buf any, dest, tag int) (*Request, error)       { return nil, nil }
func (c *Comm) Irecv(buf any, source, tag int) (*Request, error)     { return nil, nil }
func (c *Comm) IsendOwned(l *Lease, dest, tag int) (*Request, error) { return nil, nil }

func Waitall(reqs ...*Request) error       { return nil }
func Waitany(reqs []*Request) (int, error) { return 0, nil }

type WaitSet struct{}

func (ws *WaitSet) Add(r *Request) {}

type Task struct{}

type Context struct{}

func (x *Context) Iwait(t *Task, reqs ...*Request) {}

// --- violations ---

func droppedResult(c *Comm, buf []float64) {
	c.Isend(buf, 1, 0) // want "result of this call is discarded"
}

func discardedRequest(c *Comm, buf []float64) error {
	_, err := c.Isend(buf, 1, 0) // want "request is discarded at creation"
	return err
}

func neverCompleted(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0) // want "request is not completed"
	if err != nil {
		return err
	}
	_ = buf
	_ = func() *Request { return nil } // req itself is never waited on
	return nil
}

func shadowedInFlight(c *Comm, buf []float64) error {
	req, err := c.Irecv(buf, 1, 0)
	if err != nil {
		return err
	}
	req, err = c.Irecv(buf, 2, 0) // want "request overwritten while still held"
	if err != nil {
		return err
	}
	_, werr := req.Wait()
	return werr
}

func freedBeforeCompletion(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	req.Free() // want "freed before its completion was observed"
	return nil
}

func useAfterFree(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	if _, werr := req.Wait(); werr != nil {
		return werr
	}
	req.Free()
	req.Wait() // want "use of request after it was freed"
	return nil
}

func completedOnlyOnOnePath(c *Comm, buf []float64, n int) error {
	req, err := c.Irecv(buf, 1, 0) // want "request is not completed"
	if err != nil {
		return err
	}
	if n > 0 {
		_, werr := req.Wait()
		return werr
	}
	return nil // leaks req in flight
}

func secondSendErrorPathLeak(c *Comm, buf []float64) error {
	r1, err := c.Isend(buf, 1, 0) // want "request is not completed"
	if err != nil {
		return err
	}
	r2, err := c.Isend(buf, 2, 0)
	if err != nil {
		return err // abandons r1 in flight
	}
	return Waitall(r1, r2)
}

// --- clean exemplars ---

func cleanWait(c *Comm, buf []float64) error {
	req, err := c.Irecv(buf, 1, 0)
	if err != nil {
		return err // req is nil on error: nothing to complete
	}
	_, werr := req.Wait()
	return werr
}

func cleanWaitall(c *Comm, buf []float64) error {
	r1, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	r2, err := c.Isend(buf, 2, 0)
	if err != nil {
		r1.Wait() // settle the in-flight request before bailing
		return err
	}
	return Waitall(r1, r2)
}

func cleanWaitSet(c *Comm, buf []float64, ws *WaitSet) error {
	req, err := c.Irecv(buf, 1, 0)
	if err != nil {
		return err
	}
	ws.Add(req)
	return nil
}

func cleanIwait(c *Comm, x *Context, t *Task, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	x.Iwait(t, req)
	return nil
}

func cleanEscapeIntoSlice(c *Comm, buf []float64, peers []int) ([]*Request, error) {
	var reqs []*Request
	for _, p := range peers {
		req, err := c.Isend(buf, p, 0)
		if err != nil {
			return reqs, err
		}
		reqs = append(reqs, req) // completion handled by the caller
	}
	return reqs, nil
}

func cleanFreeAfterWait(c *Comm, buf []float64) error {
	req, err := c.Isend(buf, 1, 0)
	if err != nil {
		return err
	}
	_, werr := req.Wait()
	req.Free()
	return werr
}
