package analysis

// The lock-flow engine behind conclint: an abstract interpreter over
// function bodies whose state is the ordered list of locks held on the
// current path. It powers conc-lock-leak, conc-block-under-lock, the
// edges of the conc-lock-cycle graph, and the per-function lockSummary
// consulted at call sites.
//
// Merge semantics are deliberately lossy in the safe direction: when two
// paths disagree about a lock it moves to the path's unknown set, where
// it neither triggers reports nor suppresses later definite state. A
// function may legitimately exit holding a lock only by returning the
// lock's Unlock method value (the beginCollective pattern); the summary
// records that as exitHeld plus an unlocker result so callers continue
// the tracking.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// heldLock is one acquired lock on the current path, in acquisition order.
type heldLock struct {
	class string
	rlock bool
	pos   token.Pos
}

// lockState is the per-path abstract state.
type lockState struct {
	held     []heldLock
	deferred []string // classes released by pending defers at every exit
	unknown  map[string]bool
	// unlockers maps local variables bound to a lock's Unlock method value
	// (release := mu.Unlock, or an unlocker-returning call) to the class
	// they release.
	unlockers map[types.Object]string
	dead      bool
}

func newLockState() *lockState {
	return &lockState{unknown: make(map[string]bool), unlockers: make(map[types.Object]string)}
}

func (s *lockState) clone() *lockState {
	c := &lockState{
		held:      append([]heldLock(nil), s.held...),
		deferred:  append([]string(nil), s.deferred...),
		unknown:   make(map[string]bool, len(s.unknown)),
		unlockers: make(map[types.Object]string, len(s.unlockers)),
		dead:      s.dead,
	}
	for k := range s.unknown {
		c.unknown[k] = true
	}
	for k, v := range s.unlockers {
		c.unlockers[k] = v
	}
	return c
}

func (s *lockState) heldIdx(class string) int {
	for i, h := range s.held {
		if h.class == class {
			return i
		}
	}
	return -1
}

func (s *lockState) dropHeld(class string) {
	if i := s.heldIdx(class); i >= 0 {
		s.held = append(s.held[:i], s.held[i+1:]...)
	}
}

// mergeLockStates folds two path states at a join point. Locks the paths
// disagree on become unknown.
func mergeLockStates(a, b *lockState) *lockState {
	if a == nil || a.dead {
		return b
	}
	if b == nil || b.dead {
		return a
	}
	out := newLockState()
	for k := range a.unknown {
		out.unknown[k] = true
	}
	for k := range b.unknown {
		out.unknown[k] = true
	}
	for _, h := range a.held {
		if b.heldIdx(h.class) >= 0 {
			out.held = append(out.held, h)
		} else {
			out.unknown[h.class] = true
		}
	}
	for _, h := range b.held {
		if a.heldIdx(h.class) < 0 {
			out.unknown[h.class] = true
		}
	}
	for _, d := range a.deferred {
		if hasString(b.deferred, d) {
			out.deferred = append(out.deferred, d)
		} else {
			out.unknown[d] = true
		}
	}
	for _, d := range b.deferred {
		if !hasString(a.deferred, d) {
			out.unknown[d] = true
		}
	}
	for k, v := range a.unlockers {
		if b.unlockers[k] == v {
			out.unlockers[k] = v
		}
	}
	return out
}

func hasString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// lockSummary is the interprocedural fact sheet for one function.
type lockSummary struct {
	// acquires are the field- or package-level lock classes the function
	// (transitively) acquires; used for call-site lock-order edges and
	// re-acquire detection.
	acquires map[string]bool
	// releases are classes the function unlocks without having locked,
	// i.e. locks it releases on behalf of the caller.
	releases map[string]bool
	// blocks records that some path performs a blocking operation.
	blocks    bool
	blockDesc string
	// exitHeld are classes held at every normal exit (the function hands
	// the lock to its caller); unlockers maps result indices that return
	// the matching Unlock method value.
	exitHeld  []string
	unlockers map[int]string
}

func summariesEqual(a, b *lockSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.blocks != b.blocks || len(a.acquires) != len(b.acquires) ||
		len(a.releases) != len(b.releases) || len(a.exitHeld) != len(b.exitHeld) ||
		len(a.unlockers) != len(b.unlockers) {
		return false
	}
	for k := range a.acquires {
		if !b.acquires[k] {
			return false
		}
	}
	for k := range a.releases {
		if !b.releases[k] {
			return false
		}
	}
	for i, v := range a.exitHeld {
		if b.exitHeld[i] != v {
			return false
		}
	}
	for k, v := range a.unlockers {
		if b.unlockers[k] != v {
			return false
		}
	}
	return true
}

// lockExit is one normal (non-panicking) function exit seen by the walker.
type lockExit struct {
	held      []heldLock
	unlockers map[int]string // result index -> class, when the exit returns unlockers
}

// lockFlow walks one function body.
type lockFlow struct {
	c *concPass
	// silent suppresses findings (summary fixpoint); litMode marks a
	// function-literal body analyzed out of context, where
	// unlock-without-lock cannot be judged.
	silent  bool
	litMode bool
	fname   string
	sum     *lockSummary // facts accumulated during the walk
	exits   []lockExit
	// inComm suppresses channel-op blocking reports while walking a
	// select comm clause: the select statement is the blocking point.
	inComm bool
	// breakTargets / continueTargets collect states jumping to the
	// innermost breakable/continuable construct.
	breaks    [][]*lockState
	continues [][]*lockState
}

// analyzeFunc runs the reporting pass over one declared function.
func (c *concPass) analyzeFunc(fd *ast.FuncDecl) {
	f := &lockFlow{c: c, fname: fd.Name.Name, sum: newLockSummary()}
	f.runBody(fd.Body)
}

// analyzeLit analyzes a function literal out of context: locks held by
// the enclosing function are unknown, so unlock-without-lock is not
// judged, but everything acquired inside the literal is checked fully.
func (c *concPass) analyzeLit(lit *ast.FuncLit, silent bool) {
	f := &lockFlow{c: c, silent: silent, litMode: true, fname: "func literal", sum: newLockSummary()}
	f.runBody(lit.Body)
}

func newLockSummary() *lockSummary {
	return &lockSummary{acquires: make(map[string]bool), releases: make(map[string]bool)}
}

func (f *lockFlow) runBody(body *ast.BlockStmt) {
	st := newLockState()
	f.walkStmts(body.List, st)
	if !st.dead {
		f.exit(st, nil, body.Rbrace)
	}
}

// computeLockSummaries runs the silent fixpoint: each iteration re-walks
// every function with the summaries of the previous round visible at call
// sites, so delegation chains (helper locks, caller blocks) converge.
func (c *concPass) computeLockSummaries() map[types.Object]*lockSummary {
	sums := make(map[types.Object]*lockSummary)
	c.sums = sums
	for iter := 0; iter < maxSummaryIters; iter++ {
		changed := false
		for obj, fd := range c.funcDecls {
			f := &lockFlow{c: c, silent: true, fname: fd.Name.Name, sum: newLockSummary()}
			//amr:nolint det-map-order -- silent pass: findings are discarded, summaries converge to the same fixpoint in any order
			f.runBody(fd.Body)
			next := f.finishSummary()
			if !summariesEqual(sums[obj], next) {
				sums[obj] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// finishSummary folds the walk's exits into the summary: exitHeld and
// unlockers are kept only when every normal exit agrees, and local lock
// classes never escape the function.
func (f *lockFlow) finishSummary() *lockSummary {
	s := f.sum
	for class := range s.acquires {
		if localClass(class) {
			delete(s.acquires, class)
		}
	}
	for class := range s.releases {
		if localClass(class) {
			delete(s.releases, class)
		}
	}
	if len(f.exits) > 0 {
		first := f.exits[0]
		agree := true
		for _, e := range f.exits[1:] {
			if !exitsAgree(first, e) {
				agree = false
				break
			}
		}
		if agree {
			for _, h := range first.held {
				if !localClass(h.class) {
					s.exitHeld = append(s.exitHeld, h.class)
				}
			}
			sort.Strings(s.exitHeld)
			if len(first.unlockers) > 0 {
				s.unlockers = make(map[int]string, len(first.unlockers))
				for i, cl := range first.unlockers {
					if !localClass(cl) {
						s.unlockers[i] = cl
					}
				}
			}
		}
	}
	return s
}

func exitsAgree(a, b lockExit) bool {
	if len(a.held) != len(b.held) || len(a.unlockers) != len(b.unlockers) {
		return false
	}
	for i := range a.held {
		if a.held[i].class != b.held[i].class {
			return false
		}
	}
	for k, v := range a.unlockers {
		if b.unlockers[k] != v {
			return false
		}
	}
	return true
}

// exit handles one normal function exit: result expressions were already
// walked by the caller; pending defers release their locks, then any lock
// still held must be covered by a returned unlocker or it is a leak.
func (f *lockFlow) exit(st *lockState, ret *ast.ReturnStmt, pos token.Pos) {
	st = st.clone()
	for _, class := range st.deferred {
		if st.heldIdx(class) >= 0 {
			st.dropHeld(class)
		} else if !st.unknown[class] && !f.silent && !f.litMode {
			f.c.report(pos, ruleLockLeak, "error", class,
				"deferred unlock of %s but %s is no longer held at this return", class, class)
		}
	}
	unlockers := make(map[int]string)
	if ret != nil {
		for i, res := range ret.Results {
			if class := f.unlockerValue(res); class != "" {
				unlockers[i] = class
			}
		}
	}
	returned := make(map[string]bool, len(unlockers))
	for _, cl := range unlockers {
		returned[cl] = true
	}
	for _, h := range st.held {
		if st.unknown[h.class] || returned[h.class] {
			continue
		}
		if !f.silent {
			f.c.report(pos, ruleLockLeak, "error", h.class,
				"%s may still be held when %s returns (no unlock on this path)", h.class, f.fname)
		}
	}
	f.exits = append(f.exits, lockExit{held: append([]heldLock(nil), st.held...), unlockers: unlockers})
}

// unlockerValue recognizes expressions that evaluate to a lock's Unlock
// method value (mu.Unlock / c.collMu.Unlock), returning its class.
func (f *lockFlow) unlockerValue(expr ast.Expr) string {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return ""
	}
	return f.c.mutexRecv(sel.X)
}

// ---- statement walk ------------------------------------------------------

func (f *lockFlow) walkStmts(list []ast.Stmt, st *lockState) {
	for _, s := range list {
		if st.dead {
			return
		}
		f.walkStmt(s, st)
	}
}

func (f *lockFlow) walkStmt(s ast.Stmt, st *lockState) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		f.walkExpr(t.X, st)
	case *ast.SendStmt:
		f.walkExpr(t.Chan, st)
		f.walkExpr(t.Value, st)
		f.blockingOp(t.Arrow, "channel send", st)
	case *ast.AssignStmt:
		for _, rhs := range t.Rhs {
			f.walkExpr(rhs, st)
		}
		f.bindUnlockers(t, st)
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		f.walkExpr(t.X, st)
	case *ast.ReturnStmt:
		for _, res := range t.Results {
			f.walkExpr(res, st)
		}
		f.exit(st, t, t.Pos())
		st.dead = true
	case *ast.DeferStmt:
		f.walkDefer(t, st)
	case *ast.GoStmt:
		for _, arg := range t.Call.Args {
			f.walkExpr(arg, st)
		}
		if lit, ok := ast.Unparen(t.Call.Fun).(*ast.FuncLit); ok {
			f.c.analyzeLit(lit, f.silent)
		}
	case *ast.BlockStmt:
		f.walkStmts(t.List, st)
	case *ast.IfStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		f.walkExpr(t.Cond, st)
		then := st.clone()
		f.walkStmts(t.Body.List, then)
		els := st.clone()
		if t.Else != nil {
			f.walkStmt(t.Else, els)
		}
		*st = *mergeLockStates(then, els)
	case *ast.ForStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		if t.Cond != nil {
			f.walkExpr(t.Cond, st)
		}
		f.walkLoop(t.Body, t.Post, st, t.Cond == nil)
	case *ast.RangeStmt:
		f.walkExpr(t.X, st)
		f.walkLoop(t.Body, nil, st, false)
	case *ast.SwitchStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		if t.Tag != nil {
			f.walkExpr(t.Tag, st)
		}
		f.walkCases(t.Body, st, switchHasDefault(t.Body))
	case *ast.TypeSwitchStmt:
		if t.Init != nil {
			f.walkStmt(t.Init, st)
		}
		f.walkCases(t.Body, st, switchHasDefault(t.Body))
	case *ast.SelectStmt:
		if !selectHasDefault(t) {
			f.blockingOp(t.Pos(), "select without default", st)
		}
		f.walkCases(t.Body, st, true) // some case always runs once unblocked
	case *ast.BranchStmt:
		switch t.Tok {
		case token.BREAK:
			f.jump(&f.breaks, st)
		case token.CONTINUE:
			f.jump(&f.continues, st)
		case token.GOTO:
			st.dead = true // no label tracking; stay conservative
		}
	case *ast.LabeledStmt:
		f.walkStmt(t.Stmt, st)
	}
}

// walkLoop analyzes a loop body once and merges the result with the
// zero-iteration path; locks whose state differs across iterations become
// unknown. An infinite loop with no break leaves the path dead.
func (f *lockFlow) walkLoop(body *ast.BlockStmt, post ast.Stmt, st *lockState, infinite bool) {
	f.breaks = append(f.breaks, nil)
	f.continues = append(f.continues, nil)
	iter := st.clone()
	f.walkStmts(body.List, iter)
	n := len(f.continues) - 1
	for _, cs := range f.continues[n] {
		iter = mergeLockStates(iter, cs)
	}
	f.continues = f.continues[:n]
	if post != nil && !iter.dead {
		f.walkStmt(post, iter)
	}
	var after *lockState
	if infinite {
		after = &lockState{dead: true}
	} else {
		after = mergeLockStates(st.clone(), iter)
	}
	n = len(f.breaks) - 1
	for _, bs := range f.breaks[n] {
		after = mergeLockStates(after, bs)
	}
	f.breaks = f.breaks[:n]
	*st = *after
}

// walkCases merges all case bodies of a switch/select from the same entry
// state; withDefault marks constructs where some body always runs.
func (f *lockFlow) walkCases(body *ast.BlockStmt, st *lockState, withDefault bool) {
	f.breaks = append(f.breaks, nil)
	var merged *lockState
	if !withDefault {
		merged = st.clone()
	}
	for _, cs := range body.List {
		branch := st.clone()
		switch cc := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				f.walkExpr(e, branch)
			}
			f.walkStmts(cc.Body, branch)
		case *ast.CommClause:
			if cc.Comm != nil {
				f.inComm = true
				f.walkStmt(cc.Comm, branch)
				f.inComm = false
			}
			f.walkStmts(cc.Body, branch)
		}
		merged = mergeLockStates(merged, branch)
	}
	if merged == nil {
		merged = st.clone()
	}
	n := len(f.breaks) - 1
	for _, bs := range f.breaks[n] {
		merged = mergeLockStates(merged, bs)
	}
	f.breaks = f.breaks[:n]
	*st = *merged
}

func (f *lockFlow) jump(targets *[][]*lockState, st *lockState) {
	if n := len(*targets) - 1; n >= 0 {
		(*targets)[n] = append((*targets)[n], st.clone())
	}
	st.dead = true
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkDefer processes defer statements: deferred unlocks (direct, through
// a bound unlocker variable, or inside a deferred literal) register the
// release that happens at every exit.
func (f *lockFlow) walkDefer(d *ast.DeferStmt, st *lockState) {
	call := d.Call
	for _, arg := range call.Args {
		f.walkExpr(arg, st)
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Unlock" || fun.Sel.Name == "RUnlock" {
			if class := f.c.mutexRecv(fun.X); class != "" {
				st.deferred = append(st.deferred, class)
				return
			}
		}
	case *ast.Ident:
		if obj := f.c.pass.objOf(fun); obj != nil {
			if class, ok := st.unlockers[obj]; ok {
				st.deferred = append(st.deferred, class)
				return
			}
		}
	case *ast.FuncLit:
		// Unlocks inside a deferred literal run at exit like direct
		// deferred unlocks; the literal's other contents are not executed
		// under the current path's state, so they are not walked here.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			ce, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") {
				if class := f.c.mutexRecv(sel.X); class != "" {
					st.deferred = append(st.deferred, class)
				}
			}
			return true
		})
	}
}

// bindUnlockers records assignments that bind a local variable to a
// lock's release: either a method value (release := mu.Unlock) or the
// unlocker result of a summarized call (seq, release := c.begin()).
func (f *lockFlow) bindUnlockers(a *ast.AssignStmt, st *lockState) {
	bind := func(lhs ast.Expr, class string) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := f.c.pass.objOf(id)
		if obj == nil {
			return
		}
		if class == "" {
			delete(st.unlockers, obj) // overwritten binding
			return
		}
		st.unlockers[obj] = class
	}
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if sum := f.calleeSummary(call); sum != nil && len(sum.unlockers) > 0 {
				for i, lhs := range a.Lhs {
					bind(lhs, sum.unlockers[i])
				}
				return
			}
		}
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			bind(a.Lhs[i], f.unlockerValue(a.Rhs[i]))
		}
	}
}

// ---- expressions and calls -----------------------------------------------

func (f *lockFlow) walkExpr(e ast.Expr, st *lockState) {
	if e == nil || st.dead {
		return
	}
	switch t := e.(type) {
	case *ast.CallExpr:
		for _, arg := range t.Args {
			f.walkExpr(arg, st)
		}
		f.walkCall(t, st)
	case *ast.UnaryExpr:
		f.walkExpr(t.X, st)
		if t.Op == token.ARROW {
			f.blockingOp(t.Pos(), "channel receive", st)
		}
	case *ast.BinaryExpr:
		f.walkExpr(t.X, st)
		f.walkExpr(t.Y, st)
	case *ast.ParenExpr:
		f.walkExpr(t.X, st)
	case *ast.StarExpr:
		f.walkExpr(t.X, st)
	case *ast.IndexExpr:
		f.walkExpr(t.X, st)
		f.walkExpr(t.Index, st)
	case *ast.SliceExpr:
		f.walkExpr(t.X, st)
		f.walkExpr(t.Low, st)
		f.walkExpr(t.High, st)
		f.walkExpr(t.Max, st)
	case *ast.CompositeLit:
		for _, el := range t.Elts {
			f.walkExpr(el, st)
		}
	case *ast.KeyValueExpr:
		f.walkExpr(t.Value, st)
	case *ast.TypeAssertExpr:
		f.walkExpr(t.X, st)
	case *ast.FuncLit:
		// A literal used as a value (callback, AfterFunc body) runs in an
		// unknown context later; analyze it fresh.
		f.c.analyzeLit(t, f.silent)
	}
}

// blockingMethods are method names that block by design in this codebase
// (MPI waits, collectives, task suspension) or in the stdlib (Sleep,
// WaitGroup.Wait).
var blockingMethods = map[string]bool{
	"Wait": true, "Waitall": true, "Waitany": true, "Sleep": true,
	"Suspend": true, "Barrier": true, "Bcast": true, "Send": true,
	"Recv": true, "SendOwned": true, "AllreduceFloat64": true,
	"AllreduceInt": true, "Allgatherv": true, "AllgathervInt": true,
	"Gather": true, "Reduce": true,
}

// terminalFuncs end the goroutine; paths through them never reach a
// function exit, so locks they strand are not leaks.
var terminalFuncs = map[string]bool{
	"panic": true, "Fatal": true, "Fatalf": true, "Exit": true,
	"Goexit": true, "Fatalln": true,
}

// walkCall classifies one call: lock acquire/release first (so
// chanMutex.Lock is an acquire, not a blocking send), then bound
// unlockers, then blocking by name, then the callee's summary, then
// terminal functions. Anything else — cross-package, interface or
// unresolved — is assumed lock-neutral and non-blocking.
func (f *lockFlow) walkCall(call *ast.CallExpr, st *lockState) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		switch name {
		case "Lock", "RLock":
			if class := f.c.mutexRecv(fun.X); class != "" {
				f.acquire(class, name == "RLock", call.Pos(), st)
				return
			}
		case "Unlock", "RUnlock":
			if class := f.c.mutexRecv(fun.X); class != "" {
				f.release(class, call.Pos(), st)
				return
			}
		}
		if name == "Wait" && strings.Contains(strings.ToLower(types.ExprString(fun.X)), "cond") {
			// cond.Wait releases its own mutex while parked; holding just
			// that one lock is the intended pattern. Two or more is still
			// a block-under-lock.
			if len(st.held) >= 2 {
				f.blockingOp(call.Pos(), "call to cond Wait", st)
			}
			return
		}
		if blockingMethods[name] {
			f.blockingOp(call.Pos(), "call to "+name, st)
			return
		}
		if terminalFuncs[name] {
			st.dead = true
			return
		}
		f.applySummary(call, fun.Sel, st)
	case *ast.Ident:
		if obj := f.c.pass.objOf(fun); obj != nil {
			if class, ok := st.unlockers[obj]; ok {
				f.release(class, call.Pos(), st)
				return
			}
		}
		if terminalFuncs[fun.Name] {
			st.dead = true
			return
		}
		if blockingMethods[fun.Name] {
			f.blockingOp(call.Pos(), "call to "+fun.Name, st)
			return
		}
		f.applySummary(call, fun, st)
	case *ast.FuncLit:
		// Immediately-invoked literal: runs inline under the current
		// locks.
		f.walkStmts(fun.Body.List, st)
	}
}

// calleeSummary resolves a call to a summarized package function.
func (f *lockFlow) calleeSummary(call *ast.CallExpr) *lockSummary {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := f.c.pass.objOf(id)
	if obj == nil {
		return nil
	}
	return f.c.sums[obj]
}

// applySummary folds a package-local callee's summary into the path
// state: transitive acquisitions create lock-order edges (or re-acquire
// reports), releases-on-behalf drop held locks, blocking callees are
// blocking ops, and exit-held locks transfer to the caller.
func (f *lockFlow) applySummary(call *ast.CallExpr, id *ast.Ident, st *lockState) {
	obj := f.c.pass.objOf(id)
	if obj == nil {
		return
	}
	sum := f.c.sums[obj]
	if sum == nil {
		return
	}
	var acquired []string
	for class := range sum.acquires {
		acquired = append(acquired, class)
	}
	sort.Strings(acquired)
	for _, class := range acquired {
		f.sum.acquires[class] = true
		if st.heldIdx(class) >= 0 {
			if !f.silent {
				f.c.report(call.Pos(), ruleLockLeak, "error", class,
					"call to %s acquires %s while it is already held (self-deadlock)", id.Name, class)
			}
			continue
		}
		if !f.silent {
			for _, h := range st.held {
				if h.class != class {
					f.c.addEdge(h.class, class, call.Pos())
				}
			}
		}
	}
	for class := range sum.releases {
		if st.heldIdx(class) >= 0 {
			// The callee may release on our behalf; keep both reports
			// honest by moving the lock to unknown.
			st.dropHeld(class)
			st.unknown[class] = true
		}
		f.sum.releases[class] = true
	}
	if sum.blocks {
		// Report the primitive that ultimately blocks, not the whole
		// delegation chain: "call to recv (channel send)".
		leaf := sum.blockDesc
		if i := strings.LastIndex(leaf, "("); i >= 0 {
			leaf = strings.TrimRight(leaf[i+1:], ")")
		}
		desc := "call to " + id.Name
		if leaf != "" {
			desc += " (" + leaf + ")"
		}
		f.blockingOp(call.Pos(), desc, st)
	}
	for _, class := range sum.exitHeld {
		if st.heldIdx(class) < 0 {
			st.held = append(st.held, heldLock{class: class, pos: call.Pos()})
		}
	}
}

// acquire processes a Lock/RLock on class.
func (f *lockFlow) acquire(class string, rlock bool, pos token.Pos, st *lockState) {
	f.sum.acquires[class] = true
	if i := st.heldIdx(class); i >= 0 {
		if !rlock && !st.held[i].rlock && !f.silent {
			f.c.report(pos, ruleLockLeak, "error", class,
				"%s locked again while already held (self-deadlock)", class)
		}
		return
	}
	if !f.silent {
		for _, h := range st.held {
			f.c.addEdge(h.class, class, pos)
		}
	}
	delete(st.unknown, class)
	st.held = append(st.held, heldLock{class: class, rlock: rlock, pos: pos})
}

// release processes an Unlock/RUnlock (or bound unlocker call) on class.
func (f *lockFlow) release(class string, pos token.Pos, st *lockState) {
	if st.heldIdx(class) >= 0 {
		st.dropHeld(class)
		return
	}
	if st.unknown[class] {
		delete(st.unknown, class) // now definitely released
		return
	}
	f.sum.releases[class] = true
	if !f.silent && !f.litMode {
		f.c.report(pos, ruleLockLeak, "error", class,
			"%s unlocked but not held on this path", class)
	}
}

// blockingOp reports a blocking operation when any lock is definitely
// held, and records the fact in the summary either way.
func (f *lockFlow) blockingOp(pos token.Pos, desc string, st *lockState) {
	if st.dead || (f.inComm && strings.HasPrefix(desc, "channel ")) {
		return
	}
	if !f.sum.blocks {
		f.sum.blocks = true
		f.sum.blockDesc = desc
	}
	if f.silent || len(st.held) == 0 {
		return
	}
	classes := make([]string, len(st.held))
	for i, h := range st.held {
		classes[i] = h.class
	}
	f.c.report(pos, ruleBlockLock, "error", classes[len(classes)-1],
		"blocking %s while holding %s", desc, strings.Join(classes, ", "))
}
