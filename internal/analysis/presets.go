package analysis

// DefaultCostConfig returns the committed evaluation point for a
// driver's static performance profile: the per-rank instance counts of
// the repo's reference configuration (a 2x2x2-block rank with four
// remote neighbour messages), the payload bytes that encode the
// surface-to-volume split between ghost-face messages and whole-block
// exchange transfers, and the worker count of the variant's execution
// model. The perf goldens under testdata/golden/perf are rendered at
// exactly these points; amrperf applies user overrides on top.
func DefaultCostConfig(driver string) (CostConfig, bool) {
	// One rank of the miniAMR reference configuration: 8 owned blocks,
	// 4 remote neighbour messages per direction carrying 16 packed
	// segments, 24 same-rank copies and 24 domain-boundary faces, a
	// regrid epoch splitting 8 blocks, consolidating 8 and moving 2.
	miniamr := map[string]int{
		"blocks": 8, "msgs": 4, "segs": 16, "locals": 24,
		"bfaces": 24, "splits": 8, "merges": 8, "xfers": 2,
	}
	// A ghost-face message carries one face bundle (surface), a block
	// exchange carries a whole interior (volume).
	miniamrBytes := map[string]int{"msgs": 8192, "xfers": 16384}

	// One rank of the HYDRO reference configuration: 8 tiles in a row,
	// one neighbour message per direction carrying 8 edge segments, 8
	// same-rank edge copies.
	hydro := map[string]int{"tiles": 8, "msgs": 1, "segs": 8, "locals": 8}
	hydroBytes := map[string]int{"msgs": 4096}

	switch driver {
	case "dataflow", "forkjoin":
		return CostConfig{Workers: 16, Axes: miniamr, Bytes: miniamrBytes, CollectiveBytes: 8}, true
	case "mpionly":
		// One single-threaded rank per core.
		return CostConfig{Workers: 1, Axes: miniamr, Bytes: miniamrBytes, CollectiveBytes: 8}, true
	case "exchange":
		// The block-ownership handshake is a fixed four-message protocol
		// with no parallel regions.
		return CostConfig{Workers: 1, CollectiveBytes: 8}, true
	case "hydro-dataflow", "hydro-forkjoin":
		return CostConfig{Workers: 16, Axes: hydro, Bytes: hydroBytes, CollectiveBytes: 8}, true
	case "hydro-mpionly":
		return CostConfig{Workers: 1, Axes: hydro, Bytes: hydroBytes, CollectiveBytes: 8}, true
	}
	return CostConfig{Workers: 1}, false
}
