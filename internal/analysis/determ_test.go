package analysis

import (
	"go/token"
	"testing"
)

// TestDetermLintRuleIDs locks in the stable finding ids and severities of
// every determlint rule: the seeded corpus must trip all seven, each under
// its documented determlint/<rule> id, with det-waiver-stale as the only
// warning. Waivers and CI dashboards key on these ids.
func TestDetermLintRuleIDs(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{"testdata/determlint"}, false)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, []*Analyzer{DetermLint})

	wantSeverity := map[string]string{
		"determlint/" + ruleMapOrder:        "error",
		"determlint/" + ruleFloatOrder:      "error",
		"determlint/" + ruleUnseededRand:    "error",
		"determlint/" + ruleTimeSink:        "error",
		"determlint/" + ruleSelectSink:      "error",
		"determlint/" + ruleDetWaiverReason: "error",
		"determlint/" + ruleDetWaiverStale:  "warning",
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		sev, ok := wantSeverity[f.ID()]
		if !ok {
			t.Errorf("finding with unknown id %q: %s", f.ID(), f)
			continue
		}
		if f.Severity != sev {
			t.Errorf("id %s has severity %q, want %q", f.ID(), f.Severity, sev)
		}
		seen[f.ID()] = true
	}
	for id := range wantSeverity {
		if !seen[id] {
			t.Errorf("rule %s produced no finding on the seeded corpus", id)
		}
	}
}

// TestDetermLintRuntimePackagesClean pins the tentpole acceptance
// criterion: the packages that produce oracle checksums, fault decisions,
// and rendered reports are clean under determlint — genuine findings
// fixed, commutative folds waived with reasons, and no stale waivers.
func TestDetermLintRuntimePackagesClean(t *testing.T) {
	fset := token.NewFileSet()
	dirs := []string{
		".", "../driver", "../harness", "../sanitize", "../simnet",
		"../trace", "../hydro", "../amr/app", "../amr/mesh", "../mpi",
	}
	pkgs, err := Load(fset, dirs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(dirs))
	}
	for _, f := range Run(pkgs, []*Analyzer{DetermLint}) {
		t.Errorf("determlint finding in runtime package: %s", f)
	}
}
