package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// DepLint checks task.Spawn registrations: the declared in/out/inout
// dependency keys must be unique, regions declared read-only (in) must not
// be written by the closure, and the task body must not call back into the
// runtime's synchronisation entry points (Wait, WaitAccess, WaitKeys,
// Shutdown) — a task waiting on the runtime that is executing it
// deadlocks.
var DepLint = &Analyzer{
	Name: "deplint",
	Doc: "task.Spawn dependency keys must be unique and consistent with " +
		"the closure's accesses; no taskwait inside task bodies",
	run: runDepLint,
}

// access is one declared dependency of a Spawn call.
type access struct {
	mode string // "in", "out" or "inout"
	expr ast.Expr
	key  string // rendered key expression
}

func runDepLint(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Spawn" || len(call.Args) < 2 {
				return true
			}
			body, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			accs := collectAccesses(p.Fset, call.Args[2:])
			checkDuplicateKeys(p, accs)
			checkInWrites(p, accs, body)
			checkTaskwait(p, render(p.Fset, sel.X), body)
			return true
		})
	}
}

// collectAccesses resolves the access-list arguments of a Spawn call:
// task.In/Out/InOut key lists, possibly combined through task.Merge.
// Spread identifiers (accs..., task.Out(secs...)) carry keys the source
// does not spell out, so they contribute nothing.
func collectAccesses(fset *token.FileSet, args []ast.Expr) []access {
	var accs []access
	for _, arg := range args {
		call, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue // a bare []Access value; keys unknown
		}
		name := calleeName(call)
		switch name {
		case "In", "Out", "InOut":
			if call.Ellipsis.IsValid() {
				continue // In(keys...): key list unknown
			}
			mode := map[string]string{"In": "in", "Out": "out", "InOut": "inout"}[name]
			for _, key := range call.Args {
				accs = append(accs, access{mode: mode, expr: key, key: render(fset, key)})
			}
		case "Merge":
			accs = append(accs, collectAccesses(fset, call.Args)...)
		}
	}
	return accs
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func checkDuplicateKeys(p *Pass, accs []access) {
	seen := make(map[string]string) // rendered key -> mode
	for _, a := range accs {
		if prev, ok := seen[a.key]; ok {
			p.Reportf(a.expr.Pos(),
				"dependency key %s declared twice (%s and %s); declare each region once, as inout if both read and written",
				a.key, prev, a.mode)
			continue
		}
		seen[a.key] = a.mode
	}
}

// checkInWrites flags closure writes to variables declared as read-only
// (in) regions. Only keys that name a variable or field directly can be
// matched against write targets; symbolic keys (strings, composite
// literals) are not checked.
func checkInWrites(p *Pass, accs []access, body *ast.FuncLit) {
	inKeys := make(map[string]bool)
	for _, a := range accs {
		if a.mode != "in" {
			continue
		}
		switch ast.Unparen(a.expr).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			inKeys[a.key] = true
		}
	}
	if len(inKeys) == 0 {
		return
	}
	report := func(target ast.Expr) {
		base := writeBase(target)
		if base == nil {
			return
		}
		if key := render(p.Fset, base); inKeys[key] {
			p.Reportf(target.Pos(),
				"task writes to %s, which its Spawn declares as a read-only (in) region", key)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				report(l)
			}
		case *ast.IncDecStmt:
			report(n.X)
		}
		return true
	})
}

// writeBase strips indexing, dereference and parens from a write target,
// leaving the identifier or selector that names the written region.
func writeBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			if _, ok := e.(*ast.Ident); ok {
				return e
			}
			if _, ok := e.(*ast.SelectorExpr); ok {
				return e
			}
			return nil
		}
	}
}

// checkTaskwait flags synchronisation calls on the spawning runtime from
// inside the task body.
func checkTaskwait(p *Pass, runtimeExpr string, body *ast.FuncLit) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Wait", "WaitAccess", "WaitKeys", "Shutdown":
			if render(p.Fset, sel.X) == runtimeExpr {
				p.Reportf(call.Pos(),
					"task body calls %s.%s: waiting on the runtime from inside one of its tasks deadlocks",
					runtimeExpr, sel.Sel.Name)
			}
		}
		return true
	})
}

// render prints an expression exactly as written, so distinct composite
// literals render distinctly (types.ExprString abbreviates them).
func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
