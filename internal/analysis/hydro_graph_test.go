package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hydroGraphs extracts the driver graphs from the second application,
// failing the test on extraction findings.
func hydroGraphs(t *testing.T) []*Graph {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("..", "hydro")}, false)
	if err != nil {
		t.Fatal(err)
	}
	graphs, findings := ExtractGraphs(pkgs)
	for _, f := range findings {
		t.Errorf("graph finding on the real tree: %s", f)
	}
	return graphs
}

// TestHydroGoldenGraphs locks HYDRO's extracted task DAGs against the
// committed goldens. Refresh with:
//
//	go run ./cmd/amrgraph -update internal/analysis/testdata/golden ./internal/amr/app ./internal/hydro
func TestHydroGoldenGraphs(t *testing.T) {
	graphs := hydroGraphs(t)
	want := []string{"hydro-dataflow", "hydro-forkjoin", "hydro-mpionly"}
	var got []string
	for _, g := range graphs {
		got = append(got, g.Driver)
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("extracted drivers %v, want %v", got, want)
	}
	for _, g := range graphs {
		path := filepath.Join("testdata", "golden", g.Driver+".txt")
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (refresh with cmd/amrgraph -update): %v", err)
		}
		if text := g.Text(); text != string(golden) {
			t.Errorf("driver %s diverges from %s:\n--- got ---\n%s--- want ---\n%s",
				g.Driver, path, text, golden)
		}
	}
}

// TestHydroGraphStructure asserts the load-bearing data-flow edges of the
// second application, independent of golden churn: the communication and
// checksum chains must thread through the tile regions the same way the
// paper's task-graph figure promises for HYDRO.
func TestHydroGraphStructure(t *testing.T) {
	byDriver := make(map[string]*Graph)
	for _, g := range hydroGraphs(t) {
		byDriver[g.Driver] = g
	}
	df := byDriver["hydro-dataflow"]
	if df == nil {
		t.Fatal("no hydro-dataflow graph extracted")
	}
	edges := make(map[string]string)
	for _, e := range df.Edges {
		edges[e.From+" -> "+e.To] = e.Kind
	}
	wantFlow := []string{
		"communicate/pack -> communicate/send",
		"communicate/recv -> communicate/unpack",
		"communicate/unpack -> sweep/sweep",
		"sweep/sweep -> checksum/cksum-local",
		"checksum/cksum-local -> checksum/WaitKeys",
		"timestep/cfl-scan -> timestep/WaitKeys",
	}
	for _, e := range wantFlow {
		if edges[e] != "flow" {
			t.Errorf("edge %q = %q, want flow", e, edges[e])
		}
	}
	// Both the CFL reduction and the checksum close with a collective
	// after their taskwait.
	for _, phase := range []string{"timestep", "checksum"} {
		key := phase + "/WaitKeys -> " + phase + "/AllreduceFloat64"
		if edges[key] != "seq" {
			t.Errorf("edge %q = %q, want seq", key, edges[key])
		}
	}
}
