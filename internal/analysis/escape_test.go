package analysis

import (
	"go/token"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# miniamr/internal/mpi",
		"internal/mpi/p2p.go:216:66: tag escapes to heap:",
		"internal/mpi/p2p.go:216:66: tag escapes to heap:", // generic shape duplicate
		"internal/mpi/p2p.go:216:71: 16777216 escapes to heap:",
		"internal/mpi/p2p.go:100:6: can inline (*mailbox).deliver",
		"internal/mpi/p2p.go:94:25: msg does not escape",
		"internal/mpi/p2p.go:60:40: leaking param: buf",
		"internal/membuf/membuf.go:81:14: make([]T, n, 1 << c) escapes to heap:",
		"internal/mpi/request.go:71:16: moved to heap: r",
	}, "\n")
	sites := ParseEscapes(out)
	if len(sites) != 4 {
		t.Fatalf("got %d sites, want 4: %+v", len(sites), sites)
	}
	if sites[0].File != "internal/mpi/p2p.go" || sites[0].Line != 216 || sites[0].Col != 66 {
		t.Errorf("unexpected first site: %+v", sites[0])
	}
	if !strings.Contains(sites[3].Msg, "moved to heap") {
		t.Errorf("moved-to-heap line not parsed: %+v", sites[3])
	}
}

func TestCheckEscapes(t *testing.T) {
	hots := []HotFunc{
		{Name: "mpi.over", File: "a/b/hot.go", Budget: 1, Start: 10, End: 20,
			Pos: token.Position{Filename: "a/b/hot.go", Line: 10}},
		{Name: "mpi.exact", File: "a/b/hot.go", Budget: 1, Start: 30, End: 40,
			Pos: token.Position{Filename: "a/b/hot.go", Line: 30}},
		{Name: "mpi.under", File: "a/b/hot.go", Budget: 2, Start: 50, End: 60,
			Pos: token.Position{Filename: "a/b/hot.go", Line: 50}},
	}
	sites := []EscapeSite{
		{File: "b/hot.go", Line: 12, Col: 1, Msg: "x escapes to heap"},
		{File: "b/hot.go", Line: 13, Col: 2, Msg: "y escapes to heap"},
		{File: "b/hot.go", Line: 35, Col: 3, Msg: "z escapes to heap"},
		{File: "b/hot.go", Line: 55, Col: 4, Msg: "w escapes to heap"},
		{File: "other.go", Line: 12, Col: 1, Msg: "unrelated escapes to heap"},
	}
	findings := CheckEscapes(hots, sites)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.ID() != "perflint/perf-hot-alloc" {
			t.Errorf("finding ID = %q, want perflint/perf-hot-alloc", f.ID())
		}
		switch {
		case strings.Contains(f.Message, "mpi.over"):
			if f.Severity != "error" || !strings.Contains(f.Message, "over its //amr:hot budget of 1") {
				t.Errorf("over-budget finding wrong: %v", f)
			}
		case strings.Contains(f.Message, "mpi.under"):
			if f.Severity != "warning" || !strings.Contains(f.Message, "lower the pin") {
				t.Errorf("under-budget finding wrong: %v", f)
			}
		default:
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

// buildEscapes compiles pkgs with -gcflags=-m and returns the parsed
// escape sites. Diagnostics land on stderr; the build itself must pass.
func buildEscapes(t *testing.T, pkgs ...string) []EscapeSite {
	t.Helper()
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m %v: %v\n%s", pkgs, err, out)
	}
	return ParseEscapes(string(out))
}

// TestEscapeCorpus compiles the seeded violation package for real and
// checks that the over- and under-budget pins trip while the exact pin
// stays silent.
func TestEscapeCorpus(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("testdata", "escape")}, false)
	if err != nil {
		t.Fatal(err)
	}
	hots, malformed := CollectHotFuncs(pkgs)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	if len(hots) != 3 {
		t.Fatalf("got %d hot funcs, want 3: %+v", len(hots), hots)
	}
	sites := buildEscapes(t, "./internal/analysis/testdata/escape")
	findings := CheckEscapes(hots, sites)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (over + under): %v", len(findings), findings)
	}
	var sawOver, sawUnder bool
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, ".leak") && f.Severity == "error":
			sawOver = true
		case strings.Contains(f.Message, ".drifted") && f.Severity == "warning":
			sawUnder = true
		default:
			t.Errorf("unexpected finding: %v", f)
		}
	}
	if !sawOver || !sawUnder {
		t.Errorf("missing expected findings (over=%v under=%v): %v", sawOver, sawUnder, findings)
	}
}

// TestRepoHotBudgets is the static allocs/op gate: every //amr:hot
// budget in the real tree matches the compiler's proved escape sites
// exactly, so a new allocation on the send-receive path (or a stale pin
// after an optimization) fails here before any benchmark runs.
func TestRepoHotBudgets(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{"./..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	hots, malformed := CollectHotFuncs(pkgs)
	if len(malformed) != 0 {
		t.Fatalf("malformed //amr:hot directives: %v", malformed)
	}
	if len(hots) < 20 {
		t.Fatalf("suspiciously few //amr:hot functions (%d): directives lost?", len(hots))
	}
	sites := buildEscapes(t,
		"./internal/mpi", "./internal/tampi", "./internal/membuf", "./internal/driver")
	for _, f := range CheckEscapes(hots, sites) {
		t.Errorf("hot-path budget violation: %v", f)
	}
}
