package analysis

// conclint is the static concurrency verifier for the runtime substrate:
// the counterpart of the dynamic sanitizer (internal/sanitize) for bugs
// that only exist in interleavings a test run may never execute. It
// computes, per function, the set of locks held at every statement
// (sync.Mutex, sync.RWMutex and the channel-backed chanMutex, with
// defer-aware release tracking), extends the per-function facts through
// an interprocedural summary fixpoint, and reports seven rules:
//
//	conc-lock-cycle       lock-order cycles in the package lock graph
//	conc-block-under-lock blocking operations reached while a lock is held
//	conc-lock-leak        double lock, unlock-without-lock, lock held at return
//	conc-chan-close       double close, send on (possibly) closed channel,
//	                      close outside the //amr:chan owner= set
//	conc-goroutine-leak   go statements whose goroutine has no shutdown edge
//	conc-waiver-reason    //amr:nolint waiver without a "-- reason" string
//	conc-waiver-stale     waiver that matches no finding (warning)
//
// Findings are waivable with `//amr:nolint conc-rule[,conc-rule] -- reason`
// on the finding's line or the line above it; a waiver written on a mutex
// or channel declaration waives by lock/channel class across the package,
// which is how intentionally-blocking designs (the collectives serializing
// on collMu) are recorded once instead of per call site. Waivers must
// carry a reason and are audited: a waiver that suppresses nothing is
// itself reported.
//
// Like the rest of the suite the analysis is conservative: cross-package
// calls are opaque (assumed non-blocking and lock-neutral), control-flow
// merges that disagree about a lock move it to an "unknown" state that
// suppresses reporting rather than guessing, and loops are analyzed as
// one iteration merged with the zero-iteration path.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// ConcLint statically verifies the locking and channel discipline of the
// concurrency substrate.
var ConcLint = &Analyzer{
	Name: "conclint",
	Doc:  "verify lock ordering, blocking-under-lock, lock/channel lifecycle and goroutine shutdown",
	run:  runConcLint,
}

// Rule slugs. Stable: they are the JSON ids (conclint/<rule>) dashboards
// and waivers key on.
const (
	ruleLockCycle    = "conc-lock-cycle"
	ruleBlockLock    = "conc-block-under-lock"
	ruleLockLeak     = "conc-lock-leak"
	ruleChanClose    = "conc-chan-close"
	ruleGoLeak       = "conc-goroutine-leak"
	ruleWaiverReason = "conc-waiver-reason"
	ruleWaiverStale  = "conc-waiver-stale"
)

// concFinding is a pre-waiver finding. class carries the lock or channel
// class for decl-scoped waiver matching; it is empty when only line
// waivers apply.
type concFinding struct {
	pos   token.Pos
	rule  string
	sev   string
	class string
	msg   string
}

// concWaiver is one parsed //amr:nolint directive carrying conc-* rules.
type concWaiver struct {
	pos    token.Pos
	file   string
	line   int
	rules  map[string]bool
	reason string
	// classes holds lock/channel classes when the waiver sits on a mutex
	// or channel declaration; such waivers match by class package-wide.
	classes map[string]bool
	used    bool
}

// concPass is the shared state of one conclint run over one package.
type concPass struct {
	pass *Pass

	// fieldOwner maps a struct field object to its enclosing type name,
	// which qualifies lock and channel classes ("Comm.collMu").
	fieldOwner map[types.Object]string
	pkgLevel   map[types.Object]bool
	mutexObjs  map[types.Object]bool
	chanObjs   map[types.Object]bool
	funcDecls  map[types.Object]*ast.FuncDecl

	// owners maps an annotated channel class to the function names allowed
	// to close it (//amr:chan owner=...).
	owners  map[string][]string
	waivers []*concWaiver

	sums  map[types.Object]*lockSummary
	edges map[[2]string]token.Pos
	raw   []concFinding
}

func runConcLint(pass *Pass) {
	c := &concPass{
		pass:       pass,
		fieldOwner: make(map[types.Object]string),
		pkgLevel:   make(map[types.Object]bool),
		mutexObjs:  make(map[types.Object]bool),
		chanObjs:   make(map[types.Object]bool),
		funcDecls:  make(map[types.Object]*ast.FuncDecl),
		owners:     make(map[string][]string),
		edges:      make(map[[2]string]token.Pos),
	}
	c.scanDecls()
	c.scanDirectives()
	c.sums = c.computeLockSummaries()
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		c.analyzeFunc(fd)
		c.checkChanFlow(fd)
	})
	c.checkLockCycles()
	c.checkGoroutineLeaks()
	c.emit()
}

func (c *concPass) report(pos token.Pos, rule, sev, class, format string, args ...any) {
	c.raw = append(c.raw, concFinding{
		pos: pos, rule: rule, sev: sev, class: class,
		msg: fmt.Sprintf(format, args...),
	})
}

// ---- declaration scan ----------------------------------------------------

// isMutexType reports whether a declared type expression is lock-like:
// sync.Mutex, sync.RWMutex, or a package-local mutex type such as
// chanMutex. The check is syntactic because the loader type-checks
// packages in isolation.
func isMutexType(expr ast.Expr) bool {
	switch t := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if base, ok := t.X.(*ast.Ident); ok && base.Name == "sync" {
			return t.Sel.Name == "Mutex" || t.Sel.Name == "RWMutex"
		}
	case *ast.Ident:
		return strings.Contains(t.Name, "Mutex") || strings.Contains(t.Name, "mutex")
	}
	return false
}

func isChanType(expr ast.Expr) bool {
	_, ok := ast.Unparen(expr).(*ast.ChanType)
	return ok
}

// scanDecls indexes struct fields, package-level variables, function-local
// mutex declarations and function declarations for class resolution and
// summary lookup.
func (c *concPass) scanDecls() {
	info := c.pass.Pkg.Info
	for _, file := range c.pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := info.Defs[name]
						if obj == nil {
							continue
						}
						c.pkgLevel[obj] = true
						if vs.Type != nil && isMutexType(vs.Type) {
							c.mutexObjs[obj] = true
						}
						if vs.Type != nil && isChanType(vs.Type) {
							c.chanObjs[obj] = true
						}
					}
				}
			case *ast.FuncDecl:
				if obj := info.Defs[d.Name]; obj != nil && d.Body != nil {
					c.funcDecls[obj] = d
				}
			}
		}
		// Struct fields and function-local mutex declarations, wherever
		// they appear (top level or inside bodies).
		ast.Inspect(file, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.TypeSpec:
				st, ok := t.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						obj := info.Defs[name]
						if obj == nil {
							continue
						}
						c.fieldOwner[obj] = t.Name.Name
						if isMutexType(field.Type) {
							c.mutexObjs[obj] = true
						}
						if isChanType(field.Type) {
							c.chanObjs[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				if t.Type == nil || !isMutexType(t.Type) {
					return true
				}
				for _, name := range t.Names {
					if obj := info.Defs[name]; obj != nil {
						c.mutexObjs[obj] = true
					}
				}
			}
			return true
		})
	}
}

// lockClass names a lock (or channel) so that the same mutex reached
// through different receivers compares equal: struct fields become
// "Type.field", package-level variables keep their name, and local
// mutexes are pinned to their declaration line.
func (c *concPass) lockClass(expr ast.Expr) string {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := c.pass.objOf(x); obj != nil {
			return c.classOfObj(obj, x.Name)
		}
		return x.Name
	case *ast.SelectorExpr:
		if obj := c.pass.objOf(x.Sel); obj != nil {
			return c.classOfObj(obj, x.Sel.Name)
		}
		return types.ExprString(x)
	}
	return ""
}

func (c *concPass) classOfObj(obj types.Object, name string) string {
	if owner, ok := c.fieldOwner[obj]; ok {
		return owner + "." + name
	}
	if c.pkgLevel[obj] {
		return name
	}
	return name + "@" + strconv.Itoa(c.pass.Fset.Position(obj.Pos()).Line)
}

// localClass reports whether a class names a function-local mutex, which
// must not leak into cross-function summaries.
func localClass(class string) bool { return strings.Contains(class, "@") }

// mutexRecv resolves the receiver of a .Lock()/.Unlock() selector to a
// lock class, returning "" when the receiver is not a known mutex.
func (c *concPass) mutexRecv(expr ast.Expr) string {
	var obj types.Object
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = c.pass.objOf(x)
	case *ast.SelectorExpr:
		obj = c.pass.objOf(x.Sel)
	}
	if obj == nil || !c.mutexObjs[obj] {
		return ""
	}
	return c.lockClass(expr)
}

// ---- directives ----------------------------------------------------------

// scanDirectives parses //amr:nolint and //amr:chan comments and binds
// decl-scoped ones to the mutex/channel declarations they annotate (same
// line, or the line immediately below the directive).
func (c *concPass) scanDirectives() {
	type declSite struct {
		class string
		file  string
		line  int
	}
	var mutexDecls, chanDecls []declSite
	collect := func(obj types.Object, name string, kinds *[]declSite) {
		pos := c.pass.Fset.Position(obj.Pos())
		*kinds = append(*kinds, declSite{class: c.classOfObj(obj, name), file: pos.Filename, line: pos.Line})
	}
	for obj := range c.mutexObjs {
		collect(obj, obj.Name(), &mutexDecls)
	}
	for obj := range c.chanObjs {
		collect(obj, obj.Name(), &chanDecls)
	}

	for _, file := range c.pass.Pkg.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				text := cm.Text
				pos := c.pass.Fset.Position(cm.Pos())
				if rest, ok := strings.CutPrefix(text, "//amr:nolint"); ok {
					w := parseWaiver(rest, "conc-", cm.Pos(), pos)
					if w == nil {
						continue
					}
					// Decl scope: the directive sits on a lock/chan
					// declaration line or directly above one.
					for _, d := range append(mutexDecls, chanDecls...) {
						if d.file == pos.Filename && (d.line == pos.Line || d.line == pos.Line+1) {
							if w.classes == nil {
								w.classes = make(map[string]bool)
							}
							w.classes[d.class] = true
						}
					}
					c.waivers = append(c.waivers, w)
				}
				if rest, ok := strings.CutPrefix(text, "//amr:chan"); ok {
					names := parseChanOwners(rest)
					if len(names) == 0 {
						continue
					}
					for _, d := range chanDecls {
						if d.file == pos.Filename && (d.line == pos.Line || d.line == pos.Line+1) {
							c.owners[d.class] = names
						}
					}
				}
			}
		}
	}
}

// parseWaiver parses the tail of an //amr:nolint comment. Each analyzer
// owns the rule prefix it waives ("conc-" for conclint, "det-" for
// determlint); waivers naming no rule under the prefix belong to whatever
// tool owns them and are left alone.
func parseWaiver(rest, prefix string, pos token.Pos, p token.Position) *concWaiver {
	reason := ""
	if i := strings.Index(rest, " -- "); i >= 0 {
		reason = strings.TrimSpace(rest[i+4:])
		rest = rest[:i]
	}
	// Strip a trailing line comment (corpus files put // want markers on
	// directive lines).
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	rules := make(map[string]bool)
	for _, tok := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if strings.HasPrefix(tok, prefix) {
			rules[tok] = true
		}
	}
	if len(rules) == 0 {
		return nil
	}
	return &concWaiver{pos: pos, file: p.Filename, line: p.Line, rules: rules, reason: reason}
}

// parseChanOwners parses `owner=a,b` from an //amr:chan directive.
func parseChanOwners(rest string) []string {
	for _, f := range strings.Fields(rest) {
		if val, ok := strings.CutPrefix(f, "owner="); ok {
			var names []string
			for _, n := range strings.Split(val, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			return names
		}
	}
	return nil
}

// ---- lock-order cycles ---------------------------------------------------

// addEdge records "to acquired while holding from" in the package lock
// graph, keeping the first position seen for reporting.
func (c *concPass) addEdge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if _, ok := c.edges[key]; !ok {
		c.edges[key] = pos
	}
}

// checkLockCycles finds strongly-connected components of the lock graph
// and reports each cycle once, at the earliest edge inside the component.
func (c *concPass) checkLockCycles() {
	adj := make(map[string][]string)
	for key := range c.edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for n := range adj {
		sort.Strings(adj[n])
	}
	sccs := stronglyConnected(adj)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue // self-edges are reported as double locks, not cycles
		}
		sort.Strings(scc)
		in := make(map[string]bool, len(scc))
		for _, n := range scc {
			in[n] = true
		}
		// Report at the earliest edge position inside the component.
		var pos token.Pos
		for key, p := range c.edges {
			if in[key[0]] && in[key[1]] && (pos == token.NoPos || p < pos) {
				pos = p
			}
		}
		cycle := strings.Join(scc, " -> ") + " -> " + scc[0]
		//amr:nolint det-map-order -- pos is a min fold over the edge map; min is order-insensitive
		c.report(pos, ruleLockCycle, "error", scc[0],
			"lock-order cycle: %s (a consistent acquisition order prevents deadlock)", cycle)
	}
}

// stronglyConnected is Tarjan's algorithm over the lock graph.
func stronglyConnected(adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				n := len(stack) - 1
				w := stack[n]
				stack = stack[:n]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccs
}

// ---- goroutine leaks -----------------------------------------------------

// checkGoroutineLeaks flags go statements whose body spins in an infinite
// for loop with no reachable shutdown edge: no return, no break, and no
// channel receive that could deliver one. `for range ch` loops terminate
// when the channel closes and are never flagged.
func (c *concPass) checkGoroutineLeaks() {
	for _, file := range c.pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := c.goBody(g.Call)
			if body == nil {
				return true
			}
			if loop := findUnexitableLoop(body); loop != nil {
				c.report(g.Pos(), ruleGoLeak, "error", "",
					"goroutine has no shutdown edge: its infinite loop has no return, break or channel receive")
			}
			return true
		})
	}
}

// goBody resolves the body a go statement will run: a literal, or the
// declaration of a package function or method.
func (c *concPass) goBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj := c.pass.objOf(fun); obj != nil {
			if fd := c.funcDecls[obj]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj := c.pass.objOf(fun.Sel); obj != nil {
			if fd := c.funcDecls[obj]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// findUnexitableLoop returns a `for {}` loop in body that contains no
// return, break or channel receive, or nil if every loop has an exit.
func findUnexitableLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
			return true
		}
		exitable := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			switch t := m.(type) {
			case *ast.ReturnStmt:
				exitable = true
			case *ast.BranchStmt:
				if t.Tok == token.BREAK || t.Tok == token.GOTO {
					exitable = true
				}
			case *ast.UnaryExpr:
				if t.Op == token.ARROW {
					exitable = true // a receive can deliver shutdown
				}
			case *ast.RangeStmt:
				exitable = true // ranging a channel ends on close
			case *ast.FuncLit:
				return false // nested goroutines judged on their own
			}
			return !exitable
		})
		if !exitable {
			found = loop
			return false
		}
		return true
	})
	return found
}

// ---- waiver filtering and emission ---------------------------------------

// waived reports whether f is suppressed by a waiver, marking the waiver
// used. Line waivers match the finding's line or the line above it;
// decl-scoped waivers match the finding's lock/channel class anywhere in
// the package.
func (c *concPass) waived(f concFinding) bool {
	pos := c.pass.Fset.Position(f.pos)
	hit := false
	for _, w := range c.waivers {
		if !w.rules[f.rule] {
			continue
		}
		lineScoped := w.file == pos.Filename && (w.line == pos.Line || w.line+1 == pos.Line)
		declScoped := f.class != "" && w.classes[f.class]
		if lineScoped || declScoped {
			w.used = true
			hit = true // keep scanning: every matching waiver counts as used
		}
	}
	return hit
}

// emit applies waivers and reports the surviving findings plus the waiver
// audit: reason-less waivers are errors, unused waivers are warnings.
func (c *concPass) emit() {
	for _, f := range c.raw {
		if c.waived(f) {
			continue
		}
		c.pass.ReportRulef(f.pos, f.rule, f.sev, "%s", f.msg)
	}
	for _, w := range c.waivers {
		if w.reason == "" {
			c.pass.ReportRulef(w.pos, ruleWaiverReason, "error",
				"amr:nolint waiver missing a '-- reason' justification")
		}
		if !w.used {
			var rules []string
			for r := range w.rules {
				rules = append(rules, r)
			}
			sort.Strings(rules)
			c.pass.ReportRulef(w.pos, ruleWaiverStale, "warning",
				"stale waiver: no %s finding matches it", strings.Join(rules, ","))
		}
	}
}
