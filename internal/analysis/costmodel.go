package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file is perflint's static cost model: it evaluates an extracted
// driver graph under concrete instance counts (a CostConfig) into a
// Profile — the work-span numbers of the classic parallelism model plus
// the per-rank communication volume. One graph iteration is one pipeline
// pass (a stage for the main-loop phases; regrid phases ride along with
// their own axes), and every number is per rank.
//
// Definitions, following the work-span model:
//
//   - Work is the total number of task instances: the sum of every
//     node's instance count.
//   - Span is the critical-path length in task instances — the longest
//     dependence chain, where a parallel region contributes 1 (all its
//     instances can run at once) and a serial region contributes its
//     full count.
//   - MaxWidth is the largest set of instances that can execute
//     concurrently: a maximum-weight antichain of the dependence DAG,
//     where a parallel node weighs its instance count and a serial node
//     weighs 1.
//   - AvgWidth is Work/Span and SpeedupBound is min(Workers, Work/Span):
//     no schedule on Workers cores beats it.
//
// Graphs whose parallelism the extractor materialised as task nodes (the
// data-flow drivers) are evaluated over the whole dependence DAG, so
// independent phases overlap — exactly the parallelism the paper's model
// exposes. Graphs without task nodes (fork-join, MPI-only) compose by
// phase barriers: spans add, widths max — the fork-join execution model.

// CostConfig supplies the concrete per-rank instance counts a symbolic
// graph is evaluated under.
type CostConfig struct {
	// Workers is the core count per rank, bounding SpeedupBound.
	Workers int `json:"workers"`
	// Axes maps an //amr:par axis name to its per-rank instance count
	// (blocks, segs, msgs, ...).
	Axes map[string]int `json:"axes"`
	// Bytes maps an axis name to the payload bytes of one message whose
	// node scales by that axis; this is where surface-to-volume scaling
	// enters (a ghost-face message carries face cells, a block-exchange
	// message carries a whole block).
	Bytes map[string]int `json:"bytes,omitempty"`
	// CollectiveBytes is the payload of one collective.
	CollectiveBytes int `json:"collective_bytes,omitempty"`
}

// NodeCost is one node's evaluation: its resolved axis, instance count
// and scheduling class.
type NodeCost struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"` // node kind, or "par" for a synthetic region
	Axis   string `json:"axis,omitempty"`
	Count  int    `json:"count"`
	Serial bool   `json:"serial,omitempty"`
	Sends  int    `json:"sends,omitempty"` // messages sent per iteration
	Recvs  int    `json:"recvs,omitempty"`

	phase string
	node  *Node // nil for synthetic //amr:par regions
}

// Profile is the static performance profile of one driver graph.
type Profile struct {
	Driver  string         `json:"driver"`
	Mode    string         `json:"mode"` // "dataflow" (whole-DAG) or "barrier" (per-phase)
	Workers int            `json:"workers"`
	Axes    map[string]int `json:"axes"`

	Work         int     `json:"work"`
	Span         int     `json:"span"`
	MaxWidth     int     `json:"max_width"`
	AvgWidth     float64 `json:"avg_width"`
	SpeedupBound float64 `json:"speedup_bound"`

	Sends           int `json:"sends"`
	SendBytes       int `json:"send_bytes"`
	Recvs           int `json:"recvs"`
	RecvBytes       int `json:"recv_bytes"`
	Collectives     int `json:"collectives"`
	CollectiveBytes int `json:"collective_bytes"`

	Nodes    []NodeCost `json:"nodes"`
	Warnings []string   `json:"warnings,omitempty"`
}

// ProfileGraph evaluates one extracted graph under a cost configuration.
func ProfileGraph(g *Graph, cfg CostConfig) *Profile {
	p := &Profile{
		Driver:  g.Driver,
		Workers: cfg.Workers,
		Axes:    cfg.Axes,
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	costs := p.evalNodes(g, cfg)

	for i := range costs {
		c := &costs[i]
		p.Work += c.Count
		if c.Sends > 0 {
			p.Sends += c.Sends
			p.SendBytes += c.Sends * cfg.Bytes[c.Axis]
		}
		if c.Recvs > 0 {
			p.Recvs += c.Recvs
			p.RecvBytes += c.Recvs * cfg.Bytes[c.Axis]
		}
		if c.Kind == "collective" {
			p.Collectives++
			p.CollectiveBytes += cfg.CollectiveBytes
		}
	}

	if hasTaskNodes(g) {
		p.Mode = "dataflow"
		p.Span, p.MaxWidth = dagCost(g, costs)
	} else {
		p.Mode = "barrier"
		p.Span, p.MaxWidth = barrierCost(g, costs)
	}
	if p.Span > 0 {
		p.AvgWidth = float64(p.Work) / float64(p.Span)
	}
	p.SpeedupBound = p.AvgWidth
	if w := float64(p.Workers); p.SpeedupBound > w {
		p.SpeedupBound = w
	}
	p.Nodes = costs
	return p
}

// evalNodes resolves every node (and synthetic //amr:par region) to its
// axis, instance count and scheduling class. Resolution order: an
// //amr:par directive whose label matches the node's label within its
// phase wins; otherwise task nodes default to one parallel instance and
// everything else to one serial step. Par labels that match no node
// become synthetic parallel-region nodes of their phase.
func (p *Profile) evalNodes(g *Graph, cfg CostConfig) []NodeCost {
	parFor := make(map[string]*parSpec)
	matched := make(map[string]bool)
	for i := range g.pars {
		ps := &g.pars[i]
		key := ps.Phase + "\x00" + ps.Label
		if parFor[key] != nil {
			p.warnf("duplicate //amr:par label %s in phase %s", ps.Label, ps.Phase)
			continue
		}
		parFor[key] = ps
	}
	countOf := func(axis string) int {
		if axis == "" {
			return 1
		}
		n, ok := cfg.Axes[axis]
		if !ok {
			p.warnf("axis %s has no count in the configuration (using 1)", axis)
			return 1
		}
		if n < 1 {
			return 1
		}
		return n
	}

	var costs []NodeCost
	for _, n := range g.Nodes {
		c := NodeCost{ID: n.ID, Kind: n.Kind, Count: 1, Serial: n.Kind != "task", phase: n.Phase, node: n}
		if ps := parFor[n.Phase+"\x00"+n.Label]; ps != nil {
			matched[ps.Phase+"\x00"+ps.Label] = true
			c.Axis = ps.Axis
			c.Count = countOf(ps.Axis)
			c.Serial = ps.Serial
		}
		sends, recvs := false, false
		for _, ev := range n.Comm {
			switch ev.Kind {
			case "send":
				sends = true
			case "recv":
				recvs = true
			}
		}
		if sends {
			c.Sends = c.Count
		}
		if recvs {
			c.Recvs = c.Count
		}
		costs = append(costs, c)
	}
	for i := range g.pars {
		ps := &g.pars[i]
		key := ps.Phase + "\x00" + ps.Label
		if matched[key] || parFor[key] != ps {
			continue
		}
		costs = append(costs, NodeCost{
			ID: ps.Phase + "/" + ps.Label, Kind: "par",
			Axis: ps.Axis, Count: countOf(ps.Axis), Serial: ps.Serial,
			phase: ps.Phase,
		})
	}
	return costs
}

func (p *Profile) warnf(format string, args ...any) {
	p.Warnings = append(p.Warnings, fmt.Sprintf(format, args...))
}

func hasTaskNodes(g *Graph) bool {
	for _, n := range g.Nodes {
		if n.Kind == "task" {
			return true
		}
	}
	return false
}

// spanWeight is a node's contribution to a dependence chain: a parallel
// region is one step regardless of width, a serial region is one step
// per instance.
func spanWeight(c *NodeCost) int {
	if c.Serial {
		return c.Count
	}
	return 1
}

// widthWeight is a node's contribution to concurrent occupancy: every
// instance of a parallel region, one for a serial one.
func widthWeight(c *NodeCost) int {
	if c.Serial {
		return 1
	}
	return c.Count
}

// dagCost evaluates a task-bearing graph over its whole dependence DAG:
// span is the weighted longest path, width the maximum-weight antichain
// under reachability. Extraction emits edges forward in node order (the
// acyclicity invariant graphlint pins), so a single sweep suffices for
// the longest path; synthetic par nodes are isolated vertices.
func dagCost(g *Graph, costs []NodeCost) (span, width int) {
	idx := make(map[string]int, len(costs))
	for i := range costs {
		idx[costs[i].ID] = i
	}
	n := len(costs)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	preds := make([][]int, n)
	for _, e := range g.Edges {
		f, fok := idx[e.From]
		t, tok := idx[e.To]
		if !fok || !tok || f == t {
			continue
		}
		preds[t] = append(preds[t], f)
	}

	dist := make([]int, n)
	for i := 0; i < n; i++ {
		longest := 0
		for _, f := range preds[i] {
			if dist[f] > longest {
				longest = dist[f]
			}
			reach[f][i] = true
			for j := 0; j < n; j++ {
				if reach[j][f] {
					reach[j][i] = true
				}
			}
		}
		dist[i] = longest + spanWeight(&costs[i])
		if dist[i] > span {
			span = dist[i]
		}
	}

	weights := make([]int, n)
	for i := range costs {
		weights[i] = widthWeight(&costs[i])
	}
	width = maxWeightAntichain(weights, func(i, j int) bool { return reach[i][j] || reach[j][i] })
	return span, width
}

// barrierCost composes a graph without task nodes phase by phase, the
// fork-join execution model: a barrier ends every phase, so spans add
// and widths max. Within one phase the master thread issues the serial
// nodes and forks each parallel region, so the phase span is the sum of
// serial steps plus one step per parallel region, and the phase width is
// its widest single region.
func barrierCost(g *Graph, costs []NodeCost) (span, width int) {
	width = 1
	byPhase := make(map[string][]*NodeCost)
	for i := range costs {
		byPhase[costs[i].phase] = append(byPhase[costs[i].phase], &costs[i])
	}
	for _, ph := range g.Phases {
		phaseSpan := 0
		for _, c := range byPhase[ph.Name] {
			phaseSpan += spanWeight(c)
			if w := widthWeight(c); w > width {
				width = w
			}
		}
		span += phaseSpan
	}
	return span, width
}

// maxWeightAntichain finds the heaviest set of pairwise-incomparable
// vertices by branch and bound over the comparability relation. Driver
// graphs stay well under fifty nodes, so exact search is instant; the
// weight-descending order makes the remaining-weight bound tight.
func maxWeightAntichain(weights []int, comparable func(i, j int) bool) int {
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })
	suffix := make([]int, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + weights[order[i]]
	}
	best := 0
	var chosen []int
	var visit func(at, have int)
	visit = func(at, have int) {
		if have > best {
			best = have
		}
		if at == len(order) || have+suffix[at] <= best {
			return
		}
		v := order[at]
		ok := true
		for _, c := range chosen {
			if comparable(v, c) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, v)
			visit(at+1, have+weights[v])
			chosen = chosen[:len(chosen)-1]
		}
		visit(at+1, have)
	}
	visit(0, 0)
	return best
}

// Text renders the canonical golden form of a profile. Like the graph
// goldens it carries no positions, so only real model changes churn it.
func (p *Profile) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "driver %s\n", p.Driver)
	fmt.Fprintf(&b, "mode %s\n", p.Mode)
	fmt.Fprintf(&b, "workers %d\n", p.Workers)
	axes := make([]string, 0, len(p.Axes))
	for a := range p.Axes {
		axes = append(axes, a)
	}
	sort.Strings(axes)
	b.WriteString("axes")
	for _, a := range axes {
		fmt.Fprintf(&b, " %s=%d", a, p.Axes[a])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "work %d\n", p.Work)
	fmt.Fprintf(&b, "span %d\n", p.Span)
	fmt.Fprintf(&b, "width max=%d avg=%.2f\n", p.MaxWidth, p.AvgWidth)
	fmt.Fprintf(&b, "speedup-bound %.2f\n", p.SpeedupBound)
	fmt.Fprintf(&b, "comm sends=%d/%dB recvs=%d/%dB collectives=%d/%dB\n",
		p.Sends, p.SendBytes, p.Recvs, p.RecvBytes, p.Collectives, p.CollectiveBytes)
	b.WriteString("nodes\n")
	for i := range p.Nodes {
		c := &p.Nodes[i]
		fmt.Fprintf(&b, "  %s %s", c.ID, c.Kind)
		if c.Axis != "" {
			fmt.Fprintf(&b, " axis=%s", c.Axis)
		}
		fmt.Fprintf(&b, " count=%d", c.Count)
		if c.Serial {
			b.WriteString(" serial")
		}
		b.WriteByte('\n')
	}
	for _, w := range p.Warnings {
		fmt.Fprintf(&b, "warning %s\n", w)
	}
	return b.String()
}

// JSON renders the profile as one indented JSON object.
func (p *Profile) JSON() string {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return "{}" // the model contains no unmarshalable values
	}
	return string(out) + "\n"
}
