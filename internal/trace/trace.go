// Package trace records execution timelines the way the paper uses
// Extrae/Paraver: per-worker spans labelled with the task type or MPI call
// being executed. The recorder feeds the Figure 1-3 reproductions: an
// ASCII timeline renderer and quantitative statistics (per-phase time,
// worker utilisation, idle gaps, computation/communication overlap).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one recorded span on a worker lane.
type Event struct {
	Rank   int
	Worker int
	Label  string // task type or MPI call, e.g. "stencil", "MPI_Waitany"
	Start  time.Duration
	End    time.Duration
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so instrumented code needs no conditionals.
type Recorder struct {
	mu     sync.Mutex
	origin time.Time
	events []Event
}

// NewRecorder creates a recorder whose time origin is now.
func NewRecorder() *Recorder {
	return &Recorder{origin: time.Now()}
}

// Record adds a span. Safe for concurrent use; no-op on a nil recorder.
func (r *Recorder) Record(rank, worker int, label string, start, end time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{
		Rank:   rank,
		Worker: worker,
		Label:  label,
		Start:  start.Sub(r.origin),
		End:    end.Sub(r.origin),
	})
	r.mu.Unlock()
}

// Span runs fn and records its duration under the given lane and label.
func (r *Recorder) Span(rank, worker int, label string, fn func()) {
	if r == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	r.Record(rank, worker, label, start, time.Now())
}

// Events returns a copy of all recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Phase classifies a label into computation, communication, fault
// injection, or other, driving the overlap statistics.
func Phase(label string) string {
	switch {
	case strings.HasPrefix(label, "fault:"):
		// Injected-fault markers (chaos runs): neither computation nor
		// communication, kept distinct so they never count as overlap.
		return "fault"
	case strings.HasPrefix(label, "stencil"), strings.HasPrefix(label, "cksum"),
		strings.HasPrefix(label, "split"), strings.HasPrefix(label, "consolidate"):
		return "comp"
	case strings.HasPrefix(label, "MPI"), strings.HasPrefix(label, "send"),
		strings.HasPrefix(label, "recv"), strings.HasPrefix(label, "pack"),
		strings.HasPrefix(label, "unpack"), strings.HasPrefix(label, "local-copy"),
		strings.HasPrefix(label, "exchange"):
		return "comm"
	default:
		return "other"
	}
}

// Stats summarises a trace.
type Stats struct {
	// Span is the wall-clock extent from first start to last end.
	Span time.Duration
	// Lanes is the number of distinct (rank, worker) lanes.
	Lanes int
	// Busy is the summed busy time across lanes.
	Busy time.Duration
	// Utilization is Busy / (Span * Lanes).
	Utilization float64
	// ByLabel sums span time per label.
	ByLabel map[string]time.Duration
	// ByPhase sums span time per phase (comp/comm/other).
	ByPhase map[string]time.Duration
	// OverlapTime is the total time during which computation and
	// communication spans were simultaneously active (anywhere in the
	// job) — the effect the data-flow variant exists to create.
	OverlapTime time.Duration
	// MaxIdleGap is the longest interval in which a lane with recorded
	// activity on both sides sat idle.
	MaxIdleGap time.Duration
}

// ComputeStats derives summary statistics from events.
func ComputeStats(events []Event) Stats {
	st := Stats{ByLabel: map[string]time.Duration{}, ByPhase: map[string]time.Duration{}}
	if len(events) == 0 {
		return st
	}
	type lane struct{ rank, worker int }
	laneEvents := map[lane][]Event{}
	var minStart, maxEnd time.Duration
	minStart = events[0].Start
	for _, e := range events {
		if e.Start < minStart {
			minStart = e.Start
		}
		if e.End > maxEnd {
			maxEnd = e.End
		}
		st.Busy += e.End - e.Start
		st.ByLabel[e.Label] += e.End - e.Start
		st.ByPhase[Phase(e.Label)] += e.End - e.Start
		l := lane{e.Rank, e.Worker}
		laneEvents[l] = append(laneEvents[l], e)
	}
	st.Span = maxEnd - minStart
	st.Lanes = len(laneEvents)
	if st.Span > 0 && st.Lanes > 0 {
		st.Utilization = float64(st.Busy) / (float64(st.Span) * float64(st.Lanes))
	}

	// Idle gaps per lane.
	for _, evs := range laneEvents {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		var horizon time.Duration = -1
		for _, e := range evs {
			if horizon >= 0 && e.Start > horizon {
				if gap := e.Start - horizon; gap > st.MaxIdleGap {
					st.MaxIdleGap = gap
				}
			}
			if e.End > horizon {
				horizon = e.End
			}
		}
	}

	// Computation/communication overlap via a sweep over phase intervals.
	type edge struct {
		t     time.Duration
		phase string
		d     int
	}
	var edges []edge
	for _, e := range events {
		p := Phase(e.Label)
		if p == "other" {
			continue
		}
		edges = append(edges, edge{e.Start, p, +1}, edge{e.End, p, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d < edges[j].d // process ends before starts at ties
	})
	comp, comms := 0, 0
	var last time.Duration
	for _, ed := range edges {
		if comp > 0 && comms > 0 {
			st.OverlapTime += ed.t - last
		}
		last = ed.t
		if ed.phase == "comp" {
			comp += ed.d
		} else {
			comms += ed.d
		}
	}
	return st
}

// Render draws an ASCII timeline: one row per (rank, worker) lane, columns
// are equal time buckets, each cell showing the first letter of the label
// that dominates the bucket ('.' for idle). It is the reproduction's
// Paraver view.
func Render(events []Event, width int) string {
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	if width <= 0 {
		width = 100
	}
	var minStart, maxEnd time.Duration
	minStart = events[0].Start
	for _, e := range events {
		if e.Start < minStart {
			minStart = e.Start
		}
		if e.End > maxEnd {
			maxEnd = e.End
		}
	}
	span := maxEnd - minStart
	if span <= 0 {
		span = 1
	}
	type lane struct{ rank, worker int }
	laneSet := map[lane]bool{}
	for _, e := range events {
		laneSet[lane{e.Rank, e.Worker}] = true
	}
	lanes := make([]lane, 0, len(laneSet))
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].rank != lanes[j].rank {
			return lanes[i].rank < lanes[j].rank
		}
		return lanes[i].worker < lanes[j].worker
	})
	laneRow := map[lane]int{}
	for i, l := range lanes {
		laneRow[l] = i
	}

	// Per row and bucket, accumulate time per label.
	rows := make([]map[int]map[string]time.Duration, len(lanes))
	for i := range rows {
		rows[i] = map[int]map[string]time.Duration{}
	}
	bucketDur := span / time.Duration(width)
	if bucketDur <= 0 {
		bucketDur = 1
	}
	for _, e := range events {
		row := laneRow[lane{e.Rank, e.Worker}]
		for b := int((e.Start - minStart) / bucketDur); b < width; b++ {
			bStart := minStart + time.Duration(b)*bucketDur
			bEnd := bStart + bucketDur
			if e.End <= bStart {
				break
			}
			ov := minDur(e.End, bEnd) - maxDur(e.Start, bStart)
			if ov <= 0 {
				continue
			}
			if rows[row][b] == nil {
				rows[row][b] = map[string]time.Duration{}
			}
			rows[row][b][e.Label] += ov
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %v total, %d lanes, one column = %v\n", span, len(lanes), bucketDur)
	for i, l := range lanes {
		fmt.Fprintf(&sb, "r%02dw%02d |", l.rank, l.worker)
		for b := 0; b < width; b++ {
			best, bestDur := byte('.'), time.Duration(0)
			// Deterministic winner: iterate labels sorted.
			labels := make([]string, 0, len(rows[i][b]))
			for lab := range rows[i][b] {
				labels = append(labels, lab)
			}
			sort.Strings(labels)
			for _, lab := range labels {
				if d := rows[i][b][lab]; d > bestDur {
					best, bestDur = lab[0], d
				}
			}
			sb.WriteByte(best)
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
