package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteCSV serialises events as "rank,worker,label,start_ns,end_ns" lines
// with a header, the format cmd/traceview reads back.
func WriteCSV(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "rank,worker,label,start_ns,end_ns"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d,%d\n",
			e.Rank, e.Worker, e.Label, e.Start.Nanoseconds(), e.End.Nanoseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format.
func ReadCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 || text == "" { // header
			continue
		}
		parts := strings.SplitN(text, ",", 5)
		if len(parts) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", line, len(parts))
		}
		rank, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: rank: %w", line, err)
		}
		worker, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: worker: %w", line, err)
		}
		start, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: start: %w", line, err)
		}
		end, err := strconv.ParseInt(parts[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: end: %w", line, err)
		}
		events = append(events, Event{
			Rank: rank, Worker: worker, Label: parts[2],
			Start: time.Duration(start), End: time.Duration(end),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
