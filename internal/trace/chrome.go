package trace

import (
	"encoding/json"
	"io"
)

// chromeEvent is one complete event ("ph":"X") of the Chrome Trace Event
// format, the JSON understood by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	// Timestamps and durations are in microseconds.
	TS  float64 `json:"ts"`
	Dur float64 `json:"dur"`
	PID int     `json:"pid"` // rank
	TID int     `json:"tid"` // worker
	Cat string  `json:"cat"` // phase classification (comp/comm/other)
}

// WriteChromeTrace serialises events in the Chrome Trace Event format so
// recordings can be explored interactively in chrome://tracing or
// https://ui.perfetto.dev — the reproduction's graphical Paraver.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := make([]chromeEvent, len(events))
	for i, e := range events {
		out[i] = chromeEvent{
			Name:  e.Label,
			Phase: "X",
			TS:    float64(e.Start.Microseconds()),
			Dur:   float64((e.End - e.Start).Microseconds()),
			PID:   e.Rank,
			TID:   e.Worker,
			Cat:   Phase(e.Label),
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
