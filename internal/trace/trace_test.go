package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, 0, "x", time.Now(), time.Now())
	ran := false
	r.Span(0, 0, "x", func() { ran = true })
	if !ran {
		t.Error("Span on nil recorder skipped fn")
	}
	if r.Events() != nil || r.Len() != 0 {
		t.Error("nil recorder should report no events")
	}
}

func TestRecordAndEventsSorted(t *testing.T) {
	r := NewRecorder()
	base := time.Now()
	r.Record(0, 0, "b", base.Add(ms(10)), base.Add(ms(20)))
	r.Record(0, 1, "a", base, base.Add(ms(5)))
	evs := r.Events()
	if len(evs) != 2 || r.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Label != "a" || evs[1].Label != "b" {
		t.Error("events not sorted by start")
	}
}

func TestSpanMeasures(t *testing.T) {
	r := NewRecorder()
	r.Span(1, 2, "stencil", func() { time.Sleep(2 * time.Millisecond) })
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatal("no event")
	}
	e := evs[0]
	if e.Rank != 1 || e.Worker != 2 || e.Label != "stencil" {
		t.Errorf("event = %+v", e)
	}
	if e.End-e.Start < time.Millisecond {
		t.Errorf("span too short: %v", e.End-e.Start)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Span(i, 0, "w", func() {})
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 1000 {
		t.Errorf("events = %d, want 1000", r.Len())
	}
}

func TestPhaseClassification(t *testing.T) {
	cases := map[string]string{
		"stencil":     "comp",
		"cksum-local": "comp",
		"split":       "comp",
		"pack":        "comm",
		"unpack":      "comm",
		"send":        "comm",
		"recv":        "comm",
		"MPI_Waitany": "comm",
		"local-copy":  "comm",
		"exchange":    "comm",
		"misc":        "other",
	}
	for label, want := range cases {
		if got := Phase(label); got != want {
			t.Errorf("Phase(%q) = %q, want %q", label, got, want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	evs := []Event{
		{Rank: 0, Worker: 0, Label: "stencil", Start: 0, End: ms(10)},
		{Rank: 0, Worker: 1, Label: "send", Start: ms(2), End: ms(6)},
		{Rank: 0, Worker: 0, Label: "stencil", Start: ms(14), End: ms(20)},
	}
	st := ComputeStats(evs)
	if st.Span != ms(20) {
		t.Errorf("Span = %v", st.Span)
	}
	if st.Lanes != 2 {
		t.Errorf("Lanes = %d", st.Lanes)
	}
	if st.Busy != ms(20) {
		t.Errorf("Busy = %v", st.Busy)
	}
	if st.ByPhase["comp"] != ms(16) || st.ByPhase["comm"] != ms(4) {
		t.Errorf("ByPhase = %v", st.ByPhase)
	}
	// Overlap: send (2-6) overlaps stencil (0-10) for 4ms.
	if st.OverlapTime != ms(4) {
		t.Errorf("OverlapTime = %v, want 4ms", st.OverlapTime)
	}
	// Idle gap on worker 0 between 10 and 14.
	if st.MaxIdleGap != ms(4) {
		t.Errorf("MaxIdleGap = %v, want 4ms", st.MaxIdleGap)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Errorf("Utilization = %v", st.Utilization)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(nil)
	if st.Span != 0 || st.Lanes != 0 || st.OverlapTime != 0 {
		t.Error("empty stats not zero")
	}
}

func TestOverlapExcludesSequentialPhases(t *testing.T) {
	evs := []Event{
		{Label: "stencil", Start: 0, End: ms(5)},
		{Label: "send", Start: ms(5), End: ms(10)},
	}
	if st := ComputeStats(evs); st.OverlapTime != 0 {
		t.Errorf("sequential phases reported overlap %v", st.OverlapTime)
	}
}

func TestRender(t *testing.T) {
	evs := []Event{
		{Rank: 0, Worker: 0, Label: "stencil", Start: 0, End: ms(50)},
		{Rank: 0, Worker: 1, Label: "unpack", Start: ms(50), End: ms(100)},
		{Rank: 1, Worker: 0, Label: "send", Start: ms(25), End: ms(75)},
	}
	out := Render(evs, 20)
	if !strings.Contains(out, "r00w00") || !strings.Contains(out, "r01w00") {
		t.Errorf("missing lanes:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 lanes
		t.Errorf("got %d lines", len(lines))
	}
	// Lane r00w00: first half 's' (stencil), second half idle.
	row := lines[1]
	if !strings.Contains(row, "s") {
		t.Errorf("lane 0 missing stencil marks: %s", row)
	}
	if Render(nil, 10) != "(empty trace)\n" {
		t.Error("empty render")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	evs := []Event{
		{Rank: 0, Worker: 0, Label: "stencil", Start: 0, End: ms(1)},
		{Rank: 3, Worker: 2, Label: "MPI_Isend", Start: ms(2), End: ms(3)},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round trip lost events: %d", len(got))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], evs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("header\nbad,line\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadCSV(strings.NewReader("header\nx,0,l,0,1\n")); err == nil {
		t.Error("bad rank accepted")
	}
	evs, err := ReadCSV(strings.NewReader("rank,worker,label,start_ns,end_ns\n"))
	if err != nil || len(evs) != 0 {
		t.Error("header-only file should parse to empty")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	evs := []Event{
		{Rank: 0, Worker: 1, Label: "stencil", Start: ms(1), End: ms(3)},
		{Rank: 2, Worker: 0, Label: "MPI_Waitany", Start: ms(2), End: ms(5)},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("events = %d", len(decoded))
	}
	first := decoded[0]
	if first["name"] != "stencil" || first["ph"] != "X" || first["cat"] != "comp" {
		t.Errorf("first event = %v", first)
	}
	if first["ts"].(float64) != 1000 || first["dur"].(float64) != 2000 {
		t.Errorf("timing = %v/%v", first["ts"], first["dur"])
	}
	if decoded[1]["pid"].(float64) != 2 || decoded[1]["cat"] != "comm" {
		t.Errorf("second event = %v", decoded[1])
	}
}
