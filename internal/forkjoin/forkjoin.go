// Package forkjoin implements the OpenMP-style fork-join worker model used
// by the paper's MPI+OMP comparison variant: parallel loops with static
// scheduling over a fixed pool of threads, and a serial master in between.
//
// Matching the paper's description of the hybrid fork-join miniAMR, all
// parallel regions use static chunking (iteration space divided into one
// contiguous chunk per thread) and all MPI communication happens outside
// parallel regions, on the master.
package forkjoin

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker threads executing parallel-for regions.
// The zero value is not usable; create pools with New.
type Pool struct {
	workers int
	//amr:chan owner=Close
	work chan func(worker int)
	wg   sync.WaitGroup // tracks pool lifetime
}

// New creates a pool with the given number of workers.
func New(workers int) (*Pool, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("forkjoin: workers must be positive, got %d", workers)
	}
	p := &Pool{workers: workers, work: make(chan func(int))}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(worker int) {
			defer p.wg.Done()
			for fn := range p.work {
				fn(worker)
			}
		}(w)
	}
	return p, nil
}

// MustNew is New but panics on invalid arguments.
func MustNew(workers int) *Pool {
	p, err := New(workers)
	if err != nil {
		panic(err)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// For runs body(i) for every i in [0, n) across the pool with static
// scheduling: worker w executes the contiguous chunk
// [w*n/W, (w+1)*n/W). It returns when every iteration has completed (the
// implicit barrier at the end of an OpenMP for). Panics in the body are
// re-panicked on the caller after the region drains.
func (p *Pool) For(n int, body func(i int)) {
	p.ForWorker(n, func(i, _ int) { body(i) })
}

// ForDynamic runs body(i) for every i in [0, n) with dynamic scheduling:
// workers repeatedly claim chunks of the given size from a shared counter,
// the behaviour of OpenMP's schedule(dynamic, chunk). Useful when
// iteration costs vary (blocks at different refinement depths); costs a
// shared atomic instead of static's zero coordination. chunk < 1 selects 1.
func (p *Pool) ForDynamic(n, chunk int, body func(i, worker int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	workers := p.workers
	if workers > (n+chunk-1)/chunk {
		workers = (n + chunk - 1) / chunk
	}
	for c := 0; c < workers; c++ {
		wg.Add(1)
		p.work <- func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstPanic == nil {
						firstPanic = r
					}
					mu.Unlock()
				}
			}()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i, worker)
				}
			}
		}
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// ForWorker is For with the executing worker id passed to the body, for
// per-thread scratch storage.
func (p *Pool) ForWorker(n int, body func(i, worker int)) {
	if n <= 0 {
		return
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstPanic any
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		wg.Add(1)
		p.work <- func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstPanic == nil {
						firstPanic = r
					}
					mu.Unlock()
				}
			}()
			for i := lo; i < hi; i++ {
				body(i, worker)
			}
		}
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// Close shuts the pool down. The pool must be idle (no region in flight).
func (p *Pool) Close() {
	close(p.work)
	p.wg.Wait()
}
