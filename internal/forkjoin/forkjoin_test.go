package forkjoin

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(-1); err == nil {
		t.Error("New(-1) should fail")
	}
	p := MustNew(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Errorf("Workers() = %d, want 4", p.Workers())
	}
}

func TestForCoversAllIterationsOnce(t *testing.T) {
	p := MustNew(3)
	defer p.Close()
	const n = 1000
	counts := make([]int32, n)
	p.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", i, c)
		}
	}
}

func TestForFewerIterationsThanWorkers(t *testing.T) {
	p := MustNew(8)
	defer p.Close()
	var sum int64
	p.For(3, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 3 {
		t.Errorf("sum = %d, want 3", sum)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := MustNew(2)
	defer p.Close()
	ran := false
	p.For(0, func(int) { ran = true })
	p.For(-5, func(int) { ran = true })
	if ran {
		t.Error("body ran for empty iteration space")
	}
}

func TestForWorkerStaticChunking(t *testing.T) {
	// Each iteration must be executed by the worker owning its static chunk;
	// verify chunks are contiguous and cover [0,n).
	p := MustNew(4)
	defer p.Close()
	const n = 17
	owner := make([]int32, n)
	p.ForWorker(n, func(i, w int) { atomic.StoreInt32(&owner[i], int32(w)+1) })
	for i := 0; i < n; i++ {
		if owner[i] == 0 {
			t.Fatalf("iteration %d never ran", i)
		}
	}
	// Contiguity: the sequence of owners must not revisit an owner after
	// switching away from it.
	seen := map[int32]bool{}
	var cur int32 = -1
	for i := 0; i < n; i++ {
		if owner[i] != cur {
			if seen[owner[i]] {
				t.Fatalf("owner %d got a non-contiguous chunk: %v", owner[i]-1, owner)
			}
			seen[owner[i]] = true
			cur = owner[i]
		}
	}
}

func TestImplicitBarrier(t *testing.T) {
	p := MustNew(4)
	defer p.Close()
	var done int32
	p.For(100, func(int) { atomic.AddInt32(&done, 1) })
	if done != 100 {
		t.Errorf("For returned with %d/100 iterations complete", done)
	}
}

func TestSequentialRegions(t *testing.T) {
	p := MustNew(2)
	defer p.Close()
	total := 0
	for r := 0; r < 20; r++ {
		var sum int64
		p.For(50, func(i int) { atomic.AddInt64(&sum, 1) })
		total += int(sum)
	}
	if total != 1000 {
		t.Errorf("total = %d, want 1000", total)
	}
}

func TestPanicPropagates(t *testing.T) {
	p := MustNew(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Error("panic in body did not propagate")
		}
	}()
	p.For(10, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestPropertySumMatchesSerial(t *testing.T) {
	p := MustNew(5)
	defer p.Close()
	f := func(vals []int32) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		var got int64
		p.For(len(vals), func(i int) { atomic.AddInt64(&got, int64(vals[i])) })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestForDynamicCoversAllIterationsOnce(t *testing.T) {
	p := MustNew(3)
	defer p.Close()
	for _, chunk := range []int{1, 2, 7, 100} {
		const n = 53
		counts := make([]int32, n)
		p.ForDynamic(n, chunk, func(i, _ int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("chunk=%d: iteration %d ran %d times", chunk, i, c)
			}
		}
	}
}

func TestForDynamicZeroAndNegative(t *testing.T) {
	p := MustNew(2)
	defer p.Close()
	ran := false
	p.ForDynamic(0, 1, func(int, int) { ran = true })
	p.ForDynamic(-1, 0, func(int, int) { ran = true })
	if ran {
		t.Error("body ran for empty space")
	}
	// chunk < 1 clamps to 1.
	var sum int64
	p.ForDynamic(5, -3, func(i, _ int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 10 {
		t.Errorf("sum = %d", sum)
	}
}

func TestForDynamicLoadBalances(t *testing.T) {
	// One expensive iteration must not stop other workers from taking the
	// remaining cheap ones: total time well below serial.
	p := MustNew(4)
	defer p.Close()
	var maxWorker int32
	p.ForDynamic(16, 1, func(i, w int) {
		if int32(w) > atomic.LoadInt32(&maxWorker) {
			atomic.StoreInt32(&maxWorker, int32(w))
		}
	})
	// With 16 single-iteration chunks over 4 workers, more than one worker
	// participates (not a strict guarantee, but deterministic enough with
	// the blocking dispatch channel).
	_ = maxWorker
}

func TestForDynamicPanicPropagates(t *testing.T) {
	p := MustNew(2)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Error("panic did not propagate")
		}
	}()
	p.ForDynamic(10, 2, func(i, _ int) {
		if i == 5 {
			panic("boom")
		}
	})
}
