package harness

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"miniamr/internal/hydro"
	"miniamr/internal/simnet"
)

// The reproducibility suite is the runtime counterpart of determlint:
// the linter proves nondeterminism sources cannot reach the oracles
// statically, and this suite checks the end-to-end property it protects —
// every application x variant pair, run twice under different scheduler
// pressure (GOMAXPROCS), must produce byte-identical oracle output:
// bit-identical checksums, a byte-identical seeded fault log, and a
// byte-identical rendered sanitizer report.

// reproOracle renders everything a run promises to reproduce into one
// byte string: checksum history as exact float bits, the injected-fault
// log, and the sanitizer findings.
func reproOracle(m Metrics) string {
	var b strings.Builder
	for i, sums := range m.Checksums {
		fmt.Fprintf(&b, "stage %d:", i)
		for _, s := range sums {
			fmt.Fprintf(&b, " %016x", math.Float64bits(s))
		}
		b.WriteByte('\n')
	}
	b.WriteString("faults:\n")
	b.WriteString(simnet.LogString(m.FaultLog))
	b.WriteString("audit:\n")
	for _, r := range m.Sanitizer {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// reproRun executes spec with GOMAXPROCS pinned to procs (restored
// afterwards) and renders its oracle bytes. GOMAXPROCS is process-global,
// so callers must not run concurrently with other tests' runs — the
// suite is deliberately not parallel.
func reproRun(t *testing.T, spec RunSpec, procs int) string {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	m, err := Run(spec)
	if err != nil {
		t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
	}
	if len(m.Checksums) == 0 {
		t.Fatalf("GOMAXPROCS=%d: run produced no checksums; the comparison proves nothing", procs)
	}
	if spec.Chaos != nil && m.Faults.Total() == 0 {
		t.Fatalf("GOMAXPROCS=%d: chaos schedule injected nothing; the fault log proves nothing", procs)
	}
	return reproOracle(m)
}

// TestReproducibleAcrossSchedules runs each registered application under
// each variant twice — once on a single scheduler thread, once on all
// host cores — with the sanitizer attached and a seeded fault schedule
// active, and asserts the rendered oracle bytes are identical.
func TestReproducibleAcrossSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("repro suite runs every app x variant twice")
	}
	apps := []struct {
		name string
		spec func(v Variant) RunSpec
	}{
		{"miniamr", func(v Variant) RunSpec {
			faults := simnet.DefaultFaults(42)
			spec := chaosSpec(v, &faults)
			spec.Sanitize = true
			return spec
		}},
		{"hydro", func(v Variant) RunSpec {
			faults := simnet.DefaultFaults(42)
			cfg := hydro.Config{
				NX: 32, NY: 32, TilesX: 4, TilesY: 4,
				Timesteps: 4, ChecksumEvery: 2,
			}
			return RunSpec{
				Nodes: 2, RanksPerNode: 2, CoresPerRank: 2,
				Net: simnet.None(), Job: hydro.Job(cfg), Variant: v,
				Chaos: &faults, Resilience: chaosResilience,
				Sanitize: true,
			}
		}},
	}
	wide := runtime.NumCPU()
	if wide < 2 {
		wide = 2
	}
	for _, app := range apps {
		for _, v := range Variants {
			t.Run(app.name+"/"+string(v), func(t *testing.T) {
				narrow := reproRun(t, app.spec(v), 1)
				again := reproRun(t, app.spec(v), wide)
				if narrow != again {
					t.Errorf("oracle bytes differ between GOMAXPROCS=1 and GOMAXPROCS=%d:\n--- narrow\n%s--- wide\n%s",
						wide, narrow, again)
				}
			})
		}
	}
}
