package harness

import (
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"miniamr/internal/hydro"
	"miniamr/internal/simnet"
)

// TestMain lets the multi-process suite re-execute this test binary as a
// wire child: the parent spawns os.Executable(), so the child role must
// take over before the test framework does anything.
func TestMain(m *testing.M) {
	MaybeRunWireChild() // exits inside when this process is a child
	os.Exit(m.Run())
}

// multiProcTimeout is generous against race-detector and loaded-host
// slowdowns; a healthy run finishes in well under a second.
const multiProcTimeout = 90 * time.Second

// checksumBits renders a checksum history as exact float bits, the form
// the cross-process comparison diffs.
func checksumBits(sums [][]float64) string {
	var b strings.Builder
	for i, row := range sums {
		fmt.Fprintf(&b, "stage %d:", i)
		for _, s := range row {
			fmt.Fprintf(&b, " %016x", math.Float64bits(s))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// oracleApps is the application matrix of the cross-process oracle:
// the same specs the in-process oracles use, minus instruments.
func oracleApps() []struct {
	name string
	spec func(v Variant) RunSpec
} {
	return []struct {
		name string
		spec func(v Variant) RunSpec
	}{
		{"miniamr", func(v Variant) RunSpec { return chaosSpec(v, nil) }},
		{"hydro", func(v Variant) RunSpec {
			cfg := hydro.Config{
				NX: 32, NY: 32, TilesX: 4, TilesY: 4,
				Timesteps: 4, ChecksumEvery: 2,
			}
			return RunSpec{
				Nodes: 2, RanksPerNode: 2, CoresPerRank: 2,
				Net: simnet.None(), Job: hydro.Job(cfg), Variant: v,
			}
		}},
	}
}

// TestCrossProcessOracle is the end-to-end regression of the wire
// transport: every application x variant pair, split over 2 OS processes
// connected by real TCP, must produce bit-identical checksums — and
// identical work and traffic totals — to the same job in one process.
func TestCrossProcessOracle(t *testing.T) {
	for _, a := range oracleApps() {
		for _, v := range Variants {
			a, v := a, v
			name := a.name + "/" + string(v)
			t.Run(name, func(t *testing.T) {
				if testing.Short() && !(a.name == "miniamr" && v == MPIOnly) {
					t.Skip("short mode runs one cross-process pair")
				}
				t.Parallel()
				ref, err := Run(a.spec(v))
				if err != nil {
					t.Fatalf("in-process run: %v", err)
				}
				spec := a.spec(v)
				spec.Procs = 2
				spec.ProcTimeout = multiProcTimeout
				got, err := Run(spec)
				if err != nil {
					t.Fatalf("2-process run: %v", err)
				}
				if len(got.Checksums) == 0 {
					t.Fatal("2-process run produced no checksums; the comparison proves nothing")
				}
				if want, have := checksumBits(ref.Checksums), checksumBits(got.Checksums); want != have {
					t.Errorf("checksums diverge across the process split:\n--- in-process\n%s--- 2-process\n%s", want, have)
				}
				if ref.FinalBlocks != got.FinalBlocks {
					t.Errorf("final blocks: in-process %d, 2-process %d", ref.FinalBlocks, got.FinalBlocks)
				}
				if ref.Flops != got.Flops {
					t.Errorf("flops: in-process %d, 2-process %d", ref.Flops, got.Flops)
				}
				if ref.Messages != got.Messages || ref.CommBytes != got.CommBytes {
					t.Errorf("traffic: in-process %d msgs / %d bytes, 2-process %d msgs / %d bytes",
						ref.Messages, ref.CommBytes, got.Messages, got.CommBytes)
				}
			})
		}
	}
}

// TestCrossProcessChaosOracle extends the oracle to the reliable path:
// under the default seeded fault schedule a 2-process run must recover
// to the same checksums, and — because the injector is a pure function
// of (seed, src, dst, seq) — the union of the children's fault logs must
// be byte-identical to the single-process schedule.
func TestCrossProcessChaosOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos oracle skipped in short mode")
	}
	faults := simnet.DefaultFaults(7)
	ref, err := Run(chaosSpec(MPIOnly, &faults))
	if err != nil {
		t.Fatalf("in-process chaos run: %v", err)
	}
	faults2 := simnet.DefaultFaults(7)
	spec := chaosSpec(MPIOnly, &faults2)
	spec.Procs = 2
	spec.ProcTimeout = multiProcTimeout
	got, err := Run(spec)
	if err != nil {
		t.Fatalf("2-process chaos run: %v", err)
	}
	if got.Faults.Total() == 0 {
		t.Fatal("2-process run injected nothing; the run proved nothing")
	}
	if want, have := checksumBits(ref.Checksums), checksumBits(got.Checksums); want != have {
		t.Errorf("chaos checksums diverge across the process split:\n--- in-process\n%s--- 2-process\n%s", want, have)
	}
	if want, have := simnet.LogString(ref.FaultLog), simnet.LogString(got.FaultLog); want != have {
		t.Errorf("fault schedules diverge across the process split:\n--- in-process\n%s--- 2-process\n%s", want, have)
	}
}

// TestMultiProcRejectsInstruments locks in the contract that in-process
// instruments fail fast instead of silently dropping data.
func TestMultiProcRejectsInstruments(t *testing.T) {
	spec := chaosSpec(MPIOnly, nil)
	spec.Procs = 2
	spec.Sanitize = true
	if _, err := Run(spec); err == nil {
		t.Error("sanitized multi-process run accepted; want an error")
	}
}
