package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"miniamr/internal/amr/app"
	"miniamr/internal/cluster"
	"miniamr/internal/driver"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
	"miniamr/internal/wire"
)

// Multi-process execution: RunSpec.Procs > 1 re-executes the current
// binary Procs times, gives each child a contiguous rank block over the
// TCP wire transport, and merges the children's partial results into one
// Metrics through the same aggregation as the in-process path.
//
// The protocol between parent and child is three line-oriented messages
// on the child's stdout, prefixed so application output cannot be
// mistaken for them:
//
//	AMRWIRE ADDR <host:port>   child 0 only: the rendezvous coordinator
//	AMRWIRE REPORT <json>      every child: its childReport
//
// plus the childSpec JSON the parent plants in the AMR_WIRE_CHILD
// environment variable. Children are placed in their own process group
// so an expired deadline can kill the whole tree.

// wireChildEnv carries the childSpec JSON into a spawned child. Its
// presence is what MaybeRunWireChild keys on.
const wireChildEnv = "AMR_WIRE_CHILD"

const (
	addrPrefix   = "AMRWIRE ADDR "
	reportPrefix = "AMRWIRE REPORT "
	// bootstrapTimeout bounds the rendezvous phase inside a child.
	bootstrapTimeout = 30 * time.Second
	// quiesceTimeout bounds the reliable-path drain of a chaos run.
	quiesceTimeout = 5 * time.Second
	// defaultProcTimeout applies when RunSpec.ProcTimeout is zero.
	defaultProcTimeout = 2 * time.Minute
)

// childSpec is the complete job description a child needs; everything in
// it survives a JSON round trip (the runtime-only Config fields are
// tagged out by the applications).
type childSpec struct {
	Proc                              int // this child's process id in [0, Procs)
	Procs                             int
	Nodes, RanksPerNode, CoresPerRank int
	Net                               simnet.Model
	App                               string
	Cfg                               json.RawMessage
	Variant                           driver.Variant
	Chaos                             *simnet.Faults
	Resilience                        mpi.Resilience
	// CoordAddr is child 0's listen address; empty for child 0 itself,
	// which learns it from its own listener and prints it for the parent.
	CoordAddr string
}

// childReport is one child's share of the metrics, merged by the parent.
type childReport struct {
	Proc, Lo, Hi int
	// Results holds the local ranks' results, index i for rank Lo+i.
	Results    []driver.Result
	Arena      membuf.Stats
	HeapAllocs uint64
	Faults     simnet.FaultStats
	FaultLog   []simnet.FaultEvent
	Chaos      mpi.ChaosStats
}

// MaybeRunWireChild executes the wire-child role if this process was
// spawned by a multi-process harness run, and never returns in that case
// (it exits with the child's status). It returns false immediately in a
// normal process. Call it first thing in main() — and in TestMain before
// m.Run for test binaries that run multi-process specs, since the parent
// re-executes its own binary.
func MaybeRunWireChild() bool {
	payload := os.Getenv(wireChildEnv)
	if payload == "" {
		return false
	}
	if err := runWireChild(payload); err != nil {
		fmt.Fprintf(os.Stderr, "wire child: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
	return true // unreachable
}

// runWireChild is the child role: bootstrap the wire node, build the
// partial world, run the local ranks, report.
func runWireChild(payload string) error {
	var cs childSpec
	if err := json.Unmarshal([]byte(payload), &cs); err != nil {
		return fmt.Errorf("decoding %s: %w", wireChildEnv, err)
	}
	job, err := driver.DecodeJob(cs.App, cs.Cfg)
	if err != nil {
		return err
	}
	topo, err := cluster.New(cs.Nodes, cs.RanksPerNode, cs.CoresPerRank)
	if err != nil {
		return err
	}
	program, err := job.Bind(cs.Variant, cs.CoresPerRank, nil)
	if err != nil {
		return err
	}

	node, err := wire.Listen("")
	if err != nil {
		return err
	}
	coord := cs.CoordAddr
	if cs.Proc == 0 {
		coord = node.Addr()
		fmt.Printf("%s%s\n", addrPrefix, coord)
	}
	if err := node.Bootstrap(cs.Proc, cs.Procs, topo.Ranks(), coord, bootstrapTimeout); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	lo, hi := node.LocalRange()
	world, err := mpi.NewWorldPart(topo, cs.Net, lo, hi, node)
	if err != nil {
		return err
	}
	var inj *simnet.Injector
	if cs.Chaos != nil && cs.Chaos.Enabled() {
		inj = simnet.NewInjector(*cs.Chaos)
		world.EnableChaos(inj, cs.Resilience)
	}
	node.Start(world, world.Arena())

	results := make([]driver.Result, topo.Ranks())
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	runErr := world.Run(func(c *mpi.Comm) {
		res, err := program(c, nil)
		if err != nil {
			panic(err) // surface through World.Run and fail peers fast
		}
		results[c.Rank()] = res
	})
	if runErr != nil {
		return runErr
	}
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	// Snapshot the fault schedule before the exit protocol below: its
	// barriers run through the same injected world, and their faults are
	// teardown noise that must not pollute the application's schedule
	// (the cross-process oracle compares it byte-for-byte against the
	// single-process run, which has no exit protocol).
	rep := childReport{
		Proc: cs.Proc, Lo: lo, Hi: hi,
		Results:    results[lo:hi],
		HeapAllocs: ms1.Mallocs - ms0.Mallocs,
	}
	if inj != nil {
		rep.Faults = inj.Stats()
		rep.FaultLog = inj.Log()
	}

	// Exit barrier: no process tears its node down while a slower peer
	// still has application traffic in flight.
	if err := world.Run(func(c *mpi.Comm) {
		if err := c.Barrier(); err != nil {
			panic(err)
		}
	}); err != nil {
		return fmt.Errorf("exit barrier: %w", err)
	}
	if inj != nil {
		// Drain the reliable path, re-synchronise, then drain once more.
		// The final quiesce matters: the middle barrier's own messages
		// cross the injected world too, and a process that closed its
		// node while a peer still waited on a dropped barrier release
		// would strand that peer forever — retransmits to a closed node
		// are silently dropped. Draining until every send is acked means
		// the only traffic left when anyone closes is duplicate
		// retransmits and acks, which the teardown tolerates.
		world.QuiesceReliable(quiesceTimeout)
		if err := world.Run(func(c *mpi.Comm) {
			if err := c.Barrier(); err != nil {
				panic(err)
			}
		}); err != nil {
			return fmt.Errorf("quiesce barrier: %w", err)
		}
		world.QuiesceReliable(quiesceTimeout)
		rep.Chaos = world.ChaosStats()
	}
	rep.Arena = world.Arena().Stats()
	out, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	fmt.Printf("%s%s\n", reportPrefix, out)
	if err := node.Close(); err != nil {
		return fmt.Errorf("closing node: %w", err)
	}
	return node.Err()
}

// wireChild is the parent's handle on one spawned child process.
type wireChild struct {
	proc   int
	cmd    *exec.Cmd
	addrCh chan string      // child 0's coordinator address (buffered 1)
	repCh  chan childReport // the child's report (buffered 1)
	scanCh chan error       // stdout scan outcome
}

// runMultiProc is the Procs > 1 path of Run: spawn, collect, merge.
func runMultiProc(spec RunSpec) (Metrics, error) {
	if spec.Recorder != nil {
		return Metrics{}, fmt.Errorf("harness: trace recording is in-process only; not supported with Procs=%d", spec.Procs)
	}
	if spec.Sanitize {
		// The sanitizer audits one process's task graph; a multi-process
		// run would need per-child audits reported back, which nothing
		// consumes yet. (The AMRSAN=1 environment force is deliberately
		// ignored here rather than failing the whole sanitized suite.)
		return Metrics{}, fmt.Errorf("harness: sanitizer is in-process only; not supported with Procs=%d", spec.Procs)
	}
	job := spec.Job
	if job == nil {
		job = app.Job(spec.Cfg)
	}
	if err := driver.CheckVariant(job.App(), spec.Variant); err != nil {
		return Metrics{}, err
	}
	appName, cfgJSON, err := driver.EncodeJob(job)
	if err != nil {
		return Metrics{}, err
	}
	topo, err := cluster.New(spec.Nodes, spec.RanksPerNode, spec.CoresPerRank)
	if err != nil {
		return Metrics{}, err
	}
	if spec.Procs > topo.Ranks() {
		return Metrics{}, fmt.Errorf("harness: %d processes exceed %d ranks", spec.Procs, topo.Ranks())
	}
	exe, err := os.Executable()
	if err != nil {
		return Metrics{}, fmt.Errorf("harness: resolving own binary: %w", err)
	}
	timeout := spec.ProcTimeout
	if timeout <= 0 {
		timeout = defaultProcTimeout
	}
	deadline := time.Now().Add(timeout)

	base := childSpec{
		Procs: spec.Procs,
		Nodes: spec.Nodes, RanksPerNode: spec.RanksPerNode, CoresPerRank: spec.CoresPerRank,
		Net: spec.Net, App: appName, Cfg: cfgJSON, Variant: spec.Variant,
		Resilience: spec.Resilience,
	}
	if spec.Chaos != nil && spec.Chaos.Enabled() {
		base.Chaos = spec.Chaos
	}

	children := make([]*wireChild, spec.Procs)
	// Kill every child's process group on any exit path; harmless for
	// children that already exited.
	defer func() {
		for _, ch := range children {
			if ch != nil {
				ch.kill()
			}
		}
	}()

	// Child 0 first: it owns the rendezvous listener and prints its
	// address, which the others need before they can even start.
	c0, err := spawnWireChild(exe, base, 0, "")
	if err != nil {
		return Metrics{}, err
	}
	children[0] = c0
	coordAddr, err := c0.waitAddr(deadline)
	if err != nil {
		return Metrics{}, err
	}
	for p := 1; p < spec.Procs; p++ {
		ch, err := spawnWireChild(exe, base, p, coordAddr)
		if err != nil {
			return Metrics{}, err
		}
		children[p] = ch
	}

	reports := make([]childReport, spec.Procs)
	for _, ch := range children {
		rep, err := ch.waitReport(deadline)
		if err != nil {
			return Metrics{}, err
		}
		reports[ch.proc] = rep
	}
	return mergeReports(spec, topo, reports)
}

// spawnWireChild starts one child of the current binary with the spec in
// its environment and a scanner goroutine on its stdout.
func spawnWireChild(exe string, base childSpec, proc int, coordAddr string) (*wireChild, error) {
	cs := base
	cs.Proc = proc
	cs.CoordAddr = coordAddr
	payload, err := json.Marshal(cs)
	if err != nil {
		return nil, fmt.Errorf("harness: encoding child spec: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), wireChildEnv+"="+string(payload))
	cmd.Stderr = os.Stderr
	// Own process group: the deadline kill takes out grandchildren too.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("harness: child %d stdout: %w", proc, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("harness: starting child %d: %w", proc, err)
	}
	ch := &wireChild{
		proc: proc, cmd: cmd,
		addrCh: make(chan string, 1),
		repCh:  make(chan childReport, 1),
		scanCh: make(chan error, 1),
	}
	go ch.scan(stdout)
	return ch, nil
}

// scan reads the child's stdout for protocol lines; anything else is
// application chatter and forwarded to the parent's stderr.
func (ch *wireChild) scan(r io.Reader) {
	sc := bufio.NewScanner(r)
	// Reports carry checksum histories and fault logs; give them room.
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, addrPrefix):
			select {
			case ch.addrCh <- strings.TrimPrefix(line, addrPrefix):
			default:
			}
		case strings.HasPrefix(line, reportPrefix):
			var rep childReport
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, reportPrefix)), &rep); err != nil {
				ch.scanCh <- fmt.Errorf("harness: child %d report: %w", ch.proc, err)
				return
			}
			select {
			case ch.repCh <- rep:
			default:
			}
		default:
			fmt.Fprintf(os.Stderr, "[wire child %d] %s\n", ch.proc, line)
		}
	}
	ch.scanCh <- sc.Err()
}

// waitAddr waits for the coordinator address line with a hard deadline.
func (ch *wireChild) waitAddr(deadline time.Time) (string, error) {
	select {
	case addr := <-ch.addrCh:
		return addr, nil
	case err := <-ch.scanCh:
		ch.kill()
		return "", fmt.Errorf("harness: child %d exited before announcing its address (scan err: %v, wait: %v)", ch.proc, err, ch.cmd.Wait())
	case <-time.After(time.Until(deadline)):
		ch.kill()
		return "", fmt.Errorf("harness: timed out waiting for child %d address", ch.proc)
	}
}

// waitReport waits for the child's report and clean exit with a hard
// deadline; on expiry the whole child process group is killed.
func (ch *wireChild) waitReport(deadline time.Time) (childReport, error) {
	var (
		rep    childReport
		gotRep bool
	)
	for {
		select {
		case rep = <-ch.repCh:
			gotRep = true
		case err := <-ch.scanCh:
			// Stdout closed: the child exited (or broke its pipe).
			waitErr := ch.cmd.Wait()
			if waitErr != nil {
				return childReport{}, fmt.Errorf("harness: child %d failed: %w", ch.proc, waitErr)
			}
			if err != nil {
				return childReport{}, fmt.Errorf("harness: child %d stdout: %w", ch.proc, err)
			}
			if !gotRep {
				select {
				case rep = <-ch.repCh:
				default:
					return childReport{}, fmt.Errorf("harness: child %d exited without a report", ch.proc)
				}
			}
			return rep, nil
		case <-time.After(time.Until(deadline)):
			ch.kill()
			return childReport{}, fmt.Errorf("harness: timed out waiting for child %d (killed)", ch.proc)
		}
	}
}

// kill terminates the child's whole process group, then reaps it.
func (ch *wireChild) kill() {
	if ch.cmd.Process == nil {
		return
	}
	// Negative pid addresses the process group created by Setpgid.
	_ = syscall.Kill(-ch.cmd.Process.Pid, syscall.SIGKILL)
	_ = ch.cmd.Process.Kill()
	_ = ch.cmd.Wait()
}

// mergeReports stitches the children's partial results into one Metrics,
// reusing the in-process aggregation for everything per-rank.
func mergeReports(spec RunSpec, topo *cluster.Topology, reports []childReport) (Metrics, error) {
	ranks := topo.Ranks()
	results := make([]driver.Result, ranks)
	m := Metrics{Ranks: ranks, Cores: topo.Cores()}
	for _, rep := range reports {
		lo, hi := wire.RankRange(ranks, spec.Procs, rep.Proc)
		if rep.Lo != lo || rep.Hi != hi || len(rep.Results) != hi-lo {
			return Metrics{}, fmt.Errorf("harness: child %d reported rank range [%d,%d) x%d, want [%d,%d)",
				rep.Proc, rep.Lo, rep.Hi, len(rep.Results), lo, hi)
		}
		copy(results[lo:hi], rep.Results)
		m.Arena.Gets += rep.Arena.Gets
		m.Arena.Puts += rep.Arena.Puts
		m.Arena.Hits += rep.Arena.Hits
		m.Arena.Misses += rep.Arena.Misses
		m.Arena.Live += rep.Arena.Live
		m.Arena.LeasesLive += rep.Arena.LeasesLive
		m.HeapAllocs += rep.HeapAllocs
		m.Faults.Drops += rep.Faults.Drops
		m.Faults.Duplicates += rep.Faults.Duplicates
		m.Faults.Spikes += rep.Faults.Spikes
		m.Faults.PartitionDrops += rep.Faults.PartitionDrops
		m.Faults.Stalls += rep.Faults.Stalls
		m.FaultLog = append(m.FaultLog, rep.FaultLog...)
		m.Chaos.Retransmits += rep.Chaos.Retransmits
		m.Chaos.DupsDiscarded += rep.Chaos.DupsDiscarded
		m.Chaos.Reordered += rep.Chaos.Reordered
		m.Chaos.Recovered += rep.Chaos.Recovered
		m.Chaos.Abandoned += rep.Chaos.Abandoned
	}
	// Restore the deterministic (src, dst, seq, kind) order the
	// single-process injector log guarantees: each child only injects for
	// its own ranks' sends, so the union re-sorts to the same schedule.
	sort.Slice(m.FaultLog, func(i, j int) bool {
		a, b := m.FaultLog[i], m.FaultLog[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	m.aggregate(results)
	return m, nil
}
