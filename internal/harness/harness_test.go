package harness

import (
	"strings"
	"testing"

	"miniamr/internal/amr/app"
	"miniamr/internal/driver"
	"miniamr/internal/simnet"
)

// tinyOpts keeps experiment tests fast: 2 virtual nodes of 2 cores, a
// 4-cell block, 2 variables, 2x2 loop, no network cost.
func tinyOpts() Options {
	net := simnet.None()
	return Options{
		Nodes:        2,
		CoresPerNode: 2,
		Net:          &net,
		Scale: Scale{
			BlockCells: 4, Vars: 2, Timesteps: 2, StagesPerTimestep: 2, MaxLevel: 1,
		},
	}
}

func TestFactor3(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		12: {3, 2, 2},
		48: {4, 4, 3},
		7:  {7, 1, 1},
	}
	for n, want := range cases {
		got := factor3(n)
		if got[0]*got[1]*got[2] != n {
			t.Errorf("factor3(%d) = %v does not multiply to %d", n, got, n)
		}
		if got != want {
			t.Errorf("factor3(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestWeakMesh(t *testing.T) {
	root, err := WeakMesh(1, 8)
	if err != nil || root != [3]int{2, 2, 2} {
		t.Errorf("WeakMesh(1,8) = %v, %v", root, err)
	}
	// Doubling nodes doubles the total blocks, one direction at a time.
	prev := 8
	for _, nodes := range []int{2, 4, 8, 16} {
		root, err := WeakMesh(nodes, 8)
		if err != nil {
			t.Fatal(err)
		}
		total := root[0] * root[1] * root[2]
		if total != prev*2 {
			t.Errorf("nodes=%d: total blocks %d, want %d", nodes, total, prev*2)
		}
		prev = total
	}
	if _, err := WeakMesh(3, 8); err == nil {
		t.Error("non-power-of-two node count accepted")
	}
	if _, err := WeakMesh(0, 8); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestInputsValidate(t *testing.T) {
	for name, cfg := range map[string]func() error{
		"single-sphere": func() error { c := SingleSphere([3]int{2, 2, 1}, Scale{}); return c.Validate() },
		"four-spheres":  func() error { c := FourSpheres([3]int{2, 2, 1}, Scale{}); return c.Validate() },
	} {
		if err := cfg(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	c := FourSpheres([3]int{2, 2, 1}, Scale{})
	if len(c.Objects) != 4 {
		t.Errorf("four spheres has %d objects", len(c.Objects))
	}
	// Two spheres move +x, two move -x.
	plus, minus := 0, 0
	for _, o := range c.Objects {
		switch {
		case o.Move[0] > 0:
			plus++
		case o.Move[0] < 0:
			minus++
		}
	}
	if plus != 2 || minus != 2 {
		t.Errorf("sphere movement split %d/+x %d/-x", plus, minus)
	}
}

func TestVariantRegistry(t *testing.T) {
	for _, v := range Variants {
		if err := driver.CheckVariant("miniamr", v); err != nil {
			t.Errorf("%s: %v", v, err)
		}
		if _, err := app.Job(SingleSphere([3]int{2, 2, 1}, Scale{})).Bind(v, 1, nil); err != nil {
			t.Errorf("bind %s: %v", v, err)
		}
	}
	if err := driver.CheckVariant("miniamr", Variant("bogus")); err == nil {
		t.Error("bogus variant accepted")
	}
	if err := driver.CheckVariant("no-such-app", MPIOnly); err == nil {
		t.Error("unregistered application accepted")
	}
	if _, err := app.Job(SingleSphere([3]int{2, 2, 1}, Scale{})).Bind(Variant("bogus"), 1, nil); err == nil {
		t.Error("bogus variant bound")
	}
}

func TestRunAggregatesMetrics(t *testing.T) {
	opt := tinyOpts()
	cfg := FourSpheres([3]int{2, 2, 1}, opt.Scale)
	m, err := Run(RunSpec{
		Nodes: 2, RanksPerNode: 2, CoresPerRank: 1,
		Net: simnet.None(), Cfg: cfg, Variant: MPIOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Ranks != 4 || m.Cores != 4 {
		t.Errorf("ranks/cores = %d/%d", m.Ranks, m.Cores)
	}
	if m.Total <= 0 || m.Flops <= 0 || m.GFLOPS <= 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
	if m.NoRefine != m.Total-m.Refine {
		t.Error("NoRefine arithmetic")
	}
	if len(m.Checksums) == 0 {
		t.Error("no checksums recorded")
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	if _, err := Run(RunSpec{Variant: "nope"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := Run(RunSpec{Variant: MPIOnly, Nodes: 0}); err == nil {
		t.Error("empty topology accepted")
	}
	opt := tinyOpts()
	cfg := FourSpheres([3]int{2, 2, 1}, opt.Scale)
	cfg.Vars = -1
	if _, err := Run(RunSpec{Nodes: 1, RanksPerNode: 1, CoresPerRank: 1, Cfg: cfg, Variant: MPIOnly}); err == nil {
		t.Error("invalid app config accepted")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // ranks/node in {1, 2} for 2-core nodes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FJ.Total <= 0 || r.DF.Total <= 0 {
			t.Errorf("rpn=%d: empty metrics", r.RanksPerNode)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "TAMPI+OSS") {
		t.Error("table header missing")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (1,2,4,8,16,all)", len(rows))
	}
	if rows[5].Tasks != 0 {
		t.Error("last row should be 'all'")
	}
	var sb strings.Builder
	PrintTable2(&sb, rows)
	if !strings.Contains(sb.String(), "all") {
		t.Error("'all' column missing")
	}
}

func TestWeakScaling(t *testing.T) {
	series, err := WeakScaling(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 { // nodes 1, 2
			t.Fatalf("%s: points = %d", s.Variant, len(s.Points))
		}
		if eff := s.Efficiency(0, false); eff != 1 {
			t.Errorf("%s: self-efficiency = %v", s.Variant, eff)
		}
		for i, p := range s.Points {
			if p.M.GFLOPS <= 0 {
				t.Errorf("%s point %d: zero throughput", s.Variant, i)
			}
		}
	}
	var sb strings.Builder
	PrintScaling(&sb, "weak", series)
	if !strings.Contains(sb.String(), "GFLOPS") {
		t.Error("scaling header missing")
	}
}

func TestStrongScaling(t *testing.T) {
	series, err := StrongScaling(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 || len(series[0].Points) != 2 {
		t.Fatalf("series shape wrong")
	}
	if sp := Speedup(series[0], series[0], 0); sp != 1 {
		t.Errorf("self speedup = %v", sp)
	}
	var sb strings.Builder
	PrintStrong(&sb, series)
	if !strings.Contains(sb.String(), "speedup") {
		t.Error("strong header missing")
	}
}

func TestTraces(t *testing.T) {
	res, err := Traces(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.MPITrace.Len() == 0 || res.DataFlowTrace.Len() == 0 {
		t.Fatal("traces empty")
	}
	var sb strings.Builder
	PrintTraces(&sb, res, 60)
	out := sb.String()
	for _, want := range []string{"Figure 1", "MPI-only", "TAMPI+OSS", "overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestRefineAblation(t *testing.T) {
	res, err := RefineAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Taskified.Total <= 0 || res.Sequential.Total <= 0 {
		t.Error("ablation metrics empty")
	}
	var sb strings.Builder
	PrintRefineAblation(&sb, res)
	if !strings.Contains(sb.String(), "taskified") {
		t.Error("ablation output missing")
	}
}

func TestSchedulerAblation(t *testing.T) {
	res, err := SchedulerAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.WithPolicy.Total <= 0 || res.WithoutPolicy.Total <= 0 {
		t.Error("ablation metrics empty")
	}
	var sb strings.Builder
	PrintSchedulerAblation(&sb, res)
	if !strings.Contains(sb.String(), "immediate successor") {
		t.Error("ablation output missing")
	}
}

func TestHostEffBounds(t *testing.T) {
	opt := tinyOpts()
	cfg := FourSpheres([3]int{2, 2, 1}, opt.Scale)
	m, err := Run(RunSpec{
		Nodes: 1, RanksPerNode: 2, CoresPerRank: 1,
		Net: simnet.None(), Cfg: cfg, Variant: MPIOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	// hEff is a fraction of calibrated capacity: positive, and not wildly
	// above 1 (calibration and kernels share the same code path).
	if m.HostEff <= 0 || m.HostEff > 2 {
		t.Errorf("HostEff = %v out of plausible range", m.HostEff)
	}
	if m.NRHostEff < m.HostEff {
		t.Errorf("NRHostEff %v < HostEff %v; non-refinement time is smaller", m.NRHostEff, m.HostEff)
	}
}

func TestRunBestKeepsFastest(t *testing.T) {
	opt := tinyOpts()
	opt.Repeats = 3
	cfg := FourSpheres([3]int{2, 2, 1}, opt.Scale)
	m, err := runBest(opt, RunSpec{
		Nodes: 1, RanksPerNode: 2, CoresPerRank: 1,
		Net: simnet.None(), Cfg: cfg, Variant: MPIOnly,
	})
	if err != nil || m.Total <= 0 {
		t.Fatalf("runBest: %v %v", m.Total, err)
	}
}
