package harness

import (
	"os"
	"testing"
)

// TestPaperShapes runs the experiments at a moderate scale and asserts the
// orderings EXPERIMENTS.md reports. Wall-clock assertions on a shared or
// single-core host are inherently noisy, so this suite only runs when
// MINIAMR_SHAPE_TESTS=1 is set (e.g. on a quiet multi-core machine):
//
//	MINIAMR_SHAPE_TESTS=1 go test ./internal/harness -run TestPaperShapes -v
func TestPaperShapes(t *testing.T) {
	if os.Getenv("MINIAMR_SHAPE_TESTS") != "1" {
		t.Skip("set MINIAMR_SHAPE_TESTS=1 to run wall-clock shape assertions")
	}
	opt := Options{
		Nodes:        4,
		CoresPerNode: 4,
		Repeats:      3,
		Scale: Scale{
			BlockCells: 12, Vars: 8, Timesteps: 5, StagesPerTimestep: 8, MaxLevel: 2,
		},
	}
	opt.defaults()

	t.Run("table2-single-message-worst", func(t *testing.T) {
		rows, err := Table2(opt)
		if err != nil {
			t.Fatal(err)
		}
		single := rows[0].M.NoRefine
		best := single
		for _, r := range rows[1:] {
			if r.M.NoRefine < best {
				best = r.M.NoRefine
			}
		}
		if single <= best {
			t.Errorf("one aggregated message (%v) should be slower than the best cap (%v)", single, best)
		}
	})

	t.Run("weak-dataflow-leads-at-scale", func(t *testing.T) {
		series, err := WeakScaling(opt)
		if err != nil {
			t.Fatal(err)
		}
		last := len(series[0].Points) - 1
		var df, mpi float64
		for _, s := range series {
			switch s.Variant {
			case DataFlow:
				df = s.Points[last].M.GFLOPS
			case MPIOnly:
				mpi = s.Points[last].M.GFLOPS
			}
		}
		if df <= mpi*0.95 {
			t.Errorf("data-flow at max nodes = %.3f GFLOPS, MPI-only %.3f; expected data-flow ahead", df, mpi)
		}
	})

	t.Run("scheduler-policy-helps", func(t *testing.T) {
		res, err := SchedulerAblation(opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.WithPolicy.Total > res.WithoutPolicy.Total {
			t.Errorf("immediate successor on (%v) slower than off (%v)",
				res.WithPolicy.Total, res.WithoutPolicy.Total)
		}
	})
}
