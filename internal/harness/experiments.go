package harness

import (
	"fmt"
	"io"
	"time"

	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

// Options scales an experiment to the host. The defaults target a
// single-core laptop; the paper's sizes (48-core nodes, 256 nodes) are
// reachable by raising these on a bigger machine.
type Options struct {
	// Nodes is the virtual node count of the experiment (base count for
	// fixed-size experiments, maximum for scaling sweeps).
	Nodes int
	// CoresPerNode is the width of a virtual node (paper: 48).
	CoresPerNode int
	// HybridRanksPerNode is the ranks-per-node used by the hybrid
	// variants (paper: 4 after Table I). Zero derives max(1, cores/4).
	HybridRanksPerNode int
	// Net is the interconnect model (default: simnet.Default()).
	Net *simnet.Model
	// Scale shrinks the problem inputs.
	Scale Scale
	// Repeats runs every measured point this many times and keeps the
	// fastest (standard noise suppression on shared hosts). Zero means 1.
	Repeats int
}

func (o *Options) defaults() {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.CoresPerNode == 0 {
		o.CoresPerNode = 4
	}
	if o.HybridRanksPerNode == 0 {
		o.HybridRanksPerNode = o.CoresPerNode / 4
		if o.HybridRanksPerNode < 1 {
			o.HybridRanksPerNode = 1
		}
	}
	if o.Net == nil {
		m := simnet.Default()
		o.Net = &m
	}
	if o.Repeats < 1 {
		o.Repeats = 1
	}
}

// runBest executes a spec opt.Repeats times and returns the fastest run.
func runBest(opt Options, spec RunSpec) (Metrics, error) {
	var best Metrics
	for r := 0; r < opt.Repeats; r++ {
		m, err := Run(spec)
		if err != nil {
			return Metrics{}, err
		}
		if r == 0 || m.Total < best.Total {
			best = m
		}
	}
	return best, nil
}

func seconds(d time.Duration) string { return fmt.Sprintf("%8.3f", d.Seconds()) }

// ---------------------------------------------------------------------------
// Table I: execution time versus ranks per node for the hybrid variants.

// Table1Row is one ranks-per-node configuration of Table I.
type Table1Row struct {
	RanksPerNode int
	FJ, DF       Metrics
}

// Table1 reproduces Table I: total / refinement / non-refinement time of
// MPI+OMP and TAMPI+OSS while varying ranks per node on a fixed node
// count, using the single-sphere input.
func Table1(opt Options) ([]Table1Row, error) {
	opt.defaults()
	root := factor3(opt.Nodes * opt.CoresPerNode) // one block per core
	var rows []Table1Row
	for rpn := 1; rpn <= opt.CoresPerNode; rpn *= 2 {
		cores := opt.CoresPerNode / rpn
		if cores < 1 {
			break
		}
		row := Table1Row{RanksPerNode: rpn}

		cfgFJ := SingleSphere(root, opt.Scale)
		fj, err := runBest(opt, RunSpec{
			Nodes: opt.Nodes, RanksPerNode: rpn, CoresPerRank: cores,
			Net: *opt.Net, Cfg: cfgFJ, Variant: ForkJoin,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 forkjoin rpn=%d: %w", rpn, err)
		}
		row.FJ = fj

		cfgDF := SingleSphere(root, opt.Scale)
		// Table I's TAMPI+OSS runs enable --send_faces and
		// --separate_buffers to expose all communication parallelism.
		cfgDF.SendFaces = true
		cfgDF.SeparateBuffers = true
		df, err := runBest(opt, RunSpec{
			Nodes: opt.Nodes, RanksPerNode: rpn, CoresPerRank: cores,
			Net: *opt.Net, Cfg: cfgDF, Variant: DataFlow,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 dataflow rpn=%d: %w", rpn, err)
		}
		row.DF = df
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable1 renders Table I rows in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I: time (s) varying the number of ranks per node")
	fmt.Fprintln(w, "Ranks   |          MPI+OMP              |          TAMPI+OSS")
	fmt.Fprintln(w, "x Node  |    Total   Refine  NoRefine   |    Total   Refine  NoRefine")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d | %s %s %s  | %s %s %s\n", r.RanksPerNode,
			seconds(r.FJ.Total), seconds(r.FJ.Refine), seconds(r.FJ.NoRefine),
			seconds(r.DF.Total), seconds(r.DF.Refine), seconds(r.DF.NoRefine))
	}
}

// ---------------------------------------------------------------------------
// Table II: non-refinement time versus communication tasks per neighbour
// and direction.

// Table2Row is one --max_comm_tasks configuration.
type Table2Row struct {
	Tasks int // 0 means "all" (one task per face)
	M     Metrics
}

// Table2 reproduces Table II: the TAMPI+OSS non-refinement time as the
// number of communication tasks per neighbour and direction varies, on the
// four-spheres input with --send_faces and --separate_buffers.
func Table2(opt Options) ([]Table2Row, error) {
	opt.defaults()
	root := factor3(opt.Nodes * opt.CoresPerNode)
	var rows []Table2Row
	for _, tasks := range []int{1, 2, 4, 8, 16, 0} {
		cfg := FourSpheres(root, opt.Scale)
		cfg.SendFaces = true
		cfg.SeparateBuffers = true
		cfg.MaxCommTasks = tasks
		cfg.DelayedChecksum = true
		m, err := runBest(opt, RunSpec{
			Nodes: opt.Nodes, RanksPerNode: opt.HybridRanksPerNode,
			CoresPerRank: opt.CoresPerNode / opt.HybridRanksPerNode,
			Net:          *opt.Net, Cfg: cfg, Variant: DataFlow,
		})
		if err != nil {
			return nil, fmt.Errorf("table2 tasks=%d: %w", tasks, err)
		}
		rows = append(rows, Table2Row{Tasks: tasks, M: m})
	}
	return rows, nil
}

// PrintTable2 renders Table II rows.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table II: non-refinement time (s) varying communication tasks per neighbour and direction")
	fmt.Fprint(w, "Tasks   |")
	for _, r := range rows {
		if r.Tasks == 0 {
			fmt.Fprintf(w, "%9s", "all")
		} else {
			fmt.Fprintf(w, "%9d", r.Tasks)
		}
	}
	fmt.Fprint(w, "\nTime(s) |")
	for _, r := range rows {
		fmt.Fprintf(w, " %s", seconds(r.M.NoRefine))
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Figure 4: weak scaling — throughput and efficiency.

// ScalingPoint is one (variant, node count) measurement.
type ScalingPoint struct {
	Nodes int
	M     Metrics
}

// ScalingSeries is a variant's sweep over node counts.
type ScalingSeries struct {
	Variant Variant
	Points  []ScalingPoint
}

// Efficiency returns the parallel efficiency of point i relative to the
// series' first point, optionally on non-refinement throughput.
func (s ScalingSeries) Efficiency(i int, noRefine bool) float64 {
	base, cur := s.Points[0], s.Points[i]
	b, c := base.M.GFLOPS, cur.M.GFLOPS
	if noRefine {
		b, c = base.M.NRGFLOPS, cur.M.NRGFLOPS
	}
	scale := float64(cur.Nodes) / float64(base.Nodes)
	if b == 0 || scale == 0 {
		return 0
	}
	return c / (b * scale)
}

// WeakScaling reproduces Figure 4: the four-spheres problem grows with the
// node count (one initial block per MPI-only core, doubling one direction
// per node doubling), measured for all three variants.
func WeakScaling(opt Options) ([]ScalingSeries, error) {
	opt.defaults()
	out := make([]ScalingSeries, len(Variants))
	for i, v := range Variants {
		out[i].Variant = v
	}
	for nodes := 1; nodes <= opt.Nodes; nodes *= 2 {
		root, err := WeakMesh(nodes, opt.CoresPerNode)
		if err != nil {
			return nil, err
		}
		for i, v := range Variants {
			cfg := FourSpheres(root, opt.Scale)
			spec := RunSpec{Nodes: nodes, Net: *opt.Net, Cfg: cfg, Variant: v}
			if v == MPIOnly {
				spec.RanksPerNode, spec.CoresPerRank = opt.CoresPerNode, 1
			} else {
				spec.RanksPerNode = opt.HybridRanksPerNode
				spec.CoresPerRank = opt.CoresPerNode / opt.HybridRanksPerNode
			}
			if v == DataFlow {
				DataFlowOptions(&spec.Cfg)
			}
			m, err := runBest(opt, spec)
			if err != nil {
				return nil, fmt.Errorf("weak %s nodes=%d: %w", v, nodes, err)
			}
			out[i].Points = append(out[i].Points, ScalingPoint{Nodes: nodes, M: m})
		}
	}
	return out, nil
}

// PrintScaling renders a scaling experiment: throughput per node count and
// efficiencies (total and non-refinement), Figure 4/5 style.
func PrintScaling(w io.Writer, title string, series []ScalingSeries) {
	fmt.Fprintln(w, title)
	fmt.Fprint(w, "nodes     |")
	for _, s := range series {
		fmt.Fprintf(w, " %22s |", s.Variant)
	}
	fmt.Fprint(w, "\n          |")
	for range series {
		fmt.Fprintf(w, "  GFLOPS    eff  eff(NR)  hEff |")
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0].Points) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-9d |", series[0].Points[i].Nodes)
		for _, s := range series {
			fmt.Fprintf(w, " %7.3f %6.2f %8.2f %5.2f |",
				s.Points[i].M.GFLOPS, s.Efficiency(i, false), s.Efficiency(i, true),
				s.Points[i].M.HostEff)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "eff: classic parallel efficiency vs the variant's 1-node run (grows only with real cores);")
	fmt.Fprintln(w, "hEff: throughput against the host's calibrated compute capacity (isolates comm/runtime overhead).")
}

// ---------------------------------------------------------------------------
// Figure 5: strong scaling — speedup and efficiency on a fixed problem.

// StrongScaling reproduces Figure 5: a fixed four-spheres problem (sized
// for the largest node count) across all variants and node counts.
// Speedups are throughput ratios against MPI-only on one node.
func StrongScaling(opt Options) ([]ScalingSeries, error) {
	opt.defaults()
	root, err := WeakMesh(opt.Nodes, opt.CoresPerNode)
	if err != nil {
		return nil, err
	}
	out := make([]ScalingSeries, len(Variants))
	for i, v := range Variants {
		out[i].Variant = v
	}
	for nodes := 1; nodes <= opt.Nodes; nodes *= 2 {
		for i, v := range Variants {
			cfg := FourSpheres(root, opt.Scale)
			spec := RunSpec{Nodes: nodes, Net: *opt.Net, Cfg: cfg, Variant: v}
			if v == MPIOnly {
				spec.RanksPerNode, spec.CoresPerRank = opt.CoresPerNode, 1
			} else {
				spec.RanksPerNode = opt.HybridRanksPerNode
				spec.CoresPerRank = opt.CoresPerNode / opt.HybridRanksPerNode
			}
			if v == DataFlow {
				DataFlowOptions(&spec.Cfg)
			}
			m, err := runBest(opt, spec)
			if err != nil {
				return nil, fmt.Errorf("strong %s nodes=%d: %w", v, nodes, err)
			}
			out[i].Points = append(out[i].Points, ScalingPoint{Nodes: nodes, M: m})
		}
	}
	return out, nil
}

// Speedup returns the throughput of series point i over the reference
// series' first point (Figure 5's "speedup w.r.t. MPI-only on one node").
func Speedup(s ScalingSeries, ref ScalingSeries, i int) float64 {
	if ref.Points[0].M.GFLOPS == 0 {
		return 0
	}
	return s.Points[i].M.GFLOPS / ref.Points[0].M.GFLOPS
}

// PrintStrong renders Figure 5's speedup and efficiency table.
func PrintStrong(w io.Writer, series []ScalingSeries) {
	fmt.Fprintln(w, "Figure 5: strong scaling speedup (vs MPI-only on 1 node) and efficiency")
	ref := series[0]
	fmt.Fprint(w, "nodes     |")
	for _, s := range series {
		fmt.Fprintf(w, " %22s |", s.Variant)
	}
	fmt.Fprint(w, "\n          |")
	for range series {
		fmt.Fprintf(w, " speedup    eff  eff(NR)  hEff |")
	}
	fmt.Fprintln(w)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-9d |", series[0].Points[i].Nodes)
		for _, s := range series {
			fmt.Fprintf(w, " %7.3f %6.2f %8.2f %5.2f |",
				Speedup(s, ref, i), s.Efficiency(i, false), s.Efficiency(i, true),
				s.Points[i].M.HostEff)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "hEff: throughput against the host's calibrated compute capacity (isolates comm/runtime overhead).")
}

// ---------------------------------------------------------------------------
// Figures 1-3: execution traces.

// TraceResult bundles the trace comparison of Figures 1-3.
type TraceResult struct {
	MPIOnly, DataFlow       Metrics
	MPITrace, DataFlowTrace *trace.Recorder
}

// Traces reproduces the trace experiment of Section V-B: the four-spheres
// problem on two nodes, traced for MPI-only and TAMPI+OSS.
func Traces(opt Options) (*TraceResult, error) {
	opt.defaults()
	nodes := 2
	root, err := WeakMesh(nodes, opt.CoresPerNode)
	if err != nil {
		return nil, err
	}
	res := &TraceResult{
		MPITrace:      trace.NewRecorder(),
		DataFlowTrace: trace.NewRecorder(),
	}
	cfg := FourSpheres(root, opt.Scale)
	res.MPIOnly, err = Run(RunSpec{
		Nodes: nodes, RanksPerNode: opt.CoresPerNode, CoresPerRank: 1,
		Net: *opt.Net, Cfg: cfg, Variant: MPIOnly, Recorder: res.MPITrace,
	})
	if err != nil {
		return nil, fmt.Errorf("trace mpionly: %w", err)
	}
	cfgDF := FourSpheres(root, opt.Scale)
	DataFlowOptions(&cfgDF)
	res.DataFlow, err = Run(RunSpec{
		Nodes: nodes, RanksPerNode: opt.HybridRanksPerNode,
		CoresPerRank: opt.CoresPerNode / opt.HybridRanksPerNode,
		Net:          *opt.Net, Cfg: cfgDF, Variant: DataFlow, Recorder: res.DataFlowTrace,
	})
	if err != nil {
		return nil, fmt.Errorf("trace dataflow: %w", err)
	}
	return res, nil
}

// PrintTraces renders the two timelines and the quantitative claims the
// paper reads off Figures 1-3 (non-refinement speedup, overlap, idle gaps).
func PrintTraces(w io.Writer, res *TraceResult, width int) {
	fmt.Fprintln(w, "Figure 1: execution timelines (upper: MPI-only ranks; lower: TAMPI+OSS workers)")
	fmt.Fprintln(w, "-- MPI-only --")
	fmt.Fprint(w, trace.Render(res.MPITrace.Events(), width))
	fmt.Fprintln(w, "-- TAMPI+OSS --")
	fmt.Fprint(w, trace.Render(res.DataFlowTrace.Events(), width))

	mst := trace.ComputeStats(res.MPITrace.Events())
	dst := trace.ComputeStats(res.DataFlowTrace.Events())
	fmt.Fprintln(w, "\nFigure 2/3 statistics:")
	fmt.Fprintf(w, "  %-34s %12s %12s\n", "", "MPI-only", "TAMPI+OSS")
	fmt.Fprintf(w, "  %-34s %12.3f %12.3f\n", "total time (s)", res.MPIOnly.Total.Seconds(), res.DataFlow.Total.Seconds())
	fmt.Fprintf(w, "  %-34s %12.3f %12.3f\n", "non-refinement time (s)", res.MPIOnly.NoRefine.Seconds(), res.DataFlow.NoRefine.Seconds())
	fmt.Fprintf(w, "  %-34s %12.3f %12.3f\n", "comp/comm overlap (s)", mst.OverlapTime.Seconds(), dst.OverlapTime.Seconds())
	fmt.Fprintf(w, "  %-34s %12.3f %12.3f\n", "max idle gap (ms)", float64(mst.MaxIdleGap.Microseconds())/1000, float64(dst.MaxIdleGap.Microseconds())/1000)
	if res.DataFlow.NoRefine > 0 {
		fmt.Fprintf(w, "  non-refinement speedup (TAMPI+OSS vs MPI-only): %.2fx\n",
			res.MPIOnly.NoRefine.Seconds()/res.DataFlow.NoRefine.Seconds())
	}
}

// ---------------------------------------------------------------------------
// Section IV-B ablation: taskified versus sequential refinement.

// RefineAblationResult compares refinement time with the paper's
// taskification against a serialised refinement phase.
type RefineAblationResult struct {
	Taskified, Sequential Metrics
}

// RefineAblation quantifies the paper's claim that taskifying the
// refinement phase removes a large share of its time.
func RefineAblation(opt Options) (*RefineAblationResult, error) {
	opt.defaults()
	root := factor3(opt.Nodes * opt.CoresPerNode)
	base := FourSpheres(root, opt.Scale)
	DataFlowOptions(&base)
	spec := RunSpec{
		Nodes: opt.Nodes, RanksPerNode: opt.HybridRanksPerNode,
		CoresPerRank: opt.CoresPerNode / opt.HybridRanksPerNode,
		Net:          *opt.Net, Cfg: base, Variant: DataFlow,
	}
	taskified, err := runBest(opt, spec)
	if err != nil {
		return nil, err
	}
	spec.Cfg.SequentialRefinement = true
	sequential, err := runBest(opt, spec)
	if err != nil {
		return nil, err
	}
	return &RefineAblationResult{Taskified: taskified, Sequential: sequential}, nil
}

// PrintRefineAblation renders the refinement ablation.
func PrintRefineAblation(w io.Writer, r *RefineAblationResult) {
	fmt.Fprintln(w, "Refinement taskification ablation (TAMPI+OSS, four spheres)")
	fmt.Fprintf(w, "  %-28s %10s %10s\n", "", "refine(s)", "total(s)")
	fmt.Fprintf(w, "  %-28s %10.3f %10.3f\n", "taskified (paper)", r.Taskified.Refine.Seconds(), r.Taskified.Total.Seconds())
	fmt.Fprintf(w, "  %-28s %10.3f %10.3f\n", "sequential refinement", r.Sequential.Refine.Seconds(), r.Sequential.Total.Seconds())
	if r.Sequential.Refine > 0 {
		fmt.Fprintf(w, "  refinement time removed by taskification: %.0f%%\n",
			100*(1-r.Taskified.Refine.Seconds()/r.Sequential.Refine.Seconds()))
	}
}

// ---------------------------------------------------------------------------
// Scheduler ablation: immediate-successor locality policy.

// SchedulerAblationResult compares the data-flow scheduler with and
// without the immediate-successor policy the paper credits for IPC gains.
type SchedulerAblationResult struct {
	WithPolicy, WithoutPolicy Metrics
}

// SchedulerAblation measures the immediate-successor policy's effect.
func SchedulerAblation(opt Options) (*SchedulerAblationResult, error) {
	opt.defaults()
	root := factor3(opt.Nodes * opt.CoresPerNode)
	cfg := FourSpheres(root, opt.Scale)
	DataFlowOptions(&cfg)
	spec := RunSpec{
		Nodes: opt.Nodes, RanksPerNode: opt.HybridRanksPerNode,
		CoresPerRank: opt.CoresPerNode / opt.HybridRanksPerNode,
		Net:          *opt.Net, Cfg: cfg, Variant: DataFlow,
	}
	with, err := runBest(opt, spec)
	if err != nil {
		return nil, err
	}
	spec.Cfg.DisableImmediateSuccessor = true
	without, err := runBest(opt, spec)
	if err != nil {
		return nil, err
	}
	return &SchedulerAblationResult{WithPolicy: with, WithoutPolicy: without}, nil
}

// PrintSchedulerAblation renders the scheduler ablation.
func PrintSchedulerAblation(w io.Writer, r *SchedulerAblationResult) {
	fmt.Fprintln(w, "Scheduler ablation (immediate-successor locality policy)")
	fmt.Fprintf(w, "  %-28s %10s %10s\n", "", "total(s)", "GFLOPS")
	fmt.Fprintf(w, "  %-28s %10.3f %10.3f\n", "immediate successor on", r.WithPolicy.Total.Seconds(), r.WithPolicy.GFLOPS)
	fmt.Fprintf(w, "  %-28s %10.3f %10.3f\n", "immediate successor off", r.WithoutPolicy.Total.Seconds(), r.WithoutPolicy.GFLOPS)
}
