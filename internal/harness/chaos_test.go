package harness

import (
	"testing"
	"time"

	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
)

// chaosResilience keeps the retransmit clock fast enough for test hosts
// while leaving a budget no healing fault schedule can exhaust.
var chaosResilience = mpi.Resilience{RetryTimeout: 2 * time.Millisecond, MaxRetries: 20}

// chaosSpec is the suite's fixed scenario: the tiny four-spheres problem
// on 2 nodes x 2 ranks x 2 cores, with or without a fault schedule.
func chaosSpec(v Variant, faults *simnet.Faults) RunSpec {
	opt := tinyOpts()
	cfg := FourSpheres([3]int{2, 2, 1}, opt.Scale)
	return RunSpec{
		Nodes: 2, RanksPerNode: 2, CoresPerRank: 2,
		Net: simnet.None(), Cfg: cfg, Variant: v,
		Chaos: faults, Resilience: chaosResilience,
	}
}

// TestChaosChecksumsMatchFaultFree locks in the resilience guarantee:
// every driver, run under the default seeded fault schedule, must finish
// with checksums bit-identical to its fault-free run. Faults may only
// cost time — never data.
func TestChaosChecksumsMatchFaultFree(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			t.Parallel()
			base, err := Run(chaosSpec(v, nil))
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			faults := simnet.DefaultFaults(123)
			m, err := Run(chaosSpec(v, &faults))
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			if m.Faults.Total() == 0 {
				t.Fatal("default schedule injected nothing; the run proved nothing")
			}
			if len(m.Checksums) != len(base.Checksums) {
				t.Fatalf("chaos run passed %d checksum stages, fault-free %d",
					len(m.Checksums), len(base.Checksums))
			}
			for i := range base.Checksums {
				if len(m.Checksums[i]) != len(base.Checksums[i]) {
					t.Fatalf("stage %d: %d checksums under faults, want %d",
						i, len(m.Checksums[i]), len(base.Checksums[i]))
				}
				for j := range base.Checksums[i] {
					if m.Checksums[i][j] != base.Checksums[i][j] {
						t.Fatalf("checksum[%d][%d] = %v under faults, want %v (bit-identical)",
							i, j, m.Checksums[i][j], base.Checksums[i][j])
					}
				}
			}
		})
	}
}

// TestChaosLogReproducible locks in the determinism contract end to end:
// the same -chaos-seed on the same problem must reproduce a byte-identical
// injected-event log, and a different seed must not.
func TestChaosLogReproducible(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) string {
		faults := simnet.DefaultFaults(seed)
		m, err := Run(chaosSpec(DataFlow, &faults))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Faults.Total() == 0 {
			t.Fatalf("seed %d: no faults injected", seed)
		}
		return simnet.LogString(m.FaultLog)
	}
	first := run(77)
	if again := run(77); again != first {
		t.Fatalf("same seed produced different injected-event logs:\n--- run 1\n%s--- run 2\n%s",
			first, again)
	}
	if other := run(78); other == first {
		t.Error("different seeds produced identical injected-event logs")
	}
}

// TestChaosMetricsPopulated checks the harness surfaces the chaos
// accounting: fault counts, the event log, and the transport's recovery
// counters all land in Metrics.
func TestChaosMetricsPopulated(t *testing.T) {
	t.Parallel()
	faults := simnet.DefaultFaults(9)
	m, err := Run(chaosSpec(MPIOnly, &faults))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(m.FaultLog)) != m.Faults.Total() {
		t.Errorf("fault log has %d events, counters say %d", len(m.FaultLog), m.Faults.Total())
	}
	if lost := m.Faults.Drops + m.Faults.PartitionDrops; lost > 0 && m.Chaos.Recovered != lost {
		t.Errorf("recovered %d of %d dropped messages", m.Chaos.Recovered, lost)
	}
	if m.Chaos.Abandoned != 0 {
		t.Errorf("%d messages abandoned under a healing schedule", m.Chaos.Abandoned)
	}
}
