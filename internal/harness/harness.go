// Package harness runs the paper's experiments: it builds virtual
// clusters, executes the application variants on them, aggregates per-rank
// results into the metrics the paper reports (total / refinement /
// non-refinement time, GFLOPS throughput, parallel efficiency), and prints
// the tables and figure series of the evaluation section.
//
// The scales are configurable: the defaults target a laptop-class host
// (small virtual nodes, seconds per configuration), while flags on
// cmd/experiments let larger machines run closer to the paper's sizes.
package harness

import (
	"os"
	"runtime"
	"time"

	"miniamr/internal/amr/app"
	"miniamr/internal/cluster"
	"miniamr/internal/driver"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

// Variant selects a parallelisation strategy; the type and the registry
// of (application, variant) pairs live in the driver skeleton.
type Variant = driver.Variant

// The three variants the paper evaluates.
const (
	MPIOnly  = driver.MPIOnly  // reference MPI-only, one rank per core
	ForkJoin = driver.ForkJoin // hybrid MPI+OpenMP fork-join
	DataFlow = driver.DataFlow // hybrid TAMPI+OmpSs-2 data-flow (the paper's)
)

// Variants lists all variants in presentation order.
var Variants = driver.Variants

// RunSpec describes one measured execution.
type RunSpec struct {
	// Topology of the virtual cluster.
	Nodes        int
	RanksPerNode int
	CoresPerRank int
	// Net is the interconnect model; the zero model charges nothing.
	Net simnet.Model
	// Cfg is the miniAMR problem, used when Job is nil. Cfg.Workers is
	// overridden with CoresPerRank.
	Cfg app.Config
	// Job, when non-nil, selects the application to run (any registered
	// driver.Job); Cfg is ignored. When nil the spec runs miniAMR on Cfg.
	Job driver.Job
	// Variant selects the strategy. It must be registered for the
	// application; unknown variant names are rejected before the cluster
	// is built.
	Variant Variant
	// Recorder, when non-nil, captures an execution trace.
	Recorder *trace.Recorder
	// Sanitize attaches the amrsan runtime sanitizer to the run; findings
	// land in Metrics.Sanitizer. Setting the AMRSAN=1 environment variable
	// forces it on for every run (the test suite's opt-in hook).
	Sanitize bool
	// Chaos, when non-nil and enabled, injects the seeded fault schedule
	// into the transport and switches the MPI layer to its reliable
	// (retransmit/ack) path. The injected events land in Metrics.FaultLog
	// and, when a Recorder is attached, as zero-length "fault:<kind>"
	// trace spans.
	Chaos *simnet.Faults
	// Resilience tunes the retransmit protocol of a chaos run; the zero
	// value selects the defaults. Ignored when Chaos is off.
	Resilience mpi.Resilience
	// Procs splits the run across this many OS processes connected by the
	// TCP wire transport (internal/wire); each child process owns a
	// contiguous rank block. 0 or 1 keeps the whole world in one process
	// over the channel transport. Multi-process runs require the job to
	// implement driver.ConfigJob (both bundled applications do) and reject
	// Recorder and Sanitize, which are in-process instruments.
	Procs int
	// ProcTimeout bounds a multi-process run end to end, spawn through
	// teardown; zero selects 2 minutes. On expiry the parent kills the
	// whole child process tree.
	ProcTimeout time.Duration
}

// sanitizeForced reports whether the environment forces sanitized runs.
func sanitizeForced() bool { return os.Getenv("AMRSAN") == "1" }

// Metrics aggregates a run across ranks the way the paper reports results.
type Metrics struct {
	Ranks int
	Cores int
	// Total and Refine are the maxima across ranks (job completion times);
	// NoRefine is their difference.
	Total, Refine, NoRefine time.Duration
	// Flops is the total stencil work.
	Flops int64
	// GFLOPS is Flops / Total / 1e9; NRGFLOPS uses the non-refinement time.
	GFLOPS, NRGFLOPS float64
	// HostEff and NRHostEff normalise the run by the host's measured
	// compute capacity: ideal stencil time divided by the measured total
	// (or non-refinement) time. They isolate communication and runtime
	// overhead on hosts with fewer physical cores than virtual ones; see
	// the calibration notes in calibrate.go.
	HostEff, NRHostEff float64
	// Tasks is the total task count (data-flow only).
	Tasks int
	// Checksums is rank 0's validated checksum history.
	Checksums [][]float64
	// FinalBlocks is the total block count at the end.
	FinalBlocks int
	// Messages and CommBytes total the point-to-point traffic of all ranks.
	Messages, CommBytes int64
	// Arena is the world buffer arena's traffic: pooled gets/puts, hit
	// rate, and (for a clean run) zero live buffers. All ranks share one
	// arena, so these are whole-job counters.
	Arena membuf.Stats
	// HeapAllocs is the number of heap objects the process allocated while
	// the job ran (a runtime.MemStats.Mallocs delta). Together with Arena
	// it shows how much of the message traffic the pooling absorbs.
	HeapAllocs uint64
	// MeshHistory and MeshView come from rank 0 (replicated state).
	MeshHistory []driver.MeshStat
	MeshView    string
	// Sanitizer holds the amrsan findings of a sanitized run (nil when the
	// sanitizer was off; empty for a clean sanitized run).
	Sanitizer []sanitize.Report
	// Faults counts the injected faults of a chaos run by kind.
	Faults simnet.FaultStats
	// FaultLog is the chaos run's injected-event schedule, sorted
	// deterministically: the same seed yields a byte-identical log.
	FaultLog []simnet.FaultEvent
	// Chaos counts the transport's recovery work (retransmits, discarded
	// duplicates, reordered arrivals, recovered drops, abandoned sends).
	Chaos mpi.ChaosStats
}

// Run executes a spec and aggregates the metrics.
func Run(spec RunSpec) (Metrics, error) {
	if spec.Procs > 1 {
		return runMultiProc(spec)
	}
	job := spec.Job
	if job == nil {
		job = app.Job(spec.Cfg)
	}
	if err := driver.CheckVariant(job.App(), spec.Variant); err != nil {
		return Metrics{}, err
	}
	topo, err := cluster.New(spec.Nodes, spec.RanksPerNode, spec.CoresPerRank)
	if err != nil {
		return Metrics{}, err
	}
	world := mpi.NewWorld(topo, spec.Net)
	var inj *simnet.Injector
	if spec.Chaos != nil && spec.Chaos.Enabled() {
		inj = simnet.NewInjector(*spec.Chaos)
		if rec := spec.Recorder; rec != nil {
			inj.OnEvent = func(ev simnet.FaultEvent) {
				now := time.Now()
				rec.Record(ev.Src, 0, "fault:"+ev.Kind.String(), now, now)
			}
		}
		world.EnableChaos(inj, spec.Resilience)
	}
	var san *sanitize.Sanitizer
	if spec.Sanitize || sanitizeForced() {
		san = sanitize.New(sanitize.Options{})
		san.Attach(world)
	}
	program, err := job.Bind(spec.Variant, spec.CoresPerRank, san)
	if err != nil {
		return Metrics{}, err
	}
	results := make([]driver.Result, topo.Ranks())
	errs := make([]error, topo.Ranks())
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	runErr := world.Run(func(c *mpi.Comm) {
		res, err := program(c, spec.Recorder)
		if err != nil {
			errs[c.Rank()] = err
			panic(err) // surface through World.Run and fail peers fast
		}
		results[c.Rank()] = res
	})
	if inj != nil && runErr == nil {
		// Drain the reliable path before any audit or stats snapshot:
		// a dropped ack can leave a sender's outbox clone leased after
		// every rank's program has returned, and the sanitizer would
		// (rightly, but unhelpfully) flag the in-flight retransmit
		// state as a leak.
		world.QuiesceReliable(5 * time.Second)
	}
	var findings []sanitize.Report
	if san != nil {
		findings = san.Finish()
	}
	for _, err := range errs {
		if err != nil {
			return Metrics{}, err
		}
	}
	if runErr != nil {
		return Metrics{}, runErr
	}

	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	m := Metrics{
		Ranks: topo.Ranks(), Cores: topo.Cores(),
		Arena:      world.Arena().Stats(),
		HeapAllocs: ms1.Mallocs - ms0.Mallocs,
		Sanitizer:  findings,
	}
	if inj != nil {
		m.Faults = inj.Stats()
		m.FaultLog = inj.Log()
		m.Chaos = world.ChaosStats()
	}
	m.aggregate(results)
	return m, nil
}

// aggregate folds the per-rank results into the cross-rank aggregates and
// derived rates the paper reports. Checksums, mesh history and the mesh
// view come from rank 0 (replicated state). Both execution modes — the
// in-process world and the multi-process parent — funnel through here, so
// a metric's definition cannot drift between them.
func (m *Metrics) aggregate(results []driver.Result) {
	m.Checksums = results[0].Checksums
	m.MeshHistory = results[0].MeshHistory
	m.MeshView = results[0].FinalMeshView
	for _, r := range results {
		if r.TotalTime > m.Total {
			m.Total = r.TotalTime
		}
		if r.RefineTime > m.Refine {
			m.Refine = r.RefineTime
		}
		m.Flops += r.Flops
		m.Tasks += r.TaskCount
		m.FinalBlocks += r.FinalBlocks
		m.Messages += r.Comm.Messages
		m.CommBytes += r.Comm.Bytes
	}
	m.NoRefine = m.Total - m.Refine
	if m.Total > 0 {
		m.GFLOPS = float64(m.Flops) / m.Total.Seconds() / 1e9
	}
	if m.NoRefine > 0 {
		m.NRGFLOPS = float64(m.Flops) / m.NoRefine.Seconds() / 1e9
	}
	ideal := float64(m.Flops) / hostCapacity(m.Cores)
	if m.Total > 0 {
		m.HostEff = ideal / m.Total.Seconds()
	}
	if m.NoRefine > 0 {
		m.NRHostEff = ideal / m.NoRefine.Seconds()
	}
}
