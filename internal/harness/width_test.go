package harness

import (
	"go/token"
	"path/filepath"
	"testing"

	"miniamr/internal/analysis"
	"miniamr/internal/driver"
	"miniamr/internal/hydro"
	"miniamr/internal/simnet"
	"miniamr/internal/task"
)

// TestDynamicWidthWithinStaticModel cross-checks perflint's static cost
// model against a real execution: a task.WidthMeter records the dynamic
// ready-set high-water mark of a HYDRO data-flow run.
//
// Two properties tie the model to reality. Upward: the per-stage ready
// set can never exceed the static max-width antichain, so the dynamic
// high-water must stay at or below the model's MaxWidth. Downward: the
// CFL scan spawns one heavy task per owned tile with no dependencies
// between them, so all of them are ready before the first one finishes —
// the meter must observe at least the full tiles-axis width, which
// exceeds the worker count. That surplus of ready work over cores is
// exactly the slack the data-flow scheduler exploits and the serial
// variant (static width 1) forgoes.
//
// The measurement is a lower bound on the true concurrency: cheap tasks
// (ghost copies) are consumed as fast as the main goroutine can spawn
// them, so the meter does not see the model's full cross-phase antichain.
// The dataflow-beats-forkjoin comparison on static widths lives in
// internal/analysis (TestDataflowWidthBeatsForkJoin).
func TestDynamicWidthWithinStaticModel(t *testing.T) {
	// Static side: extract the hydro-dataflow DAG from source and
	// evaluate it at this test's run configuration.
	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, []string{filepath.Join("..", "hydro")}, false)
	if err != nil {
		t.Fatal(err)
	}
	graphs, findings := analysis.ExtractGraphs(pkgs)
	for _, f := range findings {
		t.Fatalf("graph finding on the real tree: %s", f)
	}
	var df *analysis.Graph
	for _, g := range graphs {
		if g.Driver == "hydro-dataflow" {
			df = g
		}
	}
	if df == nil {
		t.Fatal("no hydro-dataflow graph extracted")
	}
	// The run below decomposes a 4x4 tiling over 2 ranks in contiguous
	// rows, so each rank owns 8 tiles (2 rows of 4). Per direction that
	// gives: X — every high-neighbour pair is rank-local (4 ring pairs
	// per row x 2 rows x 2 copies = 16 local copies, no messages); Y —
	// the two cut rows fold into one aggregated message per rank (8
	// segments: 4 up plus 4 wrap-around) and the interior row pair makes
	// 8 local copies. The static phase models one generic stage, so each
	// axis takes its per-stage maximum.
	const workers = 4
	axes := map[string]int{"tiles": 8, "msgs": 1, "segs": 8, "locals": 16}
	static := analysis.ProfileGraph(df, analysis.CostConfig{Workers: workers, Axes: axes})
	for _, w := range static.Warnings {
		t.Fatalf("static profile warning: %s", w)
	}
	if static.Mode != "dataflow" {
		t.Fatalf("static mode = %q, want dataflow", static.Mode)
	}

	// Dynamic side: run the data-flow variant with a width meter on
	// every rank.
	meters := []*task.WidthMeter{task.NewWidthMeter(), task.NewWidthMeter()}
	cfg := hydro.Config{
		NX: 128, NY: 128, TilesX: 4, TilesY: 4,
		Timesteps: 6, ChecksumEvery: 4,
		TaskObserver: func(rank int) task.Observer { return meters[rank] },
	}
	if _, err := Run(RunSpec{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: workers,
		Net: simnet.None(), Job: hydro.Job(cfg), Variant: driver.DataFlow,
	}); err != nil {
		t.Fatal(err)
	}

	hwm := 0
	for rank, m := range meters {
		t.Logf("rank %d: %d tasks, ready-set high-water %d (static max width %d)",
			rank, m.Spawned(), m.HighWater(), static.MaxWidth)
		if m.Spawned() == 0 {
			t.Errorf("rank %d: width meter saw no tasks — observer not plumbed through", rank)
		}
		if m.HighWater() > hwm {
			hwm = m.HighWater()
		}
	}
	if hwm > static.MaxWidth {
		t.Errorf("dynamic ready-set high-water %d exceeds the static max width %d", hwm, static.MaxWidth)
	}
	if hwm < axes["tiles"] {
		t.Errorf("dynamic ready-set high-water %d below the tiles-axis width %d — "+
			"the CFL scan's predicted concurrency was not realized", hwm, axes["tiles"])
	}
	if hwm <= workers {
		t.Errorf("dynamic ready-set high-water %d does not exceed the %d workers — "+
			"no surplus ready work for the scheduler to exploit", hwm, workers)
	}
}
