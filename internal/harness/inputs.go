package harness

import (
	"fmt"

	"miniamr/internal/amr/app"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/object"
)

// Scale shrinks the paper's inputs to laptop-class sizes while keeping
// their structure. The zero value selects the defaults used throughout the
// reproduction's experiments.
type Scale struct {
	// BlockCells is the block edge length (paper: 18 for Table I, 12 for
	// scaling, 10 for strong scaling). Default 8.
	BlockCells int
	// Vars is the number of variables per cell (paper: 60 / 40 / 20).
	// Default 8.
	Vars int
	// Timesteps and StagesPerTimestep shape the loop (paper: up to
	// 99 x 40). Defaults 6 x 6.
	Timesteps         int
	StagesPerTimestep int
	// MaxLevel caps refinement depth. Default 2.
	MaxLevel int
}

// cadence derives the checksum and refinement cadences: the paper's
// values (checksum every 10 stages, refinement every 5 timesteps), clamped
// so that scaled-down runs still exercise both phases.
func (s Scale) cadence() (checksumEvery, refineEvery int) {
	checksumEvery = 10
	if total := s.Timesteps * s.StagesPerTimestep; total < checksumEvery {
		checksumEvery = s.StagesPerTimestep
	}
	refineEvery = 5
	if s.Timesteps < refineEvery {
		refineEvery = (s.Timesteps + 1) / 2
	}
	return checksumEvery, refineEvery
}

func (s *Scale) defaults() {
	if s.BlockCells == 0 {
		s.BlockCells = 8
	}
	if s.Vars == 0 {
		s.Vars = 8
	}
	if s.Timesteps == 0 {
		s.Timesteps = 6
	}
	if s.StagesPerTimestep == 0 {
		s.StagesPerTimestep = 6
	}
	if s.MaxLevel == 0 {
		s.MaxLevel = 2
	}
}

// SingleSphere builds the Table I input: one big sphere entering the mesh
// from a lower corner, refining the regions it crosses (the input of Rico
// et al. that the paper reuses). Refinement every 5 timesteps, checksum
// every 10 stages, as in the paper's Section V-A.
func SingleSphere(root [3]int, sc Scale) app.Config {
	sc.defaults()
	checksumEvery, refineEvery := sc.cadence()
	epochs := sc.Timesteps/refineEvery + 1
	// The sphere starts outside the lower corner and reaches the domain
	// centre over the run.
	rate := 0.9 / float64(epochs)
	return app.Config{
		RootBlocks:        root,
		MaxLevel:          sc.MaxLevel,
		BlockSize:         grid.Size{X: sc.BlockCells, Y: sc.BlockCells, Z: sc.BlockCells},
		Vars:              sc.Vars,
		Timesteps:         sc.Timesteps,
		StagesPerTimestep: sc.StagesPerTimestep,
		ChecksumEvery:     checksumEvery,
		RefineEvery:       refineEvery,
		Objects: []object.Object{{
			Type:   object.SpheroidSurface,
			Center: [3]float64{-0.4, -0.4, -0.4},
			Size:   [3]float64{0.45, 0.45, 0.45},
			Move:   [3]float64{rate, rate, rate},
		}},
	}
}

// FourSpheres builds the scaling input of Vaughan et al.: two spheres on
// one side of the mesh moving along +x and two on the opposite side moving
// along -x, sized to pass near the centre without colliding; their rate is
// derived from the epoch count so they cross without reaching the borders.
func FourSpheres(root [3]int, sc Scale) app.Config {
	sc.defaults()
	checksumEvery, refineEvery := sc.cadence()
	epochs := sc.Timesteps/refineEvery + 1
	travel := 0.6
	rate := travel / float64(epochs)
	r := 0.12
	mk := func(x, y, z, vx float64) object.Object {
		return object.Object{
			Type:   object.SpheroidSurface,
			Center: [3]float64{x, y, z},
			Size:   [3]float64{r, r, r},
			Move:   [3]float64{vx, 0, 0},
		}
	}
	return app.Config{
		RootBlocks:        root,
		MaxLevel:          sc.MaxLevel,
		BlockSize:         grid.Size{X: sc.BlockCells, Y: sc.BlockCells, Z: sc.BlockCells},
		Vars:              sc.Vars,
		Timesteps:         sc.Timesteps,
		StagesPerTimestep: sc.StagesPerTimestep,
		ChecksumEvery:     checksumEvery,
		RefineEvery:       refineEvery,
		Objects: []object.Object{
			mk(0.2, 0.3, 0.3, rate),
			mk(0.2, 0.7, 0.7, rate),
			mk(0.8, 0.3, 0.7, -rate),
			mk(0.8, 0.7, 0.3, -rate),
		},
	}
}

// WeakMesh computes the root-block arrangement for a weak-scaling point:
// blocksPerNode blocks per node, doubling the total along one direction in
// round-robin fashion as nodes double, exactly the paper's construction.
// nodes must be a power of two.
func WeakMesh(nodes, blocksPerNode int) ([3]int, error) {
	if nodes <= 0 || nodes&(nodes-1) != 0 {
		return [3]int{}, fmt.Errorf("harness: weak scaling needs a power-of-two node count, got %d", nodes)
	}
	root := factor3(blocksPerNode)
	for d := 0; nodes > 1; nodes >>= 1 {
		root[d%3] *= 2
		d++
	}
	return root, nil
}

// Factor3 splits a positive block count into three roughly equal factors,
// preferring near-cubic arrangements — the default way the tools arrange
// root blocks over the domain.
func Factor3(n int) [3]int { return factor3(n) }

// factor3 splits n into three roughly equal factors (largest first removed),
// preferring near-cubic arrangements.
func factor3(n int) [3]int {
	best := [3]int{n, 1, 1}
	bestScore := n * n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if score := c - a; score < bestScore {
				best = [3]int{c, b, a}
				bestScore = score
			}
		}
	}
	return best
}

// DataFlowOptions applies the paper's preferred TAMPI+OSS settings (the
// weak-scaling configuration: --send_faces, --separate_buffers, eight
// communication tasks per neighbour and direction, delayed checksum).
func DataFlowOptions(cfg *app.Config) {
	cfg.SendFaces = true
	cfg.SeparateBuffers = true
	cfg.MaxCommTasks = 8
	cfg.DelayedChecksum = true
}
