package harness

import (
	"runtime"
	"sync"
	"time"

	"miniamr/internal/amr/grid"
)

// Host compute calibration.
//
// The reproduction's virtual cluster multiplexes every rank onto the host's
// real cores, so classic parallel efficiency (throughput growing linearly
// with virtual nodes) is unobservable once the virtual cores outnumber the
// physical ones — all compute serialises. To still expose the paper's
// mechanism (how much time each variant loses to communication and runtime
// overhead as the cluster grows), the harness normalises throughput by the
// host's measured stencil capacity:
//
//	HostEff = ideal compute time / measured time
//	        = (Flops / host rate) / Total
//
// A variant that overlaps communication with computation keeps HostEff
// high as the virtual cluster grows; one that serialises waits sees it
// fall. On a machine with at least as many physical cores as virtual ones
// this converges to the paper's efficiency definition.

var (
	calOnce sync.Once
	calRate float64 // flops per second of one host core running the stencil
)

// hostRate measures (once) the host's single-core stencil rate and scales
// it by the usable parallelism.
func hostRate() float64 {
	calOnce.Do(func() {
		size := grid.Size{X: 16, Y: 16, Z: 16}
		d := grid.MustNewData(size, 8)
		d.Fill([3]float64{0, 0, 0}, [3]float64{1. / 16, 1. / 16, 1. / 16},
			func(v int, x, y, z float64) float64 { return x + y + z + float64(v) })
		// Warm up, then measure for ~60ms.
		d.Stencil7(0, 8)
		var flops int64
		start := time.Now()
		for time.Since(start) < 60*time.Millisecond {
			d.Stencil7(0, 8)
			flops += d.Stencil7Flops(0, 8)
		}
		calRate = float64(flops) / time.Since(start).Seconds()
		if calRate <= 0 {
			calRate = 1e9 // defensive fallback
		}
	})
	return calRate
}

// hostCapacity returns the host's aggregate stencil rate available to a
// virtual cluster with the given core count.
func hostCapacity(virtualCores int) float64 {
	p := runtime.GOMAXPROCS(0)
	if virtualCores < p {
		p = virtualCores
	}
	return hostRate() * float64(p)
}
