package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"miniamr/internal/membuf"
)

// Deliverer receives inbound wire traffic. mpi.World satisfies it: data
// frames land in the destination rank's matching engine, sequenced frames
// route through the reliable path's dedup/reorder state, and acks settle
// the local sender's outbox.
type Deliverer interface {
	// RemoteDeliver hands an inbound plain message to dst's matching
	// engine. Ownership of pay transfers to the callee.
	RemoteDeliver(src, dst, tag int, pay *membuf.Lease)
	// RemoteDeliverSeq hands an inbound reliable-path attempt to dst's
	// dedup/reorder state. Ownership of pay transfers to the callee.
	RemoteDeliverSeq(src, dst, tag, seq int, pay *membuf.Lease)
	// RemoteAck settles seq of the (src, dst) pair on src's outbox.
	RemoteAck(src, dst, seq int)
}

// peer is one fully established mesh connection. The write side is
// shared by every local rank goroutine and serialised by mu; the read
// side is owned exclusively by the peer's read loop.
type peer struct {
	proc int
	conn net.Conn

	mu      sync.Mutex // serialises writes; leaf lock, nothing acquired under it
	bw      *bufio.Writer
	scratch []byte // big-endian-host encode fallback, reused under mu

	br *bufio.Reader
}

// writeFrame writes one frame under the peer's write lock and flushes, so
// a frame from one rank goroutine is never interleaved with another's.
func (p *peer) writeFrame(h Header, pay *membuf.Lease, raw []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := WriteFrame(p.bw, h, pay, raw, &p.scratch); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Node is one process's endpoint of the wire mesh: a listener, one
// established connection per peer process, and the read loops that pump
// inbound frames into the local World. It implements mpi.Transport.
type Node struct {
	id     int // this process's id
	nprocs int
	ranks  int // total ranks across all processes
	ln     net.Listener
	peers  []*peer // indexed by process id; nil at our own slot

	arena   *membuf.Arena
	deliver Deliverer

	wg        sync.WaitGroup // read loops
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error        // set once, under closeOnce
	readErr   atomic.Value // first read-loop error (error)
	byesSeen  atomic.Int32
}

// helloInfo is the JSON payload of a hello frame.
type helloInfo struct {
	Proc   int    `json:"proc"`
	Ranks  int    `json:"ranks"`
	NProcs int    `json:"nprocs"`
	Addr   string `json:"addr"`
}

// welcomeInfo is the JSON payload of a welcome frame.
type welcomeInfo struct {
	Addrs []string `json:"addrs"`
}

// Listen opens this process's listening socket. An empty addr listens on
// an ephemeral loopback port — the hermetic default for tests; Addr
// reports the bound address for the rendezvous.
func Listen(addr string) (*Node, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	return &Node{ln: ln}, nil
}

// Addr returns the node's bound listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Bootstrap performs the rendezvous and builds the full mesh. Process 0
// is the coordinator: every other process dials coordAddr (ignored by
// process 0 itself), announces itself with a hello frame, and receives
// the full process→address map in the welcome reply; the hello connection
// is kept as the 0↔i data connection. The remaining mesh edges are built
// with a deterministic direction — higher id dials lower, announcing
// itself with a peer frame — so exactly one connection exists per pair.
// The whole step observes the timeout; established connections have their
// deadlines cleared before Bootstrap returns.
func (n *Node) Bootstrap(id, nprocs, ranks int, coordAddr string, timeout time.Duration) error {
	if nprocs < 1 || id < 0 || id >= nprocs {
		return fmt.Errorf("wire: bad process id %d of %d", id, nprocs)
	}
	if nprocs > ranks {
		return fmt.Errorf("wire: %d processes for %d ranks; every process must host at least one rank", nprocs, ranks)
	}
	n.id, n.nprocs, n.ranks = id, nprocs, ranks
	n.peers = make([]*peer, nprocs)
	deadline := time.Now().Add(timeout)
	if id == 0 {
		if err := n.coordinate(deadline); err != nil {
			return err
		}
	} else {
		if err := n.join(coordAddr, deadline); err != nil {
			return err
		}
	}
	for _, p := range n.peers {
		if p != nil {
			if err := p.conn.SetDeadline(time.Time{}); err != nil {
				return fmt.Errorf("wire: clear deadline to proc %d: %w", p.proc, err)
			}
		}
	}
	return nil
}

func newPeer(proc int, conn net.Conn) *peer {
	return &peer{
		proc: proc,
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// coordinate is process 0's side of the rendezvous: accept a hello from
// every peer, then broadcast the completed address map.
func (n *Node) coordinate(deadline time.Time) error {
	addrs := make([]string, n.nprocs)
	addrs[0] = n.Addr()
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := n.ln.(deadliner); ok {
		if err := d.SetDeadline(deadline); err != nil {
			return err
		}
	}
	for got := 1; got < n.nprocs; got++ {
		conn, err := n.ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: coordinator accept (have %d/%d peers): %w", got-1, n.nprocs-1, err)
		}
		if err := conn.SetDeadline(deadline); err != nil {
			conn.Close()
			return err
		}
		p := newPeer(-1, conn)
		h, _, raw, err := ReadFrame(p.br, nil)
		if err != nil || h.Type != FrameHello {
			conn.Close()
			return fmt.Errorf("wire: coordinator: expected hello, got %v err %v", h.Type, err)
		}
		var hi helloInfo
		if err := json.Unmarshal(raw, &hi); err != nil {
			conn.Close()
			return fmt.Errorf("wire: bad hello payload: %w", err)
		}
		if hi.Proc < 1 || hi.Proc >= n.nprocs || hi.NProcs != n.nprocs || hi.Ranks != n.ranks {
			conn.Close()
			return fmt.Errorf("wire: hello mismatch: %+v (want nprocs=%d ranks=%d)", hi, n.nprocs, n.ranks)
		}
		if n.peers[hi.Proc] != nil {
			conn.Close()
			return fmt.Errorf("wire: duplicate hello from proc %d", hi.Proc)
		}
		p.proc = hi.Proc
		addrs[hi.Proc] = hi.Addr
		n.peers[hi.Proc] = p
	}
	raw, err := json.Marshal(welcomeInfo{Addrs: addrs})
	if err != nil {
		return err
	}
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		if err := p.writeFrame(Header{Type: FrameWelcome, Kind: KindNone}, nil, raw); err != nil {
			return fmt.Errorf("wire: welcome to proc %d: %w", p.proc, err)
		}
	}
	return nil
}

// join is a non-coordinator's side: dial the coordinator, hello/welcome,
// then complete the mesh (dial lower ids, accept higher ones).
func (n *Node) join(coordAddr string, deadline time.Time) error {
	conn, err := net.DialTimeout("tcp", coordAddr, time.Until(deadline))
	if err != nil {
		return fmt.Errorf("wire: proc %d dial coordinator %s: %w", n.id, coordAddr, err)
	}
	if err := conn.SetDeadline(deadline); err != nil {
		conn.Close()
		return err
	}
	p0 := newPeer(0, conn)
	raw, err := json.Marshal(helloInfo{Proc: n.id, Ranks: n.ranks, NProcs: n.nprocs, Addr: n.Addr()})
	if err != nil {
		return err
	}
	if err := p0.writeFrame(Header{Type: FrameHello, Kind: KindNone}, nil, raw); err != nil {
		return fmt.Errorf("wire: proc %d hello: %w", n.id, err)
	}
	h, _, wraw, err := ReadFrame(p0.br, nil)
	if err != nil || h.Type != FrameWelcome {
		conn.Close()
		return fmt.Errorf("wire: proc %d: expected welcome, got %v err %v", n.id, h.Type, err)
	}
	var wi welcomeInfo
	if err := json.Unmarshal(wraw, &wi); err != nil || len(wi.Addrs) != n.nprocs {
		conn.Close()
		return fmt.Errorf("wire: bad welcome payload (%d addrs, want %d): %v", len(wi.Addrs), n.nprocs, err)
	}
	n.peers[0] = p0

	// Dial every lower non-coordinator id, announcing ourselves.
	for j := 1; j < n.id; j++ {
		conn, err := net.DialTimeout("tcp", wi.Addrs[j], time.Until(deadline))
		if err != nil {
			return fmt.Errorf("wire: proc %d dial proc %d at %s: %w", n.id, j, wi.Addrs[j], err)
		}
		if err := conn.SetDeadline(deadline); err != nil {
			conn.Close()
			return err
		}
		p := newPeer(j, conn)
		if err := p.writeFrame(Header{Type: FramePeer, Kind: KindNone, Src: n.id}, nil, nil); err != nil {
			return fmt.Errorf("wire: proc %d introduce to proc %d: %w", n.id, j, err)
		}
		n.peers[j] = p
	}

	// Accept every higher id.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := n.ln.(deadliner); ok {
		if err := d.SetDeadline(deadline); err != nil {
			return err
		}
	}
	for need := n.nprocs - n.id - 1; need > 0; need-- {
		conn, err := n.ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: proc %d accept mesh peer: %w", n.id, err)
		}
		if err := conn.SetDeadline(deadline); err != nil {
			conn.Close()
			return err
		}
		p := newPeer(-1, conn)
		h, _, _, err := ReadFrame(p.br, nil)
		if err != nil || h.Type != FramePeer {
			conn.Close()
			return fmt.Errorf("wire: proc %d: expected peer intro, got %v err %v", n.id, h.Type, err)
		}
		if h.Src <= n.id || h.Src >= n.nprocs || n.peers[h.Src] != nil {
			conn.Close()
			return fmt.Errorf("wire: proc %d: bad peer intro from %d", n.id, h.Src)
		}
		p.proc = h.Src
		n.peers[h.Src] = p
	}
	return nil
}

// Start attaches the local delivery target and receive arena and launches
// one read loop per peer connection. It must be called exactly once,
// after Bootstrap and before any traffic flows.
func (n *Node) Start(deliver Deliverer, arena *membuf.Arena) {
	n.deliver = deliver
	n.arena = arena
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		n.wg.Add(1)
		go n.readLoop(p)
	}
}

// OwnerOf returns the process id hosting the given rank under this
// node's contiguous partition.
func (n *Node) OwnerOf(rank int) int { return OwnerOf(n.ranks, n.nprocs, rank) }

// LocalRange returns the rank range [lo, hi) this process hosts.
func (n *Node) LocalRange() (lo, hi int) { return RankRange(n.ranks, n.nprocs, n.id) }

// ID returns this process's id.
func (n *Node) ID() int { return n.id }

// NProcs returns the number of processes in the mesh.
func (n *Node) NProcs() int { return n.nprocs }

func (n *Node) peerFor(rank int) (*peer, error) {
	owner := n.OwnerOf(rank)
	if owner == n.id {
		return nil, fmt.Errorf("wire: rank %d is local to proc %d", rank, n.id)
	}
	if owner < 0 || owner >= len(n.peers) || n.peers[owner] == nil {
		return nil, fmt.Errorf("wire: no connection to proc %d (rank %d)", owner, rank)
	}
	return n.peers[owner], nil
}

// Send implements mpi.Transport: it serialises pay as one data frame on
// the stream to dst's owning process. The lease is borrowed — it streams
// straight from its backing array into the socket and is returned to the
// caller untouched. Per-stream FIFO order plus the receiver's in-order
// read loop carry the non-overtaking guarantee across the wire.
func (n *Node) Send(src, dst, tag, seq int, reliable bool, pay *membuf.Lease) error {
	p, err := n.peerFor(dst)
	if err != nil {
		return err
	}
	typ := FrameData
	if reliable {
		typ = FrameDataSeq
	}
	return p.writeFrame(Header{Type: typ, Src: src, Dst: dst, Tag: tag, Seq: seq}, pay, nil)
}

// SendAck implements mpi.Transport: it acknowledges seq of the (src, dst)
// pair to src's owning process.
func (n *Node) SendAck(src, dst, seq int) error {
	p, err := n.peerFor(src)
	if err != nil {
		return err
	}
	return p.writeFrame(Header{Type: FrameAck, Kind: KindNone, Src: src, Dst: dst, Seq: seq}, nil, nil)
}

// readLoop pumps one peer connection: data frames into the matching
// engine, acks into the sender's outbox, until bye/EOF/Close. Payload
// leases come from the node's arena and their ownership passes to the
// Deliverer. A frame that is structurally valid but semantically wrong
// for this process (a dst we don't host, a src the peer doesn't own)
// poisons the connection rather than panicking the process.
func (n *Node) readLoop(p *peer) {
	defer n.wg.Done()
	fail := func(err error) {
		if n.closed.Load() {
			return // errors after Close are expected teardown noise
		}
		n.readErr.CompareAndSwap(nil, error(fmt.Errorf("wire: proc %d reading from proc %d: %w", n.id, p.proc, err)))
		p.conn.Close()
	}
	lo, hi := n.LocalRange()
	for {
		h, pay, _, err := ReadFrame(p.br, n.arena)
		if err != nil {
			// A bare EOF sits exactly on a frame boundary: the peer
			// closed its end cleanly (its Bye may have raced our own
			// close). Mid-frame truncation still comes back wrapped as
			// ErrUnexpectedEOF and is a real failure.
			if err != io.EOF {
				fail(err)
			}
			return
		}
		switch h.Type {
		case FrameData, FrameDataSeq:
			if h.Dst < lo || h.Dst >= hi || n.OwnerOf(h.Src) != p.proc {
				pay.Release()
				fail(fmt.Errorf("misrouted data frame %d->%d", h.Src, h.Dst))
				return
			}
			if h.Type == FrameData {
				n.deliver.RemoteDeliver(h.Src, h.Dst, h.Tag, pay)
			} else {
				n.deliver.RemoteDeliverSeq(h.Src, h.Dst, h.Tag, h.Seq, pay)
			}
		case FrameAck:
			if h.Src < lo || h.Src >= hi || n.OwnerOf(h.Dst) != p.proc {
				fail(fmt.Errorf("misrouted ack %d->%d", h.Src, h.Dst))
				return
			}
			n.deliver.RemoteAck(h.Src, h.Dst, h.Seq)
		case FrameBye:
			n.byesSeen.Add(1)
			return
		default:
			fail(fmt.Errorf("unexpected %v frame after bootstrap", h.Type))
			return
		}
	}
}

// Err returns the first read-loop error, if any. Useful after Close to
// distinguish a clean shutdown from a poisoned connection.
func (n *Node) Err() error {
	if err, ok := n.readErr.Load().(error); ok {
		return err
	}
	return nil
}

// Close implements mpi.Transport: it announces a graceful shutdown with a
// bye frame on every stream, closes all connections and the listener, and
// waits for the read loops to drain. Callers must have quiesced the MPI
// job first (all ranks returned, and QuiesceReliable under chaos) — bytes
// in flight at Close are lost, exactly like a real process exiting.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { n.closeErr = n.doClose() })
	return n.closeErr
}

func (n *Node) doClose() error {
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		// Best effort: a peer that already left gets a broken pipe here.
		_ = p.writeFrame(Header{Type: FrameBye, Kind: KindNone, Src: n.id}, nil, nil)
	}
	n.closed.Store(true)
	var firstErr error
	for _, p := range n.peers {
		if p == nil {
			continue
		}
		// A read loop that failed has already closed this conn; that
		// double close is not an error of ours.
		if err := p.conn.Close(); err != nil && firstErr == nil && !errors.Is(err, net.ErrClosed) {
			firstErr = err
		}
	}
	if err := n.ln.Close(); err != nil && firstErr == nil && !errors.Is(err, net.ErrClosed) {
		firstErr = err
	}
	n.wg.Wait()
	return firstErr
}
