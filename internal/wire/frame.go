// Package wire is the TCP transport behind internal/mpi: it lets one MPI
// job span N OS processes (or machines), each hosting a contiguous rank
// range, connected by a full mesh of length-prefixed TCP streams.
//
// The package has three layers:
//
//   - A frame codec (this file): every unit on a stream is one
//     fixed-header, length-prefixed frame. Data frames carry a message
//     payload that serialises straight out of (and into) membuf leases —
//     no intermediate copy in user space. Control frames carry the
//     bootstrap handshake and the reliable path's acknowledgements.
//   - A rendezvous step (node.go): process 0 listens, peers dial it and
//     exchange a process→address map, then the full mesh is built with a
//     deterministic dial direction (higher id dials lower).
//   - An mpi.Transport implementation (node.go): sends pick the stream by
//     the destination rank's owning process; per-stream FIFO order is what
//     carries MPI's non-overtaking guarantee across the wire.
//
// Wire format (all multi-byte fields little-endian):
//
//	offset  size  field
//	0       4     magic "AMRW"
//	4       1     version (currently 1)
//	5       1     frame type
//	6       1     payload kind ([]float64, []int, []byte, or none)
//	7       1     reserved (must be 0)
//	8       4     src rank (int32)
//	12      4     dst rank (int32)
//	16      4     tag (int32)
//	20      4     sequence number (int32; 0 outside the reliable path)
//	24      4     payload length in bytes (uint32)
//
// followed by exactly the announced payload bytes. Float64 and int
// payloads are element-wise little-endian 8-byte values, which on
// little-endian hosts is the in-memory representation — the codec then
// reads and writes the lease's backing array directly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unsafe"

	"miniamr/internal/membuf"
)

// Version is the wire-format version this package speaks. A peer
// announcing any other version is rejected at frame parse time.
const Version = 1

// HeaderSize is the fixed size of every frame header.
const HeaderSize = 28

var magic = [4]byte{'A', 'M', 'R', 'W'}

// MaxDataBytes caps a data frame's payload. A header announcing more is
// rejected before any buffer is sized from it, so a corrupt or hostile
// length field can never drive an unbounded allocation. 16 MiB is two
// orders of magnitude above the largest message either application
// sends; raise it alongside a wire version bump if that ever changes.
const MaxDataBytes = 1 << 24 // 16 MiB

// MaxControlBytes caps a control frame's payload (bootstrap JSON).
const MaxControlBytes = 1 << 16

// FrameType discriminates the units on a stream.
type FrameType uint8

// The frame types. Data frames carry message payloads; the rest are
// control traffic.
const (
	// FrameData is a plain message: stream order is delivery order.
	FrameData FrameType = 1
	// FrameDataSeq is one delivery attempt of the reliable (chaos) path;
	// Seq is meaningful and the receiver routes through dedup/reorder.
	FrameDataSeq FrameType = 2
	// FrameAck acknowledges Seq of the (Src, Dst) pair to Src's outbox.
	FrameAck FrameType = 3
	// FrameHello introduces a peer to the coordinator (JSON payload:
	// helloInfo).
	FrameHello FrameType = 4
	// FrameWelcome is the coordinator's reply: the full process→address
	// map (JSON payload: welcomeInfo).
	FrameWelcome FrameType = 5
	// FramePeer introduces the dialling process on a mesh connection
	// (Src carries the process id; no payload).
	FramePeer FrameType = 6
	// FrameBye announces a graceful shutdown of the sending process.
	FrameBye FrameType = 7
)

func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameDataSeq:
		return "data+seq"
	case FrameAck:
		return "ack"
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FramePeer:
		return "peer"
	case FrameBye:
		return "bye"
	}
	return fmt.Sprintf("frametype(%d)", uint8(t))
}

// PayloadKind mirrors membuf.Kind on the wire, plus "none" for control
// frames.
type PayloadKind uint8

// The payload kinds.
const (
	KindFloat64 PayloadKind = 0
	KindInt     PayloadKind = 1
	KindByte    PayloadKind = 2
	KindNone    PayloadKind = 0xFF
)

func (k PayloadKind) elemSize() int {
	switch k {
	case KindFloat64, KindInt:
		return 8
	case KindByte:
		return 1
	}
	return 0
}

func (k PayloadKind) valid() bool {
	return k == KindFloat64 || k == KindInt || k == KindByte || k == KindNone
}

// Header is a decoded frame header.
type Header struct {
	Type   FrameType
	Kind   PayloadKind
	Src    int // source rank (data, ack) or process id (peer)
	Dst    int // destination rank
	Tag    int
	Seq    int
	NBytes int // payload length in bytes
}

// Count returns the payload's element count.
func (h Header) Count() int {
	if es := h.Kind.elemSize(); es > 0 {
		return h.NBytes / es
	}
	return 0
}

// Frame-structure errors. All decode failures wrap one of these (or an
// underlying I/O error), and none of them is ever a panic: a garbage
// stream must fail loudly, not take the process down.
var (
	ErrBadMagic    = errors.New("wire: bad frame magic")
	ErrBadVersion  = errors.New("wire: unsupported wire version")
	ErrBadType     = errors.New("wire: unknown frame type")
	ErrBadKind     = errors.New("wire: unknown payload kind")
	ErrBadLength   = errors.New("wire: invalid payload length")
	ErrFrameTooBig = errors.New("wire: frame exceeds size cap")
)

// PutHeader encodes h into buf, which must hold HeaderSize bytes.
func PutHeader(buf []byte, h Header) {
	_ = buf[HeaderSize-1]
	copy(buf[0:4], magic[:])
	buf[4] = Version
	buf[5] = byte(h.Type)
	buf[6] = byte(h.Kind)
	buf[7] = 0
	binary.LittleEndian.PutUint32(buf[8:12], uint32(int32(h.Src)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(int32(h.Dst)))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(int32(h.Tag)))
	binary.LittleEndian.PutUint32(buf[20:24], uint32(int32(h.Seq)))
	binary.LittleEndian.PutUint32(buf[24:28], uint32(h.NBytes))
}

// ParseHeader decodes and structurally validates a frame header: magic,
// version, type, kind, and a payload length that is non-negative, under
// the applicable cap, a multiple of the element size, and consistent with
// the frame type (control frames other than hello/welcome carry none).
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, fmt.Errorf("%w: %d header bytes", ErrBadLength, len(buf))
	}
	if [4]byte(buf[0:4]) != magic {
		return Header{}, ErrBadMagic
	}
	if buf[4] != Version {
		return Header{}, fmt.Errorf("%w: got %d, speak %d", ErrBadVersion, buf[4], Version)
	}
	h := Header{
		Type:   FrameType(buf[5]),
		Kind:   PayloadKind(buf[6]),
		Src:    int(int32(binary.LittleEndian.Uint32(buf[8:12]))),
		Dst:    int(int32(binary.LittleEndian.Uint32(buf[12:16]))),
		Tag:    int(int32(binary.LittleEndian.Uint32(buf[16:20]))),
		Seq:    int(int32(binary.LittleEndian.Uint32(buf[20:24]))),
		NBytes: 0,
	}
	nbytes := binary.LittleEndian.Uint32(buf[24:28])
	if buf[7] != 0 {
		return Header{}, fmt.Errorf("%w: reserved byte %d", ErrBadType, buf[7])
	}
	if !h.Kind.valid() {
		return Header{}, fmt.Errorf("%w: %d", ErrBadKind, buf[6])
	}
	switch h.Type {
	case FrameData, FrameDataSeq:
		if h.Kind == KindNone {
			return Header{}, fmt.Errorf("%w: data frame without payload kind", ErrBadKind)
		}
		if nbytes > MaxDataBytes {
			return Header{}, fmt.Errorf("%w: %d data bytes (cap %d)", ErrFrameTooBig, nbytes, MaxDataBytes)
		}
		if es := h.Kind.elemSize(); int(nbytes)%es != 0 {
			return Header{}, fmt.Errorf("%w: %d bytes is not a multiple of element size %d", ErrBadLength, nbytes, es)
		}
		if h.Src < 0 || h.Dst < 0 {
			return Header{}, fmt.Errorf("%w: negative rank %d->%d", ErrBadLength, h.Src, h.Dst)
		}
	case FrameHello, FrameWelcome:
		if nbytes > MaxControlBytes {
			return Header{}, fmt.Errorf("%w: %d control bytes (cap %d)", ErrFrameTooBig, nbytes, MaxControlBytes)
		}
	case FrameAck, FramePeer, FrameBye:
		if nbytes != 0 {
			return Header{}, fmt.Errorf("%w: %v frame with %d payload bytes", ErrBadLength, h.Type, nbytes)
		}
		if h.Kind != KindNone {
			return Header{}, fmt.Errorf("%w: %v frame with payload kind", ErrBadKind, h.Type)
		}
	default:
		return Header{}, fmt.Errorf("%w: %d", ErrBadType, buf[5])
	}
	h.NBytes = int(nbytes)
	return h, nil
}

// hostLittleEndian reports whether the in-memory representation of the
// lease element types already matches the (little-endian) wire format, in
// which case the codec reads and writes lease backing arrays directly.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// KindOf maps a lease's element type to its wire kind.
func KindOf(pay *membuf.Lease) PayloadKind {
	switch pay.Kind() {
	case membuf.KindFloat64:
		return KindFloat64
	case membuf.KindInt:
		return KindInt
	case membuf.KindByte:
		return KindByte
	}
	panic(fmt.Sprintf("wire: lease of unsupported kind %v", pay.Kind()))
}

// leaseView returns the lease's payload as the exact byte sequence the
// wire carries. On little-endian hosts this is the backing array itself
// (zero-copy); nil means the caller must fall back to elementwise
// encoding.
func leaseView(pay *membuf.Lease) []byte {
	switch pay.Kind() {
	case membuf.KindByte:
		return pay.Byte()
	case membuf.KindFloat64:
		if !hostLittleEndian {
			return nil
		}
		f := pay.Float64()
		if len(f) == 0 {
			return []byte{}
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*8)
	case membuf.KindInt:
		if !hostLittleEndian {
			return nil
		}
		i := pay.Int()
		if len(i) == 0 {
			return []byte{}
		}
		return unsafe.Slice((*byte)(unsafe.Pointer(&i[0])), len(i)*8)
	}
	return nil
}

// encodePayload appends the lease's elementwise little-endian encoding to
// dst — the big-endian-host fallback of leaseView's zero-copy path.
func encodePayload(dst []byte, pay *membuf.Lease) []byte {
	switch pay.Kind() {
	case membuf.KindFloat64:
		for _, v := range pay.Float64() {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	case membuf.KindInt:
		for _, v := range pay.Int() {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
	case membuf.KindByte:
		dst = append(dst, pay.Byte()...)
	}
	return dst
}

// decodePayload fills the lease from its elementwise wire encoding — the
// read-side big-endian fallback.
func decodePayload(pay *membuf.Lease, src []byte) {
	switch pay.Kind() {
	case membuf.KindFloat64:
		f := pay.Float64()
		for i := range f {
			f[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case membuf.KindInt:
		v := pay.Int()
		for i := range v {
			v[i] = int(int64(binary.LittleEndian.Uint64(src[8*i:])))
		}
	case membuf.KindByte:
		copy(pay.Byte(), src)
	}
}

// leaseFor leases a receive buffer of the header's kind and element count
// from the arena.
func leaseFor(arena *membuf.Arena, h Header) *membuf.Lease {
	switch h.Kind {
	case KindFloat64:
		return arena.LeaseFloat64(h.Count())
	case KindInt:
		return arena.LeaseInt(h.Count())
	default:
		return arena.LeaseByte(h.Count())
	}
}

// WriteFrame writes one frame — header, then payload — to w. Exactly one
// of pay (data frames) and raw (hello/welcome) may be non-nil; both nil
// writes a bare control frame. The lease is borrowed: it serialises
// straight into w and remains owned by the caller. The caller must
// serialise WriteFrame calls per stream (Node does, under the peer's
// write lock).
func WriteFrame(w io.Writer, h Header, pay *membuf.Lease, raw []byte, scratch *[]byte) error {
	var hdr [HeaderSize]byte
	switch {
	case pay != nil:
		h.Kind = KindOf(pay)
		view := leaseView(pay)
		if view == nil {
			*scratch = encodePayload((*scratch)[:0], pay)
			view = *scratch
		}
		h.NBytes = len(view)
		PutHeader(hdr[:], h)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(view)
		return err
	case raw != nil:
		h.NBytes = len(raw)
		PutHeader(hdr[:], h)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(raw)
		return err
	default:
		h.Kind = KindNone
		h.NBytes = 0
		PutHeader(hdr[:], h)
		_, err := w.Write(hdr[:])
		return err
	}
}

// ReadFrame reads and validates one frame from r. Data frames return
// their payload as a lease from arena (ownership passes to the caller);
// hello/welcome frames return their raw payload bytes; bare control
// frames return neither. A structurally invalid header or a short stream
// returns an error with nothing allocated beyond the control-frame cap —
// never a panic.
func ReadFrame(r io.Reader, arena *membuf.Arena) (Header, *membuf.Lease, []byte, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, nil, nil, err
	}
	h, err := ParseHeader(hdr[:])
	if err != nil {
		return Header{}, nil, nil, err
	}
	switch h.Type {
	case FrameData, FrameDataSeq:
		if arena == nil {
			return Header{}, nil, nil, fmt.Errorf("%w: data frame before bootstrap completed", ErrBadType)
		}
		pay := leaseFor(arena, h)
		view := leaseView(pay)
		if view != nil {
			if _, err := io.ReadFull(r, view); err != nil {
				pay.Release()
				return Header{}, nil, nil, fmt.Errorf("wire: truncated payload: %w", err)
			}
			return h, pay, nil, nil
		}
		tmp := make([]byte, h.NBytes)
		if _, err := io.ReadFull(r, tmp); err != nil {
			pay.Release()
			return Header{}, nil, nil, fmt.Errorf("wire: truncated payload: %w", err)
		}
		decodePayload(pay, tmp)
		return h, pay, nil, nil
	case FrameHello, FrameWelcome:
		raw := make([]byte, h.NBytes)
		if _, err := io.ReadFull(r, raw); err != nil {
			return Header{}, nil, nil, fmt.Errorf("wire: truncated control payload: %w", err)
		}
		return h, nil, raw, nil
	default:
		return h, nil, nil, nil
	}
}
