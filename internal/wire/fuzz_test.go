package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"miniamr/internal/membuf"
	"miniamr/internal/wire"
)

// fuzzArena is shared across fuzz iterations so the pooled size classes
// are reused instead of re-allocated: total fuzz memory stays bounded by
// the frame size cap, whatever lengths the mutator invents.
var fuzzArena = membuf.New()

// mkFrame assembles a raw frame for the seed corpus.
func mkFrame(typ wire.FrameType, kind wire.PayloadKind, src, dst, tag, seq int, payload []byte) []byte {
	var hdr [wire.HeaderSize]byte
	wire.PutHeader(hdr[:], wire.Header{
		Type: typ, Kind: kind, Src: src, Dst: dst, Tag: tag, Seq: seq, NBytes: len(payload),
	})
	return append(hdr[:], payload...)
}

// FuzzReadFrame drives arbitrary byte streams through the frame decoder.
// The invariant under test: whatever the bytes, ReadFrame either returns
// a structurally valid frame whose payload length matches its header, or
// an error — never a panic, and never an allocation beyond the frame
// size caps (a lease is only sized from a header that passed
// validation).
func FuzzReadFrame(f *testing.F) {
	f64 := binary.LittleEndian.AppendUint64(nil, 0x3ff8000000000000) // 1.5
	f.Add(mkFrame(wire.FrameData, wire.KindFloat64, 0, 1, 7, 0, f64))
	f.Add(mkFrame(wire.FrameDataSeq, wire.KindInt, 2, 3, 1, 9, make([]byte, 16)))
	f.Add(mkFrame(wire.FrameData, wire.KindByte, 1, 0, 0, 0, []byte("amr")))
	f.Add(mkFrame(wire.FrameAck, wire.KindNone, 0, 1, 0, 4, nil))
	f.Add(mkFrame(wire.FrameBye, wire.KindNone, 0, 0, 0, 0, nil))
	f.Add(mkFrame(wire.FrameHello, wire.KindNone, 0, 0, 0, 0, []byte(`{"proc":1,"addr":"127.0.0.1:1"}`)))
	f.Add(mkFrame(wire.FramePeer, wire.KindNone, 2, 0, 0, 0, nil))
	// Truncated header, truncated payload, bad magic, bad version,
	// oversized length, misaligned length, unknown type/kind.
	f.Add(mkFrame(wire.FrameData, wire.KindFloat64, 0, 1, 0, 0, f64)[:wire.HeaderSize-3])
	f.Add(mkFrame(wire.FrameData, wire.KindFloat64, 0, 1, 0, 0, f64)[:wire.HeaderSize+2])
	f.Add(append([]byte("XXXX"), mkFrame(wire.FrameData, wire.KindByte, 0, 1, 0, 0, nil)[4:]...))
	f.Add(func() []byte {
		b := mkFrame(wire.FrameData, wire.KindByte, 0, 1, 0, 0, nil)
		b[4] = 99 // version
		return b
	}())
	f.Add(func() []byte {
		b := mkFrame(wire.FrameData, wire.KindByte, 0, 1, 0, 0, nil)
		binary.LittleEndian.PutUint32(b[24:28], 1<<31) // oversized
		return b
	}())
	f.Add(func() []byte {
		b := mkFrame(wire.FrameData, wire.KindFloat64, 0, 1, 0, 0, nil)
		binary.LittleEndian.PutUint32(b[24:28], 7) // not a multiple of 8
		return b
	}())
	f.Add(mkFrame(wire.FrameType(42), wire.KindNone, 0, 0, 0, 0, nil))
	f.Add(mkFrame(wire.FrameData, wire.PayloadKind(9), 0, 1, 0, 0, nil))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			h, pay, raw, err := wire.ReadFrame(r, fuzzArena)
			if err != nil {
				// An error must leave no lease in the caller's hands, and a
				// stream that lies about its length must land here.
				break
			}
			switch h.Type {
			case wire.FrameData, wire.FrameDataSeq:
				if pay == nil {
					t.Fatalf("data frame decoded without payload lease: %+v", h)
				}
				if pay.Len() != h.Count() {
					t.Fatalf("lease length %d, header says %d elements", pay.Len(), h.Count())
				}
				if h.NBytes > wire.MaxDataBytes {
					t.Fatalf("decoded data frame above size cap: %d", h.NBytes)
				}
				pay.Release()
			case wire.FrameHello, wire.FrameWelcome:
				if len(raw) != h.NBytes {
					t.Fatalf("control payload %d bytes, header says %d", len(raw), h.NBytes)
				}
				if h.NBytes > wire.MaxControlBytes {
					t.Fatalf("decoded control frame above size cap: %d", h.NBytes)
				}
			default:
				if pay != nil || raw != nil {
					t.Fatalf("%v frame decoded with payload", h.Type)
				}
			}
		}
	})
}

// FuzzFrameRoundTrip encodes a frame from fuzzed fields and requires the
// decoder to return it bit-identically: header fields, payload kind and
// payload bytes all survive the trip through the codec.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), int32(0), int32(1), int32(7), int32(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), int32(3), int32(2), int32(0), int32(41), make([]byte, 24))
	f.Add(uint8(2), int32(1), int32(0), int32(1<<20), int32(0), []byte("payload"))
	f.Add(uint8(5), int32(0), int32(0), int32(0), int32(0), []byte{})

	f.Fuzz(func(t *testing.T, sel uint8, src, dst, tag, seq int32, payload []byte) {
		if src < 0 || dst < 0 {
			return // negative ranks are rejected by design; no frame to round-trip
		}
		var pay *membuf.Lease
		switch sel % 3 {
		case 0:
			pay = fuzzArena.LeaseFloat64(len(payload) / 8)
			tmp := pay.Float64()
			for i := range tmp {
				tmp[i] = float64frombytes(payload[8*i:])
			}
		case 1:
			pay = fuzzArena.LeaseInt(len(payload) / 8)
			tmp := pay.Int()
			for i := range tmp {
				tmp[i] = int(int64(binary.LittleEndian.Uint64(payload[8*i:])))
			}
		default:
			pay = fuzzArena.LeaseByte(len(payload))
			copy(pay.Byte(), payload)
		}
		defer pay.Release()
		typ := wire.FrameData
		if sel&0x80 != 0 {
			typ = wire.FrameDataSeq
		}
		h := wire.Header{Type: typ, Src: int(src), Dst: int(dst), Tag: int(tag), Seq: int(seq)}
		var buf bytes.Buffer
		var scratch []byte
		if err := wire.WriteFrame(&buf, h, pay, nil, &scratch); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, gotPay, _, err := wire.ReadFrame(&buf, fuzzArena)
		if err != nil {
			t.Fatalf("decode of freshly encoded frame: %v", err)
		}
		defer gotPay.Release()
		if got.Type != typ || got.Src != int(src) || got.Dst != int(dst) || got.Tag != int(tag) || got.Seq != int(seq) {
			t.Fatalf("header mangled: sent %+v, got %+v", h, got)
		}
		if gotPay.Kind() != pay.Kind() || gotPay.Len() != pay.Len() {
			t.Fatalf("payload shape mangled: %v/%d -> %v/%d", pay.Kind(), pay.Len(), gotPay.Kind(), gotPay.Len())
		}
		switch pay.Kind() {
		case membuf.KindFloat64:
			a, b := pay.Float64(), gotPay.Float64()
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("float64[%d]: %x != %x", i, math.Float64bits(a[i]), math.Float64bits(b[i]))
				}
			}
		case membuf.KindInt:
			a, b := pay.Int(), gotPay.Int()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("int[%d]: %d != %d", i, a[i], b[i])
				}
			}
		default:
			if !bytes.Equal(pay.Byte(), gotPay.Byte()) {
				t.Fatal("byte payload mangled")
			}
		}
		if buf.Len() != 0 {
			t.Fatalf("%d trailing bytes after decode", buf.Len())
		}
	})
}

func float64frombytes(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// TestReadFrameTruncatedStream pins the headline decoder property
// outside the fuzzer: a frame whose stream ends early errors with an
// unexpected-EOF, never a partial success.
func TestReadFrameTruncatedStream(t *testing.T) {
	full := mkFrame(wire.FrameData, wire.KindFloat64, 0, 1, 7, 0, make([]byte, 32))
	for cut := 0; cut < len(full); cut++ {
		_, pay, _, err := wire.ReadFrame(bytes.NewReader(full[:cut]), fuzzArena)
		if err == nil {
			t.Fatalf("cut=%d: truncated frame decoded successfully", cut)
		}
		if pay != nil {
			t.Fatalf("cut=%d: error return leaked a lease", cut)
		}
		if cut > wire.HeaderSize && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut=%d: err = %v, want unexpected EOF", cut, err)
		}
	}
}
