package wire

import "miniamr/internal/mpi"

// The node is the wire side of the mpi transport seam, and the world is
// the wire's delivery target; the compiler holds both contracts.
var (
	_ mpi.Transport = (*Node)(nil)
	_ Deliverer     = (*mpi.World)(nil)
)
