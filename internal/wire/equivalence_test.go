package wire_test

import (
	"fmt"
	mrand "math/rand/v2"
	"testing"
	"time"

	"miniamr/internal/mpi"
	"miniamr/internal/mpi/mpitest"
	"miniamr/internal/simnet"
)

// recvEvent is one entry of the matching-engine trace: what one receive
// call of the schedule matched.
type recvEvent struct {
	Src, Tag, ID int
}

// runSchedule drives the seeded send/recv schedule over one fabric and
// returns the receiver's trace. The schedule is built so its outcome is
// a pure function of MPI's matching semantics: senders emit
// deterministic per-sender sequences, and every receive names its source
// (with a concrete or wildcard tag), so per-pair FIFO fully determines
// which message each receive matches — any divergence between fabrics is
// a transport bug, not scheduling noise.
func runSchedule(t *testing.T, f mpitest.Fabric, seed uint64, chaos bool) []recvEvent {
	t.Helper()
	const (
		senders  = 3
		receiver = 3
		perSrc   = 80
		tags     = 4
	)
	opt := mpitest.Options{}
	if chaos {
		lf := simnet.LinkFaults{Drop: 0.1, Duplicate: 0.1, Spike: 0.1, SpikeMax: 100 * time.Microsecond}
		opt.Faults = &simnet.Faults{Seed: seed, Intra: lf, Inter: lf}
		opt.Resilience = mpi.Resilience{RetryTimeout: 500 * time.Microsecond, MaxRetries: 20, Backoff: 1.5}
	}
	cl := f.New(t, senders+1, opt)
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	// Deterministic per-sender tag sequences.
	tagSeq := make([][]int, senders)
	for s := 0; s < senders; s++ {
		r := mrand.New(mrand.NewPCG(seed, uint64(s)))
		tagSeq[s] = make([]int, perSrc)
		for i := range tagSeq[s] {
			tagSeq[s][i] = r.IntN(tags)
		}
	}
	// The receiver's plan: for each step pick a source with messages
	// left and receive with AnyTag or the tag its next pending message
	// carries (so a concrete-tag receive can always match).
	type planOp struct{ src, tag int }
	pending := make([][]int, senders) // per-src tags not yet consumed, in send order
	for s := range pending {
		pending[s] = append([]int(nil), tagSeq[s]...)
	}
	rr := mrand.New(mrand.NewPCG(seed, 1234))
	var plan []planOp
	for left := senders * perSrc; left > 0; left-- {
		src := rr.IntN(senders)
		for len(pending[src]) == 0 {
			src = (src + 1) % senders
		}
		op := planOp{src: src, tag: mpi.AnyTag}
		if rr.IntN(2) == 0 {
			op.tag = pending[src][0]
		}
		// Consume what per-pair FIFO says this receive will match: the
		// earliest pending message from src with a matching tag.
		for i, tg := range pending[src] {
			if op.tag == mpi.AnyTag || op.tag == tg {
				pending[src] = append(pending[src][:i], pending[src][i+1:]...)
				break
			}
		}
		plan = append(plan, op)
	}

	trace := make([]recvEvent, 0, len(plan))
	err := cl.Run(func(c *mpi.Comm) {
		if c.Rank() < senders {
			r := mrand.New(mrand.NewPCG(seed, uint64(100+c.Rank())))
			var reqs []*mpi.Request
			for i, tag := range tagSeq[c.Rank()] {
				if r.IntN(2) == 0 {
					if err := c.Send([]int{c.Rank(), i}, receiver, tag); err != nil {
						t.Errorf("send: %v", err)
					}
				} else {
					req, err := c.Isend([]int{c.Rank(), i}, receiver, tag)
					if err != nil {
						t.Errorf("isend: %v", err)
						continue
					}
					reqs = append(reqs, req)
				}
			}
			if err := mpi.Waitall(reqs); err != nil {
				t.Errorf("waitall: %v", err)
			}
			return
		}
		buf := make([]int, 2)
		for i, op := range plan {
			st, err := c.Recv(buf, op.src, op.tag)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			trace = append(trace, recvEvent{Src: st.Source, Tag: st.Tag, ID: buf[1]})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestTransportEquivalence is the satellite property test: identical
// seeded send/recv schedules pushed through the in-process channel path
// and through real TCP meshes must produce identical delivery orders at
// the matching engine — with and without injected faults.
func TestTransportEquivalence(t *testing.T) {
	fabrics := []mpitest.Fabric{mpitest.TCPFabric(2), mpitest.TCPFabric(4)}
	seeds := []uint64{1, 2, 3, 4}
	if testing.Short() {
		fabrics = fabrics[:1]
		seeds = seeds[:2]
	}
	for _, chaos := range []bool{false, true} {
		name := "plain"
		if chaos {
			name = "chaos"
		}
		t.Run(name, func(t *testing.T) {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					want := runSchedule(t, mpitest.ChannelFabric(), seed, chaos)
					for _, f := range fabrics {
						got := runSchedule(t, f, seed, chaos)
						if len(got) != len(want) {
							t.Fatalf("%s: trace length %d, channel reference %d", f.Name, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("%s: trace diverges at receive %d: got %+v, channel reference %+v",
									f.Name, i, got[i], want[i])
							}
						}
					}
				})
			}
		})
	}
}
