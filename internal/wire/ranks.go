package wire

import "fmt"

// The rank partition is contiguous and deterministic: ranks are split
// into nprocs blocks of size ⌈ranks/nprocs⌉ or ⌊ranks/nprocs⌋, with the
// first ranks%nprocs processes taking the larger block. Every process
// computes the same partition from (ranks, nprocs) alone, so no partition
// table crosses the wire.

// RankRange returns the rank range [lo, hi) hosted by process proc.
func RankRange(ranks, nprocs, proc int) (lo, hi int) {
	if nprocs <= 0 || proc < 0 || proc >= nprocs || ranks < nprocs {
		panic(fmt.Sprintf("wire: bad partition: %d ranks over %d procs, proc %d", ranks, nprocs, proc))
	}
	base, rem := ranks/nprocs, ranks%nprocs
	lo = proc*base + min(proc, rem)
	hi = lo + base
	if proc < rem {
		hi++
	}
	return lo, hi
}

// OwnerOf returns the process id hosting the given rank.
func OwnerOf(ranks, nprocs, rank int) int {
	if rank < 0 || rank >= ranks {
		panic(fmt.Sprintf("wire: rank %d out of range [0,%d)", rank, ranks))
	}
	base, rem := ranks/nprocs, ranks%nprocs
	cut := rem * (base + 1) // first rank owned by a small-block process
	if rank < cut {
		return rank / (base + 1)
	}
	return rem + (rank-cut)/base
}
