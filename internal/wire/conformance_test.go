package wire_test

import (
	"testing"

	"miniamr/internal/mpi/mpitest"
)

// TestConformanceTCP2 runs the shared transport-conformance suite over a
// two-process loopback TCP mesh: with two processes every 2-rank
// point-to-point test crosses the wire on each message.
func TestConformanceTCP2(t *testing.T) {
	mpitest.RunConformance(t, mpitest.TCPFabric(2))
}

// TestConformanceTCP3 splits the same suite three ways, so collective
// trees and multi-sender tests mix local and remote edges.
func TestConformanceTCP3(t *testing.T) {
	if testing.Short() {
		t.Skip("3-process mesh skipped in short mode")
	}
	mpitest.RunConformance(t, mpitest.TCPFabric(3))
}
