package object

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sphere(r float64, center [3]float64) *Object {
	return &Object{Type: SpheroidSurface, Center: center, Size: [3]float64{r, r, r}}
}

func TestValidate(t *testing.T) {
	o := sphere(0.1, [3]float64{0.5, 0.5, 0.5})
	if err := o.Validate(); err != nil {
		t.Errorf("valid sphere rejected: %v", err)
	}
	bad := &Object{Type: Type(99)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown type accepted")
	}
	neg := &Object{Type: SpheroidSolid, Size: [3]float64{-1, 0, 0}}
	if err := neg.Validate(); err == nil {
		t.Error("negative size accepted")
	}
}

func TestTypeProperties(t *testing.T) {
	if RectangleSurface.Solid() || !RectangleSolid.Solid() {
		t.Error("rectangle solidity misclassified")
	}
	if SpheroidSurface.Solid() || !SpheroidSolid.Solid() {
		t.Error("spheroid solidity misclassified")
	}
	for ty := Type(0); int(ty) < NumTypes; ty++ {
		if ty.String() == "" || ty.String()[0] == 'T' {
			t.Errorf("type %d has no name", int(ty))
		}
	}
	if Type(-1).String() != "Type(-1)" {
		t.Error("out-of-range String mismatch")
	}
}

func TestSphereClassify(t *testing.T) {
	o := sphere(0.25, [3]float64{0.5, 0.5, 0.5})
	cases := []struct {
		lo, hi [3]float64
		want   Region
	}{
		// Far corner block: outside.
		{[3]float64{0, 0, 0}, [3]float64{0.1, 0.1, 0.1}, Outside},
		// Tiny block at the center: inside.
		{[3]float64{0.45, 0.45, 0.45}, [3]float64{0.55, 0.55, 0.55}, Inside},
		// Block straddling the boundary on +x.
		{[3]float64{0.7, 0.45, 0.45}, [3]float64{0.8, 0.55, 0.55}, Crosses},
		// Block containing the whole sphere: crosses.
		{[3]float64{0, 0, 0}, [3]float64{1, 1, 1}, Crosses},
		// Block just touching along the axis.
		{[3]float64{0.75, 0.5, 0.5}, [3]float64{0.9, 0.6, 0.6}, Crosses},
	}
	for i, c := range cases {
		if got := o.Classify(c.lo, c.hi); got != c.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestSurfaceVsSolidMarking(t *testing.T) {
	surf := &Object{Type: SpheroidSurface, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.3, 0.3, 0.3}}
	solid := &Object{Type: SpheroidSolid, Center: surf.Center, Size: surf.Size}
	interiorLo := [3]float64{0.48, 0.48, 0.48}
	interiorHi := [3]float64{0.52, 0.52, 0.52}
	if surf.MarksBlock(interiorLo, interiorHi) {
		t.Error("surface spheroid marked a strictly interior block")
	}
	if !solid.MarksBlock(interiorLo, interiorHi) {
		t.Error("solid spheroid did not mark an interior block")
	}
	boundaryLo := [3]float64{0.75, 0.45, 0.45}
	boundaryHi := [3]float64{0.85, 0.55, 0.55}
	if !surf.MarksBlock(boundaryLo, boundaryHi) || !solid.MarksBlock(boundaryLo, boundaryHi) {
		t.Error("boundary block not marked")
	}
}

func TestRectangleClassify(t *testing.T) {
	o := &Object{Type: RectangleSurface, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.2, 0.1, 0.3}}
	if got := o.Classify([3]float64{0.45, 0.45, 0.45}, [3]float64{0.55, 0.55, 0.55}); got != Inside {
		t.Errorf("center block: %v, want Inside", got)
	}
	if got := o.Classify([3]float64{0.65, 0.45, 0.45}, [3]float64{0.75, 0.55, 0.55}); got != Crosses {
		t.Errorf("x-boundary block: %v, want Crosses", got)
	}
	if got := o.Classify([3]float64{0.9, 0.9, 0.9}, [3]float64{1, 1, 1}); got != Outside {
		t.Errorf("corner block: %v, want Outside", got)
	}
}

func TestEllipsoidAnisotropic(t *testing.T) {
	// Semi-axes 0.4 (x) and 0.1 (y,z): a block at x offset 0.2 is inside,
	// but a block at the same offset in y is outside.
	o := &Object{Type: SpheroidSurface, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.4, 0.1, 0.1}}
	if got := o.Classify([3]float64{0.68, 0.49, 0.49}, [3]float64{0.72, 0.51, 0.51}); got != Inside {
		t.Errorf("x-offset block: %v, want Inside", got)
	}
	if got := o.Classify([3]float64{0.49, 0.68, 0.49}, [3]float64{0.51, 0.72, 0.51}); got != Outside {
		t.Errorf("y-offset block: %v, want Outside", got)
	}
}

func TestHemisphereHalfspace(t *testing.T) {
	// Hemisphere facing +x: blocks on the -x side of the center plane are
	// outside even when within the full spheroid's radius.
	o := &Object{Type: HemiPlusXSurface, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.3, 0.3, 0.3}}
	if got := o.Classify([3]float64{0.3, 0.45, 0.45}, [3]float64{0.4, 0.55, 0.55}); got != Outside {
		t.Errorf("-x side block: %v, want Outside", got)
	}
	if got := o.Classify([3]float64{0.6, 0.45, 0.45}, [3]float64{0.7, 0.55, 0.55}); got != Inside {
		t.Errorf("+x interior block: %v, want Inside", got)
	}
	// A block spanning the flat face crosses.
	if got := o.Classify([3]float64{0.45, 0.45, 0.45}, [3]float64{0.55, 0.55, 0.55}); got != Crosses {
		t.Errorf("flat-face block: %v, want Crosses", got)
	}
	// The -x variant mirrors it.
	m := &Object{Type: HemiMinusXSurface, Center: o.Center, Size: o.Size}
	if got := m.Classify([3]float64{0.6, 0.45, 0.45}, [3]float64{0.7, 0.55, 0.55}); got != Outside {
		t.Errorf("mirrored hemisphere +x block: %v, want Outside", got)
	}
}

func TestCylinderClassify(t *testing.T) {
	// Cylinder along z through the domain center.
	o := &Object{Type: CylinderZSurface, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.1, 0.1, 0.4}}
	if got := o.Classify([3]float64{0.45, 0.45, 0.3}, [3]float64{0.55, 0.55, 0.5}); got != Inside {
		t.Errorf("axis block: %v, want Inside", got)
	}
	if got := o.Classify([3]float64{0.55, 0.45, 0.4}, [3]float64{0.65, 0.55, 0.6}); got != Crosses {
		t.Errorf("wall block: %v, want Crosses", got)
	}
	if got := o.Classify([3]float64{0.8, 0.8, 0.4}, [3]float64{0.9, 0.9, 0.6}); got != Outside {
		t.Errorf("far block: %v, want Outside", got)
	}
	// Beyond the axial extent.
	if got := o.Classify([3]float64{0.45, 0.45, 0.95}, [3]float64{0.55, 0.55, 1}); got != Outside {
		t.Errorf("beyond-cap block: %v, want Outside", got)
	}
}

func TestAdvanceMovesAndGrows(t *testing.T) {
	o := &Object{
		Type: SpheroidSurface, Center: [3]float64{0.2, 0.5, 0.5},
		Move: [3]float64{0.1, 0, 0}, Size: [3]float64{0.05, 0.05, 0.05},
		Inc: [3]float64{0.01, 0, 0},
	}
	o.Advance()
	if math.Abs(o.Center[0]-0.3) > 1e-12 {
		t.Errorf("center.x = %v, want 0.3", o.Center[0])
	}
	if math.Abs(o.Size[0]-0.06) > 1e-12 {
		t.Errorf("size.x = %v, want 0.06", o.Size[0])
	}
}

func TestAdvanceBounce(t *testing.T) {
	o := &Object{
		Type: SpheroidSurface, Bounce: true,
		Center: [3]float64{0.9, 0.5, 0.5}, Move: [3]float64{0.2, 0, 0},
		Size: [3]float64{0.05, 0.05, 0.05},
	}
	o.Advance() // hits the +x wall
	if o.Move[0] >= 0 {
		t.Errorf("move.x = %v, want negative after bounce", o.Move[0])
	}
	o.Advance()
	if o.Center[0] >= 1.1 {
		t.Error("object escaped the domain after bounce")
	}
}

func TestAdvanceNoBouncePassesThrough(t *testing.T) {
	o := &Object{Type: SpheroidSurface, Center: [3]float64{0.95, 0.5, 0.5}, Move: [3]float64{0.2, 0, 0}}
	o.Advance()
	if o.Move[0] != 0.2 {
		t.Error("move changed without bounce enabled")
	}
}

func TestAdvanceShrinkClampsAtZero(t *testing.T) {
	o := &Object{Type: SpheroidSurface, Size: [3]float64{0.01, 0.01, 0.01}, Inc: [3]float64{-0.05, -0.05, -0.05}}
	o.Advance()
	for d := 0; d < 3; d++ {
		if o.Size[d] < 0 {
			t.Errorf("size[%d] = %v, want >= 0", d, o.Size[d])
		}
	}
}

func TestDegenerateZeroSizeObject(t *testing.T) {
	// A zero-extent spheroid is a point; blocks containing the point cross.
	o := &Object{Type: SpheroidSurface, Center: [3]float64{0.5, 0.5, 0.5}}
	if got := o.Classify([3]float64{0.4, 0.4, 0.4}, [3]float64{0.6, 0.6, 0.6}); got != Crosses {
		t.Errorf("point-containing block: %v, want Crosses", got)
	}
	if got := o.Classify([3]float64{0.6, 0.6, 0.6}, [3]float64{0.7, 0.7, 0.7}); got != Outside {
		t.Errorf("point-free block: %v, want Outside", got)
	}
}

// Property: classification agrees with dense point sampling of the block
// for spheroids — if sampling finds both inside and outside points the
// classification must be Crosses; all-inside must not be Outside, etc.
func TestPropertyClassifyMatchesSampling(t *testing.T) {
	insideVolume := func(o *Object, p [3]float64) bool {
		s := 0.0
		for d := 0; d < 3; d++ {
			v := (p[d] - o.Center[d]) / o.Size[d]
			s += v * v
		}
		return s <= 1
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := &Object{
			Type:   SpheroidSurface,
			Center: [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Size:   [3]float64{rng.Float64()*0.3 + 0.05, rng.Float64()*0.3 + 0.05, rng.Float64()*0.3 + 0.05},
		}
		lo := [3]float64{rng.Float64() * 0.8, rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := [3]float64{lo[0] + rng.Float64()*0.2, lo[1] + rng.Float64()*0.2, lo[2] + rng.Float64()*0.2}

		const n = 6
		ins, outs := 0, 0
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				for k := 0; k <= n; k++ {
					p := [3]float64{
						lo[0] + (hi[0]-lo[0])*float64(i)/n,
						lo[1] + (hi[1]-lo[1])*float64(j)/n,
						lo[2] + (hi[2]-lo[2])*float64(k)/n,
					}
					if insideVolume(o, p) {
						ins++
					} else {
						outs++
					}
				}
			}
		}
		got := o.Classify(lo, hi)
		switch {
		case ins > 0 && outs > 0:
			return got == Crosses
		case ins > 0: // all sampled points inside
			return got != Outside
		default: // all sampled points outside: sampling may miss thin overlap
			return got != Inside
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAllTypesClassifySanely sweeps every object type against inside,
// boundary and far blocks, checking basic consistency of the three-way
// classification and MarksBlock.
func TestAllTypesClassifySanely(t *testing.T) {
	for ty := Type(0); int(ty) < NumTypes; ty++ {
		o := &Object{Type: ty, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.3, 0.3, 0.3}}
		// A far-away block never marks.
		if got := o.Classify([3]float64{0.95, 0.95, 0.95}, [3]float64{1, 1, 1}); got != Outside {
			t.Errorf("%v: far block classified %v", ty, got)
		}
		if o.MarksBlock([3]float64{0.95, 0.95, 0.95}, [3]float64{1, 1, 1}) {
			t.Errorf("%v: far block marked", ty)
		}
		// A domain-sized block always intersects (crosses the boundary).
		if got := o.Classify([3]float64{0, 0, 0}, [3]float64{1, 1, 1}); got != Crosses {
			t.Errorf("%v: whole-domain block classified %v", ty, got)
		}
		if !o.MarksBlock([3]float64{0, 0, 0}, [3]float64{1, 1, 1}) {
			t.Errorf("%v: whole-domain block not marked", ty)
		}
		// A tiny block on the surface-adjacent side marks for surface and
		// solid variants alike; deep-interior marks only solids.
		interiorLo := [3]float64{0.49, 0.49, 0.49}
		interiorHi := [3]float64{0.51, 0.51, 0.51}
		region := o.Classify(interiorLo, interiorHi)
		switch region {
		case Inside:
			if o.MarksBlock(interiorLo, interiorHi) != ty.Solid() {
				t.Errorf("%v: interior marking disagrees with solidity", ty)
			}
		case Crosses:
			if !o.MarksBlock(interiorLo, interiorHi) {
				t.Errorf("%v: crossing block not marked", ty)
			}
		}
	}
}

// TestHemisphereYZVariants pins the orientation of the y and z facing
// hemispheroids.
func TestHemisphereYZVariants(t *testing.T) {
	center := [3]float64{0.5, 0.5, 0.5}
	size := [3]float64{0.3, 0.3, 0.3}
	cases := []struct {
		ty      Type
		inside  [3]float64 // center of a block inside the round side
		outside [3]float64 // mirrored point on the flat side
	}{
		{HemiPlusYSurface, [3]float64{0.5, 0.65, 0.5}, [3]float64{0.5, 0.35, 0.5}},
		{HemiMinusYSurface, [3]float64{0.5, 0.35, 0.5}, [3]float64{0.5, 0.65, 0.5}},
		{HemiPlusZSurface, [3]float64{0.5, 0.5, 0.65}, [3]float64{0.5, 0.5, 0.35}},
		{HemiMinusZSurface, [3]float64{0.5, 0.5, 0.35}, [3]float64{0.5, 0.5, 0.65}},
		{HemiPlusXSolid, [3]float64{0.65, 0.5, 0.5}, [3]float64{0.35, 0.5, 0.5}},
		{HemiMinusYSolid, [3]float64{0.5, 0.35, 0.5}, [3]float64{0.5, 0.65, 0.5}},
	}
	blockAround := func(p [3]float64) ([3]float64, [3]float64) {
		return [3]float64{p[0] - 0.02, p[1] - 0.02, p[2] - 0.02},
			[3]float64{p[0] + 0.02, p[1] + 0.02, p[2] + 0.02}
	}
	for _, c := range cases {
		o := &Object{Type: c.ty, Center: center, Size: size}
		lo, hi := blockAround(c.inside)
		if got := o.Classify(lo, hi); got != Inside {
			t.Errorf("%v: round-side block = %v, want Inside", c.ty, got)
		}
		lo, hi = blockAround(c.outside)
		if got := o.Classify(lo, hi); got != Outside {
			t.Errorf("%v: flat-side block = %v, want Outside", c.ty, got)
		}
	}
}

// TestCylinderXAndY pins the axis orientation of the cylinder extensions.
func TestCylinderXAndY(t *testing.T) {
	x := &Object{Type: CylinderXSolid, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.4, 0.1, 0.1}}
	if got := x.Classify([3]float64{0.15, 0.48, 0.48}, [3]float64{0.2, 0.52, 0.52}); got != Inside {
		t.Errorf("cylinder-x along-axis block = %v, want Inside", got)
	}
	if got := x.Classify([3]float64{0.48, 0.15, 0.48}, [3]float64{0.52, 0.2, 0.52}); got != Outside {
		t.Errorf("cylinder-x cross-axis block = %v, want Outside", got)
	}
	y := &Object{Type: CylinderYSurface, Center: [3]float64{0.5, 0.5, 0.5}, Size: [3]float64{0.1, 0.4, 0.1}}
	if got := y.Classify([3]float64{0.48, 0.15, 0.48}, [3]float64{0.52, 0.2, 0.52}); got != Inside {
		t.Errorf("cylinder-y along-axis block = %v, want Inside", got)
	}
	if got := y.Classify([3]float64{0.15, 0.48, 0.48}, [3]float64{0.2, 0.52, 0.52}); got != Outside {
		t.Errorf("cylinder-y cross-axis block = %v, want Outside", got)
	}
}
