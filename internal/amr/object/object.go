// Package object implements miniAMR's simulated input objects: the moving,
// growing geometric bodies whose boundaries drive mesh refinement.
//
// The reference miniAMR defines 16 object types — the surface and solid
// variants of rectangles, spheroids, and hemispheroids facing each of the
// six axis directions. This package implements all 16, plus six
// axis-aligned cylinder types as an extension (the paper's introduction
// mentions cylinders among the object kinds used by AMR codes).
//
// Every object carries a center, per-axis size (half-extents or semi-axes),
// a movement rate, a growth rate and a bounce flag. Objects advance once
// per refinement epoch. A block is marked for refinement when the object's
// boundary crosses it (surface types) or when any part of the object
// overlaps it (solid types).
package object

import "fmt"

// Type enumerates the object geometries.
type Type int

// The 16 reference miniAMR object types, in the reference ordering,
// followed by the cylinder extensions.
const (
	RectangleSurface  Type = iota // 0: surface of a rectangular box
	RectangleSolid                // 1: solid rectangular box
	SpheroidSurface               // 2: surface of a spheroid
	SpheroidSolid                 // 3: solid spheroid
	HemiPlusXSurface              // 4: hemispheroid surface, flat side facing -x
	HemiPlusXSolid                // 5
	HemiMinusXSurface             // 6
	HemiMinusXSolid               // 7
	HemiPlusYSurface              // 8
	HemiPlusYSolid                // 9
	HemiMinusYSurface             // 10
	HemiMinusYSolid               // 11
	HemiPlusZSurface              // 12
	HemiPlusZSolid                // 13
	HemiMinusZSurface             // 14
	HemiMinusZSolid               // 15
	CylinderXSurface              // 16 (extension): cylinder along x
	CylinderXSolid                // 17 (extension)
	CylinderYSurface              // 18 (extension)
	CylinderYSolid                // 19 (extension)
	CylinderZSurface              // 20 (extension)
	CylinderZSolid                // 21 (extension)
	numTypes
)

// NumTypes is the number of supported object types.
const NumTypes = int(numTypes)

var typeNames = [...]string{
	"rectangle-surface", "rectangle-solid",
	"spheroid-surface", "spheroid-solid",
	"hemi+x-surface", "hemi+x-solid", "hemi-x-surface", "hemi-x-solid",
	"hemi+y-surface", "hemi+y-solid", "hemi-y-surface", "hemi-y-solid",
	"hemi+z-surface", "hemi+z-solid", "hemi-z-surface", "hemi-z-solid",
	"cylinder-x-surface", "cylinder-x-solid",
	"cylinder-y-surface", "cylinder-y-solid",
	"cylinder-z-surface", "cylinder-z-solid",
}

func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// Solid reports whether the type marks its whole volume (solid) rather than
// only blocks crossed by its boundary (surface).
func (t Type) Solid() bool { return t%2 == 1 }

// Object is one simulated input body. The domain is the unit cube [0,1]³.
type Object struct {
	Type   Type
	Bounce bool       // reverse direction on hitting a domain wall
	Center [3]float64 // current center
	Move   [3]float64 // movement per refinement epoch
	Size   [3]float64 // half-extents / semi-axes per dimension
	Inc    [3]float64 // size growth per refinement epoch
}

// Validate reports configuration errors.
func (o *Object) Validate() error {
	if o.Type < 0 || int(o.Type) >= NumTypes {
		return fmt.Errorf("object: unknown type %d", int(o.Type))
	}
	for d := 0; d < 3; d++ {
		if o.Size[d] < 0 {
			return fmt.Errorf("object: negative size %v in dimension %d", o.Size[d], d)
		}
	}
	return nil
}

// Advance moves and grows the object by one refinement epoch. With Bounce
// set, a movement component reverses when the object's extent would touch
// the corresponding domain wall, mirroring miniAMR's bounce option.
func (o *Object) Advance() {
	for d := 0; d < 3; d++ {
		o.Center[d] += o.Move[d]
		o.Size[d] += o.Inc[d]
		if o.Size[d] < 0 {
			o.Size[d] = 0
		}
		if o.Bounce {
			if o.Center[d]-o.Size[d] < 0 && o.Move[d] < 0 {
				o.Move[d] = -o.Move[d]
			}
			if o.Center[d]+o.Size[d] > 1 && o.Move[d] > 0 {
				o.Move[d] = -o.Move[d]
			}
		}
	}
}

// Region classifies a block's position relative to an object's volume.
type Region int

const (
	// Outside means the block and the object volume are disjoint.
	Outside Region = iota
	// Crosses means the object boundary passes through the block.
	Crosses
	// Inside means the block lies strictly within the object volume.
	Inside
)

func (r Region) String() string {
	switch r {
	case Outside:
		return "outside"
	case Crosses:
		return "crosses"
	case Inside:
		return "inside"
	}
	return "unknown"
}

// MarksBlock reports whether a block spanning [lo, hi] should be marked
// for refinement by this object: surface types mark blocks their boundary
// crosses; solid types mark any overlapped block.
func (o *Object) MarksBlock(lo, hi [3]float64) bool {
	switch o.Classify(lo, hi) {
	case Crosses:
		return true
	case Inside:
		return o.Type.Solid()
	default:
		return false
	}
}

// Classify returns the block's region relative to the object volume.
func (o *Object) Classify(lo, hi [3]float64) Region {
	switch o.Type {
	case RectangleSurface, RectangleSolid:
		return classifyBox(o, lo, hi)
	case SpheroidSurface, SpheroidSolid:
		return classifyEllipsoid(o, lo, hi, -1, 0)
	case HemiPlusXSurface, HemiPlusXSolid:
		return classifyEllipsoid(o, lo, hi, 0, +1)
	case HemiMinusXSurface, HemiMinusXSolid:
		return classifyEllipsoid(o, lo, hi, 0, -1)
	case HemiPlusYSurface, HemiPlusYSolid:
		return classifyEllipsoid(o, lo, hi, 1, +1)
	case HemiMinusYSurface, HemiMinusYSolid:
		return classifyEllipsoid(o, lo, hi, 1, -1)
	case HemiPlusZSurface, HemiPlusZSolid:
		return classifyEllipsoid(o, lo, hi, 2, +1)
	case HemiMinusZSurface, HemiMinusZSolid:
		return classifyEllipsoid(o, lo, hi, 2, -1)
	case CylinderXSurface, CylinderXSolid:
		return classifyCylinder(o, lo, hi, 0)
	case CylinderYSurface, CylinderYSolid:
		return classifyCylinder(o, lo, hi, 1)
	case CylinderZSurface, CylinderZSolid:
		return classifyCylinder(o, lo, hi, 2)
	}
	return Outside
}

// classifyBox classifies against the axis-aligned box center±size.
func classifyBox(o *Object, lo, hi [3]float64) Region {
	inside := true
	for d := 0; d < 3; d++ {
		bmin, bmax := o.Center[d]-o.Size[d], o.Center[d]+o.Size[d]
		if hi[d] < bmin || lo[d] > bmax {
			return Outside
		}
		if lo[d] < bmin || hi[d] > bmax {
			inside = false
		}
	}
	if inside {
		return Inside
	}
	return Crosses
}

// classifyEllipsoid classifies against the ellipsoid center/size, optionally
// restricted to the half-space sign*(x[axis]-center[axis]) >= 0 when
// axis >= 0 (hemispheroids). The test works in coordinates scaled by the
// semi-axes, where the ellipsoid becomes the unit sphere and blocks remain
// axis-aligned boxes, so the box/sphere distance tests are exact.
func classifyEllipsoid(o *Object, lo, hi [3]float64, axis, sign int) Region {
	// Clip the block to the half-space for the overlap test.
	clo, chi := lo, hi
	if axis >= 0 {
		c := o.Center[axis]
		if sign > 0 {
			if chi[axis] < c {
				return Outside
			}
			if clo[axis] < c {
				clo[axis] = c
			}
		} else {
			if clo[axis] > c {
				return Outside
			}
			if chi[axis] > c {
				chi[axis] = c
			}
		}
	}
	// Nearest point of the clipped box to the center, in scaled space.
	var near, far float64
	degenerate := false
	for d := 0; d < 3; d++ {
		if o.Size[d] == 0 {
			// Degenerate axis: object has zero extent; overlap requires the
			// block to touch the plane x[d]==center[d].
			if clo[d] > o.Center[d] || chi[d] < o.Center[d] {
				return Outside
			}
			degenerate = true
			continue
		}
		nd := nearestOffset(o.Center[d], clo[d], chi[d]) / o.Size[d]
		fd := farthestOffset(o.Center[d], lo[d], hi[d]) / o.Size[d]
		near += nd * nd
		far += fd * fd
	}
	if near > 1 {
		return Outside
	}
	if degenerate {
		return Crosses
	}
	// Inside requires the whole (unclipped) block within the volume, which
	// for hemispheroids also means entirely on the round side.
	if axis >= 0 {
		c := o.Center[axis]
		if (sign > 0 && lo[axis] < c) || (sign < 0 && hi[axis] > c) {
			return Crosses
		}
	}
	if far <= 1 {
		return Inside
	}
	return Crosses
}

// classifyCylinder classifies against a finite cylinder along the given
// axis: an ellipse in the two cross dimensions and a span in the axis one.
func classifyCylinder(o *Object, lo, hi [3]float64, axis int) Region {
	amin, amax := o.Center[axis]-o.Size[axis], o.Center[axis]+o.Size[axis]
	if hi[axis] < amin || lo[axis] > amax {
		return Outside
	}
	var near, far float64
	degenerate := false
	for d := 0; d < 3; d++ {
		if d == axis {
			continue
		}
		if o.Size[d] == 0 {
			if lo[d] > o.Center[d] || hi[d] < o.Center[d] {
				return Outside
			}
			degenerate = true
			continue
		}
		nd := nearestOffset(o.Center[d], lo[d], hi[d]) / o.Size[d]
		fd := farthestOffset(o.Center[d], lo[d], hi[d]) / o.Size[d]
		near += nd * nd
		far += fd * fd
	}
	if near > 1 {
		return Outside
	}
	if degenerate {
		return Crosses
	}
	if far <= 1 && lo[axis] >= amin && hi[axis] <= amax {
		return Inside
	}
	return Crosses
}

// nearestOffset returns the distance from c to the interval [lo,hi]
// (zero when c lies inside).
func nearestOffset(c, lo, hi float64) float64 {
	switch {
	case c < lo:
		return lo - c
	case c > hi:
		return c - hi
	default:
		return 0
	}
}

// farthestOffset returns the distance from c to the farthest point of the
// interval [lo,hi].
func farthestOffset(c, lo, hi float64) float64 {
	a, b := c-lo, hi-c
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
