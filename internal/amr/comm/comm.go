// Package comm plans and executes the ghost-face exchanges of the AMR
// application.
//
// For a rank, a direction and the replicated mesh, it derives a Schedule:
// the intra-rank face copies, the per-peer lists of face transfers to send
// and receive, and the domain-boundary faces needing boundary conditions.
// Transfer lists are enumerated in a canonical global order, so the sender
// and the receiver of a pair independently derive identical lists — the
// property that lets face data travel in aggregated messages with
// positional layouts and lets both sides compute matching MPI tags, the
// way miniAMR's sender and receiver know face identifiers beforehand.
//
// The same Schedule feeds all three execution strategies (sequential
// MPI-only, fork-join, and the task-based data-flow variant); only the
// driver differs in how it walks the schedule.
package comm

import (
	"fmt"

	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
)

// Transfer is one face transfer into a receiving block, described from the
// receiver's perspective.
type Transfer struct {
	// Recv is the block whose ghost face is filled.
	Recv mesh.Coord
	// Src is the block supplying the face.
	Src mesh.Coord
	// Dir is the exchange direction.
	Dir grid.Dir
	// RecvSide is the face of Recv being filled; Src packs the opposite
	// side.
	RecvSide grid.Side
	// Rel is Src's refinement level relative to Recv.
	Rel mesh.Rel
	// Qu, Qw locate the shared quarter face: if Src is finer, the quarter
	// of Recv's face it covers; if Src is coarser, the quarter of Src's
	// face that Recv covers. Unused for same-level transfers.
	Qu, Qw int
	// lenPerVar is the payload length per variable.
	lenPerVar int
}

// Len returns the payload length for a variable group of the given width.
func (t Transfer) Len(groupVars int) int { return t.lenPerVar * groupVars }

// BoundaryFace is a face of an owned block at the domain boundary.
type BoundaryFace struct {
	Block mesh.Coord
	Side  grid.Side
}

// PeerExchange groups the transfers between this rank and one peer in one
// direction. Send lists what this rank's blocks contribute to the peer;
// Recv lists what this rank's blocks receive. Both are in canonical order.
type PeerExchange struct {
	Peer int
	Send []Transfer
	Recv []Transfer
}

// Schedule is the complete exchange plan of one rank in one direction.
type Schedule struct {
	Rank     int
	Dir      grid.Dir
	Local    []Transfer
	Boundary []BoundaryFace
	Peers    []PeerExchange // sorted by peer rank
}

// BuildSchedule derives the rank's exchange plan for one direction from
// the replicated mesh. Every rank derives consistent plans: rank A's send
// list to B equals rank B's receive list from A, element for element.
func BuildSchedule(m *mesh.Mesh, rank int, dir grid.Dir, size grid.Size) (*Schedule, error) {
	s := &Schedule{Rank: rank, Dir: dir}
	peerIdx := make(map[int]int)
	peer := func(r int) *PeerExchange {
		if i, ok := peerIdx[r]; ok {
			return &s.Peers[i]
		}
		peerIdx[r] = len(s.Peers)
		s.Peers = append(s.Peers, PeerExchange{Peer: r})
		return &s.Peers[len(s.Peers)-1]
	}

	sameLen := faceCellsFor(size, dir)
	quarterLen := quarterCellsFor(size, dir)

	// Canonical order: all leaves sorted, Low face then High face, then the
	// neighbour order returned by the mesh.
	for _, b := range m.Leaves() {
		ownerB := m.Owner(b)
		for _, side := range []grid.Side{grid.Low, grid.High} {
			ns, err := m.Neighbors(b, dir, side)
			if err != nil {
				return nil, fmt.Errorf("comm: building schedule: %w", err)
			}
			if ns == nil {
				if ownerB == rank {
					s.Boundary = append(s.Boundary, BoundaryFace{Block: b, Side: side})
				}
				continue
			}
			for _, n := range ns {
				ownerN := m.Owner(n.Coord)
				if ownerB != rank && ownerN != rank {
					continue
				}
				lpv := sameLen
				if n.Rel != mesh.Same {
					lpv = quarterLen
				}
				tr := Transfer{
					Recv: b, Src: n.Coord, Dir: dir, RecvSide: side,
					Rel: n.Rel, Qu: n.Qu, Qw: n.Qw, lenPerVar: lpv,
				}
				switch {
				case ownerB == rank && ownerN == rank:
					s.Local = append(s.Local, tr)
				case ownerB == rank:
					peer(ownerN).Recv = append(peer(ownerN).Recv, tr)
				default:
					peer(ownerB).Send = append(peer(ownerB).Send, tr)
				}
			}
		}
	}
	sortPeers(s.Peers)
	return s, nil
}

func sortPeers(ps []PeerExchange) {
	// Insertion sort: peer counts are tiny (6-ish neighbours).
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Peer < ps[j-1].Peer; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func faceCellsFor(size grid.Size, dir grid.Dir) int {
	switch dir {
	case grid.DirX:
		return size.Y * size.Z
	case grid.DirY:
		return size.X * size.Z
	default:
		return size.X * size.Y
	}
}

func quarterCellsFor(size grid.Size, dir grid.Dir) int {
	return faceCellsFor(size, dir) / 4
}

// Pack packs the transfer's face from the source block into buf and
// returns the count written. The source block packs its side opposite to
// RecvSide.
func Pack(tr Transfer, src *grid.Data, v0, v1 int, buf []float64) int {
	side := tr.RecvSide.Opposite()
	switch tr.Rel {
	case mesh.Same:
		return src.PackFace(tr.Dir, side, v0, v1, buf)
	case mesh.Finer: // source finer than receiver: restrict
		return src.PackFaceRestrict(tr.Dir, side, v0, v1, buf)
	default: // source coarser: send the quarter the receiver covers
		return src.PackFaceQuarter(tr.Dir, side, tr.Qu, tr.Qw, v0, v1, buf)
	}
}

// Unpack unpacks the transfer's payload into the receiving block's ghost
// face and returns the count consumed.
func Unpack(tr Transfer, dst *grid.Data, v0, v1 int, buf []float64) int {
	switch tr.Rel {
	case mesh.Same:
		return dst.UnpackFace(tr.Dir, tr.RecvSide, v0, v1, buf)
	case mesh.Finer: // restricted payload lands in a quarter of our face
		return dst.UnpackFaceQuarter(tr.Dir, tr.RecvSide, tr.Qu, tr.Qw, v0, v1, buf)
	default: // coarse payload prolongs onto our fine ghosts
		return dst.UnpackFaceProlong(tr.Dir, tr.RecvSide, v0, v1, buf)
	}
}

// ExecuteLocal performs an intra-rank transfer. Same-level copies go
// directly; cross-level copies stage through scratch, which must hold
// Len(v1-v0) values.
func ExecuteLocal(tr Transfer, src, dst *grid.Data, v0, v1 int, scratch []float64) {
	if tr.Rel == mesh.Same {
		src.CopyFaceTo(dst, tr.Dir, tr.RecvSide.Opposite(), v0, v1)
		return
	}
	n := Pack(tr, src, v0, v1, scratch)
	Unpack(tr, dst, v0, v1, scratch[:n])
}

// Chunk splits a canonical transfer list into contiguous message groups:
//
//   - maxMessages == 1 reproduces the reference default: the whole list as
//     a single aggregated message per peer and direction;
//   - maxMessages <= 0 reproduces --send_faces with unlimited tasks: one
//     message per face;
//   - otherwise at most maxMessages contiguous groups balanced by
//     transfer count (--send_faces with --max_comm_tasks).
//
// Both ends derive identical chunkings from their identical lists.
func Chunk(ts []Transfer, maxMessages int) [][]Transfer {
	if len(ts) == 0 {
		return nil
	}
	if maxMessages <= 0 || maxMessages >= len(ts) {
		out := make([][]Transfer, len(ts))
		for i := range ts {
			out[i] = ts[i : i+1]
		}
		return out
	}
	out := make([][]Transfer, 0, maxMessages)
	for g := 0; g < maxMessages; g++ {
		lo := g * len(ts) / maxMessages
		hi := (g + 1) * len(ts) / maxMessages
		if lo < hi {
			out = append(out, ts[lo:hi])
		}
	}
	return out
}

// MessageLen sums the payload lengths of a message's transfers.
func MessageLen(ts []Transfer, groupVars int) int {
	n := 0
	for _, t := range ts {
		n += t.Len(groupVars)
	}
	return n
}

// PackMessage packs every transfer of a message, in canonical order, into
// one contiguous slab (typically a pooled buffer of MessageLen capacity)
// and returns the count written. src resolves a source coordinate to its
// block data.
func PackMessage(msg []Transfer, src func(mesh.Coord) *grid.Data, v0, v1 int, buf []float64) int {
	off := 0
	for _, tr := range msg {
		off += Pack(tr, src(tr.Src), v0, v1, buf[off:])
	}
	return off
}

// UnpackMessage unpacks a slab produced by the peer's PackMessage into the
// receiving blocks' ghost faces and returns the count consumed. dst
// resolves a receiving coordinate to its block data.
func UnpackMessage(msg []Transfer, dst func(mesh.Coord) *grid.Data, v0, v1 int, buf []float64) int {
	off := 0
	for _, tr := range msg {
		off += Unpack(tr, dst(tr.Recv), v0, v1, buf[off:])
	}
	return off
}

// Tag computes the MPI tag for a message: unique per (direction, message
// index) within a sender/receiver pair, and disjoint from the tag spaces
// used by the refinement exchange. Reuse across stages is safe because MPI
// ordering is non-overtaking per (source, tag).
func Tag(dir grid.Dir, msgIdx int) int {
	const dirBase = 1 << 20
	if msgIdx < 0 || msgIdx >= dirBase {
		panic(fmt.Sprintf("comm: message index %d out of tag range", msgIdx))
	}
	return (int(dir)+1)*dirBase + msgIdx
}
