package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"miniamr/internal/amr/balance"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
)

const testVars = 3

var testSize = grid.Size{X: 4, Y: 4, Z: 4}

// buildTestMesh creates a refined multi-rank mesh: a 2x2x2 root grid with
// one corner refined, partitioned over the given rank count by RCB.
func buildTestMesh(t *testing.T, ranks int) *mesh.Mesh {
	t.Helper()
	cfg := mesh.Config{Root: [3]int{2, 2, 2}, MaxLevel: 2}
	m, err := mesh.NewUniform(cfg, func(mesh.Coord) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.PlanRefinement(map[mesh.Coord]int8{{Level: 0, X: 0, Y: 0, Z: 0}: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Apply(plan)
	owner := balance.RCB(cfg, m.Leaves(), ranks)
	for c, r := range owner {
		m.SetOwner(c, r)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScheduleSendRecvSymmetry(t *testing.T) {
	const ranks = 3
	m := buildTestMesh(t, ranks)
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		scheds := make([]*Schedule, ranks)
		for r := 0; r < ranks; r++ {
			s, err := BuildSchedule(m, r, dir, testSize)
			if err != nil {
				t.Fatal(err)
			}
			scheds[r] = s
		}
		for a := 0; a < ranks; a++ {
			for _, pe := range scheds[a].Peers {
				b := pe.Peer
				// Find b's view of a.
				var back *PeerExchange
				for i := range scheds[b].Peers {
					if scheds[b].Peers[i].Peer == a {
						back = &scheds[b].Peers[i]
					}
				}
				if back == nil {
					if len(pe.Send) > 0 || len(pe.Recv) > 0 {
						t.Fatalf("dir %v: rank %d exchanges with %d but not vice versa", dir, a, b)
					}
					continue
				}
				if len(pe.Send) != len(back.Recv) || len(pe.Recv) != len(back.Send) {
					t.Fatalf("dir %v: asymmetric lists between %d and %d", dir, a, b)
				}
				for i := range pe.Send {
					if pe.Send[i] != back.Recv[i] {
						t.Fatalf("dir %v: transfer %d differs: %+v vs %+v", dir, i, pe.Send[i], back.Recv[i])
					}
				}
				for i := range pe.Recv {
					if pe.Recv[i] != back.Send[i] {
						t.Fatalf("dir %v: transfer %d differs: %+v vs %+v", dir, i, pe.Recv[i], back.Send[i])
					}
				}
			}
		}
	}
}

func TestScheduleCoversEveryFaceOnce(t *testing.T) {
	// Union over ranks of (local + recv + boundary) must fill each face of
	// each block exactly once per direction: same-level and coarser fills
	// count as one full face; finer fills arrive as four quarters.
	const ranks = 3
	m := buildTestMesh(t, ranks)
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		quarters := map[mesh.Coord]map[grid.Side]int{}
		add := func(c mesh.Coord, side grid.Side, q int) {
			if quarters[c] == nil {
				quarters[c] = map[grid.Side]int{}
			}
			quarters[c][side] += q
		}
		for r := 0; r < ranks; r++ {
			s, err := BuildSchedule(m, r, dir, testSize)
			if err != nil {
				t.Fatal(err)
			}
			for _, tr := range s.Local {
				q := 4
				if tr.Rel == mesh.Finer {
					q = 1
				}
				add(tr.Recv, tr.RecvSide, q)
			}
			for _, pe := range s.Peers {
				for _, tr := range pe.Recv {
					q := 4
					if tr.Rel == mesh.Finer {
						q = 1
					}
					add(tr.Recv, tr.RecvSide, q)
				}
			}
			for _, bf := range s.Boundary {
				add(bf.Block, bf.Side, 4)
			}
		}
		for _, c := range m.Leaves() {
			for _, side := range []grid.Side{grid.Low, grid.High} {
				if got := quarters[c][side]; got != 4 {
					t.Errorf("dir %v: block %v side %v filled %d/4 quarters", dir, c, side, got)
				}
			}
		}
	}
}

func TestChunkModes(t *testing.T) {
	ts := make([]Transfer, 10)
	for i := range ts {
		ts[i].lenPerVar = 16
	}
	if got := Chunk(nil, 1); got != nil {
		t.Error("chunking empty list should be nil")
	}
	one := Chunk(ts, 1)
	if len(one) != 1 || len(one[0]) != 10 {
		t.Errorf("single message: %d groups", len(one))
	}
	all := Chunk(ts, 0)
	if len(all) != 10 {
		t.Errorf("per-face: %d groups, want 10", len(all))
	}
	four := Chunk(ts, 4)
	if len(four) != 4 {
		t.Errorf("capped: %d groups, want 4", len(four))
	}
	total := 0
	for _, g := range four {
		total += len(g)
	}
	if total != 10 {
		t.Errorf("chunking lost transfers: %d", total)
	}
	big := Chunk(ts, 99)
	if len(big) != 10 {
		t.Errorf("cap beyond list length: %d groups", len(big))
	}
}

func TestMessageLenAndTransferLen(t *testing.T) {
	tr := Transfer{lenPerVar: 16}
	if tr.Len(3) != 48 {
		t.Error("Transfer.Len")
	}
	if MessageLen([]Transfer{{lenPerVar: 16}, {lenPerVar: 4}}, 2) != 40 {
		t.Error("MessageLen")
	}
}

func TestTagDisjointAcrossDirections(t *testing.T) {
	seen := map[int]bool{}
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		for i := 0; i < 100; i++ {
			tag := Tag(dir, i)
			if seen[tag] {
				t.Fatalf("tag collision at dir %v idx %d", dir, i)
			}
			seen[tag] = true
			if tag < 0 || tag >= 1<<24 {
				t.Fatalf("tag %d outside user tag space", tag)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range message index should panic")
		}
	}()
	Tag(grid.DirX, 1<<20)
}

// fillGhostsVia runs one full direction exchange for every rank using the
// schedules, moving remote faces through explicit buffers like the real
// drivers do, and applying boundary conditions.
func fillGhostsVia(t *testing.T, m *mesh.Mesh, ranks int, data map[mesh.Coord]*grid.Data, dir grid.Dir, chunkCap int) {
	t.Helper()
	scratch := make([]float64, testVars*testSize.X*testSize.Y)
	type key struct{ from, to, msg int }
	wire := map[key][]float64{}
	// Senders pack.
	for r := 0; r < ranks; r++ {
		s, err := BuildSchedule(m, r, dir, testSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, pe := range s.Peers {
			for mi, msg := range Chunk(pe.Send, chunkCap) {
				buf := make([]float64, MessageLen(msg, testVars))
				off := 0
				for _, tr := range msg {
					off += Pack(tr, data[tr.Src], 0, testVars, buf[off:])
				}
				wire[key{r, pe.Peer, mi}] = buf
			}
		}
	}
	// Receivers unpack; locals and boundaries execute.
	for r := 0; r < ranks; r++ {
		s, err := BuildSchedule(m, r, dir, testSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range s.Local {
			ExecuteLocal(tr, data[tr.Src], data[tr.Recv], 0, testVars, scratch)
		}
		for _, bf := range s.Boundary {
			data[bf.Block].ApplyDomainBoundary(dir, bf.Side, 0, testVars)
		}
		for _, pe := range s.Peers {
			for mi, msg := range Chunk(pe.Recv, chunkCap) {
				buf, ok := wire[key{pe.Peer, r, mi}]
				if !ok {
					t.Fatalf("no message %d from %d to %d", mi, pe.Peer, r)
				}
				if len(buf) != MessageLen(msg, testVars) {
					t.Fatalf("message %d from %d to %d: %d values, want %d",
						mi, pe.Peer, r, len(buf), MessageLen(msg, testVars))
				}
				off := 0
				for _, tr := range msg {
					off += Unpack(tr, data[tr.Recv], 0, testVars, buf[off:])
				}
			}
		}
	}
}

// TestDistributedExchangeMatchesSingleRank is the package's core oracle:
// ghost values after a distributed exchange (any rank count, any message
// chunking) must be bit-identical to the all-local single-rank exchange.
func TestDistributedExchangeMatchesSingleRank(t *testing.T) {
	newData := func(m *mesh.Mesh, seed int64) map[mesh.Coord]*grid.Data {
		rng := rand.New(rand.NewSource(seed))
		out := map[mesh.Coord]*grid.Data{}
		for _, c := range m.Leaves() {
			d := grid.MustNewData(testSize, testVars)
			lo, _ := m.Config().Bounds(c)
			w := m.Config().CellWidth(c, testSize)
			d.Fill(lo, w, func(v int, x, y, z float64) float64 {
				return float64(v+1)*x + 2*y - z + rng.Float64()*0 // deterministic smooth field
			})
			out[c] = d
		}
		return out
	}
	for _, chunkCap := range []int{1, 0, 3} {
		for _, ranks := range []int{2, 3, 5} {
			m := buildTestMesh(t, ranks)
			distData := newData(m, 42)
			refMesh := m.Clone()
			for _, c := range refMesh.Leaves() {
				refMesh.SetOwner(c, 0)
			}
			refData := newData(refMesh, 42)
			for dir := grid.DirX; dir <= grid.DirZ; dir++ {
				fillGhostsVia(t, m, ranks, distData, dir, chunkCap)
				fillGhostsVia(t, refMesh, 1, refData, dir, 1)
			}
			// Compare everything including ghosts via checksums over a
			// stencil application (stencil consumes ghosts).
			for _, c := range m.Leaves() {
				distData[c].Stencil7(0, testVars)
				refData[c].Stencil7(0, testVars)
				if !distData[c].EqualInterior(refData[c]) {
					t.Fatalf("ranks=%d chunk=%d: block %v diverged from single-rank reference", ranks, chunkCap, c)
				}
			}
		}
	}
}

// Property: schedules never assign a transfer to the wrong owner and local
// transfers stay within the rank.
func TestPropertyScheduleOwnership(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := mesh.Config{Root: [3]int{2, 2, 1}, MaxLevel: 2}
		m, err := mesh.NewUniform(cfg, func(mesh.Coord) int { return 0 })
		if err != nil {
			return false
		}
		marks := map[mesh.Coord]int8{}
		for _, c := range m.Leaves() {
			if rng.Intn(2) == 0 {
				marks[c] = 1
			}
		}
		plan, err := m.PlanRefinement(marks)
		if err != nil {
			return false
		}
		m.Apply(plan)
		ranks := rng.Intn(4) + 1
		for c, r := range balance.RCB(cfg, m.Leaves(), ranks) {
			m.SetOwner(c, r)
		}
		for r := 0; r < ranks; r++ {
			for dir := grid.DirX; dir <= grid.DirZ; dir++ {
				s, err := BuildSchedule(m, r, dir, testSize)
				if err != nil {
					return false
				}
				for _, tr := range s.Local {
					if m.Owner(tr.Src) != r || m.Owner(tr.Recv) != r {
						return false
					}
				}
				for _, pe := range s.Peers {
					if pe.Peer == r {
						return false
					}
					for _, tr := range pe.Recv {
						if m.Owner(tr.Recv) != r || m.Owner(tr.Src) != pe.Peer {
							return false
						}
					}
					for _, tr := range pe.Send {
						if m.Owner(tr.Src) != r || m.Owner(tr.Recv) != pe.Peer {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: chunking preserves order and content exactly for any list
// length and cap.
func TestPropertyChunkPartitions(t *testing.T) {
	f := func(nRaw, capRaw uint8) bool {
		n := int(nRaw)%50 + 1
		maxMsgs := int(capRaw) % 12 // includes 0 = per-face
		ts := make([]Transfer, n)
		for i := range ts {
			ts[i].Qu = i // marker to verify order
			ts[i].lenPerVar = 4
		}
		chunks := Chunk(ts, maxMsgs)
		if maxMsgs >= 1 && len(chunks) > maxMsgs {
			return false
		}
		idx := 0
		for _, ch := range chunks {
			if len(ch) == 0 {
				return false // no empty messages
			}
			for _, tr := range ch {
				if tr.Qu != idx {
					return false
				}
				idx++
			}
		}
		return idx == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
