// Package snapshot serialises and restores the complete state of a rank's
// simulation: the replicated mesh structure, the simulated objects, the
// loop counters, and the rank's block data. It gives the application
// checkpoint/restart — a staple of long production AMR runs — with a binary
// format that is deterministic and byte-exact, so a restored run continues
// bit-for-bit identically to an uninterrupted one (the property the
// integration tests assert).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/amr/object"
)

// Format identification.
const (
	magic   = 0x4d414d52 // "MAMR"
	version = 1
)

// Leaf is one replicated mesh entry.
type Leaf struct {
	Coord mesh.Coord
	Owner int
}

// State is everything a rank needs to resume.
type State struct {
	// Rank identifies whose blocks are stored.
	Rank int
	// Step and Stage are the completed timestep and stage counters.
	Step, Stage int
	// Objects are the simulated bodies at their current positions.
	Objects []object.Object
	// Leaves is the full replicated mesh (all ranks' ownership).
	Leaves []Leaf
	// Blocks holds this rank's block data, keyed by coordinate.
	Blocks map[mesh.Coord]*grid.Data
}

type writer struct {
	w   *bufio.Writer
	err error
}

func (e *writer) u64(v uint64) {
	if e.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, e.err = e.w.Write(buf[:])
}

func (e *writer) i(v int)     { e.u64(uint64(int64(v))) }
func (e *writer) f(v float64) { e.u64(math.Float64bits(v)) }
func (e *writer) b(v bool)    { e.u64(map[bool]uint64{false: 0, true: 1}[v]) }
func (e *writer) coord(c mesh.Coord) {
	e.i(c.Level)
	e.i(c.X)
	e.i(c.Y)
	e.i(c.Z)
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (d *reader) u64() uint64 {
	if d.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (d *reader) i() int     { return int(int64(d.u64())) }
func (d *reader) f() float64 { return math.Float64frombits(d.u64()) }
func (d *reader) b() bool    { return d.u64() != 0 }
func (d *reader) coord() mesh.Coord {
	return mesh.Coord{Level: d.i(), X: d.i(), Y: d.i(), Z: d.i()}
}

// Write serialises the state.
func Write(w io.Writer, st *State) error {
	e := &writer{w: bufio.NewWriter(w)}
	e.u64(magic)
	e.u64(version)
	e.i(st.Rank)
	e.i(st.Step)
	e.i(st.Stage)

	e.i(len(st.Objects))
	for _, o := range st.Objects {
		e.i(int(o.Type))
		e.b(o.Bounce)
		for d := 0; d < 3; d++ {
			e.f(o.Center[d])
		}
		for d := 0; d < 3; d++ {
			e.f(o.Move[d])
		}
		for d := 0; d < 3; d++ {
			e.f(o.Size[d])
		}
		for d := 0; d < 3; d++ {
			e.f(o.Inc[d])
		}
	}

	e.i(len(st.Leaves))
	for _, l := range st.Leaves {
		e.coord(l.Coord)
		e.i(l.Owner)
	}

	// Blocks in deterministic coordinate order.
	coords := make([]mesh.Coord, 0, len(st.Blocks))
	for c := range st.Blocks {
		coords = append(coords, c)
	}
	sortCoords(coords)
	e.i(len(coords))
	for _, c := range coords {
		blk := st.Blocks[c]
		e.coord(c)
		sz := blk.Size()
		e.i(sz.X)
		e.i(sz.Y)
		e.i(sz.Z)
		e.i(blk.Vars())
		buf := make([]float64, blk.InteriorLen())
		blk.PackInterior(buf)
		for _, v := range buf {
			e.f(v)
		}
	}
	if e.err != nil {
		return fmt.Errorf("snapshot: write: %w", e.err)
	}
	return e.w.Flush()
}

// Read deserialises a state written by Write.
func Read(r io.Reader) (*State, error) {
	d := &reader{r: bufio.NewReader(r)}
	if d.u64() != magic {
		return nil, fmt.Errorf("snapshot: bad magic (not a snapshot file)")
	}
	if v := d.u64(); v != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", v, version)
	}
	st := &State{
		Rank:  d.i(),
		Step:  d.i(),
		Stage: d.i(),
	}

	nObj := d.i()
	if d.err == nil && (nObj < 0 || nObj > 1<<20) {
		return nil, fmt.Errorf("snapshot: implausible object count %d", nObj)
	}
	for i := 0; i < nObj && d.err == nil; i++ {
		var o object.Object
		o.Type = object.Type(d.i())
		o.Bounce = d.b()
		for k := 0; k < 3; k++ {
			o.Center[k] = d.f()
		}
		for k := 0; k < 3; k++ {
			o.Move[k] = d.f()
		}
		for k := 0; k < 3; k++ {
			o.Size[k] = d.f()
		}
		for k := 0; k < 3; k++ {
			o.Inc[k] = d.f()
		}
		st.Objects = append(st.Objects, o)
	}

	nLeaf := d.i()
	if d.err == nil && (nLeaf < 0 || nLeaf > 1<<28) {
		return nil, fmt.Errorf("snapshot: implausible leaf count %d", nLeaf)
	}
	for i := 0; i < nLeaf && d.err == nil; i++ {
		st.Leaves = append(st.Leaves, Leaf{Coord: d.coord(), Owner: d.i()})
	}

	nBlk := d.i()
	if d.err == nil && (nBlk < 0 || nBlk > 1<<28) {
		return nil, fmt.Errorf("snapshot: implausible block count %d", nBlk)
	}
	st.Blocks = make(map[mesh.Coord]*grid.Data, nBlk)
	for i := 0; i < nBlk && d.err == nil; i++ {
		c := d.coord()
		size := grid.Size{X: d.i(), Y: d.i(), Z: d.i()}
		vars := d.i()
		if d.err != nil {
			break
		}
		blk, err := grid.NewData(size, vars)
		if err != nil {
			return nil, fmt.Errorf("snapshot: block %v: %w", c, err)
		}
		buf := make([]float64, blk.InteriorLen())
		for j := range buf {
			buf[j] = d.f()
		}
		blk.UnpackInterior(buf)
		st.Blocks[c] = blk
	}
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", d.err)
	}
	return st, nil
}

// sortCoords orders coordinates by (level, x, y, z) via mesh.Coord.Less.
func sortCoords(cs []mesh.Coord) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
}

// newBufWriter is a small indirection so tests can construct raw writers.
func newBufWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }
