package snapshot

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/amr/object"
)

func randState(rng *rand.Rand) *State {
	st := &State{
		Rank:  rng.Intn(8),
		Step:  rng.Intn(100),
		Stage: rng.Intn(1000),
	}
	for i := 0; i < rng.Intn(4); i++ {
		st.Objects = append(st.Objects, object.Object{
			Type:   object.Type(rng.Intn(object.NumTypes)),
			Bounce: rng.Intn(2) == 0,
			Center: [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Move:   [3]float64{rng.NormFloat64(), 0, rng.NormFloat64()},
			Size:   [3]float64{rng.Float64(), rng.Float64(), rng.Float64()},
			Inc:    [3]float64{0, rng.NormFloat64() * 0.01, 0},
		})
	}
	st.Blocks = map[mesh.Coord]*grid.Data{}
	for i := 0; i < rng.Intn(5)+1; i++ {
		c := mesh.Coord{Level: rng.Intn(3), X: rng.Intn(4), Y: rng.Intn(4), Z: i}
		st.Leaves = append(st.Leaves, Leaf{Coord: c, Owner: rng.Intn(4)})
		blk := grid.MustNewData(grid.Size{X: 2, Y: 4, Z: 2}, 2)
		buf := make([]float64, blk.InteriorLen())
		for j := range buf {
			buf[j] = rng.NormFloat64()
		}
		blk.UnpackInterior(buf)
		st.Blocks[c] = blk
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := randState(rng)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != st.Rank || got.Step != st.Step || got.Stage != st.Stage {
		t.Errorf("counters: %+v vs %+v", got, st)
	}
	if len(got.Objects) != len(st.Objects) {
		t.Fatalf("objects: %d vs %d", len(got.Objects), len(st.Objects))
	}
	for i := range st.Objects {
		if got.Objects[i] != st.Objects[i] {
			t.Errorf("object %d mismatch", i)
		}
	}
	if len(got.Leaves) != len(st.Leaves) {
		t.Fatalf("leaves: %d vs %d", len(got.Leaves), len(st.Leaves))
	}
	for i := range st.Leaves {
		if got.Leaves[i] != st.Leaves[i] {
			t.Errorf("leaf %d mismatch", i)
		}
	}
	if len(got.Blocks) != len(st.Blocks) {
		t.Fatalf("blocks: %d vs %d", len(got.Blocks), len(st.Blocks))
	}
	for c, blk := range st.Blocks {
		if !got.Blocks[c].EqualInterior(blk) {
			t.Errorf("block %v data mismatch", c)
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st := randState(rng)
	var a, b bytes.Buffer
	if err := Write(&a, st); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding not deterministic")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a snapshot at all....."))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	w := &writer{w: newBufWriter(&buf)}
	w.u64(magic)
	w.u64(99)
	_ = w.w.Flush()
	if _, err := Read(&buf); err == nil {
		t.Error("future version accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := randState(rng)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{8, len(data) / 2, len(data) - 3} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randState(rng)
		var buf bytes.Buffer
		if err := Write(&buf, st); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Blocks) != len(st.Blocks) {
			return false
		}
		for c, blk := range st.Blocks {
			g, ok := got.Blocks[c]
			if !ok || !g.EqualInterior(blk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
