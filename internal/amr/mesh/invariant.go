package mesh

import (
	"fmt"

	"miniamr/internal/amr/grid"
)

// CheckInvariants verifies the structural health of the mesh:
//
//  1. Tree consistency — no leaf is an ancestor of another leaf.
//  2. Exact cover — the leaves tile the whole domain without gaps or
//     overlap (verified by volume accounting at the finest present level).
//  3. 2:1 balance — every face of every leaf borders the domain boundary
//     or leaves within one refinement level.
//
// It returns the first violation found, or nil. Intended for tests and
// property checks; it is O(leaves · levels).
func (m *Mesh) CheckInvariants() error {
	maxPresent := 0
	for c := range m.blocks {
		if c.Level > maxPresent {
			maxPresent = c.Level
		}
		if c.Level > m.cfg.MaxLevel {
			return fmt.Errorf("mesh: leaf %v beyond max level %d", c, m.cfg.MaxLevel)
		}
		for d := 0; d < 3; d++ {
			if c.component(d) < 0 || c.component(d) >= m.cfg.Extent(d, c.Level) {
				return fmt.Errorf("mesh: leaf %v outside domain", c)
			}
		}
	}

	// 1. No leaf has a leaf ancestor.
	for c := range m.blocks {
		for a := c; a.Level > 0; {
			a = a.Parent()
			if m.Has(a) {
				return fmt.Errorf("mesh: leaf %v has leaf ancestor %v", c, a)
			}
		}
	}

	// 2. Volume accounting in units of finest-present-level blocks. Guard
	// against overflow for pathological depths.
	if 3*maxPresent < 60 {
		var vol uint64
		for c := range m.blocks {
			vol += 1 << (3 * (maxPresent - c.Level))
		}
		want := uint64(m.cfg.Root[0]) * uint64(m.cfg.Root[1]) * uint64(m.cfg.Root[2]) << (3 * maxPresent)
		if vol != want {
			return fmt.Errorf("mesh: leaves cover %d finest units, want %d (gap or overlap)", vol, want)
		}
	}

	// 3. Face coverage within one level.
	for c := range m.blocks {
		for dir := grid.DirX; dir <= grid.DirZ; dir++ {
			for _, side := range []grid.Side{grid.Low, grid.High} {
				if _, err := m.Neighbors(c, dir, side); err != nil {
					return fmt.Errorf("mesh: 2:1 balance violated: %w", err)
				}
			}
		}
	}
	return nil
}
