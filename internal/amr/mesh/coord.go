// Package mesh maintains the adaptive block structure of the AMR
// application: which leaf blocks exist, at what refinement level, and which
// rank owns each of them.
//
// Block metadata (not cell data) is replicated on every rank, the way
// AMReX replicates its BoxArray. Every rank therefore computes neighbour
// relationships, refinement plans and load-balance partitions locally and
// deterministically from the same replicated state; only block marks are
// exchanged (a small allgather) and only cell data moves point-to-point.
//
// The mesh is an octree forest over a grid of root blocks spanning the
// unit cube. Refining a block splits it into eight children one level
// finer; coarsening consolidates a complete octet of sibling leaves back
// into their parent. Face-adjacent leaves never differ by more than one
// level (the 2:1 balance miniAMR enforces), which the refinement planner
// guarantees by construction.
package mesh

import (
	"fmt"
	"sort"
)

// Coord identifies a block by refinement level and logical position. At
// level L the domain holds Root[d]<<L blocks along dimension d, so the
// coordinate doubles when descending a level. Coord is the block's global
// identity: it is comparable and stable across ranks.
type Coord struct {
	Level   int
	X, Y, Z int
}

func (c Coord) String() string {
	return fmt.Sprintf("L%d(%d,%d,%d)", c.Level, c.X, c.Y, c.Z)
}

// Parent returns the coordinate of the block covering c one level coarser.
// Calling Parent on a level-0 block is invalid.
func (c Coord) Parent() Coord {
	if c.Level == 0 {
		panic("mesh: Parent of a root block")
	}
	return Coord{Level: c.Level - 1, X: c.X >> 1, Y: c.Y >> 1, Z: c.Z >> 1}
}

// Child returns the o-th child (octant bits: x=o&1, y=o>>1&1, z=o>>2&1),
// matching the octant convention of grid.SplitInto.
func (c Coord) Child(o int) Coord {
	if o < 0 || o > 7 {
		panic(fmt.Sprintf("mesh: invalid octant %d", o))
	}
	return Coord{Level: c.Level + 1, X: c.X<<1 | o&1, Y: c.Y<<1 | (o>>1)&1, Z: c.Z<<1 | (o>>2)&1}
}

// Octant returns which child of its parent this block is.
func (c Coord) Octant() int {
	return c.X&1 | (c.Y&1)<<1 | (c.Z&1)<<2
}

// Less orders coordinates totally (level, then x, y, z); the deterministic
// iteration order used everywhere a map would otherwise be ranged.
func (c Coord) Less(o Coord) bool {
	if c.Level != o.Level {
		return c.Level < o.Level
	}
	if c.X != o.X {
		return c.X < o.X
	}
	if c.Y != o.Y {
		return c.Y < o.Y
	}
	return c.Z < o.Z
}

// component returns the coordinate along dimension d (0=x, 1=y, 2=z).
func (c Coord) component(d int) int {
	switch d {
	case 0:
		return c.X
	case 1:
		return c.Y
	default:
		return c.Z
	}
}

// withComponent returns c with dimension d replaced.
func (c Coord) withComponent(d, v int) Coord {
	switch d {
	case 0:
		c.X = v
	case 1:
		c.Y = v
	default:
		c.Z = v
	}
	return c
}

// sortCoords sorts in place by Less.
func sortCoords(cs []Coord) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Less(cs[j]) })
}
