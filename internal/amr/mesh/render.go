package mesh

import (
	"fmt"
	"strings"
)

// LevelHistogram returns the number of leaves per refinement level,
// indexed by level up to the deepest present one.
func (m *Mesh) LevelHistogram() []int {
	maxL := 0
	for c := range m.blocks {
		if c.Level > maxL {
			maxL = c.Level
		}
	}
	hist := make([]int, maxL+1)
	for c := range m.blocks {
		hist[c.Level]++
	}
	return hist
}

// RankHistogram returns the number of leaves owned by each of the given
// ranks.
func (m *Mesh) RankHistogram(ranks int) []int {
	hist := make([]int, ranks)
	for _, r := range m.blocks {
		if r >= 0 && r < ranks {
			hist[r]++
		}
	}
	return hist
}

// RenderSlice draws the refinement structure on the plane z = zFrac (a
// fraction of the domain) as an ASCII grid: one character per
// finest-present-level cell column, showing the refinement level of the
// leaf covering it ('0'-'9'). The x axis runs left to right, y bottom to
// top. byOwner switches the characters to owning ranks (base-36).
//
// Intended for quick inspection of refinement patterns from the CLI —
// the closest thing to the paper's mesh figures a terminal can offer.
func (m *Mesh) RenderSlice(zFrac float64, byOwner bool) string {
	if zFrac < 0 {
		zFrac = 0
	}
	if zFrac >= 1 {
		zFrac = 0.999999
	}
	maxL := 0
	for c := range m.blocks {
		if c.Level > maxL {
			maxL = c.Level
		}
	}
	nx := m.cfg.Extent(0, maxL)
	ny := m.cfg.Extent(1, maxL)
	rows := make([][]byte, ny)
	for j := range rows {
		rows[j] = []byte(strings.Repeat("?", nx))
	}
	zIdxF := zFrac * float64(m.cfg.Extent(2, maxL))
	for c, owner := range m.blocks {
		shift := uint(maxL - c.Level)
		zLo := c.Z << shift
		zHi := (c.Z + 1) << shift
		if int(zIdxF) < zLo || int(zIdxF) >= zHi {
			continue
		}
		ch := levelChar(c.Level)
		if byOwner {
			ch = ownerChar(owner)
		}
		for x := c.X << shift; x < (c.X+1)<<shift; x++ {
			for y := c.Y << shift; y < (c.Y+1)<<shift; y++ {
				rows[y][x] = ch
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "mesh slice z=%.3f (%d x %d cells at level %d; digits = %s)\n", //amr:nolint det-map-order -- maxL is a max fold over the block map; max is order-insensitive
		zFrac, nx, ny, maxL, map[bool]string{false: "refinement level", true: "owning rank"}[byOwner])
	for j := ny - 1; j >= 0; j-- { // y grows upward
		sb.Write(rows[j])
		sb.WriteByte('\n')
	}
	return sb.String()
}

func levelChar(l int) byte {
	if l > 9 {
		return '+'
	}
	return byte('0' + l)
}

func ownerChar(r int) byte {
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	return digits[r%len(digits)]
}
