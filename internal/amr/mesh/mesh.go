package mesh

import (
	"fmt"

	"miniamr/internal/amr/grid"
)

// Config fixes the immutable mesh parameters.
type Config struct {
	// Root is the number of level-0 blocks per dimension.
	Root [3]int
	// MaxLevel is the deepest refinement level a block may reach.
	MaxLevel int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for d := 0; d < 3; d++ {
		if c.Root[d] <= 0 {
			return fmt.Errorf("mesh: root block count %d in dimension %d must be positive", c.Root[d], d)
		}
	}
	if c.MaxLevel < 0 || c.MaxLevel > 20 {
		return fmt.Errorf("mesh: max level %d out of range [0,20]", c.MaxLevel)
	}
	return nil
}

// Extent returns the number of blocks along dimension d at the given level.
func (c Config) Extent(d, level int) int { return c.Root[d] << level }

// Bounds returns the physical region [lo, hi] a block covers in the unit
// cube.
func (c Config) Bounds(b Coord) (lo, hi [3]float64) {
	for d := 0; d < 3; d++ {
		n := float64(c.Extent(d, b.Level))
		lo[d] = float64(b.component(d)) / n
		hi[d] = float64(b.component(d)+1) / n
	}
	return lo, hi
}

// Center returns the physical center of a block.
func (c Config) Center(b Coord) [3]float64 {
	lo, hi := c.Bounds(b)
	return [3]float64{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2, (lo[2] + hi[2]) / 2}
}

// CellWidth returns the physical cell widths of a block with the given
// interior size.
func (c Config) CellWidth(b Coord, size grid.Size) [3]float64 {
	lo, hi := c.Bounds(b)
	return [3]float64{
		(hi[0] - lo[0]) / float64(size.X),
		(hi[1] - lo[1]) / float64(size.Y),
		(hi[2] - lo[2]) / float64(size.Z),
	}
}

// Mesh is the replicated block registry: the set of leaf blocks and their
// owning ranks. Mutations (refinement plans, owner changes) must be applied
// identically on every rank; the structure itself performs no
// communication. Mesh is not safe for concurrent mutation.
type Mesh struct {
	cfg    Config
	blocks map[Coord]int // leaf -> owning rank
}

// NewUniform builds the initial mesh: every root block present at level 0,
// with owners assigned by the given partition function.
func NewUniform(cfg Config, owner func(Coord) int) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{cfg: cfg, blocks: make(map[Coord]int)}
	for x := 0; x < cfg.Root[0]; x++ {
		for y := 0; y < cfg.Root[1]; y++ {
			for z := 0; z < cfg.Root[2]; z++ {
				c := Coord{Level: 0, X: x, Y: y, Z: z}
				m.blocks[c] = owner(c)
			}
		}
	}
	return m, nil
}

// NewFromLeaves rebuilds a mesh from an explicit leaf-ownership map (a
// restored checkpoint). The leaf set must satisfy every mesh invariant.
func NewFromLeaves(cfg Config, owners map[Coord]int) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(owners) == 0 {
		return nil, fmt.Errorf("mesh: empty leaf set")
	}
	m := &Mesh{cfg: cfg, blocks: make(map[Coord]int, len(owners))}
	for c, r := range owners {
		m.blocks[c] = r
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("mesh: restored leaf set invalid: %w", err)
	}
	return m, nil
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Len returns the number of leaf blocks.
func (m *Mesh) Len() int { return len(m.blocks) }

// Has reports whether c is a current leaf.
func (m *Mesh) Has(c Coord) bool {
	_, ok := m.blocks[c]
	return ok
}

// Owner returns the rank owning leaf c; it panics if c is not a leaf.
func (m *Mesh) Owner(c Coord) int {
	r, ok := m.blocks[c]
	if !ok {
		panic(fmt.Sprintf("mesh: Owner of non-leaf %v", c))
	}
	return r
}

// SetOwner reassigns a leaf to a rank (used when applying load-balance
// plans, identically on every rank).
func (m *Mesh) SetOwner(c Coord, rank int) {
	if !m.Has(c) {
		panic(fmt.Sprintf("mesh: SetOwner of non-leaf %v", c))
	}
	m.blocks[c] = rank
}

// Leaves returns all leaf coordinates in deterministic order.
func (m *Mesh) Leaves() []Coord {
	out := make([]Coord, 0, len(m.blocks))
	for c := range m.blocks {
		out = append(out, c)
	}
	sortCoords(out)
	return out
}

// Owned returns the leaves owned by rank, in deterministic order.
func (m *Mesh) Owned(rank int) []Coord {
	var out []Coord
	for c, r := range m.blocks {
		if r == rank {
			out = append(out, c)
		}
	}
	sortCoords(out)
	return out
}

// OwnedCount returns the number of leaves owned by rank without building a
// slice.
func (m *Mesh) OwnedCount(rank int) int {
	n := 0
	for _, r := range m.blocks {
		if r == rank {
			n++
		}
	}
	return n
}

// Rel describes the refinement-level relation of a neighbour.
type Rel int

// Neighbour relations across a face.
const (
	Same    Rel = iota // neighbour at the same level
	Finer              // neighbour one level finer (one of four quarter-faces)
	Coarser            // neighbour one level coarser (we cover a quarter of it)
)

func (r Rel) String() string {
	switch r {
	case Same:
		return "same"
	case Finer:
		return "finer"
	case Coarser:
		return "coarser"
	}
	return "unknown"
}

// Neighbor describes one block adjacent to a face. For Finer and Coarser
// relations, Qu and Qw locate the shared quarter-face within the coarse
// face's in-plane dimensions (the grid package's (u, w) order for the
// direction).
type Neighbor struct {
	Coord  Coord
	Rel    Rel
	Qu, Qw int
}

// inPlane returns the two in-plane dimension indices for a direction,
// matching grid.faceDims order.
func inPlane(dir grid.Dir) (int, int) {
	switch dir {
	case grid.DirX:
		return 1, 2
	case grid.DirY:
		return 0, 2
	default:
		return 0, 1
	}
}

// Neighbors returns the leaves adjacent to the given face of c, or nil for
// a domain boundary. With 2:1 balance the result is one Same neighbour, one
// Coarser neighbour, or four Finer neighbours. An error reports a corrupted
// mesh (no cover across the face).
func (m *Mesh) Neighbors(c Coord, dir grid.Dir, side grid.Side) ([]Neighbor, error) {
	d := int(dir)
	delta := 1
	if side == grid.Low {
		delta = -1
	}
	nc := c.withComponent(d, c.component(d)+delta)
	if nc.component(d) < 0 || nc.component(d) >= m.cfg.Extent(d, c.Level) {
		return nil, nil // domain boundary
	}
	if m.Has(nc) {
		return []Neighbor{{Coord: nc, Rel: Same}}, nil
	}
	u, w := inPlane(dir)
	if c.Level > 0 {
		p := nc.Parent()
		if m.Has(p) {
			// We cover the quarter of the coarse face given by our position
			// within our parent along the in-plane dimensions.
			return []Neighbor{{
				Coord: p,
				Rel:   Coarser,
				Qu:    c.component(u) & 1,
				Qw:    c.component(w) & 1,
			}}, nil
		}
	}
	if c.Level < m.cfg.MaxLevel {
		// The four children of nc whose face touches ours: their component
		// along dir is fixed (nearest to us), in-plane components vary.
		fixedBit := 0
		if side == grid.Low {
			fixedBit = 1
		}
		var out []Neighbor
		for bu := 0; bu < 2; bu++ {
			for bw := 0; bw < 2; bw++ {
				f := Coord{Level: nc.Level + 1}
				f = f.withComponent(d, nc.component(d)<<1|fixedBit)
				f = f.withComponent(u, nc.component(u)<<1|bu)
				f = f.withComponent(w, nc.component(w)<<1|bw)
				if !m.Has(f) {
					return nil, fmt.Errorf("mesh: face %v/%v of %v not covered: expected finer leaf %v", dir, side, c, f)
				}
				out = append(out, Neighbor{Coord: f, Rel: Finer, Qu: bu, Qw: bw})
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("mesh: face %v/%v of %v not covered by any leaf", dir, side, c)
}

// Clone returns a deep copy of the mesh (for tests and speculative plans).
func (m *Mesh) Clone() *Mesh {
	out := &Mesh{cfg: m.cfg, blocks: make(map[Coord]int, len(m.blocks))}
	for c, r := range m.blocks {
		out.blocks[c] = r
	}
	return out
}

// TotalCells returns the total interior cell count across all leaves for a
// given block size.
func (m *Mesh) TotalCells(size grid.Size) int64 {
	return int64(len(m.blocks)) * int64(size.Cells())
}
