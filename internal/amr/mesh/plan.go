package mesh

import (
	"fmt"

	"miniamr/internal/amr/grid"
)

// Plan is a consistent refinement decision: which current leaves split and
// which octets consolidate. Plans are computed deterministically from
// replicated state, so every rank derives the identical plan.
type Plan struct {
	// Target is the post-refinement level of every current leaf.
	Target map[Coord]int
	// Refines lists current leaves that split into eight children,
	// in deterministic order.
	Refines []Coord
	// Coarsens lists the parent coordinates created by consolidating eight
	// current sibling leaves, in deterministic order.
	Coarsens []Coord
}

// PlanRefinement computes a valid plan from per-leaf marks (+1 refine,
// 0 stay, -1 coarsen candidate; missing entries mean 0). The plan respects
// the level bounds [0, MaxLevel], changes each block by at most one level,
// enforces 2:1 balance across faces, and only coarsens complete sibling
// octets that unanimously agree.
func (m *Mesh) PlanRefinement(marks map[Coord]int8) (*Plan, error) {
	leaves := m.Leaves()
	t := make(map[Coord]int, len(leaves))
	for _, c := range leaves {
		target := c.Level + int(marks[c])
		if target < 0 {
			target = 0
		}
		if target > m.cfg.MaxLevel {
			target = m.cfg.MaxLevel
		}
		t[c] = target
	}

	// Fixpoint: both passes only ever raise targets, so the loop
	// terminates (each target is bounded by level+1).
	for changed := true; changed; {
		changed = false
		// 2:1 balance across faces of the current mesh.
		for _, a := range leaves {
			for dir := grid.DirX; dir <= grid.DirZ; dir++ {
				for _, side := range []grid.Side{grid.Low, grid.High} {
					ns, err := m.Neighbors(a, dir, side)
					if err != nil {
						return nil, fmt.Errorf("mesh: planning on corrupted mesh: %w", err)
					}
					for _, n := range ns {
						b := n.Coord
						if t[a] > t[b]+1 {
							t[b] = t[a] - 1
							changed = true
						}
						if t[b] > t[a]+1 {
							t[a] = t[b] - 1
							changed = true
						}
					}
				}
			}
		}
		// Coarsening gate: a block may only coarsen when all eight
		// siblings are leaves and all target the parent level.
		for _, a := range leaves {
			if t[a] != a.Level-1 {
				continue
			}
			p := a.Parent()
			ok := true
			for o := 0; o < 8; o++ {
				sib := p.Child(o)
				ts, exists := t[sib]
				if !exists || ts != a.Level-1 {
					ok = false
					break
				}
			}
			if !ok {
				t[a] = a.Level
				changed = true
			}
		}
	}

	plan := &Plan{Target: t}
	coarsenParents := make(map[Coord]bool)
	for _, c := range leaves {
		switch {
		case t[c] == c.Level+1:
			plan.Refines = append(plan.Refines, c)
		case t[c] == c.Level-1:
			coarsenParents[c.Parent()] = true
		}
	}
	for p := range coarsenParents {
		plan.Coarsens = append(plan.Coarsens, p)
	}
	sortCoords(plan.Coarsens)
	return plan, nil
}

// Move describes a block that must change owner before or during plan
// application.
type Move struct {
	Block    Coord
	From, To int
}

// CoarsenMoves lists the sibling blocks that must be gathered onto the
// consolidation owner (the owner of octant 0) before each coarsening can
// execute, in deterministic order.
func (p *Plan) CoarsenMoves(m *Mesh) []Move {
	var moves []Move
	for _, parent := range p.Coarsens {
		to := m.Owner(parent.Child(0))
		for o := 1; o < 8; o++ {
			child := parent.Child(o)
			if from := m.Owner(child); from != to {
				moves = append(moves, Move{Block: child, From: from, To: to})
			}
		}
	}
	return moves
}

// Apply mutates the registry according to the plan: refined leaves are
// replaced by their eight children (inheriting the owner) and coarsened
// octets by their parent (owned by octant 0's owner). Every rank must call
// Apply with the identical plan.
func (m *Mesh) Apply(p *Plan) {
	for _, c := range p.Refines {
		owner := m.Owner(c)
		delete(m.blocks, c)
		for o := 0; o < 8; o++ {
			m.blocks[c.Child(o)] = owner
		}
	}
	for _, parent := range p.Coarsens {
		owner := m.Owner(parent.Child(0))
		for o := 0; o < 8; o++ {
			delete(m.blocks, parent.Child(o))
		}
		m.blocks[parent] = owner
	}
}
