package mesh

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"miniamr/internal/amr/grid"
)

func uniform(t *testing.T, root [3]int, maxLevel int) *Mesh {
	t.Helper()
	m, err := NewUniform(Config{Root: root, MaxLevel: maxLevel}, func(Coord) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Root: [3]int{1, 1, 1}, MaxLevel: 3}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{Root: [3]int{0, 1, 1}}).Validate(); err == nil {
		t.Error("zero root accepted")
	}
	if err := (Config{Root: [3]int{1, 1, 1}, MaxLevel: -1}).Validate(); err == nil {
		t.Error("negative max level accepted")
	}
}

func TestCoordHierarchy(t *testing.T) {
	c := Coord{Level: 2, X: 5, Y: 2, Z: 7}
	p := c.Parent()
	if p != (Coord{Level: 1, X: 2, Y: 1, Z: 3}) {
		t.Errorf("Parent = %v", p)
	}
	for o := 0; o < 8; o++ {
		ch := p.Child(o)
		if ch.Octant() != o {
			t.Errorf("octant round trip: child %d reports %d", o, ch.Octant())
		}
		if ch.Parent() != p {
			t.Errorf("child %d parent mismatch", o)
		}
	}
	if c.Octant() != (5&1)|(2&1)<<1|(7&1)<<2 {
		t.Errorf("Octant = %d", c.Octant())
	}
}

func TestCoordLessTotalOrder(t *testing.T) {
	cs := []Coord{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}, {0, 0, 0, 0},
	}
	sortCoords(cs)
	want := []Coord{{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}, {1, 0, 0, 0}}
	for i := range cs {
		if cs[i] != want[i] {
			t.Fatalf("sorted = %v", cs)
		}
	}
}

func TestBoundsAndCenter(t *testing.T) {
	cfg := Config{Root: [3]int{2, 1, 1}, MaxLevel: 3}
	lo, hi := cfg.Bounds(Coord{Level: 0, X: 1, Y: 0, Z: 0})
	if lo[0] != 0.5 || hi[0] != 1 || lo[1] != 0 || hi[1] != 1 {
		t.Errorf("bounds = %v %v", lo, hi)
	}
	// Level-1 block: x extent 4, so block 2 covers [0.5, 0.75].
	lo, hi = cfg.Bounds(Coord{Level: 1, X: 2, Y: 0, Z: 0})
	if lo[0] != 0.5 || hi[0] != 0.75 {
		t.Errorf("level-1 bounds = %v %v", lo, hi)
	}
	c := cfg.Center(Coord{Level: 0, X: 0, Y: 0, Z: 0})
	if c[0] != 0.25 || c[1] != 0.5 || c[2] != 0.5 {
		t.Errorf("center = %v", c)
	}
	w := cfg.CellWidth(Coord{Level: 0, X: 0, Y: 0, Z: 0}, grid.Size{X: 4, Y: 2, Z: 2})
	if w[0] != 0.125 || w[1] != 0.5 || w[2] != 0.5 {
		t.Errorf("cell width = %v", w)
	}
}

func TestUniformMesh(t *testing.T) {
	m := uniform(t, [3]int{2, 3, 4}, 2)
	if m.Len() != 24 {
		t.Errorf("Len = %d, want 24", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if len(m.Leaves()) != 24 || len(m.Owned(0)) != 24 || m.OwnedCount(0) != 24 {
		t.Error("leaf enumeration mismatch")
	}
	if m.OwnedCount(1) != 0 {
		t.Error("rank 1 should own nothing")
	}
}

func TestNeighborsSameLevelAndBoundary(t *testing.T) {
	m := uniform(t, [3]int{2, 2, 2}, 2)
	c := Coord{Level: 0, X: 0, Y: 0, Z: 0}
	ns, err := m.Neighbors(c, grid.DirX, grid.High)
	if err != nil || len(ns) != 1 || ns[0].Rel != Same || ns[0].Coord != (Coord{0, 1, 0, 0}) {
		t.Errorf("same-level neighbor: %v %v", ns, err)
	}
	ns, err = m.Neighbors(c, grid.DirX, grid.Low)
	if err != nil || ns != nil {
		t.Errorf("domain boundary: %v %v", ns, err)
	}
}

// refineOne splits a single leaf in place for test setups.
func refineOne(t *testing.T, m *Mesh, c Coord) {
	t.Helper()
	plan, err := m.PlanRefinement(map[Coord]int8{c: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Apply(plan)
}

func TestNeighborsAcrossLevels(t *testing.T) {
	m := uniform(t, [3]int{2, 1, 1}, 2)
	refineOne(t, m, Coord{Level: 0, X: 1, Y: 0, Z: 0})
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	coarse := Coord{Level: 0, X: 0, Y: 0, Z: 0}

	// Coarse block looking +x: four finer neighbours, each with its
	// quarter-face quadrant.
	ns, err := m.Neighbors(coarse, grid.DirX, grid.High)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 4 {
		t.Fatalf("finer neighbours = %d, want 4", len(ns))
	}
	seen := map[[2]int]Coord{}
	for _, n := range ns {
		if n.Rel != Finer {
			t.Errorf("rel = %v", n.Rel)
		}
		if n.Coord.Level != 1 || n.Coord.X != 2 {
			t.Errorf("finer neighbour coord %v: children facing -x must have X=2", n.Coord)
		}
		seen[[2]int{n.Qu, n.Qw}] = n.Coord
	}
	if len(seen) != 4 {
		t.Errorf("quadrants not distinct: %v", seen)
	}
	// Quadrant (qu, qw) corresponds to in-plane (y, z) low bits.
	if c, ok := seen[[2]int{1, 0}]; !ok || c.Y != 1 || c.Z != 0 {
		t.Errorf("quadrant (1,0) = %v", seen[[2]int{1, 0}])
	}

	// Fine block looking -x: one coarser neighbour with our quadrant.
	fine := Coord{Level: 1, X: 2, Y: 1, Z: 1}
	ns, err = m.Neighbors(fine, grid.DirX, grid.Low)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0].Rel != Coarser || ns[0].Coord != coarse {
		t.Fatalf("coarser neighbour: %v", ns)
	}
	if ns[0].Qu != 1 || ns[0].Qw != 1 {
		t.Errorf("coarser quadrant = (%d,%d), want (1,1)", ns[0].Qu, ns[0].Qw)
	}

	// Fine block looking +x within the refined region: same-level sibling.
	ns, err = m.Neighbors(Coord{Level: 1, X: 2, Y: 0, Z: 0}, grid.DirX, grid.High)
	if err != nil || len(ns) != 1 || ns[0].Rel != Same {
		t.Errorf("sibling neighbour: %v %v", ns, err)
	}
}

func TestPlanRefineEnforces2to1(t *testing.T) {
	// Refine one corner block twice; the second refinement must force the
	// adjacent block to refine too.
	m := uniform(t, [3]int{2, 1, 1}, 3)
	refineOne(t, m, Coord{Level: 0, X: 0, Y: 0, Z: 0})
	// Now refine the level-1 leaf touching the coarse right block.
	plan, err := m.PlanRefinement(map[Coord]int8{{Level: 1, X: 1, Y: 0, Z: 0}: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The level-0 right block must be forced to level 1.
	if got := plan.Target[Coord{Level: 0, X: 1, Y: 0, Z: 0}]; got != 1 {
		t.Errorf("2:1 propagation: right block target = %d, want 1", got)
	}
	m.Apply(plan)
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPlanCoarsenRequiresFullOctet(t *testing.T) {
	m := uniform(t, [3]int{1, 1, 1}, 2)
	refineOne(t, m, Coord{Level: 0, X: 0, Y: 0, Z: 0})
	if m.Len() != 8 {
		t.Fatalf("Len = %d", m.Len())
	}
	// Only 7 of 8 siblings want to coarsen: nothing may coarsen.
	marks := map[Coord]int8{}
	parent := Coord{Level: 0, X: 0, Y: 0, Z: 0}
	for o := 0; o < 7; o++ {
		marks[parent.Child(o)] = -1
	}
	plan, err := m.PlanRefinement(marks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 0 {
		t.Errorf("partial octet coarsened: %v", plan.Coarsens)
	}
	// All 8 agree: coarsen happens.
	marks[parent.Child(7)] = -1
	plan, err = m.PlanRefinement(marks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 1 || plan.Coarsens[0] != parent {
		t.Errorf("Coarsens = %v", plan.Coarsens)
	}
	m.Apply(plan)
	if m.Len() != 1 {
		t.Errorf("Len after coarsen = %d, want 1", m.Len())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPlanCoarsenBlockedBy2to1(t *testing.T) {
	// A refined octet next to a doubly-refined region cannot coarsen where
	// it would create a level jump of two.
	m := uniform(t, [3]int{2, 1, 1}, 3)
	refineOne(t, m, Coord{Level: 0, X: 0, Y: 0, Z: 0})
	refineOne(t, m, Coord{Level: 0, X: 1, Y: 0, Z: 0})
	// Refine the level-1 blocks of the right half adjacent to the left half.
	marks := map[Coord]int8{}
	for _, c := range m.Leaves() {
		if c.Level == 1 && c.X == 2 {
			marks[c] = 1
		}
	}
	plan, err := m.PlanRefinement(marks)
	if err != nil {
		t.Fatal(err)
	}
	m.Apply(plan)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Now ask the left octet to coarsen to level 0: it borders level-2
	// leaves, so the plan must refuse.
	marks = map[Coord]int8{}
	for _, c := range m.Leaves() {
		if c.Level == 1 && c.X <= 1 {
			marks[c] = -1
		}
	}
	plan, err = m.PlanRefinement(marks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 0 {
		t.Errorf("coarsening created a 2-level jump: %v", plan.Coarsens)
	}
}

func TestPlanMarksClampedAtBounds(t *testing.T) {
	m := uniform(t, [3]int{1, 1, 1}, 1)
	// Level 0 cannot coarsen.
	plan, err := m.PlanRefinement(map[Coord]int8{{0, 0, 0, 0}: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 0 || len(plan.Refines) != 0 {
		t.Error("root block changed level despite bounds")
	}
	// Refine to max level, then further marks are clamped.
	refineOne(t, m, Coord{0, 0, 0, 0})
	marks := map[Coord]int8{}
	for _, c := range m.Leaves() {
		marks[c] = 1
	}
	plan, err = m.PlanRefinement(marks)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Refines) != 0 {
		t.Errorf("refined past MaxLevel: %v", plan.Refines)
	}
}

func TestCoarsenMoves(t *testing.T) {
	m := uniform(t, [3]int{1, 1, 1}, 1)
	refineOne(t, m, Coord{0, 0, 0, 0})
	// Scatter owners: octant 0 on rank 0, octants 1-7 on rank o%3.
	parent := Coord{0, 0, 0, 0}
	for o := 1; o < 8; o++ {
		m.SetOwner(parent.Child(o), o%3)
	}
	marks := map[Coord]int8{}
	for _, c := range m.Leaves() {
		marks[c] = -1
	}
	plan, err := m.PlanRefinement(marks)
	if err != nil {
		t.Fatal(err)
	}
	moves := plan.CoarsenMoves(m)
	// Children 3 and 6 are on rank 0 (o%3==0) already; 1,2,4,5,7 must move.
	if len(moves) != 5 {
		t.Fatalf("moves = %v, want 5 moves", moves)
	}
	for _, mv := range moves {
		if mv.To != 0 {
			t.Errorf("move target %d, want 0", mv.To)
		}
		if mv.From == 0 {
			t.Errorf("unnecessary move of %v", mv.Block)
		}
	}
}

func TestOwnershipAfterApply(t *testing.T) {
	m := uniform(t, [3]int{2, 1, 1}, 1)
	m.SetOwner(Coord{0, 1, 0, 0}, 3)
	refineOne(t, m, Coord{0, 1, 0, 0})
	for o := 0; o < 8; o++ {
		child := Coord{0, 1, 0, 0}.Child(o)
		if m.Owner(child) != 3 {
			t.Errorf("child %v owner = %d, want inherited 3", child, m.Owner(child))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := uniform(t, [3]int{1, 1, 1}, 1)
	c := m.Clone()
	refineOne(t, c, Coord{0, 0, 0, 0})
	if m.Len() != 1 || c.Len() != 8 {
		t.Error("clone not independent")
	}
}

func TestTotalCells(t *testing.T) {
	m := uniform(t, [3]int{2, 1, 1}, 1)
	if got := m.TotalCells(grid.Size{X: 4, Y: 4, Z: 4}); got != 128 {
		t.Errorf("TotalCells = %d, want 128", got)
	}
}

func TestRelString(t *testing.T) {
	if Same.String() != "same" || Finer.String() != "finer" || Coarser.String() != "coarser" {
		t.Error("Rel strings")
	}
}

// Property: arbitrary mark sequences over several epochs keep every mesh
// invariant intact, and plans are deterministic.
func TestPropertyRandomEpochsKeepInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Root: [3]int{rng.Intn(2) + 1, rng.Intn(2) + 1, 1}, MaxLevel: rng.Intn(3) + 1}
		m, err := NewUniform(cfg, func(Coord) int { return 0 })
		if err != nil {
			return false
		}
		for epoch := 0; epoch < 4; epoch++ {
			marks := map[Coord]int8{}
			for _, c := range m.Leaves() {
				marks[c] = int8(rng.Intn(3) - 1)
			}
			planA, err := m.PlanRefinement(marks)
			if err != nil {
				return false
			}
			planB, err := m.PlanRefinement(marks)
			if err != nil {
				return false
			}
			if len(planA.Refines) != len(planB.Refines) || len(planA.Coarsens) != len(planB.Coarsens) {
				return false // nondeterministic plan
			}
			m.Apply(planA)
			if err := m.CheckInvariants(); err != nil {
				t.Logf("seed %d epoch %d: %v", seed, epoch, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLevelHistogram(t *testing.T) {
	m := uniform(t, [3]int{2, 1, 1}, 2)
	refineOne(t, m, Coord{Level: 0, X: 0, Y: 0, Z: 0})
	hist := m.LevelHistogram()
	if len(hist) != 2 || hist[0] != 1 || hist[1] != 8 {
		t.Errorf("histogram = %v, want [1 8]", hist)
	}
}

func TestRankHistogram(t *testing.T) {
	m := uniform(t, [3]int{2, 1, 1}, 1)
	m.SetOwner(Coord{Level: 0, X: 1}, 1)
	hist := m.RankHistogram(3)
	if hist[0] != 1 || hist[1] != 1 || hist[2] != 0 {
		t.Errorf("rank histogram = %v", hist)
	}
}

func TestRenderSlice(t *testing.T) {
	m := uniform(t, [3]int{2, 1, 1}, 2)
	refineOne(t, m, Coord{Level: 0, X: 0, Y: 0, Z: 0})
	out := m.RenderSlice(0.25, false)
	if !strings.Contains(out, "mesh slice") {
		t.Fatal("header missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 2x1x1 roots at max level 1 -> 4x2 cells: header + 2 rows of 4 chars.
	if len(lines) != 3 || len(lines[1]) != 4 {
		t.Fatalf("unexpected shape: %q", out)
	}
	// Left half refined (level 1), right half coarse (level 0).
	if lines[1][:2] != "11" || lines[1][2:] != "00" {
		t.Errorf("slice rows = %v", lines[1:])
	}
	// No cell may remain uncovered.
	if strings.Contains(out, "?") {
		t.Error("uncovered cells in slice render")
	}
	// Owner view renders rank characters.
	m.SetOwner(Coord{Level: 0, X: 1}, 1)
	if got := m.RenderSlice(0.25, true); !strings.Contains(got, "1") {
		t.Error("owner view missing rank digit")
	}
	// Out-of-range fractions clamp instead of panicking.
	_ = m.RenderSlice(-3, false)
	_ = m.RenderSlice(7, false)
}
