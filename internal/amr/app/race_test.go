//go:build race

package app

// raceEnabled reports whether the race detector is compiled in; alloc
// baselines are skipped under it (instrumentation allocates).
const raceEnabled = true
