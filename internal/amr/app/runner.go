package app

import (
	"time"

	"miniamr/internal/driver"
)

func init() {
	driver.Register("miniamr", driver.Variants...)
}

// stages is the variant-specific stage set plugged into the shared main
// loop. miniAMR's drivers are thin stage definitions against the
// extracted skeleton in internal/driver; this interface is their common
// face, adapted onto driver.Hooks below.
type stages interface {
	// communicate exchanges ghost faces for the variable group [g0, g1).
	communicate(g0, g1 int) error
	// stencil applies the 7-point stencil to all owned blocks for the
	// group.
	stencil(g0, g1 int) error
	// checksum runs one checksum/validation stage over all variables.
	checksum() error
	// quiesce completes all in-flight asynchronous stage work. The runner
	// calls it before starting the refinement clock so that drained stage
	// work is not accounted as refinement time.
	quiesce() error
	// refine runs one refinement phase; advance moves the objects first.
	refine(advance bool) (bool, error)
	// drain completes outstanding asynchronous work at the end of the run
	// (including a pending delayed checksum validation).
	drain() error
}

// hooks adapts a stage set to driver.Hooks. miniAMR's stages do not vary
// within a timestep, so the per-step and per-stage position arguments are
// unused.
type hooks struct{ d stages }

func (h hooks) BeginStep(int) error               { return nil }
func (h hooks) Communicate(_, g0, g1 int) error   { return h.d.communicate(g0, g1) }
func (h hooks) Compute(_, g0, g1 int) error       { return h.d.stencil(g0, g1) }
func (h hooks) Checksum(int) error                { return h.d.checksum() }
func (h hooks) Quiesce() error                    { return h.d.quiesce() }
func (h hooks) Refine(advance bool) (bool, error) { return h.d.refine(advance) }
func (h hooks) Drain() error                      { return h.d.drain() }

// runMain executes the miniAMR main loop (the paper's Algorithm 1/4) over
// a stage set and collects the rank's results. The loop schedule itself
// lives in the driver skeleton; miniAMR contributes the stage structure
// (its variable groups, checksum cadence and refinement cadence) and the
// checkpoint/result plumbing around it.
func runMain(s *state, d stages) (Result, error) {
	start := time.Now()
	loop := driver.Loop{
		Timesteps:         s.cfg.Timesteps,
		StagesPerTimestep: s.cfg.StagesPerTimestep,
		ChecksumEvery:     s.cfg.ChecksumEvery,
		RefineEvery:       s.cfg.RefineEvery,
		Groups:            s.cfg.Groups(),
		// Initial refinement iterates to the objects' steady state, one
		// level per epoch, exactly as the reference refines before the
		// main loop. A restored run skips it: the snapshot's mesh already
		// reflects the objects, and re-running it could diverge from the
		// uninterrupted run.
		InitialRefine:    !s.restored,
		MaxInitialRefine: s.cfg.MaxLevel + 1,
		StartStep:        s.startStep,
		StartStage:       s.startStage,
	}
	lr, err := loop.Run(hooks{d})
	s.refineTime += lr.RefineTime
	if err != nil {
		return Result{}, err
	}
	if s.cfg.CheckpointFile != "" {
		if err := s.saveCheckpoint(s.cfg.Timesteps, lr.FinalStage); err != nil {
			return Result{}, err
		}
	}
	res := Result{
		TotalTime:    time.Since(start),
		RefineTime:   s.refineTime,
		Flops:        s.flops,
		Checksums:    s.oracle.History,
		FinalBlocks:  len(s.data),
		RefineEpochs: s.refineCount,
		Comm:         s.comm.Stats(),
		MeshHistory:  s.meshHistory,
	}
	if s.cfg.RenderMesh {
		res.FinalMeshView = s.msh.RenderSlice(0.5, false)
	}
	return res, nil
}
