package app

import "time"

// driver is the variant-specific execution strategy plugged into the
// shared main loop.
type driver interface {
	// communicate exchanges ghost faces for the variable group [g0, g1).
	communicate(g0, g1 int) error
	// stencil applies the 7-point stencil to all owned blocks for the
	// group.
	stencil(g0, g1 int) error
	// checksum runs one checksum/validation stage over all variables.
	checksum() error
	// quiesce completes all in-flight asynchronous stage work. The runner
	// calls it before starting the refinement clock so that drained stage
	// work is not accounted as refinement time.
	quiesce() error
	// refine runs one refinement phase; advance moves the objects first.
	refine(advance bool) (bool, error)
	// drain completes outstanding asynchronous work at the end of the run
	// (including a pending delayed checksum validation).
	drain() error
}

// runMain executes the miniAMR main loop (the paper's Algorithm 1/4) over
// a driver and collects the rank's results.
func runMain(s *state, d driver) (Result, error) {
	start := time.Now()

	// Initial refinement: iterate to the objects' steady state, one level
	// per epoch, exactly as the reference refines before the main loop.
	// A restored run skips it: the snapshot's mesh already reflects the
	// objects, and re-running it could diverge from the uninterrupted run.
	if !s.restored {
		rStart := time.Now()
		for i := 0; i <= s.cfg.MaxLevel+1; i++ {
			changed, err := d.refine(false)
			if err != nil {
				return Result{}, err
			}
			if !changed {
				break
			}
		}
		s.refineTime += time.Since(rStart)
	}

	stage := s.startStage
	for ts := s.startStep + 1; ts <= s.cfg.Timesteps; ts++ {
		for st := 1; st <= s.cfg.StagesPerTimestep; st++ {
			stage++
			for _, g := range s.cfg.Groups() {
				if err := d.communicate(g[0], g[1]); err != nil {
					return Result{}, err
				}
				if err := d.stencil(g[0], g[1]); err != nil {
					return Result{}, err
				}
			}
			if stage%s.cfg.ChecksumEvery == 0 {
				if err := d.checksum(); err != nil {
					return Result{}, err
				}
			}
		}
		if ts%s.cfg.RefineEvery == 0 {
			if err := d.quiesce(); err != nil {
				return Result{}, err
			}
			rStart := time.Now()
			if _, err := d.refine(true); err != nil {
				return Result{}, err
			}
			s.refineTime += time.Since(rStart)
		}
	}
	if err := d.drain(); err != nil {
		return Result{}, err
	}
	if s.cfg.CheckpointFile != "" {
		if err := s.saveCheckpoint(s.cfg.Timesteps, stage); err != nil {
			return Result{}, err
		}
	}
	res := Result{
		TotalTime:    time.Since(start),
		RefineTime:   s.refineTime,
		Flops:        s.flops,
		Checksums:    s.checksums,
		FinalBlocks:  len(s.data),
		RefineEpochs: s.refineCount,
		Comm:         s.comm.Stats(),
		MeshHistory:  s.meshHistory,
	}
	if s.cfg.RenderMesh {
		res.FinalMeshView = s.msh.RenderSlice(0.5, false)
	}
	return res, nil
}
