package app

import (
	"fmt"
	"time"

	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/driver"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// RunMPIOnly executes the simulation with the reference MPI-only strategy:
// one single-threaded rank per core, non-blocking sends and receives per
// direction, Waitany-driven unpacking, serial refinement and exchange
// (Algorithm 1/2 of the paper).
func RunMPIOnly(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := newState(&cfg, c, rec, 1) // one aggregated message per peer and direction
	if err != nil {
		return Result{}, err
	}
	d := &mpiOnlyDriver{s: s, eng: driver.NewSerialEngine(s.arena, scratchLen(&cfg))}
	res, err := runMain(s, d)
	if err != nil {
		return Result{}, err
	}
	d.eng.Close()
	s.close()
	return res, nil
}

// scratchLen sizes a staging buffer for the largest cross-level local copy.
func scratchLen(cfg *Config) int {
	mx := cfg.BlockSize.Y * cfg.BlockSize.Z
	if n := cfg.BlockSize.X * cfg.BlockSize.Z; n > mx {
		mx = n
	}
	if n := cfg.BlockSize.X * cfg.BlockSize.Y; n > mx {
		mx = n
	}
	return mx * cfg.CommVars
}

type mpiOnlyDriver struct {
	s *state
	// eng owns the reused per-stage communication state (waitset, send
	// list, scratch): the hot path must not allocate.
	eng *driver.SerialEngine
}

//amr:graph driver=mpionly phase=communicate seq=1
//amr:par label=Irecv axis=msgs serial
//amr:par label=IsendOwned axis=msgs serial
//amr:par label=pack axis=segs serial
//amr:par label=local-copy axis=locals serial
//amr:par label=boundary axis=bfaces serial
//amr:par label=unpack axis=segs serial
func (d *mpiOnlyDriver) communicate(g0, g1 int) error {
	s := d.s
	gv := g1 - g0
	ws := d.eng.Wait()
	scratch := d.eng.Scratch()
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched := s.scheds[dir]

		// Start receiving the required faces from every remote neighbour.
		// The waitset index of each request is its plan index.
		ws.Reset()
		for i := range s.recvPlans[dir] {
			pl := &s.recvPlans[dir][i]
			req, err := s.comm.Irecv(s.recvBufs[dir].Buf(i)[:pl.cells*gv], pl.peer, pl.tag)
			if err != nil {
				return err
			}
			ws.Add(req)
		}

		// Pack each outgoing face bundle into a fresh arena lease and send
		// it with ownership transfer: the receiving rank returns the buffer
		// to the arena after unpacking.
		for i := range s.sendPlans[dir] {
			pl := &s.sendPlans[dir][i]
			lease := s.arena.LeaseFloat64(pl.cells * gv)
			start := time.Now()
			comm.PackMessage(pl.msg, s.blockAt, g0, g1, lease.Float64())
			s.rec.Record(s.rank, 0, "pack", start, time.Now())
			req, err := s.comm.IsendOwned(lease, pl.peer, pl.tag)
			if err != nil {
				// This lease is still ours; earlier sends are in flight
				// and must settle before their buffers die.
				lease.Release()
				d.eng.FlushSends()
				return err
			}
			d.eng.TrackSend(req)
		}

		// Intra-process exchanges overlap the in-flight MPI transfers.
		start := time.Now()
		for _, tr := range sched.Local {
			comm.ExecuteLocal(tr, s.data[tr.Src], s.data[tr.Recv], g0, g1, scratch)
		}
		for _, bf := range sched.Boundary {
			s.data[bf.Block].ApplyDomainBoundary(dir, bf.Side, g0, g1)
		}
		s.rec.Record(s.rank, 0, "local-copy", start, time.Now())

		// Unpack faces as they arrive.
		for remaining := ws.Len(); remaining > 0; remaining-- {
			wstart := time.Now()
			idx, _, werr := ws.Next()
			s.rec.Record(s.rank, 0, "MPI_Waitany", wstart, time.Now())
			if werr != nil {
				return werr
			}
			pl := &s.recvPlans[dir][idx]
			ustart := time.Now()
			comm.UnpackMessage(pl.msg, s.blockAt, g0, g1, s.recvBufs[dir].Buf(idx)[:pl.cells*gv])
			s.rec.Record(s.rank, 0, "unpack", ustart, time.Now())
		}

		// Wait until all sends complete before reusing the direction's
		// buffers, as the reference does; the engine recycles the requests.
		if err := d.eng.FlushSends(); err != nil {
			return err
		}
	}
	return nil
}

//amr:graph driver=mpionly phase=stencil seq=2
//amr:par label=stencil axis=blocks serial
func (d *mpiOnlyDriver) stencil(g0, g1 int) error {
	s := d.s
	for _, bc := range s.owned() {
		blk := s.data[bc]
		s.rec.Span(s.rank, 0, "stencil", func() { s.runStencil(blk, g0, g1) })
		s.flops += s.stencilFlops(blk, g0, g1)
	}
	return nil
}

//amr:graph driver=mpionly phase=checksum seq=3
//amr:par label=cksum-local axis=blocks serial
func (d *mpiOnlyDriver) checksum() error {
	s := d.s
	owned := s.owned()
	perBlock := make(map[mesh.Coord][]float64, len(owned))
	s.rec.Span(s.rank, 0, "cksum-local", func() {
		for _, bc := range owned {
			sums := s.arena.GetFloat64(s.cfg.Vars) // Checksum overwrites it
			s.data[bc].Checksum(0, s.cfg.Vars, sums)
			perBlock[bc] = sums
		}
	})
	local := s.combineBlockSums(owned, perBlock)
	for _, bc := range owned {
		s.arena.PutFloat64(perBlock[bc])
	}
	return s.reduceAndValidate(local)
}

func (d *mpiOnlyDriver) refine(advance bool) (bool, error) {
	s := d.s
	if advance {
		s.advanceObjects()
	}
	return s.refineEpoch(s.sequentialRefineExec())
}

// sequentialRefineExec is the serial refinement execution shared by the
// MPI-only driver and the data-flow SequentialRefinement ablation.
func (s *state) sequentialRefineExec() refineExec {
	return refineExec{
		splitOwned:       s.splitOwnedSeq,
		consolidateOwned: s.consolidateOwnedSeq,
		mover:            &syncMover{s: s},
	}
}

func (s *state) splitOwnedSeq(refines []mesh.Coord) error {
	for _, bc := range refines {
		parent := s.data[bc]
		var children [8]*grid.Data
		for o := range children {
			children[o] = s.newBlockData(bc.Child(o), false)
		}
		s.rec.Span(s.rank, 0, "split", func() { parent.SplitInto(&children) })
		s.releaseBlock(parent)
		delete(s.data, bc)
		for o, ch := range children {
			s.data[bc.Child(o)] = ch
		}
	}
	return nil
}

func (s *state) consolidateOwnedSeq(parents []mesh.Coord) error {
	for _, p := range parents {
		var children [8]*grid.Data
		for o := range children {
			ch, ok := s.data[p.Child(o)]
			if !ok {
				return fmt.Errorf("app: consolidation of %v: child %d not local", p, o)
			}
			children[o] = ch
		}
		parent := s.newBlockData(p, false)
		s.rec.Span(s.rank, 0, "consolidate", func() { parent.ConsolidateFrom(&children) })
		for o := 0; o < 8; o++ {
			s.releaseBlock(children[o])
			delete(s.data, p.Child(o))
		}
		s.data[p] = parent
	}
	return nil
}

func (d *mpiOnlyDriver) drain() error { return nil }

// syncMover transfers block payloads inline with blocking operations — the
// reference behaviour where the single thread performs the whole exchange.
type syncMover struct {
	s *state
}

//amr:graph driver=mpionly phase=exchange-send seq=4
//amr:par label=SendOwned axis=xfers serial
func (m *syncMover) sendBlock(bc mesh.Coord, d *grid.Data, to, tag int) {
	s := m.s
	lease := s.arena.LeaseFloat64(d.InteriorLen())
	s.rec.Span(s.rank, 0, "exchange-pack", func() { d.PackInterior(lease.Float64()) })
	start := time.Now()
	if err := s.comm.SendOwned(lease, to, tag); err != nil {
		panic(err) // protocol code has verified arguments; transport errors are fatal here
	}
	s.rec.Record(s.rank, 0, "exchange-send", start, time.Now())
}

//amr:graph driver=mpionly phase=exchange-recv seq=5
//amr:par label=Recv axis=xfers serial
func (m *syncMover) recvBlock(bc mesh.Coord, from, tag int) *grid.Data {
	s := m.s
	d := s.newBlockData(bc, false)
	buf := s.arena.GetFloat64(d.InteriorLen())
	start := time.Now()
	if _, err := s.comm.Recv(buf, from, tag); err != nil {
		panic(err)
	}
	s.rec.Record(s.rank, 0, "exchange-recv", start, time.Now())
	s.rec.Span(s.rank, 0, "exchange-unpack", func() { d.UnpackInterior(buf) })
	s.arena.PutFloat64(buf)
	return d
}

func (m *syncMover) barrier() error { return nil }

// quiesce is a no-op: the MPI-only driver has no asynchronous stage work.
func (d *mpiOnlyDriver) quiesce() error { return nil }
