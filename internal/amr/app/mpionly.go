package app

import (
	"fmt"
	"time"

	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// RunMPIOnly executes the simulation with the reference MPI-only strategy:
// one single-threaded rank per core, non-blocking sends and receives per
// direction, Waitany-driven unpacking, serial refinement and exchange
// (Algorithm 1/2 of the paper).
func RunMPIOnly(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := newState(&cfg, c, rec, 1) // one aggregated message per peer and direction
	if err != nil {
		return Result{}, err
	}
	return runMain(s, &mpiOnlyDriver{s: s, scratch: newScratch(&cfg)})
}

// newScratch sizes a staging buffer for the largest cross-level local copy.
func newScratch(cfg *Config) []float64 {
	mx := cfg.BlockSize.Y * cfg.BlockSize.Z
	if n := cfg.BlockSize.X * cfg.BlockSize.Z; n > mx {
		mx = n
	}
	if n := cfg.BlockSize.X * cfg.BlockSize.Y; n > mx {
		mx = n
	}
	return make([]float64, mx*cfg.CommVars)
}

type mpiOnlyDriver struct {
	s       *state
	scratch []float64
}

func (d *mpiOnlyDriver) communicate(g0, g1 int) error {
	s := d.s
	gv := g1 - g0
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched := s.scheds[dir]

		// Start receiving the required faces from every remote neighbour.
		var recvReqs []*mpi.Request
		var recvMsgs [][]comm.Transfer
		var recvBufs [][]float64
		for _, pe := range sched.Peers {
			for mi, msg := range comm.Chunk(pe.Recv, s.chunkCap) {
				buf := s.recvBufs[dir][pe.Peer][mi][:comm.MessageLen(msg, gv)]
				req, err := s.comm.Irecv(buf, pe.Peer, comm.Tag(dir, mi))
				if err != nil {
					return err
				}
				recvReqs = append(recvReqs, req)
				recvMsgs = append(recvMsgs, msg)
				recvBufs = append(recvBufs, buf)
			}
		}

		// Pack and send each outgoing face bundle.
		var sendReqs []*mpi.Request
		for _, pe := range sched.Peers {
			for mi, msg := range comm.Chunk(pe.Send, s.chunkCap) {
				buf := s.sendBufs[dir][pe.Peer][mi][:comm.MessageLen(msg, gv)]
				s.rec.Span(s.rank, 0, "pack", func() {
					off := 0
					for _, tr := range msg {
						off += comm.Pack(tr, s.data[tr.Src], g0, g1, buf[off:])
					}
				})
				req, err := s.comm.Isend(buf, pe.Peer, comm.Tag(dir, mi))
				if err != nil {
					return err
				}
				sendReqs = append(sendReqs, req)
			}
		}

		// Intra-process exchanges overlap the in-flight MPI transfers.
		s.rec.Span(s.rank, 0, "local-copy", func() {
			for _, tr := range sched.Local {
				comm.ExecuteLocal(tr, s.data[tr.Src], s.data[tr.Recv], g0, g1, d.scratch)
			}
			for _, bf := range sched.Boundary {
				s.data[bf.Block].ApplyDomainBoundary(dir, bf.Side, g0, g1)
			}
		})

		// Unpack faces as they arrive.
		for remaining := len(recvReqs); remaining > 0; remaining-- {
			var idx int
			var werr error
			s.rec.Span(s.rank, 0, "MPI_Waitany", func() {
				idx, _, werr = mpi.Waitany(recvReqs)
			})
			if werr != nil {
				return werr
			}
			if idx < 0 {
				return fmt.Errorf("app: Waitany returned no request with %d outstanding", remaining)
			}
			msg, buf := recvMsgs[idx], recvBufs[idx]
			recvReqs[idx] = nil
			s.rec.Span(s.rank, 0, "unpack", func() {
				off := 0
				for _, tr := range msg {
					off += comm.Unpack(tr, s.data[tr.Recv], g0, g1, buf[off:])
				}
			})
		}

		// Wait until all sends complete before reusing the direction's
		// buffers, as the reference does.
		if err := mpi.Waitall(sendReqs); err != nil {
			return err
		}
	}
	return nil
}

func (d *mpiOnlyDriver) stencil(g0, g1 int) error {
	s := d.s
	for _, bc := range s.owned() {
		blk := s.data[bc]
		s.rec.Span(s.rank, 0, "stencil", func() { s.runStencil(blk, g0, g1) })
		s.flops += s.stencilFlops(blk, g0, g1)
	}
	return nil
}

func (d *mpiOnlyDriver) checksum() error {
	s := d.s
	owned := s.owned()
	perBlock := make(map[mesh.Coord][]float64, len(owned))
	s.rec.Span(s.rank, 0, "cksum-local", func() {
		for _, bc := range owned {
			sums := make([]float64, s.cfg.Vars)
			s.data[bc].Checksum(0, s.cfg.Vars, sums)
			perBlock[bc] = sums
		}
	})
	return s.reduceAndValidate(s.combineBlockSums(owned, perBlock))
}

func (d *mpiOnlyDriver) refine(advance bool) (bool, error) {
	s := d.s
	if advance {
		s.advanceObjects()
	}
	return s.refineEpoch(s.sequentialRefineExec())
}

// sequentialRefineExec is the serial refinement execution shared by the
// MPI-only driver and the data-flow SequentialRefinement ablation.
func (s *state) sequentialRefineExec() refineExec {
	return refineExec{
		splitOwned:       s.splitOwnedSeq,
		consolidateOwned: s.consolidateOwnedSeq,
		mover:            &syncMover{s: s},
	}
}

func (s *state) splitOwnedSeq(refines []mesh.Coord) error {
	for _, bc := range refines {
		parent := s.data[bc]
		var children [8]*grid.Data
		for o := range children {
			children[o] = s.newBlockData(bc.Child(o), false)
		}
		s.rec.Span(s.rank, 0, "split", func() { parent.SplitInto(&children) })
		delete(s.data, bc)
		for o, ch := range children {
			s.data[bc.Child(o)] = ch
		}
	}
	return nil
}

func (s *state) consolidateOwnedSeq(parents []mesh.Coord) error {
	for _, p := range parents {
		var children [8]*grid.Data
		for o := range children {
			ch, ok := s.data[p.Child(o)]
			if !ok {
				return fmt.Errorf("app: consolidation of %v: child %d not local", p, o)
			}
			children[o] = ch
		}
		parent := s.newBlockData(p, false)
		s.rec.Span(s.rank, 0, "consolidate", func() { parent.ConsolidateFrom(&children) })
		for o := 0; o < 8; o++ {
			delete(s.data, p.Child(o))
		}
		s.data[p] = parent
	}
	return nil
}

func (d *mpiOnlyDriver) drain() error { return nil }

// syncMover transfers block payloads inline with blocking operations — the
// reference behaviour where the single thread performs the whole exchange.
type syncMover struct {
	s *state
}

func (m *syncMover) sendBlock(bc mesh.Coord, d *grid.Data, to, tag int) {
	s := m.s
	buf := make([]float64, d.InteriorLen())
	s.rec.Span(s.rank, 0, "exchange-pack", func() { d.PackInterior(buf) })
	start := time.Now()
	if err := s.comm.Send(buf, to, tag); err != nil {
		panic(err) // protocol code has verified arguments; transport errors are fatal here
	}
	s.rec.Record(s.rank, 0, "exchange-send", start, time.Now())
}

func (m *syncMover) recvBlock(bc mesh.Coord, from, tag int) *grid.Data {
	s := m.s
	d := s.newBlockData(bc, false)
	buf := make([]float64, d.InteriorLen())
	start := time.Now()
	if _, err := s.comm.Recv(buf, from, tag); err != nil {
		panic(err)
	}
	s.rec.Record(s.rank, 0, "exchange-recv", start, time.Now())
	s.rec.Span(s.rank, 0, "exchange-unpack", func() { d.UnpackInterior(buf) })
	return d
}

func (m *syncMover) barrier() error { return nil }

// quiesce is a no-op: the MPI-only driver has no asynchronous stage work.
func (d *mpiOnlyDriver) quiesce() error { return nil }
