//go:build !race

package app

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
