package app

import (
	"fmt"

	"miniamr/internal/amr/balance"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
)

// Tag layout of the refinement/load-balance exchange, disjoint from the
// ghost-face tag space (which uses bases 1..3 << 20).
const (
	exchangeBase = 4 << 20
	exchangeAck  = exchangeBase     // receiver -> sender: capacity yes/no
	exchangeID   = exchangeBase + 1 // sender -> receiver: block identifier
	exchangeData = exchangeBase + 2 // + move index: the block payload
)

// blockMover abstracts how a variant transfers block payloads: the
// MPI-only driver does it inline, the fork-join driver parallelises
// pack/unpack, and the data-flow driver spawns TAMPI tasks. Control
// messages always flow on the calling (main) goroutine, matching the
// paper's design.
type blockMover interface {
	// sendBlock transmits the payload of an owned block to rank `to` with
	// the given tag. It may run asynchronously until barrier.
	sendBlock(bc mesh.Coord, d *grid.Data, to, tag int)
	// recvBlock produces the storage for an incoming block and arranges
	// for the payload from rank `from` to land in it, possibly
	// asynchronously until barrier.
	recvBlock(bc mesh.Coord, from, tag int) *grid.Data
	// barrier completes all outstanding transfers of the current round.
	barrier() error
}

// exchangeBlocks runs the block exchange protocol of the paper's Section
// IV-B: the receiver acknowledges capacity, the sender then transmits the
// block identifier as a control message and the block data tagged with it.
// When receivers run out of space, leftover moves retry in further rounds.
//
// Capacity decisions are a deterministic function of replicated state
// (per-rank block counts against the configured limit), so every rank —
// including bystanders — simulates the same accept/reject sequence and
// applies identical ownership updates, while the ACK and id control
// messages still flow for protocol fidelity.
//
//amr:graph driver=exchange phase=exchange seq=1
func (s *state) exchangeBlocks(moves []mesh.Move, mv blockMover) error {
	if len(moves) == 0 {
		return nil
	}
	limit := s.cfg.maxBlocks(s.msh.Len(), s.comm.Size())
	counts := make(map[int]int)
	for _, c := range s.msh.Leaves() {
		counts[s.msh.Owner(c)]++
	}
	// Stable global move indices tag the data messages ("block ids").
	type idxMove struct {
		mesh.Move
		id int
	}
	pending := make([]idxMove, len(moves))
	for i, m := range moves {
		pending[i] = idxMove{Move: m, id: i}
	}
	// One pooled control word serves every ACK and id message: the
	// protocol runs sequentially on the main goroutine and sends copy
	// eagerly, so the buffer can be reused immediately.
	ctl := s.arena.GetInt(1)
	defer s.arena.PutInt(ctl)

	for round := 0; len(pending) > 0; round++ {
		if round > 2*len(moves)+2 {
			return fmt.Errorf("app: block exchange stuck after %d rounds with %d moves pending (capacity %d too small?)",
				round, len(pending), limit)
		}
		// Deterministic accept/reject for this round.
		accepted := make([]bool, len(pending))
		incoming := make(map[int]int)
		for i, m := range pending {
			if counts[m.To]+incoming[m.To] < limit {
				accepted[i] = true
				incoming[m.To]++
			}
		}
		// Receivers acknowledge capacity for each pending inbound move.
		for i, m := range pending {
			if m.To != s.rank {
				continue
			}
			ctl[0] = 0
			if accepted[i] {
				ctl[0] = 1
			}
			if err := s.comm.Send(ctl, m.From, exchangeAck); err != nil {
				return err
			}
		}
		// Senders consume ACKs in order; on acceptance they send the block
		// id and start the data transfer.
		for i, m := range pending {
			if m.From != s.rank {
				continue
			}
			if _, err := s.comm.Recv(ctl, m.To, exchangeAck); err != nil {
				return err
			}
			if (ctl[0] == 1) != accepted[i] {
				return fmt.Errorf("app: exchange protocol divergence: move %d ack %d, simulated %v", m.id, ctl[0], accepted[i])
			}
			if !accepted[i] {
				continue
			}
			ctl[0] = m.id
			if err := s.comm.Send(ctl, m.To, exchangeID); err != nil {
				return err
			}
			d, ok := s.data[m.Block]
			if !ok {
				return fmt.Errorf("app: exchange of %v: sender %d has no data", m.Block, s.rank)
			}
			mv.sendBlock(m.Block, d, m.To, exchangeData+m.id)
		}
		// Receivers consume ids for accepted inbound moves and start the
		// data reception.
		arrivals := make(map[mesh.Coord]*grid.Data)
		for i, m := range pending {
			if m.To != s.rank || !accepted[i] {
				continue
			}
			if _, err := s.comm.Recv(ctl, m.From, exchangeID); err != nil {
				return err
			}
			if ctl[0] != m.id {
				return fmt.Errorf("app: exchange id mismatch: got %d, want %d", ctl[0], m.id)
			}
			arrivals[m.Block] = mv.recvBlock(m.Block, m.From, exchangeData+m.id)
		}
		if err := mv.barrier(); err != nil {
			return err
		}
		// Commit the round: bookkeeping on every rank, data maps on the
		// participants.
		var rest []idxMove
		for i, m := range pending {
			if !accepted[i] {
				rest = append(rest, m)
				continue
			}
			counts[m.From]--
			counts[m.To]++
			s.msh.SetOwner(m.Block, m.To)
			if m.From == s.rank {
				// Safe to reclaim: barrier drained the mover's async pack
				// tasks, so nothing reads the block's storage anymore.
				s.releaseBlock(s.data[m.Block])
				delete(s.data, m.Block)
			}
			if m.To == s.rank {
				s.data[m.Block] = arrivals[m.Block]
			}
		}
		if len(rest) == len(pending) {
			return fmt.Errorf("app: block exchange made no progress: %d moves pending against capacity %d", len(rest), limit)
		}
		pending = rest
	}
	return nil
}

// refineExec abstracts how a variant executes the data-side of a
// refinement epoch.
type refineExec struct {
	// splitOwned refines the rank's listed blocks: for each, produce the
	// eight children data from the parent data.
	splitOwned func(refines []mesh.Coord) error
	// consolidateOwned coarsens each listed parent from its eight local
	// children data.
	consolidateOwned func(parents []mesh.Coord) error
	// mover transfers whole blocks for sibling gathering and load balance.
	mover blockMover
}

// refineEpoch runs one complete refinement phase: mark, plan, split,
// gather siblings, consolidate, load balance, rebuild communication state.
// It returns whether the mesh changed.
func (s *state) refineEpoch(exec refineExec) (bool, error) {
	local := s.computeMarks()
	global, err := s.gatherMarks(local)
	if err != nil {
		return false, err
	}
	plan, err := s.msh.PlanRefinement(global)
	if err != nil {
		return false, err
	}
	newOwner := s.planOwnersAfter(plan)
	changed := len(plan.Refines) > 0 || len(plan.Coarsens) > 0

	// Split owned blocks: parent data becomes eight children data.
	var ownedRefines []mesh.Coord
	for _, bc := range plan.Refines {
		if s.msh.Owner(bc) == s.rank {
			ownedRefines = append(ownedRefines, bc)
		}
	}
	if err := exec.splitOwned(ownedRefines); err != nil {
		return false, err
	}

	// Gather coarsening siblings onto the consolidation owner.
	if err := s.exchangeBlocks(plan.CoarsenMoves(s.msh), exec.mover); err != nil {
		return false, err
	}

	// Consolidate parents whose octant-0 child this rank owns.
	var ownedParents []mesh.Coord
	for _, p := range plan.Coarsens {
		if s.msh.Owner(p.Child(0)) == s.rank {
			ownedParents = append(ownedParents, p)
		}
	}
	if err := exec.consolidateOwned(ownedParents); err != nil {
		return false, err
	}

	s.msh.Apply(plan)

	// Load balance the new mesh and move blocks accordingly.
	if !s.cfg.DisableLoadBalance {
		moves := balance.Moves(s.msh, newOwner)
		if len(moves) > 0 {
			changed = true
		}
		if err := s.exchangeBlocks(moves, exec.mover); err != nil {
			return false, err
		}
	}

	if err := s.rebuildComm(); err != nil {
		return false, err
	}
	if s.cfg.ValidateMesh {
		if err := s.msh.CheckInvariants(); err != nil {
			return false, fmt.Errorf("app: post-refinement mesh check: %w", err)
		}
	}
	// Coarsening changes sums legitimately; restart drift validation.
	s.oracle.Reset()
	if changed {
		s.refineCount++
	}
	s.meshHistory = append(s.meshHistory, MeshStat{
		Blocks:   s.msh.Len(),
		PerLevel: s.msh.LevelHistogram(),
	})
	return changed, nil
}

// planOwnersAfter computes the configured partition of the post-plan mesh
// without mutating the current one.
func (s *state) planOwnersAfter(plan *mesh.Plan) map[mesh.Coord]int {
	after := s.msh.Clone()
	after.Apply(plan)
	return partition(s.cfg, after, s.comm.Size())
}
