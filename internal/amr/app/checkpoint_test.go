package app

import (
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
)

// TestCheckpointRestartBitIdentical is the restart oracle: running T
// timesteps straight through must give bit-identical final checksums to
// running T/2 timesteps, checkpointing, and resuming for the rest —
// regardless of which variant resumes the run.
func TestCheckpointRestartBitIdentical(t *testing.T) {
	const ranks = 2
	full := testConfig() // 4 timesteps
	fullRes := runVariant(t, full, ranks, RunMPIOnly, nil)
	if t.Failed() {
		return
	}
	fullCk := fullRes[0].Checksums
	if len(fullCk) == 0 {
		t.Fatal("no checksums in the reference run")
	}

	for name, resume := range variants {
		name, resume := name, resume
		t.Run("resume-with-"+name, func(t *testing.T) {
			dir := t.TempDir()
			pattern := filepath.Join(dir, "ck-%d.bin")

			part1 := testConfig()
			part1.Timesteps = 2
			part1.CheckpointFile = pattern
			runVariant(t, part1, ranks, RunMPIOnly, nil)
			if t.Failed() {
				return
			}
			for r := 0; r < ranks; r++ {
				if _, err := os.Stat(checkpointPath(pattern, r)); err != nil {
					t.Fatalf("rank %d checkpoint missing: %v", r, err)
				}
			}

			part2 := testConfig() // full horizon, resumed at timestep 2
			part2.RestoreFile = pattern
			res := runVariant(t, part2, ranks, resume, nil)
			if t.Failed() {
				return
			}
			got := res[0].Checksums
			if len(got) == 0 {
				t.Fatal("no checksums after restore")
			}
			last := got[len(got)-1]
			want := fullCk[len(fullCk)-1]
			if len(last) != len(want) {
				t.Fatalf("final checksum width %d, want %d", len(last), len(want))
			}
			for v := range want {
				if math.Float64bits(last[v]) != math.Float64bits(want[v]) {
					t.Fatalf("final checksum var %d = %v, want bit-identical %v", v, last[v], want[v])
				}
			}
		})
	}
}

// TestRestoreErrors covers the failure paths of restoring.
func TestRestoreErrors(t *testing.T) {
	dir := t.TempDir()
	pattern := filepath.Join(dir, "missing-%d.bin")
	cfg := testConfig()
	cfg.RestoreFile = pattern
	runExpectingError(t, cfg, "missing snapshot")

	// A snapshot from a different configuration (block size) must be
	// rejected.
	ckPattern := filepath.Join(dir, "ck-%d.bin")
	small := testConfig()
	small.Timesteps = 1
	small.CheckpointFile = ckPattern
	runVariant(t, small, 2, RunMPIOnly, nil)
	if t.Failed() {
		return
	}
	wrong := testConfig()
	wrong.BlockSize.X = 8
	wrong.BlockSize.Y = 8
	wrong.BlockSize.Z = 8
	wrong.RestoreFile = ckPattern
	runExpectingError(t, wrong, "mismatched block size")
}

// runExpectingError runs a config on 2 ranks and asserts the job fails.
func runExpectingError(t *testing.T, cfg Config, what string) {
	t.Helper()
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	var failed atomic.Bool
	_ = w.Run(func(c *mpi.Comm) {
		if _, err := RunMPIOnly(cfg, c, nil); err != nil {
			failed.Store(true)
			panic(err) // unblock peers
		}
	})
	if !failed.Load() {
		t.Errorf("%s: expected an error, got success", what)
	}
}

// TestCheckpointPatternValidation rejects patterns without a rank slot.
func TestCheckpointPatternValidation(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointFile = "ckpt.bin"
	if err := cfg.Validate(); err == nil {
		t.Error("pattern without rank slot accepted")
	}
	cfg = testConfig()
	cfg.RestoreFile = "state"
	if err := cfg.Validate(); err == nil {
		t.Error("restore pattern without rank slot accepted")
	}
}
