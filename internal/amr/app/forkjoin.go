package app

import (
	"fmt"
	"time"

	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/driver"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// RunForkJoin executes the simulation with the hybrid MPI+OpenMP fork-join
// strategy of the paper's comparison variant: stencil, packing/unpacking,
// intra-process copies, local checksum reduction and block
// splitting/consolidation run in parallel loops with static scheduling,
// while all MPI communication stays on the master thread.
func RunForkJoin(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := newState(&cfg, c, rec, 1)
	if err != nil {
		return Result{}, err
	}
	eng := driver.NewForkJoinEngine(s.arena, cfg.Workers, scratchLen(&cfg),
		cfg.ForkJoinSchedule == "dynamic")
	defer eng.ClosePool()
	d := &forkJoinDriver{s: s, eng: eng}
	res, err := runMain(s, d)
	if err != nil {
		return Result{}, err
	}
	eng.Close()
	s.close()
	return res, nil
}

type forkJoinDriver struct {
	s *state
	// eng owns the worker pool, the per-worker scratch buffers and arena
	// caches, and the master thread's reused waitset.
	eng *driver.ForkJoinEngine
}

// parFor dispatches a parallel loop with the configured schedule.
func (d *forkJoinDriver) parFor(n int, body func(i, w int)) {
	d.eng.ParFor(n, body)
}

//amr:graph driver=forkjoin phase=communicate seq=1
//amr:par label=Irecv axis=msgs serial
//amr:par label=IsendOwned axis=msgs serial
//amr:par label=pack axis=segs
//amr:par label=local-copy axis=locals
//amr:par label=boundary axis=bfaces
//amr:par label=unpack axis=segs
func (d *forkJoinDriver) communicate(g0, g1 int) error {
	s := d.s
	gv := g1 - g0
	ws := d.eng.Wait()
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched := s.scheds[dir]

		// Master posts all receives; the waitset index of each request is
		// its plan index.
		ws.Reset()
		for i := range s.recvPlans[dir] {
			pl := &s.recvPlans[dir][i]
			req, err := s.comm.Irecv(s.recvBufs[dir].Buf(i)[:pl.cells*gv], pl.peer, pl.tag)
			if err != nil {
				return err
			}
			ws.Add(req)
		}

		// Parallel region: pack every outgoing transfer (flat index space
		// across peers and messages) into fresh arena leases, then master
		// sends them with ownership transfer.
		type packJob struct {
			tr  comm.Transfer
			dst []float64
		}
		var jobs []packJob
		type sendMsg struct {
			peer  int
			tag   int
			lease *membuf.Lease
		}
		var sends []sendMsg
		for i := range s.sendPlans[dir] {
			pl := &s.sendPlans[dir][i]
			lease := s.arena.LeaseFloat64(pl.cells * gv)
			buf := lease.Float64()
			off := 0
			for _, tr := range pl.msg {
				jobs = append(jobs, packJob{tr: tr, dst: buf[off : off+tr.Len(gv)]})
				off += tr.Len(gv)
			}
			sends = append(sends, sendMsg{peer: pl.peer, tag: pl.tag, lease: lease})
		}
		d.parFor(len(jobs), func(i, w int) {
			job := jobs[i]
			s.rec.Span(s.rank, w, "pack", func() {
				comm.Pack(job.tr, s.data[job.tr.Src], g0, g1, job.dst)
			})
		})
		var sendReqs []*mpi.Request
		for si, sm := range sends {
			req, err := s.comm.IsendOwned(sm.lease, sm.peer, sm.tag)
			if err != nil {
				// The failed and the not-yet-sent leases are still ours;
				// in-flight sends must settle before their buffers die.
				for _, rest := range sends[si:] {
					rest.lease.Release()
				}
				mpi.Waitall(sendReqs)
				return err
			}
			sendReqs = append(sendReqs, req)
		}

		// Parallel intra-process copies and boundary conditions. Distinct
		// transfers write distinct ghost cells, so the loop is race-free.
		d.parFor(len(sched.Local), func(i, w int) {
			tr := sched.Local[i]
			s.rec.Span(s.rank, w, "local-copy", func() {
				comm.ExecuteLocal(tr, s.data[tr.Src], s.data[tr.Recv], g0, g1, d.eng.Scratch(w))
			})
		})
		d.eng.For(len(sched.Boundary), func(i int) {
			bf := sched.Boundary[i]
			s.data[bf.Block].ApplyDomainBoundary(dir, bf.Side, g0, g1)
		})

		// Master waits for arrivals; each message unpacks in parallel.
		for remaining := ws.Len(); remaining > 0; remaining-- {
			var idx int
			var werr error
			s.rec.Span(s.rank, 0, "MPI_Waitany", func() {
				idx, _, werr = ws.Next()
			})
			if werr != nil {
				return werr
			}
			pl := &s.recvPlans[dir][idx]
			msg, buf := pl.msg, s.recvBufs[dir].Buf(idx)
			offs := make([]int, len(msg))
			off := 0
			for i, tr := range msg {
				offs[i] = off
				off += tr.Len(gv)
			}
			d.parFor(len(msg), func(i, w int) {
				tr := msg[i]
				s.rec.Span(s.rank, w, "unpack", func() {
					comm.Unpack(tr, s.data[tr.Recv], g0, g1, buf[offs[i]:offs[i]+tr.Len(gv)])
				})
			})
		}
		if err := mpi.Waitall(sendReqs); err != nil {
			return err
		}
		for _, req := range sendReqs {
			req.Free()
		}
	}
	return nil
}

//amr:graph driver=forkjoin phase=stencil seq=2
//amr:par label=stencil axis=blocks
func (d *forkJoinDriver) stencil(g0, g1 int) error {
	s := d.s
	owned := s.owned()
	d.parFor(len(owned), func(i, w int) {
		blk := s.data[owned[i]]
		s.rec.Span(s.rank, w, "stencil", func() { s.runStencil(blk, g0, g1) })
	})
	for _, bc := range owned {
		s.flops += s.stencilFlops(s.data[bc], g0, g1)
	}
	return nil
}

//amr:graph driver=forkjoin phase=checksum seq=3
//amr:par label=cksum-local axis=blocks
func (d *forkJoinDriver) checksum() error {
	s := d.s
	owned := s.owned()
	sums := make([][]float64, len(owned))
	d.parFor(len(owned), func(i, w int) {
		out := d.eng.Cache(w).GetFloat64(s.cfg.Vars) // Checksum overwrites it
		blk := s.data[owned[i]]
		s.rec.Span(s.rank, w, "cksum-local", func() { blk.Checksum(0, s.cfg.Vars, out) })
		sums[i] = out
	})
	// Deterministic combine in block order on the master.
	perBlock := make(map[mesh.Coord][]float64, len(owned))
	for i, bc := range owned {
		perBlock[bc] = sums[i]
	}
	local := s.combineBlockSums(owned, perBlock)
	for _, out := range sums {
		s.arena.PutFloat64(out)
	}
	return s.reduceAndValidate(local)
}

func (d *forkJoinDriver) refine(advance bool) (bool, error) {
	s := d.s
	if advance {
		s.advanceObjects()
	}
	return s.refineEpoch(refineExec{
		splitOwned:       d.splitOwned,
		consolidateOwned: d.consolidateOwned,
		mover:            &forkJoinMover{d: d},
	})
}

// splitOwned parallelises the per-block child copies (the paper extends
// the fork-join variant with exactly this for a fair comparison).
func (d *forkJoinDriver) splitOwned(refines []mesh.Coord) error {
	s := d.s
	children := make([][8]*grid.Data, len(refines))
	for i, bc := range refines {
		for o := 0; o < 8; o++ {
			children[i][o] = s.newBlockData(bc.Child(o), false)
		}
	}
	d.parFor(len(refines), func(i, w int) {
		parent := s.data[refines[i]]
		s.rec.Span(s.rank, w, "split", func() { parent.SplitInto(&children[i]) })
	})
	for i, bc := range refines {
		s.releaseBlock(s.data[bc])
		delete(s.data, bc)
		for o := 0; o < 8; o++ {
			s.data[bc.Child(o)] = children[i][o]
		}
	}
	return nil
}

func (d *forkJoinDriver) consolidateOwned(parents []mesh.Coord) error {
	s := d.s
	type job struct {
		parent   *grid.Data
		children [8]*grid.Data
	}
	jobs := make([]job, len(parents))
	for i, p := range parents {
		jobs[i].parent = s.newBlockData(p, false)
		for o := 0; o < 8; o++ {
			ch, ok := s.data[p.Child(o)]
			if !ok {
				return fmt.Errorf("app: consolidation of %v: child %d not local", p, o)
			}
			jobs[i].children[o] = ch
		}
	}
	d.parFor(len(jobs), func(i, w int) {
		s.rec.Span(s.rank, w, "consolidate", func() { jobs[i].parent.ConsolidateFrom(&jobs[i].children) })
	})
	for i, p := range parents {
		for o := 0; o < 8; o++ {
			s.releaseBlock(jobs[i].children[o])
			delete(s.data, p.Child(o))
		}
		s.data[p] = jobs[i].parent
	}
	return nil
}

func (d *forkJoinDriver) drain() error { return nil }

// forkJoinMover packs and unpacks block payloads in parallel regions while
// the master performs the MPI operations.
type forkJoinMover struct {
	d *forkJoinDriver
}

//amr:graph driver=forkjoin phase=exchange-send seq=4
//amr:par label=SendOwned axis=xfers serial
func (m *forkJoinMover) sendBlock(bc mesh.Coord, blk *grid.Data, to, tag int) {
	s := m.d.s
	lease := s.arena.LeaseFloat64(blk.InteriorLen())
	s.rec.Span(s.rank, 0, "exchange-pack", func() { blk.PackInterior(lease.Float64()) })
	start := time.Now()
	if err := s.comm.SendOwned(lease, to, tag); err != nil {
		panic(err)
	}
	s.rec.Record(s.rank, 0, "exchange-send", start, time.Now())
}

//amr:graph driver=forkjoin phase=exchange-recv seq=5
//amr:par label=Recv axis=xfers serial
func (m *forkJoinMover) recvBlock(bc mesh.Coord, from, tag int) *grid.Data {
	s := m.d.s
	blk := s.newBlockData(bc, false)
	buf := s.arena.GetFloat64(blk.InteriorLen())
	start := time.Now()
	if _, err := s.comm.Recv(buf, from, tag); err != nil {
		panic(err)
	}
	s.rec.Record(s.rank, 0, "exchange-recv", start, time.Now())
	s.rec.Span(s.rank, 0, "exchange-unpack", func() { blk.UnpackInterior(buf) })
	s.arena.PutFloat64(buf)
	return blk
}

func (m *forkJoinMover) barrier() error { return nil }

// quiesce is a no-op: parallel regions end with an implicit barrier.
func (d *forkJoinDriver) quiesce() error { return nil }
