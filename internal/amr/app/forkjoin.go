package app

import (
	"fmt"
	"time"

	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/forkjoin"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// RunForkJoin executes the simulation with the hybrid MPI+OpenMP fork-join
// strategy of the paper's comparison variant: stencil, packing/unpacking,
// intra-process copies, local checksum reduction and block
// splitting/consolidation run in parallel loops with static scheduling,
// while all MPI communication stays on the master thread.
func RunForkJoin(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := newState(&cfg, c, rec, 1)
	if err != nil {
		return Result{}, err
	}
	pool := forkjoin.MustNew(cfg.Workers)
	defer pool.Close()
	scratches := make([][]float64, cfg.Workers)
	for i := range scratches {
		scratches[i] = newScratch(&cfg)
	}
	return runMain(s, &forkJoinDriver{s: s, pool: pool, scratches: scratches})
}

type forkJoinDriver struct {
	s         *state
	pool      *forkjoin.Pool
	scratches [][]float64 // per-worker staging for cross-level copies
}

// parFor dispatches a parallel loop with the configured schedule.
func (d *forkJoinDriver) parFor(n int, body func(i, w int)) {
	if d.s.cfg.ForkJoinSchedule == "dynamic" {
		d.pool.ForDynamic(n, 1, body)
		return
	}
	d.pool.ForWorker(n, body)
}

func (d *forkJoinDriver) communicate(g0, g1 int) error {
	s := d.s
	gv := g1 - g0
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched := s.scheds[dir]

		// Master posts all receives.
		var recvReqs []*mpi.Request
		var recvMsgs [][]comm.Transfer
		var recvBufs [][]float64
		for _, pe := range sched.Peers {
			for mi, msg := range comm.Chunk(pe.Recv, s.chunkCap) {
				buf := s.recvBufs[dir][pe.Peer][mi][:comm.MessageLen(msg, gv)]
				req, err := s.comm.Irecv(buf, pe.Peer, comm.Tag(dir, mi))
				if err != nil {
					return err
				}
				recvReqs = append(recvReqs, req)
				recvMsgs = append(recvMsgs, msg)
				recvBufs = append(recvBufs, buf)
			}
		}

		// Parallel region: pack every outgoing transfer (flat index space
		// across peers and messages), then master sends.
		type packJob struct {
			tr  comm.Transfer
			dst []float64
		}
		var jobs []packJob
		type sendMsg struct {
			peer int
			tag  int
			buf  []float64
		}
		var sends []sendMsg
		for _, pe := range sched.Peers {
			for mi, msg := range comm.Chunk(pe.Send, s.chunkCap) {
				buf := s.sendBufs[dir][pe.Peer][mi][:comm.MessageLen(msg, gv)]
				off := 0
				for _, tr := range msg {
					jobs = append(jobs, packJob{tr: tr, dst: buf[off : off+tr.Len(gv)]})
					off += tr.Len(gv)
				}
				sends = append(sends, sendMsg{peer: pe.Peer, tag: comm.Tag(dir, mi), buf: buf})
			}
		}
		d.parFor(len(jobs), func(i, w int) {
			job := jobs[i]
			s.rec.Span(s.rank, w, "pack", func() {
				comm.Pack(job.tr, s.data[job.tr.Src], g0, g1, job.dst)
			})
		})
		var sendReqs []*mpi.Request
		for _, sm := range sends {
			req, err := s.comm.Isend(sm.buf, sm.peer, sm.tag)
			if err != nil {
				return err
			}
			sendReqs = append(sendReqs, req)
		}

		// Parallel intra-process copies and boundary conditions. Distinct
		// transfers write distinct ghost cells, so the loop is race-free.
		d.parFor(len(sched.Local), func(i, w int) {
			tr := sched.Local[i]
			s.rec.Span(s.rank, w, "local-copy", func() {
				comm.ExecuteLocal(tr, s.data[tr.Src], s.data[tr.Recv], g0, g1, d.scratches[w])
			})
		})
		d.pool.For(len(sched.Boundary), func(i int) {
			bf := sched.Boundary[i]
			s.data[bf.Block].ApplyDomainBoundary(dir, bf.Side, g0, g1)
		})

		// Master waits for arrivals; each message unpacks in parallel.
		for remaining := len(recvReqs); remaining > 0; remaining-- {
			var idx int
			var werr error
			s.rec.Span(s.rank, 0, "MPI_Waitany", func() {
				idx, _, werr = mpi.Waitany(recvReqs)
			})
			if werr != nil {
				return werr
			}
			if idx < 0 {
				return fmt.Errorf("app: Waitany returned no request with %d outstanding", remaining)
			}
			msg, buf := recvMsgs[idx], recvBufs[idx]
			recvReqs[idx] = nil
			offs := make([]int, len(msg))
			off := 0
			for i, tr := range msg {
				offs[i] = off
				off += tr.Len(gv)
			}
			d.parFor(len(msg), func(i, w int) {
				tr := msg[i]
				s.rec.Span(s.rank, w, "unpack", func() {
					comm.Unpack(tr, s.data[tr.Recv], g0, g1, buf[offs[i]:offs[i]+tr.Len(gv)])
				})
			})
		}
		if err := mpi.Waitall(sendReqs); err != nil {
			return err
		}
	}
	return nil
}

func (d *forkJoinDriver) stencil(g0, g1 int) error {
	s := d.s
	owned := s.owned()
	d.parFor(len(owned), func(i, w int) {
		blk := s.data[owned[i]]
		s.rec.Span(s.rank, w, "stencil", func() { s.runStencil(blk, g0, g1) })
	})
	for _, bc := range owned {
		s.flops += s.stencilFlops(s.data[bc], g0, g1)
	}
	return nil
}

func (d *forkJoinDriver) checksum() error {
	s := d.s
	owned := s.owned()
	sums := make([][]float64, len(owned))
	d.parFor(len(owned), func(i, w int) {
		out := make([]float64, s.cfg.Vars)
		blk := s.data[owned[i]]
		s.rec.Span(s.rank, w, "cksum-local", func() { blk.Checksum(0, s.cfg.Vars, out) })
		sums[i] = out
	})
	// Deterministic combine in block order on the master.
	perBlock := make(map[mesh.Coord][]float64, len(owned))
	for i, bc := range owned {
		perBlock[bc] = sums[i]
	}
	return s.reduceAndValidate(s.combineBlockSums(owned, perBlock))
}

func (d *forkJoinDriver) refine(advance bool) (bool, error) {
	s := d.s
	if advance {
		s.advanceObjects()
	}
	return s.refineEpoch(refineExec{
		splitOwned:       d.splitOwned,
		consolidateOwned: d.consolidateOwned,
		mover:            &forkJoinMover{d: d},
	})
}

// splitOwned parallelises the per-block child copies (the paper extends
// the fork-join variant with exactly this for a fair comparison).
func (d *forkJoinDriver) splitOwned(refines []mesh.Coord) error {
	s := d.s
	children := make([][8]*grid.Data, len(refines))
	for i, bc := range refines {
		for o := 0; o < 8; o++ {
			children[i][o] = s.newBlockData(bc.Child(o), false)
		}
	}
	d.parFor(len(refines), func(i, w int) {
		parent := s.data[refines[i]]
		s.rec.Span(s.rank, w, "split", func() { parent.SplitInto(&children[i]) })
	})
	for i, bc := range refines {
		delete(s.data, bc)
		for o := 0; o < 8; o++ {
			s.data[bc.Child(o)] = children[i][o]
		}
	}
	return nil
}

func (d *forkJoinDriver) consolidateOwned(parents []mesh.Coord) error {
	s := d.s
	type job struct {
		parent   *grid.Data
		children [8]*grid.Data
	}
	jobs := make([]job, len(parents))
	for i, p := range parents {
		jobs[i].parent = s.newBlockData(p, false)
		for o := 0; o < 8; o++ {
			ch, ok := s.data[p.Child(o)]
			if !ok {
				return fmt.Errorf("app: consolidation of %v: child %d not local", p, o)
			}
			jobs[i].children[o] = ch
		}
	}
	d.parFor(len(jobs), func(i, w int) {
		s.rec.Span(s.rank, w, "consolidate", func() { jobs[i].parent.ConsolidateFrom(&jobs[i].children) })
	})
	for i, p := range parents {
		for o := 0; o < 8; o++ {
			delete(s.data, p.Child(o))
		}
		s.data[p] = jobs[i].parent
	}
	return nil
}

func (d *forkJoinDriver) drain() error { return nil }

// forkJoinMover packs and unpacks block payloads in parallel regions while
// the master performs the MPI operations.
type forkJoinMover struct {
	d *forkJoinDriver
}

func (m *forkJoinMover) sendBlock(bc mesh.Coord, blk *grid.Data, to, tag int) {
	s := m.d.s
	buf := make([]float64, blk.InteriorLen())
	// Parallel pack by interior slab: split the flat payload by worker.
	s.rec.Span(s.rank, 0, "exchange-pack", func() { blk.PackInterior(buf) })
	start := time.Now()
	if err := s.comm.Send(buf, to, tag); err != nil {
		panic(err)
	}
	s.rec.Record(s.rank, 0, "exchange-send", start, time.Now())
}

func (m *forkJoinMover) recvBlock(bc mesh.Coord, from, tag int) *grid.Data {
	s := m.d.s
	blk := s.newBlockData(bc, false)
	buf := make([]float64, blk.InteriorLen())
	start := time.Now()
	if _, err := s.comm.Recv(buf, from, tag); err != nil {
		panic(err)
	}
	s.rec.Record(s.rank, 0, "exchange-recv", start, time.Now())
	s.rec.Span(s.rank, 0, "exchange-unpack", func() { blk.UnpackInterior(buf) })
	return blk
}

func (m *forkJoinMover) barrier() error { return nil }

// quiesce is a no-op: parallel regions end with an implicit barrier.
func (d *forkJoinDriver) quiesce() error { return nil }
