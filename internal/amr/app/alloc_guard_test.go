package app

import "testing"

// ghostExchangeAllocBaseline is the pooled message path's steady-state
// allocation budget for one full ghost exchange, established when the
// zero-copy buffer arena landed: a handful of per-call slice headers,
// nothing proportional to message count or size. Neither the sanitizer
// hooks (while the sanitizer is off) nor the chaos fault hooks (while
// chaos is off) may move it.
const ghostExchangeAllocBaseline = 8

// TestGhostExchangeAllocBaseline guards the sanitizer-off, chaos-off
// fast path: every hook added for amrsan is a nil check and the fault
// path is one nil pointer test in dispatch, so the exchange's allocs/op
// must stay at the pooled-arena baseline.
func TestGhostExchangeAllocBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation baseline needs steady-state iterations")
	}
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	res := testing.Benchmark(benchGhostExchange)
	if got := res.AllocsPerOp(); got > ghostExchangeAllocBaseline {
		t.Errorf("ghost exchange allocs/op = %d, want <= %d (sanitizer-off path must stay pooled)",
			got, ghostExchangeAllocBaseline)
	}
}
