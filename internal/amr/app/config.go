// Package app assembles the complete AMR mini-application: the miniAMR
// main loop (communicate, stencil, checksum, refinement with load
// balancing) in three interchangeable parallelisation variants:
//
//   - MPIOnly: the reference single-threaded-per-rank version
//     (Algorithm 1/2 of the paper), one rank per core, non-blocking MPI
//     with Waitany-driven unpacking.
//   - ForkJoin: the hybrid MPI+OpenMP comparison variant: loop-parallel
//     computation with static scheduling, all MPI on the master.
//   - DataFlow: the paper's contribution, TAMPI+OmpSs-2 style: every phase
//     taskified and connected through data dependencies, communications
//     issued from tasks through the task-aware MPI layer.
//
// All variants run the same deterministic numerics, so for a fixed rank
// count they produce bit-identical checksums — the correctness oracle the
// test suite leans on.
package app

import (
	"fmt"
	"strings"

	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/object"
	"miniamr/internal/sanitize"
	"miniamr/internal/task"
)

// Config describes one simulation. The option names follow the miniAMR
// command-line flags the paper discusses.
type Config struct {
	// RootBlocks is the initial number of blocks per dimension.
	RootBlocks [3]int
	// MaxLevel is the deepest refinement level.
	MaxLevel int
	// BlockSize is the interior cell extent of every block.
	BlockSize grid.Size
	// Vars is the number of variables per cell.
	Vars int
	// CommVars is the group width for communication/stencil variable
	// groups (--comm_vars). Zero means all variables in one group.
	CommVars int
	// Stencil selects the stencil kernel (--stencil): 7 (default) or 27
	// points. The 27-point stencil consumes edge/corner ghosts, which are
	// synthesised locally (see grid.FillGhostEdges).
	Stencil int

	// Timesteps and StagesPerTimestep shape the main loop.
	Timesteps         int
	StagesPerTimestep int
	// ChecksumEvery performs checksum validation every N stages.
	ChecksumEvery int
	// RefineEvery performs a refinement (and load-balancing) phase every N
	// timesteps.
	RefineEvery int

	// Objects drive refinement.
	Objects []object.Object
	// UniformRefine makes every refinement epoch refine all blocks
	// (miniAMR's --uniform_refine): the mesh reaches the maximum level
	// everywhere, the stress case for refinement and exchange machinery.
	UniformRefine bool

	// SendFaces sends each face in its own message (--send_faces) instead
	// of one aggregated message per neighbour and direction.
	SendFaces bool
	// MaxCommTasks caps the number of communication tasks (and messages)
	// per neighbour and direction when SendFaces is set (--max_comm_tasks).
	// Zero means one task per face.
	MaxCommTasks int
	// SeparateBuffers gives each direction its own communication buffers
	// (--separate_buffers), removing false dependencies between
	// directions in the data-flow variant.
	SeparateBuffers bool
	// DelayedChecksum enables the OmpSs-2 taskwait-with-dependencies
	// optimisation: each checksum stage validates the previous stage's
	// sums, so the barrier does not drain in-flight work.
	DelayedChecksum bool

	// ChecksumTolerance is the allowed relative drift of per-variable
	// global sums between validations. Zero selects the default.
	ChecksumTolerance float64
	// MaxBlocksPerRank bounds receiver capacity in the block exchange
	// protocol; zero selects a generous default (4x the balanced share).
	MaxBlocksPerRank int

	// SequentialRefinement serialises the data-flow variant's refinement
	// phase (no tasks) — the baseline of the paper's Section IV-B claim
	// that taskification removes most of the refinement time.
	SequentialRefinement bool
	// Partitioner selects the load-balancing policy: "rcb" (the reference
	// default) or "sfc" (Morton space-filling curve, an extension).
	// Empty selects "rcb".
	Partitioner string
	// DisableLoadBalance skips the post-refinement block redistribution
	// entirely (ablation: exposes the load imbalance AMR builds up).
	DisableLoadBalance bool
	// ForkJoinSchedule selects the fork-join variant's loop schedule:
	// "static" (the reference behaviour, default) or "dynamic" (workers
	// claim iterations from a shared counter, an OpenMP schedule(dynamic)
	// ablation).
	ForkJoinSchedule string
	// BlockingTAMPI makes the data-flow variant issue blocking TAMPI
	// operations from communication tasks (pausing the task) instead of
	// binding non-blocking requests — the TAMPI library's other operating
	// mode.
	BlockingTAMPI bool

	// RenderMesh fills Result.FinalMeshView with an ASCII slice of the
	// final mesh (z = 0.5).
	RenderMesh bool
	// ValidateMesh checks every mesh invariant (cover, 2:1 balance, tree
	// consistency) after each refinement epoch. Cheap insurance for long
	// runs; on by default in the test suite.
	ValidateMesh bool

	// CheckpointFile, when set, makes every rank write its snapshot at the
	// end of the run. The pattern must contain %d for the rank
	// ("ckpt-%d.bin").
	CheckpointFile string
	// RestoreFile, when set, resumes the run from per-rank snapshot files
	// instead of initialising a fresh mesh; same %d pattern.
	RestoreFile string

	// Workers is the number of cores per rank used by the hybrid variants.
	Workers int
	// DisableImmediateSuccessor turns off the data-flow scheduler's
	// locality policy (ablation).
	DisableImmediateSuccessor bool

	// Sanitizer, when set, wires the amrsan runtime sanitizer into the
	// run: the data-flow variant registers a per-rank task observer and
	// reports its tasks' actual accesses for dependency-race checking.
	// The caller owns attachment to the world (sanitize.Attach) and the
	// end-of-run audit (Finish). Nil costs nothing. Runtime-only: never
	// crosses a process boundary (multi-process children re-attach their
	// own), hence excluded from the wire encoding.
	Sanitizer *sanitize.Sanitizer `json:"-"`
	// TaskObserver, when non-nil, yields a per-rank task lifecycle
	// observer for the data-flow variant (teed with the sanitizer's).
	// Used to measure dynamic concurrency, e.g. with task.NewWidthMeter.
	// Runtime-only, like Sanitizer.
	TaskObserver func(rank int) task.Observer `json:"-"`
}

// defaultChecksumTolerance allows for the small non-conservation introduced
// at refinement-level interfaces by restriction/prolongation.
const defaultChecksumTolerance = 0.05

// Validate reports configuration errors and fills zero defaults.
func (c *Config) Validate() error {
	for d := 0; d < 3; d++ {
		if c.RootBlocks[d] <= 0 {
			return fmt.Errorf("app: RootBlocks[%d] must be positive", d)
		}
	}
	if err := c.BlockSize.Validate(); err != nil {
		return err
	}
	if c.MaxLevel < 0 {
		return fmt.Errorf("app: MaxLevel must be non-negative")
	}
	if c.Vars <= 0 {
		return fmt.Errorf("app: Vars must be positive")
	}
	if c.CommVars < 0 || c.CommVars > c.Vars {
		return fmt.Errorf("app: CommVars %d out of range [0,%d]", c.CommVars, c.Vars)
	}
	if c.CommVars == 0 {
		c.CommVars = c.Vars
	}
	if c.Stencil == 0 {
		c.Stencil = 7
	}
	if c.Stencil != 7 && c.Stencil != 27 {
		return fmt.Errorf("app: Stencil must be 7 or 27, got %d", c.Stencil)
	}
	if c.Partitioner == "" {
		c.Partitioner = "rcb"
	}
	if c.Partitioner != "rcb" && c.Partitioner != "sfc" {
		return fmt.Errorf("app: Partitioner must be rcb or sfc, got %q", c.Partitioner)
	}
	if c.ForkJoinSchedule == "" {
		c.ForkJoinSchedule = "static"
	}
	if c.ForkJoinSchedule != "static" && c.ForkJoinSchedule != "dynamic" {
		return fmt.Errorf("app: ForkJoinSchedule must be static or dynamic, got %q", c.ForkJoinSchedule)
	}
	if c.Timesteps <= 0 || c.StagesPerTimestep <= 0 {
		return fmt.Errorf("app: Timesteps and StagesPerTimestep must be positive")
	}
	if c.ChecksumEvery < 0 || c.RefineEvery < 0 {
		return fmt.Errorf("app: ChecksumEvery and RefineEvery must be non-negative")
	}
	if c.ChecksumEvery == 0 {
		c.ChecksumEvery = c.StagesPerTimestep // once per timestep
	}
	if c.RefineEvery == 0 {
		c.RefineEvery = 1
	}
	if c.ChecksumTolerance == 0 {
		c.ChecksumTolerance = defaultChecksumTolerance
	}
	if c.ChecksumTolerance < 0 {
		return fmt.Errorf("app: ChecksumTolerance must be positive")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxCommTasks < 0 {
		return fmt.Errorf("app: MaxCommTasks must be non-negative")
	}
	if c.MaxBlocksPerRank < 0 {
		return fmt.Errorf("app: MaxBlocksPerRank must be non-negative")
	}
	for _, pattern := range []string{c.CheckpointFile, c.RestoreFile} {
		if pattern != "" && !strings.Contains(pattern, "%d") {
			return fmt.Errorf("app: checkpoint pattern %q must contain %%d for the rank", pattern)
		}
	}
	for i := range c.Objects {
		if err := c.Objects[i].Validate(); err != nil {
			return fmt.Errorf("app: object %d: %w", i, err)
		}
	}
	return nil
}

// Groups returns the variable group boundaries [g0, g1) in order.
func (c *Config) Groups() [][2]int {
	var out [][2]int
	for g0 := 0; g0 < c.Vars; g0 += c.CommVars {
		g1 := g0 + c.CommVars
		if g1 > c.Vars {
			g1 = c.Vars
		}
		out = append(out, [2]int{g0, g1})
	}
	return out
}

// chunkCap translates the message options into the Chunk cap for the
// data-flow variant: aggregated (1), per-face (0), or capped.
func (c *Config) chunkCap() int {
	if !c.SendFaces {
		return 1
	}
	return c.MaxCommTasks
}

// maxBlocks returns the receiver capacity for the exchange protocol given
// the current global block count and rank count.
func (c *Config) maxBlocks(totalBlocks, ranks int) int {
	if c.MaxBlocksPerRank > 0 {
		return c.MaxBlocksPerRank
	}
	per := (totalBlocks + ranks - 1) / ranks
	return 4*per + 8
}
