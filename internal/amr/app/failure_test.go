package app

import (
	"strings"
	"testing"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
)

// TestChecksumToleranceViolationFails injects an impossible drift
// tolerance: with refinement interfaces present the stencil is not exactly
// conservative, so validation must fail and the failure must propagate out
// of every variant as an error (not a hang or a panic).
func TestChecksumToleranceViolationFails(t *testing.T) {
	for name, run := range variants {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.ChecksumTolerance = 1e-18
			cfg.ChecksumEvery = 1 // validate every stage to hit the drift early
			w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
			errs := make([]error, 2)
			_ = w.Run(func(c *mpi.Comm) {
				_, errs[c.Rank()] = run(cfg, c, nil)
				if errs[c.Rank()] != nil {
					// Unblock the peer, which may be waiting in a collective.
					panic(errs[c.Rank()])
				}
			})
			failed := false
			for _, err := range errs {
				if err != nil {
					failed = true
					if !strings.Contains(err.Error(), "checksum") {
						t.Errorf("error does not mention checksum: %v", err)
					}
				}
			}
			if !failed {
				t.Error("impossible tolerance did not fail validation")
			}
		})
	}
}

// TestDelayedChecksumValidatesAtDrain ensures the delayed validation mode
// settles its final pending checksum: the number of validated checksums
// must match the non-delayed mode.
func TestDelayedChecksumValidatesAtDrain(t *testing.T) {
	base := testConfig()
	plain := runVariant(t, base, 2, RunDataFlow, nil)
	if t.Failed() {
		return
	}
	delayed := base
	delayed.DelayedChecksum = true
	del := runVariant(t, delayed, 2, RunDataFlow, nil)
	if t.Failed() {
		return
	}
	if len(del[0].Checksums) != len(plain[0].Checksums) {
		t.Errorf("delayed mode validated %d checksums, plain %d",
			len(del[0].Checksums), len(plain[0].Checksums))
	}
}

// TestSingleRankRuns covers the degenerate one-rank cluster where every
// exchange is local.
func TestSingleRankRuns(t *testing.T) {
	for name, run := range variants {
		results := runVariant(t, testConfig(), 1, run, nil)
		if t.Failed() {
			return
		}
		if results[0].FinalBlocks == 0 {
			t.Errorf("%s: no blocks", name)
		}
	}
}

// TestManyRanksFewBlocks covers ranks that own nothing at times.
func TestManyRanksFewBlocks(t *testing.T) {
	cfg := testConfig()
	cfg.RootBlocks = [3]int{2, 1, 1} // 2 blocks, 5 ranks
	cfg.Objects = nil                // no refinement: some ranks stay empty
	results := runVariant(t, cfg, 5, RunDataFlow, nil)
	if t.Failed() {
		return
	}
	total := 0
	for _, r := range results {
		total += r.FinalBlocks
	}
	if total != 2 {
		t.Errorf("total blocks = %d, want 2", total)
	}
	if len(results[0].Checksums) == 0 {
		t.Error("no checksums validated with idle ranks present")
	}
}

// TestChecksumCadenceNotDividingStages covers a checksum interval that
// does not divide the stage count.
func TestChecksumCadenceNotDividingStages(t *testing.T) {
	cfg := testConfig()
	cfg.StagesPerTimestep = 5
	cfg.ChecksumEvery = 3
	results := runVariant(t, cfg, 2, RunMPIOnly, nil)
	if t.Failed() {
		return
	}
	// 4 timesteps x 5 stages = 20 stages; validations at multiples of 3.
	if want := 20 / 3; len(results[0].Checksums) != want {
		t.Errorf("checksums = %d, want %d", len(results[0].Checksums), want)
	}
}

// TestGrowingObject exercises the Inc/growth path through full runs.
func TestGrowingObject(t *testing.T) {
	cfg := testConfig()
	cfg.Objects[0].Inc = [3]float64{0.02, 0.02, 0.02}
	cfg.Objects[0].Bounce = true
	results := runVariant(t, cfg, 2, RunForkJoin, nil)
	if t.Failed() {
		return
	}
	if results[0].RefineEpochs == 0 {
		t.Error("growing object never changed the mesh")
	}
}

// TestUniformRefine drives the mesh to the maximum level everywhere and
// checks the block count: every root block becomes 8^MaxLevel leaves.
func TestUniformRefine(t *testing.T) {
	cfg := testConfig()
	cfg.UniformRefine = true
	cfg.MaxLevel = 1
	cfg.Timesteps = 2
	results := runVariant(t, cfg, 3, RunDataFlow, nil)
	if t.Failed() {
		return
	}
	total := 0
	for _, r := range results {
		total += r.FinalBlocks
	}
	if want := 4 * 8; total != want {
		t.Errorf("blocks = %d, want %d (fully refined)", total, want)
	}
}

// TestUniformMaxLevelZero covers a mesh that cannot refine at all.
func TestUniformMaxLevelZero(t *testing.T) {
	cfg := testConfig()
	cfg.MaxLevel = 0
	results := runVariant(t, cfg, 2, RunDataFlow, nil)
	if t.Failed() {
		return
	}
	total := 0
	for _, r := range results {
		total += r.FinalBlocks
	}
	if total != 4 {
		t.Errorf("blocks = %d, want the 4 root blocks", total)
	}
}
