package app

import (
	"fmt"
	"os"

	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/amr/snapshot"
)

// Checkpoint/restart support.
//
// When Config.CheckpointFile is set, every rank writes its snapshot at the
// end of the run; when Config.RestoreFile is set, the run resumes from the
// saved state instead of initialising a fresh mesh. A restored run
// continues bit-for-bit identically to an uninterrupted one: the snapshot
// carries the replicated mesh, the objects at their current positions, the
// rank's block data, and the loop counters (so checksum and refinement
// cadences continue in phase), and the initial refinement is skipped
// because the restored mesh already reflects the objects.

// checkpointPath expands a per-rank pattern ("ckpt-%d.bin").
func checkpointPath(pattern string, rank int) string {
	return fmt.Sprintf(pattern, rank)
}

// saveCheckpoint writes the rank's state after the run's final stage.
func (s *state) saveCheckpoint(step, stage int) error {
	st := &snapshot.State{
		Rank:    s.rank,
		Step:    step,
		Stage:   stage,
		Objects: s.objs,
		Blocks:  s.data,
	}
	for _, c := range s.msh.Leaves() {
		st.Leaves = append(st.Leaves, snapshot.Leaf{Coord: c, Owner: s.msh.Owner(c)})
	}
	path := checkpointPath(s.cfg.CheckpointFile, s.rank)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("app: checkpoint: %w", err)
	}
	defer f.Close()
	if err := snapshot.Write(f, st); err != nil {
		return err
	}
	return f.Close()
}

// restoreState rebuilds a rank's state from its snapshot file.
func (s *state) restoreState() error {
	path := checkpointPath(s.cfg.RestoreFile, s.rank)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("app: restore: %w", err)
	}
	defer f.Close()
	st, err := snapshot.Read(f)
	if err != nil {
		return err
	}
	if st.Rank != s.rank {
		return fmt.Errorf("app: restore: snapshot %s belongs to rank %d, not %d", path, st.Rank, s.rank)
	}
	owners := make(map[mesh.Coord]int, len(st.Leaves))
	for _, l := range st.Leaves {
		owners[l.Coord] = l.Owner
	}
	m, err := mesh.NewFromLeaves(mesh.Config{Root: s.cfg.RootBlocks, MaxLevel: s.cfg.MaxLevel}, owners)
	if err != nil {
		return err
	}
	// Sanity: every restored block must be a leaf this rank owns, and
	// every owned leaf must have data.
	for c := range st.Blocks {
		if !m.Has(c) || m.Owner(c) != s.rank {
			return fmt.Errorf("app: restore: block %v is not an owned leaf", c)
		}
		blk := st.Blocks[c]
		if blk.Size() != s.cfg.BlockSize || blk.Vars() != s.cfg.Vars {
			return fmt.Errorf("app: restore: block %v shape mismatches the configuration", c)
		}
	}
	for _, c := range m.Owned(s.rank) {
		if _, ok := st.Blocks[c]; !ok {
			return fmt.Errorf("app: restore: owned leaf %v has no data in the snapshot", c)
		}
	}
	if st.Step < 0 || st.Step > s.cfg.Timesteps {
		return fmt.Errorf("app: restore: snapshot at timestep %d outside [0,%d]", st.Step, s.cfg.Timesteps)
	}
	s.msh = m
	// Re-home the snapshot's blocks onto pooled arena storage so every
	// live block is arena-owned and the leak accounting (gets == puts
	// after a clean run) holds for restored runs too.
	s.data = make(map[mesh.Coord]*grid.Data, len(st.Blocks))
	for c, blk := range st.Blocks {
		d := s.newBlockData(c, false)
		dc, _ := d.Storage()
		bc, _ := blk.Storage()
		copy(dc, bc)
		s.data[c] = d
	}
	s.objs = st.Objects
	s.startStep = st.Step
	s.startStage = st.Stage
	s.restored = true
	return s.rebuildComm()
}
