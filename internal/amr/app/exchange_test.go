package app

import (
	"testing"

	"miniamr/internal/amr/mesh"
	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
)

// exchangeState builds a minimal two-rank state over a 2x2x2 root mesh
// (RCB gives each rank four blocks).
func exchangeState(t *testing.T, c *mpi.Comm, maxBlocks int) *state {
	t.Helper()
	cfg := testConfig()
	cfg.RootBlocks = [3]int{2, 2, 2}
	cfg.MaxBlocksPerRank = maxBlocks
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := newState(&cfg, c, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExchangeMultiRound forces the block exchange through multiple rounds:
// with four blocks per rank, capacity five, and two blocks crossing in each
// direction, only one block per direction fits per round.
func TestExchangeMultiRound(t *testing.T) {
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		s := exchangeState(t, c, 5)
		mine := s.owned()
		theirs := s.msh.Owned(1 - s.rank)
		if len(mine) != 4 || len(theirs) != 4 {
			t.Errorf("rank %d: unexpected partition %d/%d", s.rank, len(mine), len(theirs))
			panic("bad partition")
		}
		// Swap two blocks in each direction. Build the same deterministic
		// move list on both ranks.
		r0 := s.msh.Owned(0)
		r1 := s.msh.Owned(1)
		moves := []mesh.Move{
			{Block: r0[0], From: 0, To: 1},
			{Block: r0[1], From: 0, To: 1},
			{Block: r1[0], From: 1, To: 0},
			{Block: r1[1], From: 1, To: 0},
		}
		// Tag the original data so we can verify payload identity.
		sentinel := map[mesh.Coord]float64{}
		for _, mv := range moves {
			if mv.From == s.rank {
				v := float64(1000 + mv.Block.X*100 + mv.Block.Y*10 + mv.Block.Z)
				s.data[mv.Block].Set(0, 1, 1, 1, v)
			}
			sentinel[mv.Block] = float64(1000 + mv.Block.X*100 + mv.Block.Y*10 + mv.Block.Z)
		}
		if err := s.exchangeBlocks(moves, &syncMover{s: s}); err != nil {
			t.Errorf("rank %d: %v", s.rank, err)
			panic(err)
		}
		// Ownership updated consistently and data landed with content.
		for _, mv := range moves {
			if s.msh.Owner(mv.Block) != mv.To {
				t.Errorf("rank %d: %v owner = %d, want %d", s.rank, mv.Block, s.msh.Owner(mv.Block), mv.To)
			}
			if mv.To == s.rank {
				d, ok := s.data[mv.Block]
				if !ok {
					t.Errorf("rank %d: moved block %v missing", s.rank, mv.Block)
					continue
				}
				if got := d.At(0, 1, 1, 1); got != sentinel[mv.Block] {
					t.Errorf("rank %d: block %v payload %v, want %v", s.rank, mv.Block, got, sentinel[mv.Block])
				}
			}
			if mv.From == s.rank {
				if _, ok := s.data[mv.Block]; ok {
					t.Errorf("rank %d: sent block %v still present", s.rank, mv.Block)
				}
			}
		}
	})
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
}

// TestExchangeImpossibleCapacityFails verifies the stuck-exchange guard:
// a one-way flood into a full rank must error out rather than loop.
func TestExchangeImpossibleCapacityFails(t *testing.T) {
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		s := exchangeState(t, c, 4) // receiver already at capacity
		r0 := s.msh.Owned(0)
		moves := []mesh.Move{{Block: r0[0], From: 0, To: 1}}
		if err := s.exchangeBlocks(moves, &syncMover{s: s}); err == nil {
			t.Error("expected capacity failure, got success")
		}
	})
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
}

// TestExchangeEmptyMovesIsNoop covers the trivial path.
func TestExchangeEmptyMovesIsNoop(t *testing.T) {
	w := mpi.NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	err := w.Run(func(c *mpi.Comm) {
		s := exchangeState(t, c, 0)
		if err := s.exchangeBlocks(nil, &syncMover{s: s}); err != nil {
			t.Errorf("rank %d: %v", s.rank, err)
		}
	})
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
}
