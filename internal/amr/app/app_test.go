package app

import (
	"math"
	"os"
	"testing"

	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/object"
	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

// testConfig is a small but complete problem: a sphere moving through a
// 2x2x1 root mesh with two refinement levels, multiple variable groups,
// checksums and periodic refinement.
func testConfig() Config {
	return Config{
		RootBlocks:        [3]int{2, 2, 1},
		MaxLevel:          2,
		BlockSize:         grid.Size{X: 4, Y: 4, Z: 4},
		Vars:              4,
		CommVars:          2,
		Timesteps:         4,
		StagesPerTimestep: 4,
		ChecksumEvery:     4,
		RefineEvery:       2,
		Workers:           2,
		ValidateMesh:      true,
		Objects: []object.Object{{
			Type:   object.SpheroidSurface,
			Center: [3]float64{0.3, 0.35, 0.4},
			Size:   [3]float64{0.2, 0.2, 0.2},
			Move:   [3]float64{0.08, 0.04, 0.02},
		}},
	}
}

type variantFunc func(Config, *mpi.Comm, *trace.Recorder) (Result, error)

var variants = map[string]variantFunc{
	"mpionly":  RunMPIOnly,
	"forkjoin": RunForkJoin,
	"dataflow": RunDataFlow,
}

// runVariant executes a variant on a fresh world and returns per-rank
// results. With AMRSAN=1 in the environment every run is additionally
// executed under the runtime sanitizer and any finding fails the test.
func runVariant(t *testing.T, cfg Config, ranks int, run variantFunc, rec *trace.Recorder) []Result {
	t.Helper()
	w := mpi.NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
	var san *sanitize.Sanitizer
	if os.Getenv("AMRSAN") == "1" {
		san = sanitize.New(sanitize.Options{})
		san.Attach(w)
		cfg.Sanitizer = san
	}
	results := make([]Result, ranks)
	err := w.Run(func(c *mpi.Comm) {
		res, err := run(cfg, c, rec)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			panic(err) // unblock peers deterministically
		}
		results[c.Rank()] = res
	})
	if san != nil {
		for _, r := range san.Finish() {
			t.Errorf("sanitizer: %v", r)
		}
	}
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
	return results
}

func TestVariantsRunAndValidate(t *testing.T) {
	for name, run := range variants {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			results := runVariant(t, testConfig(), 3, run, nil)
			if t.Failed() {
				return
			}
			if len(results[0].Checksums) == 0 {
				t.Fatal("no checksums validated")
			}
			if results[0].RefineEpochs == 0 {
				t.Error("refinement never changed the mesh; the input should refine")
			}
			total := 0
			for _, r := range results {
				total += r.FinalBlocks
				if r.Flops == 0 {
					t.Error("a rank executed no stencil flops")
				}
			}
			if total < 4 {
				t.Errorf("final total blocks = %d", total)
			}
			// All ranks observed the same checksum sequence.
			for r := 1; r < len(results); r++ {
				if len(results[r].Checksums) != len(results[0].Checksums) {
					t.Fatalf("rank %d saw %d checksums, rank 0 saw %d",
						r, len(results[r].Checksums), len(results[0].Checksums))
				}
				for i := range results[0].Checksums {
					for v := range results[0].Checksums[i] {
						if results[r].Checksums[i][v] != results[0].Checksums[i][v] {
							t.Fatalf("rank %d checksum %d differs", r, i)
						}
					}
				}
			}
		})
	}
}

// checksumsOf flattens a result's checksum history.
func checksumsOf(results []Result) []float64 {
	var out []float64
	for _, ck := range results[0].Checksums {
		out = append(out, ck...)
	}
	return out
}

func TestCrossVariantBitIdenticalChecksums(t *testing.T) {
	// The paper's three variants compute the same numerics; with identical
	// rank counts the reproduction demands bit-identical checksums.
	cfg := testConfig()
	ref := checksumsOf(runVariant(t, cfg, 3, RunMPIOnly, nil))
	if t.Failed() {
		return
	}
	for name, run := range variants {
		got := checksumsOf(runVariant(t, cfg, 3, run, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d checksum values, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum value %d = %v, want bit-identical %v", name, i, got[i], ref[i])
			}
		}
	}
}

func TestDataFlowOptionVariantsAgree(t *testing.T) {
	base := testConfig()
	ref := checksumsOf(runVariant(t, base, 3, RunDataFlow, nil))
	if t.Failed() {
		return
	}
	mutants := map[string]func(*Config){
		"send-faces":           func(c *Config) { c.SendFaces = true },
		"send-faces-capped":    func(c *Config) { c.SendFaces = true; c.MaxCommTasks = 2 },
		"separate-buffers":     func(c *Config) { c.SeparateBuffers = true },
		"all-comm-options":     func(c *Config) { c.SendFaces = true; c.MaxCommTasks = 4; c.SeparateBuffers = true },
		"delayed-checksum":     func(c *Config) { c.DelayedChecksum = true },
		"no-immediate-succ":    func(c *Config) { c.DisableImmediateSuccessor = true },
		"single-worker":        func(c *Config) { c.Workers = 1 },
		"many-workers":         func(c *Config) { c.Workers = 4 },
		"one-group-per-var":    func(c *Config) { c.CommVars = 1 },
		"single-group":         func(c *Config) { c.CommVars = 0 },
		"tight-exchange-limit": func(c *Config) { c.MaxBlocksPerRank = 64 },
		"blocking-tampi":       func(c *Config) { c.BlockingTAMPI = true },
	}
	for name, mutate := range mutants {
		cfg := testConfig()
		mutate(&cfg)
		got := checksumsOf(runVariant(t, cfg, 3, RunDataFlow, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d checksum values, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum %d = %v, want %v", name, i, got[i], ref[i])
			}
		}
	}
}

func TestForkJoinScheduleVariantsAgree(t *testing.T) {
	base := testConfig()
	ref := checksumsOf(runVariant(t, base, 3, RunForkJoin, nil))
	if t.Failed() {
		return
	}
	cfg := testConfig()
	cfg.ForkJoinSchedule = "dynamic"
	got := checksumsOf(runVariant(t, cfg, 3, RunForkJoin, nil))
	if t.Failed() {
		return
	}
	if len(got) != len(ref) {
		t.Fatalf("dynamic schedule: %d values, want %d", len(got), len(ref))
	}
	for i := range ref {
		if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("dynamic schedule checksum %d differs", i)
		}
	}
	bad := testConfig()
	bad.ForkJoinSchedule = "guided"
	if err := bad.Validate(); err == nil {
		t.Error("unknown schedule accepted")
	}
}

func TestRankCountsAgreeWithinTolerance(t *testing.T) {
	// Different rank counts change reduction trees and partitions, so
	// sums may differ in the last bits but no further.
	cfg := testConfig()
	ref := checksumsOf(runVariant(t, cfg, 1, RunMPIOnly, nil))
	if t.Failed() {
		return
	}
	for _, ranks := range []int{2, 4, 5} {
		got := checksumsOf(runVariant(t, cfg, ranks, RunMPIOnly, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("ranks=%d: %d checksum values, want %d", ranks, len(got), len(ref))
		}
		for i := range ref {
			if rel := math.Abs(got[i]-ref[i]) / math.Max(math.Abs(ref[i]), 1e-12); rel > 1e-9 {
				t.Fatalf("ranks=%d: checksum %d relative error %g", ranks, i, rel)
			}
		}
	}
}

func TestRunWithNetworkModel(t *testing.T) {
	cfg := testConfig()
	cfg.Timesteps = 2
	w := mpi.NewWorld(cluster.MustNew(2, 2, 1), simnet.Default())
	err := w.Run(func(c *mpi.Comm) {
		if _, err := RunDataFlow(cfg, c, nil); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			panic(err)
		}
	})
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
}

func TestTraceRecordsAllPhases(t *testing.T) {
	rec := trace.NewRecorder()
	runVariant(t, testConfig(), 2, RunDataFlow, rec)
	if t.Failed() {
		return
	}
	byLabel := map[string]bool{}
	for _, e := range rec.Events() {
		byLabel[e.Label] = true
	}
	for _, want := range []string{"stencil", "pack", "unpack", "send-wait", "recv-wait", "local-copy", "cksum-local", "split"} {
		if !byLabel[want] {
			t.Errorf("trace missing %q events (got %v)", want, byLabel)
		}
	}
	st := trace.ComputeStats(rec.Events())
	if st.OverlapTime <= 0 {
		t.Error("data-flow run shows no computation/communication overlap")
	}
}

func TestDataFlowCountsTasks(t *testing.T) {
	results := runVariant(t, testConfig(), 2, RunDataFlow, nil)
	if t.Failed() {
		return
	}
	for r, res := range results {
		if res.TaskCount == 0 {
			t.Errorf("rank %d spawned no tasks", r)
		}
	}
	mres := runVariant(t, testConfig(), 2, RunMPIOnly, nil)
	if !t.Failed() && mres[0].TaskCount != 0 {
		t.Error("MPI-only should not report tasks")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RootBlocks[0] = 0 },
		func(c *Config) { c.BlockSize.X = 3 },
		func(c *Config) { c.Vars = 0 },
		func(c *Config) { c.CommVars = 99 },
		func(c *Config) { c.Timesteps = 0 },
		func(c *Config) { c.MaxLevel = -1 },
		func(c *Config) { c.ChecksumTolerance = -1 },
		func(c *Config) { c.MaxCommTasks = -1 },
		func(c *Config) { c.Objects = []object.Object{{Type: object.Type(99)}} },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if got := len(cfg.Groups()); got != 2 {
		t.Errorf("groups = %d, want 2", got)
	}
	cfg2 := testConfig()
	cfg2.Vars = 5
	cfg2.CommVars = 2
	if err := cfg2.Validate(); err != nil {
		t.Fatal(err)
	}
	gs := cfg2.Groups()
	if len(gs) != 3 || gs[2] != [2]int{4, 5} {
		t.Errorf("ragged groups = %v", gs)
	}
}

func TestNoRefineTime(t *testing.T) {
	r := Result{TotalTime: 10, RefineTime: 3}
	if r.NoRefineTime() != 7 {
		t.Error("NoRefineTime arithmetic")
	}
}

func TestStencil27CrossVariantIdentical(t *testing.T) {
	// The 27-point stencil (with locally synthesised edge/corner ghosts)
	// must also be bit-identical across the three variants.
	cfg := testConfig()
	cfg.Stencil = 27
	cfg.ChecksumTolerance = 0.2 // corner extrapolation conserves less tightly
	ref := checksumsOf(runVariant(t, cfg, 3, RunMPIOnly, nil))
	if t.Failed() {
		return
	}
	if len(ref) == 0 {
		t.Fatal("no checksums")
	}
	for name, run := range variants {
		got := checksumsOf(runVariant(t, cfg, 3, run, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum %d = %v, want %v", name, i, got[i], ref[i])
			}
		}
	}
}

func TestPartitionerAndNoLoadBalanceAgreeWithinTolerance(t *testing.T) {
	// Different block placements change per-rank summation grouping, so
	// checksums agree to rounding rather than bit-for-bit.
	base := testConfig()
	ref := checksumsOf(runVariant(t, base, 3, RunDataFlow, nil))
	if t.Failed() {
		return
	}
	for name, mutate := range map[string]func(*Config){
		"sfc-partitioner": func(c *Config) { c.Partitioner = "sfc" },
		"no-load-balance": func(c *Config) { c.DisableLoadBalance = true },
	} {
		cfg := testConfig()
		mutate(&cfg)
		got := checksumsOf(runVariant(t, cfg, 3, RunDataFlow, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d values, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if rel := math.Abs(got[i]-ref[i]) / math.Max(math.Abs(ref[i]), 1e-12); rel > 1e-9 {
				t.Fatalf("%s: checksum %d relative error %g", name, i, rel)
			}
		}
	}
}

func TestPartitionerValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Partitioner = "zoltan"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown partitioner accepted")
	}
	cfg = testConfig()
	if err := cfg.Validate(); err != nil || cfg.Partitioner != "rcb" {
		t.Errorf("default partitioner = %q, err %v", cfg.Partitioner, err)
	}
}

func TestStencilValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Stencil = 9
	if err := cfg.Validate(); err == nil {
		t.Error("Stencil=9 accepted")
	}
	cfg = testConfig()
	if err := cfg.Validate(); err != nil || cfg.Stencil != 7 {
		t.Errorf("default stencil = %d, err %v", cfg.Stencil, err)
	}
}

func TestStationaryObjectNoRefinement(t *testing.T) {
	// An object outside the domain never marks blocks: the mesh stays
	// uniform and refinement epochs report no change.
	cfg := testConfig()
	cfg.Objects = []object.Object{{
		Type:   object.SpheroidSurface,
		Center: [3]float64{5, 5, 5},
		Size:   [3]float64{0.1, 0.1, 0.1},
	}}
	results := runVariant(t, cfg, 2, RunMPIOnly, nil)
	if t.Failed() {
		return
	}
	if results[0].RefineEpochs != 0 {
		t.Errorf("refine epochs = %d, want 0", results[0].RefineEpochs)
	}
	if results[0].FinalBlocks+results[1].FinalBlocks != 4 {
		t.Errorf("block count changed without refinement")
	}
}
