package app

import (
	"fmt"
	"math"
	"testing"
)

// TestFullMatrix sweeps variants x stencils x partitioners and checks that
// within each (stencil, partitioner) cell the three variants agree
// bit-for-bit, and that across partitioners they agree to rounding. One
// table-driven net over the whole configuration surface.
func TestFullMatrix(t *testing.T) {
	const ranks = 2
	type cell struct {
		stencil     int
		partitioner string
	}
	cells := []cell{
		{7, "rcb"}, {7, "sfc"}, {27, "rcb"}, {27, "sfc"},
	}
	ref := map[int][]float64{} // per stencil, from the first partitioner
	for _, cl := range cells {
		cl := cl
		t.Run(fmt.Sprintf("stencil%d-%s", cl.stencil, cl.partitioner), func(t *testing.T) {
			var cellRef []float64
			for name, run := range variants {
				cfg := testConfig()
				cfg.Timesteps = 2
				cfg.Stencil = cl.stencil
				cfg.Partitioner = cl.partitioner
				cfg.ChecksumTolerance = 0.25
				got := checksumsOf(runVariant(t, cfg, ranks, run, nil))
				if t.Failed() {
					return
				}
				if len(got) == 0 {
					t.Fatalf("%s: no checksums", name)
				}
				if cellRef == nil {
					cellRef = got
					continue
				}
				if len(got) != len(cellRef) {
					t.Fatalf("%s: checksum count mismatch", name)
				}
				for i := range cellRef {
					if math.Float64bits(got[i]) != math.Float64bits(cellRef[i]) {
						t.Fatalf("%s: checksum %d differs within cell", name, i)
					}
				}
			}
			// Across partitioners of the same stencil: rounding-level.
			if prev, ok := ref[cl.stencil]; ok {
				for i := range prev {
					rel := math.Abs(cellRef[i]-prev[i]) / math.Max(math.Abs(prev[i]), 1e-12)
					if rel > 1e-9 {
						t.Fatalf("partitioner changed physics: checksum %d rel error %g", i, rel)
					}
				}
			} else {
				ref[cl.stencil] = cellRef
			}
		})
	}
}
