package app

import (
	"fmt"
	"time"

	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/driver"
	"miniamr/internal/mpi"
	"miniamr/internal/task"
	"miniamr/internal/trace"
)

// Dependency keys of the data-flow taskification. Dependencies are
// declared at the granularity the paper describes: a mesh block and its
// variable group (never individual faces), plus communication buffer
// sections.
type (
	// blockKey is a block's variable-group range. Block state persists
	// across timesteps, and graphlint matches it as one class so the
	// pack -> local-copy -> boundary -> unpack -> stencil -> checksum
	// chain is visible at the phase level.
	//
	//amr:region state
	blockKey struct {
		c mesh.Coord
		g int // group index
	}
	// sectKey is one transfer's section of a message buffer. dirKey is the
	// direction+1, or 0 when buffers are shared across directions
	// (reproducing the false dependencies that --separate_buffers removes).
	// Sections are per-stage: produced, consumed once, recycled.
	//
	//amr:region stage match=dirKey,send,idx
	sectKey struct {
		dirKey int
		peer   int
		msg    int
		send   bool
		idx    int
	}
	// slotKey is a per-block checksum accumulator slot; parity alternates
	// between consecutive checksum stages for the delayed validation
	// (class matching: the delayed flush reads the other parity).
	//
	//amr:region stage
	slotKey struct {
		c      mesh.Coord
		parity int
	}
	// xferKey orders the pack->send and recv->unpack pairs of the
	// refinement block exchange, keyed by the move's data tag.
	//
	//amr:region stage match=recv
	xferKey struct {
		tag  int
		recv bool
	}
)

// RunDataFlow executes the simulation with the paper's hybrid data-flow
// strategy: every phase is taskified, tasks connect through data
// dependencies, and MPI operations are issued from tasks through the
// task-aware MPI layer, overlapping phases without global barriers.
func RunDataFlow(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := newState(&cfg, c, rec, cfg.chunkCap())
	if err != nil {
		return Result{}, err
	}
	var obs task.Observer
	if cfg.TaskObserver != nil {
		obs = cfg.TaskObserver(c.Rank())
	}
	g, err := driver.NewGraphEngine(driver.GraphOptions{
		Comm:                      c,
		Recorder:                  rec,
		Workers:                   cfg.Workers,
		DisableImmediateSuccessor: cfg.DisableImmediateSuccessor,
		Sanitizer:                 cfg.Sanitizer,
		Observer:                  obs,
		ScratchLen:                scratchLen(&cfg),
	})
	if err != nil {
		return Result{}, err
	}
	d := &dataFlowDriver{s: s, g: g}
	res, err := runMain(s, d)
	if err != nil {
		return Result{}, err
	}
	res.TaskCount = g.SpawnCount()
	g.Close()
	s.close()
	return res, nil
}

type dataFlowDriver struct {
	s *state
	// g owns the task runtime, the task-aware MPI context, the per-worker
	// scratch buffers and the sanitizer/trace plumbing.
	g *driver.GraphEngine

	// Delayed-checksum state: two parities of per-block sum slots.
	parity     int
	slots      [2]map[mesh.Coord][]float64
	slotBlocks [2][]mesh.Coord
	pending    [2]bool
}

// dirKey folds the direction into buffer keys, or collapses all directions
// onto one key space when buffers are shared.
func (d *dataFlowDriver) dirKey(dir grid.Dir) int {
	if d.s.cfg.SeparateBuffers {
		return int(dir) + 1
	}
	return 0
}

// groupIndex converts a group's first variable to its index.
func (d *dataFlowDriver) groupIndex(g0 int) int { return g0 / d.s.cfg.CommVars }

// communicate taskifies the ghost exchange (the paper's Algorithm 3): a
// receive task per message binding the request, pack tasks per face, send
// tasks per message with multidependencies on the packed sections, local
// copy tasks, and unpack tasks fed by the receive's buffer sections.
//
//amr:graph driver=dataflow phase=communicate seq=1
//amr:par label=recv axis=msgs
//amr:par label=pack axis=segs
//amr:par label=send axis=msgs
//amr:par label=local-copy axis=locals
//amr:par label=boundary axis=bfaces
//amr:par label=unpack axis=msgs
func (d *dataFlowDriver) communicate(g0, g1 int) error {
	s := d.s
	gv := g1 - g0
	gi := d.groupIndex(g0)
	// Refinement may have rebuilt the exchange plans with recycled
	// storage; aliasing is only meaningful within one set of plans
	// (with the sanitizer off this is a nil check).
	d.g.ResetBindings()
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched := s.scheds[dir]
		dk := d.dirKey(dir)

		// Pending unpack work, spawned only after all pack tasks: packers
		// must depend solely on the previous stage's stencil, never on
		// this stage's arrivals, or two ranks exchanging faces would wait
		// on each other (Algorithm 3 orders the phases the same way).
		type unpackJob struct {
			tr  comm.Transfer
			sec []float64
			key sectKey
		}
		var unpacks []unpackJob

		// Receives: one task per incoming message; its completion is
		// bound to the MPI request, so unpackers run only once the
		// data arrived (the buffer must not be consumed in the task).
		for pi := range s.recvPlans[dir] {
			pl := &s.recvPlans[dir][pi]
			peer, mi, msg, tag := pl.peer, pl.mi, pl.msg, pl.tag
			buf := s.recvBufs[dir].Buf(pi)[:pl.cells*gv]
			secs := make([]any, len(msg))
			for i := range msg {
				secs[i] = sectKey{dirKey: dk, peer: peer, msg: mi, idx: i}
			}
			d.g.Spawn("recv", func(t *task.Task) {
				for _, k := range secs {
					d.g.NoteWrite(t, k) // the arriving message fills every section
				}
				if s.cfg.BlockingTAMPI {
					// TAMPI's blocking mode: the task pauses until the
					// message arrives, releasing its core meanwhile.
					start := time.Now()
					if _, err := d.g.X.Recv(t, buf, peer, tag); err != nil {
						panic(err)
					}
					s.rec.Record(s.rank, t.Worker(), "recv-wait", start, time.Now())
					return
				}
				req, err := s.comm.Irecv(buf, peer, tag)
				if err != nil {
					panic(err)
				}
				d.g.RecordInFlight(t, "recv-wait", req)
				d.g.X.Iwait(t, req)
			}, task.Out(secs...)...)

			off := 0
			for i, tr := range msg {
				sec := buf[off : off+tr.Len(gv)]
				off += tr.Len(gv)
				d.g.BindSection(secs[i], sec)
				unpacks = append(unpacks, unpackJob{tr: tr, sec: sec, key: secs[i].(sectKey)})
			}
		}

		// Sends: the message buffer is a fresh arena lease; pack tasks
		// per face write their section of it, one send task per message
		// depends on all the sections and transfers the lease to the
		// MPI layer (the receiving rank returns it to the arena). The
		// section keys — not the physical buffers — carry the paper's
		// buffer-reuse dependencies, so chaining behaviour is unchanged.
		for pi := range s.sendPlans[dir] {
			pl := &s.sendPlans[dir][pi]
			peer, mi, msg, tag := pl.peer, pl.mi, pl.msg, pl.tag
			lease := s.arena.LeaseFloat64(pl.cells * gv)
			buf := lease.Float64()
			secs := make([]any, len(msg))
			for i := range msg {
				secs[i] = sectKey{dirKey: dk, peer: peer, msg: mi, send: true, idx: i}
			}
			off := 0
			for i, tr := range msg {
				tr := tr
				sec := buf[off : off+tr.Len(gv)]
				off += tr.Len(gv)
				secKey := secs[i]
				d.g.Spawn("pack", func(t *task.Task) {
					d.g.NoteRead(t, blockKey{c: tr.Src, g: gi})
					d.g.NoteWrite(t, secKey)
					s.rec.Span(s.rank, t.Worker(), "pack", func() {
						comm.Pack(tr, s.data[tr.Src], g0, g1, sec)
					})
				}, task.Merge(
					task.In(blockKey{c: tr.Src, g: gi}),
					task.Out(secKey),
				)...)
			}
			d.g.Spawn("send", func(t *task.Task) {
				for _, k := range secs {
					d.g.NoteRead(t, k) // the send serialises every packed section
				}
				if s.cfg.BlockingTAMPI {
					start := time.Now()
					if err := d.g.X.SendOwned(t, lease, peer, tag); err != nil {
						panic(err)
					}
					s.rec.Record(s.rank, t.Worker(), "send-wait", start, time.Now())
					return
				}
				req, err := s.comm.IsendOwned(lease, peer, tag)
				if err != nil {
					panic(err)
				}
				d.g.RecordInFlight(t, "send-wait", req)
				d.g.X.Iwait(t, req)
			}, task.In(secs...)...)
		}

		// Intra-process exchanges: local copy tasks between neighbouring
		// blocks of this rank.
		for _, tr := range sched.Local {
			tr := tr
			d.g.Spawn("local-copy", func(t *task.Task) {
				d.g.NoteRead(t, blockKey{c: tr.Src, g: gi})
				d.g.NoteWrite(t, blockKey{c: tr.Recv, g: gi})
				s.rec.Span(s.rank, t.Worker(), "local-copy", func() {
					comm.ExecuteLocal(tr, s.data[tr.Src], s.data[tr.Recv], g0, g1, d.g.Scratch(t.Worker()))
				})
			}, task.Merge(
				task.In(blockKey{c: tr.Src, g: gi}),
				task.InOut(blockKey{c: tr.Recv, g: gi}),
			)...)
		}
		for _, bf := range sched.Boundary {
			bf := bf
			dir := dir
			d.g.Spawn("boundary", func(t *task.Task) {
				d.g.NoteWrite(t, blockKey{c: bf.Block, g: gi})
				s.data[bf.Block].ApplyDomainBoundary(dir, bf.Side, g0, g1)
			}, task.InOut(blockKey{c: bf.Block, g: gi})...)
		}

		// Unpackers: consume the receive's buffer sections into block
		// ghosts once the bound requests complete.
		for _, uj := range unpacks {
			tr, sec := uj.tr, uj.sec
			key := uj.key
			d.g.Spawn("unpack", func(t *task.Task) {
				d.g.NoteRead(t, key)
				d.g.NoteWrite(t, blockKey{c: tr.Recv, g: gi})
				s.rec.Span(s.rank, t.Worker(), "unpack", func() {
					comm.Unpack(tr, s.data[tr.Recv], g0, g1, sec)
				})
			}, task.Merge(
				task.In(uj.key),
				task.InOut(blockKey{c: tr.Recv, g: gi}),
			)...)
		}
	}
	return d.g.X.Err()
}

// stencil spawns one task per block, depending in-out on the block's
// variable group so it naturally follows the ghost fills.
//
//amr:graph driver=dataflow phase=stencil seq=2
//amr:par label=stencil axis=blocks
func (d *dataFlowDriver) stencil(g0, g1 int) error {
	s := d.s
	gi := d.groupIndex(g0)
	for _, bc := range s.owned() {
		bc := bc
		blk := s.data[bc]
		d.g.Spawn("stencil", func(t *task.Task) {
			d.g.NoteWrite(t, blockKey{c: bc, g: gi})
			s.rec.Span(s.rank, t.Worker(), "stencil", func() { s.runStencil(blk, g0, g1) })
		}, task.InOut(blockKey{c: bc, g: gi})...)
		s.flops += s.stencilFlops(blk, g0, g1)
	}
	return nil
}

// checksum spawns local-reduction tasks into the current parity's slots
// and validates either this stage (default) or the previous one
// (DelayedChecksum), so the barrier does not drain in-flight stages.
//
//amr:graph driver=dataflow phase=checksum seq=3
//amr:par label=cksum-local axis=blocks
func (d *dataFlowDriver) checksum() error {
	s := d.s
	par := d.parity
	d.parity ^= 1

	owned := s.owned()
	d.slots[par] = make(map[mesh.Coord][]float64, len(owned))
	d.slotBlocks[par] = owned
	groups := s.cfg.Groups()
	for _, bc := range owned {
		slot := s.arena.GetFloat64(s.cfg.Vars) // Checksum overwrites it
		d.slots[par][bc] = slot
		blk := s.data[bc]
		deps := make([]any, 0, len(groups))
		for gi := range groups {
			deps = append(deps, blockKey{c: bc, g: gi})
		}
		bc := bc
		d.g.Spawn("cksum-local", func(t *task.Task) {
			for _, dep := range deps {
				d.g.NoteRead(t, dep)
			}
			d.g.NoteWrite(t, slotKey{c: bc, parity: par})
			s.rec.Span(s.rank, t.Worker(), "cksum-local", func() {
				blk.Checksum(0, s.cfg.Vars, slot)
			})
		}, task.Merge(task.In(deps...), task.Out(slotKey{c: bc, parity: par}))...)
	}
	d.pending[par] = true

	if s.cfg.DelayedChecksum {
		// Validate the previous stage's sums; its tasks have almost
		// certainly completed, so this "taskwait with dependencies" lets
		// the current stage keep flowing.
		return d.flushChecksum(par ^ 1)
	}
	return d.flushChecksum(par)
}

// flushChecksum waits (with dependencies only) for one parity's local
// reductions and runs the global reduction and validation.
func (d *dataFlowDriver) flushChecksum(par int) error {
	if !d.pending[par] {
		return nil
	}
	d.pending[par] = false
	s := d.s
	blocks := d.slotBlocks[par]
	keys := make([]any, len(blocks))
	for i, bc := range blocks {
		keys[i] = slotKey{c: bc, parity: par}
	}
	d.g.WaitKeys(keys...)
	if err := d.g.X.Err(); err != nil {
		return err
	}
	local := s.combineBlockSums(blocks, d.slots[par])
	for _, bc := range blocks {
		s.arena.PutFloat64(d.slots[par][bc])
	}
	d.slots[par] = nil
	return s.reduceAndValidate(local)
}

// quiesce closes the parallelism (the explicit taskwait the paper keeps
// before refinement) and settles any pending delayed checksum.
func (d *dataFlowDriver) quiesce() error {
	d.g.Wait()
	if err := d.g.X.Err(); err != nil {
		return err
	}
	for par := 0; par < 2; par++ {
		if err := d.flushChecksum(par); err != nil {
			return err
		}
	}
	return nil
}

// refine runs the taskified refinement phase after draining in-flight
// work (quiesce is idempotent; the runner already calls it outside the
// refinement clock).
func (d *dataFlowDriver) refine(advance bool) (bool, error) {
	s := d.s
	if err := d.quiesce(); err != nil {
		return false, err
	}
	if advance {
		s.advanceObjects()
	}
	if s.cfg.SequentialRefinement {
		// Ablation: run the whole refinement phase serially, as before the
		// paper's Section IV-B taskification.
		return s.refineEpoch(s.sequentialRefineExec())
	}
	return s.refineEpoch(refineExec{
		splitOwned:       d.splitOwned,
		consolidateOwned: d.consolidateOwned,
		mover:            &taskMover{d: d},
	})
}

// splitOwned taskifies the block-splitting copies.
//
//amr:graph driver=dataflow phase=split seq=4
//amr:par label=split axis=splits
func (d *dataFlowDriver) splitOwned(refines []mesh.Coord) error {
	s := d.s
	children := make([][8]*grid.Data, len(refines))
	for i, bc := range refines {
		for o := 0; o < 8; o++ {
			children[i][o] = s.newBlockData(bc.Child(o), false)
		}
		parent := s.data[bc]
		ch := &children[i]
		d.g.Spawn("split", func(t *task.Task) {
			s.rec.Span(s.rank, t.Worker(), "split", func() { parent.SplitInto(ch) })
		})
	}
	d.g.Wait()
	for i, bc := range refines {
		s.releaseBlock(s.data[bc])
		delete(s.data, bc)
		for o := 0; o < 8; o++ {
			s.data[bc.Child(o)] = children[i][o]
		}
	}
	return nil
}

// consolidateOwned taskifies the coarsening copies.
//
//amr:graph driver=dataflow phase=consolidate seq=5
//amr:par label=consolidate axis=merges
func (d *dataFlowDriver) consolidateOwned(parents []mesh.Coord) error {
	s := d.s
	newParents := make([]*grid.Data, len(parents))
	for i, p := range parents {
		var ch [8]*grid.Data
		for o := 0; o < 8; o++ {
			c, ok := s.data[p.Child(o)]
			if !ok {
				return fmt.Errorf("app: consolidation of %v: child %d not local", p, o)
			}
			ch[o] = c
		}
		newParents[i] = s.newBlockData(p, false)
		parent := newParents[i]
		d.g.Spawn("consolidate", func(t *task.Task) {
			s.rec.Span(s.rank, t.Worker(), "consolidate", func() { parent.ConsolidateFrom(&ch) })
		})
	}
	d.g.Wait()
	for i, p := range parents {
		for o := 0; o < 8; o++ {
			s.releaseBlock(s.data[p.Child(o)])
			delete(s.data, p.Child(o))
		}
		s.data[p] = newParents[i]
	}
	return nil
}

// drain completes the run: wait out the graph and settle pending delayed
// checksums.
func (d *dataFlowDriver) drain() error {
	d.g.Wait()
	for par := 0; par < 2; par++ {
		if err := d.flushChecksum(par); err != nil {
			return err
		}
	}
	return d.g.X.Err()
}

// taskMover transfers whole blocks for the refinement exchange with
// taskified packing, TAMPI sends/receives and unpacking, while the control
// messages stay on the main goroutine (the paper's Section IV-B design).
type taskMover struct {
	d *dataFlowDriver
}

// sendBlock is anchored directly: the exchange protocol reaches it only
// through the blockMover interface, which static extraction cannot see
// through.
//
//amr:graph driver=dataflow phase=exchange-send seq=6
//amr:par label=exchange-pack axis=xfers
//amr:par label=exchange-send axis=xfers
func (m *taskMover) sendBlock(bc mesh.Coord, blk *grid.Data, to, tag int) {
	d := m.d
	s := d.s
	lease := s.arena.LeaseFloat64(blk.InteriorLen())
	key := xferKey{tag: tag}
	d.g.Spawn("exchange-pack", func(t *task.Task) {
		d.g.NoteWrite(t, key)
		s.rec.Span(s.rank, t.Worker(), "exchange-pack", func() { blk.PackInterior(lease.Float64()) })
	}, task.Out(key)...)
	d.g.Spawn("exchange-send", func(t *task.Task) {
		d.g.NoteRead(t, key)
		if err := d.g.X.IsendOwned(t, lease, to, tag); err != nil {
			panic(err)
		}
	}, task.In(key)...)
}

//amr:graph driver=dataflow phase=exchange-recv seq=7
//amr:par label=exchange-recv axis=xfers
//amr:par label=exchange-unpack axis=xfers
func (m *taskMover) recvBlock(bc mesh.Coord, from, tag int) *grid.Data {
	d := m.d
	s := d.s
	blk := s.newBlockData(bc, false)
	buf := s.arena.GetFloat64(blk.InteriorLen())
	key := xferKey{tag: tag, recv: true}
	d.g.Spawn("exchange-recv", func(t *task.Task) {
		d.g.NoteWrite(t, key)
		if err := d.g.X.Irecv(t, buf, from, tag); err != nil {
			panic(err)
		}
	}, task.Out(key)...)
	d.g.Spawn("exchange-unpack", func(t *task.Task) {
		d.g.NoteRead(t, key)
		s.rec.Span(s.rank, t.Worker(), "exchange-unpack", func() { blk.UnpackInterior(buf) })
		s.arena.PutFloat64(buf)
	}, task.In(key)...)
	return blk
}

func (m *taskMover) barrier() error {
	m.d.g.Wait()
	return m.d.g.X.Err()
}
