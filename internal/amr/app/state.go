package app

import (
	"fmt"
	"math"
	"time"

	"miniamr/internal/amr/balance"
	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/amr/object"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// state is the per-rank simulation state shared by all driver variants.
type state struct {
	cfg  *Config
	comm *mpi.Comm
	rank int
	rec  *trace.Recorder

	msh  *mesh.Mesh
	data map[mesh.Coord]*grid.Data
	objs []object.Object // replicated; advanced identically everywhere

	chunkCap int // message chunking mode of the running variant

	scheds   [3]*comm.Schedule
	sendBufs [3]map[int][][]float64 // dir -> peer -> message -> buffer
	recvBufs [3]map[int][][]float64

	prevSums    []float64 // last validated global sums, nil right after refinement
	checksums   [][]float64
	flops       int64
	refineTime  time.Duration
	refineCount int
	meshHistory []MeshStat

	// Restart bookkeeping: counters carried over from a restored
	// checkpoint; restored suppresses the initial refinement.
	startStep, startStage int
	restored              bool
}

// MeshStat is a snapshot of the mesh shape after a refinement epoch.
type MeshStat struct {
	// Blocks is the total leaf count.
	Blocks int
	// PerLevel is the leaf count per refinement level.
	PerLevel []int
}

// partition applies the configured load-balancing policy to a mesh.
func partition(cfg *Config, m *mesh.Mesh, ranks int) map[mesh.Coord]int {
	if cfg.Partitioner == "sfc" {
		return balance.Morton(m.Config(), m.Leaves(), ranks)
	}
	return balance.RCB(m.Config(), m.Leaves(), ranks)
}

// initValue is the deterministic initial condition: smooth in space so
// restriction/prolongation effects stay small, distinct per variable.
func initValue(v int, x, y, z float64) float64 {
	return float64(v%7+1)*0.1 + 0.5*x*(1-x) + 0.3*y + 0.2*z*z + 0.1*x*y
}

// newState builds the initial mesh, partitions it with RCB and fills the
// rank's blocks.
func newState(cfg *Config, c *mpi.Comm, rec *trace.Recorder, chunkCap int) (*state, error) {
	mcfg := mesh.Config{Root: cfg.RootBlocks, MaxLevel: cfg.MaxLevel}
	m, err := mesh.NewUniform(mcfg, func(mesh.Coord) int { return 0 })
	if err != nil {
		return nil, err
	}
	for bc, r := range partition(cfg, m, c.Size()) {
		m.SetOwner(bc, r)
	}
	s := &state{
		cfg:      cfg,
		comm:     c,
		rank:     c.Rank(),
		rec:      rec,
		msh:      m,
		data:     make(map[mesh.Coord]*grid.Data),
		objs:     append([]object.Object(nil), cfg.Objects...),
		chunkCap: chunkCap,
	}
	if cfg.RestoreFile != "" {
		if err := s.restoreState(); err != nil {
			return nil, err
		}
		return s, nil
	}
	for _, bc := range m.Owned(s.rank) {
		s.data[bc] = s.newBlockData(bc, true)
	}
	if err := s.rebuildComm(); err != nil {
		return nil, err
	}
	return s, nil
}

// newBlockData allocates a block's storage, optionally filling the initial
// condition.
func (s *state) newBlockData(bc mesh.Coord, fill bool) *grid.Data {
	d := grid.MustNewData(s.cfg.BlockSize, s.cfg.Vars)
	if fill {
		lo, _ := s.msh.Config().Bounds(bc)
		d.Fill(lo, s.msh.Config().CellWidth(bc, s.cfg.BlockSize), initValue)
	}
	return d
}

// rebuildComm recomputes exchange schedules and communication buffers,
// required after every mesh mutation.
func (s *state) rebuildComm() error {
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched, err := comm.BuildSchedule(s.msh, s.rank, dir, s.cfg.BlockSize)
		if err != nil {
			return err
		}
		s.scheds[dir] = sched
		s.sendBufs[dir] = map[int][][]float64{}
		s.recvBufs[dir] = map[int][][]float64{}
		for _, pe := range sched.Peers {
			for _, msg := range comm.Chunk(pe.Send, s.chunkCap) {
				s.sendBufs[dir][pe.Peer] = append(s.sendBufs[dir][pe.Peer],
					make([]float64, comm.MessageLen(msg, s.cfg.CommVars)))
			}
			for _, msg := range comm.Chunk(pe.Recv, s.chunkCap) {
				s.recvBufs[dir][pe.Peer] = append(s.recvBufs[dir][pe.Peer],
					make([]float64, comm.MessageLen(msg, s.cfg.CommVars)))
			}
		}
	}
	return nil
}

// owned returns the rank's blocks in deterministic order.
func (s *state) owned() []mesh.Coord { return s.msh.Owned(s.rank) }

// runStencil applies the configured stencil kernel to a block's variable
// group. The 27-point stencil first synthesises edge/corner ghosts from
// the face ghosts filled by the communication phase.
func (s *state) runStencil(d *grid.Data, g0, g1 int) {
	if s.cfg.Stencil == 27 {
		d.FillGhostEdges(g0, g1)
		d.Stencil27(g0, g1)
		return
	}
	d.Stencil7(g0, g1)
}

// stencilFlops returns the operation count of one stencil application.
func (s *state) stencilFlops(d *grid.Data, g0, g1 int) int64 {
	if s.cfg.Stencil == 27 {
		return d.Stencil27Flops(g0, g1)
	}
	return d.Stencil7Flops(g0, g1)
}

// computeMarks derives this rank's refinement marks from the objects:
// refine where an object marks the block, coarsen candidates elsewhere.
func (s *state) computeMarks() map[mesh.Coord]int8 {
	marks := make(map[mesh.Coord]int8)
	if s.cfg.UniformRefine {
		for _, bc := range s.owned() {
			marks[bc] = 1
		}
		return marks
	}
	for _, bc := range s.owned() {
		lo, hi := s.msh.Config().Bounds(bc)
		marked := false
		for i := range s.objs {
			if s.objs[i].MarksBlock(lo, hi) {
				marked = true
				break
			}
		}
		switch {
		case marked:
			marks[bc] = 1
		case bc.Level > 0:
			marks[bc] = -1
		default:
			marks[bc] = 0
		}
	}
	return marks
}

// gatherMarks exchanges local marks so that every rank holds the global
// mark map (an allgather of 5-int records per block).
func (s *state) gatherMarks(local map[mesh.Coord]int8) (map[mesh.Coord]int8, error) {
	enc := make([]int, 0, 5*len(local))
	for _, bc := range s.owned() {
		enc = append(enc, bc.Level, bc.X, bc.Y, bc.Z, int(local[bc]))
	}
	all, _, err := s.comm.AllgathervInt(enc)
	if err != nil {
		return nil, err
	}
	if len(all)%5 != 0 {
		return nil, fmt.Errorf("app: corrupt marks payload of %d ints", len(all))
	}
	global := make(map[mesh.Coord]int8, len(all)/5)
	for i := 0; i < len(all); i += 5 {
		bc := mesh.Coord{Level: all[i], X: all[i+1], Y: all[i+2], Z: all[i+3]}
		global[bc] = int8(all[i+4])
	}
	return global, nil
}

// advanceObjects moves every replicated object one refinement epoch.
func (s *state) advanceObjects() {
	for i := range s.objs {
		s.objs[i].Advance()
	}
}

// combineBlockSums folds per-block per-variable sums into global-order
// local sums: blocks are combined in coordinate order so the result is
// bit-deterministic regardless of which worker produced each block's sums.
func (s *state) combineBlockSums(blocks []mesh.Coord, perBlock map[mesh.Coord][]float64) []float64 {
	out := make([]float64, s.cfg.Vars)
	for _, bc := range blocks {
		sums := perBlock[bc]
		for v := range sums {
			out[v] += sums[v]
		}
	}
	return out
}

// reduceAndValidate completes a checksum: global reduction across ranks,
// then drift validation against the previous validated sums. Refinement
// resets the baseline because coarsening legitimately changes sums.
func (s *state) reduceAndValidate(local []float64) error {
	global, err := s.comm.AllreduceFloat64(local, mpi.Sum)
	if err != nil {
		return err
	}
	s.checksums = append(s.checksums, global)
	if s.prevSums != nil {
		for v := range global {
			ref := math.Abs(s.prevSums[v])
			if ref < 1e-12 {
				ref = 1e-12
			}
			if math.Abs(global[v]-s.prevSums[v]) > s.cfg.ChecksumTolerance*ref {
				return fmt.Errorf("app: checksum validation failed: variable %d drifted from %v to %v (tolerance %v)",
					v, s.prevSums[v], global[v], s.cfg.ChecksumTolerance)
			}
		}
	}
	s.prevSums = global
	return nil
}

// Result summarises one rank's run.
type Result struct {
	// TotalTime is the rank's wall-clock time for the whole run.
	TotalTime time.Duration
	// RefineTime is the wall-clock time spent in refinement phases
	// (including initial refinement, exchanges and load balancing).
	RefineTime time.Duration
	// Flops counts the stencil floating-point operations this rank
	// executed.
	Flops int64
	// Checksums holds every validated global checksum (identical on all
	// ranks); the cross-variant correctness oracle.
	Checksums [][]float64
	// FinalBlocks is the number of blocks the rank owns at the end.
	FinalBlocks int
	// RefineEpochs counts refinement phases that changed the mesh.
	RefineEpochs int
	// TaskCount is the number of tasks the data-flow variant spawned
	// (zero for the other variants).
	TaskCount int
	// Comm counts the rank's point-to-point sends (collectives included).
	Comm mpi.CommStats
	// MeshHistory snapshots the mesh after every refinement epoch
	// (identical on all ranks).
	MeshHistory []MeshStat
	// FinalMeshView is an ASCII slice of the final mesh, filled when
	// Config.RenderMesh is set.
	FinalMeshView string
}

// NoRefineTime is the time outside refinement phases, the paper's
// "No Refine" column.
func (r Result) NoRefineTime() time.Duration { return r.TotalTime - r.RefineTime }
