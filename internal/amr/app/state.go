package app

import (
	"fmt"
	"time"

	"miniamr/internal/amr/balance"
	"miniamr/internal/amr/comm"
	"miniamr/internal/amr/grid"
	"miniamr/internal/amr/mesh"
	"miniamr/internal/amr/object"
	"miniamr/internal/driver"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// state is the per-rank simulation state shared by all driver variants.
type state struct {
	cfg   *Config
	comm  *mpi.Comm
	rank  int
	rec   *trace.Recorder
	arena *membuf.Arena // the world's buffer arena; all scratch comes from it

	msh  *mesh.Mesh
	data map[mesh.Coord]*grid.Data
	objs []object.Object // replicated; advanced identically everywhere

	chunkCap int // message chunking mode of the running variant

	scheds [3]*comm.Schedule
	// sendPlans and recvPlans are the chunked ghost messages of each
	// direction, derived once per mesh epoch: the per-stage hot paths walk
	// them without re-planning (or allocating). recvBufs[dir].Buf(i) is
	// the pooled receive slab backing recvPlans[dir][i], stable across the
	// epoch. Send-side slabs are not retained: each message is packed into
	// a fresh arena lease whose ownership transfers to the MPI layer (the
	// receiver returns it). The plan tables keep miniAMR's historical
	// field names (the golden task graphs render them); new applications
	// use the equivalent driver.Plans cache.
	sendPlans [3][]commPlan
	recvPlans [3][]commPlan
	recvBufs  [3]driver.Slabs

	oracle      driver.Oracle // cross-variant checksum history + drift validation
	flops       int64
	refineTime  time.Duration
	refineCount int
	meshHistory []MeshStat

	// Restart bookkeeping: counters carried over from a restored
	// checkpoint; restored suppresses the initial refinement.
	startStep, startStage int
	restored              bool
}

// commPlan is one precomputed ghost message: its peer, message index
// within the peer pair, matching tag, transfer list, and payload length
// per ghost variable (message length for a group of gv variables is
// cells*gv, since transfer lengths are linear in the group width).
type commPlan struct {
	peer  int
	mi    int
	tag   int
	cells int
	msg   []comm.Transfer
}

// MeshStat is a snapshot of the mesh shape after a refinement epoch; the
// shared shape lives in the driver skeleton.
type MeshStat = driver.MeshStat

// partition applies the configured load-balancing policy to a mesh.
func partition(cfg *Config, m *mesh.Mesh, ranks int) map[mesh.Coord]int {
	if cfg.Partitioner == "sfc" {
		return balance.Morton(m.Config(), m.Leaves(), ranks)
	}
	return balance.RCB(m.Config(), m.Leaves(), ranks)
}

// initValue is the deterministic initial condition: smooth in space so
// restriction/prolongation effects stay small, distinct per variable.
func initValue(v int, x, y, z float64) float64 {
	return float64(v%7+1)*0.1 + 0.5*x*(1-x) + 0.3*y + 0.2*z*z + 0.1*x*y
}

// newState builds the initial mesh, partitions it with RCB and fills the
// rank's blocks.
func newState(cfg *Config, c *mpi.Comm, rec *trace.Recorder, chunkCap int) (*state, error) {
	mcfg := mesh.Config{Root: cfg.RootBlocks, MaxLevel: cfg.MaxLevel}
	m, err := mesh.NewUniform(mcfg, func(mesh.Coord) int { return 0 })
	if err != nil {
		return nil, err
	}
	for bc, r := range partition(cfg, m, c.Size()) {
		m.SetOwner(bc, r)
	}
	s := &state{
		cfg:      cfg,
		comm:     c,
		rank:     c.Rank(),
		rec:      rec,
		arena:    c.World().Arena(),
		msh:      m,
		data:     make(map[mesh.Coord]*grid.Data),
		objs:     append([]object.Object(nil), cfg.Objects...),
		chunkCap: chunkCap,
		oracle:   driver.Oracle{Tolerance: cfg.ChecksumTolerance},
	}
	for dir := range s.recvBufs {
		s.recvBufs[dir].Init(s.arena)
	}
	if cfg.RestoreFile != "" {
		if err := s.restoreState(); err != nil {
			return nil, err
		}
		return s, nil
	}
	for _, bc := range m.Owned(s.rank) {
		s.data[bc] = s.newBlockData(bc, true)
	}
	if err := s.rebuildComm(); err != nil {
		return nil, err
	}
	return s, nil
}

// newBlockData places a block's storage over pooled arena buffers,
// optionally filling the initial condition. The cell array is cleared (a
// pooled buffer arrives stale, and blocks must start zeroed exactly like
// the seed's fresh allocations); the stencil scratch is written before it
// is read, so its stale contents are harmless. releaseBlock returns the
// storage.
func (s *state) newBlockData(bc mesh.Coord, fill bool) *grid.Data {
	n := grid.StorageLen(s.cfg.BlockSize, s.cfg.Vars)
	cells := s.arena.GetFloat64(n)
	clear(cells)
	d := grid.MustNewDataFrom(s.cfg.BlockSize, s.cfg.Vars, cells, s.arena.GetFloat64(n))
	if fill {
		lo, _ := s.msh.Config().Bounds(bc)
		d.Fill(lo, s.msh.Config().CellWidth(bc, s.cfg.BlockSize), initValue)
	}
	return d
}

// releaseBlock returns a dead block's storage to the arena. The block
// must no longer be reachable.
func (s *state) releaseBlock(d *grid.Data) {
	cells, scratch := d.Storage()
	s.arena.PutFloat64(cells)
	s.arena.PutFloat64(scratch)
}

// rebuildComm recomputes exchange schedules, message plans and
// communication buffers, required after every mesh mutation.
func (s *state) rebuildComm() error {
	s.releaseRecvBufs()
	for dir := grid.DirX; dir <= grid.DirZ; dir++ {
		sched, err := comm.BuildSchedule(s.msh, s.rank, dir, s.cfg.BlockSize)
		if err != nil {
			return err
		}
		s.scheds[dir] = sched
		s.sendPlans[dir] = s.sendPlans[dir][:0]
		s.recvPlans[dir] = s.recvPlans[dir][:0]
		for _, pe := range sched.Peers {
			for mi, msg := range comm.Chunk(pe.Send, s.chunkCap) {
				s.sendPlans[dir] = append(s.sendPlans[dir], commPlan{
					peer: pe.Peer, mi: mi, tag: comm.Tag(dir, mi),
					cells: comm.MessageLen(msg, 1), msg: msg,
				})
			}
			for mi, msg := range comm.Chunk(pe.Recv, s.chunkCap) {
				pl := commPlan{
					peer: pe.Peer, mi: mi, tag: comm.Tag(dir, mi),
					cells: comm.MessageLen(msg, 1), msg: msg,
				}
				s.recvPlans[dir] = append(s.recvPlans[dir], pl)
				s.recvBufs[dir].Grab(pl.cells * s.cfg.CommVars)
			}
		}
	}
	return nil
}

// releaseRecvBufs returns the receive slabs to the arena. Callers must
// have drained all in-flight receives first; rebuildComm and close run
// only at quiesced points.
func (s *state) releaseRecvBufs() {
	for dir := range s.recvBufs {
		s.recvBufs[dir].ReleaseAll()
	}
}

// close returns every pooled buffer the state still holds — block storage
// and receive slabs — to the arena. It is called after a successful run;
// a failed run abandons its buffers (the job is over anyway, and in-flight
// operations may still reference them).
func (s *state) close() {
	for _, d := range s.data {
		s.releaseBlock(d)
	}
	s.data = nil
	s.releaseRecvBufs()
}

// owned returns the rank's blocks in deterministic order.
func (s *state) owned() []mesh.Coord { return s.msh.Owned(s.rank) }

// blockAt resolves an owned coordinate to its block data, the source/dst
// resolver for comm.PackMessage and comm.UnpackMessage.
func (s *state) blockAt(c mesh.Coord) *grid.Data { return s.data[c] }

// runStencil applies the configured stencil kernel to a block's variable
// group. The 27-point stencil first synthesises edge/corner ghosts from
// the face ghosts filled by the communication phase.
func (s *state) runStencil(d *grid.Data, g0, g1 int) {
	if s.cfg.Stencil == 27 {
		d.FillGhostEdges(g0, g1)
		d.Stencil27(g0, g1)
		return
	}
	d.Stencil7(g0, g1)
}

// stencilFlops returns the operation count of one stencil application.
func (s *state) stencilFlops(d *grid.Data, g0, g1 int) int64 {
	if s.cfg.Stencil == 27 {
		return d.Stencil27Flops(g0, g1)
	}
	return d.Stencil7Flops(g0, g1)
}

// computeMarks derives this rank's refinement marks from the objects:
// refine where an object marks the block, coarsen candidates elsewhere.
func (s *state) computeMarks() map[mesh.Coord]int8 {
	marks := make(map[mesh.Coord]int8)
	if s.cfg.UniformRefine {
		for _, bc := range s.owned() {
			marks[bc] = 1
		}
		return marks
	}
	for _, bc := range s.owned() {
		lo, hi := s.msh.Config().Bounds(bc)
		marked := false
		for i := range s.objs {
			if s.objs[i].MarksBlock(lo, hi) {
				marked = true
				break
			}
		}
		switch {
		case marked:
			marks[bc] = 1
		case bc.Level > 0:
			marks[bc] = -1
		default:
			marks[bc] = 0
		}
	}
	return marks
}

// gatherMarks exchanges local marks so that every rank holds the global
// mark map (an allgather of 5-int records per block).
func (s *state) gatherMarks(local map[mesh.Coord]int8) (map[mesh.Coord]int8, error) {
	enc := make([]int, 0, 5*len(local))
	for _, bc := range s.owned() {
		enc = append(enc, bc.Level, bc.X, bc.Y, bc.Z, int(local[bc]))
	}
	all, _, err := s.comm.AllgathervInt(enc)
	if err != nil {
		return nil, err
	}
	if len(all)%5 != 0 {
		return nil, fmt.Errorf("app: corrupt marks payload of %d ints", len(all))
	}
	global := make(map[mesh.Coord]int8, len(all)/5)
	for i := 0; i < len(all); i += 5 {
		bc := mesh.Coord{Level: all[i], X: all[i+1], Y: all[i+2], Z: all[i+3]}
		global[bc] = int8(all[i+4])
	}
	return global, nil
}

// advanceObjects moves every replicated object one refinement epoch.
func (s *state) advanceObjects() {
	for i := range s.objs {
		s.objs[i].Advance()
	}
}

// combineBlockSums folds per-block per-variable sums into global-order
// local sums: blocks are combined in coordinate order so the result is
// bit-deterministic regardless of which worker produced each block's sums.
// The result is a pooled buffer; reduceAndValidate takes ownership of it.
//
//amr:det
func (s *state) combineBlockSums(blocks []mesh.Coord, perBlock map[mesh.Coord][]float64) []float64 {
	return driver.CombineSums(s.arena, s.cfg.Vars, blocks, perBlock)
}

// reduceAndValidate completes a checksum: global reduction across ranks,
// then the oracle's drift validation against the previous validated sums.
// Refinement resets the oracle baseline because coarsening legitimately
// changes sums. It takes ownership of local (a pooled buffer from
// combineBlockSums) and returns it to the arena.
func (s *state) reduceAndValidate(local []float64) error {
	global, err := s.comm.AllreduceFloat64(local, mpi.Sum)
	s.arena.PutFloat64(local)
	if err != nil {
		return err
	}
	return s.oracle.Accept(global)
}

// Result summarises one rank's run; the shared shape lives in the driver
// skeleton so every application reports through the same type.
type Result = driver.Result
