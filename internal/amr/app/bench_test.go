package app

import (
	"testing"

	"miniamr/internal/cluster"
	"miniamr/internal/driver"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
)

// BenchmarkGhostExchange measures one full ghost-face exchange (all three
// directions, pack/send/recv/unpack plus local copies) over the test mesh
// with the reference MPI-only driver and no simulated network cost. The
// allocs/op figure tracks the message path's buffer traffic.
func BenchmarkGhostExchange(b *testing.B) { benchGhostExchange(b) }

// benchGhostExchange is the benchmark body, shared with the allocation
// baseline guard in alloc_guard_test.go.
func benchGhostExchange(b *testing.B) {
	b.ReportAllocs()
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	const ranks = 4
	w := mpi.NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *mpi.Comm) {
			s, err := newState(&cfg, c, nil, 1)
			if err != nil {
				panic(err)
			}
			d := &mpiOnlyDriver{s: s, eng: driver.NewSerialEngine(s.arena, scratchLen(&cfg))}
			for i := 0; i < b.N; i++ {
				if err := d.communicate(0, cfg.CommVars); err != nil {
					panic(err)
				}
			}
			d.eng.Close()
			s.close()
		})
	}()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// TestArenaLeakFree is the arena's property test over real workloads:
// after a full run of each variant — refinement, load balance, block
// exchange, checksums and all — every buffer taken from the world's arena
// must have been returned (Live == 0) and every lease fully released.
func TestArenaLeakFree(t *testing.T) {
	for name, run := range variants {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			w := mpi.NewWorld(cluster.MustNew(1, 3, 1), simnet.None())
			w.Arena().SetDebug(true) // any double Put panics at the fault
			err := w.Run(func(c *mpi.Comm) {
				if _, err := run(cfg, c, nil); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			st := w.Arena().Stats()
			if st.Live != 0 || st.LeasesLive != 0 {
				t.Fatalf("arena leak after %s run: %+v", name, st)
			}
			if st.Gets != st.Puts {
				t.Fatalf("unbalanced arena traffic after %s run: %+v", name, st)
			}
			if st.Gets == 0 {
				t.Fatalf("arena unused by %s run; the message path should pool", name)
			}
		})
	}
}
