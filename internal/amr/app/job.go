package app

import (
	"encoding/json"
	"fmt"

	"miniamr/internal/driver"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/trace"
)

// The decoder lets a multi-process child rebuild the job from the JSON
// the parent shipped (see driver.EncodeJob / DecodeJob).
func init() {
	driver.RegisterDecoder("miniamr", func(cfgJSON []byte) (driver.Job, error) {
		var cfg Config
		if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
			return nil, fmt.Errorf("app: decoding wire config: %w", err)
		}
		return Job(cfg), nil
	})
}

// Job packages a miniAMR configuration as a driver.Job, the
// application-agnostic unit the harness executes. The zero-variant
// dispatch lives here — the harness itself never names an application's
// entry points.
func Job(cfg Config) driver.Job { return job{cfg: cfg} }

type job struct{ cfg Config }

func (j job) App() string { return "miniamr" }

// Config exposes the configuration for wire encoding (driver.ConfigJob).
func (j job) Config() any { return j.cfg }

// Bind resolves a variant to its entry point with the harness-owned
// settings applied: workers overrides the per-rank core count and san,
// when non-nil, attaches the runtime sanitizer.
func (j job) Bind(v driver.Variant, workers int, san *sanitize.Sanitizer) (driver.Program, error) {
	cfg := j.cfg
	cfg.Workers = workers
	if san != nil {
		cfg.Sanitizer = san
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var run func(Config, *mpi.Comm, *trace.Recorder) (Result, error)
	switch v {
	case driver.MPIOnly:
		run = RunMPIOnly
	case driver.ForkJoin:
		run = RunForkJoin
	case driver.DataFlow:
		run = RunDataFlow
	default:
		return nil, fmt.Errorf("app: unknown variant %q (known: %v)", v, driver.Variants)
	}
	return func(c *mpi.Comm, rec *trace.Recorder) (driver.Result, error) {
		return run(cfg, c, rec)
	}, nil
}
