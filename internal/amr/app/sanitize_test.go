package app

import (
	"testing"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
)

// runSanitized executes one variant under the full sanitizer and returns
// the per-rank results plus the findings.
func runSanitized(t *testing.T, cfg Config, ranks int, run variantFunc) ([]Result, []sanitize.Report) {
	t.Helper()
	w := mpi.NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
	san := sanitize.New(sanitize.Options{})
	san.Attach(w)
	cfg.Sanitizer = san
	results := make([]Result, ranks)
	err := w.Run(func(c *mpi.Comm) {
		res, err := run(cfg, c, nil)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			panic(err)
		}
		results[c.Rank()] = res
	})
	reports := san.Finish()
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
	return results, reports
}

// TestSanitizedVariantsClean is the sanitizer's soundness check over the
// real drivers: a full sanitized run of every variant must report zero
// findings, and instrumenting the run must not perturb the numerics —
// all variants still produce bit-identical checksum histories.
func TestSanitizedVariantsClean(t *testing.T) {
	cfg := testConfig()
	var reference []float64
	for _, name := range []string{"mpionly", "forkjoin", "dataflow"} {
		run := variants[name]
		t.Run(name, func(t *testing.T) {
			results, reports := runSanitized(t, cfg, 3, run)
			for _, r := range reports {
				t.Errorf("unexpected finding: %v", r)
			}
			if t.Failed() {
				return
			}
			sums := checksumsOf(results)
			if reference == nil {
				reference = sums
				return
			}
			if len(sums) != len(reference) {
				t.Fatalf("checksum history length %d, want %d", len(sums), len(reference))
			}
			for i := range sums {
				if sums[i] != reference[i] {
					t.Fatalf("checksum %d = %v, want %v (sanitized variants must stay bit-identical)",
						i, sums[i], reference[i])
				}
			}
		})
	}
}

// TestSanitizedDataFlowOptions covers the data-flow configurations whose
// dependency structures differ most: per-face messages, separate buffers
// and delayed checksums, and blocking TAMPI operations.
func TestSanitizedDataFlowOptions(t *testing.T) {
	cases := map[string]func(*Config){
		"send-faces-separate": func(c *Config) {
			c.SendFaces = true
			c.SeparateBuffers = true
		},
		"delayed-checksum": func(c *Config) { c.DelayedChecksum = true },
		"blocking-tampi":   func(c *Config) { c.BlockingTAMPI = true },
	}
	for name, mutate := range cases {
		mutate := mutate
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			_, reports := runSanitized(t, cfg, 2, RunDataFlow)
			for _, r := range reports {
				t.Errorf("unexpected finding: %v", r)
			}
		})
	}
}
