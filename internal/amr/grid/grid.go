// Package grid implements the per-block cell storage and numerical kernels
// of the AMR application: ghost-face packing and unpacking (same-level and
// fine/coarse with restriction and prolongation), the 7-point stencil,
// per-block checksums, refinement splitting and coarsening consolidation.
//
// A block stores a fixed-size brick of interior cells surrounded by a
// one-cell ghost layer, with a configurable number of variables per cell.
// Following the data-structure change by Rico et al. that the paper adopts,
// all variables live in one contiguous array per block, variable-major, so
// a stencil over a variable group streams through contiguous memory.
package grid

import "fmt"

// Size is a block's interior cell extent per dimension. All extents must be
// positive and even: fine/coarse face transfers work on 2x2 cell groups.
type Size struct {
	X, Y, Z int
}

// Validate reports whether the size is usable.
func (s Size) Validate() error {
	for _, v := range []int{s.X, s.Y, s.Z} {
		if v <= 0 || v%2 != 0 {
			return fmt.Errorf("grid: block size %dx%dx%d invalid: extents must be positive and even", s.X, s.Y, s.Z)
		}
	}
	return nil
}

// Cells returns the number of interior cells.
func (s Size) Cells() int { return s.X * s.Y * s.Z }

// Dir identifies a face direction.
type Dir int

// Face directions, processed in this order by the communication phase.
const (
	DirX Dir = iota
	DirY
	DirZ
)

func (d Dir) String() string {
	switch d {
	case DirX:
		return "X"
	case DirY:
		return "Y"
	case DirZ:
		return "Z"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Side identifies the low or high face in a direction.
type Side int

// Sides of a block in a direction.
const (
	Low  Side = iota // the face at the minimum coordinate
	High             // the face at the maximum coordinate
)

func (s Side) String() string {
	if s == Low {
		return "low"
	}
	return "high"
}

// Opposite returns the other side.
func (s Side) Opposite() Side { return 1 - s }

// Data is one block's cell storage: vars x (X+2) x (Y+2) x (Z+2) float64
// values, variable-major with z innermost. Interior indices run 1..N per
// dimension; 0 and N+1 are the ghost layers.
type Data struct {
	size    Size
	vars    int
	sx, sy  int // padded extents X+2, Y+2
	sz      int // padded extent Z+2
	cells   []float64
	scratch []float64 // stencil target; lazily allocated
}

// NewData allocates zeroed storage for a block.
func NewData(size Size, vars int) (*Data, error) {
	if err := size.Validate(); err != nil {
		return nil, err
	}
	if vars <= 0 {
		return nil, fmt.Errorf("grid: vars must be positive, got %d", vars)
	}
	d := &Data{
		size: size,
		vars: vars,
		sx:   size.X + 2,
		sy:   size.Y + 2,
		sz:   size.Z + 2,
	}
	d.cells = make([]float64, vars*d.sx*d.sy*d.sz)
	// The stencil target is allocated eagerly: variable groups of one
	// block may be stencilled concurrently (they write disjoint regions),
	// so lazy initialisation here would race.
	d.scratch = make([]float64, len(d.cells))
	return d, nil
}

// MustNewData is NewData but panics on invalid arguments.
func MustNewData(size Size, vars int) *Data {
	d, err := NewData(size, vars)
	if err != nil {
		panic(err)
	}
	return d
}

// StorageLen returns the length of each of the two storage slices
// (cells and stencil scratch) a block of this shape needs.
func StorageLen(size Size, vars int) int {
	return vars * (size.X + 2) * (size.Y + 2) * (size.Z + 2)
}

// NewDataFrom builds a block over caller-provided storage — typically
// pooled buffers — instead of allocating. Both slices must have length
// StorageLen(size, vars). The caller is responsible for the contents of
// cells (a pooled buffer arrives stale; clear it if the block must start
// zeroed) and for returning both slices to their pool once the block is
// dead; Storage retrieves them.
func NewDataFrom(size Size, vars int, cells, scratch []float64) (*Data, error) {
	if err := size.Validate(); err != nil {
		return nil, err
	}
	if vars <= 0 {
		return nil, fmt.Errorf("grid: vars must be positive, got %d", vars)
	}
	want := StorageLen(size, vars)
	if len(cells) != want || len(scratch) != want {
		return nil, fmt.Errorf("grid: storage length %d/%d does not match block shape (want %d)", len(cells), len(scratch), want)
	}
	return &Data{
		size: size, vars: vars,
		sx: size.X + 2, sy: size.Y + 2, sz: size.Z + 2,
		cells: cells, scratch: scratch,
	}, nil
}

// MustNewDataFrom is NewDataFrom but panics on invalid arguments.
func MustNewDataFrom(size Size, vars int, cells, scratch []float64) *Data {
	d, err := NewDataFrom(size, vars, cells, scratch)
	if err != nil {
		panic(err)
	}
	return d
}

// Storage returns the block's two backing slices so an owner that placed
// the block over pooled buffers can return them. The block must not be
// used after its storage is reclaimed.
func (d *Data) Storage() (cells, scratch []float64) { return d.cells, d.scratch }

// Size returns the interior extent.
func (d *Data) Size() Size { return d.size }

// Vars returns the number of variables per cell.
func (d *Data) Vars() int { return d.vars }

// idx maps (variable, padded coordinates) to the flat index.
func (d *Data) idx(v, i, j, k int) int {
	return ((v*d.sx+i)*d.sy+j)*d.sz + k
}

// At returns the value of variable v at padded coordinates (i, j, k);
// interior cells are 1..N, ghosts 0 and N+1.
func (d *Data) At(v, i, j, k int) float64 { return d.cells[d.idx(v, i, j, k)] }

// Set stores a value at padded coordinates.
func (d *Data) Set(v, i, j, k int, x float64) { d.cells[d.idx(v, i, j, k)] = x }

// Fill sets every interior cell of every variable from f evaluated at the
// cell's physical center, given the block's physical origin (low corner)
// and per-dimension cell widths. Ghosts are left untouched.
func (d *Data) Fill(origin, cellWidth [3]float64, f func(v int, x, y, z float64) float64) {
	for v := 0; v < d.vars; v++ {
		for i := 1; i <= d.size.X; i++ {
			x := origin[0] + (float64(i)-0.5)*cellWidth[0]
			for j := 1; j <= d.size.Y; j++ {
				y := origin[1] + (float64(j)-0.5)*cellWidth[1]
				row := d.idx(v, i, j, 1)
				for k := 1; k <= d.size.Z; k++ {
					d.cells[row+k-1] = f(v, x, y, origin[2]+(float64(k)-0.5)*cellWidth[2])
				}
			}
		}
	}
}

// Clone returns a deep copy (scratch excluded).
func (d *Data) Clone() *Data {
	out := MustNewData(d.size, d.vars)
	copy(out.cells, d.cells)
	return out
}

// EqualInterior reports whether interior cells of all variables match
// exactly between two blocks of identical shape.
func (d *Data) EqualInterior(o *Data) bool {
	if d.size != o.size || d.vars != o.vars {
		return false
	}
	for v := 0; v < d.vars; v++ {
		for i := 1; i <= d.size.X; i++ {
			for j := 1; j <= d.size.Y; j++ {
				a := d.idx(v, i, j, 1)
				b := o.idx(v, i, j, 1)
				for k := 0; k < d.size.Z; k++ {
					if d.cells[a+k] != o.cells[b+k] {
						return false
					}
				}
			}
		}
	}
	return true
}

// faceDims returns the two in-plane extents (u, w) of a face in the given
// direction: the remaining dimensions in canonical order.
func (d *Data) faceDims(dir Dir) (int, int) {
	switch dir {
	case DirX:
		return d.size.Y, d.size.Z
	case DirY:
		return d.size.X, d.size.Z
	default:
		return d.size.X, d.size.Y
	}
}

// FaceCells returns the number of cells on a face in the given direction.
func (d *Data) FaceCells(dir Dir) int {
	u, w := d.faceDims(dir)
	return u * w
}

// FaceLen returns the buffer length for a same-level face transfer of the
// variable group [v0, v1).
func (d *Data) FaceLen(dir Dir, v0, v1 int) int { return (v1 - v0) * d.FaceCells(dir) }

// QuarterFaceLen returns the buffer length for a fine/coarse face transfer
// (both restricted fine faces and coarse quarter faces have this size).
func (d *Data) QuarterFaceLen(dir Dir, v0, v1 int) int {
	u, w := d.faceDims(dir)
	return (v1 - v0) * (u / 2) * (w / 2)
}

// planeIdx returns the flat index of the (u, w) in-plane coordinates on the
// plane at coordinate c in direction dir, for variable v. In-plane
// coordinates are padded (1..N).
func (d *Data) planeIdx(dir Dir, v, c, u, w int) int {
	switch dir {
	case DirX:
		return d.idx(v, c, u, w)
	case DirY:
		return d.idx(v, u, c, w)
	default:
		return d.idx(v, u, w, c)
	}
}

// boundaryPlane returns the interior plane coordinate of a face.
func (d *Data) boundaryPlane(dir Dir, side Side) int {
	if side == Low {
		return 1
	}
	switch dir {
	case DirX:
		return d.size.X
	case DirY:
		return d.size.Y
	default:
		return d.size.Z
	}
}

// ghostPlane returns the ghost plane coordinate of a face.
func (d *Data) ghostPlane(dir Dir, side Side) int {
	if side == Low {
		return 0
	}
	switch dir {
	case DirX:
		return d.size.X + 1
	case DirY:
		return d.size.Y + 1
	default:
		return d.size.Z + 1
	}
}
