package grid

import (
	"fmt"
	"testing"
)

func benchBlock(b *testing.B, edge, vars int) *Data {
	b.Helper()
	d := MustNewData(Size{X: edge, Y: edge, Z: edge}, vars)
	d.Fill([3]float64{0, 0, 0}, [3]float64{1 / float64(edge), 1 / float64(edge), 1 / float64(edge)},
		func(v int, x, y, z float64) float64 { return x + 2*y - z + float64(v)*0.1 })
	fillAllGhosts(d, 0, vars)
	return d
}

func BenchmarkStencil7(b *testing.B) {
	for _, edge := range []int{8, 12, 18} {
		b.Run(fmt.Sprintf("block=%d", edge), func(b *testing.B) {
			d := benchBlock(b, edge, 8)
			b.SetBytes(int64(8 * d.Size().Cells() * d.Vars()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Stencil7(0, 8)
			}
			b.ReportMetric(float64(d.Stencil7Flops(0, 8))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func BenchmarkStencil27(b *testing.B) {
	d := benchBlock(b, 12, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Stencil27(0, 8)
	}
	b.ReportMetric(float64(d.Stencil27Flops(0, 8))*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkPackFace(b *testing.B) {
	d := benchBlock(b, 12, 8)
	buf := make([]float64, d.FaceLen(DirX, 0, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PackFace(DirX, High, 0, 8, buf)
	}
}

func BenchmarkUnpackFace(b *testing.B) {
	d := benchBlock(b, 12, 8)
	buf := make([]float64, d.FaceLen(DirX, 0, 8))
	d.PackFace(DirX, High, 0, 8, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.UnpackFace(DirX, Low, 0, 8, buf)
	}
}

func BenchmarkCopyFaceTo(b *testing.B) {
	src := benchBlock(b, 12, 8)
	dst := MustNewData(Size{12, 12, 12}, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.CopyFaceTo(dst, DirY, High, 0, 8)
	}
}

func BenchmarkPackFaceRestrict(b *testing.B) {
	d := benchBlock(b, 12, 8)
	buf := make([]float64, d.QuarterFaceLen(DirZ, 0, 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PackFaceRestrict(DirZ, Low, 0, 8, buf)
	}
}

func BenchmarkSplitInto(b *testing.B) {
	parent := benchBlock(b, 12, 8)
	var children [8]*Data
	for o := range children {
		children[o] = MustNewData(Size{12, 12, 12}, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parent.SplitInto(&children)
	}
}

func BenchmarkConsolidateFrom(b *testing.B) {
	parent := MustNewData(Size{12, 12, 12}, 8)
	var children [8]*Data
	for o := range children {
		children[o] = benchBlock(b, 12, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parent.ConsolidateFrom(&children)
	}
}

func BenchmarkChecksum(b *testing.B) {
	d := benchBlock(b, 12, 8)
	out := make([]float64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Checksum(0, 8, out)
	}
}

func BenchmarkPackInterior(b *testing.B) {
	d := benchBlock(b, 12, 8)
	buf := make([]float64, d.InteriorLen())
	b.SetBytes(int64(8 * d.InteriorLen()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PackInterior(buf)
	}
}
