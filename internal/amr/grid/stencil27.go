package grid

// 27-point stencil support.
//
// The reference miniAMR offers a 27-point stencil besides the 7-point one.
// It consumes edge and corner ghost cells, which miniAMR obtains by
// exchanging faces direction-by-direction *including* the ghost rows
// filled by earlier directions. This reproduction exchanges interior faces
// only, so edge and corner ghosts are synthesised locally instead:
// each is the average of the adjacent face-ghost cells, which already hold
// real neighbour data. The approximation is deterministic and depends only
// on the block's own ghosts, so results stay identical across variants and
// rank counts; absolute values differ slightly from a full corner
// exchange (documented in DESIGN.md — the paper's experiments all use the
// 7-point stencil, where no such ghosts are needed).

// FillGhostEdges populates the edge and corner ghost cells of the variable
// group [v0, v1) from the face ghosts, which must have been filled by the
// communication phase (or boundary conditions) first.
func (d *Data) FillGhostEdges(v0, v1 int) {
	d.checkGroup(v0, v1)
	nx, ny, nz := d.size.X, d.size.Y, d.size.Z
	xs := [2]int{0, nx + 1}
	ys := [2]int{0, ny + 1}
	zs := [2]int{0, nz + 1}
	// inward returns the padded coordinate one step towards the interior.
	inward := func(c, max int) int {
		if c == 0 {
			return 1
		}
		return max
	}
	for v := v0; v < v1; v++ {
		// Edges along z: x and y both at ghost planes.
		for _, gi := range xs {
			ii := inward(gi, nx)
			for _, gj := range ys {
				jj := inward(gj, ny)
				for k := 1; k <= nz; k++ {
					d.cells[d.idx(v, gi, gj, k)] =
						0.5 * (d.cells[d.idx(v, ii, gj, k)] + d.cells[d.idx(v, gi, jj, k)])
				}
			}
		}
		// Edges along y: x and z at ghost planes.
		for _, gi := range xs {
			ii := inward(gi, nx)
			for _, gk := range zs {
				kk := inward(gk, nz)
				for j := 1; j <= ny; j++ {
					d.cells[d.idx(v, gi, j, gk)] =
						0.5 * (d.cells[d.idx(v, ii, j, gk)] + d.cells[d.idx(v, gi, j, kk)])
				}
			}
		}
		// Edges along x: y and z at ghost planes.
		for _, gj := range ys {
			jj := inward(gj, ny)
			for _, gk := range zs {
				kk := inward(gk, nz)
				for i := 1; i <= nx; i++ {
					d.cells[d.idx(v, i, gj, gk)] =
						0.5 * (d.cells[d.idx(v, i, jj, gk)] + d.cells[d.idx(v, i, gj, kk)])
				}
			}
		}
		// Corners: all three coordinates at ghost planes, averaged from the
		// three adjacent face ghosts.
		for _, gi := range xs {
			ii := inward(gi, nx)
			for _, gj := range ys {
				jj := inward(gj, ny)
				for _, gk := range zs {
					kk := inward(gk, nz)
					d.cells[d.idx(v, gi, gj, gk)] = (d.cells[d.idx(v, ii, gj, gk)] +
						d.cells[d.idx(v, gi, jj, gk)] +
						d.cells[d.idx(v, gi, gj, kk)]) / 3
				}
			}
		}
	}
}

// Stencil27 applies the 27-point stencil to the variable group [v0, v1):
// each interior cell becomes the average of the full 3x3x3 neighbourhood.
// Face ghosts must be current and edge/corner ghosts filled (see
// FillGhostEdges). The update is Jacobi-style.
func (d *Data) Stencil27(v0, v1 int) {
	d.checkGroup(v0, v1)
	const inv27 = 1.0 / 27.0
	sx, sy, sz := d.size.X, d.size.Y, d.size.Z
	sj := d.sz
	si := d.sy * d.sz
	for v := v0; v < v1; v++ {
		for i := 1; i <= sx; i++ {
			for j := 1; j <= sy; j++ {
				base := d.idx(v, i, j, 0)
				for k := 1; k <= sz; k++ {
					c := base + k
					var s float64
					for _, di := range [3]int{-si, 0, si} {
						for _, dj := range [3]int{-sj, 0, sj} {
							p := c + di + dj
							s += d.cells[p-1] + d.cells[p] + d.cells[p+1]
						}
					}
					d.scratch[c] = s * inv27
				}
			}
		}
	}
	for v := v0; v < v1; v++ {
		for i := 1; i <= sx; i++ {
			for j := 1; j <= sy; j++ {
				base := d.idx(v, i, j, 1)
				copy(d.cells[base:base+sz], d.scratch[base:base+sz])
			}
		}
	}
}

// Stencil27Flops returns the operation count of one Stencil27 call:
// 26 additions and one multiplication per cell.
func (d *Data) Stencil27Flops(v0, v1 int) int64 {
	return int64(v1-v0) * int64(d.size.Cells()) * 27
}
