package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand, size Size, vars int) *Data {
	d := MustNewData(size, vars)
	for i := range d.cells {
		d.cells[i] = rng.Float64()*2 - 1
	}
	return d
}

func TestSizeValidate(t *testing.T) {
	if err := (Size{4, 6, 2}).Validate(); err != nil {
		t.Errorf("valid size rejected: %v", err)
	}
	for _, s := range []Size{{0, 2, 2}, {3, 2, 2}, {2, -2, 2}, {2, 2, 5}} {
		if err := s.Validate(); err == nil {
			t.Errorf("size %+v accepted", s)
		}
	}
	if (Size{4, 6, 2}).Cells() != 48 {
		t.Error("Cells mismatch")
	}
}

func TestNewDataValidation(t *testing.T) {
	if _, err := NewData(Size{2, 2, 2}, 0); err == nil {
		t.Error("vars=0 accepted")
	}
	if _, err := NewData(Size{3, 2, 2}, 1); err == nil {
		t.Error("odd size accepted")
	}
	d := MustNewData(Size{4, 4, 4}, 3)
	if d.Vars() != 3 || d.Size() != (Size{4, 4, 4}) {
		t.Error("accessors mismatch")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	d := MustNewData(Size{2, 4, 6}, 2)
	d.Set(1, 2, 3, 4, 9.5)
	if d.At(1, 2, 3, 4) != 9.5 {
		t.Error("At/Set mismatch")
	}
	if d.At(0, 2, 3, 4) != 0 {
		t.Error("cross-variable aliasing")
	}
}

func TestFillEvaluatesCellCenters(t *testing.T) {
	d := MustNewData(Size{2, 2, 2}, 1)
	d.Fill([3]float64{0, 0, 0}, [3]float64{0.5, 0.5, 0.5}, func(v int, x, y, z float64) float64 {
		return x + 10*y + 100*z
	})
	// Cell (1,1,1) center = (0.25, 0.25, 0.25).
	want := 0.25 + 2.5 + 25
	if got := d.At(0, 1, 1, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("cell(1,1,1) = %v, want %v", got, want)
	}
	// Cell (2,1,1) center x = 0.75.
	want = 0.75 + 2.5 + 25
	if got := d.At(0, 2, 1, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("cell(2,1,1) = %v, want %v", got, want)
	}
	// Ghosts untouched.
	if d.At(0, 0, 1, 1) != 0 {
		t.Error("Fill wrote a ghost cell")
	}
}

func TestPackUnpackFaceRoundTripAllDirs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	size := Size{4, 6, 8}
	src := randBlock(rng, size, 3)
	for _, dir := range []Dir{DirX, DirY, DirZ} {
		for _, side := range []Side{Low, High} {
			dst := MustNewData(size, 3)
			buf := make([]float64, src.FaceLen(dir, 0, 3))
			if n := src.PackFace(dir, side, 0, 3, buf); n != len(buf) {
				t.Fatalf("%v/%v: packed %d, want %d", dir, side, n, len(buf))
			}
			// Unpack into the opposite side's ghost of dst (as a neighbour would).
			opp := side.Opposite()
			if n := dst.UnpackFace(dir, opp, 0, 3, buf); n != len(buf) {
				t.Fatalf("%v/%v: unpacked wrong count", dir, side)
			}
			// dst's ghost plane must equal src's boundary plane.
			u, w := src.faceDims(dir)
			cSrc := src.boundaryPlane(dir, side)
			cDst := dst.ghostPlane(dir, opp)
			for v := 0; v < 3; v++ {
				for iu := 1; iu <= u; iu++ {
					for iw := 1; iw <= w; iw++ {
						if dst.cells[dst.planeIdx(dir, v, cDst, iu, iw)] != src.cells[src.planeIdx(dir, v, cSrc, iu, iw)] {
							t.Fatalf("%v/%v: ghost mismatch at v=%d u=%d w=%d", dir, side, v, iu, iw)
						}
					}
				}
			}
		}
	}
}

func TestCopyFaceToMatchesPackUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	size := Size{4, 4, 4}
	for _, dir := range []Dir{DirX, DirY, DirZ} {
		for _, side := range []Side{Low, High} {
			src := randBlock(rng, size, 2)
			viaCopy := MustNewData(size, 2)
			viaBuf := MustNewData(size, 2)
			src.CopyFaceTo(viaCopy, dir, side, 0, 2)
			buf := make([]float64, src.FaceLen(dir, 0, 2))
			src.PackFace(dir, side, 0, 2, buf)
			viaBuf.UnpackFace(dir, side.Opposite(), 0, 2, buf)
			for i := range viaCopy.cells {
				if viaCopy.cells[i] != viaBuf.cells[i] {
					t.Fatalf("%v/%v: direct copy differs from pack/unpack", dir, side)
				}
			}
		}
	}
}

func TestVariableGroupIsolation(t *testing.T) {
	// Packing group [1,2) must not touch variables 0 or 2.
	rng := rand.New(rand.NewSource(3))
	src := randBlock(rng, Size{2, 2, 2}, 3)
	dst := MustNewData(Size{2, 2, 2}, 3)
	buf := make([]float64, src.FaceLen(DirX, 1, 2))
	src.PackFace(DirX, High, 1, 2, buf)
	dst.UnpackFace(DirX, Low, 1, 2, buf)
	if dst.At(1, 0, 1, 1) != src.At(1, 2, 1, 1) {
		t.Error("group variable not transferred")
	}
	if dst.At(0, 0, 1, 1) != 0 || dst.At(2, 0, 1, 1) != 0 {
		t.Error("out-of-group variable modified")
	}
}

func TestRestrictionAveragesQuartets(t *testing.T) {
	size := Size{4, 4, 4}
	fine := MustNewData(size, 1)
	// Boundary plane at i=4 (DirX High): value = j + 10k.
	for j := 1; j <= 4; j++ {
		for k := 1; k <= 4; k++ {
			fine.Set(0, 4, j, k, float64(j)+10*float64(k))
		}
	}
	buf := make([]float64, fine.QuarterFaceLen(DirX, 0, 1))
	if n := fine.PackFaceRestrict(DirX, High, 0, 1, buf); n != 4 {
		t.Fatalf("restricted count = %d, want 4", n)
	}
	// First entry: average of (j,k) in {1,2}x{1,2} = avg(j)+10*avg(k) = 1.5+15.
	if math.Abs(buf[0]-16.5) > 1e-12 {
		t.Errorf("buf[0] = %v, want 16.5", buf[0])
	}
	// Last entry: (j,k) in {3,4}x{3,4} = 3.5 + 35.
	if math.Abs(buf[3]-38.5) > 1e-12 {
		t.Errorf("buf[3] = %v, want 38.5", buf[3])
	}
}

func TestQuarterUnpackPlacesQuadrant(t *testing.T) {
	size := Size{4, 4, 4}
	coarse := MustNewData(size, 1)
	buf := []float64{1, 2, 3, 4} // 2x2 restricted values
	coarse.UnpackFaceQuarter(DirX, Low, 1, 0, 0, 1, buf)
	// Quadrant (qu=1, qw=0): u (j) offset by 2, w (k) not offset.
	if coarse.At(0, 0, 3, 1) != 1 || coarse.At(0, 0, 3, 2) != 2 ||
		coarse.At(0, 0, 4, 1) != 3 || coarse.At(0, 0, 4, 2) != 4 {
		t.Error("quadrant placement wrong")
	}
	if coarse.At(0, 0, 1, 1) != 0 {
		t.Error("wrote outside the quadrant")
	}
}

func TestQuarterPackProlongRoundTrip(t *testing.T) {
	// Coarse packs a quarter of its face; fine prolongs it: every 2x2 fine
	// ghost group must hold the coarse value.
	size := Size{4, 4, 4}
	coarse := MustNewData(size, 2)
	rng := rand.New(rand.NewSource(4))
	for v := 0; v < 2; v++ {
		for j := 1; j <= 4; j++ {
			for k := 1; k <= 4; k++ {
				coarse.Set(v, 4, j, k, rng.Float64())
			}
		}
	}
	fine := MustNewData(size, 2)
	buf := make([]float64, coarse.QuarterFaceLen(DirX, 0, 2))
	if n := coarse.PackFaceQuarter(DirX, High, 0, 1, 0, 2, buf); n != len(buf) {
		t.Fatalf("packed %d, want %d", n, len(buf))
	}
	if n := fine.UnpackFaceProlong(DirX, Low, 0, 2, buf); n != len(buf) {
		t.Fatal("prolong consumed wrong count")
	}
	// Fine ghost (v, 0, j, k) = coarse boundary (v, 4, qu*2 + (j+1)/2, qw*2 + (k+1)/2),
	// with qu=0, qw=1 selecting the k-upper quarter.
	for v := 0; v < 2; v++ {
		for j := 1; j <= 4; j++ {
			for k := 1; k <= 4; k++ {
				want := coarse.At(v, 4, (j+1)/2, 2+(k+1)/2)
				if got := fine.At(v, 0, j, k); got != want {
					t.Fatalf("fine ghost (%d,%d,%d) = %v, want %v", v, j, k, got, want)
				}
			}
		}
	}
}

func TestRestrictThenPlacementConsistency(t *testing.T) {
	// A constant fine face must restrict to the same constant.
	fine := MustNewData(Size{4, 4, 4}, 1)
	for j := 1; j <= 4; j++ {
		for k := 1; k <= 4; k++ {
			fine.Set(0, 1, j, k, 3.75)
		}
	}
	buf := make([]float64, fine.QuarterFaceLen(DirX, 0, 1))
	fine.PackFaceRestrict(DirX, Low, 0, 1, buf)
	for _, v := range buf {
		if v != 3.75 {
			t.Fatalf("restriction of constant face changed value: %v", v)
		}
	}
}

func TestApplyDomainBoundaryZeroGradient(t *testing.T) {
	d := MustNewData(Size{2, 2, 2}, 1)
	d.Set(0, 1, 1, 1, 5)
	d.Set(0, 1, 2, 2, 7)
	d.ApplyDomainBoundary(DirX, Low, 0, 1)
	if d.At(0, 0, 1, 1) != 5 || d.At(0, 0, 2, 2) != 7 {
		t.Error("zero-gradient ghost mismatch")
	}
}

func TestStencilConstantFieldInvariant(t *testing.T) {
	d := MustNewData(Size{4, 4, 4}, 2)
	d.Fill([3]float64{0, 0, 0}, [3]float64{0.25, 0.25, 0.25}, func(int, float64, float64, float64) float64 { return 2.5 })
	for _, dir := range []Dir{DirX, DirY, DirZ} {
		d.ApplyDomainBoundary(dir, Low, 0, 2)
		d.ApplyDomainBoundary(dir, High, 0, 2)
	}
	d.Stencil7(0, 2)
	for v := 0; v < 2; v++ {
		for i := 1; i <= 4; i++ {
			for j := 1; j <= 4; j++ {
				for k := 1; k <= 4; k++ {
					if got := d.At(v, i, j, k); math.Abs(got-2.5) > 1e-13 {
						t.Fatalf("constant field changed: cell(%d,%d,%d,%d)=%v", v, i, j, k, got)
					}
				}
			}
		}
	}
}

func TestStencilMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	size := Size{4, 6, 2}
	d := randBlock(rng, size, 2)
	ref := d.Clone()
	d.Stencil7(0, 2)
	for v := 0; v < 2; v++ {
		for i := 1; i <= size.X; i++ {
			for j := 1; j <= size.Y; j++ {
				for k := 1; k <= size.Z; k++ {
					want := (ref.At(v, i, j, k) +
						ref.At(v, i-1, j, k) + ref.At(v, i+1, j, k) +
						ref.At(v, i, j-1, k) + ref.At(v, i, j+1, k) +
						ref.At(v, i, j, k-1) + ref.At(v, i, j, k+1)) / 7
					if got := d.At(v, i, j, k); math.Abs(got-want) > 1e-15 {
						t.Fatalf("cell(%d,%d,%d,%d) = %v, want %v", v, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestStencilGroupLeavesOtherVarsAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randBlock(rng, Size{2, 2, 2}, 3)
	ref := d.Clone()
	d.Stencil7(1, 2)
	for _, v := range []int{0, 2} {
		for i := 1; i <= 2; i++ {
			for j := 1; j <= 2; j++ {
				for k := 1; k <= 2; k++ {
					if d.At(v, i, j, k) != ref.At(v, i, j, k) {
						t.Fatalf("variable %d changed by out-of-group stencil", v)
					}
				}
			}
		}
	}
}

func TestStencilFlops(t *testing.T) {
	d := MustNewData(Size{4, 4, 4}, 3)
	if got := d.Stencil7Flops(0, 3); got != 3*64*7 {
		t.Errorf("flops = %d, want %d", got, 3*64*7)
	}
}

func TestChecksumDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randBlock(rng, Size{4, 4, 4}, 2)
	a := make([]float64, 2)
	b := make([]float64, 2)
	d.Checksum(0, 2, a)
	d.Checksum(0, 2, b)
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("checksum not reproducible")
	}
	// Ghosts must not contribute.
	d.Set(0, 0, 1, 1, 1e9)
	d.Checksum(0, 2, b)
	if a[0] != b[0] {
		t.Error("ghost cell contributed to checksum")
	}
}

func TestSplitConsolidateIdentity(t *testing.T) {
	// Piecewise-constant refinement followed by averaging coarsening must
	// reproduce the original block exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := Size{4, 4, 4}
		parent := randBlock(rng, size, 2)
		orig := parent.Clone()
		var children [8]*Data
		for o := range children {
			children[o] = MustNewData(size, 2)
		}
		parent.SplitInto(&children)
		restored := MustNewData(size, 2)
		restored.ConsolidateFrom(&children)
		return restored.EqualInterior(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSplitOctantMapping(t *testing.T) {
	size := Size{2, 2, 2}
	parent := MustNewData(size, 1)
	// Give every parent cell a unique value keyed by coordinates.
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			for k := 1; k <= 2; k++ {
				parent.Set(0, i, j, k, float64(100*i+10*j+k))
			}
		}
	}
	var children [8]*Data
	for o := range children {
		children[o] = MustNewData(size, 1)
	}
	parent.SplitInto(&children)
	// Octant 0 covers parent cell (1,1,1): all its cells equal 111.
	for i := 1; i <= 2; i++ {
		for j := 1; j <= 2; j++ {
			for k := 1; k <= 2; k++ {
				if children[0].At(0, i, j, k) != 111 {
					t.Fatalf("octant 0 cell (%d,%d,%d) = %v", i, j, k, children[0].At(0, i, j, k))
				}
			}
		}
	}
	// Octant 7 (x=1,y=1,z=1) covers parent cell (2,2,2) = 222.
	if children[7].At(0, 1, 1, 1) != 222 {
		t.Errorf("octant 7 = %v, want 222", children[7].At(0, 1, 1, 1))
	}
	// Octant 1 (x=1) covers parent (2,1,1) = 211.
	if children[1].At(0, 2, 2, 2) != 211 {
		t.Errorf("octant 1 = %v, want 211", children[1].At(0, 2, 2, 2))
	}
}

func TestPackUnpackInteriorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randBlock(rng, Size{4, 6, 2}, 3)
	buf := make([]float64, d.InteriorLen())
	if n := d.PackInterior(buf); n != len(buf) {
		t.Fatalf("packed %d, want %d", n, len(buf))
	}
	restored := MustNewData(Size{4, 6, 2}, 3)
	if n := restored.UnpackInterior(buf); n != len(buf) {
		t.Fatal("unpacked wrong count")
	}
	if !restored.EqualInterior(d) {
		t.Error("interior round trip mismatch")
	}
}

func TestCloneAndEqualInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randBlock(rng, Size{2, 2, 2}, 1)
	c := d.Clone()
	if !c.EqualInterior(d) {
		t.Error("clone differs")
	}
	c.Set(0, 1, 1, 1, 1e9)
	if c.EqualInterior(d) {
		t.Error("EqualInterior missed a difference")
	}
	other := MustNewData(Size{2, 2, 4}, 1)
	if other.EqualInterior(d) {
		t.Error("EqualInterior across shapes")
	}
}

func TestInvalidGroupPanics(t *testing.T) {
	d := MustNewData(Size{2, 2, 2}, 2)
	for _, g := range [][2]int{{-1, 1}, {0, 3}, {1, 1}, {2, 1}} {
		g := g
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("group %v did not panic", g)
				}
			}()
			d.Checksum(g[0], g[1], make([]float64, 4))
		}()
	}
}

func TestFaceLenAndQuarterLen(t *testing.T) {
	d := MustNewData(Size{4, 6, 8}, 2)
	if d.FaceLen(DirX, 0, 2) != 2*6*8 {
		t.Error("FaceLen X")
	}
	if d.FaceLen(DirY, 0, 1) != 4*8 {
		t.Error("FaceLen Y")
	}
	if d.FaceLen(DirZ, 0, 2) != 2*4*6 {
		t.Error("FaceLen Z")
	}
	if d.QuarterFaceLen(DirX, 0, 2) != 2*3*4 {
		t.Error("QuarterFaceLen X")
	}
	if d.FaceCells(DirZ) != 24 {
		t.Error("FaceCells Z")
	}
}

func TestDirSideStrings(t *testing.T) {
	if DirX.String() != "X" || DirY.String() != "Y" || DirZ.String() != "Z" {
		t.Error("Dir strings")
	}
	if Low.String() != "low" || High.String() != "high" {
		t.Error("Side strings")
	}
	if Low.Opposite() != High || High.Opposite() != Low {
		t.Error("Opposite")
	}
}
