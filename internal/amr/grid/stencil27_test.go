package grid

import (
	"math"
	"math/rand"
	"testing"
)

// fillAllGhosts applies zero-gradient faces then synthesises edges/corners,
// giving a block whose full ghost shell is populated.
func fillAllGhosts(d *Data, v0, v1 int) {
	for _, dir := range []Dir{DirX, DirY, DirZ} {
		d.ApplyDomainBoundary(dir, Low, v0, v1)
		d.ApplyDomainBoundary(dir, High, v0, v1)
	}
	d.FillGhostEdges(v0, v1)
}

func TestFillGhostEdgesAverages(t *testing.T) {
	d := MustNewData(Size{2, 2, 2}, 1)
	// Give the two face ghosts adjacent to edge (0,0,k) known values.
	d.Set(0, 1, 0, 1, 4) // y-face ghost at x=1
	d.Set(0, 0, 1, 1, 8) // x-face ghost at y=1
	d.FillGhostEdges(0, 1)
	if got := d.At(0, 0, 0, 1); got != 6 {
		t.Errorf("edge ghost = %v, want 6 (average of 4 and 8)", got)
	}
}

func TestFillGhostEdgesCornerAverage(t *testing.T) {
	d := MustNewData(Size{2, 2, 2}, 1)
	// The corner (0,0,0) averages face ghosts (1,0,0), (0,1,0), (0,0,1) —
	// but those are themselves edge ghosts. Set the *face* ghosts feeding
	// the corner computation directly.
	d.Set(0, 1, 0, 0, 3)
	d.Set(0, 0, 1, 0, 6)
	d.Set(0, 0, 0, 1, 9)
	d.FillGhostEdges(0, 1)
	// FillGhostEdges overwrote (1,0,0) etc. first (they are edge ghosts);
	// recompute expectation from the state after edge filling.
	want := (d.At(0, 1, 0, 0) + d.At(0, 0, 1, 0) + d.At(0, 0, 0, 1)) / 3
	if got := d.At(0, 0, 0, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("corner ghost = %v, want %v", got, want)
	}
}

func TestFillGhostEdgesLeavesInteriorAndFaces(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := MustNewData(Size{4, 4, 4}, 2)
	for v := 0; v < 2; v++ {
		for i := 0; i <= 5; i++ {
			for j := 0; j <= 5; j++ {
				for k := 0; k <= 5; k++ {
					d.Set(v, i, j, k, rng.Float64())
				}
			}
		}
	}
	ref := d.Clone()
	// Clone drops ghost state; copy it wholesale by re-running on d only.
	d.FillGhostEdges(0, 2)
	// Interior untouched.
	if !d.EqualInterior(ref) {
		t.Error("FillGhostEdges modified interior cells")
	}
	// A face ghost (exactly one coordinate on a ghost plane) untouched.
	if d.At(0, 0, 2, 3) == 0 {
		t.Skip("unlucky zero")
	}
	dBefore := ref.At(0, 2, 3, 1)
	if d.At(0, 2, 3, 1) != dBefore {
		t.Error("face-adjacent interior value changed")
	}
}

func TestStencil27ConstantFieldInvariant(t *testing.T) {
	d := MustNewData(Size{4, 4, 4}, 2)
	d.Fill([3]float64{0, 0, 0}, [3]float64{0.25, 0.25, 0.25},
		func(int, float64, float64, float64) float64 { return 1.25 })
	fillAllGhosts(d, 0, 2)
	d.Stencil27(0, 2)
	for v := 0; v < 2; v++ {
		for i := 1; i <= 4; i++ {
			for j := 1; j <= 4; j++ {
				for k := 1; k <= 4; k++ {
					if got := d.At(v, i, j, k); math.Abs(got-1.25) > 1e-13 {
						t.Fatalf("constant field changed: %v", got)
					}
				}
			}
		}
	}
}

func TestStencil27MatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	size := Size{4, 2, 6}
	d := MustNewData(size, 2)
	// Populate everything, ghosts included.
	for v := 0; v < 2; v++ {
		for i := 0; i <= size.X+1; i++ {
			for j := 0; j <= size.Y+1; j++ {
				for k := 0; k <= size.Z+1; k++ {
					d.Set(v, i, j, k, rng.Float64())
				}
			}
		}
	}
	ref := MustNewData(size, 2)
	for v := 0; v < 2; v++ {
		for i := 0; i <= size.X+1; i++ {
			for j := 0; j <= size.Y+1; j++ {
				for k := 0; k <= size.Z+1; k++ {
					ref.Set(v, i, j, k, d.At(v, i, j, k))
				}
			}
		}
	}
	d.Stencil27(0, 2)
	for v := 0; v < 2; v++ {
		for i := 1; i <= size.X; i++ {
			for j := 1; j <= size.Y; j++ {
				for k := 1; k <= size.Z; k++ {
					var want float64
					for di := -1; di <= 1; di++ {
						for dj := -1; dj <= 1; dj++ {
							for dk := -1; dk <= 1; dk++ {
								want += ref.At(v, i+di, j+dj, k+dk)
							}
						}
					}
					want /= 27
					if got := d.At(v, i, j, k); math.Abs(got-want) > 1e-14 {
						t.Fatalf("cell(%d,%d,%d,%d) = %v, want %v", v, i, j, k, got, want)
					}
				}
			}
		}
	}
}

func TestStencil27GroupIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randBlock(rng, Size{2, 2, 2}, 3)
	ref := d.Clone()
	fillAllGhosts(d, 0, 3)
	d.Stencil27(1, 2)
	for _, v := range []int{0, 2} {
		for i := 1; i <= 2; i++ {
			for j := 1; j <= 2; j++ {
				for k := 1; k <= 2; k++ {
					if d.At(v, i, j, k) != ref.At(v, i, j, k) {
						t.Fatalf("variable %d changed by out-of-group 27-pt stencil", v)
					}
				}
			}
		}
	}
}

func TestStencil27Flops(t *testing.T) {
	d := MustNewData(Size{4, 4, 4}, 2)
	if got := d.Stencil27Flops(0, 2); got != 2*64*27 {
		t.Errorf("flops = %d, want %d", got, 2*64*27)
	}
}
