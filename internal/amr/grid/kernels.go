package grid

// Stencil7 applies the 7-point stencil to the variable group [v0, v1):
// each interior cell becomes the average of itself and its six face
// neighbours (which may be ghost cells at block boundaries). The update is
// Jacobi-style: all reads see the pre-update state.
func (d *Data) Stencil7(v0, v1 int) {
	d.checkGroup(v0, v1)
	const inv7 = 1.0 / 7.0
	sx, sy, sz := d.size.X, d.size.Y, d.size.Z
	strideJ := d.sz
	strideI := d.sy * d.sz
	for v := v0; v < v1; v++ {
		for i := 1; i <= sx; i++ {
			for j := 1; j <= sy; j++ {
				base := d.idx(v, i, j, 0)
				for k := 1; k <= sz; k++ {
					c := base + k
					d.scratch[c] = (d.cells[c] +
						d.cells[c-strideI] + d.cells[c+strideI] +
						d.cells[c-strideJ] + d.cells[c+strideJ] +
						d.cells[c-1] + d.cells[c+1]) * inv7
				}
			}
		}
	}
	// Copy the group's interior back; ghosts are stale until the next
	// communication phase, as in the reference implementation.
	for v := v0; v < v1; v++ {
		for i := 1; i <= sx; i++ {
			for j := 1; j <= sy; j++ {
				base := d.idx(v, i, j, 1)
				copy(d.cells[base:base+sz], d.scratch[base:base+sz])
			}
		}
	}
}

// Stencil7Flops returns the floating-point operation count of one Stencil7
// call over the group [v0, v1): six additions and one multiplication per
// cell, matching how the reference mini-app accounts throughput.
func (d *Data) Stencil7Flops(v0, v1 int) int64 {
	return int64(v1-v0) * int64(d.size.Cells()) * 7
}

// Checksum accumulates the sum of all interior cells per variable of the
// group [v0, v1) into out[0:v1-v0]. Summation order is fixed (x, y, z
// ascending), so results are bit-reproducible for identical block content.
func (d *Data) Checksum(v0, v1 int, out []float64) {
	d.checkGroup(v0, v1)
	for v := v0; v < v1; v++ {
		var s float64
		for i := 1; i <= d.size.X; i++ {
			for j := 1; j <= d.size.Y; j++ {
				base := d.idx(v, i, j, 1)
				for k := 0; k < d.size.Z; k++ {
					s += d.cells[base+k]
				}
			}
		}
		out[v-v0] = s
	}
}

// SplitInto refines this block into eight children, one per octant.
// children[o] receives the octant with bits (x=o&1, y=o>>1&1, z=o>>2&1):
// each parent cell is replicated into the 2x2x2 fine cells it covers.
// All children must have the block's shape.
func (d *Data) SplitInto(children *[8]*Data) {
	for o := 0; o < 8; o++ {
		c := children[o]
		if c == nil || c.size != d.size || c.vars != d.vars {
			panic("grid: SplitInto child shape mismatch")
		}
		ox, oy, oz := o&1, (o>>1)&1, (o>>2)&1
		baseI := ox * d.size.X / 2
		baseJ := oy * d.size.Y / 2
		baseK := oz * d.size.Z / 2
		for v := 0; v < d.vars; v++ {
			for i := 1; i <= d.size.X; i++ {
				pi := baseI + (i+1)/2
				for j := 1; j <= d.size.Y; j++ {
					pj := baseJ + (j+1)/2
					for k := 1; k <= d.size.Z; k++ {
						pk := baseK + (k+1)/2
						c.cells[c.idx(v, i, j, k)] = d.cells[d.idx(v, pi, pj, pk)]
					}
				}
			}
		}
	}
}

// ConsolidateFrom coarsens eight children back into this block: each
// parent cell becomes the average of the 2x2x2 fine cells covering it.
// Octant numbering matches SplitInto.
func (d *Data) ConsolidateFrom(children *[8]*Data) {
	for o := 0; o < 8; o++ {
		c := children[o]
		if c == nil || c.size != d.size || c.vars != d.vars {
			panic("grid: ConsolidateFrom child shape mismatch")
		}
		ox, oy, oz := o&1, (o>>1)&1, (o>>2)&1
		baseI := ox * d.size.X / 2
		baseJ := oy * d.size.Y / 2
		baseK := oz * d.size.Z / 2
		for v := 0; v < d.vars; v++ {
			for ci := 1; ci <= d.size.X; ci += 2 {
				pi := baseI + (ci+1)/2
				for cj := 1; cj <= d.size.Y; cj += 2 {
					pj := baseJ + (cj+1)/2
					for ck := 1; ck <= d.size.Z; ck += 2 {
						pk := baseK + (ck+1)/2
						// Balanced pairwise summation keeps the average of
						// eight equal values exact, so a split followed by a
						// consolidation reproduces the parent bit-for-bit.
						s := ((c.cells[c.idx(v, ci, cj, ck)] + c.cells[c.idx(v, ci+1, cj, ck)]) +
							(c.cells[c.idx(v, ci, cj+1, ck)] + c.cells[c.idx(v, ci+1, cj+1, ck)])) +
							((c.cells[c.idx(v, ci, cj, ck+1)] + c.cells[c.idx(v, ci+1, cj, ck+1)]) +
								(c.cells[c.idx(v, ci, cj+1, ck+1)] + c.cells[c.idx(v, ci+1, cj+1, ck+1)]))
						d.cells[d.idx(v, pi, pj, pk)] = s * 0.125
					}
				}
			}
		}
	}
}

// InteriorLen returns the length of a full-block interior serialisation.
func (d *Data) InteriorLen() int { return d.vars * d.size.Cells() }

// PackInterior serialises all interior cells of all variables into buf
// (for load-balancing block moves) and returns the count written.
func (d *Data) PackInterior(buf []float64) int {
	n := 0
	for v := 0; v < d.vars; v++ {
		for i := 1; i <= d.size.X; i++ {
			for j := 1; j <= d.size.Y; j++ {
				base := d.idx(v, i, j, 1)
				copy(buf[n:n+d.size.Z], d.cells[base:base+d.size.Z])
				n += d.size.Z
			}
		}
	}
	return n
}

// UnpackInterior deserialises a PackInterior payload.
func (d *Data) UnpackInterior(buf []float64) int {
	n := 0
	for v := 0; v < d.vars; v++ {
		for i := 1; i <= d.size.X; i++ {
			for j := 1; j <= d.size.Y; j++ {
				base := d.idx(v, i, j, 1)
				copy(d.cells[base:base+d.size.Z], buf[n:n+d.size.Z])
				n += d.size.Z
			}
		}
	}
	return n
}
