package grid

import "fmt"

// PackFace copies the boundary face of the variable group [v0, v1) into
// buf for a same-level exchange and returns the number of values written.
// buf must have at least FaceLen(dir, v0, v1) capacity.
func (d *Data) PackFace(dir Dir, side Side, v0, v1 int, buf []float64) int {
	d.checkGroup(v0, v1)
	u, w := d.faceDims(dir)
	c := d.boundaryPlane(dir, side)
	n := 0
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u; iu++ {
			for iw := 1; iw <= w; iw++ {
				buf[n] = d.cells[d.planeIdx(dir, v, c, iu, iw)]
				n++
			}
		}
	}
	return n
}

// UnpackFace copies a same-level face from buf into the ghost plane of the
// given side and returns the number of values consumed.
func (d *Data) UnpackFace(dir Dir, side Side, v0, v1 int, buf []float64) int {
	d.checkGroup(v0, v1)
	u, w := d.faceDims(dir)
	c := d.ghostPlane(dir, side)
	n := 0
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u; iu++ {
			for iw := 1; iw <= w; iw++ {
				d.cells[d.planeIdx(dir, v, c, iu, iw)] = buf[n]
				n++
			}
		}
	}
	return n
}

// CopyFaceTo performs the intra-process same-level exchange: it copies this
// block's boundary face on srcSide directly into dst's opposite ghost
// plane, without an intermediate buffer. Both blocks must have identical
// shape.
func (d *Data) CopyFaceTo(dst *Data, dir Dir, srcSide Side, v0, v1 int) {
	if d.size != dst.size || d.vars != dst.vars {
		panic("grid: CopyFaceTo between mismatched blocks")
	}
	d.checkGroup(v0, v1)
	u, w := d.faceDims(dir)
	cSrc := d.boundaryPlane(dir, srcSide)
	cDst := dst.ghostPlane(dir, srcSide.Opposite())
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u; iu++ {
			for iw := 1; iw <= w; iw++ {
				dst.cells[dst.planeIdx(dir, v, cDst, iu, iw)] = d.cells[d.planeIdx(dir, v, cSrc, iu, iw)]
			}
		}
	}
}

// PackFaceRestrict packs this (fine) block's boundary face restricted for a
// coarser neighbour: each 2x2 group of fine face cells is averaged into one
// value. The result has QuarterFaceLen values.
func (d *Data) PackFaceRestrict(dir Dir, side Side, v0, v1 int, buf []float64) int {
	d.checkGroup(v0, v1)
	u, w := d.faceDims(dir)
	c := d.boundaryPlane(dir, side)
	n := 0
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u; iu += 2 {
			for iw := 1; iw <= w; iw += 2 {
				s := d.cells[d.planeIdx(dir, v, c, iu, iw)] +
					d.cells[d.planeIdx(dir, v, c, iu+1, iw)] +
					d.cells[d.planeIdx(dir, v, c, iu, iw+1)] +
					d.cells[d.planeIdx(dir, v, c, iu+1, iw+1)]
				buf[n] = s * 0.25
				n++
			}
		}
	}
	return n
}

// UnpackFaceQuarter stores a restricted face received from a finer
// neighbour into the (qu, qw) quarter of this (coarse) block's ghost plane.
// qu and qw select the half along each in-plane dimension (0 or 1).
func (d *Data) UnpackFaceQuarter(dir Dir, side Side, qu, qw, v0, v1 int, buf []float64) int {
	d.checkGroup(v0, v1)
	checkQuadrant(qu, qw)
	u, w := d.faceDims(dir)
	c := d.ghostPlane(dir, side)
	n := 0
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u/2; iu++ {
			for iw := 1; iw <= w/2; iw++ {
				d.cells[d.planeIdx(dir, v, c, qu*u/2+iu, qw*w/2+iw)] = buf[n]
				n++
			}
		}
	}
	return n
}

// PackFaceQuarter packs the (qu, qw) quarter of this (coarse) block's
// boundary face for a finer neighbour covering that quarter.
func (d *Data) PackFaceQuarter(dir Dir, side Side, qu, qw, v0, v1 int, buf []float64) int {
	d.checkGroup(v0, v1)
	checkQuadrant(qu, qw)
	u, w := d.faceDims(dir)
	c := d.boundaryPlane(dir, side)
	n := 0
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u/2; iu++ {
			for iw := 1; iw <= w/2; iw++ {
				buf[n] = d.cells[d.planeIdx(dir, v, c, qu*u/2+iu, qw*w/2+iw)]
				n++
			}
		}
	}
	return n
}

// UnpackFaceProlong stores a coarse quarter-face received from a coarser
// neighbour into this (fine) block's ghost plane, replicating each coarse
// value onto the 2x2 fine ghost cells it covers (piecewise-constant
// prolongation).
func (d *Data) UnpackFaceProlong(dir Dir, side Side, v0, v1 int, buf []float64) int {
	d.checkGroup(v0, v1)
	u, w := d.faceDims(dir)
	c := d.ghostPlane(dir, side)
	n := 0
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u; iu += 2 {
			for iw := 1; iw <= w; iw += 2 {
				x := buf[n]
				n++
				d.cells[d.planeIdx(dir, v, c, iu, iw)] = x
				d.cells[d.planeIdx(dir, v, c, iu+1, iw)] = x
				d.cells[d.planeIdx(dir, v, c, iu, iw+1)] = x
				d.cells[d.planeIdx(dir, v, c, iu+1, iw+1)] = x
			}
		}
	}
	return n
}

// ApplyDomainBoundary fills the ghost plane of a face that has no
// neighbour (a domain boundary) with a zero-gradient condition: each ghost
// cell copies the adjacent interior cell.
func (d *Data) ApplyDomainBoundary(dir Dir, side Side, v0, v1 int) {
	d.checkGroup(v0, v1)
	u, w := d.faceDims(dir)
	cSrc := d.boundaryPlane(dir, side)
	cDst := d.ghostPlane(dir, side)
	for v := v0; v < v1; v++ {
		for iu := 1; iu <= u; iu++ {
			for iw := 1; iw <= w; iw++ {
				d.cells[d.planeIdx(dir, v, cDst, iu, iw)] = d.cells[d.planeIdx(dir, v, cSrc, iu, iw)]
			}
		}
	}
}

func (d *Data) checkGroup(v0, v1 int) {
	if v0 < 0 || v1 > d.vars || v0 >= v1 {
		panic(fmt.Sprintf("grid: invalid variable group [%d,%d) for %d vars", v0, v1, d.vars))
	}
}

func checkQuadrant(qu, qw int) {
	if qu < 0 || qu > 1 || qw < 0 || qw > 1 {
		panic(fmt.Sprintf("grid: invalid face quadrant (%d,%d)", qu, qw))
	}
}
