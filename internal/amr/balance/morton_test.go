package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"miniamr/internal/amr/mesh"
)

func TestMortonCoversAndBalances(t *testing.T) {
	m := testMesh(t, [3]int{4, 4, 4}, 2)
	for _, ranks := range []int{1, 2, 3, 7, 16} {
		owner := Morton(m.Config(), m.Leaves(), ranks)
		if len(owner) != 64 {
			t.Fatalf("ranks=%d: assigned %d, want 64", ranks, len(owner))
		}
		if imb := Imbalance(owner, ranks); imb > 1 {
			t.Errorf("ranks=%d: imbalance %d", ranks, imb)
		}
	}
}

func TestMortonDeterministic(t *testing.T) {
	m := testMesh(t, [3]int{2, 4, 2}, 1)
	a := Morton(m.Config(), m.Leaves(), 3)
	b := Morton(m.Config(), m.Leaves(), 3)
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("nondeterministic assignment for %v", c)
		}
	}
}

func TestMortonContiguity(t *testing.T) {
	// On a 2x2x2 mesh with 2 ranks, the Z-order curve puts the first four
	// octants (an x-y-z contiguous half) on rank 0.
	m := testMesh(t, [3]int{2, 2, 2}, 0)
	owner := Morton(m.Config(), m.Leaves(), 2)
	if owner[mesh.Coord{Level: 0, X: 0, Y: 0, Z: 0}] != 0 {
		t.Error("origin block should be on rank 0")
	}
	if owner[mesh.Coord{Level: 0, X: 1, Y: 1, Z: 1}] != 1 {
		t.Error("far corner block should be on rank 1")
	}
}

func TestMortonKeyOrdering(t *testing.T) {
	// A parent's key equals its octant-0 child's key and precedes the
	// other children.
	p := mesh.Coord{Level: 0, X: 1, Y: 0, Z: 1}
	if mortonKey(p, 3) != mortonKey(p.Child(0), 3) {
		t.Error("parent and octant-0 child keys differ")
	}
	for o := 1; o < 8; o++ {
		if mortonKey(p.Child(o), 3) <= mortonKey(p, 3) {
			t.Errorf("child %d key not after parent", o)
		}
	}
}

// Property: Morton on refined meshes covers all leaves with imbalance <= 1
// and keeps curve locality (each rank's blocks form one contiguous curve
// segment).
func TestPropertyMortonRefinedMeshes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := mesh.Config{Root: [3]int{2, 2, 2}, MaxLevel: 2}
		m, err := mesh.NewUniform(cfg, func(mesh.Coord) int { return 0 })
		if err != nil {
			return false
		}
		marks := map[mesh.Coord]int8{}
		for _, c := range m.Leaves() {
			if rng.Intn(3) == 0 {
				marks[c] = 1
			}
		}
		plan, err := m.PlanRefinement(marks)
		if err != nil {
			return false
		}
		m.Apply(plan)
		ranks := rng.Intn(6) + 1
		owner := Morton(cfg, m.Leaves(), ranks)
		if len(owner) != m.Len() {
			return false
		}
		if Imbalance(owner, ranks) > 1 {
			return false
		}
		// Contiguity along the curve: sorting leaves by key must give a
		// non-decreasing owner sequence.
		leaves := m.Leaves()
		prev := -1
		type kc struct {
			k uint64
			c mesh.Coord
		}
		keyed := make([]kc, len(leaves))
		for i, c := range leaves {
			keyed[i] = kc{mortonKey(c, cfg.MaxLevel), c}
		}
		for i := 1; i < len(keyed); i++ {
			for j := i; j > 0 && keyed[j].k < keyed[j-1].k; j-- {
				keyed[j], keyed[j-1] = keyed[j-1], keyed[j]
			}
		}
		for _, e := range keyed {
			r := owner[e.c]
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
