package balance

import (
	"sort"

	"miniamr/internal/amr/mesh"
)

// Morton partitions leaves along a Z-order space-filling curve: blocks are
// sorted by the Morton key of their position at the finest level and the
// sorted sequence is cut into contiguous, equally sized rank chunks.
//
// Space-filling-curve partitioning is the main alternative to RCB in
// production AMR frameworks; it is provided for comparison and as an
// extension beyond the reference mini-app. Like RCB it is a pure function
// of replicated metadata, deterministic on every rank.
func Morton(cfg mesh.Config, leaves []mesh.Coord, ranks int) map[mesh.Coord]int {
	if ranks <= 0 {
		panic("balance: ranks must be positive")
	}
	work := make([]mesh.Coord, len(leaves))
	copy(work, leaves)
	max := cfg.MaxLevel
	sort.Slice(work, func(i, j int) bool {
		ki, kj := mortonKey(work[i], max), mortonKey(work[j], max)
		if ki != kj {
			return ki < kj
		}
		return work[i].Less(work[j]) // ancestors share keys with descendants
	})
	owner := make(map[mesh.Coord]int, len(work))
	for i, c := range work {
		owner[c] = i * ranks / len(work)
	}
	return owner
}

// mortonKey interleaves the bits of the block's anchor coordinates scaled
// to the finest level, yielding the Z-order position of its low corner.
func mortonKey(c mesh.Coord, maxLevel int) uint64 {
	shift := uint(maxLevel - c.Level)
	x := uint64(c.X) << shift
	y := uint64(c.Y) << shift
	z := uint64(c.Z) << shift
	var key uint64
	for b := uint(0); b < 21; b++ {
		key |= (x >> b & 1) << (3 * b)
		key |= (y >> b & 1) << (3*b + 1)
		key |= (z >> b & 1) << (3*b + 2)
	}
	return key
}
