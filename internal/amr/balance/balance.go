// Package balance implements the load-balancing policy of the AMR
// application: a recursive coordinate bisection (RCB) partition over block
// centers, the scheme the reference miniAMR uses to equalise the number of
// blocks per rank after refinement changes the mesh.
//
// The partitioner is a pure function of the replicated mesh metadata, so
// every rank computes the identical partition without communication. The
// data movement itself (the ACK/id/data exchange protocol from the paper's
// Section IV-B) is executed by the application drivers.
package balance

import (
	"sort"

	"miniamr/internal/amr/mesh"
)

// RCB partitions the given leaves over ranks by recursive coordinate
// bisection of their physical centers. Each recursion splits the longest
// spread dimension at the position that divides the blocks proportionally
// to the rank counts of the two halves. Ties are broken by coordinate
// order, so the result is deterministic.
func RCB(cfg mesh.Config, leaves []mesh.Coord, ranks int) map[mesh.Coord]int {
	if ranks <= 0 {
		panic("balance: ranks must be positive")
	}
	owner := make(map[mesh.Coord]int, len(leaves))
	work := make([]mesh.Coord, len(leaves))
	copy(work, leaves)
	rcb(cfg, work, 0, ranks, owner)
	return owner
}

func rcb(cfg mesh.Config, leaves []mesh.Coord, r0, r1 int, owner map[mesh.Coord]int) {
	if r1-r0 == 1 || len(leaves) == 0 {
		for _, c := range leaves {
			owner[c] = r0
		}
		return
	}
	dim := widestDim(cfg, leaves)
	sort.Slice(leaves, func(i, j int) bool {
		ci := cfg.Center(leaves[i])[dim]
		cj := cfg.Center(leaves[j])[dim]
		if ci != cj {
			return ci < cj
		}
		return leaves[i].Less(leaves[j])
	})
	nLeft := (r1 - r0 + 1) / 2
	kLeft := len(leaves) * nLeft / (r1 - r0)
	rcb(cfg, leaves[:kLeft], r0, r0+nLeft, owner)
	rcb(cfg, leaves[kLeft:], r0+nLeft, r1, owner)
}

// widestDim returns the dimension with the largest spread of block centers.
func widestDim(cfg mesh.Config, leaves []mesh.Coord) int {
	var lo, hi [3]float64
	for d := 0; d < 3; d++ {
		lo[d], hi[d] = 1, 0
	}
	for _, c := range leaves {
		ctr := cfg.Center(c)
		for d := 0; d < 3; d++ {
			if ctr[d] < lo[d] {
				lo[d] = ctr[d]
			}
			if ctr[d] > hi[d] {
				hi[d] = ctr[d]
			}
		}
	}
	best, width := 0, hi[0]-lo[0]
	for d := 1; d < 3; d++ {
		if w := hi[d] - lo[d]; w > width {
			best, width = d, w
		}
	}
	return best
}

// Moves lists the blocks whose owner changes under a new partition, in
// deterministic order. The mesh itself is not modified.
func Moves(m *mesh.Mesh, newOwner map[mesh.Coord]int) []mesh.Move {
	var out []mesh.Move
	for _, c := range m.Leaves() { // Leaves() is sorted
		from := m.Owner(c)
		if to, ok := newOwner[c]; ok && to != from {
			out = append(out, mesh.Move{Block: c, From: from, To: to})
		}
	}
	return out
}

// Imbalance returns (max-min) block counts across ranks for a partition,
// a simple quality metric used by tests and the harness.
func Imbalance(owner map[mesh.Coord]int, ranks int) int {
	counts := make([]int, ranks)
	for _, r := range owner {
		counts[r]++
	}
	mn, mx := counts[0], counts[0]
	for _, n := range counts[1:] {
		if n < mn {
			mn = n
		}
		if n > mx {
			mx = n
		}
	}
	return mx - mn
}
