package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"miniamr/internal/amr/mesh"
)

func testMesh(t *testing.T, root [3]int, maxLevel int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.NewUniform(mesh.Config{Root: root, MaxLevel: maxLevel}, func(mesh.Coord) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRCBCoversAllBlocks(t *testing.T) {
	m := testMesh(t, [3]int{4, 4, 4}, 2)
	owner := RCB(m.Config(), m.Leaves(), 8)
	if len(owner) != 64 {
		t.Fatalf("assigned %d blocks, want 64", len(owner))
	}
	for c, r := range owner {
		if r < 0 || r >= 8 {
			t.Errorf("block %v assigned out-of-range rank %d", c, r)
		}
	}
}

func TestRCBBalanced(t *testing.T) {
	m := testMesh(t, [3]int{4, 4, 4}, 2)
	for _, ranks := range []int{1, 2, 3, 5, 8, 16, 64} {
		owner := RCB(m.Config(), m.Leaves(), ranks)
		if imb := Imbalance(owner, ranks); imb > 1 {
			t.Errorf("ranks=%d: imbalance %d, want <= 1 for a uniform mesh", ranks, imb)
		}
	}
}

func TestRCBDeterministic(t *testing.T) {
	m := testMesh(t, [3]int{4, 2, 2}, 2)
	a := RCB(m.Config(), m.Leaves(), 5)
	b := RCB(m.Config(), m.Leaves(), 5)
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("nondeterministic assignment for %v", c)
		}
	}
}

func TestRCBSpatialLocality(t *testing.T) {
	// With 2 ranks on a 4x1x1 mesh, the split must separate low-x from
	// high-x blocks.
	m := testMesh(t, [3]int{4, 1, 1}, 0)
	owner := RCB(m.Config(), m.Leaves(), 2)
	for c, r := range owner {
		wantRank := 0
		if c.X >= 2 {
			wantRank = 1
		}
		if r != wantRank {
			t.Errorf("block %v on rank %d, want %d", c, r, wantRank)
		}
	}
}

func TestRCBSingleRank(t *testing.T) {
	m := testMesh(t, [3]int{2, 2, 2}, 0)
	owner := RCB(m.Config(), m.Leaves(), 1)
	for c, r := range owner {
		if r != 0 {
			t.Errorf("block %v on rank %d", c, r)
		}
	}
}

func TestRCBMoreRanksThanBlocks(t *testing.T) {
	m := testMesh(t, [3]int{2, 1, 1}, 0)
	owner := RCB(m.Config(), m.Leaves(), 7)
	if len(owner) != 2 {
		t.Fatalf("assigned %d", len(owner))
	}
	seen := map[int]bool{}
	for _, r := range owner {
		if seen[r] {
			t.Error("two blocks on one rank while other ranks idle")
		}
		seen[r] = true
	}
}

func TestRCBInputNotMutated(t *testing.T) {
	m := testMesh(t, [3]int{2, 2, 1}, 0)
	leaves := m.Leaves()
	snapshot := make([]mesh.Coord, len(leaves))
	copy(snapshot, leaves)
	RCB(m.Config(), leaves, 3)
	for i := range leaves {
		if leaves[i] != snapshot[i] {
			t.Fatal("RCB mutated the caller's slice")
		}
	}
}

func TestMoves(t *testing.T) {
	m := testMesh(t, [3]int{2, 1, 1}, 0)
	// Both blocks start on rank 0; new partition puts block x=1 on rank 1.
	newOwner := map[mesh.Coord]int{
		{Level: 0, X: 0, Y: 0, Z: 0}: 0,
		{Level: 0, X: 1, Y: 0, Z: 0}: 1,
	}
	moves := Moves(m, newOwner)
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0].Block != (mesh.Coord{Level: 0, X: 1}) || moves[0].From != 0 || moves[0].To != 1 {
		t.Errorf("move = %+v", moves[0])
	}
}

func TestImbalance(t *testing.T) {
	owner := map[mesh.Coord]int{
		{Level: 0, X: 0}: 0, {Level: 0, X: 1}: 0, {Level: 0, Y: 1}: 1,
	}
	if got := Imbalance(owner, 2); got != 1 {
		t.Errorf("imbalance = %d, want 1", got)
	}
	if got := Imbalance(owner, 3); got != 2 {
		t.Errorf("imbalance with idle rank = %d, want 2", got)
	}
}

// Property: on refined meshes with random refinement history, RCB covers
// every leaf exactly once and keeps imbalance within 2 blocks.
func TestPropertyRCBRefinedMeshes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := mesh.Config{Root: [3]int{2, 2, 2}, MaxLevel: 2}
		m, err := mesh.NewUniform(cfg, func(mesh.Coord) int { return 0 })
		if err != nil {
			return false
		}
		for epoch := 0; epoch < 2; epoch++ {
			marks := map[mesh.Coord]int8{}
			for _, c := range m.Leaves() {
				if rng.Intn(3) == 0 {
					marks[c] = 1
				}
			}
			plan, err := m.PlanRefinement(marks)
			if err != nil {
				return false
			}
			m.Apply(plan)
		}
		ranks := rng.Intn(7) + 1
		owner := RCB(cfg, m.Leaves(), ranks)
		if len(owner) != m.Len() {
			return false
		}
		return Imbalance(owner, ranks) <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
