package hydro

import (
	"miniamr/internal/driver"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
)

// fjDriver is the hybrid MPI+OpenMP fork-join stage set: sweeps, packing,
// unpacking, local copies and checksum reductions run in parallel loops
// while all MPI communication stays on the master thread.
type fjDriver struct {
	s *state
	// eng owns the worker pool, the per-worker scratch buffers and arena
	// caches, and the master thread's reused waitset.
	eng *driver.ForkJoinEngine
}

// parFor dispatches a parallel loop with the engine's schedule.
func (d *fjDriver) parFor(n int, body func(i, w int)) {
	d.eng.ParFor(n, body)
}

// BeginStep scans the owned tiles for the maximum wave speed in parallel
// and resolves the CFL timestep on the master. A maximum is
// order-independent, so the parallel fold stays bit-deterministic.
//
//amr:graph driver=hydro-forkjoin phase=timestep seq=1
//amr:par label=cfl-scan axis=tiles
func (d *fjDriver) BeginStep(ts int) error {
	s := d.s
	waves := make([]float64, len(s.tiles))
	d.parFor(len(s.tiles), func(i, w int) {
		s.rec.Span(s.rank, w, "cfl-scan", func() {
			waves[i] = s.maxWave(s.data[s.tiles[i]])
		})
	})
	wave := 0.0
	for _, wv := range waves {
		if wv > wave {
			wave = wv
		}
		s.flops += s.waveFlops()
	}
	return s.reduceWave(wave)
}

// Communicate exchanges the stage direction's ghost edges: the master
// posts receives and sends, parallel regions pack, copy and unpack.
//
//amr:graph driver=hydro-forkjoin phase=communicate seq=2
//amr:par label=Irecv axis=msgs serial
//amr:par label=IsendOwned axis=msgs serial
//amr:par label=pack axis=segs
//amr:par label=local-copy axis=locals
//amr:par label=unpack axis=segs
func (d *fjDriver) Communicate(stage, g0, g1 int) error {
	s := d.s
	dir := stage - 1
	gv := g1 - g0
	ws := d.eng.Wait()

	ws.Reset()
	for i := range s.plans[dir].RecvPlans {
		pl := &s.plans[dir].RecvPlans[i]
		req, err := s.comm.Irecv(s.plans[dir].RecvBuf(i)[:pl.Cells*gv], pl.Peer, pl.Tag)
		if err != nil {
			return err
		}
		ws.Add(req)
	}

	// Parallel region: pack every outgoing segment (flat index space
	// across peers) into fresh arena leases, then master sends them with
	// ownership transfer.
	type packJob struct {
		sg  seg
		dst []float64
	}
	var jobs []packJob
	type sendMsg struct {
		peer  int
		tag   int
		lease *membuf.Lease
	}
	var sends []sendMsg
	for i := range s.plans[dir].SendPlans {
		pl := &s.plans[dir].SendPlans[i]
		lease := s.arena.LeaseFloat64(pl.Cells * gv)
		buf := lease.Float64()
		for si, sg := range pl.Segs {
			jobs = append(jobs, packJob{sg: sg, dst: s.segBuf(dir, buf, si)})
		}
		sends = append(sends, sendMsg{peer: pl.Peer, tag: pl.Tag, lease: lease})
	}
	d.parFor(len(jobs), func(i, w int) {
		job := jobs[i]
		s.rec.Span(s.rank, w, "pack", func() { s.packSeg(dir, job.sg, job.dst) })
	})
	var sendReqs []*mpi.Request
	for si, sm := range sends {
		req, err := s.comm.IsendOwned(sm.lease, sm.peer, sm.tag)
		if err != nil {
			// The failed and the not-yet-sent leases are still ours;
			// in-flight sends must settle before their buffers die.
			for _, rest := range sends[si:] {
				rest.lease.Release()
			}
			mpi.Waitall(sendReqs)
			return err
		}
		sendReqs = append(sendReqs, req)
	}

	// Parallel same-rank copies: distinct copies write distinct ghost
	// edges, so the loop is race-free.
	d.parFor(len(s.locals[dir]), func(i, w int) {
		lc := s.locals[dir][i]
		s.rec.Span(s.rank, w, "local-copy", func() { s.copyLocal(dir, lc) })
	})

	// Master waits for arrivals; each message unpacks in parallel.
	for remaining := ws.Len(); remaining > 0; remaining-- {
		var idx int
		var werr error
		s.rec.Span(s.rank, 0, "MPI_Waitany", func() {
			idx, _, werr = ws.Next()
		})
		if werr != nil {
			return werr
		}
		pl := &s.plans[dir].RecvPlans[idx]
		buf := s.plans[dir].RecvBuf(idx)
		d.parFor(len(pl.Segs), func(i, w int) {
			s.rec.Span(s.rank, w, "unpack", func() {
				s.unpackSeg(dir, pl.Segs[i], s.segBuf(dir, buf, i))
			})
		})
	}
	if err := mpi.Waitall(sendReqs); err != nil {
		return err
	}
	for _, req := range sendReqs {
		req.Free()
	}
	return nil
}

// Compute sweeps the owned tiles in parallel; tiles only touch their own
// storage, so the loop is race-free.
//
//amr:graph driver=hydro-forkjoin phase=sweep seq=3
//amr:par label=sweep axis=tiles
func (d *fjDriver) Compute(stage, g0, g1 int) error {
	s := d.s
	dir := stage - 1
	d.parFor(len(s.tiles), func(i, w int) {
		u := s.data[s.tiles[i]]
		s.rec.Span(s.rank, w, "sweep", func() { s.sweep(dir, u, d.eng.Scratch(w)) })
	})
	for range s.tiles {
		s.flops += s.sweepFlops(dir)
	}
	return nil
}

// Checksum reduces per-tile sums in parallel and combines them in tile
// order on the master.
//
//amr:graph driver=hydro-forkjoin phase=checksum seq=4
//amr:par label=cksum-local axis=tiles
func (d *fjDriver) Checksum(int) error {
	s := d.s
	sums := make([][]float64, len(s.tiles))
	d.parFor(len(s.tiles), func(i, w int) {
		out := d.eng.Cache(w).GetFloat64(hydroVars) // tileSums overwrites it
		s.rec.Span(s.rank, w, "cksum-local", func() { s.tileSums(s.data[s.tiles[i]], out) })
		sums[i] = out
	})
	perTile := make(map[int][]float64, len(s.tiles))
	for i, t := range s.tiles {
		perTile[t] = sums[i]
	}
	local := driver.CombineSums(s.arena, hydroVars, s.tiles, perTile)
	for _, out := range sums {
		s.arena.PutFloat64(out)
	}
	return s.reduceAndValidate(local)
}

// Quiesce is a no-op: parallel regions end with an implicit barrier.
func (d *fjDriver) Quiesce() error { return nil }

func (d *fjDriver) Refine(bool) (bool, error) { return false, nil }

func (d *fjDriver) Drain() error { return nil }
