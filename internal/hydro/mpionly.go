package hydro

import (
	"time"

	"miniamr/internal/driver"
)

// serialDriver is the reference MPI-only stage set: one single-threaded
// rank per core, non-blocking sends and receives with Waitany-driven
// unpacking, exactly the shape of miniAMR's reference variant.
type serialDriver struct {
	s *state
	// eng owns the reused per-stage communication state (waitset, send
	// list, scratch): the hot path must not allocate.
	eng *driver.SerialEngine
}

// BeginStep resolves the step's CFL timestep: a serial scan of the owned
// tiles and a global max reduction.
//
//amr:graph driver=hydro-mpionly phase=timestep seq=1
//amr:par label=cfl-scan axis=tiles serial
func (d *serialDriver) BeginStep(ts int) error {
	s := d.s
	wave := 0.0
	start := time.Now()
	for _, t := range s.tiles {
		if w := s.maxWave(s.data[t]); w > wave {
			wave = w
		}
		s.flops += s.waveFlops()
	}
	s.rec.Record(s.rank, 0, "cfl-scan", start, time.Now())
	return s.reduceWave(wave)
}

// Communicate exchanges the stage direction's ghost edges: post all
// receives, pack and send every outgoing message with ownership
// transfer, overlap the same-rank copies, then unpack arrivals in
// completion order.
//
//amr:graph driver=hydro-mpionly phase=communicate seq=2
//amr:par label=Irecv axis=msgs serial
//amr:par label=IsendOwned axis=msgs serial
//amr:par label=pack axis=segs serial
//amr:par label=local-copy axis=locals serial
//amr:par label=unpack axis=segs serial
func (d *serialDriver) Communicate(stage, g0, g1 int) error {
	s := d.s
	dir := stage - 1
	gv := g1 - g0
	ws := d.eng.Wait()

	ws.Reset()
	for i := range s.plans[dir].RecvPlans {
		pl := &s.plans[dir].RecvPlans[i]
		req, err := s.comm.Irecv(s.plans[dir].RecvBuf(i)[:pl.Cells*gv], pl.Peer, pl.Tag)
		if err != nil {
			return err
		}
		ws.Add(req)
	}

	for i := range s.plans[dir].SendPlans {
		pl := &s.plans[dir].SendPlans[i]
		lease := s.arena.LeaseFloat64(pl.Cells * gv)
		start := time.Now()
		s.packMessage(dir, pl.Segs, lease.Float64())
		s.rec.Record(s.rank, 0, "pack", start, time.Now())
		req, err := s.comm.IsendOwned(lease, pl.Peer, pl.Tag)
		if err != nil {
			// This lease is still ours; earlier sends are in flight and
			// must settle before their buffers die.
			lease.Release()
			d.eng.FlushSends()
			return err
		}
		d.eng.TrackSend(req)
	}

	start := time.Now()
	for _, lc := range s.locals[dir] {
		s.copyLocal(dir, lc)
	}
	s.rec.Record(s.rank, 0, "local-copy", start, time.Now())

	for remaining := ws.Len(); remaining > 0; remaining-- {
		wstart := time.Now()
		idx, _, werr := ws.Next()
		s.rec.Record(s.rank, 0, "MPI_Waitany", wstart, time.Now())
		if werr != nil {
			return werr
		}
		pl := &s.plans[dir].RecvPlans[idx]
		ustart := time.Now()
		s.unpackMessage(dir, pl.Segs, s.plans[dir].RecvBuf(idx)[:pl.Cells*gv])
		s.rec.Record(s.rank, 0, "unpack", ustart, time.Now())
	}

	return d.eng.FlushSends()
}

// Compute runs the stage direction's Godunov sweep over the owned tiles.
//
//amr:graph driver=hydro-mpionly phase=sweep seq=3
//amr:par label=sweep axis=tiles serial
func (d *serialDriver) Compute(stage, g0, g1 int) error {
	s := d.s
	dir := stage - 1
	flux := d.eng.Scratch()
	for _, t := range s.tiles {
		u := s.data[t]
		s.rec.Span(s.rank, 0, "sweep", func() { s.sweep(dir, u, flux) })
		s.flops += s.sweepFlops(dir)
	}
	return nil
}

// Checksum reduces the conserved sums per tile, folds them in tile order
// and validates the global result.
//
//amr:graph driver=hydro-mpionly phase=checksum seq=4
//amr:par label=cksum-local axis=tiles serial
func (d *serialDriver) Checksum(int) error {
	s := d.s
	perTile := make(map[int][]float64, len(s.tiles))
	s.rec.Span(s.rank, 0, "cksum-local", func() {
		for _, t := range s.tiles {
			sums := s.arena.GetFloat64(hydroVars) // tileSums overwrites it
			s.tileSums(s.data[t], sums)
			perTile[t] = sums
		}
	})
	local := driver.CombineSums(s.arena, hydroVars, s.tiles, perTile)
	for _, t := range s.tiles {
		s.arena.PutFloat64(perTile[t])
	}
	return s.reduceAndValidate(local)
}

// Quiesce is a no-op: the serial driver has no asynchronous stage work.
func (d *serialDriver) Quiesce() error { return nil }

// Refine is a no-op: HYDRO's mesh is fixed.
func (d *serialDriver) Refine(bool) (bool, error) { return false, nil }

func (d *serialDriver) Drain() error { return nil }
