package hydro

import (
	"time"

	"miniamr/internal/driver"
	"miniamr/internal/task"
)

// Dependency keys of HYDRO's data-flow taskification. Dependencies are
// declared per tile and per communication buffer section, the same
// granularity the paper uses for miniAMR's blocks.
type (
	// tileKey is one tile's conserved state; it persists across
	// timesteps, chaining unpack -> sweep -> pack across stages.
	//
	//amr:region state
	tileKey struct {
		t int
	}
	// sectKey is one segment's section of a message buffer. dirKey is
	// the direction+1, or 0 when buffer sections share one key space
	// across directions (reproducing the false dependencies that
	// separate buffers remove). Sections are per-stage: produced,
	// consumed once, recycled.
	//
	//amr:region stage match=dirKey,send,idx
	sectKey struct {
		dirKey int
		peer   int
		send   bool
		idx    int
	}
	// waveKey is a tile's CFL wave-speed contribution slot, written once
	// per timestep and drained by the reduction's taskwait.
	//
	//amr:region stage
	waveKey struct {
		t int
	}
	// sumKey is a tile's checksum accumulator slot, written once per
	// checksum stage and drained by the validation's taskwait.
	//
	//amr:region stage
	sumKey struct {
		t int
	}
)

// dfDriver is the paper's hybrid data-flow stage set: every phase is
// taskified, tasks connect through data dependencies, and MPI operations
// are issued from tasks through the task-aware MPI layer.
type dfDriver struct {
	s *state
	// g owns the task runtime, the task-aware MPI context, the per-worker
	// scratch buffers and the sanitizer/trace plumbing.
	g *driver.GraphEngine
}

// dirKey folds the direction into buffer keys, or collapses both
// directions onto one key space when buffers are shared.
func (d *dfDriver) dirKey(dir int) int {
	if d.s.cfg.SeparateBuffers {
		return dir + 1
	}
	return 0
}

// BeginStep taskifies the CFL scan — one task per tile feeding a
// wave-speed slot — then closes the reduction with a taskwait on the
// slots and the global max on the main goroutine. The taskwait
// transitively drains every tile writer of the previous stage, so the
// following s.dt update never races a sweep.
//
//amr:graph driver=hydro-dataflow phase=timestep seq=1
//amr:par label=cfl-scan axis=tiles
func (d *dfDriver) BeginStep(ts int) error {
	s := d.s
	waves := make([]float64, len(s.tiles))
	keys := make([]any, len(s.tiles))
	for i, t := range s.tiles {
		i, t := i, t
		u := s.data[t]
		keys[i] = waveKey{t: t}
		d.g.Spawn("cfl-scan", func(tk *task.Task) {
			d.g.NoteRead(tk, tileKey{t: t})
			d.g.NoteWrite(tk, waveKey{t: t})
			s.rec.Span(s.rank, tk.Worker(), "cfl-scan", func() {
				waves[i] = s.maxWave(u)
			})
		}, task.Merge(task.In(tileKey{t: t}), task.Out(waveKey{t: t}))...)
		s.flops += s.waveFlops()
	}
	d.g.WaitKeys(keys...)
	if err := d.g.X.Err(); err != nil {
		return err
	}
	wave := 0.0
	for _, wv := range waves {
		if wv > wave {
			wave = wv
		}
	}
	return s.reduceWave(wave)
}

// Communicate taskifies the ghost exchange: a receive task per message
// binding the request, pack tasks per segment, send tasks with
// multidependencies on the packed sections, local copy tasks, and unpack
// tasks fed by the receive's buffer sections.
//
//amr:graph driver=hydro-dataflow phase=communicate seq=2
//amr:par label=recv axis=msgs
//amr:par label=pack axis=segs
//amr:par label=send axis=msgs
//amr:par label=local-copy axis=locals
//amr:par label=unpack axis=msgs
func (d *dfDriver) Communicate(stage, g0, g1 int) error {
	s := d.s
	dir := stage - 1
	gv := g1 - g0
	dk := d.dirKey(dir)
	// Section keys may alternate between the two directions' slabs when
	// buffers are shared; aliasing is only meaningful within one stage
	// (with the sanitizer off this is a nil check).
	d.g.ResetBindings()

	// Pending unpack work, spawned only after all pack tasks: packers
	// must depend solely on the previous stage's sweeps, never on this
	// stage's arrivals, or two ranks exchanging edges would wait on each
	// other.
	type unpackJob struct {
		sg  seg
		sec []float64
		key sectKey
	}
	var unpacks []unpackJob

	// Receives: one task per incoming message; its completion is bound
	// to the MPI request, so unpackers run only once the data arrived.
	for pi := range s.plans[dir].RecvPlans {
		pl := &s.plans[dir].RecvPlans[pi]
		peer, tag, segs := pl.Peer, pl.Tag, pl.Segs
		buf := s.plans[dir].RecvBuf(pi)[:pl.Cells*gv]
		secs := make([]any, len(segs))
		for i := range segs {
			secs[i] = sectKey{dirKey: dk, peer: peer, idx: i}
		}
		d.g.Spawn("recv", func(t *task.Task) {
			for _, k := range secs {
				d.g.NoteWrite(t, k) // the arriving message fills every section
			}
			if s.cfg.BlockingTAMPI {
				// TAMPI's blocking mode: the task pauses until the
				// message arrives, releasing its core meanwhile.
				start := time.Now()
				if _, err := d.g.X.Recv(t, buf, peer, tag); err != nil {
					panic(err)
				}
				s.rec.Record(s.rank, t.Worker(), "recv-wait", start, time.Now())
				return
			}
			req, err := s.comm.Irecv(buf, peer, tag)
			if err != nil {
				panic(err)
			}
			d.g.RecordInFlight(t, "recv-wait", req)
			d.g.X.Iwait(t, req)
		}, task.Out(secs...)...)

		for i, sg := range segs {
			sec := s.segBuf(dir, buf, i)
			d.g.BindSection(secs[i], sec)
			unpacks = append(unpacks, unpackJob{sg: sg, sec: sec, key: secs[i].(sectKey)})
		}
	}

	// Sends: the message buffer is a fresh arena lease; pack tasks per
	// segment write their section of it, one send task per message
	// depends on all the sections and transfers the lease to the MPI
	// layer (the receiving rank returns it to the arena).
	for pi := range s.plans[dir].SendPlans {
		pl := &s.plans[dir].SendPlans[pi]
		peer, tag, segs := pl.Peer, pl.Tag, pl.Segs
		lease := s.arena.LeaseFloat64(pl.Cells * gv)
		buf := lease.Float64()
		secs := make([]any, len(segs))
		for i := range segs {
			secs[i] = sectKey{dirKey: dk, peer: peer, send: true, idx: i}
		}
		for i, sg := range segs {
			sg := sg
			sec := s.segBuf(dir, buf, i)
			secKey := secs[i]
			d.g.Spawn("pack", func(t *task.Task) {
				d.g.NoteRead(t, tileKey{t: sg.Tile})
				d.g.NoteWrite(t, secKey)
				s.rec.Span(s.rank, t.Worker(), "pack", func() {
					s.packSeg(dir, sg, sec)
				})
			}, task.Merge(
				task.In(tileKey{t: sg.Tile}),
				task.Out(secKey),
			)...)
		}
		d.g.Spawn("send", func(t *task.Task) {
			for _, k := range secs {
				d.g.NoteRead(t, k) // the send serialises every packed section
			}
			if s.cfg.BlockingTAMPI {
				start := time.Now()
				if err := d.g.X.SendOwned(t, lease, peer, tag); err != nil {
					panic(err)
				}
				s.rec.Record(s.rank, t.Worker(), "send-wait", start, time.Now())
				return
			}
			req, err := s.comm.IsendOwned(lease, peer, tag)
			if err != nil {
				panic(err)
			}
			d.g.RecordInFlight(t, "send-wait", req)
			d.g.X.Iwait(t, req)
		}, task.In(secs...)...)
	}

	// Same-rank copies: edge exchange tasks between neighbouring tiles.
	for _, lc := range s.locals[dir] {
		lc := lc
		d.g.Spawn("local-copy", func(t *task.Task) {
			d.g.NoteRead(t, tileKey{t: lc.src})
			d.g.NoteWrite(t, tileKey{t: lc.dst})
			s.rec.Span(s.rank, t.Worker(), "local-copy", func() {
				s.copyLocal(dir, lc)
			})
		}, task.Merge(
			task.In(tileKey{t: lc.src}),
			task.InOut(tileKey{t: lc.dst}),
		)...)
	}

	// Unpackers: consume the receive's buffer sections into tile ghosts
	// once the bound requests complete.
	for _, uj := range unpacks {
		uj := uj
		d.g.Spawn("unpack", func(t *task.Task) {
			d.g.NoteRead(t, uj.key)
			d.g.NoteWrite(t, tileKey{t: uj.sg.Tile})
			s.rec.Span(s.rank, t.Worker(), "unpack", func() {
				s.unpackSeg(dir, uj.sg, uj.sec)
			})
		}, task.Merge(
			task.In(uj.key),
			task.InOut(tileKey{t: uj.sg.Tile}),
		)...)
	}
	return d.g.X.Err()
}

// Compute spawns one sweep task per tile, depending in-out on the tile so
// it naturally follows the ghost fills.
//
//amr:graph driver=hydro-dataflow phase=sweep seq=3
//amr:par label=sweep axis=tiles
func (d *dfDriver) Compute(stage, g0, g1 int) error {
	s := d.s
	dir := stage - 1
	for _, t := range s.tiles {
		t := t
		u := s.data[t]
		d.g.Spawn("sweep", func(tk *task.Task) {
			d.g.NoteWrite(tk, tileKey{t: t})
			s.rec.Span(s.rank, tk.Worker(), "sweep", func() {
				s.sweep(dir, u, d.g.Scratch(tk.Worker()))
			})
		}, task.InOut(tileKey{t: t})...)
		s.flops += s.sweepFlops(dir)
	}
	return nil
}

// Checksum spawns per-tile reduction tasks into sum slots, closes them
// with a taskwait with dependencies, and validates the global reduction
// on the main goroutine.
//
//amr:graph driver=hydro-dataflow phase=checksum seq=4
//amr:par label=cksum-local axis=tiles
func (d *dfDriver) Checksum(int) error {
	s := d.s
	perTile := make(map[int][]float64, len(s.tiles))
	keys := make([]any, len(s.tiles))
	for i, t := range s.tiles {
		t := t
		slot := s.arena.GetFloat64(hydroVars) // tileSums overwrites it
		perTile[t] = slot
		u := s.data[t]
		keys[i] = sumKey{t: t}
		d.g.Spawn("cksum-local", func(tk *task.Task) {
			d.g.NoteRead(tk, tileKey{t: t})
			d.g.NoteWrite(tk, sumKey{t: t})
			s.rec.Span(s.rank, tk.Worker(), "cksum-local", func() {
				s.tileSums(u, slot)
			})
		}, task.Merge(task.In(tileKey{t: t}), task.Out(sumKey{t: t}))...)
	}
	d.g.WaitKeys(keys...)
	if err := d.g.X.Err(); err != nil {
		return err
	}
	local := driver.CombineSums(s.arena, hydroVars, s.tiles, perTile)
	for _, t := range s.tiles {
		s.arena.PutFloat64(perTile[t])
	}
	return s.reduceAndValidate(local)
}

// Quiesce closes the parallelism (an explicit taskwait).
func (d *dfDriver) Quiesce() error {
	d.g.Wait()
	return d.g.X.Err()
}

func (d *dfDriver) Refine(bool) (bool, error) { return false, nil }

// Drain completes the run: wait out the graph and surface any deferred
// communication error.
func (d *dfDriver) Drain() error {
	d.g.Wait()
	return d.g.X.Err()
}
