// Package hydro is the second application on the variant-agnostic driver
// skeleton: a 2D compressible Euler solver in the shape of the HYDRO
// mini-app the paper taskifies alongside miniAMR. The grid is a fixed
// (non-adaptive) tile decomposition; each timestep is two dimension-split
// first-order Godunov sweeps (X then Y) with a Rusanov flux, preceded by
// a global CFL timestep reduction and followed by a conserved-quantity
// checksum validation.
//
// The package deliberately shares no code with internal/amr: everything
// variant-shaped — the main loop, the execution engines, the comm-plan
// cache, the checksum oracle — comes from internal/driver, which is the
// point of the port.
package hydro

import (
	"fmt"

	"miniamr/internal/sanitize"
	"miniamr/internal/task"
)

// hydroVars is the number of conserved variables per cell: density, x/y
// momentum and total energy.
const hydroVars = 4

// Config describes one HYDRO problem.
type Config struct {
	// NX, NY are the global interior cell counts.
	NX, NY int
	// TilesX, TilesY decompose the grid into TilesX*TilesY tiles. Both
	// must be at least 2 (so a tile is never its own neighbour) and must
	// divide NX and NY evenly. Tiles are distributed over ranks in
	// contiguous id ranges.
	TilesX, TilesY int
	// Timesteps is the number of coupled X+Y sweep steps.
	Timesteps int
	// ChecksumEvery validates the conserved-quantity checksums every N
	// global stages (there are 2 stages per timestep); 0 defaults to 2,
	// a negative value disables validation.
	ChecksumEvery int
	// CFL is the timestep safety factor; 0 defaults to 0.4.
	CFL float64
	// Gamma is the ideal-gas adiabatic index; 0 defaults to 1.4.
	Gamma float64
	// ChecksumTolerance is the admissible relative drift between
	// consecutive checksums. The scheme is conservative on a periodic
	// domain, so drift is round-off only; 0 defaults to 1e-6.
	ChecksumTolerance float64
	// Workers is the worker count of the hybrid variants; 0 defaults
	// to 1.
	Workers int
	// Sanitizer, when non-nil, attaches the amrsan dependency sanitizer
	// to the data-flow variant. Runtime-only: excluded from the wire
	// encoding of multi-process runs.
	Sanitizer *sanitize.Sanitizer `json:"-"`
	// TaskObserver, when non-nil, yields a per-rank task lifecycle
	// observer for the data-flow variant (teed with the sanitizer's).
	// Used to measure dynamic concurrency, e.g. with task.NewWidthMeter.
	// Runtime-only, like Sanitizer.
	TaskObserver func(rank int) task.Observer `json:"-"`
	// BlockingTAMPI uses blocking TAMPI operations in communication tasks
	// instead of Irecv/Isend + Iwait.
	BlockingTAMPI bool
	// SeparateBuffers keys the data-flow buffer sections per direction;
	// off, the X and Y sections share one key space, reproducing the
	// false cross-direction dependencies of shared buffers.
	SeparateBuffers bool
}

// Validate checks the configuration and applies defaults in place.
func (c *Config) Validate() error {
	if c.NX <= 0 || c.NY <= 0 {
		return fmt.Errorf("hydro: grid %dx%d must be positive", c.NX, c.NY)
	}
	if c.TilesX < 2 || c.TilesY < 2 {
		return fmt.Errorf("hydro: tiling %dx%d must be at least 2x2", c.TilesX, c.TilesY)
	}
	if c.NX%c.TilesX != 0 || c.NY%c.TilesY != 0 {
		return fmt.Errorf("hydro: tiling %dx%d does not divide grid %dx%d",
			c.TilesX, c.TilesY, c.NX, c.NY)
	}
	if c.Timesteps <= 0 {
		return fmt.Errorf("hydro: timesteps %d must be positive", c.Timesteps)
	}
	if c.ChecksumEvery == 0 {
		c.ChecksumEvery = 2
	}
	if c.CFL == 0 {
		c.CFL = 0.4
	}
	if c.CFL <= 0 || c.CFL >= 1 {
		return fmt.Errorf("hydro: CFL %v out of (0,1)", c.CFL)
	}
	if c.Gamma == 0 {
		c.Gamma = 1.4
	}
	if c.Gamma <= 1 {
		return fmt.Errorf("hydro: gamma %v must exceed 1", c.Gamma)
	}
	if c.ChecksumTolerance == 0 {
		c.ChecksumTolerance = 1e-6
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return nil
}
