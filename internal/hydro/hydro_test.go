package hydro

import (
	"math"
	"os"
	"testing"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/harness"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
	"miniamr/internal/trace"
)

// testConfig is a small but complete problem: a 24x16 grid in 4x4 tiles
// (so every rank owns several tiles and every tile pair class — remote,
// local, wrapped — occurs), four timesteps, a checksum every timestep.
func testConfig() Config {
	return Config{
		NX: 24, NY: 16,
		TilesX: 4, TilesY: 4,
		Timesteps:     4,
		ChecksumEvery: 2,
		Workers:       2,
	}
}

type variantFunc func(Config, *mpi.Comm, *trace.Recorder) (Result, error)

var variants = map[string]variantFunc{
	"mpionly":  RunMPIOnly,
	"forkjoin": RunForkJoin,
	"dataflow": RunDataFlow,
}

// runVariant executes a variant on a fresh world and returns per-rank
// results. With AMRSAN=1 in the environment every run is additionally
// executed under the runtime sanitizer and any finding fails the test.
func runVariant(t *testing.T, cfg Config, ranks int, run variantFunc, rec *trace.Recorder) []Result {
	t.Helper()
	w := mpi.NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
	var san *sanitize.Sanitizer
	if os.Getenv("AMRSAN") == "1" {
		san = sanitize.New(sanitize.Options{})
		san.Attach(w)
		cfg.Sanitizer = san
	}
	results := make([]Result, ranks)
	err := w.Run(func(c *mpi.Comm) {
		res, err := run(cfg, c, rec)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			panic(err) // unblock peers deterministically
		}
		results[c.Rank()] = res
	})
	if san != nil {
		for _, r := range san.Finish() {
			t.Errorf("sanitizer: %v", r)
		}
	}
	if err != nil && !t.Failed() {
		t.Fatal(err)
	}
	return results
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.CFL != 0.4 || good.Gamma != 1.4 || good.ChecksumTolerance != 1e-6 {
		t.Errorf("defaults not applied: %+v", good)
	}
	bad := map[string]func(*Config){
		"zero-grid":     func(c *Config) { c.NX = 0 },
		"thin-tiling":   func(c *Config) { c.TilesX = 1 },
		"ragged-tiling": func(c *Config) { c.TilesX = 5 },
		"no-steps":      func(c *Config) { c.Timesteps = 0 },
		"wild-cfl":      func(c *Config) { c.CFL = 1.5 },
		"bad-gamma":     func(c *Config) { c.Gamma = 0.9 },
	}
	for name, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestVariantsRunAndValidate(t *testing.T) {
	for name, run := range variants {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			results := runVariant(t, testConfig(), 3, run, nil)
			if t.Failed() {
				return
			}
			if len(results[0].Checksums) != 4 { // 4 timesteps, every 2nd of 8 stages
				t.Fatalf("validated %d checksum stages, want 4", len(results[0].Checksums))
			}
			for _, r := range results {
				if r.Flops == 0 {
					t.Error("a rank executed no sweep flops")
				}
			}
			// The scheme is conservative on the periodic domain: every
			// conserved variable's global sum stays at its initial value
			// up to round-off.
			first := results[0].Checksums[0]
			for i, ck := range results[0].Checksums {
				for v := range ck {
					if diff := math.Abs(ck[v] - first[v]); diff > 1e-9*math.Abs(first[v]) {
						t.Errorf("stage %d: variable %d drifted %v from %v", i, v, diff, first[v])
					}
				}
			}
			// All ranks observed the same checksum sequence.
			for r := 1; r < len(results); r++ {
				for i := range results[0].Checksums {
					for v := range results[0].Checksums[i] {
						if results[r].Checksums[i][v] != results[0].Checksums[i][v] {
							t.Fatalf("rank %d checksum %d differs", r, i)
						}
					}
				}
			}
		})
	}
}

// checksumsOf flattens a result's checksum history.
func checksumsOf(results []Result) []float64 {
	var out []float64
	for _, ck := range results[0].Checksums {
		out = append(out, ck...)
	}
	return out
}

func TestCrossVariantBitIdenticalChecksums(t *testing.T) {
	// All three variants run the same per-tile arithmetic in the same
	// order, so with identical rank counts the checksums must match to
	// the bit.
	cfg := testConfig()
	ref := checksumsOf(runVariant(t, cfg, 3, RunMPIOnly, nil))
	if t.Failed() {
		return
	}
	if len(ref) == 0 {
		t.Fatal("no checksums validated")
	}
	for name, run := range variants {
		got := checksumsOf(runVariant(t, cfg, 3, run, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d checksum values, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum value %d = %v, want bit-identical %v", name, i, got[i], ref[i])
			}
		}
	}
}

func TestDataFlowOptionVariantsAgree(t *testing.T) {
	base := testConfig()
	ref := checksumsOf(runVariant(t, base, 3, RunDataFlow, nil))
	if t.Failed() {
		return
	}
	mutants := map[string]func(*Config){
		"blocking-tampi":   func(c *Config) { c.BlockingTAMPI = true },
		"separate-buffers": func(c *Config) { c.SeparateBuffers = true },
		"single-worker":    func(c *Config) { c.Workers = 1 },
		"many-workers":     func(c *Config) { c.Workers = 4 },
	}
	for name, mutate := range mutants {
		cfg := testConfig()
		mutate(&cfg)
		got := checksumsOf(runVariant(t, cfg, 3, RunDataFlow, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d checksum values, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum %d = %v, want %v", name, i, got[i], ref[i])
			}
		}
	}
}

func TestRankCountsAgreeWithinTolerance(t *testing.T) {
	// Different rank counts change the reduction tree, so sums may
	// differ in the last bits but no further.
	cfg := testConfig()
	ref := checksumsOf(runVariant(t, cfg, 1, RunMPIOnly, nil))
	if t.Failed() {
		return
	}
	for _, ranks := range []int{2, 4, 5} {
		got := checksumsOf(runVariant(t, cfg, ranks, RunMPIOnly, nil))
		if t.Failed() {
			return
		}
		if len(got) != len(ref) {
			t.Fatalf("%d ranks: %d values, want %d", ranks, len(got), len(ref))
		}
		for i := range ref {
			if diff := math.Abs(got[i] - ref[i]); diff > 1e-9*math.Abs(ref[i]) {
				t.Errorf("%d ranks: checksum %d = %v, want %v", ranks, i, got[i], ref[i])
			}
		}
	}
}

// TestArenaLeakFree: after a full run of each variant every buffer taken
// from the world's arena must be back (tile storage, receive slabs,
// message leases, checksum slots, scratches).
func TestArenaLeakFree(t *testing.T) {
	for name, run := range variants {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			w := mpi.NewWorld(cluster.MustNew(1, 3, 1), simnet.None())
			w.Arena().SetDebug(true) // any double Put panics at the fault
			err := w.Run(func(c *mpi.Comm) {
				if _, err := run(cfg, c, nil); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			st := w.Arena().Stats()
			if st.Live != 0 || st.LeasesLive != 0 {
				t.Fatalf("arena leak after %s run: %+v", name, st)
			}
			if st.Gets != st.Puts {
				t.Fatalf("unbalanced arena traffic after %s run: %+v", name, st)
			}
			if st.Gets == 0 {
				t.Fatalf("arena unused by %s run; the message path should pool", name)
			}
		})
	}
}

// TestHarnessJobIntegration proves the harness runs HYDRO purely through
// the driver registry — no application-specific code paths.
func TestHarnessJobIntegration(t *testing.T) {
	for _, v := range harness.Variants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			m, err := harness.Run(harness.RunSpec{
				Nodes: 1, RanksPerNode: 3, CoresPerRank: 2,
				Net: simnet.None(), Job: Job(testConfig()), Variant: v,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.Ranks != 3 || m.Flops <= 0 || m.Total <= 0 {
				t.Errorf("metrics not populated: %+v", m)
			}
			if len(m.Checksums) != 4 {
				t.Errorf("validated %d checksum stages, want 4", len(m.Checksums))
			}
			if m.FinalBlocks != 16 {
				t.Errorf("FinalBlocks = %d, want the 16 tiles", m.FinalBlocks)
			}
			if v == harness.DataFlow && m.Tasks == 0 {
				t.Error("data-flow run spawned no tasks")
			}
		})
	}
}

// TestHydroChaosChecksumsMatchFaultFree extends the chaos suite to the
// second application: under the default seeded fault schedule every
// variant must finish with checksums bit-identical to its fault-free run.
func TestHydroChaosChecksumsMatchFaultFree(t *testing.T) {
	res := mpi.Resilience{RetryTimeout: 2 * time.Millisecond, MaxRetries: 20}
	spec := func(v harness.Variant, faults *simnet.Faults) harness.RunSpec {
		return harness.RunSpec{
			Nodes: 2, RanksPerNode: 2, CoresPerRank: 2,
			Net: simnet.None(), Job: Job(testConfig()), Variant: v,
			Chaos: faults, Resilience: res,
		}
	}
	for _, v := range harness.Variants {
		v := v
		t.Run(string(v), func(t *testing.T) {
			t.Parallel()
			base, err := harness.Run(spec(v, nil))
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			faults := simnet.DefaultFaults(321)
			m, err := harness.Run(spec(v, &faults))
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			if m.Faults.Total() == 0 {
				t.Fatal("default schedule injected nothing; the run proved nothing")
			}
			if len(m.Checksums) != len(base.Checksums) {
				t.Fatalf("chaos run passed %d checksum stages, fault-free %d",
					len(m.Checksums), len(base.Checksums))
			}
			for i := range base.Checksums {
				for j := range base.Checksums[i] {
					if math.Float64bits(m.Checksums[i][j]) != math.Float64bits(base.Checksums[i][j]) {
						t.Fatalf("checksum[%d][%d] = %v under faults, want %v (bit-identical)",
							i, j, m.Checksums[i][j], base.Checksums[i][j])
					}
				}
			}
		})
	}
}

// TestSanitizedRunClean runs the data-flow variant under amrsan
// explicitly (the chaos/AMRSAN suites exercise it via the environment
// hook as well): a correct taskification must produce zero findings.
func TestSanitizedRunClean(t *testing.T) {
	w := mpi.NewWorld(cluster.MustNew(1, 3, 1), simnet.None())
	san := sanitize.New(sanitize.Options{})
	san.Attach(w)
	cfg := testConfig()
	cfg.Sanitizer = san
	err := w.Run(func(c *mpi.Comm) {
		if _, err := RunDataFlow(cfg, c, nil); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range san.Finish() {
		t.Errorf("sanitizer finding: %v", r)
	}
}
