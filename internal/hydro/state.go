package hydro

import (
	"math"
	"sort"

	"miniamr/internal/driver"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/trace"
)

// seg describes one tile face inside an aggregated message: for a send it
// names the interior edge being packed, for a receive the ghost edge
// being filled. Both ends of a message enumerate tiles in the same global
// order, so the i-th send segment of a message always pairs with the i-th
// receive segment on the peer.
type seg struct {
	Tile int // tile id
	Side int // 0 = low edge (west/south), 1 = high edge (east/north)
}

// localCopy is a same-rank edge exchange: src's interior edge on srcSide
// fills dst's opposite ghost edge.
type localCopy struct {
	src, dst int
	srcSide  int
}

// hydroTag is the ghost-exchange tag of a direction; one aggregated
// message per peer and direction.
func hydroTag(dir int) int { return (dir + 1) << 20 }

// state is the per-rank simulation state shared by the three variants.
type state struct {
	cfg   *Config
	comm  *mpi.Comm
	rank  int
	rec   *trace.Recorder
	arena *membuf.Arena

	tnx, tny int     // tile interior extent
	stride   int     // tnx + 2, row stride of a tile plane
	plane    int     // (tny+2) * stride, one variable plane
	dx, dy   float64 // cell widths
	owner    []int   // tile id -> owning rank
	tiles    []int   // owned tile ids, ascending
	data     map[int][]float64

	// plans caches each direction's aggregated message plans and pooled
	// receive slabs (built once: the mesh never changes); locals are the
	// same-rank edge copies.
	plans  [2]driver.Plans[seg]
	locals [2][]localCopy

	oracle driver.Oracle
	dt     float64 // current CFL timestep, set by BeginStep
	flops  int64
}

// newState builds the decomposition, fills the initial condition and
// derives the communication plans. cfg must be validated.
func newState(cfg *Config, c *mpi.Comm, rec *trace.Recorder) *state {
	s := &state{
		cfg:    cfg,
		comm:   c,
		rank:   c.Rank(),
		rec:    rec,
		arena:  c.World().Arena(),
		tnx:    cfg.NX / cfg.TilesX,
		tny:    cfg.NY / cfg.TilesY,
		dx:     1.0 / float64(cfg.NX),
		dy:     1.0 / float64(cfg.NY),
		data:   make(map[int][]float64),
		oracle: driver.Oracle{Tolerance: cfg.ChecksumTolerance},
	}
	s.stride = s.tnx + 2
	s.plane = (s.tny + 2) * s.stride

	// Contiguous tile ranges per rank; the map is replicated so every
	// rank derives identical plans without communicating.
	tileCount := cfg.TilesX * cfg.TilesY
	ranks := c.Size()
	s.owner = make([]int, tileCount)
	for r := 0; r < ranks; r++ {
		for t := r * tileCount / ranks; t < (r+1)*tileCount/ranks; t++ {
			s.owner[t] = r
		}
	}
	for t, r := range s.owner {
		if r == s.rank {
			s.tiles = append(s.tiles, t)
			s.data[t] = s.arena.GetFloat64(hydroVars * s.plane)
			s.fillInitial(t)
		}
	}
	for dir := range s.plans {
		s.plans[dir].Init(s.arena)
	}
	s.buildPlans()
	return s
}

// close returns the pooled tile storage and receive slabs.
func (s *state) close() {
	for _, t := range s.tiles {
		s.arena.PutFloat64(s.data[t])
	}
	s.data = nil
	for dir := range s.plans {
		s.plans[dir].Close()
	}
}

// faceLen is the cells-per-variable length of one tile face normal to
// dir.
func (s *state) faceLen(dir int) int {
	if dir == 0 {
		return s.tny
	}
	return s.tnx
}

// hiNeighbor is the tile across t's high edge in dir, wrapping the
// periodic domain.
func (s *state) hiNeighbor(t, dir int) int {
	tx, ty := t%s.cfg.TilesX, t/s.cfg.TilesX
	if dir == 0 {
		return ty*s.cfg.TilesX + (tx+1)%s.cfg.TilesX
	}
	return ((ty+1)%s.cfg.TilesY)*s.cfg.TilesX + tx
}

// fillInitial writes the smooth periodic initial condition: a density
// and pressure ripple advected by a spatially varying bulk velocity.
func (s *state) fillInitial(t int) {
	u := s.data[t]
	g := s.cfg.Gamma
	tx, ty := t%s.cfg.TilesX, t/s.cfg.TilesX
	st, pl := s.stride, s.plane
	for j := 1; j <= s.tny; j++ {
		y := (float64(ty*s.tny+j-1) + 0.5) * s.dy
		for i := 1; i <= s.tnx; i++ {
			x := (float64(tx*s.tnx+i-1) + 0.5) * s.dx
			rho := 1 + 0.2*math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y)
			vx := 1 + 0.1*math.Sin(2*math.Pi*y)
			vy := 0.5 + 0.1*math.Cos(2*math.Pi*x)
			p := 1 + 0.1*math.Sin(2*math.Pi*x)*math.Sin(2*math.Pi*y)
			c0 := j*st + i
			u[varRho*pl+c0] = rho
			u[varMx*pl+c0] = rho * vx
			u[varMy*pl+c0] = rho * vy
			u[varE*pl+c0] = p/(g-1) + 0.5*rho*(vx*vx+vy*vy)
		}
	}
}

// buildPlans derives both directions' aggregated message plans and local
// copies. For every global tile t (ascending) the pair (t, hiNeighbor) is
// classified once; both endpoints of a message enumerate the same tile
// order, so segment lists pair index-by-index without negotiation, and
// peers are sorted so plan order is deterministic too.
func (s *state) buildPlans() {
	tileCount := s.cfg.TilesX * s.cfg.TilesY
	for dir := 0; dir < 2; dir++ {
		face := s.faceLen(dir)
		sendSegs := make(map[int][]seg)
		recvSegs := make(map[int][]seg)
		for t := 0; t < tileCount; t++ {
			nb := s.hiNeighbor(t, dir)
			ot, on := s.owner[t], s.owner[nb]
			switch {
			case ot == s.rank && on == s.rank:
				s.locals[dir] = append(s.locals[dir],
					localCopy{src: t, dst: nb, srcSide: 1},
					localCopy{src: nb, dst: t, srcSide: 0})
			case ot == s.rank:
				// t's high edge goes out; the peer's reply fills t's
				// high ghost.
				sendSegs[on] = append(sendSegs[on], seg{Tile: t, Side: 1})
				recvSegs[on] = append(recvSegs[on], seg{Tile: t, Side: 1})
			case on == s.rank:
				sendSegs[ot] = append(sendSegs[ot], seg{Tile: nb, Side: 0})
				recvSegs[ot] = append(recvSegs[ot], seg{Tile: nb, Side: 0})
			}
		}
		peers := make([]int, 0, len(sendSegs))
		for p := range sendSegs {
			peers = append(peers, p)
		}
		sort.Ints(peers)
		for _, p := range peers {
			s.plans[dir].AddSend(driver.Plan[seg]{
				Peer: p, Tag: hydroTag(dir),
				Cells: len(sendSegs[p]) * face, Segs: sendSegs[p],
			})
			s.plans[dir].AddRecv(driver.Plan[seg]{
				Peer: p, Tag: hydroTag(dir),
				Cells: len(recvSegs[p]) * face, Segs: recvSegs[p],
			}, hydroVars)
		}
	}
}

// segBuf is segment i's section of a message payload.
func (s *state) segBuf(dir int, buf []float64, i int) []float64 {
	n := s.faceLen(dir) * hydroVars
	return buf[i*n : (i+1)*n]
}

// packSeg copies one tile's interior edge into a message section,
// variable-major.
func (s *state) packSeg(dir int, sg seg, dst []float64) {
	u := s.data[sg.Tile]
	st, pl := s.stride, s.plane
	if dir == 0 {
		i := 1
		if sg.Side == 1 {
			i = s.tnx
		}
		for v := 0; v < hydroVars; v++ {
			for j := 1; j <= s.tny; j++ {
				dst[v*s.tny+j-1] = u[v*pl+j*st+i]
			}
		}
		return
	}
	j := 1
	if sg.Side == 1 {
		j = s.tny
	}
	for v := 0; v < hydroVars; v++ {
		copy(dst[v*s.tnx:(v+1)*s.tnx], u[v*pl+j*st+1:v*pl+j*st+1+s.tnx])
	}
}

// unpackSeg fills one tile's ghost edge from a message section.
func (s *state) unpackSeg(dir int, sg seg, src []float64) {
	u := s.data[sg.Tile]
	st, pl := s.stride, s.plane
	if dir == 0 {
		i := 0
		if sg.Side == 1 {
			i = s.tnx + 1
		}
		for v := 0; v < hydroVars; v++ {
			for j := 1; j <= s.tny; j++ {
				u[v*pl+j*st+i] = src[v*s.tny+j-1]
			}
		}
		return
	}
	j := 0
	if sg.Side == 1 {
		j = s.tny + 1
	}
	for v := 0; v < hydroVars; v++ {
		copy(u[v*pl+j*st+1:v*pl+j*st+1+s.tnx], src[v*s.tnx:(v+1)*s.tnx])
	}
}

// packMessage and unpackMessage walk a whole plan's segments.
func (s *state) packMessage(dir int, segs []seg, buf []float64) {
	for i, sg := range segs {
		s.packSeg(dir, sg, s.segBuf(dir, buf, i))
	}
}

func (s *state) unpackMessage(dir int, segs []seg, buf []float64) {
	for i, sg := range segs {
		s.unpackSeg(dir, sg, s.segBuf(dir, buf, i))
	}
}

// copyLocal performs one same-rank edge exchange: src's interior edge on
// srcSide into dst's opposite ghost edge. Interior reads and ghost writes
// are disjoint, so copies never race with each other.
func (s *state) copyLocal(dir int, lc localCopy) {
	src, dst := s.data[lc.src], s.data[lc.dst]
	st, pl := s.stride, s.plane
	if dir == 0 {
		si, gi := 1, s.tnx+1
		if lc.srcSide == 1 {
			si, gi = s.tnx, 0
		}
		for v := 0; v < hydroVars; v++ {
			for j := 1; j <= s.tny; j++ {
				dst[v*pl+j*st+gi] = src[v*pl+j*st+si]
			}
		}
		return
	}
	sj, gj := 1, s.tny+1
	if lc.srcSide == 1 {
		sj, gj = s.tny, 0
	}
	for v := 0; v < hydroVars; v++ {
		copy(dst[v*pl+gj*st+1:v*pl+gj*st+1+s.tnx], src[v*pl+sj*st+1:v*pl+sj*st+1+s.tnx])
	}
}

// scratchLen sizes the per-worker flux scratch for the larger sweep
// direction.
func scratchLen(cfg *Config) int {
	mx := cfg.NX / cfg.TilesX
	if n := cfg.NY / cfg.TilesY; n > mx {
		mx = n
	}
	return hydroVars * (mx + 1)
}

// reduceAndValidate folds the rank-local conserved sums into the global
// checksum and feeds the cross-variant oracle. local is a pooled buffer
// owned by this call.
//
//amr:det
func (s *state) reduceAndValidate(local []float64) error {
	global, err := s.comm.AllreduceFloat64(local, mpi.Sum)
	s.arena.PutFloat64(local)
	if err != nil {
		return err
	}
	return s.oracle.Accept(global)
}

// reduceWave resolves the global CFL timestep from a rank-local maximum
// wave speed.
func (s *state) reduceWave(wave float64) error {
	local := s.arena.GetFloat64(1)
	local[0] = wave
	global, err := s.comm.AllreduceFloat64(local, mpi.Max)
	s.arena.PutFloat64(local)
	if err != nil {
		return err
	}
	s.dt = s.cfg.CFL / global[0]
	return nil
}
