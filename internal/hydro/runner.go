package hydro

import (
	"encoding/json"
	"fmt"
	"time"

	"miniamr/internal/driver"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/task"
	"miniamr/internal/trace"
)

func init() {
	driver.Register("hydro", driver.Variants...)
}

// Result is the driver skeleton's per-rank result record.
type Result = driver.Result

// runMain executes the HYDRO main loop over a stage set: two
// dimension-split sweep stages per timestep over the single all-variables
// group, a CFL reduction opening each step, periodic checksums, no
// refinement.
func runMain(s *state, h driver.Hooks) (Result, error) {
	start := time.Now()
	loop := driver.Loop{
		Timesteps:         s.cfg.Timesteps,
		StagesPerTimestep: 2,
		ChecksumEvery:     s.cfg.ChecksumEvery,
		Groups:            [][2]int{{0, hydroVars}},
	}
	if _, err := loop.Run(h); err != nil {
		return Result{}, err
	}
	return Result{
		TotalTime:   time.Since(start),
		Flops:       s.flops,
		Checksums:   s.oracle.History,
		FinalBlocks: len(s.tiles),
		Comm:        s.comm.Stats(),
	}, nil
}

// RunMPIOnly executes HYDRO with the reference MPI-only strategy.
func RunMPIOnly(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := newState(&cfg, c, rec)
	d := &serialDriver{s: s, eng: driver.NewSerialEngine(s.arena, scratchLen(&cfg))}
	res, err := runMain(s, d)
	if err != nil {
		return Result{}, err
	}
	d.eng.Close()
	s.close()
	return res, nil
}

// RunForkJoin executes HYDRO with the hybrid MPI+OpenMP fork-join
// strategy.
func RunForkJoin(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := newState(&cfg, c, rec)
	eng := driver.NewForkJoinEngine(s.arena, cfg.Workers, scratchLen(&cfg), false)
	defer eng.ClosePool()
	d := &fjDriver{s: s, eng: eng}
	res, err := runMain(s, d)
	if err != nil {
		return Result{}, err
	}
	eng.Close()
	s.close()
	return res, nil
}

// RunDataFlow executes HYDRO with the paper's hybrid TAMPI data-flow
// strategy.
func RunDataFlow(cfg Config, c *mpi.Comm, rec *trace.Recorder) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := newState(&cfg, c, rec)
	var obs task.Observer
	if cfg.TaskObserver != nil {
		obs = cfg.TaskObserver(c.Rank())
	}
	g, err := driver.NewGraphEngine(driver.GraphOptions{
		Comm:       c,
		Recorder:   rec,
		Workers:    cfg.Workers,
		Sanitizer:  cfg.Sanitizer,
		Observer:   obs,
		ScratchLen: scratchLen(&cfg),
	})
	if err != nil {
		return Result{}, err
	}
	d := &dfDriver{s: s, g: g}
	res, err := runMain(s, d)
	if err != nil {
		return Result{}, err
	}
	res.TaskCount = g.SpawnCount()
	g.Close()
	s.close()
	return res, nil
}

// Job packages a HYDRO configuration as a driver.Job for the harness.
func Job(cfg Config) driver.Job { return job{cfg: cfg} }

// The decoder lets a multi-process child rebuild the job from the JSON
// the parent shipped (see driver.EncodeJob / DecodeJob).
func init() {
	driver.RegisterDecoder("hydro", func(cfgJSON []byte) (driver.Job, error) {
		var cfg Config
		if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
			return nil, fmt.Errorf("hydro: decoding wire config: %w", err)
		}
		return Job(cfg), nil
	})
}

type job struct{ cfg Config }

func (j job) App() string { return "hydro" }

// Config exposes the configuration for wire encoding (driver.ConfigJob).
func (j job) Config() any { return j.cfg }

// Bind resolves a variant to its entry point with the harness-owned
// settings applied: workers overrides the per-rank core count and san,
// when non-nil, attaches the runtime sanitizer.
func (j job) Bind(v driver.Variant, workers int, san *sanitize.Sanitizer) (driver.Program, error) {
	cfg := j.cfg
	cfg.Workers = workers
	if san != nil {
		cfg.Sanitizer = san
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var run func(Config, *mpi.Comm, *trace.Recorder) (Result, error)
	switch v {
	case driver.MPIOnly:
		run = RunMPIOnly
	case driver.ForkJoin:
		run = RunForkJoin
	case driver.DataFlow:
		run = RunDataFlow
	default:
		return nil, fmt.Errorf("hydro: unknown variant %q (known: %v)", v, driver.Variants)
	}
	return func(c *mpi.Comm, rec *trace.Recorder) (driver.Result, error) {
		return run(cfg, c, rec)
	}, nil
}
