package hydro

import "math"

// Tile storage layout: variable-major planes of (tny+2)x(tnx+2) cells
// with a one-cell ghost frame. idx(v,j,i) = v*plane + j*stride + i with
// stride = tnx+2, plane = (tny+2)*stride; interior cells are
// j in [1,tny], i in [1,tnx].

// Conserved variable indices.
const (
	varRho = iota // density
	varMx         // x momentum
	varMy         // y momentum
	varE          // total energy
)

// flux evaluates the Rusanov (local Lax-Friedrichs) interface flux
// between the cells at linear offsets il and ir of one tile, along the
// axis whose momentum plane is mn (varMx for X sweeps, varMy for Y
// sweeps; mt is the transverse momentum). The four flux components land
// in out. The arithmetic is a fixed serial expression, so every variant
// produces bit-identical updates regardless of tile visit order.
func (s *state) flux(u []float64, il, ir, mn, mt int, out *[hydroVars]float64) {
	g := s.cfg.Gamma
	pl := s.plane

	rl := u[varRho*pl+il]
	nl := u[mn*pl+il]
	tl := u[mt*pl+il]
	el := u[varE*pl+il]
	vl := nl / rl
	wl := tl / rl
	pwl := (g - 1) * (el - 0.5*(nl*vl+tl*wl))
	cl := math.Sqrt(g * pwl / rl)

	rr := u[varRho*pl+ir]
	nr := u[mn*pl+ir]
	tr := u[mt*pl+ir]
	er := u[varE*pl+ir]
	vr := nr / rr
	wr := tr / rr
	pwr := (g - 1) * (er - 0.5*(nr*vr+tr*wr))
	cr := math.Sqrt(g * pwr / rr)

	a := math.Abs(vl) + cl
	if ar := math.Abs(vr) + cr; ar > a {
		a = ar
	}

	out[varRho] = 0.5*(nl+nr) - 0.5*a*(rr-rl)
	fn := 0.5*(nl*vl+pwl+nr*vr+pwr) - 0.5*a*(nr-nl)
	ft := 0.5*(tl*vl+tr*vr) - 0.5*a*(tr-tl)
	if mn == varMx {
		out[varMx], out[varMy] = fn, ft
	} else {
		out[varMy], out[varMx] = fn, ft
	}
	out[varE] = 0.5*((el+pwl)*vl+(er+pwr)*vr) - 0.5*a*(er-el)
}

// sweepX applies one X-direction Godunov update to a tile in place. flux
// is a scratch buffer of at least 4*(tnx+1) float64s (an engine scratch);
// each row's interface fluxes are computed from the pre-update row before
// the row is written, and rows are independent.
func (s *state) sweepX(u, flux []float64) {
	nx, ny := s.tnx, s.tny
	st, pl := s.stride, s.plane
	dtdx := s.dt / s.dx
	var f [hydroVars]float64
	for j := 1; j <= ny; j++ {
		row := j * st
		for k := 0; k <= nx; k++ {
			s.flux(u, row+k, row+k+1, varMx, varMy, &f)
			for v := 0; v < hydroVars; v++ {
				flux[v*(nx+1)+k] = f[v]
			}
		}
		for v := 0; v < hydroVars; v++ {
			base := v*pl + row
			fb := v * (nx + 1)
			for i := 1; i <= nx; i++ {
				u[base+i] -= dtdx * (flux[fb+i] - flux[fb+i-1])
			}
		}
	}
}

// sweepY applies one Y-direction update; flux needs 4*(tny+1) float64s.
// Columns are independent and each column's fluxes come from the
// pre-update column.
func (s *state) sweepY(u, flux []float64) {
	nx, ny := s.tnx, s.tny
	st, pl := s.stride, s.plane
	dtdy := s.dt / s.dy
	var f [hydroVars]float64
	for i := 1; i <= nx; i++ {
		for k := 0; k <= ny; k++ {
			s.flux(u, k*st+i, (k+1)*st+i, varMy, varMx, &f)
			for v := 0; v < hydroVars; v++ {
				flux[v*(ny+1)+k] = f[v]
			}
		}
		for v := 0; v < hydroVars; v++ {
			base := v*pl + i
			fb := v * (ny + 1)
			for j := 1; j <= ny; j++ {
				u[base+j*st] -= dtdy * (flux[fb+j] - flux[fb+j-1])
			}
		}
	}
}

// sweep dispatches a tile update for the stage's direction.
func (s *state) sweep(dir int, u, flux []float64) {
	if dir == 0 {
		s.sweepX(u, flux)
	} else {
		s.sweepY(u, flux)
	}
}

// maxWave returns the tile's maximum characteristic speed scaled by the
// cell widths, max((|vx|+c)/dx, (|vy|+c)/dy) over the interior — the
// quantity whose global maximum fixes the CFL timestep. Maxima are
// order-independent, so the reduction is bit-deterministic under any
// parallel schedule.
func (s *state) maxWave(u []float64) float64 {
	g := s.cfg.Gamma
	st, pl := s.stride, s.plane
	wave := 0.0
	for j := 1; j <= s.tny; j++ {
		for i := 1; i <= s.tnx; i++ {
			c0 := j*st + i
			rho := u[varRho*pl+c0]
			mx := u[varMx*pl+c0]
			my := u[varMy*pl+c0]
			e := u[varE*pl+c0]
			vx := mx / rho
			vy := my / rho
			p := (g - 1) * (e - 0.5*(mx*vx+my*vy))
			c := math.Sqrt(g * p / rho)
			if w := (math.Abs(vx) + c) / s.dx; w > wave {
				wave = w
			}
			if w := (math.Abs(vy) + c) / s.dy; w > wave {
				wave = w
			}
		}
	}
	return wave
}

// tileSums accumulates the tile's interior sum of each conserved variable
// into out (overwritten), in fixed row-major order.
func (s *state) tileSums(u []float64, out []float64) {
	st, pl := s.stride, s.plane
	for v := 0; v < hydroVars; v++ {
		sum := 0.0
		for j := 1; j <= s.tny; j++ {
			base := v*pl + j*st
			for i := 1; i <= s.tnx; i++ {
				sum += u[base+i]
			}
		}
		out[v] = sum
	}
}

// sweepFlops is the deterministic flop count of one tile sweep: ~34 per
// interface flux plus 2 per cell-variable update.
func (s *state) sweepFlops(dir int) int64 {
	cells := int64(s.tnx) * int64(s.tny)
	interfaces := cells + int64(s.faceLen(dir))
	return interfaces*34 + cells*hydroVars*2
}

// waveFlops is the deterministic flop count of one tile's CFL scan.
func (s *state) waveFlops() int64 {
	return int64(s.tnx) * int64(s.tny) * 14
}
