package mpi

import (
	"fmt"

	"miniamr/internal/cluster"
	"miniamr/internal/membuf"
	"miniamr/internal/simnet"
)

// Transport carries messages to ranks hosted outside this process. The
// in-process fast path never touches it: a World built with NewWorld hosts
// every rank locally and keeps its transport nil, so the matching engine's
// hot paths pay exactly one pointer check for the feature. A World built
// with NewWorldPart hosts a contiguous rank range and routes every send
// whose destination lies outside that range through the Transport.
//
// Ownership contract: Send and SendAck borrow their arguments for the
// duration of the call — the payload lease stays owned by the caller
// (the plain path releases it right after Send returns; the reliable
// path's outbox keeps it until the ack arrives). A transport therefore
// serialises the lease synchronously (straight into its socket writes)
// and must not retain a reference past return.
//
// Inbound traffic enters the world through RemoteDeliver /
// RemoteDeliverSeq / RemoteAck, with payload leases drawn from this
// world's arena; the matching engine releases them after copy-out,
// exactly as for local traffic.
type Transport interface {
	// Send writes one delivery attempt of a message from local rank src to
	// remote rank dst. seq is the reliable-path sequence number of the
	// (src, dst) pair and reliable selects the receiving side's path:
	// false delivers straight to the matching engine (the transport's own
	// ordering guarantee stands in for sequence numbers), true routes
	// through the dedup/reorder layer of reliable.go. The lease is
	// borrowed: the caller releases it.
	Send(src, dst, tag, seq int, reliable bool, pay *membuf.Lease) error
	// SendAck routes a reliable-path acknowledgement of sequence number
	// seq on the (src, dst) pair back to the process hosting src.
	SendAck(src, dst, seq int) error
	// Close tears the transport down. In-flight reads may fail afterwards;
	// Close is only called once every local rank has returned.
	Close() error
}

// NewWorldPart creates this process's slice of a multi-process job: the
// topology is global, ranks [lo, hi) are hosted here, and every message
// to a rank outside the range travels through tr. Run executes only the
// local ranks; Comm panics for remote ones. The peer processes must be
// built over the same topology with disjoint ranges covering [0, Ranks).
func NewWorldPart(topo *cluster.Topology, net simnet.Model, lo, hi int, tr Transport) (*World, error) {
	n := topo.Ranks()
	if lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("mpi: local rank range [%d,%d) invalid for %d ranks", lo, hi, n)
	}
	if (lo > 0 || hi < n) && tr == nil {
		return nil, fmt.Errorf("mpi: partial world [%d,%d) of %d ranks needs a transport", lo, hi, n)
	}
	w := &World{topo: topo, net: net, arena: membuf.New(), lo: lo, hi: hi, transport: tr}
	w.comms = make([]*Comm, n)
	for r := lo; r < hi; r++ {
		w.comms[r] = &Comm{world: w, rank: r, box: newMailbox()}
	}
	return w, nil
}

// LocalRange returns the rank range [lo, hi) hosted by this process.
// A single-process world spans all ranks.
func (w *World) LocalRange() (lo, hi int) { return w.lo, w.hi }

// IsLocal reports whether the given rank is hosted in this process.
func (w *World) IsLocal(rank int) bool { return rank >= w.lo && rank < w.hi }

// Transport returns the attached wire transport, or nil for an
// in-process world.
func (w *World) Transport() Transport { return w.transport }

// RemoteDeliver is the transport's inbound entry point for a plain
// (non-reliable) message: it hands the payload to local rank dst's
// matching engine. Ownership of pay transfers to the engine, which
// releases it into this world's arena after copy-out. Calls for one
// (src, dst) pair must be made in wire order — the transport's stream
// order is what carries MPI's non-overtaking guarantee across the wire.
func (w *World) RemoteDeliver(src, dst, tag int, pay *membuf.Lease) {
	c := w.localComm(dst)
	if w.mon != nil {
		w.mon.MessageSent(src, dst, tag) // the send-side hook fires where the message materialises
	}
	c.box.deliver(newMessage(src, tag, pay))
}

// RemoteDeliverSeq is RemoteDeliver for the reliable (chaos) path: the
// message enters the dedup/reorder layer under its sequence number and
// the ack travels back through the transport.
func (w *World) RemoteDeliverSeq(src, dst, tag, seq int, pay *membuf.Lease) {
	c := w.localComm(dst)
	if c.rel == nil {
		panic("mpi: sequenced wire delivery on a world without chaos enabled")
	}
	c.arrive(src, seq, tag, pay)
}

// RemoteAck is the transport's inbound entry point for a reliable-path
// acknowledgement: local rank src's outbox drops (src, dst, seq).
func (w *World) RemoteAck(src, dst, seq int) {
	if !w.IsLocal(src) {
		panic(fmt.Sprintf("mpi: wire ack for rank %d, which is not hosted here", src))
	}
	w.ackLocal(src, dst, seq)
}

// localComm returns the comm of a rank that must be hosted here.
func (w *World) localComm(rank int) *Comm {
	if rank < 0 || rank >= len(w.comms) || w.comms[rank] == nil {
		panic(fmt.Sprintf("mpi: wire delivery for rank %d, which is not hosted here", rank))
	}
	return w.comms[rank]
}
