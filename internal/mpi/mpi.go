// Package mpi implements the message-passing library the reproduction runs
// on: a faithful subset of MPI semantics with ranks hosted as goroutine
// groups inside a single process.
//
// Provided semantics, mirroring what miniAMR and the paper's taskification
// rely on:
//
//   - Point-to-point sends and receives with (source, tag) matching,
//     AnySource/AnyTag wildcards, and MPI's non-overtaking guarantee:
//     messages between a sender/receiver pair that match the same receive
//     are matched in the order they were sent.
//   - Non-blocking operations returning *Request, with Wait, Test, Waitany
//     and Waitall, plus completion callbacks (the hook the Task-Aware MPI
//     layer builds on).
//   - Collectives (Barrier, Bcast, Reduce, Allreduce, Gather, Allgatherv)
//     built over binomial trees in a reserved tag space.
//   - MPI_THREAD_MULTIPLE-style thread safety for point-to-point calls:
//     any goroutine of a rank may send and receive concurrently.
//     Collectives must be called in the same order on every rank and from
//     one goroutine per rank at a time, exactly as MPI requires.
//
// Transport is a memory copy with an optional simulated interconnect cost
// (see internal/simnet): a message becomes matchable at the receiver only
// after its simulated transfer time elapses, and its send request completes
// at the same moment. The zero-cost model delivers synchronously.
//
// Supported buffer element types are []float64, []int and []byte.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"miniamr/internal/cluster"
	"miniamr/internal/membuf"
	"miniamr/internal/simnet"
)

// Wildcards for Irecv/Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// MaxUserTag is the exclusive upper bound for application tags. Tags at or
// above this value are reserved for collectives.
const MaxUserTag = 1 << 24

// World is a virtual MPI job: a set of ranks that can exchange messages.
// A world normally hosts every rank of its topology in-process; a world
// built with NewWorldPart hosts only ranks [lo, hi) and reaches the rest
// through its wire transport (see transport.go).
type World struct {
	topo      *cluster.Topology
	net       simnet.Model
	comms     []*Comm
	arena     *membuf.Arena
	lo, hi    int       // local rank range; [0, Ranks) for in-process worlds
	transport Transport // nil for in-process worlds
	mon       Monitor   // optional sanitizer hooks; nil in normal runs

	// Chaos state (see reliable.go); all nil/zero unless EnableChaos ran.
	faults *simnet.Injector
	resil  Resilience
	fmon   FaultMonitor // monitor's optional fault-awareness, set by SetMonitor
	chaos  chaosCounters
}

// NewWorld creates a world with one communicator handle per rank described
// by the topology, charging message costs according to the model.
func NewWorld(topo *cluster.Topology, net simnet.Model) *World {
	n := topo.Ranks()
	w := &World{topo: topo, net: net, arena: membuf.New(), lo: 0, hi: n}
	w.comms = make([]*Comm, n)
	for r := 0; r < n; r++ {
		w.comms[r] = &Comm{world: w, rank: r, box: newMailbox()}
	}
	return w
}

// Topology returns the cluster topology the world was built on.
func (w *World) Topology() *cluster.Topology { return w.topo }

// Net returns the interconnect model in use.
func (w *World) Net() simnet.Model { return w.net }

// Arena returns the world's buffer arena. The transport draws its payload
// clones from it, and the application layers share it for scratch and
// ownership-transfer sends so a run's buffer traffic is accounted in one
// place.
func (w *World) Arena() *membuf.Arena { return w.arena }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Comm returns the communicator handle of the given rank, which must be
// hosted in this process.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= len(w.comms) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(w.comms)))
	}
	if w.comms[rank] == nil {
		panic(fmt.Sprintf("mpi: rank %d is hosted by another process (local range [%d,%d))", rank, w.lo, w.hi))
	}
	return w.comms[rank]
}

// Run executes body once per local rank, each on its own goroutine, and
// blocks until every local rank returns. A panic inside a rank is recovered
// and returned as an error naming the rank; if any rank panics while others
// are blocked in communication the job cannot terminate, matching the
// behaviour of a real MPI job whose peer died (tests will hit their timeout
// and dump goroutines). On a partial world only ranks [lo, hi) run here;
// the peer processes run the rest.
func (w *World) Run(body func(c *Comm)) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.comms))
	for r := w.lo; r < w.hi; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if w.mon != nil {
				defer w.mon.RankDone(rank)
			}
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			body(w.comms[rank])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's handle to the world. All point-to-point methods are
// safe for concurrent use by multiple goroutines of the rank.
type Comm struct {
	world *World
	rank  int
	box   *mailbox
	rel   *relComm // reliable-transport state; nil unless chaos is enabled

	// Collectives deliberately hold collMu across their blocking
	// sends/recvs: the lock serialises collectives within the rank while
	// progress is driven by the peer ranks' mailboxes, never by another
	// goroutine of this rank needing collMu.
	//amr:nolint conc-block-under-lock -- collectives block under collMu by design; peer ranks drive progress, no same-rank goroutine contends for it
	collMu  sync.Mutex // serialises collectives within the rank
	collSeq int        // per-rank collective sequence number

	sentMsgs  atomic.Int64 // point-to-point messages sent (user + internal)
	sentBytes atomic.Int64
}

// CommStats is a snapshot of a rank's send-side communication counters,
// the numbers behind miniAMR's performance report.
type CommStats struct {
	// Messages is the number of point-to-point sends issued (collective
	// traffic included, since collectives are built on point-to-point).
	Messages int64
	// Bytes is the total payload volume of those sends.
	Bytes int64
}

// Stats returns the rank's communication counters so far.
func (c *Comm) Stats() CommStats {
	return CommStats{Messages: c.sentMsgs.Load(), Bytes: c.sentBytes.Load()}
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return len(c.world.comms) }

// World returns the world this communicator belongs to.
func (c *Comm) World() *World { return c.world }

// Status describes a completed receive.
type Status struct {
	Source int // rank the message came from
	Tag    int // tag the message carried
	Count  int // number of elements received
}
