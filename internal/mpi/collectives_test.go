package mpi

import (
	"math"
	"testing"
	"testing/quick"

	"miniamr/internal/cluster"
	"miniamr/internal/simnet"
)

// rankCounts exercises non-power-of-two sizes, which stress the binomial
// tree edge cases.
var rankCounts = []int{1, 2, 3, 4, 5, 7, 8, 13}

func TestBarrier(t *testing.T) {
	for _, p := range rankCounts {
		w := testWorld(t, p)
		err := w.Run(func(c *Comm) {
			for i := 0; i < 3; i++ {
				if err := c.Barrier(); err != nil {
					t.Errorf("p=%d barrier %d: %v", p, i, err)
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range rankCounts {
		for root := 0; root < p; root += max(1, p/3) {
			w := testWorld(t, p)
			err := w.Run(func(c *Comm) {
				buf := make([]float64, 4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float64(root*10 + i)
					}
				}
				if err := c.Bcast(buf, root); err != nil {
					t.Errorf("p=%d root=%d rank=%d: %v", p, root, c.Rank(), err)
					return
				}
				for i, v := range buf {
					if v != float64(root*10+i) {
						t.Errorf("p=%d root=%d rank=%d: buf[%d]=%v", p, root, c.Rank(), i, v)
						return
					}
				}
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		if err := c.Bcast([]int{0}, 9); err == nil {
			t.Error("Bcast with invalid root: want error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloat64Sum(t *testing.T) {
	for _, p := range rankCounts {
		w := testWorld(t, p)
		err := w.Run(func(c *Comm) {
			in := []float64{float64(c.Rank()), 1}
			out, err := c.AllreduceFloat64(in, Sum)
			if err != nil {
				t.Errorf("p=%d rank=%d: %v", p, c.Rank(), err)
				return
			}
			wantSum := float64(p*(p-1)) / 2
			if out[0] != wantSum || out[1] != float64(p) {
				t.Errorf("p=%d rank=%d: out=%v want [%v %v]", p, c.Rank(), out, wantSum, p)
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const p = 6
	w := testWorld(t, p)
	err := w.Run(func(c *Comm) {
		in := []int{c.Rank(), -c.Rank()}
		mx, err := c.AllreduceInt(in, Max)
		if err != nil {
			t.Errorf("max: %v", err)
			return
		}
		if mx[0] != p-1 || mx[1] != 0 {
			t.Errorf("max = %v, want [%d 0]", mx, p-1)
		}
		mn, err := c.AllreduceInt(in, Min)
		if err != nil {
			t.Errorf("min: %v", err)
			return
		}
		if mn[0] != 0 || mn[1] != -(p-1) {
			t.Errorf("min = %v, want [0 %d]", mn, -(p - 1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point reductions must produce bit-identical results on every
	// rank and across repeated runs for a fixed rank count: this underpins
	// the cross-variant checksum oracle.
	const p = 7
	vals := []float64{0.1, 0.2, 0.3, 1e-17, 1e17, -1e17, 0.7}
	run := func() []float64 {
		var results [p]float64
		w := testWorld(t, p)
		if err := w.Run(func(c *Comm) {
			out, err := c.AllreduceFloat64([]float64{vals[c.Rank()]}, Sum)
			if err != nil {
				t.Errorf("allreduce: %v", err)
				return
			}
			results[c.Rank()] = out[0]
		}); err != nil {
			t.Fatal(err)
		}
		for r := 1; r < p; r++ {
			if results[r] != results[0] {
				t.Fatalf("rank %d result %v != rank 0 result %v", r, results[r], results[0])
			}
		}
		return results[:]
	}
	a := run()
	b := run()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("run-to-run difference at rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAllgathervInt(t *testing.T) {
	for _, p := range rankCounts {
		w := testWorld(t, p)
		err := w.Run(func(c *Comm) {
			// Rank r contributes r elements: r, r, ..., so sizes differ,
			// including an empty contribution from rank 0.
			in := make([]int, c.Rank())
			for i := range in {
				in[i] = c.Rank()
			}
			data, counts, err := c.AllgathervInt(in)
			if err != nil {
				t.Errorf("p=%d rank=%d: %v", p, c.Rank(), err)
				return
			}
			if len(counts) != p {
				t.Errorf("p=%d: len(counts)=%d", p, len(counts))
				return
			}
			idx := 0
			for r := 0; r < p; r++ {
				if counts[r] != r {
					t.Errorf("p=%d: counts[%d]=%d, want %d", p, r, counts[r], r)
					return
				}
				for i := 0; i < r; i++ {
					if data[idx] != r {
						t.Errorf("p=%d: data[%d]=%d, want %d", p, idx, data[idx], r)
						return
					}
					idx++
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCollectivesInterleavedWithP2P(t *testing.T) {
	// Point-to-point traffic with user tags must not disturb collectives.
	const p = 4
	w := testWorld(t, p)
	err := w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		req, err := c.Irecv(make([]int, 1), prev, 0)
		if err != nil {
			t.Errorf("irecv: %v", err)
			return
		}
		out, err := c.AllreduceInt([]int{1}, Sum)
		if err != nil || out[0] != p {
			t.Errorf("allreduce amid p2p: %v %v", out, err)
		}
		if err := c.Send([]int{c.Rank()}, next, 0); err != nil {
			t.Errorf("send: %v", err)
		}
		if _, err := req.Wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManySequentialCollectives(t *testing.T) {
	const p = 5
	w := testWorld(t, p)
	err := w.Run(func(c *Comm) {
		for i := 0; i < 50; i++ {
			out, err := c.AllreduceInt([]int{i}, Sum)
			if err != nil || out[0] != i*p {
				t.Errorf("iter %d: %v %v", i, out, err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesUnderNetworkModel(t *testing.T) {
	topo := cluster.MustNew(2, 2, 1)
	w := NewWorld(topo, simnet.Default())
	err := w.Run(func(c *Comm) {
		out, err := c.AllreduceFloat64([]float64{1}, Sum)
		if err != nil || out[0] != 4 {
			t.Errorf("allreduce: %v %v", out, err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(Sum) over random int vectors equals the serial sum,
// for random rank counts.
func TestPropertyAllreduceMatchesSerial(t *testing.T) {
	f := func(raw []int8, pRaw uint8) bool {
		p := int(pRaw)%6 + 1
		n := len(raw)%5 + 1
		contrib := make([][]int, p)
		want := make([]int, n)
		for r := 0; r < p; r++ {
			contrib[r] = make([]int, n)
			for i := 0; i < n; i++ {
				v := 0
				if len(raw) > 0 {
					v = int(raw[(r*n+i)%len(raw)])
				}
				contrib[r][i] = v
				want[i] += v
			}
		}
		w := NewWorld(cluster.MustNew(1, p, 1), simnet.None())
		ok := true
		err := w.Run(func(c *Comm) {
			out, err := c.AllreduceInt(contrib[c.Rank()], Sum)
			if err != nil {
				ok = false
				return
			}
			for i := range out {
				if out[i] != want[i] {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if Sum.String() != "Sum" || Max.String() != "Max" || Min.String() != "Min" {
		t.Error("Op.String mismatch")
	}
}
