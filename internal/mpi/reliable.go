package mpi

import (
	"sync"
	"sync/atomic"
	"time"

	"miniamr/internal/membuf"
	"miniamr/internal/simnet"
)

// This file is the transport's resilience layer, active only when chaos
// is enabled on the world (World.EnableChaos). With faults in play the
// plain dispatch path of p2p.go is not enough: a dropped payload would
// wedge its receiver forever and a duplicated one would corrupt MPI's
// matching semantics. The reliable path therefore stamps every primary
// message of a (src, dst) pair with a sequence number and runs a
// retransmit/ack protocol around the simulated fabric:
//
//   - The sender keeps the payload in a per-pair outbox until the
//     receiver acknowledges its sequence number, retransmitting on a
//     timeout with exponential backoff until a configurable retry budget
//     exhausts (at which point the link is declared dead and the fault
//     monitor told, so the amrsan watchdog can name it).
//   - The receiver runs per-pair dedup and reordering: duplicate
//     sequence numbers are discarded, out-of-order arrivals are parked
//     until the gap fills, and messages enter the matching engine in
//     exact sequence order. Per-pair FIFO matching — MPI's
//     non-overtaking guarantee — therefore survives drops, duplicates
//     and latency spikes without any driver change.
//   - Acks ride an out-of-band, reliable control path (a direct call in
//     this in-process transport); only the data path is lossy.
//
// Every delivery attempt carries a fresh clone of the payload so the
// receive side's copy-out/release discipline is unchanged; the outbox
// releases the original on ack. When chaos is off none of this exists:
// Comm.rel stays nil and dispatch keeps its zero-allocation fast path.
//
// Faults apply to primary transmissions only — the seeded schedule is
// then a pure function of the seed and the application's send counts
// (see internal/simnet/faults.go). The one exception is a permanently
// Cut link, which discards retransmissions too so the budget must
// exhaust.

// Resilience tunes the retransmit/ack protocol. The zero value selects
// defaults safe for the simulated fabric models.
type Resilience struct {
	// RetryTimeout is the wait before the first retransmission of an
	// unacknowledged message. Default 5ms, comfortably above the
	// simulated transfer times of the stock network models.
	RetryTimeout time.Duration
	// MaxRetries is how many retransmissions are attempted before the
	// link is declared dead. Default 10.
	MaxRetries int
	// Backoff multiplies the timeout after every retransmission.
	// Default 2.
	Backoff float64
}

func (r Resilience) withDefaults() Resilience {
	if r.RetryTimeout <= 0 {
		r.RetryTimeout = 5 * time.Millisecond
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 10
	}
	if r.Backoff < 1 {
		r.Backoff = 2
	}
	return r
}

// ChaosStats counts the resilience layer's recovery work.
type ChaosStats struct {
	// Retransmits is the number of retransmission attempts (including
	// attempts suppressed by a permanently cut link).
	Retransmits int64
	// DupsDiscarded is the number of duplicate deliveries suppressed by
	// sequence-number dedup (injected duplicates and spurious
	// retransmissions alike).
	DupsDiscarded int64
	// Reordered is the number of messages parked in a reorder buffer
	// because an earlier sequence number had not arrived yet.
	Reordered int64
	// Recovered is the number of messages whose primary transmission was
	// dropped and that a retransmission later delivered.
	Recovered int64
	// Abandoned is the number of messages given up on after the retry
	// budget exhausted (dead links only).
	Abandoned int64
}

// chaosCounters is the atomic backing store for ChaosStats. inflight is
// not a stat: it counts delivery-attempt goroutines that still hold
// payload clones (or wire references), so QuiesceReliable can wait for
// attempts whose outbox entry was already acked by a faster sibling —
// e.g. a spiked primary overtaken by its own retransmission.
type chaosCounters struct {
	retransmits, dupsDiscarded, reordered, recovered, abandoned atomic.Int64
	inflight                                                    atomic.Int64
}

// EnableChaos switches the world's transport onto the reliable path,
// injecting faults according to inj and recovering them with the given
// resilience parameters. It must be called before Run and before any
// traffic. A nil injector is a no-op.
func (w *World) EnableChaos(inj *simnet.Injector, r Resilience) {
	if inj == nil {
		return
	}
	if w.faults != nil {
		panic("mpi: EnableChaos called twice")
	}
	w.faults = inj
	w.resil = r.withDefaults()
	for _, c := range w.comms {
		if c == nil { // remote rank of a partial world
			continue
		}
		c.rel = newRelComm(len(w.comms))
	}
}

// ChaosEnabled reports whether the world runs the reliable chaos path.
func (w *World) ChaosEnabled() bool { return w.faults != nil }

// Faults returns the attached fault injector, or nil.
func (w *World) Faults() *simnet.Injector { return w.faults }

// ChaosStats snapshots the resilience counters.
func (w *World) ChaosStats() ChaosStats {
	return ChaosStats{
		Retransmits:   w.chaos.retransmits.Load(),
		DupsDiscarded: w.chaos.dupsDiscarded.Load(),
		Reordered:     w.chaos.reordered.Load(),
		Recovered:     w.chaos.recovered.Load(),
		Abandoned:     w.chaos.abandoned.Load(),
	}
}

// relComm is one rank's reliable-transport state: an outbox per
// destination and an inbox per source.
type relComm struct {
	stallN atomic.Int64 // per-rank send index driving stall injection
	out    []outPair
	in     []inPair
}

func newRelComm(n int) *relComm {
	rc := &relComm{out: make([]outPair, n), in: make([]inPair, n)}
	for i := range rc.out {
		rc.out[i].pending = make(map[int]*outEntry)
	}
	for i := range rc.in {
		rc.in[i].held = make(map[int]heldMsg)
	}
	return rc
}

// outEntry is one unacknowledged message held for retransmission.
type outEntry struct {
	seq, tag, count int
	bytes           int
	pay             *membuf.Lease // original payload; released on ack or give-up
	dropped         bool          // primary transmission was discarded
	attempts        int           // retransmissions so far
	timeout         time.Duration // next retransmit timeout (backed off)
	timer           *time.Timer
}

// outPair is the sender-side stream state of one (this rank -> dest)
// pair.
//
// Lock order: outPair.mu and inPair.mu are leaf locks — neither is ever
// held while acquiring the other (or any other lock), so no ordering
// between them needs to be imposed. Channel operations and mailbox
// delivery always happen after the pair lock is released: arrive drops
// inPair.mu before handing ready messages to deliver, and ackData
// releases payload leases only after unlocking (verified by conclint's
// lock-order and block-under-lock rules).
type outPair struct {
	mu      sync.Mutex
	nextSeq int
	pending map[int]*outEntry
}

// heldMsg is an out-of-order arrival parked until the gap before it
// fills.
type heldMsg struct {
	tag int
	pay *membuf.Lease
}

// inPair is the receiver-side stream state of one (src -> this rank)
// pair: dedup plus a reorder buffer that releases messages to the
// matching engine in exact sequence order.
type inPair struct {
	mu       sync.Mutex
	expected int
	held     map[int]heldMsg
	ready    []heldMsg // in-order, awaiting release to the mailbox
	draining bool      // a goroutine is releasing ready messages
}

// dispatchReliable is dispatch for chaos-enabled worlds. Ownership of
// pay passes to the outbox, which releases it on ack or give-up; every
// delivery attempt carries a clone.
func (c *Comm) dispatchReliable(pay *membuf.Lease, dest, tag, count int, req *Request) {
	w := c.world
	inj := w.faults

	// Rank stall: pause the sending rank, as if preempted, before the
	// message enters the transport.
	if d := inj.Stall(c.rank, int(c.rel.stallN.Add(1))-1); d > 0 {
		if w.fmon != nil {
			w.fmon.FaultInjected("stall", c.rank, -1, 0)
		}
		time.Sleep(d)
	}

	bytes := leaseBytes(pay)
	c.sentMsgs.Add(1)
	c.sentBytes.Add(int64(bytes))
	remote := w.transport != nil && !w.IsLocal(dest)
	if w.mon != nil && !remote {
		// For remote destinations the send-side hook fires at the receiving
		// process when the message is accepted (see Comm.arrive), keeping
		// each process's sent/delivered ledger balanced.
		w.mon.MessageSent(c.rank, dest, tag)
	}

	op := &c.rel.out[dest]
	op.mu.Lock()
	seq := op.nextSeq
	op.nextSeq++
	// The seeded schedule decides the primary transmission's fate.
	//amr:nolint conc-block-under-lock -- Injector.Send is a seeded decision lookup (drop/duplicate/cut), not a transport operation; it never blocks
	dec := inj.Send(w.topo.SameNode(c.rank, dest), c.rank, dest, seq)
	e := &outEntry{
		seq: seq, tag: tag, count: count, bytes: bytes,
		pay: pay, dropped: dec.Drop, timeout: w.resil.RetryTimeout,
	}
	op.pending[seq] = e
	var clones []*membuf.Lease
	attempts := 0
	if !dec.Drop {
		if remote {
			// Delivery attempts on the wire serialise straight from the
			// original lease — no per-attempt clone. The attempt goroutine
			// holds its own reference so an ack (or give-up) racing in
			// cannot recycle the buffer mid-write.
			attempts = 1
			if dec.Duplicate {
				attempts = 2
			}
			pay.Retain()
		} else {
			clones = append(clones, cloneLease(w.arena, pay))
			if dec.Duplicate {
				clones = append(clones, cloneLease(w.arena, pay))
			}
		}
	}
	e.timer = time.AfterFunc(e.timeout, func() { c.retransmit(dest, seq) })
	// Counted while the outbox entry is still visibly pending, so a
	// quiescence check can never observe an empty outbox before it sees
	// this attempt in flight.
	w.chaos.inflight.Add(1)
	op.mu.Unlock()

	if w.fmon != nil {
		switch {
		case dec.Cut:
			w.fmon.FaultInjected("cut", c.rank, dest, seq)
		case dec.Drop:
			w.fmon.FaultInjected("drop", c.rank, dest, seq)
		case dec.Duplicate:
			w.fmon.FaultInjected("duplicate", c.rank, dest, seq)
		case dec.Spike > 0:
			w.fmon.FaultInjected("spike", c.rank, dest, seq)
		}
	}

	// The send request completes when the primary attempt's (possibly
	// spiked) transfer time elapses, whether or not the fabric delivered
	// it — the payload was copied eagerly, so completion is a local
	// matter, exactly as for a buffered MPI send.
	st := Status{Source: c.rank, Tag: tag, Count: count}
	delay := c.delayFor(dest, bytes) + dec.Spike
	go func() {
		defer w.chaos.inflight.Add(-1)
		if delay > 0 {
			time.Sleep(delay)
		}
		if remote {
			for i := 0; i < attempts; i++ {
				c.wireSend(pay, dest, tag, seq, true)
			}
			if attempts > 0 {
				pay.Release()
			}
		} else {
			for _, cl := range clones {
				w.comms[dest].arrive(c.rank, seq, tag, cl)
			}
		}
		if req != nil {
			req.complete(st, nil)
		}
	}()
}

// retransmit is the outbox timer callback for (dest, seq): resend if
// still unacknowledged, or declare the link dead once the budget is
// spent. Retransmissions are never faulted by the seeded schedule; only
// a permanent cut discards them.
func (c *Comm) retransmit(dest, seq int) {
	w := c.world
	op := &c.rel.out[dest]
	op.mu.Lock()
	e := op.pending[seq]
	if e == nil {
		op.mu.Unlock()
		return // acked in the meantime
	}
	if e.attempts >= w.resil.MaxRetries {
		delete(op.pending, seq)
		pay := e.pay
		op.mu.Unlock()
		pay.Release()
		w.chaos.abandoned.Add(1)
		if w.fmon != nil {
			w.fmon.LinkDead(c.rank, dest)
		}
		return
	}
	e.attempts++
	e.timeout = time.Duration(float64(e.timeout) * w.resil.Backoff)
	remote := w.transport != nil && !w.IsLocal(dest)
	cut := w.faults.Cut(c.rank, dest)
	var clone *membuf.Lease
	if !cut && !remote {
		clone = cloneLease(w.arena, e.pay)
	}
	pay := e.pay
	if !cut && remote {
		pay.Retain() // the attempt goroutine's reference (see dispatchReliable)
	}
	e.timer = time.AfterFunc(e.timeout, func() { c.retransmit(dest, seq) })
	tag, bytes := e.tag, e.bytes
	if !cut {
		w.chaos.inflight.Add(1) // under the lock; see dispatchReliable
	}
	op.mu.Unlock()

	w.chaos.retransmits.Add(1)
	if cut {
		return // cut link: burn the attempt, the budget will exhaust
	}
	delay := c.delayFor(dest, bytes)
	go func() {
		defer w.chaos.inflight.Add(-1)
		if delay > 0 {
			time.Sleep(delay)
		}
		if remote {
			c.wireSend(pay, dest, tag, seq, true)
			pay.Release()
		} else {
			w.comms[dest].arrive(c.rank, seq, tag, clone)
		}
	}()
}

// arrive is the receiver-side entry point of one delivery attempt on the
// (src -> c.rank) pair. It dedups by sequence number, parks out-of-order
// arrivals, releases in-order messages to the matching engine through a
// single drainer (preserving exact sequence order), and acknowledges the
// arrival to the sender's outbox.
func (c *Comm) arrive(src, seq, tag int, pay *membuf.Lease) {
	w := c.world
	// Messages that crossed the wire fire the send-side monitor hook on
	// this process, in the release drain below (exactly once per accepted
	// message; dedup discards fire nothing), so the receiving process's
	// sent/delivered ledger balances; see dispatchReliable.
	fromWire := w.transport != nil && !w.IsLocal(src)
	ip := &c.rel.in[src]
	ip.mu.Lock()
	if _, dup := ip.held[seq]; dup || seq < ip.expected {
		ip.mu.Unlock()
		pay.Release()
		w.chaos.dupsDiscarded.Add(1)
		w.ackData(src, c.rank, seq)
		return
	}
	if seq > ip.expected {
		ip.held[seq] = heldMsg{tag: tag, pay: pay}
		ip.mu.Unlock()
		w.chaos.reordered.Add(1)
		w.ackData(src, c.rank, seq)
		return
	}
	// In order: queue this message plus every parked one it unblocks.
	ip.ready = append(ip.ready, heldMsg{tag: tag, pay: pay})
	ip.expected++
	for {
		h, ok := ip.held[ip.expected]
		if !ok {
			break
		}
		delete(ip.held, ip.expected)
		ip.ready = append(ip.ready, h)
		ip.expected++
	}
	if ip.draining {
		// Another goroutine is mid-release; it will pick these up. Not
		// releasing here keeps the mailbox seeing pair messages in exact
		// sequence order.
		ip.mu.Unlock()
		w.ackData(src, c.rank, seq)
		return
	}
	ip.draining = true
	for len(ip.ready) > 0 {
		batch := ip.ready
		ip.ready = nil
		ip.mu.Unlock()
		for _, m := range batch {
			if fromWire && w.mon != nil {
				// Wire messages fire the send-side hook here, exactly once
				// per accepted message and right before delivery, outside
				// the pair lock (see dispatchReliable).
				w.mon.MessageSent(src, c.rank, m.tag)
			}
			c.box.deliver(newMessage(src, m.tag, m.pay))
		}
		ip.mu.Lock()
	}
	ip.draining = false
	ip.mu.Unlock()
	w.ackData(src, c.rank, seq)
}

// ackData acknowledges sequence number seq of the (src -> dst) pair. When
// the sender is hosted by a peer process the ack crosses the wire as a
// control frame (and lands in RemoteAck over there); otherwise the local
// outbox is cleared directly. A failed wire ack is dropped, not fatal:
// ack loss is already part of the reliable path's model (the sender just
// retransmits and the dedup layer re-acks), and during teardown the ack
// for a spurious late retransmission may race the transport closing.
func (w *World) ackData(src, dst, seq int) {
	if w.transport != nil && !w.IsLocal(src) {
		_ = w.transport.SendAck(src, dst, seq)
		return
	}
	w.ackLocal(src, dst, seq)
}

// ackLocal clears (src, dst, seq) from local rank src's outbox: the entry
// is dropped, its retransmit timer stopped and the original payload
// released. Acks are idempotent (re-acks of an already-cleared entry are
// no-ops), which makes duplicate deliveries harmless on the control path
// too.
func (w *World) ackLocal(src, dst, seq int) {
	op := &w.comms[src].rel.out[dst]
	op.mu.Lock()
	e := op.pending[seq]
	if e == nil {
		op.mu.Unlock()
		return
	}
	delete(op.pending, seq)
	if e.timer != nil {
		e.timer.Stop()
	}
	pay, recovered := e.pay, e.dropped
	op.mu.Unlock()
	pay.Release()
	if recovered {
		w.chaos.recovered.Add(1)
	}
}

// QuiesceReliable waits until every local rank's outbox is empty — all
// sent messages acked (or abandoned) — and no delivery attempt is still
// in flight (a spiked attempt can outlive its own outbox entry when a
// retransmission overtakes it), polling until the timeout. It returns
// whether quiescence was reached. A multi-process chaos run calls it
// after Run and before tearing the transport down, so in-flight acks are
// not lost to a closing socket; the in-process harness calls it before
// the sanitizer's lease audit. On a world without chaos it returns true
// immediately.
func (w *World) QuiesceReliable(timeout time.Duration) bool {
	if w.faults == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		pending := int(w.chaos.inflight.Load())
		for _, c := range w.comms {
			if c == nil || c.rel == nil {
				continue
			}
			for i := range c.rel.out {
				op := &c.rel.out[i]
				op.mu.Lock()
				pending += len(op.pending)
				op.mu.Unlock()
			}
		}
		if pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// cloneLease copies a payload into a fresh arena lease, the per-attempt
// copy the reliable path delivers so the receive side's release
// discipline stays unchanged.
func cloneLease(a *membuf.Arena, pay *membuf.Lease) *membuf.Lease {
	switch pay.Kind() {
	case membuf.KindFloat64:
		l := a.LeaseFloat64(pay.Len())
		copy(l.Float64(), pay.Float64())
		return l
	case membuf.KindInt:
		l := a.LeaseInt(pay.Len())
		copy(l.Int(), pay.Int())
		return l
	default:
		l := a.LeaseByte(pay.Len())
		copy(l.Byte(), pay.Byte())
		return l
	}
}
