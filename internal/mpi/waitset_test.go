package mpi

import (
	"testing"
)

func TestWaitSetEmptyAndReset(t *testing.T) {
	ws := NewWaitSet()
	if ws.Len() != 0 {
		t.Fatalf("Len = %d, want 0", ws.Len())
	}
	// Reset of a set that never held a request is a no-op.
	ws.Reset()
	if ws.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", ws.Len())
	}
	// A zero-request round consumes nothing: Len is the loop bound, so a
	// `for i := 0; i < ws.Len(); i++ { ws.Next() }` round never calls Next.
	for i := 0; i < ws.Len(); i++ {
		t.Fatal("loop body must not run on an empty set")
	}
}

func TestWaitSetAlreadyCompletedRequest(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			req, err := c.Isend([]float64{1.5}, 1, 3)
			if err != nil {
				t.Errorf("isend: %v", err)
				return
			}
			if _, err := req.Wait(); err != nil {
				t.Errorf("wait: %v", err)
				return
			}
			// The request is already complete; Add must deliver it to
			// Next immediately instead of blocking forever.
			ws := NewWaitSet()
			ws.Add(req)
			idx, _, nerr := ws.Next()
			if nerr != nil {
				t.Errorf("next: %v", nerr)
			}
			if idx != 0 {
				t.Errorf("idx = %d, want 0", idx)
			}
		case 1:
			buf := make([]float64, 1)
			if _, err := c.Recv(buf, 0, 3); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitSetMixedCompletedAndPending(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			r1, err := c.Isend([]float64{1}, 1, 1)
			if err != nil {
				t.Errorf("isend 1: %v", err)
				return
			}
			if _, err := r1.Wait(); err != nil {
				t.Errorf("wait 1: %v", err)
				return
			}
			r2, err := c.Isend([]float64{2}, 1, 2)
			if err != nil {
				t.Errorf("isend 2: %v", err)
				return
			}
			ws := NewWaitSet()
			ws.Add(r1) // completed before joining the set
			ws.Add(r2) // may still be in flight
			seen := make(map[int]bool)
			for i := 0; i < ws.Len(); i++ {
				idx, _, nerr := ws.Next()
				if nerr != nil {
					t.Errorf("next: %v", nerr)
				}
				if seen[idx] {
					t.Errorf("index %d consumed twice", idx)
				}
				seen[idx] = true
			}
			if !seen[0] || !seen[1] {
				t.Errorf("seen = %v, want indices 0 and 1", seen)
			}
		case 1:
			buf := make([]float64, 1)
			if _, err := c.Recv(buf, 0, 1); err != nil {
				t.Errorf("recv 1: %v", err)
			}
			if _, err := c.Recv(buf, 0, 2); err != nil {
				t.Errorf("recv 2: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
