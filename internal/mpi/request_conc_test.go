package mpi

// Focused concurrency tests for the two synchronisation primitives the
// request path rests on: the lazily-created doneCh (racing Wait/Done
// against completion must never lose a wakeup or double-close) and the
// channel-backed chanMutex (acquire/release must stay balanced and
// mutually exclusive). These run under -race in `make race` and CI.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRequestDoneChConcurrentWaiters races many Wait and Done callers
// against a single completion: every waiter must observe the completed
// status and error, regardless of who created doneCh first.
func TestRequestDoneChConcurrentWaiters(t *testing.T) {
	const waiters = 16
	for round := 0; round < 50; round++ {
		r := newRequest()
		wantErr := errors.New("boom")
		var wg sync.WaitGroup
		var got atomic.Int32
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i%2 == 0 {
					st, err := r.Wait()
					if err != wantErr || st.Count != 7 {
						t.Errorf("Wait: st=%+v err=%v", st, err)
					}
				} else {
					<-r.Done()
					ok, st, err := r.Test()
					if !ok || err != wantErr || st.Count != 7 {
						t.Errorf("Done/Test: ok=%v st=%+v err=%v", ok, st, err)
					}
				}
				got.Add(1)
			}(i)
		}
		go r.complete(Status{Count: 7}, wantErr)
		wg.Wait()
		if got.Load() != waiters {
			t.Fatalf("round %d: %d/%d waiters returned", round, got.Load(), waiters)
		}
	}
}

// TestRequestDoneAfterComplete exercises the lazy-creation path where the
// request completes before any doneCh exists: Done must hand back an
// already-closed channel, and Wait must take the no-channel fast path.
func TestRequestDoneAfterComplete(t *testing.T) {
	r := newRequest()
	r.complete(Status{Source: 3}, nil)
	select {
	case <-r.Done():
	default:
		t.Fatal("Done() after completion is not closed")
	}
	st, err := r.Wait()
	if err != nil || st.Source != 3 {
		t.Fatalf("Wait after completion: st=%+v err=%v", st, err)
	}
}

// TestRequestOnCompleteVsCompletion races callback registration with
// completion: each callback must run exactly once whichever side wins.
func TestRequestOnCompleteVsCompletion(t *testing.T) {
	const cbs = 8
	for round := 0; round < 100; round++ {
		r := newRequest()
		var fired atomic.Int32
		var wg sync.WaitGroup
		for i := 0; i < cbs; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.OnComplete(func() { fired.Add(1) })
			}()
		}
		go r.complete(Status{}, nil)
		wg.Wait()
		_, _ = r.Wait() // completion observed; callbacks all delivered
		if fired.Load() != cbs {
			t.Fatalf("round %d: %d/%d callbacks fired", round, fired.Load(), cbs)
		}
	}
}

// TestChanMutexMutualExclusion hammers a chanMutex from many goroutines
// mutating shared state; the race detector verifies the exclusion and the
// final count verifies no acquisition was lost or duplicated.
func TestChanMutexMutualExclusion(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	mu := newChanMutex()
	shared := 0 // deliberately unsynchronised except for mu
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				mu.Lock()
				shared++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if shared != goroutines*iters {
		t.Fatalf("shared = %d, want %d", shared, goroutines*iters)
	}
	if len(mu) != 0 {
		t.Fatalf("chanMutex still held after balanced use: len=%d", len(mu))
	}
}

// TestChanMutexBalance verifies the acquire/release accounting directly:
// a held chanMutex has exactly one token in flight, a released one none,
// and a second acquisition parks until the first is released.
func TestChanMutexBalance(t *testing.T) {
	mu := newChanMutex()
	mu.Lock()
	if len(mu) != 1 {
		t.Fatalf("held chanMutex has len %d, want 1", len(mu))
	}
	acquired := make(chan struct{})
	go func() {
		mu.Lock()
		close(acquired)
		mu.Unlock()
	}()
	select {
	case <-acquired:
		t.Fatal("second Lock succeeded while the mutex was held")
	case <-time.After(10 * time.Millisecond):
	}
	mu.Unlock()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("blocked Lock never acquired after Unlock")
	}
	if len(mu) != 0 {
		t.Fatalf("released chanMutex has len %d, want 0", len(mu))
	}
}
