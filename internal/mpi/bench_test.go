package mpi

import (
	"fmt"
	"testing"

	"miniamr/internal/cluster"
	"miniamr/internal/simnet"
)

// BenchmarkPingPong measures round-trip cost through the matching engine
// (no simulated network cost).
func BenchmarkPingPong(b *testing.B) {
	for _, size := range []int{1, 128, 16384} {
		b.Run(fmt.Sprintf("floats=%d", size), func(b *testing.B) {
			benchPingPong(b, size)
		})
	}
}

// benchPingPong is the ping-pong body, shared with the allocation
// baseline guard in alloc_guard_test.go.
func benchPingPong(b *testing.B, size int) {
	b.ReportAllocs()
	w := NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) {
			buf := make([]float64, size)
			switch c.Rank() {
			case 0:
				for i := 0; i < b.N; i++ {
					if err := c.Send(buf, 1, 0); err != nil {
						panic(err)
					}
					if _, err := c.Recv(buf, 1, 1); err != nil {
						panic(err)
					}
				}
			case 1:
				for i := 0; i < b.N; i++ {
					if _, err := c.Recv(buf, 0, 0); err != nil {
						panic(err)
					}
					if err := c.Send(buf, 0, 1); err != nil {
						panic(err)
					}
				}
			}
		})
	}()
	b.SetBytes(int64(16 * size))
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkUnexpectedQueue measures matching against a deep unexpected
// message queue, the pattern of a late receiver.
func BenchmarkUnexpectedQueue(b *testing.B) {
	b.ReportAllocs()
	w := NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
	err := w.Run(func(c *Comm) {
		const depth = 64
		switch c.Rank() {
		case 0:
			buf := []int{7}
			for i := 0; i < b.N; i++ {
				for t := 0; t < depth; t++ {
					if err := c.Send(buf, 1, t); err != nil {
						panic(err)
					}
				}
			}
		case 1:
			buf := make([]int, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Receive in reverse tag order: every match scans the queue.
				for t := depth - 1; t >= 0; t-- {
					if _, err := c.Recv(buf, 0, t); err != nil {
						panic(err)
					}
				}
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce measures the binomial-tree reduction.
func BenchmarkAllreduce(b *testing.B) {
	for _, ranks := range []int{4, 16} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			b.ReportAllocs()
			w := NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
			err := w.Run(func(c *Comm) {
				in := []float64{float64(c.Rank())}
				for i := 0; i < b.N; i++ {
					if _, err := c.AllreduceFloat64(in, Sum); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkBarrier measures the synchronisation primitive.
func BenchmarkBarrier(b *testing.B) {
	b.ReportAllocs()
	w := NewWorld(cluster.MustNew(1, 8, 1), simnet.None())
	err := w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if err := c.Barrier(); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
