package mpi

import "fmt"

// Op is a reduction operator for Reduce/Allreduce.
type Op uint8

const (
	// Sum adds contributions elementwise.
	Sum Op = iota
	// Max keeps the elementwise maximum.
	Max
	// Min keeps the elementwise minimum.
	Min
)

func (op Op) String() string {
	switch op {
	case Sum:
		return "Sum"
	case Max:
		return "Max"
	case Min:
		return "Min"
	}
	return "unknown"
}

func reduceFloat64(op Op, acc, in []float64) {
	switch op {
	case Sum:
		for i, v := range in {
			acc[i] += v
		}
	case Max:
		for i, v := range in {
			if v > acc[i] {
				acc[i] = v
			}
		}
	case Min:
		for i, v := range in {
			if v < acc[i] {
				acc[i] = v
			}
		}
	}
}

func reduceInt(op Op, acc, in []int) {
	switch op {
	case Sum:
		for i, v := range in {
			acc[i] += v
		}
	case Max:
		for i, v := range in {
			if v > acc[i] {
				acc[i] = v
			}
		}
	case Min:
		for i, v := range in {
			if v < acc[i] {
				acc[i] = v
			}
		}
	}
}

// collective phase identifiers inside one sequence number's tag block.
const (
	phaseReduce = iota
	phaseBcast
	phaseGatherCount
	phaseGatherData
	phaseCount // number of phases per collective; tag block stride
)

// beginCollective reserves this rank's next collective sequence number.
// Collectives must be invoked in the same order on every rank, so equal
// sequence numbers across ranks denote the same logical collective; the
// per-sequence tag block keeps concurrent point-to-point traffic and
// earlier/later collectives from interfering.
func (c *Comm) beginCollective() (seq int, release func()) {
	c.collMu.Lock()
	seq = c.collSeq
	c.collSeq++
	return seq, c.collMu.Unlock
}

func collTag(seq, phase int) int { return MaxUserTag + seq*phaseCount + phase }

// noteCollective reports a collective entry to the attached monitor, which
// audits op/root/count agreement across ranks at end of run. Called with
// the collective lock held, right after the sequence number is reserved,
// so records are emitted in collective order.
func (c *Comm) noteCollective(name, op string, root, count, seq int) {
	if mon := c.world.mon; mon != nil {
		mon.CollectiveEnter(c.rank, name, op, root, count, seq)
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	_, err := c.AllreduceInt([]int{0}, Sum)
	return err
}

// Bcast distributes root's buffer to every rank using a binomial tree. On
// non-root ranks buf is overwritten; it must have the same length on all
// ranks.
func (c *Comm) Bcast(buf any, root int) error {
	seq, release := c.beginCollective()
	defer release()
	_, n, err := bufferKind(buf)
	if err != nil {
		return err
	}
	c.noteCollective("Bcast", "", root, n, seq)
	return c.bcast(buf, root, collTag(seq, phaseBcast))
}

func (c *Comm) bcast(buf any, root, tag int) error {
	p := c.Size()
	if root < 0 || root >= p {
		return fmt.Errorf("mpi: bcast root %d out of range [0,%d)", root, p)
	}
	vr := (c.rank - root + p) % p
	// Receive phase: find the bit position at which this rank joins the tree.
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (vr - mask + root) % p
			if _, err := c.recv(buf, src, tag); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	// Send phase: forward to children at decreasing bit positions.
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			dst := (vr + mask + root) % p
			if err := c.send(buf, dst, tag); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// AllreduceFloat64 combines equal-length contributions from every rank with
// op and returns the result (identical on all ranks). The combine order is
// fixed by the binomial tree, so results are deterministic for a given rank
// count.
func (c *Comm) AllreduceFloat64(in []float64, op Op) ([]float64, error) {
	seq, release := c.beginCollective()
	defer release()
	c.noteCollective("AllreduceFloat64", op.String(), -1, len(in), seq)
	acc := make([]float64, len(in))
	copy(acc, in)
	p := c.Size()
	rtag := collTag(seq, phaseReduce)
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			if err := c.send(acc, c.rank-mask, rtag); err != nil {
				return nil, err
			}
			break
		}
		if src := c.rank + mask; src < p {
			tmp := make([]float64, len(in))
			if _, err := c.recv(tmp, src, rtag); err != nil {
				return nil, err
			}
			reduceFloat64(op, acc, tmp)
		}
	}
	if err := c.bcast(acc, 0, collTag(seq, phaseBcast)); err != nil {
		return nil, err
	}
	return acc, nil
}

// AllreduceInt is AllreduceFloat64 for integer contributions.
func (c *Comm) AllreduceInt(in []int, op Op) ([]int, error) {
	seq, release := c.beginCollective()
	defer release()
	c.noteCollective("AllreduceInt", op.String(), -1, len(in), seq)
	acc := make([]int, len(in))
	copy(acc, in)
	p := c.Size()
	rtag := collTag(seq, phaseReduce)
	for mask := 1; mask < p; mask <<= 1 {
		if c.rank&mask != 0 {
			if err := c.send(acc, c.rank-mask, rtag); err != nil {
				return nil, err
			}
			break
		}
		if src := c.rank + mask; src < p {
			tmp := make([]int, len(in))
			if _, err := c.recv(tmp, src, rtag); err != nil {
				return nil, err
			}
			reduceInt(op, acc, tmp)
		}
	}
	if err := c.bcast(acc, 0, collTag(seq, phaseBcast)); err != nil {
		return nil, err
	}
	return acc, nil
}

// AllgathervInt concatenates every rank's variable-length contribution in
// rank order and returns the concatenation together with the per-rank
// counts. All ranks receive identical results.
func (c *Comm) AllgathervInt(in []int) (data []int, counts []int, err error) {
	seq, release := c.beginCollective()
	defer release()
	// Contribution lengths legally differ across ranks: count -1 exempts
	// them from the cross-rank agreement audit.
	c.noteCollective("AllgathervInt", "", -1, -1, seq)
	p := c.Size()
	counts = make([]int, p)
	ctag := collTag(seq, phaseGatherCount)
	dtag := collTag(seq, phaseGatherData)

	// Gather counts at rank 0, then tree-broadcast them.
	if c.rank == 0 {
		counts[0] = len(in)
		one := make([]int, 1)
		for r := 1; r < p; r++ {
			if _, err := c.recv(one, r, ctag); err != nil {
				return nil, nil, err
			}
			counts[r] = one[0]
		}
	} else {
		if err := c.send([]int{len(in)}, 0, ctag); err != nil {
			return nil, nil, err
		}
	}
	if err := c.bcast(counts, 0, ctag); err != nil {
		return nil, nil, err
	}

	total := 0
	offsets := make([]int, p)
	for r, n := range counts {
		offsets[r] = total
		total += n
	}
	data = make([]int, total)

	// Gather data at rank 0, then tree-broadcast the concatenation.
	if c.rank == 0 {
		copy(data[offsets[0]:], in)
		for r := 1; r < p; r++ {
			if counts[r] == 0 {
				continue
			}
			if _, err := c.recv(data[offsets[r]:offsets[r]+counts[r]], r, dtag); err != nil {
				return nil, nil, err
			}
		}
	} else if len(in) > 0 {
		if err := c.send(in, 0, dtag); err != nil {
			return nil, nil, err
		}
	}
	if total > 0 {
		if err := c.bcast(data, 0, dtag); err != nil {
			return nil, nil, err
		}
	}
	return data, counts, nil
}
