package mpi

import "errors"

// ErrAborted marks the error a Monitor's abort callback injects into a
// blocked operation (see BlockEnter). The deadlock sanitizer uses it to
// terminate a provably stuck job deterministically; callers can detect it
// with errors.Is. After an abort the job is considered dead: a message that
// later matches the aborted operation may panic the transport (completion
// of an already-aborted request), which is acceptable because aborts only
// fire when no rank can make progress.
var ErrAborted = errors.New("mpi: blocked operation aborted")

// BlockInfo describes one blocked receive-side operation, the node of the
// deadlock monitor's wait-for graph.
type BlockInfo struct {
	// Rank is the blocked rank.
	Rank int
	// Peer is the rank the operation waits on, or AnySource.
	Peer int
	// Tag is the tag the operation waits for, or AnyTag.
	Tag int
	// Op names the blocking call ("Recv", "Request.Wait", "tampi.Recv").
	Op string
	// Soft marks a suspended task rather than a blocked rank goroutine:
	// the rank's other tasks keep running, so soft blocks are reported for
	// context but never feed deadlock detection.
	Soft bool
}

// Monitor observes transport events for the runtime sanitizer. All methods
// must be safe for concurrent use; they are invoked from rank goroutines
// and delivery goroutines. Every hook site is nil-guarded, so a world
// without a monitor pays one pointer check and zero allocations.
type Monitor interface {
	// MessageSent fires when a payload enters the transport (send side).
	MessageSent(src, dest, tag int)
	// MessageDelivered fires when the payload reaches the destination's
	// matching engine (after its simulated transfer time).
	MessageDelivered(src, dest, tag int)
	// MessageMatched fires when a message is matched with a receive.
	// src/tag are the message's actual origin; postedSrc/postedTag are the
	// receive's declared pattern (possibly AnySource/AnyTag).
	MessageMatched(dest, src, tag, postedSrc, postedTag int)
	// RecvPosted fires when a receive (blocking or non-blocking) is posted.
	RecvPosted(rank, src, tag int)
	// BlockEnter fires when a goroutine is about to block in a receive-side
	// wait. abort, when non-nil, force-completes the blocked operation with
	// the given error; the monitor may only call it on a provably dead job.
	// The returned token pairs with BlockExit.
	BlockEnter(info BlockInfo, abort func(error)) (token uint64)
	// BlockExit fires when the blocked operation completed (or aborted).
	BlockExit(token uint64)
	// CollectiveEnter fires when a rank enters a collective. seq is the
	// rank's collective sequence number: equal numbers across ranks denote
	// the same logical collective. root is -1 for rootless collectives; op
	// is empty for non-reductions; count is -1 when lengths may legally
	// differ across ranks (Allgatherv).
	CollectiveEnter(rank int, name, op string, root, count, seq int)
	// RankDone fires when a rank's body returns (normally or by panic), so
	// finished ranks stop counting toward all-blocked detection.
	RankDone(rank int)
}

// FaultMonitor is the optional fault-awareness extension of Monitor: a
// monitor that also implements it is told about injected faults and dead
// links, so its deadlock watchdog can tell "stalled by an injected
// fault, retry pending" from a true deadlock. Methods must be safe for
// concurrent use.
type FaultMonitor interface {
	// FaultInjected fires when the transport acts on an injected fault.
	// kind is "drop", "duplicate", "spike", "stall" or "cut"; dest is -1
	// for rank-level faults (stalls); seq is the per-pair sequence
	// number the fault hit.
	FaultInjected(kind string, src, dest, seq int)
	// LinkDead fires when one message's retransmit budget exhausts: the
	// (src, dest) link is presumed partitioned and the message sent on
	// it abandoned. Fires once per abandoned message.
	LinkDead(src, dest int)
}

// SetMonitor attaches a transport monitor. It must be called before Run and
// before any communication; attaching mid-flight yields torn accounting.
// A monitor that also implements FaultMonitor receives fault events from
// the chaos path.
func (w *World) SetMonitor(m Monitor) {
	w.mon = m
	w.fmon, _ = m.(FaultMonitor)
	for r, c := range w.comms {
		if c == nil { // remote rank of a partial world
			continue
		}
		c.box.mon = m
		c.box.rank = r
	}
}

// Monitor returns the attached transport monitor, or nil.
func (w *World) Monitor() Monitor { return w.mon }
