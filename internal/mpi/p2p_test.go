package mpi

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/simnet"
)

func testWorld(t *testing.T, ranks int) *World {
	t.Helper()
	return NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
}

func TestSendRecvFloat64(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]float64{1.5, 2.5, 3.5}, 1, 7); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			buf := make([]float64, 3)
			st, err := c.Recv(buf, 0, 7)
			if err != nil {
				t.Errorf("recv: %v", err)
			}
			if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
				t.Errorf("status = %+v, want {0 7 3}", st)
			}
			if buf[0] != 1.5 || buf[1] != 2.5 || buf[2] != 3.5 {
				t.Errorf("buf = %v", buf)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvIntAndByte(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]int{-4, 9}, 1, 0); err != nil {
				t.Errorf("send ints: %v", err)
			}
			if err := c.Send([]byte("amr"), 1, 1); err != nil {
				t.Errorf("send bytes: %v", err)
			}
		case 1:
			ints := make([]int, 2)
			if _, err := c.Recv(ints, 0, 0); err != nil {
				t.Errorf("recv ints: %v", err)
			}
			if ints[0] != -4 || ints[1] != 9 {
				t.Errorf("ints = %v", ints)
			}
			bytes := make([]byte, 3)
			if _, err := c.Recv(bytes, 0, 1); err != nil {
				t.Errorf("recv bytes: %v", err)
			}
			if string(bytes) != "amr" {
				t.Errorf("bytes = %q", bytes)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerSendBufferReuse(t *testing.T) {
	// Isend must copy eagerly: mutating the buffer after Isend returns must
	// not affect the message.
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf := []float64{42}
			req, err := c.Isend(buf, 1, 0)
			if err != nil {
				t.Errorf("isend: %v", err)
				return
			}
			buf[0] = -1 // must not be visible to the receiver
			if _, err := req.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		case 1:
			buf := make([]float64, 1)
			time.Sleep(time.Millisecond)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Errorf("recv: %v", err)
			}
			if buf[0] != 42 {
				t.Errorf("received %v, want 42 (eager copy violated)", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcards(t *testing.T) {
	w := testWorld(t, 3)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]int{100}, 2, 5); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			if err := c.Send([]int{200}, 2, 6); err != nil {
				t.Errorf("send: %v", err)
			}
		case 2:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]int, 1)
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				// Payload must be consistent with the reported source/tag.
				switch st.Source {
				case 0:
					if buf[0] != 100 || st.Tag != 5 {
						t.Errorf("from 0: buf=%v tag=%d", buf, st.Tag)
					}
				case 1:
					if buf[0] != 200 || st.Tag != 6 {
						t.Errorf("from 1: buf=%v tag=%d", buf, st.Tag)
					}
				default:
					t.Errorf("unexpected source %d", st.Source)
				}
				got[st.Source] = true
			}
			if !got[0] || !got[1] {
				t.Errorf("missing senders: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	// Messages from one sender matching the same receive must arrive in
	// send order.
	const n = 200
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < n; i++ {
				if err := c.Send([]int{i}, 1, 3); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
		case 1:
			for i := 0; i < n; i++ {
				buf := make([]int, 1)
				if _, err := c.Recv(buf, 0, 3); err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if buf[0] != i {
					t.Errorf("message %d overtaken: got %d", i, buf[0])
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	// A receive for tag B must not match an earlier message with tag A.
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]int{1}, 1, 10); err != nil {
				t.Errorf("send: %v", err)
			}
			if err := c.Send([]int{2}, 1, 20); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			buf := make([]int, 1)
			if _, err := c.Recv(buf, 0, 20); err != nil {
				t.Errorf("recv: %v", err)
			}
			if buf[0] != 2 {
				t.Errorf("tag 20 received %d, want 2", buf[0])
			}
			if _, err := c.Recv(buf, 0, 10); err != nil {
				t.Errorf("recv: %v", err)
			}
			if buf[0] != 1 {
				t.Errorf("tag 10 received %d, want 1", buf[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvPostedBeforeSend(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			buf := make([]float64, 4)
			req, err := c.Irecv(buf, 1, 0)
			if err != nil {
				t.Errorf("irecv: %v", err)
				return
			}
			st, err := req.Wait()
			if err != nil {
				t.Errorf("wait: %v", err)
			}
			if st.Count != 2 {
				t.Errorf("count = %d, want 2 (shorter message into longer buffer)", st.Count)
			}
			if buf[0] != 7 || buf[1] != 8 {
				t.Errorf("buf = %v", buf)
			}
		case 1:
			time.Sleep(time.Millisecond) // let the receive be posted first
			if err := c.Send([]float64{7, 8}, 0, 0); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]int{1, 2, 3}, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			buf := make([]int, 2)
			if _, err := c.Recv(buf, 0, 0); err == nil {
				t.Error("expected truncation error, got nil")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeMismatchError(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]int{1}, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			buf := make([]float64, 1)
			if _, err := c.Recv(buf, 0, 0); err == nil {
				t.Error("expected type mismatch error, got nil")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArguments(t *testing.T) {
	w := testWorld(t, 2)
	c := w.Comm(0)
	if _, err := c.Isend([]int{1}, 5, 0); err == nil {
		t.Error("Isend to invalid rank: want error")
	}
	if _, err := c.Isend([]int{1}, 1, -3); err == nil {
		t.Error("Isend with negative tag: want error")
	}
	if _, err := c.Isend([]int{1}, 1, MaxUserTag); err == nil {
		t.Error("Isend with reserved tag: want error")
	}
	if _, err := c.Isend("hello", 1, 0); err == nil {
		t.Error("Isend with unsupported type: want error")
	}
	if _, err := c.Irecv([]int{1}, 9, 0); err == nil {
		t.Error("Irecv from invalid rank: want error")
	}
}

func TestWaitanyAndTest(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			time.Sleep(2 * time.Millisecond)
			if err := c.Send([]int{9}, 1, 1); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			a := make([]int, 1)
			b := make([]int, 1)
			ra, _ := c.Irecv(a, AnySource, 0) // satisfied only at the end
			rb, _ := c.Irecv(b, 0, 1)
			if done, _, _ := rb.Test(); done {
				t.Error("Test returned done before message sent")
			}
			idx, st, err := Waitany([]*Request{ra, rb})
			if err != nil {
				t.Errorf("waitany: %v", err)
			}
			if idx != 1 || st.Tag != 1 || b[0] != 9 {
				t.Errorf("waitany idx=%d st=%+v b=%v", idx, st, b)
			}
			if done, _, _ := rb.Test(); !done {
				t.Error("Test should report done after completion")
			}
			// Drain ra so the job can terminate cleanly: cancel by satisfying it.
			if err := c.Send([]int{0}, 1, 0); err != nil {
				t.Errorf("self-send: %v", err)
			}
			if _, err := ra.Wait(); err != nil {
				t.Errorf("wait ra: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyAllNil(t *testing.T) {
	idx, _, err := Waitany([]*Request{nil, nil})
	if idx != -1 || err != nil {
		t.Errorf("Waitany(nil,nil) = %d, %v; want -1, nil", idx, err)
	}
}

func TestSelfSend(t *testing.T) {
	w := testWorld(t, 1)
	err := w.Run(func(c *Comm) {
		req, err := c.Irecv(make([]int, 1), 0, 0)
		if err != nil {
			t.Errorf("irecv: %v", err)
			return
		}
		if err := c.Send([]int{5}, 0, 0); err != nil {
			t.Errorf("send: %v", err)
		}
		if _, err := req.Wait(); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSendersToOneReceiver(t *testing.T) {
	// Many goroutines within each sender rank; receiver counts totals.
	const ranks = 4
	const perRank = 50
	w := testWorld(t, ranks)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			sum := 0
			for i := 0; i < (ranks-1)*perRank; i++ {
				buf := make([]int, 1)
				if _, err := c.Recv(buf, AnySource, 0); err != nil {
					t.Errorf("recv: %v", err)
					return
				}
				sum += buf[0]
			}
			want := (ranks - 1) * perRank * (perRank - 1) / 2
			if sum != want {
				t.Errorf("sum = %d, want %d", sum, want)
			}
			return
		}
		var wg sync.WaitGroup
		for i := 0; i < perRank; i++ {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				if err := c.Send([]int{v}, 0, 0); err != nil {
					t.Errorf("send: %v", err)
				}
			}(i)
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryWithNetworkModel(t *testing.T) {
	// With a latency model the message still arrives, just later, and the
	// send request completes only after the simulated transfer.
	topo := cluster.MustNew(2, 1, 1)
	net := simnet.Model{InterNodeLatency: 3 * time.Millisecond}
	w := NewWorld(topo, net)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			start := time.Now()
			if err := c.Send([]float64{1}, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
			if d := time.Since(start); d < 2*time.Millisecond {
				t.Errorf("send completed in %v, want >= ~3ms wire time", d)
			}
		case 1:
			buf := make([]float64, 1)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				t.Errorf("recv: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
	if err == nil {
		t.Fatal("Run should surface rank panics as errors")
	}
}

// Property: for a random interleaving of tagged messages from one sender,
// per-tag receive order equals per-tag send order (non-overtaking), no
// matter how tags interleave.
func TestPropertyPerTagOrderPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nMsgs = 60
		const nTags = 4
		tags := make([]int, nMsgs)
		for i := range tags {
			tags[i] = rng.Intn(nTags)
		}
		w := NewWorld(cluster.MustNew(1, 2, 1), simnet.None())
		ok := true
		err := w.Run(func(c *Comm) {
			switch c.Rank() {
			case 0:
				for i, tag := range tags {
					if err := c.Send([]int{i}, 1, tag); err != nil {
						ok = false
						return
					}
				}
			case 1:
				// Count messages per tag, then receive per tag and check
				// ascending send indices.
				perTag := map[int][]int{}
				for i, tag := range tags {
					perTag[tag] = append(perTag[tag], i)
				}
				// Receive tags in a random order to stress matching.
				order := rng.Perm(nTags)
				for _, tag := range order {
					for _, wantIdx := range perTag[tag] {
						buf := make([]int, 1)
						if _, err := c.Recv(buf, 0, tag); err != nil {
							ok = false
							return
						}
						if buf[0] != wantIdx {
							ok = false
							return
						}
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIprobe(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.Send([]float64{1, 2, 3}, 1, 9); err != nil {
				t.Errorf("send: %v", err)
			}
		case 1:
			// Poll until the message is visible.
			var st Status
			for {
				ok, got, err := c.Iprobe(0, 9)
				if err != nil {
					t.Errorf("iprobe: %v", err)
					return
				}
				if ok {
					st = got
					break
				}
				time.Sleep(50 * time.Microsecond)
			}
			if st.Source != 0 || st.Tag != 9 || st.Count != 3 {
				t.Errorf("probe status = %+v", st)
			}
			// Probing must not consume: the receive still succeeds, and the
			// probe for a non-matching tag stays false.
			if ok, _, _ := c.Iprobe(0, 42); ok {
				t.Error("probe matched wrong tag")
			}
			buf := make([]float64, st.Count)
			if _, err := c.Recv(buf, 0, 9); err != nil {
				t.Errorf("recv after probe: %v", err)
			}
			if ok, _, _ := c.Iprobe(0, 9); ok {
				t.Error("message still probed after being received")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeValidation(t *testing.T) {
	w := testWorld(t, 1)
	c := w.Comm(0)
	if _, _, err := c.Iprobe(9, 0); err == nil {
		t.Error("invalid source accepted")
	}
	if _, _, err := c.Iprobe(0, -2); err == nil {
		t.Error("invalid tag accepted")
	}
	if ok, _, err := c.Iprobe(AnySource, AnyTag); ok || err != nil {
		t.Errorf("empty mailbox probe = %v, %v", ok, err)
	}
}

func TestCommStats(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			before := c.Stats()
			if err := c.Send([]float64{1, 2}, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
			if err := c.Send([]byte{1, 2, 3}, 1, 1); err != nil {
				t.Errorf("send: %v", err)
			}
			after := c.Stats()
			if after.Messages-before.Messages != 2 {
				t.Errorf("messages delta = %d, want 2", after.Messages-before.Messages)
			}
			if after.Bytes-before.Bytes != 16+3 {
				t.Errorf("bytes delta = %d, want 19", after.Bytes-before.Bytes)
			}
		case 1:
			if _, err := c.Recv(make([]float64, 2), 0, 0); err != nil {
				t.Errorf("recv: %v", err)
			}
			if _, err := c.Recv(make([]byte, 3), 0, 1); err != nil {
				t.Errorf("recv: %v", err)
			}
			// The receiver sent nothing.
			if st := c.Stats(); st.Messages != 0 {
				t.Errorf("receiver stats = %+v", st)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommStatsCountCollectives(t *testing.T) {
	w := testWorld(t, 4)
	var total int64
	err := w.Run(func(c *Comm) {
		if _, err := c.AllreduceInt([]int{c.Rank()}, Sum); err != nil {
			t.Errorf("allreduce: %v", err)
		}
		if c.Rank() == 0 {
			total = c.Stats().Messages
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Error("collective traffic not counted")
	}
}
