package mpi_test

import (
	"testing"

	"miniamr/internal/mpi/mpitest"
)

// TestConformanceChannel pins the in-process channel path to the shared
// transport-conformance suite — the same test bodies the TCP transport
// must pass (see internal/wire), so the two paths are held to one
// semantic contract.
func TestConformanceChannel(t *testing.T) {
	mpitest.RunConformance(t, mpitest.ChannelFabric())
}
