// Package mpitest is the transport-conformance harness: one suite of MPI
// semantic tests (point-to-point ordering, wildcard matching,
// collectives, chaos recovery) that runs unchanged over every transport
// the mpi package can sit on. A Fabric abstracts "how ranks are wired
// together" — the in-process channel path or a real TCP mesh — and
// RunConformance proves a fabric carries the full semantic contract, so
// the wire transport is held to exactly the tests the channel path
// already passes.
package mpitest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
	"miniamr/internal/wire"
)

// Options configures one cluster instance.
type Options struct {
	// Net is the simulated interconnect model; zero value is no cost.
	Net simnet.Model
	// Faults, when non-nil, enables the chaos path on every world with
	// the same seeded schedule.
	Faults *simnet.Faults
	// Resilience tunes the chaos path's retry clock (defaults applied by
	// mpi when zero).
	Resilience mpi.Resilience
}

// Cluster is one running instance of a fabric: a set of worlds whose
// local rank ranges partition the topology. A single-process fabric has
// exactly one world; a wire fabric has one per simulated process, meshed
// over real sockets.
type Cluster struct {
	// Worlds holds one world per process, in process-id order.
	Worlds []*mpi.World

	chaos bool
	close func() error
}

// Comm returns the communicator of the world hosting the given rank.
func (cl *Cluster) Comm(rank int) *mpi.Comm {
	for _, w := range cl.Worlds {
		if w.IsLocal(rank) {
			return w.Comm(rank)
		}
	}
	panic(fmt.Sprintf("mpitest: rank %d hosted by no world", rank))
}

// Run executes body once per rank across all worlds, mirroring
// World.Run on a cluster: each world runs its local ranks concurrently
// and Run blocks until every rank everywhere has returned.
func (cl *Cluster) Run(body func(c *mpi.Comm)) error {
	var wg sync.WaitGroup
	errs := make([]error, len(cl.Worlds))
	for i, w := range cl.Worlds {
		wg.Add(1)
		go func(i int, w *mpi.World) {
			defer wg.Done()
			errs[i] = w.Run(body)
		}(i, w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ChaosStats sums the resilience counters across all worlds.
func (cl *Cluster) ChaosStats() mpi.ChaosStats {
	var sum mpi.ChaosStats
	for _, w := range cl.Worlds {
		st := w.ChaosStats()
		sum.Retransmits += st.Retransmits
		sum.DupsDiscarded += st.DupsDiscarded
		sum.Reordered += st.Reordered
		sum.Recovered += st.Recovered
		sum.Abandoned += st.Abandoned
	}
	return sum
}

// LiveLeases sums the arenas' live lease counts across all worlds.
func (cl *Cluster) LiveLeases() int64 {
	var live int64
	for _, w := range cl.Worlds {
		live += w.Arena().Stats().Live
	}
	return live
}

// Close quiesces the chaos path (if enabled) and tears the fabric down.
func (cl *Cluster) Close() error {
	if cl.chaos {
		for _, w := range cl.Worlds {
			if !w.QuiesceReliable(5 * time.Second) {
				return errors.New("mpitest: reliable outboxes did not quiesce before close")
			}
		}
	}
	if cl.close != nil {
		return cl.close()
	}
	return nil
}

// Fabric builds clusters of a particular transport.
type Fabric struct {
	// Name labels the fabric in test output.
	Name string
	// New builds a cluster of the given rank count over a 1×ranks×1
	// topology. Implementations fail the test on construction errors.
	New func(tb testing.TB, ranks int, opt Options) *Cluster
}

// ChannelFabric is the in-process reference fabric: one world, every
// rank local, the transport seam never engaged.
func ChannelFabric() Fabric {
	return Fabric{
		Name: "channel",
		New: func(tb testing.TB, ranks int, opt Options) *Cluster {
			tb.Helper()
			w := mpi.NewWorld(cluster.MustNew(1, ranks, 1), opt.Net)
			cl := &Cluster{Worlds: []*mpi.World{w}}
			if opt.Faults != nil {
				w.EnableChaos(simnet.NewInjector(*opt.Faults), opt.Resilience)
				cl.chaos = true
			}
			return cl
		},
	}
}

// TCPFabric wires the ranks as `procs` partial worlds inside this test
// process, connected by a real loopback TCP mesh on ephemeral ports —
// hermetic, yet every cross-world byte travels through the wire codec
// and a kernel socket. When a test asks for fewer ranks than procs, the
// process count shrinks to one per rank.
func TCPFabric(procs int) Fabric {
	return Fabric{
		Name: fmt.Sprintf("tcp/%dproc", procs),
		New: func(tb testing.TB, ranks int, opt Options) *Cluster {
			tb.Helper()
			np := procs
			if np > ranks {
				np = ranks
			}
			topo := cluster.MustNew(1, ranks, 1)
			nodes := make([]*wire.Node, np)
			for i := range nodes {
				n, err := wire.Listen("")
				if err != nil {
					tb.Fatalf("mpitest: listen: %v", err)
				}
				nodes[i] = n
			}
			coord := nodes[0].Addr()
			var wg sync.WaitGroup
			bootErrs := make([]error, np)
			for i, n := range nodes {
				wg.Add(1)
				go func(i int, n *wire.Node) {
					defer wg.Done()
					bootErrs[i] = n.Bootstrap(i, np, ranks, coord, 10*time.Second)
				}(i, n)
			}
			wg.Wait()
			if err := errors.Join(bootErrs...); err != nil {
				tb.Fatalf("mpitest: bootstrap: %v", err)
			}
			cl := &Cluster{Worlds: make([]*mpi.World, np)}
			for i, n := range nodes {
				lo, hi := n.LocalRange()
				w, err := mpi.NewWorldPart(topo, opt.Net, lo, hi, n)
				if err != nil {
					tb.Fatalf("mpitest: world part %d: %v", i, err)
				}
				if opt.Faults != nil {
					w.EnableChaos(simnet.NewInjector(*opt.Faults), opt.Resilience)
					cl.chaos = true
				}
				n.Start(w, w.Arena())
				cl.Worlds[i] = w
			}
			cl.close = func() error {
				var errs []error
				for i, n := range nodes {
					if err := n.Close(); err != nil {
						errs = append(errs, fmt.Errorf("close node %d: %w", i, err))
					}
				}
				for i, n := range nodes {
					if err := n.Err(); err != nil {
						errs = append(errs, fmt.Errorf("node %d read loop: %w", i, err))
					}
				}
				return errors.Join(errs...)
			}
			return cl
		},
	}
}
