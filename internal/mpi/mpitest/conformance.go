package mpitest

import (
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"testing"
	"time"

	"miniamr/internal/mpi"
	"miniamr/internal/simnet"
)

// RunConformance runs the full transport-conformance suite over the
// fabric: the same test bodies the in-process channel path is developed
// against, parameterised only by how the ranks are wired together. A
// fabric that passes carries the complete MPI semantic contract this
// repo relies on — per-pair FIFO (non-overtaking), exactly-once
// delivery, wildcard matching, tag selectivity, truncation/type errors,
// thread-multiple sends, collectives, and recovery under injected
// faults.
func RunConformance(t *testing.T, f Fabric) {
	newCluster := func(t *testing.T, ranks int) *Cluster {
		t.Helper()
		cl := f.New(t, ranks, Options{})
		t.Cleanup(func() {
			if err := cl.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		})
		return cl
	}
	newChaos := func(t *testing.T, ranks int, faults simnet.Faults) *Cluster {
		t.Helper()
		cl := f.New(t, ranks, Options{
			Faults: &faults,
			Resilience: mpi.Resilience{
				RetryTimeout: 500 * time.Microsecond, MaxRetries: 20, Backoff: 1.5,
			},
		})
		t.Cleanup(func() {
			if err := cl.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		})
		return cl
	}

	t.Run("SendRecvKinds", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				if err := c.Send([]float64{1.5, 2.5, 3.5}, 1, 7); err != nil {
					t.Errorf("send floats: %v", err)
				}
				if err := c.Send([]int{-4, 9}, 1, 8); err != nil {
					t.Errorf("send ints: %v", err)
				}
				if err := c.Send([]byte("amr"), 1, 9); err != nil {
					t.Errorf("send bytes: %v", err)
				}
			case 1:
				f := make([]float64, 3)
				st, err := c.Recv(f, 0, 7)
				if err != nil {
					t.Errorf("recv floats: %v", err)
				}
				if st.Source != 0 || st.Tag != 7 || st.Count != 3 {
					t.Errorf("status = %+v, want {0 7 3}", st)
				}
				if f[0] != 1.5 || f[1] != 2.5 || f[2] != 3.5 {
					t.Errorf("floats = %v", f)
				}
				ints := make([]int, 2)
				if _, err := c.Recv(ints, 0, 8); err != nil {
					t.Errorf("recv ints: %v", err)
				}
				if ints[0] != -4 || ints[1] != 9 {
					t.Errorf("ints = %v", ints)
				}
				b := make([]byte, 3)
				if _, err := c.Recv(b, 0, 9); err != nil {
					t.Errorf("recv bytes: %v", err)
				}
				if string(b) != "amr" {
					t.Errorf("bytes = %q", b)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("EagerSendBufferReuse", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				buf := []float64{42}
				req, err := c.Isend(buf, 1, 0)
				if err != nil {
					t.Errorf("isend: %v", err)
					return
				}
				buf[0] = -1 // must not be visible to the receiver
				if _, err := req.Wait(); err != nil {
					t.Errorf("wait: %v", err)
				}
			case 1:
				buf := make([]float64, 1)
				time.Sleep(time.Millisecond)
				if _, err := c.Recv(buf, 0, 0); err != nil {
					t.Errorf("recv: %v", err)
				}
				if buf[0] != 42 {
					t.Errorf("received %v, want 42 (eager copy violated)", buf[0])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("Wildcards", func(t *testing.T) {
		cl := newCluster(t, 3)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				if err := c.Send([]int{100}, 2, 5); err != nil {
					t.Errorf("send: %v", err)
				}
			case 1:
				if err := c.Send([]int{200}, 2, 6); err != nil {
					t.Errorf("send: %v", err)
				}
			case 2:
				got := map[int]bool{}
				for i := 0; i < 2; i++ {
					buf := make([]int, 1)
					st, err := c.Recv(buf, mpi.AnySource, mpi.AnyTag)
					if err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					switch st.Source {
					case 0:
						if buf[0] != 100 || st.Tag != 5 {
							t.Errorf("from 0: buf=%v tag=%d", buf, st.Tag)
						}
					case 1:
						if buf[0] != 200 || st.Tag != 6 {
							t.Errorf("from 1: buf=%v tag=%d", buf, st.Tag)
						}
					default:
						t.Errorf("unexpected source %d", st.Source)
					}
					got[st.Source] = true
				}
				if !got[0] || !got[1] {
					t.Errorf("missing senders: %v", got)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("NonOvertakingSameTag", func(t *testing.T) {
		const n = 200
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				for i := 0; i < n; i++ {
					if err := c.Send([]int{i}, 1, 3); err != nil {
						t.Errorf("send %d: %v", i, err)
					}
				}
			case 1:
				for i := 0; i < n; i++ {
					buf := make([]int, 1)
					if _, err := c.Recv(buf, 0, 3); err != nil {
						t.Errorf("recv %d: %v", i, err)
						return
					}
					if buf[0] != i {
						t.Errorf("message %d overtaken: got %d", i, buf[0])
						return
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("TagSelectivity", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				if err := c.Send([]int{1}, 1, 10); err != nil {
					t.Errorf("send: %v", err)
				}
				if err := c.Send([]int{2}, 1, 20); err != nil {
					t.Errorf("send: %v", err)
				}
			case 1:
				buf := make([]int, 1)
				if _, err := c.Recv(buf, 0, 20); err != nil {
					t.Errorf("recv: %v", err)
				}
				if buf[0] != 2 {
					t.Errorf("tag 20 received %d, want 2", buf[0])
				}
				if _, err := c.Recv(buf, 0, 10); err != nil {
					t.Errorf("recv: %v", err)
				}
				if buf[0] != 1 {
					t.Errorf("tag 10 received %d, want 1", buf[0])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("RecvPostedBeforeSend", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				buf := make([]float64, 4)
				req, err := c.Irecv(buf, 1, 0)
				if err != nil {
					t.Errorf("irecv: %v", err)
					return
				}
				st, err := req.Wait()
				if err != nil {
					t.Errorf("wait: %v", err)
				}
				if st.Count != 2 {
					t.Errorf("count = %d, want 2 (shorter message into longer buffer)", st.Count)
				}
				if buf[0] != 7 || buf[1] != 8 {
					t.Errorf("buf = %v", buf)
				}
			case 1:
				time.Sleep(time.Millisecond) // let the receive be posted first
				if err := c.Send([]float64{7, 8}, 0, 0); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("TruncationError", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				if err := c.Send([]int{1, 2, 3}, 1, 0); err != nil {
					t.Errorf("send: %v", err)
				}
			case 1:
				buf := make([]int, 2)
				if _, err := c.Recv(buf, 0, 0); err == nil {
					t.Error("expected truncation error, got nil")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("TypeMismatchError", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				if err := c.Send([]int{1}, 1, 0); err != nil {
					t.Errorf("send: %v", err)
				}
			case 1:
				buf := make([]float64, 1)
				if _, err := c.Recv(buf, 0, 0); err == nil {
					t.Error("expected type mismatch error, got nil")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("WaitanyAndTest", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				time.Sleep(2 * time.Millisecond)
				if err := c.Send([]int{9}, 1, 1); err != nil {
					t.Errorf("send: %v", err)
				}
			case 1:
				a := make([]int, 1)
				b := make([]int, 1)
				ra, _ := c.Irecv(a, mpi.AnySource, 0) // satisfied only at the end
				rb, _ := c.Irecv(b, 0, 1)
				if done, _, _ := rb.Test(); done {
					t.Error("Test returned done before message sent")
				}
				idx, st, err := mpi.Waitany([]*mpi.Request{ra, rb})
				if err != nil {
					t.Errorf("waitany: %v", err)
				}
				if idx != 1 || st.Tag != 1 || b[0] != 9 {
					t.Errorf("waitany idx=%d st=%+v b=%v", idx, st, b)
				}
				if done, _, _ := rb.Test(); !done {
					t.Error("Test should report done after completion")
				}
				// Drain ra so the job terminates: satisfy it with a self-send.
				if err := c.Send([]int{0}, 1, 0); err != nil {
					t.Errorf("self-send: %v", err)
				}
				if _, err := ra.Wait(); err != nil {
					t.Errorf("wait ra: %v", err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("SelfSend", func(t *testing.T) {
		cl := newCluster(t, 1)
		err := cl.Run(func(c *mpi.Comm) {
			req, err := c.Irecv(make([]int, 1), 0, 0)
			if err != nil {
				t.Errorf("irecv: %v", err)
				return
			}
			if err := c.Send([]int{5}, 0, 0); err != nil {
				t.Errorf("send: %v", err)
			}
			if _, err := req.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ConcurrentSendersToOneReceiver", func(t *testing.T) {
		// MPI_THREAD_MULTIPLE: many goroutines per sender rank.
		const ranks = 4
		const perRank = 50
		cl := newCluster(t, ranks)
		err := cl.Run(func(c *mpi.Comm) {
			if c.Rank() == 0 {
				sum := 0
				for i := 0; i < (ranks-1)*perRank; i++ {
					buf := make([]int, 1)
					if _, err := c.Recv(buf, mpi.AnySource, 0); err != nil {
						t.Errorf("recv: %v", err)
						return
					}
					sum += buf[0]
				}
				want := (ranks - 1) * perRank * (perRank - 1) / 2
				if sum != want {
					t.Errorf("sum = %d, want %d", sum, want)
				}
				return
			}
			var wg sync.WaitGroup
			for i := 0; i < perRank; i++ {
				wg.Add(1)
				go func(v int) {
					defer wg.Done()
					if err := c.Send([]int{v}, 0, 0); err != nil {
						t.Errorf("send: %v", err)
					}
				}(i)
			}
			wg.Wait()
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("PerTagOrderProperty", func(t *testing.T) {
		// For a random interleaving of tagged messages from one sender,
		// per-tag receive order equals per-tag send order, no matter how
		// tags interleave.
		for seed := uint64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				rng := mrand.New(mrand.NewPCG(seed, 0))
				const nMsgs = 60
				const nTags = 4
				tags := make([]int, nMsgs)
				for i := range tags {
					tags[i] = rng.IntN(nTags)
				}
				perTag := map[int][]int{}
				for i, tag := range tags {
					perTag[tag] = append(perTag[tag], i)
				}
				order := rng.Perm(nTags)
				cl := newCluster(t, 2)
				err := cl.Run(func(c *mpi.Comm) {
					switch c.Rank() {
					case 0:
						for i, tag := range tags {
							if err := c.Send([]int{i}, 1, tag); err != nil {
								t.Errorf("send %d: %v", i, err)
								return
							}
						}
					case 1:
						for _, tag := range order {
							for _, wantIdx := range perTag[tag] {
								buf := make([]int, 1)
								if _, err := c.Recv(buf, 0, tag); err != nil {
									t.Errorf("recv tag %d: %v", tag, err)
									return
								}
								if buf[0] != wantIdx {
									t.Errorf("tag %d: got id %d, want %d (per-tag order broken)", tag, buf[0], wantIdx)
									return
								}
							}
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	})

	t.Run("Iprobe", func(t *testing.T) {
		cl := newCluster(t, 2)
		err := cl.Run(func(c *mpi.Comm) {
			switch c.Rank() {
			case 0:
				if err := c.Send([]float64{1, 2, 3}, 1, 9); err != nil {
					t.Errorf("send: %v", err)
				}
			case 1:
				var st mpi.Status
				for {
					ok, got, err := c.Iprobe(0, 9)
					if err != nil {
						t.Errorf("iprobe: %v", err)
						return
					}
					if ok {
						st = got
						break
					}
					time.Sleep(50 * time.Microsecond)
				}
				if st.Source != 0 || st.Tag != 9 || st.Count != 3 {
					t.Errorf("probe status = %+v", st)
				}
				if ok, _, _ := c.Iprobe(0, 42); ok {
					t.Error("probe matched wrong tag")
				}
				buf := make([]float64, st.Count)
				if _, err := c.Recv(buf, 0, 9); err != nil {
					t.Errorf("recv after probe: %v", err)
				}
				if ok, _, _ := c.Iprobe(0, 9); ok {
					t.Error("message still probed after being received")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("Collectives", func(t *testing.T) {
		const ranks = 4
		cl := newCluster(t, ranks)
		err := cl.Run(func(c *mpi.Comm) {
			if err := c.Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", c.Rank(), err)
				return
			}
			buf := []float64{0}
			if c.Rank() == 2 {
				buf[0] = 3.25
			}
			if err := c.Bcast(buf, 2); err != nil {
				t.Errorf("rank %d bcast: %v", c.Rank(), err)
				return
			}
			if buf[0] != 3.25 {
				t.Errorf("rank %d: bcast got %v, want 3.25", c.Rank(), buf[0])
			}
			sumF, err := c.AllreduceFloat64([]float64{float64(c.Rank() + 1)}, mpi.Sum)
			if err != nil {
				t.Errorf("rank %d allreduce f64: %v", c.Rank(), err)
				return
			}
			if sumF[0] != 1+2+3+4 {
				t.Errorf("rank %d: allreduce f64 = %v, want 10", c.Rank(), sumF[0])
			}
			maxI, err := c.AllreduceInt([]int{c.Rank() * 3}, mpi.Max)
			if err != nil {
				t.Errorf("rank %d allreduce int: %v", c.Rank(), err)
				return
			}
			if maxI[0] != (ranks-1)*3 {
				t.Errorf("rank %d: allreduce int = %v, want %d", c.Rank(), maxI[0], (ranks-1)*3)
			}
			// Allgatherv with rank-dependent lengths.
			in := make([]int, c.Rank()+1)
			for i := range in {
				in[i] = c.Rank()*100 + i
			}
			data, counts, err := c.AllgathervInt(in)
			if err != nil {
				t.Errorf("rank %d allgatherv: %v", c.Rank(), err)
				return
			}
			off := 0
			for r := 0; r < ranks; r++ {
				if counts[r] != r+1 {
					t.Errorf("rank %d: counts[%d] = %d, want %d", c.Rank(), r, counts[r], r+1)
					return
				}
				for i := 0; i < counts[r]; i++ {
					if data[off+i] != r*100+i {
						t.Errorf("rank %d: data[%d] = %d, want %d", c.Rank(), off+i, data[off+i], r*100+i)
						return
					}
				}
				off += counts[r]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ChaosPingPong", func(t *testing.T) {
		cl := newChaos(t, 2, lossyFaults(7))
		const rounds = 120
		err := cl.Run(func(c *mpi.Comm) {
			buf := make([]int, 2)
			peer := 1 - c.Rank()
			for i := 0; i < rounds; i++ {
				if c.Rank() == 0 {
					if err := c.Send([]int{i, 100 + i}, peer, 3); err != nil {
						t.Errorf("send %d: %v", i, err)
					}
					if _, err := c.Recv(buf, peer, 4); err != nil {
						t.Errorf("recv %d: %v", i, err)
					} else if buf[0] != i || buf[1] != 200+i {
						t.Errorf("round %d: got %v", i, buf)
					}
				} else {
					if _, err := c.Recv(buf, peer, 3); err != nil {
						t.Errorf("recv %d: %v", i, err)
					} else if buf[0] != i || buf[1] != 100+i {
						t.Errorf("round %d: got %v", i, buf)
					}
					if err := c.Send([]int{i, 200 + i}, peer, 4); err != nil {
						t.Errorf("send %d: %v", i, err)
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if st := cl.ChaosStats(); st.Recovered == 0 {
			t.Errorf("no drops recovered over %d lossy rounds: %+v", rounds, st)
		}
	})

	t.Run("ChaosMatchingProperty", func(t *testing.T) {
		seeds := []uint64{1, 2, 3}
		if testing.Short() {
			seeds = seeds[:1]
		}
		for _, seed := range seeds {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				runChaosMatchingSeed(t, newChaos(t, 3, lossyFaults(seed)), seed)
			})
		}
	})

	t.Run("ChaosCollectives", func(t *testing.T) {
		cl := newChaos(t, 4, lossyFaults(11))
		err := cl.Run(func(c *mpi.Comm) {
			for round := 0; round < 10; round++ {
				in := []float64{float64(c.Rank() + round)}
				out, err := c.AllreduceFloat64(in, mpi.Sum)
				if err != nil {
					t.Errorf("rank %d allreduce: %v", c.Rank(), err)
					return
				}
				want := float64(0+1+2+3) + 4*float64(round)
				if out[0] != want {
					t.Errorf("rank %d round %d: allreduce = %v, want %v", c.Rank(), round, out[0], want)
					return
				}
				if err := c.Barrier(); err != nil {
					t.Errorf("rank %d barrier: %v", c.Rank(), err)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ChaosOwnedSendsZeroLeases", func(t *testing.T) {
		cl := newChaos(t, 2, lossyFaults(13))
		const msgs = 80
		err := cl.Run(func(c *mpi.Comm) {
			if c.Rank() == 0 {
				arena := c.World().Arena()
				for i := 0; i < msgs; i++ {
					pay := arena.LeaseFloat64(16)
					for j := range pay.Float64() {
						pay.Float64()[j] = float64(i)
					}
					if err := c.SendOwned(pay, 1, 5); err != nil {
						t.Errorf("sendowned %d: %v", i, err)
					}
				}
			} else {
				buf := make([]float64, 16)
				for i := 0; i < msgs; i++ {
					if _, err := c.Recv(buf, 0, 5); err != nil {
						t.Errorf("recv %d: %v", i, err)
					} else if buf[0] != float64(i) {
						t.Errorf("msg %d: payload %v", i, buf[0])
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// In-flight retransmit clones and not-yet-acked wire buffers drain
		// shortly after the ranks return; then every lease must be home.
		deadline := time.Now().Add(2 * time.Second)
		for cl.LiveLeases() != 0 {
			if time.Now().After(deadline) {
				t.Errorf("arenas still hold %d live leases after chaos run", cl.LiveLeases())
				break
			}
			time.Sleep(time.Millisecond)
		}
	})
}

// lossyFaults is the suite's hostile schedule: drops, duplicates and
// delay spikes enabled on both link classes.
func lossyFaults(seed uint64) simnet.Faults {
	lf := simnet.LinkFaults{
		Drop: 0.15, Duplicate: 0.10, Spike: 0.15, SpikeMax: 200 * time.Microsecond,
	}
	return simnet.Faults{Seed: seed, Intra: lf, Inter: lf}
}

// refMatcher is the in-memory reference the chaos property test checks a
// fabric against: per source it records send order and answers "which
// message must a (src, tag) receive match next" — the earliest
// unconsumed message from that source with a matching tag, which is
// exactly MPI's non-overtaking guarantee once the reliable layer has
// restored per-pair arrival order.
type refMatcher struct {
	sent     map[int][]refMsg // src -> messages in send order
	consumed map[int][]bool
}

type refMsg struct {
	tag, id int
}

func newRefMatcher() *refMatcher {
	return &refMatcher{sent: map[int][]refMsg{}, consumed: map[int][]bool{}}
}

func (r *refMatcher) send(src, tag, id int) {
	r.sent[src] = append(r.sent[src], refMsg{tag: tag, id: id})
	r.consumed[src] = append(r.consumed[src], false)
}

// match consumes and returns the id the next (src, tag-pattern) receive
// must see, or -1 if the reference has nothing left to match.
func (r *refMatcher) match(src, tag int) int {
	for i, m := range r.sent[src] {
		if r.consumed[src][i] {
			continue
		}
		if tag == mpi.AnyTag || tag == m.tag {
			r.consumed[src][i] = true
			return m.id
		}
	}
	return -1
}

// peekNextTag returns the tag of the earliest unconsumed message from
// src, so a concrete-tag receive always has a match.
func (r *refMatcher) peekNextTag(src int) int {
	for i, m := range r.sent[src] {
		if !r.consumed[src][i] {
			return m.tag
		}
	}
	return mpi.AnyTag
}

// runChaosMatchingSeed drives random interleavings of Isend/Irecv with
// wildcard tags through a lossy fabric and checks every delivery against
// the reference matcher: per-pair FIFO and exactly-once, end to end.
func runChaosMatchingSeed(t *testing.T, cl *Cluster, seed uint64) {
	const (
		senders  = 2
		receiver = 2
		perSrc   = 120
		tags     = 3
	)
	tagSeq := make([][]int, senders)
	for s := 0; s < senders; s++ {
		r := mrand.New(mrand.NewPCG(seed, uint64(s)))
		tagSeq[s] = make([]int, perSrc)
		for i := range tagSeq[s] {
			tagSeq[s][i] = r.IntN(tags)
		}
	}
	ref := newRefMatcher()
	for s := 0; s < senders; s++ {
		for i, tag := range tagSeq[s] {
			ref.send(s, tag, i)
		}
	}

	// The receiver's plan: a prefix of source-specific receives (random
	// source, random tag pattern, random blocking/non-blocking) checked
	// against exact reference predictions, then wildcard-source receives
	// draining the remainder.
	type recvOp struct {
		src, tag int
		nonblock bool
		wantID   int
	}
	var plan []recvOp
	rr := mrand.New(mrand.NewPCG(seed, 99))
	remaining := map[int]int{0: perSrc, 1: perSrc}
	for n := 0; n < perSrc; n++ {
		src := rr.IntN(senders)
		if remaining[src] == 0 {
			src = 1 - src
		}
		op := recvOp{src: src, nonblock: rr.IntN(2) == 0}
		if rr.IntN(2) == 0 {
			op.tag = mpi.AnyTag
		} else {
			op.tag = ref.peekNextTag(src)
		}
		op.wantID = ref.match(op.src, op.tag)
		if op.wantID < 0 {
			t.Fatalf("plan bug: no matchable message for src=%d tag=%d", op.src, op.tag)
		}
		plan = append(plan, op)
		remaining[src]--
	}
	wildcards := remaining[0] + remaining[1]

	var mu sync.Mutex
	got := map[int][]int{} // src -> ids in receive order (wildcard phase)

	err := cl.Run(func(c *mpi.Comm) {
		switch c.Rank() {
		case 0, 1:
			r := mrand.New(mrand.NewPCG(seed, uint64(c.Rank()+10)))
			var reqs []*mpi.Request
			for i, tag := range tagSeq[c.Rank()] {
				payload := []int{c.Rank(), i}
				if r.IntN(2) == 0 {
					if err := c.Send(payload, receiver, tag); err != nil {
						t.Errorf("send: %v", err)
					}
				} else {
					req, err := c.Isend(payload, receiver, tag)
					if err != nil {
						t.Errorf("isend: %v", err)
						continue
					}
					reqs = append(reqs, req)
				}
				if r.IntN(8) == 0 {
					time.Sleep(time.Duration(r.IntN(50)) * time.Microsecond)
				}
			}
			if err := mpi.Waitall(reqs); err != nil {
				t.Errorf("waitall: %v", err)
			}
		case receiver:
			buf := make([]int, 2)
			for i, op := range plan {
				var st mpi.Status
				var err error
				if op.nonblock {
					var req *mpi.Request
					req, err = c.Irecv(buf, op.src, op.tag)
					if err == nil {
						st, err = req.Wait()
						req.Free()
					}
				} else {
					st, err = c.Recv(buf, op.src, op.tag)
				}
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if buf[0] != op.src || buf[1] != op.wantID {
					t.Errorf("recv %d (src=%d tag=%d): got src=%d id=%d, reference says id=%d",
						i, op.src, op.tag, buf[0], buf[1], op.wantID)
					return
				}
				if st.Source != op.src {
					t.Errorf("recv %d: status source %d, want %d", i, st.Source, op.src)
				}
			}
			for i := 0; i < wildcards; i++ {
				st, err := c.Recv(buf, mpi.AnySource, mpi.AnyTag)
				if err != nil {
					t.Errorf("wildcard recv %d: %v", i, err)
					return
				}
				if st.Source != buf[0] {
					t.Errorf("wildcard recv %d: status source %d, payload says %d", i, st.Source, buf[0])
				}
				mu.Lock()
				got[buf[0]] = append(got[buf[0]], buf[1])
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once and per-pair FIFO over the wildcard phase: per source
	// the ids must be exactly the reference's unconsumed set, in order.
	for src := 0; src < senders; src++ {
		var want []int
		for i, consumed := range ref.consumed[src] {
			if !consumed {
				want = append(want, i)
			}
		}
		ids := got[src]
		if len(ids) != len(want) {
			t.Fatalf("src %d: wildcard phase received %d messages, reference expects %d (%v vs %v)",
				src, len(ids), len(want), ids, want)
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("src %d: wildcard ids out of FIFO order or duplicated: got %v, want %v",
					src, ids, want)
			}
		}
	}
	if st := cl.ChaosStats(); st.Recovered == 0 && st.DupsDiscarded == 0 {
		t.Errorf("chaos schedule injected nothing the transport had to recover: %+v", st)
	}
}
