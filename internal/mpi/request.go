package mpi

import "sync"

// Request represents an in-flight non-blocking operation. A Request is
// created by Isend or Irecv and completes exactly once; after completion
// its Status and error are immutable.
type Request struct {
	mu        sync.Mutex
	done      bool
	doneCh    chan struct{}
	status    Status
	err       error
	callbacks []func()
}

func newRequest() *Request {
	return &Request{doneCh: make(chan struct{})}
}

// complete records the outcome and fires callbacks. It must be called at
// most once.
func (r *Request) complete(st Status, err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		panic("mpi: request completed twice")
	}
	r.done = true
	r.status = st
	r.err = err
	cbs := r.callbacks
	r.callbacks = nil
	close(r.doneCh)
	r.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
}

// Wait blocks until the operation completes and returns its status.
func (r *Request) Wait() (Status, error) {
	<-r.doneCh
	return r.status, r.err
}

// Test reports whether the operation has completed, without blocking.
// When it returns true the status and error are those of the completion.
func (r *Request) Test() (bool, Status, error) {
	select {
	case <-r.doneCh:
		return true, r.status, r.err
	default:
		return false, Status{}, nil
	}
}

// Done returns a channel that is closed when the request completes.
func (r *Request) Done() <-chan struct{} { return r.doneCh }

// OnComplete registers fn to run when the request completes. If the request
// has already completed, fn runs immediately on the calling goroutine.
// This is the primitive the Task-Aware MPI layer binds task completion to.
func (r *Request) OnComplete(fn func()) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		fn()
		return
	}
	r.callbacks = append(r.callbacks, fn)
	r.mu.Unlock()
}

// Waitall blocks until every request completes and returns the first error
// encountered (in slice order), if any.
func Waitall(reqs []*Request) error {
	var firstErr error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status. Requests that are nil (or already consumed by a
// previous Waitany, conventionally nil-ed out by the caller) are skipped.
// If all requests are nil, Waitany returns index -1 immediately, matching
// MPI_Waitany's MPI_UNDEFINED result.
func Waitany(reqs []*Request) (int, Status, error) {
	live := 0
	for _, r := range reqs {
		if r != nil {
			live++
		}
	}
	if live == 0 {
		return -1, Status{}, nil
	}
	type hit struct{ idx int }
	ch := make(chan hit, live)
	for i, r := range reqs {
		if r == nil {
			continue
		}
		i := i
		r.OnComplete(func() { ch <- hit{i} })
	}
	h := <-ch
	st, err := reqs[h.idx].Wait() // already complete; fetch outcome
	return h.idx, st, err
}
