package mpi

import "sync"

// Request represents an in-flight non-blocking operation. A Request is
// created by Isend or Irecv and completes exactly once; after completion
// its Status and error are immutable (until Free recycles it).
//
// Requests come from an internal pool: callers that have observed
// completion (via Wait, Test, Waitall or a WaitSet) may hand them back
// with Free so the hot paths run allocation-free. Freeing is optional —
// an un-freed request is simply collected by the GC.
type Request struct {
	mu   sync.Mutex
	done bool
	//amr:chan owner=complete,abort,Done
	doneCh    chan struct{} // lazily created by Wait/Done on incomplete requests
	status    Status
	err       error
	callbacks []func()
	ws        *WaitSet // at most one waitset owns an incomplete request
	wsIdx     int

	// Sanitizer identity, set at creation only while a Monitor is attached
	// to the world (see irecv) and cleared by Free. With no monitor both
	// fields stay zero and Wait takes its original path.
	mon   Monitor
	binfo BlockInfo
}

var requestPool = sync.Pool{New: func() any { return new(Request) }}

func newRequest() *Request { return requestPool.Get().(*Request) }

// complete records the outcome, fires callbacks and notifies the owning
// waitset. It must be called at most once per pooled lifetime.
//
//amr:hot allocs=1
func (r *Request) complete(st Status, err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		panic("mpi: request completed twice")
	}
	r.done = true
	r.status = st
	r.err = err
	cbs := r.callbacks
	r.callbacks = nil
	if r.doneCh != nil {
		close(r.doneCh)
	}
	ws, wsIdx := r.ws, r.wsIdx
	r.ws = nil
	r.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
	if ws != nil {
		ws.deliver(wsIdx)
	}
}

// Wait blocks until the operation completes and returns its status. The
// completed-request fast path takes no channel and performs no allocation.
//
//amr:hot allocs=1
func (r *Request) Wait() (Status, error) {
	r.mu.Lock()
	if r.done {
		st, err := r.status, r.err
		r.mu.Unlock()
		return st, err
	}
	if r.doneCh == nil {
		r.doneCh = make(chan struct{})
	}
	ch := r.doneCh
	mon := r.mon
	r.mu.Unlock()
	if mon != nil {
		token := mon.BlockEnter(r.binfo, r.abort)
		<-ch
		mon.BlockExit(token)
	} else {
		<-ch
	}
	r.mu.Lock()
	st, err := r.status, r.err
	r.mu.Unlock()
	return st, err
}

// abort force-completes an in-flight request on behalf of the deadlock
// monitor; it is a no-op on an already-completed request. A genuine
// completion arriving after an abort panics in complete, which is
// acceptable only because aborts fire solely on provably dead jobs.
func (r *Request) abort(err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.err = err
	cbs := r.callbacks
	r.callbacks = nil
	if r.doneCh != nil {
		close(r.doneCh)
	}
	ws, wsIdx := r.ws, r.wsIdx
	r.ws = nil
	r.mu.Unlock()
	for _, cb := range cbs {
		cb()
	}
	if ws != nil {
		ws.deliver(wsIdx)
	}
}

// Test reports whether the operation has completed, without blocking.
// When it returns true the status and error are those of the completion.
func (r *Request) Test() (bool, Status, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true, r.status, r.err
	}
	return false, Status{}, nil
}

// Done returns a channel that is closed when the request completes.
func (r *Request) Done() <-chan struct{} {
	r.mu.Lock()
	if r.doneCh == nil {
		r.doneCh = make(chan struct{})
		if r.done {
			close(r.doneCh)
		}
	}
	ch := r.doneCh
	r.mu.Unlock()
	return ch
}

// OnComplete registers fn to run when the request completes. If the request
// has already completed, fn runs immediately on the calling goroutine.
// This is the primitive the Task-Aware MPI layer binds task completion to.
func (r *Request) OnComplete(fn func()) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		fn()
		return
	}
	r.callbacks = append(r.callbacks, fn)
	r.mu.Unlock()
}

// Free returns a completed request to the pool. The caller asserts that
// completion has been observed and that no other goroutine still holds the
// request; any channel obtained from Done stays valid (and closed). Using
// the request after Free corrupts whichever operation reuses it.
//
//amr:hot allocs=1
func (r *Request) Free() {
	r.mu.Lock()
	if !r.done {
		r.mu.Unlock()
		panic("mpi: Free of incomplete request")
	}
	r.done = false
	r.doneCh = nil
	r.status = Status{}
	r.err = nil
	r.ws = nil
	r.mon = nil
	r.binfo = BlockInfo{}
	r.mu.Unlock()
	requestPool.Put(r)
}

// Waitall blocks until every request completes and returns the first error
// encountered (in slice order), if any.
//
//amr:hot allocs=0
func Waitall(reqs []*Request) error {
	var firstErr error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status. Requests that are nil (or already consumed by a
// previous Waitany, conventionally nil-ed out by the caller) are skipped.
// If all requests are nil, Waitany returns index -1 immediately, matching
// MPI_Waitany's MPI_UNDEFINED result.
func Waitany(reqs []*Request) (int, Status, error) {
	live := 0
	for _, r := range reqs {
		if r != nil {
			live++
		}
	}
	if live == 0 {
		return -1, Status{}, nil
	}
	type hit struct{ idx int }
	ch := make(chan hit, live)
	for i, r := range reqs {
		if r == nil {
			continue
		}
		i := i
		r.OnComplete(func() { ch <- hit{i} })
	}
	h := <-ch
	st, err := reqs[h.idx].Wait() // already complete; fetch outcome
	return h.idx, st, err
}

// WaitSet is an allocation-free alternative to repeated Waitany calls over
// the same request batch: a long-lived set that requests report into as
// they complete. Where a Waitany loop re-registers a callback per live
// request on every call (O(n²) closures for n arrivals), a WaitSet attaches
// each request once with no closure at all.
//
// Usage is single-consumer: Add every request of a round, call Next exactly
// Len times, then Reset for the next round. The set takes ownership of
// added requests — Next recycles each one (see Request.Free) as its
// completion is consumed. Reset must not run while an attached request can
// still complete; abandon the set instead on error paths that leave
// operations in flight.
type WaitSet struct {
	mu    sync.Mutex
	cond  sync.Cond
	reqs  []*Request
	ready []int // completed, not yet consumed (order irrelevant, LIFO pop)
}

// NewWaitSet returns an empty set, ready for Add.
func NewWaitSet() *WaitSet {
	ws := &WaitSet{}
	ws.cond.L = &ws.mu
	return ws
}

// Len is the number of requests added since the last Reset.
func (ws *WaitSet) Len() int { return len(ws.reqs) }

// Add attaches a request to the set and returns its index (the add order,
// restarting at 0 after Reset). Already-completed requests are accepted and
// become immediately available to Next.
//
//amr:hot allocs=1
func (ws *WaitSet) Add(r *Request) int {
	idx := len(ws.reqs)
	ws.reqs = append(ws.reqs, r)
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		ws.deliver(idx)
		return idx
	}
	if r.ws != nil {
		r.mu.Unlock()
		panic("mpi: request already in a WaitSet")
	}
	r.ws, r.wsIdx = ws, idx
	r.mu.Unlock()
	return idx
}

// deliver marks index idx consumable; called by Add or Request.complete.
func (ws *WaitSet) deliver(idx int) {
	ws.mu.Lock()
	ws.ready = append(ws.ready, idx)
	ws.mu.Unlock()
	ws.cond.Signal()
}

// Next blocks until some added request has completed, consumes it, and
// returns its index and outcome. Each index is returned exactly once;
// calling Next more times than Len since the last Reset blocks forever.
// The request itself is recycled before Next returns.
//
//amr:hot allocs=0
func (ws *WaitSet) Next() (int, Status, error) {
	ws.mu.Lock()
	for len(ws.ready) == 0 {
		ws.cond.Wait()
	}
	n := len(ws.ready) - 1
	idx := ws.ready[n]
	ws.ready = ws.ready[:n]
	ws.mu.Unlock()
	r := ws.reqs[idx]
	ws.reqs[idx] = nil
	_, st, err := r.Test() // completed; fetch outcome under the request lock
	r.Free()
	return idx, st, err
}

// Reset empties the set for a new round, detaching any request that was
// never consumed (without recycling it) and dropping undelivered
// completions. The backing storage is retained.
func (ws *WaitSet) Reset() {
	ws.mu.Lock()
	reqs := ws.reqs
	ws.mu.Unlock()
	for _, r := range reqs {
		if r == nil {
			continue
		}
		r.mu.Lock()
		if r.ws == ws {
			r.ws = nil
		}
		r.mu.Unlock()
	}
	ws.mu.Lock()
	ws.reqs = ws.reqs[:0]
	ws.ready = ws.ready[:0]
	ws.mu.Unlock()
}
