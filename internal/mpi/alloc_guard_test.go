package mpi

import "testing"

// pingPongAllocBaseline is the pooled message path's steady-state budget
// for one round trip (two sends, two receives): the per-call slice
// headers that escape into the `any` buffer parameters, nothing from the
// transport itself. Neither the monitor hooks (while no monitor is
// attached) nor the chaos fault hooks (while EnableChaos was never
// called — one c.rel nil check in dispatch) may move it.
const pingPongAllocBaseline = 4

// TestPingPongAllocBaseline guards the unmonitored, chaos-off fast path
// of the message engine against allocation regressions.
func TestPingPongAllocBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation baseline needs steady-state iterations")
	}
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	res := testing.Benchmark(func(b *testing.B) { benchPingPong(b, 128) })
	if got := res.AllocsPerOp(); got > pingPongAllocBaseline {
		t.Errorf("ping-pong allocs/op = %d, want <= %d (unmonitored path must stay pooled)",
			got, pingPongAllocBaseline)
	}
}
