package mpi

import (
	"fmt"

	"miniamr/internal/membuf"
)

// kind identifies the element type of a message payload or receive buffer.
type kind uint8

const (
	kindFloat64 kind = iota
	kindInt
	kindByte
)

func (k kind) String() string {
	switch k {
	case kindFloat64:
		return "[]float64"
	case kindInt:
		return "[]int"
	case kindByte:
		return "[]byte"
	}
	return "unknown"
}

func (k kind) elemSize() int {
	switch k {
	case kindFloat64, kindInt:
		return 8
	default:
		return 1
	}
}

// bufferKind classifies a user buffer. It accepts exactly the supported
// slice types.
func bufferKind(buf any) (kind, int, error) {
	switch b := buf.(type) {
	case []float64:
		return kindFloat64, len(b), nil
	case []int:
		return kindInt, len(b), nil
	case []byte:
		return kindByte, len(b), nil
	default:
		return 0, 0, fmt.Errorf("mpi: unsupported buffer type %T (want []float64, []int or []byte)", buf)
	}
}

// clonePayload copies a user buffer into an arena lease so the caller may
// reuse its buffer as soon as the send call returns (eager protocol). The
// lease is owned by the transport and released by the receiving side's
// copyPayload.
func clonePayload(a *membuf.Arena, buf any) *membuf.Lease {
	switch b := buf.(type) {
	case []float64:
		l := a.LeaseFloat64(len(b))
		copy(l.Float64(), b)
		return l
	case []int:
		l := a.LeaseInt(len(b))
		copy(l.Int(), b)
		return l
	case []byte:
		l := a.LeaseByte(len(b))
		copy(l.Byte(), b)
		return l
	}
	panic(fmt.Sprintf("mpi: unsupported payload type %T", buf))
}

// copyPayload copies a message payload into a receive buffer of the same
// kind. It returns the element count copied, or an error on kind mismatch
// or truncation (message longer than the buffer), matching MPI's
// MPI_ERR_TRUNCATE behaviour. It does not release the lease; the matching
// engine does that once the copy-out is done.
func copyPayload(dst any, pay *membuf.Lease) (int, error) {
	switch d := dst.(type) {
	case []float64:
		if pay.Kind() != membuf.KindFloat64 {
			return 0, kindMismatch(dst, pay)
		}
		s := pay.Float64()
		if len(s) > len(d) {
			return 0, truncErr(len(s), len(d))
		}
		copy(d, s)
		return len(s), nil
	case []int:
		if pay.Kind() != membuf.KindInt {
			return 0, kindMismatch(dst, pay)
		}
		s := pay.Int()
		if len(s) > len(d) {
			return 0, truncErr(len(s), len(d))
		}
		copy(d, s)
		return len(s), nil
	case []byte:
		if pay.Kind() != membuf.KindByte {
			return 0, kindMismatch(dst, pay)
		}
		s := pay.Byte()
		if len(s) > len(d) {
			return 0, truncErr(len(s), len(d))
		}
		copy(d, s)
		return len(s), nil
	}
	panic(fmt.Sprintf("mpi: unsupported receive buffer type %T", dst))
}

func kindMismatch(dst any, pay *membuf.Lease) error {
	return fmt.Errorf("mpi: receive buffer type %T does not match message type %v", dst, pay.Kind())
}

func truncErr(msgLen, bufLen int) error {
	return fmt.Errorf("mpi: message truncated: %d elements arrived for a buffer of %d", msgLen, bufLen)
}

// payloadBytes returns the wire size of a payload for the network model,
// or an error for unsupported buffer types so the cost model can never
// silently undercount wire bytes.
func payloadBytes(buf any) (int, error) {
	k, n, err := bufferKind(buf)
	if err != nil {
		return 0, err
	}
	return n * k.elemSize(), nil
}

// leaseBytes returns the wire size of a lease payload.
func leaseBytes(pay *membuf.Lease) int {
	var elem int
	switch pay.Kind() {
	case membuf.KindFloat64, membuf.KindInt:
		elem = 8
	default:
		elem = 1
	}
	return pay.Len() * elem
}
