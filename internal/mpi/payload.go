package mpi

import "fmt"

// kind identifies the element type of a message payload or receive buffer.
type kind uint8

const (
	kindFloat64 kind = iota
	kindInt
	kindByte
)

func (k kind) String() string {
	switch k {
	case kindFloat64:
		return "[]float64"
	case kindInt:
		return "[]int"
	case kindByte:
		return "[]byte"
	}
	return "unknown"
}

func (k kind) elemSize() int {
	switch k {
	case kindFloat64, kindInt:
		return 8
	default:
		return 1
	}
}

// bufferKind classifies a user buffer. It accepts exactly the supported
// slice types.
func bufferKind(buf any) (kind, int, error) {
	switch b := buf.(type) {
	case []float64:
		return kindFloat64, len(b), nil
	case []int:
		return kindInt, len(b), nil
	case []byte:
		return kindByte, len(b), nil
	default:
		return 0, 0, fmt.Errorf("mpi: unsupported buffer type %T (want []float64, []int or []byte)", buf)
	}
}

// clonePayload copies a user buffer into library-owned storage so the caller
// may reuse its buffer as soon as the send call returns (eager protocol).
func clonePayload(buf any) any {
	switch b := buf.(type) {
	case []float64:
		out := make([]float64, len(b))
		copy(out, b)
		return out
	case []int:
		out := make([]int, len(b))
		copy(out, b)
		return out
	case []byte:
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	panic(fmt.Sprintf("mpi: unsupported payload type %T", buf))
}

// copyPayload copies message data into a receive buffer of the same kind.
// It returns the element count copied, or an error on kind mismatch or
// truncation (message longer than the buffer), matching MPI's
// MPI_ERR_TRUNCATE behaviour.
func copyPayload(dst, src any) (int, error) {
	switch s := src.(type) {
	case []float64:
		d, ok := dst.([]float64)
		if !ok {
			return 0, kindMismatch(dst, src)
		}
		if len(s) > len(d) {
			return 0, truncErr(len(s), len(d))
		}
		copy(d, s)
		return len(s), nil
	case []int:
		d, ok := dst.([]int)
		if !ok {
			return 0, kindMismatch(dst, src)
		}
		if len(s) > len(d) {
			return 0, truncErr(len(s), len(d))
		}
		copy(d, s)
		return len(s), nil
	case []byte:
		d, ok := dst.([]byte)
		if !ok {
			return 0, kindMismatch(dst, src)
		}
		if len(s) > len(d) {
			return 0, truncErr(len(s), len(d))
		}
		copy(d, s)
		return len(s), nil
	}
	panic(fmt.Sprintf("mpi: unsupported payload type %T", src))
}

func kindMismatch(dst, src any) error {
	return fmt.Errorf("mpi: receive buffer type %T does not match message type %T", dst, src)
}

func truncErr(msgLen, bufLen int) error {
	return fmt.Errorf("mpi: message truncated: %d elements arrived for a buffer of %d", msgLen, bufLen)
}

// payloadBytes returns the wire size of a payload for the network model.
func payloadBytes(buf any) int {
	k, n, err := bufferKind(buf)
	if err != nil {
		return 0
	}
	return n * k.elemSize()
}
