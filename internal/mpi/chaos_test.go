package mpi

import (
	"fmt"
	mrand "math/rand/v2"
	"sync"
	"testing"
	"time"

	"miniamr/internal/cluster"
	"miniamr/internal/simnet"
)

// chaosWorld builds a world with the given faults and a fast retry
// clock, so drop-heavy tests recover in microseconds instead of the
// production default's milliseconds.
func chaosWorld(ranks int, f simnet.Faults) *World {
	w := NewWorld(cluster.MustNew(1, ranks, 1), simnet.None())
	w.EnableChaos(simnet.NewInjector(f), Resilience{
		RetryTimeout: 500 * time.Microsecond, MaxRetries: 20, Backoff: 1.5,
	})
	return w
}

// lossyFaults is a hostile schedule: drops, duplicates and spikes all
// enabled on both link classes.
func lossyFaults(seed uint64) simnet.Faults {
	lf := simnet.LinkFaults{
		Drop: 0.15, Duplicate: 0.10, Spike: 0.15, SpikeMax: 200 * time.Microsecond,
	}
	return simnet.Faults{Seed: seed, Intra: lf, Inter: lf}
}

// TestChaosPingPongRecovers: a long blocking ping-pong over a lossy link
// must complete with intact payloads — every drop recovered, every
// duplicate suppressed.
func TestChaosPingPongRecovers(t *testing.T) {
	w := chaosWorld(2, lossyFaults(7))
	const rounds = 120
	err := w.Run(func(c *Comm) {
		buf := make([]int, 2)
		peer := 1 - c.Rank()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				if err := c.Send([]int{i, 100 + i}, peer, 3); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
				if _, err := c.Recv(buf, peer, 4); err != nil {
					t.Errorf("recv %d: %v", i, err)
				} else if buf[0] != i || buf[1] != 200+i {
					t.Errorf("round %d: got %v", i, buf)
				}
			} else {
				if _, err := c.Recv(buf, peer, 3); err != nil {
					t.Errorf("recv %d: %v", i, err)
				} else if buf[0] != i || buf[1] != 100+i {
					t.Errorf("round %d: got %v", i, buf)
				}
				if err := c.Send([]int{i, 200 + i}, peer, 4); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := w.ChaosStats(); st.Recovered == 0 {
		t.Errorf("no drops recovered over %d lossy rounds: %+v (injector: %+v)",
			rounds, st, w.Faults().Stats())
	}
}

// refMatcher is the in-memory reference the property test checks the
// transport against: per source pair it records the send order and
// answers "which message must a (src, tag) receive match next" — the
// earliest unconsumed message from that source with a matching tag,
// which is exactly MPI's non-overtaking guarantee given that the
// reliable layer restores per-pair arrival order.
type refMatcher struct {
	sent     map[int][]refMsg // src -> messages in send order
	consumed map[int][]bool
}

type refMsg struct {
	tag, id int
}

func newRefMatcher() *refMatcher {
	return &refMatcher{sent: map[int][]refMsg{}, consumed: map[int][]bool{}}
}

func (r *refMatcher) send(src, tag, id int) {
	r.sent[src] = append(r.sent[src], refMsg{tag: tag, id: id})
	r.consumed[src] = append(r.consumed[src], false)
}

// match consumes and returns the id the next (src, tag-pattern) receive
// must see, or -1 if the reference has nothing left to match (a test
// bug).
func (r *refMatcher) match(src, tag int) int {
	for i, m := range r.sent[src] {
		if r.consumed[src][i] {
			continue
		}
		if tag == AnyTag || tag == m.tag {
			r.consumed[src][i] = true
			return m.id
		}
	}
	return -1
}

// TestChaosP2PMatchingProperty is the seeded property test of the
// satellite: random interleavings of Isend/Irecv with wildcard tags,
// drops and duplicates enabled, checked against the reference matcher
// for per-pair FIFO order and exactly-once delivery. Source-specific
// receives are checked against exact reference predictions; a wildcard-
// source phase then drains the rest and is checked for per-source
// monotone ids (FIFO) and completeness (exactly-once).
func TestChaosP2PMatchingProperty(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosMatchingSeed(t, seed)
		})
	}
}

func runChaosMatchingSeed(t *testing.T, seed uint64) {
	const (
		senders  = 2
		receiver = 2
		perSrc   = 120
		tags     = 3
	)
	w := chaosWorld(3, lossyFaults(seed))

	// Precompute the deterministic per-sender tag sequences and the
	// receiver's plan with one PCG per party, so the reference matcher
	// can replay them exactly.
	tagSeq := make([][]int, senders)
	for s := 0; s < senders; s++ {
		r := mrand.New(mrand.NewPCG(seed, uint64(s)))
		tagSeq[s] = make([]int, perSrc)
		for i := range tagSeq[s] {
			tagSeq[s][i] = r.IntN(tags)
		}
	}
	ref := newRefMatcher()
	for s := 0; s < senders; s++ {
		for i, tag := range tagSeq[s] {
			ref.send(s, tag, i)
		}
	}

	// The receiver's plan: a prefix of source-specific receives (random
	// source, random tag pattern, random blocking/non-blocking), checked
	// against exact reference predictions, then wildcard-source receives
	// draining the remainder.
	type recvOp struct {
		src, tag int
		nonblock bool
		wantID   int
	}
	plan := []recvOp{}
	rr := mrand.New(mrand.NewPCG(seed, 99))
	remaining := map[int]int{0: perSrc, 1: perSrc}
	specific := perSrc // specific receives across both sources
	for n := 0; n < specific; n++ {
		src := rr.IntN(senders)
		if remaining[src] == 0 {
			src = 1 - src
		}
		tag := AnyTag
		if rr.IntN(2) == 0 {
			// A concrete tag: pick the tag of some pending message from
			// src so the receive cannot starve.
			tag = -2 // sentinel; resolved below
		}
		op := recvOp{src: src, nonblock: rr.IntN(2) == 0}
		if tag == AnyTag {
			op.tag = AnyTag
		} else {
			// Choose the tag of the earliest unconsumed message so that
			// matching is always possible; the reference still decides
			// which id that is.
			op.tag = peekNextTag(ref, src)
		}
		op.wantID = ref.match(op.src, op.tag)
		if op.wantID < 0 {
			t.Fatalf("plan bug: no matchable message for src=%d tag=%d", op.src, op.tag)
		}
		plan = append(plan, op)
		remaining[src]--
	}
	wildcards := remaining[0] + remaining[1]

	var mu sync.Mutex
	got := map[int][]int{} // src -> ids in receive order (wildcard phase)

	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0, 1:
			r := mrand.New(mrand.NewPCG(seed, uint64(c.Rank()+10)))
			var reqs []*Request
			for i, tag := range tagSeq[c.Rank()] {
				payload := []int{c.Rank(), i}
				if r.IntN(2) == 0 {
					if err := c.Send(payload, receiver, tag); err != nil {
						t.Errorf("send: %v", err)
					}
				} else {
					req, err := c.Isend(payload, receiver, tag)
					if err != nil {
						t.Errorf("isend: %v", err)
						continue
					}
					reqs = append(reqs, req)
				}
				if r.IntN(8) == 0 {
					time.Sleep(time.Duration(r.IntN(50)) * time.Microsecond)
				}
			}
			if err := Waitall(reqs); err != nil {
				t.Errorf("waitall: %v", err)
			}
		case receiver:
			buf := make([]int, 2)
			for i, op := range plan {
				var st Status
				var err error
				if op.nonblock {
					var req *Request
					req, err = c.Irecv(buf, op.src, op.tag)
					if err == nil {
						st, err = req.Wait()
						req.Free()
					}
				} else {
					st, err = c.Recv(buf, op.src, op.tag)
				}
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if buf[0] != op.src || buf[1] != op.wantID {
					t.Errorf("recv %d (src=%d tag=%d): got src=%d id=%d, reference says id=%d",
						i, op.src, op.tag, buf[0], buf[1], op.wantID)
					return
				}
				if st.Source != op.src {
					t.Errorf("recv %d: status source %d, want %d", i, st.Source, op.src)
				}
			}
			for i := 0; i < wildcards; i++ {
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					t.Errorf("wildcard recv %d: %v", i, err)
					return
				}
				if st.Source != buf[0] {
					t.Errorf("wildcard recv %d: status source %d, payload says %d", i, st.Source, buf[0])
				}
				mu.Lock()
				got[buf[0]] = append(got[buf[0]], buf[1])
				mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Exactly-once and per-pair FIFO over the wildcard phase: per source
	// the ids must be strictly increasing (order) and exactly the
	// reference's unconsumed set (completeness, no duplicates).
	for src := 0; src < senders; src++ {
		var want []int
		for i, c := range ref.consumed[src] {
			if !c {
				want = append(want, i)
			}
		}
		ids := got[src]
		if len(ids) != len(want) {
			t.Fatalf("src %d: wildcard phase received %d messages, reference expects %d (%v vs %v)",
				src, len(ids), len(want), ids, want)
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("src %d: wildcard ids out of FIFO order or duplicated: got %v, want %v",
					src, ids, want)
			}
		}
	}
	if st := w.ChaosStats(); st.Recovered == 0 && st.DupsDiscarded == 0 {
		t.Errorf("chaos schedule injected nothing the transport had to recover: %+v", st)
	}
}

// peekNextTag returns the tag of the earliest unconsumed message from
// src in the reference, so a concrete-tag receive always has a match.
func peekNextTag(r *refMatcher, src int) int {
	for i, m := range r.sent[src] {
		if !r.consumed[src][i] {
			return m.tag
		}
	}
	return AnyTag
}

// TestChaosCollectives: the collectives are built on the same p2p
// transport, so they must survive the lossy fabric unchanged.
func TestChaosCollectives(t *testing.T) {
	w := chaosWorld(4, lossyFaults(11))
	err := w.Run(func(c *Comm) {
		for round := 0; round < 10; round++ {
			in := []float64{float64(c.Rank() + round)}
			out, err := c.AllreduceFloat64(in, Sum)
			if err != nil {
				t.Errorf("rank %d allreduce: %v", c.Rank(), err)
				return
			}
			want := float64(0+1+2+3) + 4*float64(round)
			if out[0] != want {
				t.Errorf("rank %d round %d: allreduce = %v, want %v", c.Rank(), round, out[0], want)
				return
			}
			if err := c.Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", c.Rank(), err)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosOwnedSends: the ownership-transfer path releases exactly one
// reference per message under drops and duplicates — the run must end
// with zero live leases.
func TestChaosOwnedSends(t *testing.T) {
	w := chaosWorld(2, lossyFaults(13))
	const msgs = 80
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				pay := w.Arena().LeaseFloat64(16)
				for j := range pay.Float64() {
					pay.Float64()[j] = float64(i)
				}
				if err := c.SendOwned(pay, 1, 5); err != nil {
					t.Errorf("sendowned %d: %v", i, err)
				}
			}
		} else {
			buf := make([]float64, 16)
			for i := 0; i < msgs; i++ {
				if _, err := c.Recv(buf, 0, 5); err != nil {
					t.Errorf("recv %d: %v", i, err)
				} else if buf[0] != float64(i) {
					t.Errorf("msg %d: payload %v", i, buf[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	waitForZeroLive(t, w)
}

// waitForZeroLive waits briefly for in-flight retransmit clones (already
// acked data whose spurious retransmissions may still be landing) to be
// released, then asserts the arena has no live leases.
func waitForZeroLive(t *testing.T, w *World) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if w.Arena().Stats().Live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("arena still holds %d live leases after chaos run", w.Arena().Stats().Live)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosOffIsInert: a world without EnableChaos must have no reliable
// state at all — the dispatch fast path stays the pooled zero-allocation
// one the alloc baselines guard.
func TestChaosOffIsInert(t *testing.T) {
	w := testWorld(t, 2)
	if w.ChaosEnabled() || w.Faults() != nil {
		t.Error("fresh world reports chaos enabled")
	}
	for r := 0; r < 2; r++ {
		if w.Comm(r).rel != nil {
			t.Errorf("rank %d has reliable state without chaos", r)
		}
	}
	if st := w.ChaosStats(); st != (ChaosStats{}) {
		t.Errorf("chaos counters nonzero on a chaos-free world: %+v", st)
	}
}
