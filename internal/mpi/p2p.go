package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"miniamr/internal/membuf"
)

// message is a payload in flight or queued at a receiver. Messages are
// recycled through msgPool once the matching engine has copied them out.
type message struct {
	src int
	tag int
	pay *membuf.Lease // transport-owned; released after copy-out
}

var msgPool = sync.Pool{New: func() any { return new(message) }}

func newMessage(src, tag int, pay *membuf.Lease) *message {
	m := msgPool.Get().(*message)
	m.src, m.tag, m.pay = src, tag, pay
	return m
}

func recycleMessage(m *message) {
	m.pay = nil
	msgPool.Put(m)
}

// recvOutcome is the completion record a blocking receive waits for.
type recvOutcome struct {
	st  Status
	err error
}

// recvWaiter parks a blocking receive without allocating a Request.
type recvWaiter struct {
	ch chan recvOutcome
}

var waiterPool = sync.Pool{New: func() any {
	return &recvWaiter{ch: make(chan recvOutcome, 1)}
}}

// postedRecv is a receive waiting for a matching message. Exactly one of
// req (non-blocking path) and waiter (blocking fast path) is set.
type postedRecv struct {
	src    int // rank or AnySource
	tag    int // tag or AnyTag
	buf    any
	req    *Request
	waiter *recvWaiter
}

var postedPool = sync.Pool{New: func() any { return new(postedRecv) }}

func newPostedRecv(src, tag int, buf any, req *Request, w *recvWaiter) *postedRecv {
	pr := postedPool.Get().(*postedRecv)
	pr.src, pr.tag, pr.buf, pr.req, pr.waiter = src, tag, buf, req, w
	return pr
}

func recyclePostedRecv(pr *postedRecv) {
	pr.buf, pr.req, pr.waiter = nil, nil, nil
	postedPool.Put(pr)
}

func (p *postedRecv) matches(src, tag int) bool {
	return (p.src == AnySource || p.src == src) && (p.tag == AnyTag || p.tag == tag)
}

// mailbox implements the classic two-queue matching algorithm: messages
// that arrive before a matching receive queue as "unexpected"; receives
// posted before a matching message queue as "posted". Scanning each queue
// in FIFO order yields MPI's non-overtaking guarantee.
type mailbox struct {
	mu         chanMutex
	unexpected []*message
	posted     []*postedRecv

	// Sanitizer hooks; nil in normal runs. Set by World.SetMonitor before
	// any traffic. The monitor is never invoked while mu is held.
	mon  Monitor
	rank int
}

func newMailbox() *mailbox { return &mailbox{mu: newChanMutex()} }

// deliver makes a message visible at this mailbox, completing the oldest
// matching posted receive if one exists.
//
//amr:hot allocs=0
func (b *mailbox) deliver(msg *message) {
	if b.mon != nil {
		b.mon.MessageDelivered(msg.src, b.rank, msg.tag)
	}
	b.mu.Lock()
	for i, pr := range b.posted {
		if pr.matches(msg.src, msg.tag) {
			b.posted = append(b.posted[:i], b.posted[i+1:]...)
			b.mu.Unlock()
			b.completeRecv(pr, msg)
			return
		}
	}
	b.unexpected = append(b.unexpected, msg)
	b.mu.Unlock()
}

// post registers a receive, completing it immediately against the oldest
// matching unexpected message if one exists.
//
//amr:hot allocs=0
func (b *mailbox) post(pr *postedRecv) {
	if b.mon != nil {
		b.mon.RecvPosted(b.rank, pr.src, pr.tag)
	}
	b.mu.Lock()
	for i, msg := range b.unexpected {
		if pr.matches(msg.src, msg.tag) {
			b.unexpected = append(b.unexpected[:i], b.unexpected[i+1:]...)
			b.mu.Unlock()
			b.completeRecv(pr, msg)
			return
		}
	}
	b.posted = append(b.posted, pr)
	b.mu.Unlock()
}

// completeRecv copies the payload out, returns it to the arena, recycles
// the transport records, and signals the receiver.
//
//amr:hot allocs=0
func (b *mailbox) completeRecv(pr *postedRecv, msg *message) {
	if b.mon != nil {
		b.mon.MessageMatched(b.rank, msg.src, msg.tag, pr.src, pr.tag)
	}
	count, err := copyPayload(pr.buf, msg.pay)
	st := Status{Source: msg.src, Tag: msg.tag, Count: count}
	msg.pay.Release()
	recycleMessage(msg)
	req, w := pr.req, pr.waiter
	recyclePostedRecv(pr)
	if w != nil {
		w.ch <- recvOutcome{st: st, err: err}
		return
	}
	req.complete(st, err)
}

// chanMutex is a mutex built on a channel so that lock acquisition parks
// the goroutine cooperatively; with thousands of rank goroutines on few OS
// threads this behaves better than spinning sync.Mutex under heavy
// contention and keeps the package free of lock-ordering surprises.
type chanMutex chan struct{}

func newChanMutex() chanMutex {
	m := make(chanMutex, 1)
	return m
}

func (m chanMutex) Lock()   { m <- struct{}{} }
func (m chanMutex) Unlock() { <-m }

// delayFor returns the simulated transfer time of a payload to dest.
func (c *Comm) delayFor(dest, bytes int) time.Duration {
	if c.world.net.IsZero() {
		return 0
	}
	return c.world.net.EffectiveDelay(c.world.topo.SameNode(c.rank, dest), bytes)
}

// dispatch injects an owned payload into the transport, charging the cost
// model and completing req (if non-nil) once the message is delivered to
// the destination's matching engine. Callers must have validated dest and
// tag. Ownership of pay passes to the transport here.
//
//amr:hot allocs=1
func (c *Comm) dispatch(pay *membuf.Lease, dest, tag, count int, req *Request) {
	if c.rel != nil {
		// Chaos enabled: route through the resilient sequence-numbered
		// path (reliable.go). One nil check is the fast path's whole cost.
		c.dispatchReliable(pay, dest, tag, count, req)
		return
	}
	bytes := leaseBytes(pay)
	c.sentMsgs.Add(1)
	c.sentBytes.Add(int64(bytes))
	if c.world.transport != nil && !c.world.IsLocal(dest) {
		// Remote destination: serialise the lease into the wire transport.
		// Monitor accounting happens at the receiving process, where the
		// message materialises (see World.RemoteDeliver), so each process's
		// sent/delivered ledger stays balanced.
		c.dispatchRemote(pay, dest, tag, count, bytes, req)
		return
	}
	if c.world.mon != nil {
		c.world.mon.MessageSent(c.rank, dest, tag)
	}
	msg := newMessage(c.rank, tag, pay)
	dstBox := c.world.comms[dest].box
	st := Status{Source: c.rank, Tag: tag, Count: count}
	if delay := c.delayFor(dest, bytes); delay > 0 {
		go func() {
			time.Sleep(delay)
			dstBox.deliver(msg)
			if req != nil {
				req.complete(st, nil)
			}
		}()
		return
	}
	// Free or sub-granularity transfer: deliver synchronously rather than
	// paying a goroutine per message.
	dstBox.deliver(msg)
	if req != nil {
		req.complete(st, nil)
	}
}

// dispatchRemote writes one plain message to the wire transport. A
// simulated interconnect cost still applies on top of the real wire time:
// a model delay defers the socket write exactly as it defers in-process
// delivery. A transport failure is fatal for the rank (the MPI job lost
// its peer), surfaced as a panic that World.Run converts into an error.
func (c *Comm) dispatchRemote(pay *membuf.Lease, dest, tag, count, bytes int, req *Request) {
	st := Status{Source: c.rank, Tag: tag, Count: count}
	if delay := c.delayFor(dest, bytes); delay > 0 {
		go func() {
			time.Sleep(delay)
			c.wireSend(pay, dest, tag, 0, false)
			pay.Release()
			if req != nil {
				req.complete(st, nil)
			}
		}()
		return
	}
	c.wireSend(pay, dest, tag, 0, false)
	pay.Release()
	if req != nil {
		req.complete(st, nil)
	}
}

// wireSend pushes one delivery attempt through the transport, borrowing
// the lease for the duration of the call. On the plain path a wire error
// is fatal: nothing will retry, so losing the message silently would
// wedge the receiver. On the reliable path a failed write is just
// another dropped attempt — the outbox retransmits exactly as for an
// injected drop — and, after the job has quiesced, a spurious
// retransmission racing transport teardown must not take the process
// down.
func (c *Comm) wireSend(pay *membuf.Lease, dest, tag, seq int, reliable bool) {
	if err := c.world.transport.Send(c.rank, dest, tag, seq, reliable, pay); err != nil && !reliable {
		panic(fmt.Sprintf("mpi: wire send %d->%d tag %d: %v", c.rank, dest, tag, err))
	}
}

// Isend starts a non-blocking send of buf to dest with the given tag. The
// buffer is copied eagerly (into a pooled arena buffer): the caller may
// reuse it as soon as Isend returns. The returned request completes when
// the message has been delivered to the destination's matching engine
// (i.e. after its simulated transfer time).
//
//amr:hot allocs=2
func (c *Comm) Isend(buf any, dest, tag int) (*Request, error) {
	if tag < 0 || tag >= MaxUserTag {
		return nil, fmt.Errorf("mpi: send tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	return c.isend(buf, dest, tag)
}

// isend is Isend without the user-tag restriction; collectives use the
// reserved space above MaxUserTag.
//
//amr:hot allocs=2
func (c *Comm) isend(buf any, dest, tag int) (*Request, error) {
	if dest < 0 || dest >= c.Size() {
		return nil, fmt.Errorf("mpi: send destination %d out of range [0,%d)", dest, c.Size())
	}
	_, n, err := bufferKind(buf)
	if err != nil {
		return nil, err
	}
	req := newRequest()
	c.dispatch(clonePayload(c.world.arena, buf), dest, tag, n, req)
	return req, nil
}

// IsendOwned starts a non-blocking ownership-transfer send: the library
// takes the lease, and the receiving side returns the buffer to the arena
// after copying it out. The caller must not touch the lease or its buffer
// after a successful call. On error the caller retains ownership.
//
//amr:hot allocs=4
func (c *Comm) IsendOwned(pay *membuf.Lease, dest, tag int) (*Request, error) {
	if tag < 0 || tag >= MaxUserTag {
		return nil, fmt.Errorf("mpi: send tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	if dest < 0 || dest >= c.Size() {
		return nil, fmt.Errorf("mpi: send destination %d out of range [0,%d)", dest, c.Size())
	}
	req := newRequest()
	c.dispatch(pay, dest, tag, pay.Len(), req)
	return req, nil
}

// SendOwned is the blocking form of IsendOwned: it returns once the
// message has been delivered to the destination's matching engine. On
// error the caller retains ownership of the lease.
//
//amr:hot allocs=4
func (c *Comm) SendOwned(pay *membuf.Lease, dest, tag int) error {
	if tag < 0 || tag >= MaxUserTag {
		return fmt.Errorf("mpi: send tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	if dest < 0 || dest >= c.Size() {
		return fmt.Errorf("mpi: send destination %d out of range [0,%d)", dest, c.Size())
	}
	if c.delayFor(dest, leaseBytes(pay)) == 0 {
		c.dispatch(pay, dest, tag, pay.Len(), nil)
		return nil
	}
	req := newRequest()
	c.dispatch(pay, dest, tag, pay.Len(), req)
	_, err := req.Wait()
	req.Free()
	return err
}

// Irecv starts a non-blocking receive into buf from the given source
// (or AnySource) with the given tag (or AnyTag). The request completes when
// a matching message has been copied into buf; Status.Count holds the
// number of elements received.
//
//amr:hot allocs=2
func (c *Comm) Irecv(buf any, source, tag int) (*Request, error) {
	if tag != AnyTag && (tag < 0 || tag >= MaxUserTag) {
		return nil, fmt.Errorf("mpi: receive tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	return c.irecv(buf, source, tag)
}

//amr:hot allocs=2
func (c *Comm) irecv(buf any, source, tag int) (*Request, error) {
	if source != AnySource && (source < 0 || source >= c.Size()) {
		return nil, fmt.Errorf("mpi: receive source %d out of range [0,%d)", source, c.Size())
	}
	if _, _, err := bufferKind(buf); err != nil {
		return nil, err
	}
	req := newRequest()
	if mon := c.world.mon; mon != nil {
		req.mon = mon
		req.binfo = BlockInfo{Rank: c.rank, Peer: source, Tag: tag, Op: "Request.Wait"}
	}
	c.box.post(newPostedRecv(source, tag, buf, req, nil))
	return req, nil
}

// Send is the blocking form of Isend. When the transfer is free under the
// network model it runs allocation-free: the payload clone comes from the
// arena and no Request is created.
//
//amr:hot allocs=2
func (c *Comm) Send(buf any, dest, tag int) error {
	if tag < 0 || tag >= MaxUserTag {
		return fmt.Errorf("mpi: send tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	return c.send(buf, dest, tag)
}

// Recv is the blocking form of Irecv. It parks on a pooled waiter instead
// of allocating a Request.
//
//amr:hot allocs=2
func (c *Comm) Recv(buf any, source, tag int) (Status, error) {
	if tag != AnyTag && (tag < 0 || tag >= MaxUserTag) {
		return Status{}, fmt.Errorf("mpi: receive tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	return c.recv(buf, source, tag)
}

// Iprobe reports, without blocking or consuming, whether a message
// matching (source, tag) — with the usual wildcards — has already arrived.
// On a match the returned status carries the message's source, tag and
// element count, so a caller can size a receive buffer first.
func (c *Comm) Iprobe(source, tag int) (bool, Status, error) {
	if source != AnySource && (source < 0 || source >= c.Size()) {
		return false, Status{}, fmt.Errorf("mpi: probe source %d out of range [0,%d)", source, c.Size())
	}
	if tag != AnyTag && (tag < 0 || tag >= MaxUserTag) {
		return false, Status{}, fmt.Errorf("mpi: probe tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	probe := postedRecv{src: source, tag: tag}
	c.box.mu.Lock()
	defer c.box.mu.Unlock()
	for _, msg := range c.box.unexpected {
		if probe.matches(msg.src, msg.tag) {
			return true, Status{Source: msg.src, Tag: msg.tag, Count: msg.pay.Len()}, nil
		}
	}
	return false, Status{}, nil
}

// send is Send without the user-tag restriction.
//
//amr:hot allocs=2
func (c *Comm) send(buf any, dest, tag int) error {
	if dest < 0 || dest >= c.Size() {
		return fmt.Errorf("mpi: send destination %d out of range [0,%d)", dest, c.Size())
	}
	k, n, err := bufferKind(buf)
	if err != nil {
		return err
	}
	if c.delayFor(dest, n*k.elemSize()) == 0 {
		c.dispatch(clonePayload(c.world.arena, buf), dest, tag, n, nil)
		return nil
	}
	req := newRequest()
	c.dispatch(clonePayload(c.world.arena, buf), dest, tag, n, req)
	_, err = req.Wait()
	req.Free()
	return err
}

// recv is Recv without the user-tag restriction.
//
//amr:hot allocs=3
func (c *Comm) recv(buf any, source, tag int) (Status, error) {
	if source != AnySource && (source < 0 || source >= c.Size()) {
		return Status{}, fmt.Errorf("mpi: receive source %d out of range [0,%d)", source, c.Size())
	}
	if _, _, err := bufferKind(buf); err != nil {
		return Status{}, err
	}
	w := waiterPool.Get().(*recvWaiter)
	c.box.post(newPostedRecv(source, tag, buf, nil, w))
	var out recvOutcome
	if mon := c.world.mon; mon != nil {
		select {
		case out = <-w.ch:
		default:
			token := mon.BlockEnter(
				BlockInfo{Rank: c.rank, Peer: source, Tag: tag, Op: "Recv"},
				func(err error) {
					// Non-blocking: if the genuine outcome raced in, the
					// abort is a no-op and the receiver consumes it instead.
					select {
					case w.ch <- recvOutcome{err: err}:
					default:
					}
				})
			out = <-w.ch
			mon.BlockExit(token)
		}
	} else {
		out = <-w.ch
	}
	if errors.Is(out.err, ErrAborted) {
		// The waiter's channel could still receive a late genuine outcome;
		// keep it out of the pool so it cannot corrupt a future receive.
		return out.st, out.err
	}
	waiterPool.Put(w)
	return out.st, out.err
}
