package mpi

import (
	"fmt"
	"time"
)

// message is a payload in flight or queued at a receiver.
type message struct {
	src  int
	tag  int
	data any // library-owned copy
}

// postedRecv is a receive waiting for a matching message.
type postedRecv struct {
	src int // rank or AnySource
	tag int // tag or AnyTag
	buf any
	req *Request
}

func (p *postedRecv) matches(src, tag int) bool {
	return (p.src == AnySource || p.src == src) && (p.tag == AnyTag || p.tag == tag)
}

// mailbox implements the classic two-queue matching algorithm: messages
// that arrive before a matching receive queue as "unexpected"; receives
// posted before a matching message queue as "posted". Scanning each queue
// in FIFO order yields MPI's non-overtaking guarantee.
type mailbox struct {
	mu         chanMutex
	unexpected []*message
	posted     []*postedRecv
}

func newMailbox() *mailbox { return &mailbox{mu: newChanMutex()} }

// deliver makes a message visible at this mailbox, completing the oldest
// matching posted receive if one exists.
func (b *mailbox) deliver(msg *message) {
	b.mu.Lock()
	for i, pr := range b.posted {
		if pr.matches(msg.src, msg.tag) {
			b.posted = append(b.posted[:i], b.posted[i+1:]...)
			b.mu.Unlock()
			completeRecv(pr, msg)
			return
		}
	}
	b.unexpected = append(b.unexpected, msg)
	b.mu.Unlock()
}

// post registers a receive, completing it immediately against the oldest
// matching unexpected message if one exists.
func (b *mailbox) post(pr *postedRecv) {
	b.mu.Lock()
	for i, msg := range b.unexpected {
		if pr.matches(msg.src, msg.tag) {
			b.unexpected = append(b.unexpected[:i], b.unexpected[i+1:]...)
			b.mu.Unlock()
			completeRecv(pr, msg)
			return
		}
	}
	b.posted = append(b.posted, pr)
	b.mu.Unlock()
}

func completeRecv(pr *postedRecv, msg *message) {
	count, err := copyPayload(pr.buf, msg.data)
	pr.req.complete(Status{Source: msg.src, Tag: msg.tag, Count: count}, err)
}

// chanMutex is a mutex built on a channel so that lock acquisition parks
// the goroutine cooperatively; with thousands of rank goroutines on few OS
// threads this behaves better than spinning sync.Mutex under heavy
// contention and keeps the package free of lock-ordering surprises.
type chanMutex chan struct{}

func newChanMutex() chanMutex {
	m := make(chanMutex, 1)
	return m
}

func (m chanMutex) Lock()   { m <- struct{}{} }
func (m chanMutex) Unlock() { <-m }

// Isend starts a non-blocking send of buf to dest with the given tag. The
// buffer is copied eagerly: the caller may reuse it as soon as Isend
// returns. The returned request completes when the message has been
// delivered to the destination's matching engine (i.e. after its simulated
// transfer time).
func (c *Comm) Isend(buf any, dest, tag int) (*Request, error) {
	if tag < 0 || tag >= MaxUserTag {
		return nil, fmt.Errorf("mpi: send tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	return c.isend(buf, dest, tag)
}

// isend is Isend without the user-tag restriction; collectives use the
// reserved space above MaxUserTag.
func (c *Comm) isend(buf any, dest, tag int) (*Request, error) {
	if dest < 0 || dest >= c.Size() {
		return nil, fmt.Errorf("mpi: send destination %d out of range [0,%d)", dest, c.Size())
	}
	_, n, err := bufferKind(buf)
	if err != nil {
		return nil, err
	}
	msg := &message{src: c.rank, tag: tag, data: clonePayload(buf)}
	req := newRequest()
	st := Status{Source: c.rank, Tag: tag, Count: n}
	c.sentMsgs.Add(1)
	c.sentBytes.Add(int64(payloadBytes(buf)))
	dstBox := c.world.comms[dest].box
	var delay time.Duration
	if !c.world.net.IsZero() {
		delay = c.world.net.EffectiveDelay(c.world.topo.SameNode(c.rank, dest), payloadBytes(buf))
	}
	if delay == 0 {
		// Free or sub-granularity transfer: deliver synchronously rather
		// than paying a goroutine per message.
		dstBox.deliver(msg)
		req.complete(st, nil)
		return req, nil
	}
	go func() {
		time.Sleep(delay)
		dstBox.deliver(msg)
		req.complete(st, nil)
	}()
	return req, nil
}

// Irecv starts a non-blocking receive into buf from the given source
// (or AnySource) with the given tag (or AnyTag). The request completes when
// a matching message has been copied into buf; Status.Count holds the
// number of elements received.
func (c *Comm) Irecv(buf any, source, tag int) (*Request, error) {
	if tag != AnyTag && (tag < 0 || tag >= MaxUserTag) {
		return nil, fmt.Errorf("mpi: receive tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	return c.irecv(buf, source, tag)
}

func (c *Comm) irecv(buf any, source, tag int) (*Request, error) {
	if source != AnySource && (source < 0 || source >= c.Size()) {
		return nil, fmt.Errorf("mpi: receive source %d out of range [0,%d)", source, c.Size())
	}
	if _, _, err := bufferKind(buf); err != nil {
		return nil, err
	}
	req := newRequest()
	c.box.post(&postedRecv{src: source, tag: tag, buf: buf, req: req})
	return req, nil
}

// Send is the blocking form of Isend.
func (c *Comm) Send(buf any, dest, tag int) error {
	req, err := c.Isend(buf, dest, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Recv is the blocking form of Irecv.
func (c *Comm) Recv(buf any, source, tag int) (Status, error) {
	req, err := c.Irecv(buf, source, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Iprobe reports, without blocking or consuming, whether a message
// matching (source, tag) — with the usual wildcards — has already arrived.
// On a match the returned status carries the message's source, tag and
// element count, so a caller can size a receive buffer first.
func (c *Comm) Iprobe(source, tag int) (bool, Status, error) {
	if source != AnySource && (source < 0 || source >= c.Size()) {
		return false, Status{}, fmt.Errorf("mpi: probe source %d out of range [0,%d)", source, c.Size())
	}
	if tag != AnyTag && (tag < 0 || tag >= MaxUserTag) {
		return false, Status{}, fmt.Errorf("mpi: probe tag %d out of range [0,%d)", tag, MaxUserTag)
	}
	probe := &postedRecv{src: source, tag: tag}
	c.box.mu.Lock()
	defer c.box.mu.Unlock()
	for _, msg := range c.box.unexpected {
		if probe.matches(msg.src, msg.tag) {
			_, n, err := bufferKind(msg.data)
			if err != nil {
				return false, Status{}, err
			}
			return true, Status{Source: msg.src, Tag: msg.tag, Count: n}, nil
		}
	}
	return false, Status{}, nil
}

func (c *Comm) send(buf any, dest, tag int) error {
	req, err := c.isend(buf, dest, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

func (c *Comm) recv(buf any, source, tag int) (Status, error) {
	req, err := c.irecv(buf, source, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}
