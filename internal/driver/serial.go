package driver

import (
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
)

// SerialEngine is the MPI-only variant's execution engine: one thread per
// rank, a reused waitset driving Waitany-style unpacking, a reused
// in-flight send list, and one pooled scratch buffer for cross-level
// local copies. The hot path must not allocate, so every piece is
// constructed once and recycled across stages.
type SerialEngine struct {
	arena    *membuf.Arena
	ws       *mpi.WaitSet
	sendReqs []*mpi.Request
	scratch  []float64
}

// NewSerialEngine builds the engine over the world's arena with a scratch
// buffer of scratchLen float64s.
func NewSerialEngine(a *membuf.Arena, scratchLen int) *SerialEngine {
	return &SerialEngine{
		arena:   a,
		ws:      mpi.NewWaitSet(),
		scratch: a.GetFloat64(scratchLen),
	}
}

// Scratch returns the engine's staging buffer.
func (e *SerialEngine) Scratch() []float64 { return e.scratch }

// Wait returns the reused waitset for this stage's receives.
func (e *SerialEngine) Wait() *mpi.WaitSet { return e.ws }

// TrackSend records an in-flight send request.
func (e *SerialEngine) TrackSend(req *mpi.Request) {
	e.sendReqs = append(e.sendReqs, req)
}

// FlushSends waits for the tracked sends to complete, recycles their
// requests and resets the list. On a wait error the requests are not
// freed (in-flight operations may still reference them); the run is over
// anyway.
func (e *SerialEngine) FlushSends() error {
	err := mpi.Waitall(e.sendReqs)
	if err == nil {
		for _, req := range e.sendReqs {
			req.Free()
		}
	}
	e.sendReqs = e.sendReqs[:0]
	return err
}

// Close returns the engine's pooled buffers. Called after a successful
// run; a failed run abandons them like the rest of the rank's state.
func (e *SerialEngine) Close() {
	e.arena.PutFloat64(e.scratch)
	e.scratch = nil
}
