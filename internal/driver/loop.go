package driver

import "time"

// Hooks is the variant-specific stage set plugged into the shared main
// loop. An application implements Hooks once per variant; the loop is
// identical across applications and variants (the paper's Algorithm 1/4
// shape: communicate/compute stages, periodic checksums, periodic
// refinement at quiesced points).
type Hooks interface {
	// BeginStep runs once before each timestep's stages — the slot for
	// per-step global work such as a CFL timestep reduction. ts counts
	// from 1.
	BeginStep(ts int) error
	// Communicate exchanges halo data for the variable group [g0, g1).
	// stage is the 1-based stage within the timestep, for applications
	// whose stages differ (e.g. dimension-split sweeps).
	Communicate(stage, g0, g1 int) error
	// Compute applies the stage's kernel to the group.
	Compute(stage, g0, g1 int) error
	// Checksum runs one checksum/validation stage over all variables;
	// stage is the global stage counter.
	Checksum(stage int) error
	// Quiesce completes all in-flight asynchronous stage work. The loop
	// calls it before starting the refinement clock so that drained stage
	// work is not accounted as refinement time.
	Quiesce() error
	// Refine runs one refinement phase; advance moves the refinement
	// sources first. Applications without mesh adaptation return
	// (false, nil) and configure the loop with RefineEvery <= 0.
	Refine(advance bool) (bool, error)
	// Drain completes outstanding asynchronous work at the end of the run
	// (including a pending delayed checksum validation).
	Drain() error
}

// Loop is the shared main-loop schedule. The zero value of the optional
// knobs disables them (no initial refinement, no refinement epochs, no
// checksums); Timesteps, StagesPerTimestep and Groups describe the
// mandatory stage structure.
type Loop struct {
	// Timesteps and StagesPerTimestep shape the outer loops.
	Timesteps         int
	StagesPerTimestep int
	// ChecksumEvery triggers a checksum stage every N global stages;
	// <= 0 disables checksums.
	ChecksumEvery int
	// RefineEvery triggers a refinement phase every N timesteps; <= 0
	// disables refinement.
	RefineEvery int
	// Groups lists the variable groups of each stage as [g0, g1) ranges.
	Groups [][2]int
	// InitialRefine iterates Refine(false) before the main loop until the
	// mesh reaches the refinement sources' steady state, at most
	// MaxInitialRefine+1 times (one level per epoch, as the reference
	// refines before its main loop).
	InitialRefine    bool
	MaxInitialRefine int
	// StartStep and StartStage carry restart counters: the loop resumes
	// at timestep StartStep+1 with the global stage counter preloaded.
	StartStep  int
	StartStage int
}

// LoopResult reports the loop's own accounting.
type LoopResult struct {
	// Elapsed is the wall-clock time of the whole loop including the
	// initial refinement.
	Elapsed time.Duration
	// RefineTime is the wall-clock time spent inside refinement phases
	// (initial refinement included, quiesce excluded).
	RefineTime time.Duration
	// FinalStage is the global stage counter after the last timestep,
	// the value a checkpoint must carry.
	FinalStage int
}

// Run executes the schedule over a stage set.
func (l Loop) Run(h Hooks) (LoopResult, error) {
	var res LoopResult
	start := time.Now()

	if l.InitialRefine {
		rStart := time.Now()
		for i := 0; i <= l.MaxInitialRefine; i++ {
			changed, err := h.Refine(false)
			if err != nil {
				return res, err
			}
			if !changed {
				break
			}
		}
		res.RefineTime += time.Since(rStart)
	}

	stage := l.StartStage
	for ts := l.StartStep + 1; ts <= l.Timesteps; ts++ {
		if err := h.BeginStep(ts); err != nil {
			return res, err
		}
		for st := 1; st <= l.StagesPerTimestep; st++ {
			stage++
			for _, g := range l.Groups {
				if err := h.Communicate(st, g[0], g[1]); err != nil {
					return res, err
				}
				if err := h.Compute(st, g[0], g[1]); err != nil {
					return res, err
				}
			}
			if l.ChecksumEvery > 0 && stage%l.ChecksumEvery == 0 {
				if err := h.Checksum(stage); err != nil {
					return res, err
				}
			}
		}
		if l.RefineEvery > 0 && ts%l.RefineEvery == 0 {
			if err := h.Quiesce(); err != nil {
				return res, err
			}
			rStart := time.Now()
			if _, err := h.Refine(true); err != nil {
				return res, err
			}
			res.RefineTime += time.Since(rStart)
		}
	}
	if err := h.Drain(); err != nil {
		return res, err
	}
	res.FinalStage = stage
	res.Elapsed = time.Since(start)
	return res, nil
}
