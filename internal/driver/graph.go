package driver

import (
	"time"

	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/tampi"
	"miniamr/internal/task"
	"miniamr/internal/trace"
)

// GraphOptions configures a GraphEngine.
type GraphOptions struct {
	// Comm is the rank's communicator; the task-aware MPI context binds
	// to it.
	Comm *mpi.Comm
	// Recorder, when non-nil, receives in-flight communication spans.
	Recorder *trace.Recorder
	// Workers is the task runtime's worker count.
	Workers int
	// DisableImmediateSuccessor turns off the runtime's immediate
	// successor scheduling policy (the paper's ablation).
	DisableImmediateSuccessor bool
	// Sanitizer, when non-nil, observes the task graph for
	// dependency races.
	Sanitizer *sanitize.Sanitizer
	// Observer, when non-nil, additionally receives the task graph's
	// lifecycle events (teed with the sanitizer's observer). Used by the
	// width-measurement harness to compare dynamic concurrency against
	// the static model.
	Observer task.Observer
	// ScratchLen sizes the per-worker staging buffers.
	ScratchLen int
}

// GraphEngine is the data-flow variant's execution engine: a task runtime
// with data dependencies, a task-aware MPI context issuing communication
// from tasks, per-worker scratch buffers, and the sanitizer/trace
// plumbing shared by every taskified application.
type GraphEngine struct {
	// X is the task-aware MPI context; stage definitions issue their
	// communication through it (X.Recv, X.Iwait, X.SendOwned, ...).
	X *tampi.Context

	rt        *task.Runtime
	san       *sanitize.DepSanitizer // nil when the sanitizer is off
	rec       *trace.Recorder
	rank      int
	arena     *membuf.Arena
	scratches [][]float64
}

// NewGraphEngine builds the task runtime, binds the task-aware MPI
// context and allocates the per-worker scratch buffers.
func NewGraphEngine(o GraphOptions) (*GraphEngine, error) {
	opts := task.Options{
		Workers:                   o.Workers,
		DisableImmediateSuccessor: o.DisableImmediateSuccessor,
	}
	var san *sanitize.DepSanitizer
	if o.Sanitizer != nil {
		// The concrete observer is assigned only when non-nil, so the
		// runtime's nil check stays meaningful (a nil *DepSanitizer in an
		// interface would not compare equal to nil).
		san = o.Sanitizer.Observer(o.Comm.Rank())
		opts.Observer = task.Tee(san, o.Observer)
	} else {
		opts.Observer = o.Observer
	}
	rt, err := task.NewRuntime(opts)
	if err != nil {
		return nil, err
	}
	g := &GraphEngine{
		X:         tampi.New(o.Comm),
		rt:        rt,
		san:       san,
		rec:       o.Recorder,
		rank:      o.Comm.Rank(),
		arena:     o.Comm.World().Arena(),
		scratches: make([][]float64, o.Workers),
	}
	for i := range g.scratches {
		g.scratches[i] = g.arena.GetFloat64(o.ScratchLen)
	}
	return g, nil
}

// Spawn submits a task with the given dependency accesses.
func (g *GraphEngine) Spawn(label string, body func(*task.Task), accs ...task.Access) {
	g.rt.Spawn(label, body, accs...)
}

// Wait blocks until every spawned task completed (a global taskwait).
func (g *GraphEngine) Wait() { g.rt.Wait() }

// WaitKeys blocks until the tasks writing the given dependency keys
// completed (a taskwait with dependencies).
func (g *GraphEngine) WaitKeys(keys ...any) { g.rt.WaitKeys(keys...) }

// SpawnCount returns the number of tasks spawned so far.
func (g *GraphEngine) SpawnCount() int { return g.rt.SpawnCount() }

// Scratch returns worker w's staging buffer.
func (g *GraphEngine) Scratch(w int) []float64 { return g.scratches[w] }

// NoteRead reports a task's actual read to the dependency-race
// sanitizer. With the sanitizer off it is a nil check.
func (g *GraphEngine) NoteRead(t *task.Task, key any) {
	if g.san != nil {
		g.san.NoteRead(t, key)
	}
}

// NoteWrite reports a task's actual write to the sanitizer.
func (g *GraphEngine) NoteWrite(t *task.Task, key any) {
	if g.san != nil {
		g.san.NoteWrite(t, key)
	}
}

// BindSection registers which storage a buffer-section key stands for, so
// the sanitizer can flag one buffer bound under two keys. Only persistent
// buffers should be bound: sections of per-stage arena leases are
// legitimately recycled under fresh keys.
func (g *GraphEngine) BindSection(key any, sec []float64) {
	if g.san != nil && len(sec) > 0 {
		g.san.BindRegion(key, &sec[0])
	}
}

// ResetBindings drops the sanitizer's section bindings; applications call
// it when communication plans are rebuilt over recycled storage.
func (g *GraphEngine) ResetBindings() {
	if g.san != nil {
		g.san.ResetBindings()
	}
}

// RecordInFlight traces the window from operation start to request
// completion — the in-flight communication that the data-flow model
// overlaps with computation (what the paper's Figure 3 visualises).
//
//amr:hot allocs=1
func (g *GraphEngine) RecordInFlight(t *task.Task, label string, req *mpi.Request) {
	if g.rec == nil {
		return
	}
	rec, rank, worker := g.rec, g.rank, t.Worker()
	start := time.Now()
	req.OnComplete(func() {
		rec.Record(rank, worker, label, start, time.Now())
	})
}

// Close shuts the task runtime down and returns the pooled scratch
// buffers. Called after a successful run.
func (g *GraphEngine) Close() {
	g.rt.Shutdown()
	for _, sc := range g.scratches {
		g.arena.PutFloat64(sc)
	}
	g.scratches = nil
}
