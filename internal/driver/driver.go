// Package driver is the variant-agnostic execution skeleton shared by
// every proxy application in this repository. The paper's thesis is that
// the TAMPI+data-flow transformation is a pattern, not a miniAMR trick;
// this package makes the pattern an API: the three parallelisation
// variants (MPI-only, fork-join, data-flow), the shared main loop, the
// checksum oracle, pooled communication slabs and cached message plans,
// and the per-variant execution engines all live here, so an application
// only contributes stage definitions (pack/compute/reduce bodies and
// their dependency keys).
//
// An application integrates in three steps:
//
//  1. Register its name and supported variants with Register (init time).
//  2. Implement Hooks over its per-rank state, one implementation per
//     variant, each built on the matching engine (SerialEngine,
//     ForkJoinEngine, GraphEngine).
//  3. Expose a Job that binds a validated configuration to a Program;
//     the harness runs Jobs without knowing the application.
package driver

import (
	"fmt"
	"sort"
	"sync"

	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/trace"
)

// Variant selects a parallelisation strategy.
type Variant string

// The three variants the paper evaluates.
const (
	MPIOnly  Variant = "mpionly"  // reference MPI-only, one rank per core
	ForkJoin Variant = "forkjoin" // hybrid MPI+OpenMP fork-join
	DataFlow Variant = "dataflow" // hybrid TAMPI+OmpSs-2 data-flow (the paper's)
)

// Variants lists all variants in presentation order.
var Variants = []Variant{MPIOnly, ForkJoin, DataFlow}

// String implements flag.Value-style display.
func (v Variant) String() string { return string(v) }

// Program is one rank's bound entry point: a validated configuration
// closed over an application runner, ready to execute on a communicator.
type Program func(c *mpi.Comm, rec *trace.Recorder) (Result, error)

// Job is an application run the harness can execute without knowing the
// application: it names the app (for the variant registry) and binds a
// variant to a runnable Program.
type Job interface {
	// App returns the registered application name.
	App() string
	// Bind resolves the variant to a Program, applying the harness-owned
	// settings: workers is the per-rank core count and san, when non-nil,
	// is the attached runtime sanitizer. Bind validates the underlying
	// configuration and fails on unknown variants.
	Bind(v Variant, workers int, san *sanitize.Sanitizer) (Program, error)
}

var (
	regMu    sync.Mutex
	registry = map[string][]Variant{}
)

// Register records an application and the variants it implements.
// Applications register from an init function; registering the same name
// again replaces the previous entry.
func Register(app string, variants ...Variant) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[app] = append([]Variant(nil), variants...)
}

// Apps returns the registered application names, sorted.
func Apps() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CheckVariant validates an (application, variant) pair against the
// registry, with an error that names the known variants: unknown variant
// strings must fail loudly instead of falling through to a default.
func CheckVariant(app string, v Variant) error {
	regMu.Lock()
	known, ok := registry[app]
	regMu.Unlock()
	if !ok {
		return fmt.Errorf("driver: unknown application %q (registered: %v)", app, Apps())
	}
	for _, k := range known {
		if k == v {
			return nil
		}
	}
	return fmt.Errorf("driver: application %q does not implement variant %q (known variants: %v)", app, v, known)
}
