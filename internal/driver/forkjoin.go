package driver

import (
	"miniamr/internal/forkjoin"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
)

// ForkJoinEngine is the fork-join variant's execution engine: a worker
// pool for parallel regions with static or dynamic scheduling, per-worker
// scratch buffers and arena caches, and a reused waitset on the master
// thread (all MPI communication stays on the master, as the hybrid
// MPI+OpenMP reference does).
type ForkJoinEngine struct {
	arena     *membuf.Arena
	pool      *forkjoin.Pool
	dynamic   bool
	scratches [][]float64     // per-worker staging for cross-level copies
	caches    []*membuf.Cache // per-worker arena fronts
	ws        *mpi.WaitSet    // reused across stages by the master thread
	closed    bool
}

// NewForkJoinEngine builds a pool of workers with per-worker scratch
// buffers of scratchLen float64s. dynamic selects work-stealing chunked
// scheduling for parallel loops; the default is static per-worker
// partitioning.
func NewForkJoinEngine(a *membuf.Arena, workers, scratchLen int, dynamic bool) *ForkJoinEngine {
	e := &ForkJoinEngine{
		arena:     a,
		pool:      forkjoin.MustNew(workers),
		dynamic:   dynamic,
		scratches: make([][]float64, workers),
		caches:    make([]*membuf.Cache, workers),
		ws:        mpi.NewWaitSet(),
	}
	for i := range e.scratches {
		e.scratches[i] = a.GetFloat64(scratchLen)
		e.caches[i] = membuf.NewCache(a)
	}
	return e
}

// ParFor dispatches a parallel loop with the configured schedule; body
// receives the iteration index and the executing worker.
func (e *ForkJoinEngine) ParFor(n int, body func(i, w int)) {
	if e.dynamic {
		e.pool.ForDynamic(n, 1, body)
		return
	}
	e.pool.ForWorker(n, body)
}

// For dispatches a statically partitioned parallel loop without worker
// identity.
func (e *ForkJoinEngine) For(n int, body func(i int)) { e.pool.For(n, body) }

// Scratch returns worker w's staging buffer.
func (e *ForkJoinEngine) Scratch(w int) []float64 { return e.scratches[w] }

// Cache returns worker w's arena front.
func (e *ForkJoinEngine) Cache(w int) *membuf.Cache { return e.caches[w] }

// Wait returns the master thread's reused waitset.
func (e *ForkJoinEngine) Wait() *mpi.WaitSet { return e.ws }

// ClosePool stops the workers. Safe to call twice; Close calls it too, so
// error paths can stop the pool without releasing buffers the run may
// still reference.
func (e *ForkJoinEngine) ClosePool() {
	if e.closed {
		return
	}
	e.closed = true
	e.pool.Close()
}

// Close stops the workers and returns every pooled buffer. Called after a
// successful run.
func (e *ForkJoinEngine) Close() {
	e.ClosePool()
	for i := range e.scratches {
		e.arena.PutFloat64(e.scratches[i])
		e.caches[i].Flush()
	}
	e.scratches = nil
	e.caches = nil
}
