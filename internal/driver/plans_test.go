package driver_test

// Plans is the epoch-cache contract the per-stage hot paths lean on: the
// message plans and their pooled receive slabs are built once per
// communication epoch (after a refinement changes the mesh), stay stable
// across every stage of the epoch, and recycle their arena memory when the
// epoch turns over. These tests pin that contract directly, without an
// application on top.

import (
	"testing"

	"miniamr/internal/driver"
	"miniamr/internal/membuf"
)

// seg is a toy segment type; Plans is generic over it.
type seg struct{ off, n int }

func buildEpoch(p *driver.Plans[seg], peers []int, cells, width int) {
	for _, peer := range peers {
		p.AddSend(driver.Plan[seg]{Peer: peer, Tag: 7, Cells: cells,
			Segs: []seg{{0, cells}}})
		p.AddRecv(driver.Plan[seg]{Peer: peer, Tag: 7, Cells: cells,
			Segs: []seg{{0, cells}}}, width)
	}
}

func TestPlansEpochRebuild(t *testing.T) {
	arena := membuf.New()
	var p driver.Plans[seg]
	p.Init(arena)

	// Epoch 1: two neighbours, 12 cells, 3 variables.
	buildEpoch(&p, []int{1, 2}, 12, 3)
	if len(p.SendPlans) != 2 || len(p.RecvPlans) != 2 {
		t.Fatalf("epoch 1: %d send / %d recv plans, want 2/2",
			len(p.SendPlans), len(p.RecvPlans))
	}
	for i, pl := range p.RecvPlans {
		if got := len(p.RecvBuf(i)); got != pl.Cells*3 {
			t.Fatalf("epoch 1: recv slab %d has %d floats, want %d", i, got, pl.Cells*3)
		}
	}
	if p.RecvPlans[0].Peer != 1 || p.RecvPlans[1].Peer != 2 {
		t.Fatalf("epoch 1: recv peers %d,%d, want 1,2",
			p.RecvPlans[0].Peer, p.RecvPlans[1].Peer)
	}
	// Epoch turnover: Reset must drop every plan and return every slab.
	p.Reset()
	if len(p.SendPlans) != 0 || len(p.RecvPlans) != 0 {
		t.Fatalf("after Reset: %d send / %d recv plans linger",
			len(p.SendPlans), len(p.RecvPlans))
	}
	if live := arena.Stats().Live; live != 0 {
		t.Fatalf("after Reset: %d arena buffers still checked out", live)
	}

	// Epoch 2: a different mesh — three neighbours, different sizes. The
	// cache must reflect only the new epoch.
	buildEpoch(&p, []int{1, 2, 3}, 8, 3)
	if len(p.SendPlans) != 3 || len(p.RecvPlans) != 3 {
		t.Fatalf("epoch 2: %d send / %d recv plans, want 3/3",
			len(p.SendPlans), len(p.RecvPlans))
	}
	for i := range p.RecvPlans {
		if got := len(p.RecvBuf(i)); got != 8*3 {
			t.Fatalf("epoch 2: recv slab %d has %d floats, want %d", i, got, 8*3)
		}
	}
	p.Close()
	if live := arena.Stats().Live; live != 0 {
		t.Fatalf("after Close: %d arena buffers still checked out", live)
	}
}

func TestPlansSlabReuseAcrossEpochs(t *testing.T) {
	arena := membuf.New()
	var p driver.Plans[seg]
	p.Init(arena)

	// Same epoch shape rebuilt repeatedly (the steady AMR state where a
	// refinement epoch does not change the neighbour set): after the first
	// build, every slab Get must be a pool hit — the hot path allocates
	// nothing new.
	buildEpoch(&p, []int{1, 2}, 16, 4)
	first := arena.Stats()
	if first.Misses == 0 {
		t.Fatalf("first epoch: expected cold-start pool misses, got none")
	}
	for epoch := 0; epoch < 5; epoch++ {
		p.Reset()
		buildEpoch(&p, []int{1, 2}, 16, 4)
	}
	now := arena.Stats()
	if now.Misses != first.Misses {
		t.Fatalf("steady-state rebuilds allocated: misses %d -> %d",
			first.Misses, now.Misses)
	}
	if now.Hits <= first.Hits {
		t.Fatalf("steady-state rebuilds did not hit the pool: hits %d -> %d",
			first.Hits, now.Hits)
	}
	p.Close()
}
