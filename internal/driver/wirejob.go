package driver

import (
	"encoding/json"
	"fmt"
)

// Multi-process runs ship a Job across a process boundary as
// (application name, JSON-encoded configuration): the parent encodes,
// each child process decodes through a registry keyed by the name the
// application already registers its variants under. The harness stays
// application-agnostic on both sides of the boundary.

// ConfigJob is the optional Job extension multi-process execution
// requires: a job that can expose its configuration for wire encoding.
// The configuration must survive a JSON round trip — runtime-only fields
// (sanitizer handles, observer hooks) are tagged out and re-attached by
// the child's own harness.
type ConfigJob interface {
	Job
	// Config returns the job's validated-or-validatable configuration
	// value, ready for json.Marshal.
	Config() any
}

var decoders = map[string]func(cfgJSON []byte) (Job, error){}

// RegisterDecoder records how to rebuild an application's Job from its
// JSON-encoded configuration. Applications register from the same init
// function that calls Register.
func RegisterDecoder(app string, dec func(cfgJSON []byte) (Job, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	decoders[app] = dec
}

// EncodeJob serialises a job for a child process. It fails on jobs that
// do not implement ConfigJob or whose application never registered a
// decoder — at spawn time in the parent, not at decode time in a child.
func EncodeJob(j Job) (app string, cfgJSON []byte, err error) {
	cj, ok := j.(ConfigJob)
	if !ok {
		return "", nil, fmt.Errorf("driver: job for %q does not implement ConfigJob; cannot run multi-process", j.App())
	}
	regMu.Lock()
	_, hasDec := decoders[j.App()]
	regMu.Unlock()
	if !hasDec {
		return "", nil, fmt.Errorf("driver: application %q has no registered job decoder", j.App())
	}
	raw, err := json.Marshal(cj.Config())
	if err != nil {
		return "", nil, fmt.Errorf("driver: encoding %q config: %w", j.App(), err)
	}
	return j.App(), raw, nil
}

// DecodeJob rebuilds a job in a child process.
func DecodeJob(app string, cfgJSON []byte) (Job, error) {
	regMu.Lock()
	dec, ok := decoders[app]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("driver: application %q has no registered job decoder (is its package imported?)", app)
	}
	return dec(cfgJSON)
}
