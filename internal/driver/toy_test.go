package driver_test

// The toy application is the skeleton's proof of generality: a third app
// (after miniAMR and HYDRO) — a 1D ring diffusion — built purely against
// the exported driver API. It registers its variants, caches its message
// plans in driver.Plans, runs all three execution engines through
// driver.Loop and validates checksums through driver.Oracle, without a
// single change to the task, tampi, mpi or membuf layers.

import (
	"fmt"
	"math"
	"testing"

	"miniamr/internal/cluster"
	"miniamr/internal/driver"
	"miniamr/internal/harness"
	"miniamr/internal/membuf"
	"miniamr/internal/mpi"
	"miniamr/internal/sanitize"
	"miniamr/internal/simnet"
	"miniamr/internal/task"
	"miniamr/internal/trace"
)

func init() {
	driver.Register("toy", driver.Variants...)
}

const toyCells = 16 // interior cells per rank

// toyState is the per-rank state: a strip of cells on a ring of ranks,
// one ghost value per side, refreshed every stage.
type toyState struct {
	comm   *mpi.Comm
	arena  *membuf.Arena
	cur    []float64
	next   []float64
	ghost  [2]float64 // side 0 = from left neighbour, 1 = from right
	plans  driver.Plans[int]
	oracle driver.Oracle
}

// Message tags double as the sender's side: tag 0 carries a low edge
// leftward, tag 1 a high edge rightward; the receiver maps them to the
// opposite ghost.
func newToyState(c *mpi.Comm) *toyState {
	s := &toyState{
		comm:   c,
		arena:  c.World().Arena(),
		oracle: driver.Oracle{Tolerance: 1e-9},
	}
	s.cur = s.arena.GetFloat64(toyCells)
	s.next = s.arena.GetFloat64(toyCells)
	for i := range s.cur {
		s.cur[i] = math.Sin(float64(c.Rank()*toyCells+i)) + 2
	}
	s.plans.Init(s.arena)
	size := c.Size()
	left, right := (c.Rank()+size-1)%size, (c.Rank()+1)%size
	// Segs[0] records the ghost side the plan's single value fills.
	s.plans.AddSend(driver.Plan[int]{Peer: left, Tag: 0, Cells: 1, Segs: []int{0}})
	s.plans.AddSend(driver.Plan[int]{Peer: right, Tag: 1, Cells: 1, Segs: []int{1}})
	s.plans.AddRecv(driver.Plan[int]{Peer: right, Tag: 0, Cells: 1, Segs: []int{1}}, 1)
	s.plans.AddRecv(driver.Plan[int]{Peer: left, Tag: 1, Cells: 1, Segs: []int{0}}, 1)
	return s
}

func (s *toyState) close() {
	s.arena.PutFloat64(s.cur)
	s.arena.PutFloat64(s.next)
	s.plans.Close()
}

func (s *toyState) edge(side int) float64 {
	if side == 0 {
		return s.cur[0]
	}
	return s.cur[toyCells-1]
}

// sweepInto computes one diffusion step from cur+ghosts into next.
func (s *toyState) sweepInto(next []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		left, right := s.ghost[0], s.ghost[1]
		if i > 0 {
			left = s.cur[i-1]
		}
		if i < toyCells-1 {
			right = s.cur[i+1]
		}
		next[i] = 0.25*left + 0.5*s.cur[i] + 0.25*right
	}
}

func (s *toyState) localSum() float64 {
	sum := 0.0
	for _, v := range s.cur {
		sum += v
	}
	return sum
}

func (s *toyState) validate() error {
	local := s.arena.GetFloat64(1)
	local[0] = s.localSum()
	global, err := s.comm.AllreduceFloat64(local, mpi.Sum)
	s.arena.PutFloat64(local)
	if err != nil {
		return err
	}
	return s.oracle.Accept(global)
}

func (s *toyState) result() driver.Result {
	return driver.Result{Checksums: s.oracle.History, FinalBlocks: 1, Flops: 1}
}

func toyLoop() driver.Loop {
	return driver.Loop{Timesteps: 3, StagesPerTimestep: 2, ChecksumEvery: 2, Groups: [][2]int{{0, 1}}}
}

// toySerial runs the diffusion on the SerialEngine.
type toySerial struct {
	s   *toyState
	eng *driver.SerialEngine
}

func (d *toySerial) BeginStep(int) error { return nil }

func (d *toySerial) Communicate(_, _, _ int) error {
	s := d.s
	ws := d.eng.Wait()
	ws.Reset()
	for i := range s.plans.RecvPlans {
		pl := &s.plans.RecvPlans[i]
		req, err := s.comm.Irecv(s.plans.RecvBuf(i)[:1], pl.Peer, pl.Tag)
		if err != nil {
			return err
		}
		ws.Add(req)
	}
	for i := range s.plans.SendPlans {
		pl := &s.plans.SendPlans[i]
		lease := s.arena.LeaseFloat64(1)
		lease.Float64()[0] = s.edge(pl.Segs[0])
		req, err := s.comm.IsendOwned(lease, pl.Peer, pl.Tag)
		if err != nil {
			lease.Release()
			d.eng.FlushSends()
			return err
		}
		d.eng.TrackSend(req)
	}
	for remaining := ws.Len(); remaining > 0; remaining-- {
		idx, _, err := ws.Next()
		if err != nil {
			return err
		}
		s.ghost[s.plans.RecvPlans[idx].Segs[0]] = s.plans.RecvBuf(idx)[0]
	}
	return d.eng.FlushSends()
}

func (d *toySerial) Compute(_, _, _ int) error {
	d.s.sweepInto(d.s.next, 0, toyCells)
	copy(d.s.cur, d.s.next)
	return nil
}

func (d *toySerial) Checksum(int) error        { return d.s.validate() }
func (d *toySerial) Quiesce() error            { return nil }
func (d *toySerial) Refine(bool) (bool, error) { return false, nil }
func (d *toySerial) Drain() error              { return nil }

// toyForkJoin runs the sweep in parallel loops on the ForkJoinEngine with
// MPI on the master.
type toyForkJoin struct {
	toySerial // reuse the master-threaded communication stages
	eng       *driver.ForkJoinEngine
}

func (d *toyForkJoin) Compute(_, _, _ int) error {
	s := d.s
	d.eng.For(toyCells, func(i int) { s.sweepInto(s.next, i, i+1) })
	copy(s.cur, s.next)
	return nil
}

// toyDataFlow taskifies the stages on the GraphEngine.
type toyDataFlow struct {
	s *toyState
	g *driver.GraphEngine
}

type (
	toyCellsKey struct{}
	toyGhostKey struct{ side int }
	toySumKey   struct{}
)

func (d *toyDataFlow) BeginStep(int) error { return nil }

func (d *toyDataFlow) Communicate(_, _, _ int) error {
	s := d.s
	for i := range s.plans.RecvPlans {
		pl := &s.plans.RecvPlans[i]
		peer, tag, side := pl.Peer, pl.Tag, pl.Segs[0]
		buf := s.plans.RecvBuf(i)[:1]
		// Iwait never blocks: it defers the task's completion (and so the
		// release of the ghost key) until the message lands in buf.
		d.g.Spawn("recv", func(t *task.Task) {
			req, err := s.comm.Irecv(buf, peer, tag)
			if err != nil {
				panic(err)
			}
			d.g.X.Iwait(t, req)
		}, task.Out(toyGhostKey{side: side})...)
	}
	for i := range s.plans.SendPlans {
		pl := &s.plans.SendPlans[i]
		peer, tag, side := pl.Peer, pl.Tag, pl.Segs[0]
		d.g.Spawn("send", func(t *task.Task) {
			lease := s.arena.LeaseFloat64(1)
			lease.Float64()[0] = s.edge(side)
			if err := d.g.X.IsendOwned(t, lease, peer, tag); err != nil {
				panic(err)
			}
		}, task.In(toyCellsKey{})...)
	}
	return d.g.X.Err()
}

func (d *toyDataFlow) Compute(_, _, _ int) error {
	s := d.s
	d.g.Spawn("sweep", func(*task.Task) {
		for i := range s.plans.RecvPlans {
			s.ghost[s.plans.RecvPlans[i].Segs[0]] = s.plans.RecvBuf(i)[0]
		}
		s.sweepInto(s.next, 0, toyCells)
		copy(s.cur, s.next)
	}, task.Merge(
		task.In(toyGhostKey{side: 0}, toyGhostKey{side: 1}),
		task.InOut(toyCellsKey{}),
	)...)
	return nil
}

func (d *toyDataFlow) Checksum(int) error {
	s := d.s
	slot := s.arena.GetFloat64(1)
	d.g.Spawn("cksum", func(*task.Task) {
		slot[0] = s.localSum()
	}, task.Merge(task.In(toyCellsKey{}), task.Out(toySumKey{}))...)
	d.g.WaitKeys(toySumKey{})
	if err := d.g.X.Err(); err != nil {
		return err
	}
	sum := slot[0]
	s.arena.PutFloat64(slot)
	local := s.arena.GetFloat64(1)
	local[0] = sum
	global, err := s.comm.AllreduceFloat64(local, mpi.Sum)
	s.arena.PutFloat64(local)
	if err != nil {
		return err
	}
	return s.oracle.Accept(global)
}

func (d *toyDataFlow) Quiesce() error {
	d.g.Wait()
	return d.g.X.Err()
}

func (d *toyDataFlow) Refine(bool) (bool, error) { return false, nil }

func (d *toyDataFlow) Drain() error {
	d.g.Wait()
	return d.g.X.Err()
}

// toyJob packages the toy app as a driver.Job.
type toyJob struct{}

func (toyJob) App() string { return "toy" }

func (toyJob) Bind(v driver.Variant, workers int, _ *sanitize.Sanitizer) (driver.Program, error) {
	return func(c *mpi.Comm, _ *trace.Recorder) (driver.Result, error) {
		s := newToyState(c)
		var h driver.Hooks
		var cleanup func()
		switch v {
		case driver.MPIOnly:
			eng := driver.NewSerialEngine(s.arena, 1)
			h = &toySerial{s: s, eng: eng}
			cleanup = eng.Close
		case driver.ForkJoin:
			eng := driver.NewForkJoinEngine(s.arena, workers, 1, false)
			h = &toyForkJoin{toySerial: toySerial{s: s, eng: driver.NewSerialEngine(s.arena, 1)}, eng: eng}
			se := h.(*toyForkJoin).toySerial.eng
			cleanup = func() { se.Close(); eng.Close() }
		case driver.DataFlow:
			g, err := driver.NewGraphEngine(driver.GraphOptions{Comm: c, Workers: workers, ScratchLen: 1})
			if err != nil {
				return driver.Result{}, err
			}
			h = &toyDataFlow{s: s, g: g}
			cleanup = g.Close
		default:
			return driver.Result{}, fmt.Errorf("toy: unknown variant %q", v)
		}
		if _, err := toyLoop().Run(h); err != nil {
			return driver.Result{}, err
		}
		cleanup()
		res := s.result()
		s.close()
		return res, nil
	}, nil
}

// TestToyAppOnSkeleton registers the third application and runs it
// through the harness on every variant: same registry path, same engines,
// same loop — and bit-identical checksums across variants.
func TestToyAppOnSkeleton(t *testing.T) {
	for _, v := range driver.Variants {
		if err := driver.CheckVariant("toy", v); err != nil {
			t.Fatalf("registry: %v", err)
		}
	}
	var ref []float64
	for _, v := range driver.Variants {
		m, err := harness.Run(harness.RunSpec{
			Nodes: 1, RanksPerNode: 3, CoresPerRank: 2,
			Net: simnet.None(), Job: toyJob{}, Variant: v,
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(m.Checksums) != 3 {
			t.Fatalf("%s: validated %d checksum stages, want 3", v, len(m.Checksums))
		}
		var got []float64
		for _, ck := range m.Checksums {
			got = append(got, ck...)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("%s: checksum %d = %v, want bit-identical %v", v, i, got[i], ref[i])
			}
		}
	}
}

// TestToyAppArenaClean: the toy app must return every pooled buffer —
// the lease/slab ownership rules of the driver contract hold for a third
// application too.
func TestToyAppArenaClean(t *testing.T) {
	w := mpi.NewWorld(cluster.MustNew(1, 3, 1), simnet.None())
	w.Arena().SetDebug(true)
	program, err := toyJob{}.Bind(driver.DataFlow, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *mpi.Comm) {
		if _, err := program(c, nil); err != nil {
			panic(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := w.Arena().Stats()
	if st.Live != 0 || st.LeasesLive != 0 || st.Gets != st.Puts {
		t.Fatalf("arena not clean after toy run: %+v", st)
	}
}
