package driver

import (
	"time"

	"miniamr/internal/mpi"
)

// Result summarises one rank's run. Every application reports through
// this shape so the harness can aggregate Metrics without knowing the
// application.
type Result struct {
	// TotalTime is the rank's wall-clock time for the whole run.
	TotalTime time.Duration
	// RefineTime is the wall-clock time spent in refinement phases
	// (including initial refinement, exchanges and load balancing); zero
	// for applications without mesh adaptation.
	RefineTime time.Duration
	// Flops counts the floating-point operations of the application's
	// kernels on this rank.
	Flops int64
	// Checksums holds every validated global checksum (identical on all
	// ranks); the cross-variant correctness oracle.
	Checksums [][]float64
	// FinalBlocks is the number of blocks (or tiles) the rank owns at the
	// end.
	FinalBlocks int
	// RefineEpochs counts refinement phases that changed the mesh.
	RefineEpochs int
	// TaskCount is the number of tasks the data-flow variant spawned
	// (zero for the other variants).
	TaskCount int
	// Comm counts the rank's point-to-point sends (collectives included).
	Comm mpi.CommStats
	// MeshHistory snapshots the mesh after every refinement epoch
	// (identical on all ranks).
	MeshHistory []MeshStat
	// FinalMeshView is an ASCII rendering of the final mesh, filled when
	// the application was asked to render it.
	FinalMeshView string
}

// NoRefineTime is the time outside refinement phases, the paper's
// "No Refine" column.
func (r Result) NoRefineTime() time.Duration { return r.TotalTime - r.RefineTime }

// MeshStat is a snapshot of the mesh shape after a refinement epoch.
type MeshStat struct {
	// Blocks is the total leaf count.
	Blocks int
	// PerLevel is the leaf count per refinement level.
	PerLevel []int
}
